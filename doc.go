// Package specinterference is a simulator-based reproduction of
// "Speculative Interference Attacks: Breaking Invisible Speculation
// Schemes" (Behnia et al., ASPLOS 2021).
//
// The paper shows that invisible-speculation defenses — InvisiSpec,
// Delay-on-Miss, SafeSpec, MuonTrap, Conditional Speculation — still leak
// through the cache: mis-speculated instructions can delay older,
// bound-to-retire instructions (speculative interference), and a
// secret-dependent delay reorders two unprotected memory accesses, leaving
// a persistent, secret-dependent change in cache replacement state.
//
// This module contains everything needed to reproduce the paper's
// evaluation on a cycle-level out-of-order multi-core simulator written in
// pure Go:
//
//   - a small RISC-like ISA, assembler and architectural emulator,
//   - an out-of-order core with age-ordered issue, non-pipelined execution
//     units, MSHRs, a mistrainable branch predictor, and squash/recovery,
//   - a cache hierarchy with the QLRU_H11_M1_R0_U0 replacement policy the
//     paper reverse-engineered from its Kaby Lake target,
//   - executable models of every invisible-speculation scheme in Table 1
//     plus the paper's fence defenses,
//   - the three interference gadgets (GDNPEU, GDMSHR, GIRS), the
//     replacement-state receiver of §4.2.2, and end-to-end cross-core
//     proof-of-concept attacks,
//   - harnesses that regenerate every table and figure of the evaluation
//     (Table 1; Figures 7, 8, 9, 10, 11a, 11b, 12),
//   - a checker for the §5.1 "ideal invisible speculation" definition, and
//   - a deterministic sharded experiment runner (internal/runner) that
//     fans independent trials out across a bounded worker pool.
//
// # Parallel experiment running
//
// The four repeated-trial harnesses — Figure7, VulnerabilityMatrix,
// ChannelCurve and DefenseOverhead — shard their trials through
// internal/runner. Each has a *Parallel variant taking a context and a
// worker count (0 = one worker per CPU), surfaced on the CLIs as
// -parallel; vulnmatrix, covertbench, defensebench and interference also
// take -json for machine-readable output.
//
// The seed-derivation contract makes the worker count a pure wall-clock
// knob: every shard's seed is an arithmetic function of its index alone
// (Figure7 trial i of arm s runs at seedBase + 2i + s; channel trial
// (bit b, rep r) at seedBase*1_000_003 + 17 + b*reps + r + 1 — exactly
// the sequences the old serial loops produced), every shard builds its
// own System and Memory, and runner.Map returns results in index order.
// Aggregation then replays the serial loop's order, so outputs are
// bit-identical at any worker count ≥ 1; the determinism tests in
// internal/core, internal/channel and internal/workload pin the serial
// reference loops as goldens.
//
// # Results store and regression tracking
//
// Every experiment's output can persist as a run record: the experiment
// name, its parameters (trial counts, seeds, scheme lists), volatile
// metadata (git revision, worker count, wall time) and the full payload —
// per-arm Figure 7 latencies, every Table 1 matrix cell, each Figure 11
// curve point, the Figure 12 slowdown table. Records append as JSONL
// under a store directory (one file per experiment, newest last) via the
// -store flag on vulnmatrix, covertbench, defensebench and interference,
// or programmatically through OpenResultStore and the record
// constructors (NewFigure7Record, NewTable1Record, NewFigure11Record,
// NewFigure12Record).
//
// Each record carries a canonical SHA-256 signature over its parameters
// and payload; metadata is excluded, so two runs of the same experiment
// at the same parameters hash identically no matter the worker count,
// machine or commit that produced them. DiffRunRecords classifies any
// change between two comparable records as identical (signatures match),
// drift (numbers moved within thresholds), or regression (a Table 1 cell
// flipped vulnerable↔protected, a channel's error rate rose beyond
// threshold, the Figure 7 separation collapsed, or a defense slowdown
// shifted wholesale); records at different parameters are incomparable.
//
// The resultstore CLI drives the store: list and show browse history,
// diff classifies two records (exit non-zero on regression), check
// reruns every experiment at the committed baseline's parameters and
// fails on any regression-class change — the CI gate — and baseline
// (re)writes the small-trial baseline records committed under
// internal/results/testdata/baseline. Golden-file tests in
// internal/results additionally pin the canonical encodings byte-for-
// byte (regenerate both with go test ./internal/results -update).
//
// See README.md for a tour. The root package is a facade over the
// internal packages; the cmd/ tools and examples/ programs show it in
// use.
package specinterference
