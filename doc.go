// Package specinterference is a simulator-based reproduction of
// "Speculative Interference Attacks: Breaking Invisible Speculation
// Schemes" (Behnia et al., ASPLOS 2021).
//
// The paper shows that invisible-speculation defenses — InvisiSpec,
// Delay-on-Miss, SafeSpec, MuonTrap, Conditional Speculation — still leak
// through the cache: mis-speculated instructions can delay older,
// bound-to-retire instructions (speculative interference), and a
// secret-dependent delay reorders two unprotected memory accesses, leaving
// a persistent, secret-dependent change in cache replacement state.
//
// This module contains everything needed to reproduce the paper's
// evaluation on a cycle-level out-of-order multi-core simulator written in
// pure Go:
//
//   - a small RISC-like ISA, assembler and architectural emulator,
//   - an out-of-order core with age-ordered issue, non-pipelined execution
//     units, MSHRs, a mistrainable branch predictor, and squash/recovery,
//   - a cache hierarchy with the QLRU_H11_M1_R0_U0 replacement policy the
//     paper reverse-engineered from its Kaby Lake target,
//   - executable models of every invisible-speculation scheme in Table 1
//     plus the paper's fence defenses,
//   - the three interference gadgets (GDNPEU, GDMSHR, GIRS), the
//     replacement-state receiver of §4.2.2, and end-to-end cross-core
//     proof-of-concept attacks,
//   - harnesses that regenerate every table and figure of the evaluation
//     (Table 1; Figures 7, 8, 9, 10, 11a, 11b, 12), and
//   - a checker for the §5.1 "ideal invisible speculation" definition.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results. The root package is a
// facade over the internal packages; the cmd/ tools and examples/ programs
// show it in use.
package specinterference
