// Package specinterference is a simulator-based reproduction of
// "Speculative Interference Attacks: Breaking Invisible Speculation
// Schemes" (Behnia et al., ASPLOS 2021).
//
// The paper shows that invisible-speculation defenses — InvisiSpec,
// Delay-on-Miss, SafeSpec, MuonTrap, Conditional Speculation — still leak
// through the cache: mis-speculated instructions can delay older,
// bound-to-retire instructions (speculative interference), and a
// secret-dependent delay reorders two unprotected memory accesses, leaving
// a persistent, secret-dependent change in cache replacement state.
//
// This module contains everything needed to reproduce the paper's
// evaluation on a cycle-level out-of-order multi-core simulator written in
// pure Go:
//
//   - a small RISC-like ISA, assembler and architectural emulator,
//   - an out-of-order core with age-ordered issue, non-pipelined execution
//     units, MSHRs, a mistrainable branch predictor, and squash/recovery,
//   - a cache hierarchy with the QLRU_H11_M1_R0_U0 replacement policy the
//     paper reverse-engineered from its Kaby Lake target,
//   - executable models of every invisible-speculation scheme in Table 1
//     plus the paper's fence defenses,
//   - the three interference gadgets (GDNPEU, GDMSHR, GIRS), the
//     replacement-state receiver of §4.2.2, and end-to-end cross-core
//     proof-of-concept attacks,
//   - harnesses that regenerate every table and figure of the evaluation
//     (Table 1; Figures 7, 8, 9, 10, 11a, 11b, 12),
//   - a checker for the §5.1 "ideal invisible speculation" definition,
//   - a SPECTECTOR-style static speculative-leak detector
//     (internal/detect) that self-composes an abstract execution of each
//     gadget under a scheme's speculation policy — per-branch ROB-bounded
//     speculative windows, differential NPEU/MSHR/RS pressure, per-ordering
//     visibility rules — and whose verdict must agree with the empirical
//     Table 1 outcome for every cell (the concordance experiment), and
//   - a unified experiment engine (internal/experiment) that runs every
//     harness as sharded trials over pluggable execution backends, and
//   - a contract-enforcement lint suite (internal/lint, cmd/speclint)
//     that statically checks the repo's determinism, policy-purity,
//     alloc-free and lock-discipline contracts in CI, ahead of the
//     dynamic gates that check the same properties at run time.
//
// # Experiment engine and backends
//
// The four repeated-trial harnesses — Figure7, VulnerabilityMatrix,
// ChannelCurve and DefenseOverhead — are registered experiment specs in
// internal/experiment. A spec declares a shard plan, a pure per-shard
// run function, and a serial-order aggregator producing a sealed run
// record; the engine executes specs over a Backend:
//
//   - the in-process backend shards trials across the bounded worker
//     pool of internal/runner (-parallel N goroutines, 0 = one per CPU);
//   - the subprocess backend re-execs the binary in a hidden
//     -shard-worker mode and dispatches small shard chunks (-chunk N,
//     0 = automatic) to -procs N worker processes dynamically — each
//     worker pulls the next chunk as it finishes the last, so uneven
//     shard costs (AD-ordering matrix cells calibrate twice) level out
//     instead of idling fast workers behind a static equal split —
//     collecting JSON-streamed results by shard index;
//   - the remote backend (internal/experiment/remote) runs an HTTP
//     coordinator (-listen ADDR, default a loopback ephemeral port)
//     that leases shard chunks to workers over the network: the
//     binary re-exec'd in a hidden -remote-worker mode against -procs N
//     local processes, or started by hand on any machine
//     (vulnmatrix -remote-worker -connect http://host:port). Leases
//     expire (-lease TTL, default 10s) unless renewed, and expired
//     leases are re-issued to other workers, so a crashed or stalled
//     worker costs wall-clock, never correctness; duplicate results are
//     deduplicated by shard index with a byte-equality assertion that
//     turns any determinism violation into a hard run failure, while a
//     stale straggler's error line for a shard someone else already
//     completed is ignored. Scheduling is self-tuning: without a pinned
//     -chunk, grant sizes track observed per-shard cost (one chunk per
//     quarter TTL, within [1, n/8]) scaled by each worker's throughput
//     relative to the fleet, and re-issue deadlines tighten to each
//     worker's observed renew cadence instead of the static TTL cliff.
//     When the queue drains with grants still in flight, idle workers
//     are handed speculative backup copies of the oldest straggler's
//     undone remainder (never to the span's own holder, at most one
//     live backup per span) — the dedup picks whichever copy lands
//     first, so a slow-but-renewing machine gates the tail at
//     min(primary, backup) instead of its own pace; GET /stats and an
//     end-of-run summary expose the backup counters and per-worker
//     throughput. Every request carries a per-run random token and results
//     are validated against the span their lease granted, so cross-run
//     confusion and over-reaching workers are rejected (410/400). With
//     -journal DIR the coordinator appends every accepted shard result
//     to DIR/<experiment>.jsonl and, restarted against the same
//     directory, replays the journal and serves only the remainder —
//     kill the coordinator mid-run, restart it, and the final record
//     signature still equals an uninterrupted run's.
//
// The seed-derivation contract makes the backend a pure wall-clock
// knob: every shard's seed is an arithmetic function of its index alone
// (Figure7 trial i of arm s runs at seedBase + 2i + s; channel trial
// (bit b, rep r) at seedBase*1_000_003 + 17 + b*reps + r + 1 — exactly
// the sequences the old serial loops produced), every shard builds its
// own System and Memory, and collection is ordered by shard index.
// Aggregation then replays the serial loop's order, so outputs are
// bit-identical at any worker count, process count, machine count, or
// backend; the determinism tests in internal/core, internal/channel and
// internal/workload pin the serial reference loops as goldens, the
// backend-equivalence tests in internal/experiment and
// internal/experiment/remote pin all three backends to the committed
// baseline signatures, and the fault-injection suite in
// internal/experiment/faulttest proves that crashing, stalling and
// corrupting workers still leave the remote backend's records
// byte-identical to the committed baselines.
//
// The library entry points keep their *Parallel variants (context plus a
// worker count), now thin wrappers over the same shared per-shard
// primitives the engine uses. The four experiment CLIs sit on the
// engine's shared driver and take common flags: -parallel, -backend,
// -procs, -listen, -lease, -chunk, -journal, -json, -store, -progress (periodic
// shard-completion reporting to stderr, off by default) and -scale
// (multiply trial-style counts — larger Figure 7 arms, more Figure 11
// bits — for sweeps that span processes and machines).
//
// # Results store and regression tracking
//
// Every experiment's output can persist as a run record: the experiment
// name, its parameters (trial counts, seeds, scheme lists), volatile
// metadata (git revision, worker count, wall time) and the full payload —
// per-arm Figure 7 latencies, every Table 1 matrix cell, each Figure 11
// curve point, the Figure 12 slowdown table. Records append as JSONL
// under a store directory (one file per experiment, newest last) via the
// -store flag on vulnmatrix, covertbench, defensebench and interference,
// or programmatically through OpenResultStore and the record
// constructors (NewFigure7Record, NewTable1Record, NewFigure11Record,
// NewFigure12Record, NewConcordanceRecord).
//
// Each record carries a canonical SHA-256 signature over its parameters
// and payload; metadata is excluded, so two runs of the same experiment
// at the same parameters hash identically no matter the worker count,
// machine or commit that produced them. DiffRunRecords classifies any
// change between two comparable records as identical (signatures match),
// drift (numbers moved within thresholds), or regression (a Table 1 cell
// flipped vulnerable↔protected, a concordance cell lost
// detector/simulator agreement, a channel's error rate rose beyond
// threshold, the Figure 7 separation collapsed, or a defense slowdown
// shifted wholesale); records at different parameters are incomparable.
//
// The resultstore CLI drives the store: list and show browse history,
// diff classifies two records (exit non-zero on regression), check
// reruns every experiment at the committed baseline's parameters —
// through any backend, via -backend/-procs/-listen/-lease/-chunk/
// -journal — and fails on any regression-class change (the CI gate, run
// in-process, through the subprocess backend, through the remote
// backend with leased loopback workers, and once more with the
// coordinator SIGKILLed mid-check and resumed from its journal),
// baseline (re)writes the small-trial baseline
// records committed under internal/results/testdata/baseline, and bless
// promotes each experiment's newest store record to the committed
// baseline in one command, stamping a provenance note (date, reason,
// commit) for review. Golden-file tests in internal/results additionally
// pin the canonical encodings byte-for-byte (regenerate both with go
// test ./internal/results -update).
//
// See README.md for a tour. The root package is a facade over the
// internal packages; the cmd/ tools and examples/ programs show it in
// use.
package specinterference
