package main

import (
	"encoding/json"
	"strings"
	"testing"

	"specinterference/internal/cmdtest"
)

func TestSmoke(t *testing.T) {
	out := cmdtest.Run(t, "", "-iters", "50", "-schemes", "fence-spectre")
	if !strings.Contains(out, "Figure 12") || !strings.Contains(out, "geomean") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestSmokeJSON(t *testing.T) {
	out := cmdtest.Run(t, "", "-iters", "50", "-schemes", "fence-spectre", "-json", "-parallel", "2")
	var res struct {
		Rows []struct {
			Workload string             `json:"workload"`
			Slowdown map[string]float64 `json:"slowdown"`
		} `json:"rows"`
		Geomean map[string]float64 `json:"geomean"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(res.Rows) == 0 || res.Geomean["fence-spectre"] <= 0 {
		t.Errorf("unexpected JSON payload: %+v", res)
	}
}
