// Command defensebench regenerates Figure 12: execution time of the §5.2
// basic fence defense, normalized to the unsafe baseline, across the
// synthetic SPEC-like kernels.
//
// Usage:
//
//	defensebench [-iters 2000] [-schemes fence-spectre,fence-futuristic] [-parallel N] [-json] [-store DIR]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	si "specinterference"
)

// jsonRow is the machine-readable form of one workload's slowdowns.
type jsonRow struct {
	Workload       string             `json:"workload"`
	BaselineCycles int64              `json:"baseline_cycles"`
	BaselineIPC    float64            `json:"baseline_ipc"`
	Slowdown       map[string]float64 `json:"slowdown"`
}

func main() {
	iters := flag.Int("iters", 2000, "loop iterations per kernel")
	schemesFlag := flag.String("schemes", "fence-spectre,fence-futuristic",
		"comma-separated defense list")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = one per CPU); one shard per workload×scheme cell, results identical at any value")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the text table")
	storeDir := flag.String("store", "", "append a run record to this results-store directory")
	flag.Parse()

	if *iters < 1 {
		// The facade substitutes its default for iters<=0; a record
		// stamped with the raw flag would then misrepresent the run.
		fmt.Fprintf(os.Stderr, "defensebench: -iters must be >= 1, got %d\n", *iters)
		os.Exit(1)
	}
	names := strings.Split(*schemesFlag, ",")
	start := time.Now()
	res, err := si.DefenseOverheadParallel(context.Background(), *iters, names, *parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "defensebench:", err)
		os.Exit(1)
	}
	if *storeDir != "" {
		rec, err := si.NewFigure12Record(res, *iters, names)
		notice, err := si.RecordRunNotice(*storeDir, rec, err, *parallel, start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "defensebench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, notice)
	}
	if *jsonOut {
		out := struct {
			Iters   int                `json:"iters"`
			Rows    []jsonRow          `json:"rows"`
			Mean    map[string]float64 `json:"mean"`
			Geomean map[string]float64 `json:"geomean"`
		}{Iters: *iters, Mean: res.Mean, Geomean: res.Geomean}
		for _, row := range res.Rows {
			out.Rows = append(out.Rows, jsonRow{
				Workload: row.Workload, BaselineCycles: row.BaselineCycles,
				BaselineIPC: row.BaselineIPC, Slowdown: row.Slowdown,
			})
		}
		if err := json.NewEncoder(os.Stdout).Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "defensebench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println("Figure 12: fence-defense slowdown over the unsafe baseline")
	fmt.Print(res.Format(names))
	fmt.Println("\npaper (SPEC CPU2017 on gem5): 1.58x mean Spectre model, 5.38x mean Futuristic model")
}
