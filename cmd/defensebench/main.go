// Command defensebench regenerates Figure 12: execution time of the §5.2
// basic fence defense, normalized to the unsafe baseline, across the
// synthetic SPEC-like kernels.
//
// Usage:
//
//	defensebench [-iters 2000] [-schemes fence-spectre,fence-futuristic] [-parallel N] [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	si "specinterference"
)

// jsonRow is the machine-readable form of one workload's slowdowns.
type jsonRow struct {
	Workload       string             `json:"workload"`
	BaselineCycles int64              `json:"baseline_cycles"`
	BaselineIPC    float64            `json:"baseline_ipc"`
	Slowdown       map[string]float64 `json:"slowdown"`
}

func main() {
	iters := flag.Int("iters", 2000, "loop iterations per kernel")
	schemesFlag := flag.String("schemes", "fence-spectre,fence-futuristic",
		"comma-separated defense list")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = one per CPU); one shard per workload×scheme cell, results identical at any value")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the text table")
	flag.Parse()

	names := strings.Split(*schemesFlag, ",")
	res, err := si.DefenseOverheadParallel(context.Background(), *iters, names, *parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "defensebench:", err)
		os.Exit(1)
	}
	if *jsonOut {
		out := struct {
			Iters   int                `json:"iters"`
			Rows    []jsonRow          `json:"rows"`
			Mean    map[string]float64 `json:"mean"`
			Geomean map[string]float64 `json:"geomean"`
		}{Iters: *iters, Mean: res.Mean, Geomean: res.Geomean}
		for _, row := range res.Rows {
			out.Rows = append(out.Rows, jsonRow{
				Workload: row.Workload, BaselineCycles: row.BaselineCycles,
				BaselineIPC: row.BaselineIPC, Slowdown: row.Slowdown,
			})
		}
		if err := json.NewEncoder(os.Stdout).Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "defensebench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println("Figure 12: fence-defense slowdown over the unsafe baseline")
	fmt.Print(res.Format(names))
	fmt.Println("\npaper (SPEC CPU2017 on gem5): 1.58x mean Spectre model, 5.38x mean Futuristic model")
}
