// Command defensebench regenerates Figure 12: execution time of the §5.2
// basic fence defense, normalized to the unsafe baseline, across the
// synthetic SPEC-like kernels.
//
// The run itself goes through the shared experiment engine
// (internal/experiment), which also provides the common flags:
//
//	defensebench [-iters 2000] [-schemes fence-spectre,fence-futuristic]
//	             [-parallel N] [-backend inprocess|subprocess|remote] [-procs N]
//	             [-scale N] [-progress] [-json] [-store DIR]
package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"specinterference/internal/experiment"
	_ "specinterference/internal/experiment/remote" // registers -backend=remote and the -remote-worker mode
	"specinterference/internal/results"
	"specinterference/internal/workload"
)

// jsonRow is the machine-readable form of one workload's slowdowns.
type jsonRow struct {
	Workload       string             `json:"workload"`
	BaselineCycles int64              `json:"baseline_cycles"`
	BaselineIPC    float64            `json:"baseline_ipc"`
	Slowdown       map[string]float64 `json:"slowdown"`
}

func main() {
	experiment.Main(experiment.CLIConfig{
		Name:       "defensebench",
		Experiment: results.ExpFigure12,
		Flags: func(fs *flag.FlagSet) func() (results.Params, error) {
			iters := fs.Int("iters", 2000, "loop iterations per kernel")
			schemesFlag := fs.String("schemes", "fence-spectre,fence-futuristic",
				"comma-separated defense list")
			return func() (results.Params, error) {
				if *iters < 1 {
					return results.Params{}, fmt.Errorf("-iters must be >= 1, got %d", *iters)
				}
				return results.Params{Iters: *iters, Schemes: strings.Split(*schemesFlag, ",")}, nil
			}
		},
		Text: func(w io.Writer, rec *results.Record) error {
			fmt.Fprintln(w, "Figure 12: fence-defense slowdown over the unsafe baseline")
			fmt.Fprint(w, payloadResult(rec).Format(rec.Params.Schemes))
			fmt.Fprintln(w, "\npaper (SPEC CPU2017 on gem5): 1.58x mean Spectre model, 5.38x mean Futuristic model")
			return nil
		},
		JSON: func(rec *results.Record) (any, error) {
			out := struct {
				Iters   int                `json:"iters"`
				Rows    []jsonRow          `json:"rows"`
				Mean    map[string]float64 `json:"mean"`
				Geomean map[string]float64 `json:"geomean"`
			}{Iters: rec.Params.Iters, Mean: rec.Figure12.Mean, Geomean: rec.Figure12.Geomean}
			for _, row := range rec.Figure12.Rows {
				out.Rows = append(out.Rows, jsonRow{
					Workload: row.Workload, BaselineCycles: row.BaselineCycles,
					BaselineIPC: row.BaselineIPC, Slowdown: row.Slowdown,
				})
			}
			return out, nil
		},
	})
}

// payloadResult rebuilds the typed sweep result from the persisted
// payload for the Figure 12 table renderer.
func payloadResult(rec *results.Record) *workload.EvalResult {
	res := &workload.EvalResult{Mean: rec.Figure12.Mean, Geomean: rec.Figure12.Geomean}
	for _, row := range rec.Figure12.Rows {
		res.Rows = append(res.Rows, workload.EvalRow{
			Workload:       row.Workload,
			BaselineCycles: row.BaselineCycles,
			BaselineIPC:    row.BaselineIPC,
			Slowdown:       row.Slowdown,
		})
	}
	return res
}
