// Command defensebench regenerates Figure 12: execution time of the §5.2
// basic fence defense, normalized to the unsafe baseline, across the
// synthetic SPEC-like kernels.
//
// Usage:
//
//	defensebench [-iters 2000] [-schemes fence-spectre,fence-futuristic]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	si "specinterference"
)

func main() {
	iters := flag.Int("iters", 2000, "loop iterations per kernel")
	schemesFlag := flag.String("schemes", "fence-spectre,fence-futuristic",
		"comma-separated defense list")
	flag.Parse()

	names := strings.Split(*schemesFlag, ",")
	res, err := si.DefenseOverhead(*iters, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "defensebench:", err)
		os.Exit(1)
	}
	fmt.Println("Figure 12: fence-defense slowdown over the unsafe baseline")
	fmt.Print(res.Format(names))
	fmt.Println("\npaper (SPEC CPU2017 on gem5): 1.58x mean Spectre model, 5.38x mean Futuristic model")
}
