package main

import (
	"encoding/json"
	"strings"
	"testing"

	"specinterference/internal/cmdtest"
)

func TestSmoke(t *testing.T) {
	out := cmdtest.Run(t, "", "-poc", "dcache", "-bits", "2", "-reps", "1")
	if !strings.Contains(out, "Figure 11") || !strings.Contains(out, "reps=") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

// TestScaleFlag: -scale multiplies the per-point bit count (small
// defaults unchanged when absent) and the record reflects the scaled
// parameters.
func TestScaleFlag(t *testing.T) {
	out := cmdtest.Run(t, "", "-poc", "dcache", "-bits", "2", "-reps", "1", "-scale", "2", "-json")
	var curves []struct {
		Points []struct {
			Bits int `json:"bits"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(out), &curves); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(curves) != 1 || len(curves[0].Points) != 1 || curves[0].Points[0].Bits != 4 {
		t.Errorf("scaled run should measure 4 bits per point: %+v", curves)
	}
}

func TestSmokeJSON(t *testing.T) {
	out := cmdtest.Run(t, "", "-poc", "icache", "-bits", "2", "-reps", "1,3", "-json", "-parallel", "2")
	var curves []struct {
		PoC    string `json:"poc"`
		Points []struct {
			Reps int `json:"reps"`
			Bits int `json:"bits"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(out), &curves); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(curves) != 1 || curves[0].PoC != "icache" || len(curves[0].Points) != 2 {
		t.Errorf("unexpected JSON payload: %+v", curves)
	}
}
