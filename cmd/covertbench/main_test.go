package main

import (
	"encoding/json"
	"strings"
	"testing"

	"specinterference/internal/cmdtest"
)

func TestSmoke(t *testing.T) {
	out := cmdtest.Run(t, "", "-poc", "dcache", "-bits", "2", "-reps", "1")
	if !strings.Contains(out, "Figure 11") || !strings.Contains(out, "reps=") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestSmokeJSON(t *testing.T) {
	out := cmdtest.Run(t, "", "-poc", "icache", "-bits", "2", "-reps", "1,3", "-json", "-parallel", "2")
	var curves []struct {
		PoC    string `json:"poc"`
		Points []struct {
			Reps int `json:"reps"`
			Bits int `json:"bits"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(out), &curves); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(curves) != 1 || curves[0].PoC != "icache" || len(curves[0].Points) != 2 {
		t.Errorf("unexpected JSON payload: %+v", curves)
	}
}
