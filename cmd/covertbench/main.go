// Command covertbench regenerates Figure 11: bit error probability versus
// bit rate for the D-Cache (§4.2) and I-Cache (§4.3) covert-channel PoCs.
// The trade-off knob is the number of attack repetitions per transmitted
// bit, decoded by majority vote.
//
// The run itself goes through the shared experiment engine
// (internal/experiment), which also provides the common flags:
//
//	covertbench [-poc dcache|icache|both] [-bits 64] [-reps 1,3,5,9,15]
//	            [-seed 1] [-parallel N] [-backend inprocess|subprocess|remote]
//	            [-procs N] [-scale N] [-progress] [-json] [-store DIR]
package main

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"specinterference/internal/channel"
	"specinterference/internal/experiment"
	_ "specinterference/internal/experiment/remote" // registers -backend=remote and the -remote-worker mode
	"specinterference/internal/results"
)

// jsonCurve is the machine-readable form of one PoC's Figure 11 curve.
type jsonCurve struct {
	PoC    string      `json:"poc"`
	Scheme string      `json:"scheme"`
	Seed   uint64      `json:"seed"`
	Points []jsonPoint `json:"points"`
}

// jsonPoint is one error-vs-rate curve point.
type jsonPoint struct {
	Reps         int     `json:"reps"`
	Bits         int     `json:"bits"`
	Errors       int     `json:"errors"`
	Dropped      int     `json:"dropped"`
	ErrorRate    float64 `json:"error_rate"`
	CyclesPerBit float64 `json:"cycles_per_bit"`
	Bps          float64 `json:"bps"`
}

// displayName maps persisted PoC names to the Figure 11 captions.
func displayName(poc string) string {
	switch poc {
	case "dcache":
		return "D-Cache"
	case "icache":
		return "I-Cache"
	default:
		return poc
	}
}

func main() {
	experiment.Main(experiment.CLIConfig{
		Name:       "covertbench",
		Experiment: results.ExpFigure11,
		Flags: func(fs *flag.FlagSet) func() (results.Params, error) {
			poc := fs.String("poc", "both", "dcache, icache or both")
			bits := fs.Int("bits", 64, "random bits per curve point")
			repsFlag := fs.String("reps", "1,3,5,9,15", "comma-separated repetitions-per-bit sweep")
			seed := fs.Uint64("seed", 1, "measurement seed")
			return func() (results.Params, error) {
				var pocs []string
				switch *poc {
				case "dcache", "icache":
					pocs = []string{*poc}
				case "both":
					pocs = []string{"dcache", "icache"}
				default:
					return results.Params{}, fmt.Errorf("bad -poc value %q (want dcache, icache or both)", *poc)
				}
				var reps []int
				for _, s := range strings.Split(*repsFlag, ",") {
					v, err := strconv.Atoi(strings.TrimSpace(s))
					if err != nil || v < 1 {
						return results.Params{}, fmt.Errorf("bad reps value %q", s)
					}
					reps = append(reps, v)
				}
				return results.Params{PoCs: pocs, Bits: *bits, Reps: reps, Seed: *seed}, nil
			}
		},
		Text: func(w io.Writer, rec *results.Record) error {
			for _, c := range rec.Figure11.Curves {
				fmt.Fprintf(w, "Figure 11 (%s PoC, scheme %s): error rate vs bit rate\n",
					displayName(c.PoC), c.Scheme)
				for _, pt := range c.Points {
					r := channel.Result{
						Reps: pt.Reps, Bits: pt.Bits, Errors: pt.Errors, Dropped: pt.Dropped,
						ErrorRate: pt.ErrorRate, CyclesPerBit: pt.CyclesPerBit, Bps: pt.Bps,
					}
					fmt.Fprintln(w, "  "+r.String())
				}
				fmt.Fprintln(w)
			}
			return nil
		},
		JSON: func(rec *results.Record) (any, error) {
			curves := make([]jsonCurve, 0, len(rec.Figure11.Curves))
			for _, c := range rec.Figure11.Curves {
				jc := jsonCurve{PoC: c.PoC, Scheme: c.Scheme, Seed: rec.Params.Seed}
				for _, pt := range c.Points {
					jc.Points = append(jc.Points, jsonPoint{
						Reps: pt.Reps, Bits: pt.Bits, Errors: pt.Errors, Dropped: pt.Dropped,
						ErrorRate: pt.ErrorRate, CyclesPerBit: pt.CyclesPerBit, Bps: pt.Bps,
					})
				}
				curves = append(curves, jc)
			}
			return curves, nil
		},
	})
}
