// Command covertbench regenerates Figure 11: bit error probability versus
// bit rate for the D-Cache (§4.2) and I-Cache (§4.3) covert-channel PoCs.
// The trade-off knob is the number of attack repetitions per transmitted
// bit, decoded by majority vote.
//
// Usage:
//
//	covertbench [-poc dcache|icache|both] [-bits 64] [-reps 1,3,5,9,15]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	si "specinterference"
)

func main() {
	poc := flag.String("poc", "both", "dcache, icache or both")
	bits := flag.Int("bits", 64, "random bits per curve point")
	repsFlag := flag.String("reps", "1,3,5,9,15", "comma-separated repetitions-per-bit sweep")
	seed := flag.Uint64("seed", 1, "measurement seed")
	flag.Parse()

	var reps []int
	for _, s := range strings.Split(*repsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "covertbench: bad reps value %q\n", s)
			os.Exit(1)
		}
		reps = append(reps, v)
	}

	run := func(name string, p *si.PoC) {
		fmt.Printf("Figure 11 (%s PoC, scheme %s): error rate vs bit rate\n", name, p.SchemeName)
		results, err := si.ChannelCurve(p, reps, *bits, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "covertbench:", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Println("  " + r.String())
		}
		fmt.Println()
	}
	if *poc == "dcache" || *poc == "both" {
		run("D-Cache", si.DCacheFigure11())
	}
	if *poc == "icache" || *poc == "both" {
		run("I-Cache", si.ICacheFigure11())
	}
}
