// Command covertbench regenerates Figure 11: bit error probability versus
// bit rate for the D-Cache (§4.2) and I-Cache (§4.3) covert-channel PoCs.
// The trade-off knob is the number of attack repetitions per transmitted
// bit, decoded by majority vote.
//
// Usage:
//
//	covertbench [-poc dcache|icache|both] [-bits 64] [-reps 1,3,5,9,15] [-parallel N] [-json] [-store DIR]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	si "specinterference"
)

// jsonCurve is the machine-readable form of one PoC's Figure 11 curve.
type jsonCurve struct {
	PoC    string      `json:"poc"`
	Scheme string      `json:"scheme"`
	Seed   uint64      `json:"seed"`
	Points []jsonPoint `json:"points"`
}

// jsonPoint is one error-vs-rate curve point.
type jsonPoint struct {
	Reps         int     `json:"reps"`
	Bits         int     `json:"bits"`
	Errors       int     `json:"errors"`
	Dropped      int     `json:"dropped"`
	ErrorRate    float64 `json:"error_rate"`
	CyclesPerBit float64 `json:"cycles_per_bit"`
	Bps          float64 `json:"bps"`
}

func main() {
	poc := flag.String("poc", "both", "dcache, icache or both")
	bits := flag.Int("bits", 64, "random bits per curve point")
	repsFlag := flag.String("reps", "1,3,5,9,15", "comma-separated repetitions-per-bit sweep")
	seed := flag.Uint64("seed", 1, "measurement seed")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = one per CPU); trials shard per bit×rep, results identical at any value")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the text curves")
	storeDir := flag.String("store", "", "append a run record to this results-store directory")
	flag.Parse()

	if *poc != "dcache" && *poc != "icache" && *poc != "both" {
		fmt.Fprintf(os.Stderr, "covertbench: bad -poc value %q (want dcache, icache or both)\n", *poc)
		os.Exit(1)
	}
	var reps []int
	for _, s := range strings.Split(*repsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "covertbench: bad reps value %q\n", s)
			os.Exit(1)
		}
		reps = append(reps, v)
	}

	var curves []jsonCurve
	var measured []si.ChannelCurveInput
	start := time.Now()
	run := func(display, name string, p *si.PoC) {
		results, err := si.ChannelCurveParallel(context.Background(), p, reps, *bits, *seed, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "covertbench:", err)
			os.Exit(1)
		}
		measured = append(measured, si.ChannelCurveInput{PoC: name, Scheme: p.SchemeName, Points: results})
		if *jsonOut {
			c := jsonCurve{PoC: name, Scheme: p.SchemeName, Seed: *seed}
			for _, r := range results {
				c.Points = append(c.Points, jsonPoint{
					Reps: r.Reps, Bits: r.Bits, Errors: r.Errors, Dropped: r.Dropped,
					ErrorRate: r.ErrorRate, CyclesPerBit: r.CyclesPerBit, Bps: r.Bps,
				})
			}
			curves = append(curves, c)
			return
		}
		fmt.Printf("Figure 11 (%s PoC, scheme %s): error rate vs bit rate\n", display, p.SchemeName)
		for _, r := range results {
			fmt.Println("  " + r.String())
		}
		fmt.Println()
	}
	if *poc == "dcache" || *poc == "both" {
		run("D-Cache", "dcache", si.DCacheFigure11())
	}
	if *poc == "icache" || *poc == "both" {
		run("I-Cache", "icache", si.ICacheFigure11())
	}
	if *storeDir != "" {
		rec, err := si.NewFigure11Record(measured, *bits, reps, *seed)
		notice, err := si.RecordRunNotice(*storeDir, rec, err, *parallel, start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "covertbench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, notice)
	}
	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(curves); err != nil {
			fmt.Fprintln(os.Stderr, "covertbench:", err)
			os.Exit(1)
		}
	}
}
