// Command benchstore manages the committed perf trajectory: the
// BENCH_<name>.json files at the repo root, one per benchmark in
// bench_test.go, each an append-only history of blessed observations
// whose newest entry is the active baseline. It is resultstore's perf
// twin — where resultstore pins what the experiments compute, benchstore
// pins what they cost.
//
// Usage:
//
//	benchstore check [-dir DIR] [-pkg PKG] [-bench RE] [-from FILE] [-ns-band X] [-v]
//	benchstore bless [-dir DIR] [-pkg PKG] [-bench RE] [-from FILE] -note STR
//	benchstore run   [-pkg PKG] [-bench RE]
//	benchstore list  [-dir DIR]
//
// check runs the fixed-seed suite (`go test -run '^$' -bench RE
// -benchtime 1x -benchmem`), parses it, and diffs every benchmark
// against its committed baseline: allocs/op and B/op exact for the
// steady-state hot-path benchmarks (the alloc-free trial-loop contract),
// ratio-banded elsewhere; ns/op inside a generous band (machines vary —
// the alloc gates carry the precision); b.ReportMetric shape metrics
// exact always (the suite is fixed-seed deterministic). Any regression,
// missing trajectory, or exact-gate mismatch exits non-zero — the CI
// gate. -from FILE checks a saved `go test -bench` output instead of
// running the suite.
//
// bless appends the current numbers to each trajectory with provenance
// (date, commit, toolchain, -note) — the reviewed path for intentional
// perf shifts, and how improvements become the new floor.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"specinterference/internal/bench"
	"specinterference/internal/results"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "check":
		err = runCheck(args)
	case "bless":
		err = runBless(args)
	case "run":
		err = runRun(args)
	case "list":
		err = runList(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "benchstore: unknown subcommand %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  benchstore check [-dir DIR] [-pkg PKG] [-bench RE] [-from FILE] [-ns-band X] [-v]
  benchstore bless [-dir DIR] [-pkg PKG] [-bench RE] [-from FILE] -note STR
  benchstore run   [-pkg PKG] [-bench RE]
  benchstore list  [-dir DIR]
`)
}

// suiteFlags registers the shared run-or-read flags and returns a loader.
func suiteFlags(fs *flag.FlagSet) func() ([]bench.Result, error) {
	pkg := fs.String("pkg", ".", "package holding the benchmark suite")
	pattern := fs.String("bench", ".", "benchmark regexp passed to -bench")
	from := fs.String("from", "", "parse a saved `go test -bench` output file instead of running the suite")
	return func() ([]bench.Result, error) {
		if *from != "" {
			return bench.ReadFile(*from)
		}
		return bench.Run(bench.RunConfig{Pkg: *pkg, Pattern: *pattern})
	}
}

func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	dir := fs.String("dir", ".", "trajectory store directory (BENCH_*.json)")
	load := suiteFlags(fs)
	nsBand := fs.Float64("ns-band", 0, "override the ns/op ratio band (0 = default)")
	verbose := fs.Bool("v", false, "print same/drift comparisons too")
	fs.Parse(args)
	store, err := bench.OpenStore(*dir)
	if err != nil {
		return err
	}
	results, err := load()
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results to check")
	}
	tol := bench.DefaultTolerance()
	if *nsBand > 0 {
		tol.NsBand = *nsBand
	}
	rep, err := bench.Check(store, results, tol)
	if err != nil {
		return err
	}
	fmt.Print(rep.Format(*verbose))
	if !rep.OK() {
		os.Exit(1)
	}
	return nil
}

func runBless(args []string) error {
	fs := flag.NewFlagSet("bless", flag.ExitOnError)
	dir := fs.String("dir", ".", "trajectory store directory (BENCH_*.json)")
	load := suiteFlags(fs)
	note := fs.String("note", "", "why this entry is being blessed (required)")
	fs.Parse(args)
	if *note == "" {
		return fmt.Errorf("bless requires -note explaining the new baseline")
	}
	store, err := bench.OpenStore(*dir)
	if err != nil {
		return err
	}
	res, err := load()
	if err != nil {
		return err
	}
	if len(res) == 0 {
		return fmt.Errorf("no benchmark results to bless")
	}
	date := time.Now().UTC().Format("2006-01-02")
	if err := bench.Bless(store, res, date, results.GitRevision(), runtime.Version(), *note); err != nil {
		return err
	}
	for _, r := range res {
		fmt.Printf("blessed %s (%g ns/op, %g allocs/op)\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}
	return nil
}

func runRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	load := suiteFlags(fs)
	fs.Parse(args)
	res, err := load()
	if err != nil {
		return err
	}
	for _, r := range res {
		fmt.Printf("%-32s %14.0f ns/op %10.0f B/op %8.0f allocs/op", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		units := make([]string, 0, len(r.Metrics))
		for u := range r.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			fmt.Printf(" %g %s", r.Metrics[u], u)
		}
		fmt.Println()
	}
	return nil
}

func runList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	dir := fs.String("dir", ".", "trajectory store directory (BENCH_*.json)")
	fs.Parse(args)
	store, err := bench.OpenStore(*dir)
	if err != nil {
		return err
	}
	names, err := store.Names()
	if err != nil {
		return err
	}
	for _, name := range names {
		t, err := store.Load(name)
		if err != nil {
			return err
		}
		base, err := t.Baseline()
		if err != nil {
			return err
		}
		fmt.Printf("%-32s %2d entries  baseline %s (%s): %g ns/op, %g allocs/op\n",
			name, len(t.Entries), base.Date, base.Note, base.NsPerOp, base.AllocsPerOp)
	}
	return nil
}
