// Command interference regenerates Figure 7: the interference-gadget
// contention histogram. It measures the interference target's execution
// time (first f(z) instruction issue → load A completion) with the gadget
// inert (secret 0) and active (secret 1).
//
// The run itself goes through the shared experiment engine
// (internal/experiment), which also provides the common flags:
//
//	interference [-trials 500] [-jitter 30] [-seed 1] [-parallel N]
//	             [-backend inprocess|subprocess|remote] [-procs N] [-scale N]
//	             [-progress] [-json] [-store DIR]
package main

import (
	"flag"
	"fmt"
	"io"

	"specinterference/internal/core"
	"specinterference/internal/experiment"
	_ "specinterference/internal/experiment/remote" // registers -backend=remote and the -remote-worker mode
	"specinterference/internal/results"
)

func main() {
	experiment.Main(experiment.CLIConfig{
		Name:       "interference",
		Experiment: results.ExpFigure7,
		Flags: func(fs *flag.FlagSet) func() (results.Params, error) {
			trials := fs.Int("trials", 500, "trials per arm")
			jitter := fs.Int("jitter", 30, "DRAM latency jitter (cycles)")
			seed := fs.Uint64("seed", 1, "seed")
			return func() (results.Params, error) {
				return results.Params{Trials: *trials, Jitter: *jitter, Seed: *seed}, nil
			}
		},
		Text: renderText,
		JSON: renderJSON,
	})
}

// renderText reproduces the pre-engine histogram rendering from the
// persisted payload (the histograms are derived views of the arms).
func renderText(w io.Writer, rec *results.Record) error {
	res := core.BuildFigure7Result(rec.Figure7.Baseline, rec.Figure7.Interference)
	fmt.Fprintln(w, "Figure 7: interference gadget contention histogram")
	fmt.Fprintf(w, "separation: %.1f cycles   overlap coefficient: %.3f\n\n", res.Separation, res.Overlap)
	fmt.Fprintln(w, "baseline (no interference):")
	fmt.Fprint(w, res.BaseHist.Render(50))
	fmt.Fprintln(w, "\ninterference:")
	fmt.Fprint(w, res.IntHist.Render(50))
	fmt.Fprintln(w, "\npaper: ~80 rdtsc-cycle shift with clearly separated distributions")
	return nil
}

// renderJSON emits the established machine-readable shape.
func renderJSON(rec *results.Record) (any, error) {
	return struct {
		Trials       int       `json:"trials"`
		Jitter       int       `json:"jitter"`
		Seed         uint64    `json:"seed"`
		Separation   float64   `json:"separation_cycles"`
		Overlap      float64   `json:"overlap_coefficient"`
		Baseline     []float64 `json:"baseline_latencies"`
		Interference []float64 `json:"interference_latencies"`
	}{
		rec.Params.Trials, rec.Params.Jitter, rec.Params.Seed,
		rec.Figure7.Separation, rec.Figure7.Overlap,
		rec.Figure7.Baseline, rec.Figure7.Interference,
	}, nil
}
