// Command interference regenerates Figure 7: the interference-gadget
// contention histogram. It measures the interference target's execution
// time (first f(z) instruction issue → load A completion) with the gadget
// inert (secret 0) and active (secret 1).
//
// Usage:
//
//	interference [-trials 500] [-jitter 30]
package main

import (
	"flag"
	"fmt"
	"os"

	si "specinterference"
)

func main() {
	trials := flag.Int("trials", 500, "trials per arm")
	jitter := flag.Int("jitter", 30, "DRAM latency jitter (cycles)")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	res, err := si.Figure7(*trials, *jitter, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "interference:", err)
		os.Exit(1)
	}
	fmt.Println("Figure 7: interference gadget contention histogram")
	fmt.Printf("separation: %.1f cycles   overlap coefficient: %.3f\n\n", res.Separation, res.Overlap)
	fmt.Println("baseline (no interference):")
	fmt.Print(res.BaseHist.Render(50))
	fmt.Println("\ninterference:")
	fmt.Print(res.IntHist.Render(50))
	fmt.Println("\npaper: ~80 rdtsc-cycle shift with clearly separated distributions")
}
