// Command interference regenerates Figure 7: the interference-gadget
// contention histogram. It measures the interference target's execution
// time (first f(z) instruction issue → load A completion) with the gadget
// inert (secret 0) and active (secret 1).
//
// Usage:
//
//	interference [-trials 500] [-jitter 30] [-parallel N] [-json] [-store DIR]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	si "specinterference"
)

func main() {
	trials := flag.Int("trials", 500, "trials per arm")
	jitter := flag.Int("jitter", 30, "DRAM latency jitter (cycles)")
	seed := flag.Uint64("seed", 1, "seed")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = one per CPU); results are identical at any value")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the histograms")
	storeDir := flag.String("store", "", "append a run record to this results-store directory")
	flag.Parse()

	start := time.Now()
	res, err := si.Figure7Parallel(context.Background(), *trials, *jitter, *seed, *parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "interference:", err)
		os.Exit(1)
	}
	if *storeDir != "" {
		rec, err := si.NewFigure7Record(res, *trials, *jitter, *seed)
		notice, err := si.RecordRunNotice(*storeDir, rec, err, *parallel, start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "interference:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, notice)
	}
	if *jsonOut {
		out := struct {
			Trials       int       `json:"trials"`
			Jitter       int       `json:"jitter"`
			Seed         uint64    `json:"seed"`
			Separation   float64   `json:"separation_cycles"`
			Overlap      float64   `json:"overlap_coefficient"`
			Baseline     []float64 `json:"baseline_latencies"`
			Interference []float64 `json:"interference_latencies"`
		}{*trials, *jitter, *seed, res.Separation, res.Overlap, res.Baseline, res.Interference}
		if err := json.NewEncoder(os.Stdout).Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "interference:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println("Figure 7: interference gadget contention histogram")
	fmt.Printf("separation: %.1f cycles   overlap coefficient: %.3f\n\n", res.Separation, res.Overlap)
	fmt.Println("baseline (no interference):")
	fmt.Print(res.BaseHist.Render(50))
	fmt.Println("\ninterference:")
	fmt.Print(res.IntHist.Render(50))
	fmt.Println("\npaper: ~80 rdtsc-cycle shift with clearly separated distributions")
}
