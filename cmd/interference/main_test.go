package main

import (
	"encoding/json"
	"strings"
	"testing"

	"specinterference/internal/cmdtest"
)

func TestSmoke(t *testing.T) {
	out := cmdtest.Run(t, "", "-trials", "2", "-jitter", "5")
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "separation") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestSmokeJSON(t *testing.T) {
	out := cmdtest.Run(t, "", "-trials", "2", "-jitter", "5", "-json", "-parallel", "2")
	var res struct {
		Trials       int       `json:"trials"`
		Baseline     []float64 `json:"baseline_latencies"`
		Interference []float64 `json:"interference_latencies"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if res.Trials != 2 || len(res.Baseline) != 2 || len(res.Interference) != 2 {
		t.Errorf("unexpected JSON payload: %+v", res)
	}
}
