package main

import (
	"encoding/json"
	"strings"
	"testing"

	"specinterference/internal/cmdtest"
)

func TestSmoke(t *testing.T) {
	out := cmdtest.Run(t, "", "-trials", "2", "-jitter", "5")
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "separation") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

// TestSmokeSubprocess: the subprocess backend re-execs this binary in
// shard-worker mode and must reproduce the in-process output exactly.
func TestSmokeSubprocess(t *testing.T) {
	want := cmdtest.Run(t, "", "-trials", "2", "-jitter", "5")
	got := cmdtest.Run(t, "", "-trials", "2", "-jitter", "5", "-backend", "subprocess", "-procs", "2")
	if got != want {
		t.Errorf("subprocess output diverged from in-process:\n--- inprocess\n%s\n--- subprocess\n%s", want, got)
	}
}

// TestSmokeRemote: the remote backend runs an HTTP coordinator on a
// loopback ephemeral port with re-exec'd -remote-worker processes and
// must reproduce the in-process output exactly.
func TestSmokeRemote(t *testing.T) {
	want := cmdtest.Run(t, "", "-trials", "2", "-jitter", "5")
	got := cmdtest.Run(t, "", "-trials", "2", "-jitter", "5", "-backend", "remote", "-procs", "2", "-chunk", "1")
	if got != want {
		t.Errorf("remote output diverged from in-process:\n--- inprocess\n%s\n--- remote\n%s", want, got)
	}
}

// TestProgressFlag: -progress reports shard completion on stderr and
// leaves stdout byte-identical.
func TestProgressFlag(t *testing.T) {
	want := cmdtest.Run(t, "", "-trials", "2", "-jitter", "5")
	stdout, stderr := cmdtest.RunCapture(t, "", "-trials", "2", "-jitter", "5", "-progress")
	if stdout != want {
		t.Errorf("-progress changed stdout:\n--- without\n%s\n--- with\n%s", want, stdout)
	}
	if !strings.Contains(stderr, "4/4 shards") {
		t.Errorf("-progress stderr lacks the completion line:\n%s", stderr)
	}
}

func TestSmokeJSON(t *testing.T) {
	out := cmdtest.Run(t, "", "-trials", "2", "-jitter", "5", "-json", "-parallel", "2")
	var res struct {
		Trials       int       `json:"trials"`
		Baseline     []float64 `json:"baseline_latencies"`
		Interference []float64 `json:"interference_latencies"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if res.Trials != 2 || len(res.Baseline) != 2 || len(res.Interference) != 2 {
		t.Errorf("unexpected JSON payload: %+v", res)
	}
}
