package main

import (
	"strings"
	"testing"

	"specinterference/internal/cmdtest"
)

func TestSmoke(t *testing.T) {
	out := cmdtest.Run(t, "movi r1, 2\nhalt\n")
	if !strings.Contains(out, "cycles") {
		t.Errorf("unexpected output:\n%s", out)
	}
}
