// Command specsim runs an assembler program on the out-of-order simulator
// under a chosen speculation scheme, optionally printing a pipeline
// timeline and core statistics.
//
// Usage:
//
//	specsim -f prog.s [-scheme dom] [-trace] [-max 1000000]
//	echo 'movi r1, 2\nhalt' | specsim
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	si "specinterference"
)

func main() {
	file := flag.String("f", "", "assembler source file ('-' or empty reads stdin)")
	schemeName := flag.String("scheme", "unsafe", "speculation scheme: "+strings.Join(si.SchemeNames(), ", "))
	showTrace := flag.Bool("trace", false, "print the pipeline timeline")
	maxCycles := flag.Int64("max", 10_000_000, "cycle budget")
	flag.Parse()

	if err := run(*file, *schemeName, *showTrace, *maxCycles); err != nil {
		fmt.Fprintln(os.Stderr, "specsim:", err)
		os.Exit(1)
	}
}

func run(file, schemeName string, showTrace bool, maxCycles int64) error {
	var src []byte
	var err error
	if file == "" || file == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(file)
	}
	if err != nil {
		return err
	}
	prog, err := si.Assemble(string(src))
	if err != nil {
		return err
	}
	policy, err := si.Scheme(schemeName)
	if err != nil {
		return err
	}
	sys, _, err := si.NewSystem(si.DefaultConfig(1))
	if err != nil {
		return err
	}
	rec := si.NewTraceRecorder()
	if showTrace {
		sys.Core(0).SetTraceHook(rec)
	}
	if err := sys.LoadProgram(0, prog, policy); err != nil {
		return err
	}
	if err := sys.Run(maxCycles); err != nil {
		return err
	}
	st := sys.Core(0).Stats()
	fmt.Printf("scheme: %s\n", policy.Name())
	fmt.Printf("cycles: %d  retired: %d  IPC: %.2f  squashes: %d\n",
		st.Cycles, st.Retired, st.IPC(), st.Squashes)
	fmt.Printf("delayed loads: %d  invisible loads: %d  exposes: %d  MSHR retries: %d\n",
		st.LoadsDelayed, st.LoadsInvisible, st.Exposes, st.MSHRRetries)
	if showTrace {
		fmt.Println()
		fmt.Print(si.RenderTimeline(rec.Records(), si.TimelineOptions{ShowSquashed: true}))
	}
	return nil
}
