// Command specsim runs an assembler program on the out-of-order simulator
// under a chosen speculation scheme, optionally printing a pipeline
// timeline and core statistics. With -detect it instead runs the static
// speculative-leak analysis: no simulation, just the per-branch
// speculative windows the policy admits (what issues on the wrong path,
// which lines it touches, how much it parks in the reservation stations).
//
// Usage:
//
//	specsim -f prog.s [-scheme dom] [-trace] [-max 1000000]
//	specsim -f prog.s -scheme dom -detect
//	echo 'movi r1, 2\nhalt' | specsim
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	si "specinterference"
)

func main() {
	file := flag.String("f", "", "assembler source file ('-' or empty reads stdin)")
	schemeName := flag.String("scheme", "unsafe", "speculation scheme: "+strings.Join(si.SchemeNames(), ", "))
	showTrace := flag.Bool("trace", false, "print the pipeline timeline")
	detect := flag.Bool("detect", false, "statically analyze the program's speculative windows instead of simulating")
	maxCycles := flag.Int64("max", 10_000_000, "cycle budget")
	flag.Parse()

	if err := run(*file, *schemeName, *showTrace, *detect, *maxCycles); err != nil {
		fmt.Fprintln(os.Stderr, "specsim:", err)
		os.Exit(1)
	}
}

func run(file, schemeName string, showTrace, detectMode bool, maxCycles int64) error {
	var src []byte
	var err error
	if file == "" || file == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(file)
	}
	if err != nil {
		return err
	}
	prog, err := si.Assemble(string(src))
	if err != nil {
		return err
	}
	policy, err := si.Scheme(schemeName)
	if err != nil {
		return err
	}
	if detectMode {
		return runDetect(prog, policy)
	}
	sys, _, err := si.NewSystem(si.DefaultConfig(1))
	if err != nil {
		return err
	}
	rec := si.NewTraceRecorder()
	if showTrace {
		sys.Core(0).SetTraceHook(rec)
	}
	if err := sys.LoadProgram(0, prog, policy); err != nil {
		return err
	}
	if err := sys.Run(maxCycles); err != nil {
		return err
	}
	st := sys.Core(0).Stats()
	fmt.Printf("scheme: %s\n", policy.Name())
	fmt.Printf("cycles: %d  retired: %d  IPC: %.2f  squashes: %d\n",
		st.Cycles, st.Retired, st.IPC(), st.Squashes)
	fmt.Printf("delayed loads: %d  invisible loads: %d  exposes: %d  MSHR retries: %d\n",
		st.LoadsDelayed, st.LoadsInvisible, st.Exposes, st.MSHRRetries)
	if showTrace {
		fmt.Println()
		fmt.Print(si.RenderTimeline(rec.Records(), si.TimelineOptions{ShowSquashed: true}))
	}
	return nil
}

// runDetect statically analyzes the program's speculative windows under
// the policy. Both self-composition environments are the zero state, so
// the analysis inspects what the policy admits rather than comparing
// secrets: differential signals need secret-dependent initial state and
// belong to the concordance experiment.
func runDetect(prog *si.Program, policy si.SpecPolicy) error {
	rep, err := si.AnalyzeLeak(prog, policy, [2]si.LeakEnv{})
	if err != nil {
		return err
	}
	f := rep.Facts
	fmt.Printf("scheme: %s\n", policy.Name())
	fmt.Printf("shadow: %s  ifetch: %s  issue-in-shadow: %v  stall-fetch: %v\n",
		f.Shadow, f.IFetch, f.IssueInShadow, f.StallFetch)
	if len(rep.Pairs) == 0 {
		fmt.Println("no speculative windows (no conditional branches reached, or fetch stalls in shadow)")
		return nil
	}
	for _, p := range rep.Pairs {
		w := p.W[0]
		fmt.Printf("branch@%d: sqrts issued %d (fast %d), miss lines %d, parked %d, visible lines %d, fetched I-lines %d\n",
			p.BranchPC, w.SqrtIssued, w.SqrtFast, len(w.MissLines), w.Parked, len(w.Visible), len(w.Fetched))
	}
	return nil
}
