package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specinterference/internal/cmdtest"
)

// TestSpeclintCleanTree runs the full suite over the repo the same way
// CI does: the committed tree must lint clean (exit 0, no findings).
func TestSpeclintCleanTree(t *testing.T) {
	stdout, stderr := cmdtest.RunCapture(t, "", "-C", "../..", "./...")
	if strings.TrimSpace(stdout) != "" || strings.TrimSpace(stderr) != "" {
		t.Fatalf("clean tree produced output:\nstdout: %s\nstderr: %s", stdout, stderr)
	}
}

// TestSpeclintSeededViolation lints a scratch module holding one
// violation per analyzer and asserts a non-zero exit naming each.
func TestSpeclintSeededViolation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratchlint\n\ngo 1.22\n")
	write("main.go", `package main

import (
	"fmt"
	"sync"
	"time"
)

type Spec struct {
	Run func(i int) (any, error)
}

var specs []*Spec

func register(s *Spec) { specs = append(specs, s) }

func init() {
	register(&Spec{Run: func(i int) (any, error) {
		return time.Now().UnixNano(), nil
	}})
}

type policy struct{ calls int }

func (p *policy) Shadow() int { return 0 }

func (p *policy) CanIssue(safe bool) bool {
	p.calls++
	return safe
}

type store struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func unlocked(s *store) int { return s.n }

//speclint:allocfree
func hot(n int) string {
	s := fmt.Sprintf("%d", n)
	return s
}

func main() {}
`)

	out := cmdtest.RunFail(t, "", "-C", dir, ".")
	for _, analyzer := range []string{"nondeterminism", "policypurity", "allocfree", "lockdiscipline"} {
		if !strings.Contains(out, analyzer+":") {
			t.Errorf("seeded violation output missing %s finding:\n%s", analyzer, out)
		}
	}
}

// TestSpeclintVetProtocol covers the vettool handshake flags.
func TestSpeclintVetProtocol(t *testing.T) {
	// go vet derives its cache key from the buildID field, so the line
	// must carry one; the leading token is the tool path.
	stdout := cmdtest.Run(t, "", "-V=full")
	if !strings.Contains(stdout, " version devel ") || !strings.Contains(stdout, "buildID=") {
		t.Fatalf("-V=full printed %q, want a 'version devel ... buildID=' line", stdout)
	}
	stdout = cmdtest.Run(t, "", "-flags")
	if strings.TrimSpace(stdout) != "[]" {
		t.Fatalf("-flags printed %q, want []", stdout)
	}
}
