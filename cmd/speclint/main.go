// Command speclint runs the repo's contract-enforcement analyzers
// (internal/lint): nondeterminism, policypurity, allocfree and
// lockdiscipline. It is the static counterpart of the dynamic gates —
// equivalence sweeps, AllocsPerRun pins, -race — and runs in CI ahead of
// the test matrix.
//
// Standalone mode (the CI gate):
//
//	speclint [-C dir] [-run analyzer,...] [packages]
//
// lints the named package patterns (default ./...) and exits 1 if any
// diagnostic fires, printing findings as file:line:col: analyzer: message.
//
// Vet mode: the binary also speaks the `go vet -vettool` unit protocol
// (-V=full, -flags, and a single JSON .cfg argument), so
//
//	go vet -vettool=$(which speclint) ./...
//
// works too. In vet mode each package is analyzed in isolation, so the
// nondeterminism reachability analysis only sees roots declared in the
// package under analysis; the standalone whole-module run is the
// authoritative gate.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"specinterference/internal/lint"
)

func main() {
	// Vet unit protocol: -V=full and -flags come before flag parsing.
	args := os.Args[1:]
	if len(args) == 1 && args[0] == "-V=full" {
		// go vet caches vet results keyed by the tool's content hash,
		// which it reads from the buildID field of this line.
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], selfHash())
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}

	dir := flag.String("C", ".", "change to `dir` before resolving packages")
	run := flag.String("run", "", "comma-separated analyzer subset (default: all)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := lint.ByName(*run)
	if err != nil {
		fail(err)
	}
	pkgs, err := lint.LoadPackages(*dir, patterns...)
	if err != nil {
		fail(err)
	}
	diags, err := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if err != nil {
		fail(err)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "speclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// vetUnit analyzes one `go vet` package unit; findings go to stderr and
// exit code 2, matching the vettool convention.
func vetUnit(cfgPath string) int {
	cfg, pkg, err := lint.LoadVetConfig(cfgPath)
	if cfg != nil && cfg.VetxOutput != "" {
		// vet requires the facts file to exist even though speclint
		// exports no facts.
		if werr := os.WriteFile(cfg.VetxOutput, nil, 0o666); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			return 1
		}
	}
	if err != nil {
		if cfg != nil && cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if pkg == nil { // VetxOnly unit: facts written, nothing to analyze
		return 0
	}
	diags, err := lint.Run([]*lint.Package{pkg}, lint.All())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// selfHash digests the running binary for the vet build-cache key; a
// rebuilt speclint invalidates prior vet verdicts.
func selfHash() []byte {
	exe, err := os.Executable()
	if err != nil {
		return []byte("unknown")
	}
	f, err := os.Open(exe)
	if err != nil {
		return []byte("unknown")
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return []byte("unknown")
	}
	return h.Sum(nil)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "speclint:", err)
	os.Exit(2)
}
