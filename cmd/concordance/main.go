// Command concordance runs the static speculative-leak detector
// (internal/detect) against the cycle-level simulator over every Table 1
// cell: each scheme × gadget × ordering combination is classified twice —
// once empirically, once by the static analysis — and the two verdicts
// are compared. Any disagreement that is not an explicitly enumerated
// exception fails the run.
//
// The run itself goes through the shared experiment engine
// (internal/experiment), which also provides the common flags:
//
//	concordance [-schemes dom,invisispec-spectre,...] [-parallel N]
//	            [-backend inprocess|subprocess|remote] [-procs N]
//	            [-progress] [-json] [-store DIR]
package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"specinterference/internal/experiment"
	_ "specinterference/internal/experiment/remote" // registers -backend=remote and the -remote-worker mode
	"specinterference/internal/results"
	"specinterference/internal/schemes"
)

func main() {
	experiment.Main(experiment.CLIConfig{
		Name:       "concordance",
		Experiment: results.ExpConcordance,
		Flags: func(fs *flag.FlagSet) func() (results.Params, error) {
			schemesFlag := fs.String("schemes", "", "comma-separated scheme list (default: all)")
			return func() (results.Params, error) {
				names := schemes.Names()
				if *schemesFlag != "" {
					names = strings.Split(*schemesFlag, ",")
				}
				return results.Params{Schemes: names}, nil
			}
		},
		Text: func(w io.Writer, rec *results.Record) error {
			tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
			fmt.Fprintln(tw, "GADGET|ORDERING\tSCHEME\tEMPIRICAL\tDETECTOR\tMECHANISM\tMATCH")
			matches := 0
			for _, c := range rec.Concordance.Cells {
				status := "ok"
				if !c.Match {
					status = "MISMATCH"
					if c.Exception != "" {
						status = "exception: " + c.Exception
					}
				} else {
					matches++
				}
				fmt.Fprintf(tw, "%s|%s\t%s\t%s\t%s\t%s\t%s\n",
					c.Gadget, c.Ordering, c.Scheme,
					vulnWord(c.Empirical), vulnWord(c.Detector), c.Mechanism, status)
			}
			if err := tw.Flush(); err != nil {
				return err
			}
			fmt.Fprintf(w, "\n%d/%d cells concordant\n", matches, len(rec.Concordance.Cells))
			return nil
		},
		JSON: func(rec *results.Record) (any, error) {
			return rec.Concordance.Cells, nil
		},
	})
}

func vulnWord(v bool) string {
	if v {
		return "leak"
	}
	return "protected"
}
