// Command vulnmatrix regenerates Table 1: the invisible-speculation
// vulnerability matrix. Every scheme is attacked with every gadget ×
// ordering combination; a cell is vulnerable when the visible LLC access
// pattern over the probe lines differs between secret values.
//
// Usage:
//
//	vulnmatrix [-schemes dom,invisispec-spectre,...] [-verify] [-parallel N] [-json] [-store DIR]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	si "specinterference"
)

// jsonCell is the machine-readable form of one matrix cell.
type jsonCell struct {
	Scheme     string `json:"scheme"`
	Gadget     string `json:"gadget"`
	Ordering   string `json:"ordering"`
	Vulnerable bool   `json:"vulnerable"`
	RefCycle   int64  `json:"ref_cycle,omitempty"`
}

func main() {
	schemesFlag := flag.String("schemes", "", "comma-separated scheme list (default: all)")
	verify := flag.Bool("verify", false, "compare against the paper's Table 1 and exit non-zero on mismatch")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = one per CPU); one shard per matrix cell, results identical at any value")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the text table")
	storeDir := flag.String("store", "", "append a run record to this results-store directory")
	flag.Parse()

	names := si.SchemeNames()
	if *schemesFlag != "" {
		names = strings.Split(*schemesFlag, ",")
	}
	start := time.Now()
	cells, err := si.VulnerabilityMatrixParallel(context.Background(), names, *parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vulnmatrix:", err)
		os.Exit(1)
	}
	if *storeDir != "" {
		rec, err := si.NewTable1Record(cells, names)
		notice, err := si.RecordRunNotice(*storeDir, rec, err, *parallel, start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vulnmatrix:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, notice)
	}
	if *jsonOut {
		out := make([]jsonCell, 0, len(cells))
		for _, c := range cells {
			out = append(out, jsonCell{
				Scheme: c.Scheme, Gadget: c.Gadget.String(), Ordering: c.Ordering.String(),
				Vulnerable: c.Vulnerable, RefCycle: c.RefCycle,
			})
		}
		if err := json.NewEncoder(os.Stdout).Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "vulnmatrix:", err)
			os.Exit(1)
		}
	} else {
		fmt.Print(si.FormatMatrix(cells))
	}

	if *verify {
		// In -json mode stdout must stay a single JSON document, so the
		// verify diagnostics go to stderr.
		diag := os.Stdout
		if *jsonOut {
			diag = os.Stderr
		}
		expected := si.ExpectedTable1()
		bad := 0
		for _, c := range cells {
			k := c.Gadget.String() + "|" + c.Ordering.String()
			if want := expected[k][c.Scheme]; want != c.Vulnerable {
				bad++
				fmt.Fprintf(diag, "MISMATCH %-22s %-22s got %v, paper says %v\n", k, c.Scheme, c.Vulnerable, want)
			}
		}
		if bad > 0 {
			fmt.Fprintf(diag, "%d mismatches against the paper's Table 1\n", bad)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Println("matrix matches the paper's Table 1")
		}
	}
}
