// Command vulnmatrix regenerates Table 1: the invisible-speculation
// vulnerability matrix. Every scheme is attacked with every gadget ×
// ordering combination; a cell is vulnerable when the visible LLC access
// pattern over the probe lines differs between secret values.
//
// The run itself goes through the shared experiment engine
// (internal/experiment), which also provides the common flags:
//
//	vulnmatrix [-schemes dom,invisispec-spectre,...] [-verify] [-parallel N]
//	           [-backend inprocess|subprocess|remote] [-procs N]
//	           [-progress] [-json] [-store DIR]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"specinterference/internal/core"
	"specinterference/internal/experiment"
	_ "specinterference/internal/experiment/remote" // registers -backend=remote and the -remote-worker mode
	"specinterference/internal/results"
	"specinterference/internal/schemes"
)

// jsonCell is the machine-readable form of one matrix cell.
type jsonCell struct {
	Scheme     string `json:"scheme"`
	Gadget     string `json:"gadget"`
	Ordering   string `json:"ordering"`
	Vulnerable bool   `json:"vulnerable"`
	RefCycle   int64  `json:"ref_cycle,omitempty"`
}

func main() {
	var verify *bool
	experiment.Main(experiment.CLIConfig{
		Name:       "vulnmatrix",
		Experiment: results.ExpTable1,
		Flags: func(fs *flag.FlagSet) func() (results.Params, error) {
			schemesFlag := fs.String("schemes", "", "comma-separated scheme list (default: all)")
			verify = fs.Bool("verify", false, "compare against the paper's Table 1 and exit non-zero on mismatch")
			return func() (results.Params, error) {
				names := schemes.Names()
				if *schemesFlag != "" {
					names = strings.Split(*schemesFlag, ",")
				}
				return results.Params{Schemes: names}, nil
			}
		},
		Text: func(w io.Writer, rec *results.Record) error {
			cells, err := payloadCells(rec)
			if err != nil {
				return err
			}
			fmt.Fprint(w, core.FormatMatrix(cells))
			return nil
		},
		JSON: func(rec *results.Record) (any, error) {
			out := make([]jsonCell, 0, len(rec.Table1.Cells))
			for _, c := range rec.Table1.Cells {
				out = append(out, jsonCell{
					Scheme: c.Scheme, Gadget: c.Gadget, Ordering: c.Ordering,
					Vulnerable: c.Vulnerable, RefCycle: c.RefCycle,
				})
			}
			return out, nil
		},
		After: func(rec *results.Record, jsonMode bool) error {
			if !*verify {
				return nil
			}
			// In -json mode stdout must stay a single JSON document, so
			// the verify diagnostics go to stderr.
			diag := os.Stdout
			if jsonMode {
				diag = os.Stderr
			}
			expected := core.ExpectedTable1()
			bad := 0
			for _, c := range rec.Table1.Cells {
				k := c.Gadget + "|" + c.Ordering
				if want := expected[k][c.Scheme]; want != c.Vulnerable {
					bad++
					fmt.Fprintf(diag, "MISMATCH %-22s %-22s got %v, paper says %v\n", k, c.Scheme, c.Vulnerable, want)
				}
			}
			if bad > 0 {
				fmt.Fprintf(diag, "%d mismatches against the paper's Table 1\n", bad)
				os.Exit(1)
			}
			if !jsonMode {
				fmt.Println("matrix matches the paper's Table 1")
			}
			return nil
		},
	})
}

// payloadCells rebuilds typed matrix cells from the persisted payload.
func payloadCells(rec *results.Record) ([]core.MatrixCell, error) {
	cells := make([]core.MatrixCell, 0, len(rec.Table1.Cells))
	for _, c := range rec.Table1.Cells {
		g, err := core.ParseGadget(c.Gadget)
		if err != nil {
			return nil, err
		}
		o, err := core.ParseOrdering(c.Ordering)
		if err != nil {
			return nil, err
		}
		cells = append(cells, core.MatrixCell{
			Scheme: c.Scheme, Gadget: g, Ordering: o,
			Vulnerable: c.Vulnerable, RefCycle: c.RefCycle,
		})
	}
	return cells, nil
}
