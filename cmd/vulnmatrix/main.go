// Command vulnmatrix regenerates Table 1: the invisible-speculation
// vulnerability matrix. Every scheme is attacked with every gadget ×
// ordering combination; a cell is vulnerable when the visible LLC access
// pattern over the probe lines differs between secret values.
//
// Usage:
//
//	vulnmatrix [-schemes dom,invisispec-spectre,...] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	si "specinterference"
)

func main() {
	schemesFlag := flag.String("schemes", "", "comma-separated scheme list (default: all)")
	verify := flag.Bool("verify", false, "compare against the paper's Table 1 and exit non-zero on mismatch")
	flag.Parse()

	names := si.SchemeNames()
	if *schemesFlag != "" {
		names = strings.Split(*schemesFlag, ",")
	}
	cells, err := si.VulnerabilityMatrix(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vulnmatrix:", err)
		os.Exit(1)
	}
	fmt.Print(si.FormatMatrix(cells))

	if *verify {
		expected := si.ExpectedTable1()
		bad := 0
		for _, c := range cells {
			k := c.Gadget.String() + "|" + c.Ordering.String()
			if want := expected[k][c.Scheme]; want != c.Vulnerable {
				bad++
				fmt.Printf("MISMATCH %-22s %-22s got %v, paper says %v\n", k, c.Scheme, c.Vulnerable, want)
			}
		}
		if bad > 0 {
			fmt.Printf("%d mismatches against the paper's Table 1\n", bad)
			os.Exit(1)
		}
		fmt.Println("matrix matches the paper's Table 1")
	}
}
