package main

import (
	"encoding/json"
	"strings"
	"testing"

	"specinterference/internal/cmdtest"
)

func TestSmoke(t *testing.T) {
	out := cmdtest.Run(t, "", "-schemes", "unsafe")
	if !strings.Contains(out, "Gadget|Ordering") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestSmokeJSON(t *testing.T) {
	out := cmdtest.Run(t, "", "-schemes", "unsafe,dom", "-json", "-parallel", "2")
	var cells []struct {
		Scheme     string `json:"scheme"`
		Gadget     string `json:"gadget"`
		Ordering   string `json:"ordering"`
		Vulnerable bool   `json:"vulnerable"`
	}
	if err := json.Unmarshal([]byte(out), &cells); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	// 7 gadget×ordering combos × 2 schemes.
	if len(cells) != 14 {
		t.Errorf("got %d cells, want 14", len(cells))
	}
}
