// Command resultstore manages the persistent results store: run records
// (experiment parameters + metadata + full payloads) appended as JSONL
// under a store directory by the experiment binaries' -store flag, or
// regenerated here. It lists and shows history, diffs records with
// regression classification, and gates CI on "nothing regressed versus
// the committed baseline".
//
// Usage:
//
//	resultstore list     -store DIR
//	resultstore show     [-store DIR] ref
//	resultstore diff     [-store DIR] [-baseline DIR] refA [refB]
//	resultstore check    -baseline DIR [-store DIR] [-parallel N] [-backend B] [-procs N] [-listen ADDR] [-lease TTL] [-chunk N] [-journal DIR]
//	resultstore baseline -dir DIR [-parallel N] [-backend B] [-procs N] [-listen ADDR] [-lease TTL] [-chunk N] [-journal DIR]
//	resultstore bless    -baseline DIR [-store DIR] -reason STR
//
// A ref is "experiment" or "experiment@idx": figure7, table1, figure11,
// figure12 or concordance, with an optional 0-based history index
// (negative counts from the newest record; bare names mean the newest).
//
// diff compares refA against refB within -store, or — given -baseline —
// the baseline's newest record against the store's (old → new). Classes:
// identical (signatures match; worker counts and other metadata never
// matter), drift (numbers moved within thresholds), regression (a matrix
// cell flipped vulnerable↔protected, a concordance cell lost
// detector/simulator agreement, channel accuracy dropped, the
// interference separation collapsed, or defense overheads shifted), and
// incomparable (parameters differ).
//
// check reruns every baseline experiment at the baseline's recorded
// parameters and exits non-zero when any comparison classifies as
// regression or incomparable — the CI gate. baseline (re)writes the
// committed baseline records at the standard small-trial parameters.
// Both rerun through the experiment engine: -backend selects inprocess
// (worker goroutines), subprocess (re-exec'd worker processes, the
// -procs knob) or remote (an HTTP coordinator leasing shard chunks to
// -procs local workers over loopback, or to external -remote-worker
// processes when -procs is 0), with bit-identical records on every
// backend. With -backend remote, -journal DIR makes the coordinator
// journal every accepted shard result to <DIR>/<experiment>.jsonl; a
// check or baseline killed mid-run and re-invoked with the same
// -journal replays the journal and reruns only the remaining shards.
//
// bless promotes each experiment's newest record in -store to the
// committed baseline in one command, replacing the baseline record and
// stamping a provenance note (date, reason, commit) — the reviewed path
// for intentional result shifts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	si "specinterference"
)

func main() {
	// The subprocess backend re-execs this binary as a shard worker; a
	// worker process serves its range here and never returns.
	si.RunExperimentWorkerIfRequested()
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = runList(args)
	case "show":
		err = runShow(args)
	case "diff":
		err = runDiff(args)
	case "check":
		err = runCheck(args)
	case "baseline":
		err = runBaseline(args)
	case "bless":
		err = runBless(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "resultstore: unknown subcommand %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "resultstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  resultstore list     -store DIR
  resultstore show     [-store DIR] experiment[@idx]
  resultstore diff     [-store DIR] [-baseline DIR] refA [refB]
  resultstore check    -baseline DIR [-store DIR] [-parallel N] [-backend inprocess|subprocess|remote] [-procs N] [-listen ADDR] [-lease TTL] [-chunk N] [-journal DIR]
  resultstore baseline -dir DIR [-parallel N] [-backend inprocess|subprocess|remote] [-procs N] [-listen ADDR] [-lease TTL] [-chunk N] [-journal DIR]
  resultstore bless    -baseline DIR [-store DIR] -reason STR
`)
}

// backendFlags registers the shared execution-backend flags and returns
// a constructor to call after parsing; workers (-parallel) and procs
// (-procs) are echoed back for run-metadata stamping.
func backendFlags(fs *flag.FlagSet) func() (b si.ExperimentBackend, workers, procs int, err error) {
	parallel := fs.Int("parallel", 0, "worker goroutines for the reruns (0 = one per CPU in-process, serial per subprocess/remote worker)")
	backend := fs.String("backend", "inprocess", "execution backend: inprocess, subprocess or remote")
	procsFlag := fs.Int("procs", 0, "worker processes: subprocess workers (0 = one per CPU) or local remote workers (0 = wait for external -remote-worker processes)")
	listen := fs.String("listen", "", "remote backend: coordinator listen address (default 127.0.0.1:0)")
	lease := fs.Duration("lease", 0, "remote backend: shard-lease TTL before unfinished work is re-issued (0 = 10s)")
	chunk := fs.Int("chunk", 0, "shards per lease/dispatch chunk for the remote and subprocess schedulers (0 = automatic: subprocess uses about four chunks per worker; remote adapts to observed shard cost)")
	journal := fs.String("journal", "", "remote backend: shard-result journal directory for resumable coordinator restarts (accepted results append to <dir>/<experiment>.jsonl; a restarted run replays it and serves only the remainder)")
	return func() (si.ExperimentBackend, int, int, error) {
		b, err := si.NewExperimentBackendOptions(*backend, si.ExperimentBackendOptions{
			Procs: *procsFlag, Workers: *parallel,
			Chunk: *chunk, Listen: *listen, Lease: *lease, Journal: *journal,
		})
		return b, *parallel, *procsFlag, err
	}
}

// openStore opens dir without creating it for read-only subcommands.
func openStore(dir string) (*si.ResultStore, error) {
	if st, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("store %s: %w", dir, err)
	} else if !st.IsDir() {
		return nil, fmt.Errorf("store %s is not a directory", dir)
	}
	return si.OpenResultStore(dir)
}

func runList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	storeDir := fs.String("store", "results-store", "results store directory")
	fs.Parse(args)
	store, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	exps, err := store.Experiments()
	if err != nil {
		return err
	}
	if len(exps) == 0 {
		fmt.Printf("store %s is empty\n", store.Dir())
		return nil
	}
	fmt.Printf("%-12s %-5s %-20s %-14s %7s %8s  %s\n",
		"experiment", "idx", "created", "git", "workers", "wall", "signature")
	for _, exp := range exps {
		recs, err := store.Load(exp)
		if err != nil {
			return err
		}
		for i, r := range recs {
			created, git := r.Meta.CreatedAt, r.Meta.GitRev
			if created == "" {
				created = "-"
			}
			if git == "" {
				git = "-"
			}
			if len(git) > 12 {
				git = git[:12]
			}
			fmt.Printf("%-12s %-5d %-20s %-14s %7d %7dms  %.12s\n",
				exp, i, created, git, r.Meta.Workers, r.Meta.WallMillis, r.Hash)
		}
	}
	return nil
}

// resolve loads the record a ref names from a store.
func resolve(store *si.ResultStore, ref string) (*si.RunRecord, error) {
	exp, idx, err := si.ParseRecordRef(ref)
	if err != nil {
		return nil, err
	}
	return store.At(exp, idx)
}

func runShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	storeDir := fs.String("store", "results-store", "results store directory")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("show takes exactly one experiment[@idx] ref")
	}
	store, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	rec, err := resolve(store, fs.Arg(0))
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	storeDir := fs.String("store", "results-store", "results store directory")
	baselineDir := fs.String("baseline", "", "baseline store; diffs baseline (old) against -store (new)")
	fs.Parse(args)

	var old, new *si.RunRecord
	switch {
	case *baselineDir != "" && fs.NArg() == 1:
		baseline, err := openStore(*baselineDir)
		if err != nil {
			return err
		}
		store, err := openStore(*storeDir)
		if err != nil {
			return err
		}
		if old, err = resolve(baseline, fs.Arg(0)); err != nil {
			return err
		}
		if new, err = resolve(store, fs.Arg(0)); err != nil {
			return err
		}
	case *baselineDir == "" && fs.NArg() == 2:
		store, err := openStore(*storeDir)
		if err != nil {
			return err
		}
		if old, err = resolve(store, fs.Arg(0)); err != nil {
			return err
		}
		if new, err = resolve(store, fs.Arg(1)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("diff takes two refs, or one ref with -baseline")
	}
	report := si.DiffRunRecords(old, new)
	fmt.Print(report.Format())
	if report.Class >= si.DiffRegression {
		os.Exit(1)
	}
	return nil
}

func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	baselineDir := fs.String("baseline", "", "committed baseline store to gate against (required)")
	storeDir := fs.String("store", "", "optional store to append the fresh records to")
	mkBackend := backendFlags(fs)
	fs.Parse(args)
	if *baselineDir == "" {
		return fmt.Errorf("check requires -baseline DIR")
	}
	backend, workers, procs, err := mkBackend()
	if err != nil {
		return err
	}
	baseline, err := openStore(*baselineDir)
	if err != nil {
		return err
	}
	// A partial baseline is a disabled gate, not a smaller one: every
	// experiment must have a committed record or the check fails.
	exps, err := baseline.Experiments()
	if err != nil {
		return err
	}
	if want := si.ResultExperiments(); len(exps) != len(want) {
		return fmt.Errorf("baseline %s covers %v, want records for all of %v (regenerate with `resultstore baseline -dir %s`)",
			*baselineDir, exps, want, *baselineDir)
	}
	var sink *si.ResultStore
	if *storeDir != "" {
		if sink, err = si.OpenResultStore(*storeDir); err != nil {
			return err
		}
	}

	worst := si.DiffIdentical
	for _, exp := range exps {
		ref, err := baseline.Latest(exp)
		if err != nil {
			return err
		}
		start := time.Now()
		fresh, err := si.RunExperiment(context.Background(), exp, ref.Params, backend)
		if err != nil {
			return fmt.Errorf("rerun %s: %w", exp, err)
		}
		fresh.Stamp(workers, time.Since(start))
		fresh.Meta.Backend = backend.Name()
		if backend.Name() != "inprocess" {
			fresh.Meta.Procs = procs
		}
		fresh.Meta.Note = "resultstore check"
		if sink != nil {
			if err := sink.Append(fresh); err != nil {
				return err
			}
		}
		report := si.DiffRunRecords(ref, fresh)
		fmt.Print(report.Format())
		if report.Class > worst {
			worst = report.Class
		}
	}
	switch {
	case worst == si.DiffIncomparable:
		fmt.Printf("FAIL: baseline in %s is incomparable (parameters or schema changed) — refresh it with `resultstore baseline -dir %s`\n",
			*baselineDir, *baselineDir)
		os.Exit(1)
	case worst >= si.DiffRegression:
		fmt.Printf("FAIL: results regressed versus the baseline in %s\n", *baselineDir)
		os.Exit(1)
	}
	fmt.Printf("OK: no regression versus the baseline in %s\n", *baselineDir)
	return nil
}

func runBaseline(args []string) error {
	fs := flag.NewFlagSet("baseline", flag.ExitOnError)
	dir := fs.String("dir", "", "baseline directory to (re)write (required)")
	mkBackend := backendFlags(fs)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("baseline requires -dir DIR")
	}
	backend, _, _, err := mkBackend()
	if err != nil {
		return err
	}
	store, err := si.OpenResultStore(*dir)
	if err != nil {
		return err
	}
	for _, exp := range si.ResultExperiments() {
		params, err := si.BaselineRunParams(exp)
		if err != nil {
			return err
		}
		rec, err := si.RunExperiment(context.Background(), exp, params, backend)
		if err != nil {
			return fmt.Errorf("regenerate %s: %w", exp, err)
		}
		// Baselines are committed fixtures: keep them free of volatile
		// metadata so regenerating an unchanged tree is byte-identical,
		// and replace rather than append — one record per experiment.
		rec.Meta = si.RunMeta{Note: "baseline"}
		if err := store.Replace(rec); err != nil {
			return err
		}
		fmt.Printf("baseline %-9s %.12s written to %s\n", exp, rec.Hash, store.Dir())
	}
	return nil
}

// runBless promotes each experiment's newest store record to the
// committed baseline in one reviewed command, stamping a provenance note
// (date, reason, commit) so the history of intentional result shifts
// lives in the baseline files themselves.
func runBless(args []string) error {
	fs := flag.NewFlagSet("bless", flag.ExitOnError)
	storeDir := fs.String("store", "results-store", "store holding the run records to promote")
	baselineDir := fs.String("baseline", "", "committed baseline directory to update (required)")
	reason := fs.String("reason", "", "why the baseline is moving (recorded in the provenance note; required)")
	fs.Parse(args)
	if *baselineDir == "" {
		return fmt.Errorf("bless requires -baseline DIR")
	}
	if *reason == "" {
		return fmt.Errorf("bless requires -reason explaining the intentional result shift")
	}
	store, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	baseline, err := si.OpenResultStore(*baselineDir)
	if err != nil {
		return err
	}
	exps, err := store.Experiments()
	if err != nil {
		return err
	}
	if len(exps) == 0 {
		return fmt.Errorf("store %s has no run records to bless", store.Dir())
	}
	note := fmt.Sprintf("blessed %s: %s (commit %s)",
		time.Now().UTC().Format("2006-01-02"), *reason, si.GitRevision())
	for _, exp := range exps {
		rec, err := store.Latest(exp)
		if err != nil {
			return err
		}
		// Classify against the outgoing baseline so the operator sees
		// what kind of shift they are promoting. A corrupt baseline must
		// surface, not silently read as "no old record".
		change := "new"
		if olds, err := baseline.Load(exp); err != nil {
			return fmt.Errorf("old baseline %s: %w", exp, err)
		} else if len(olds) > 0 {
			change = si.DiffRunRecords(olds[len(olds)-1], rec).Class.String()
		}
		promoted := *rec
		promoted.Meta = si.RunMeta{Note: note}
		if err := baseline.Replace(&promoted); err != nil {
			return err
		}
		fmt.Printf("blessed %-9s %.12s -> %s (%s vs old baseline)\n",
			exp, promoted.Hash, baseline.Dir(), change)
	}
	fmt.Printf("provenance: %s\n", note)
	return nil
}
