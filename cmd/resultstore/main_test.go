package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	si "specinterference"
	"specinterference/internal/cmdtest"
)

// writeTestBaseline builds a small baseline store directly through the
// facade (faster than shelling out to `resultstore baseline`, and it lets
// tests tamper with records before sealing).
func writeTestBaseline(t *testing.T, dir string, mutate func(*si.RunRecord)) {
	t.Helper()
	store, err := si.OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, exp := range si.ResultExperiments() {
		params, err := si.BaselineRunParams(exp)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := si.RegenerateRecord(context.Background(), exp, params, 0)
		if err != nil {
			t.Fatalf("regenerate %s: %v", exp, err)
		}
		rec.Meta.Note = "baseline"
		if mutate != nil {
			mutate(rec)
			// Tampering invalidates the sealed signature; restore
			// consistency so the record represents a plausible old run.
			if rec.Hash, err = rec.ComputeHash(); err != nil {
				t.Fatal(err)
			}
		}
		if err := store.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestListShowDiff(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	writeTestBaseline(t, dir, nil)
	writeTestBaseline(t, dir, nil) // second generation: history of two

	out := cmdtest.Run(t, "", "list", "-store", dir)
	if !strings.Contains(out, "table1") || !strings.Contains(out, "figure12") {
		t.Errorf("list output missing experiments:\n%s", out)
	}

	out = cmdtest.Run(t, "", "show", "-store", dir, "table1@-1")
	var rec si.RunRecord
	if err := json.Unmarshal([]byte(out), &rec); err != nil {
		t.Fatalf("show emitted bad JSON: %v\n%s", err, out)
	}
	if rec.Experiment != si.ExpTable1 || rec.Table1 == nil {
		t.Errorf("show returned the wrong record: %+v", rec)
	}

	// Identical reruns at identical parameters: every diff is identical.
	for _, exp := range si.ResultExperiments() {
		out = cmdtest.Run(t, "", "diff", "-store", dir, exp+"@0", exp+"@1")
		if !strings.Contains(out, "IDENTICAL") {
			t.Errorf("diff %s@0 %s@1:\n%s", exp, exp, out)
		}
	}
}

func TestCheckPassesOnFreshBaseline(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "baseline")
	writeTestBaseline(t, dir, nil)
	out := cmdtest.Run(t, "", "check", "-baseline", dir, "-parallel", "2")
	if !strings.Contains(out, "OK: no regression") {
		t.Errorf("check output:\n%s", out)
	}
}

// TestCheckSubprocessBackend: the CI gate reruns the sweep through
// re-exec'd worker processes; the records must still hash identically to
// the in-process baseline.
func TestCheckSubprocessBackend(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "baseline")
	writeTestBaseline(t, dir, nil)
	out := cmdtest.Run(t, "", "check", "-baseline", dir, "-backend", "subprocess", "-procs", "2")
	if !strings.Contains(out, "OK: no regression") {
		t.Errorf("subprocess check output:\n%s", out)
	}
	for _, exp := range si.ResultExperiments() {
		if !regexp.MustCompile(exp + `\s+IDENTICAL`).MatchString(out) {
			t.Errorf("subprocess check did not classify %s as identical:\n%s", exp, out)
		}
	}
}

// TestCheckRemoteBackend is the acceptance gate for the distributed
// backend: check reruns the sweep through an HTTP coordinator with three
// local leased workers over loopback and the records must still hash
// identically to the in-process baseline.
func TestCheckRemoteBackend(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "baseline")
	writeTestBaseline(t, dir, nil)
	out := cmdtest.Run(t, "", "check", "-baseline", dir, "-backend", "remote", "-procs", "3")
	if !strings.Contains(out, "OK: no regression") {
		t.Errorf("remote check output:\n%s", out)
	}
	for _, exp := range si.ResultExperiments() {
		if !regexp.MustCompile(exp + `\s+IDENTICAL`).MatchString(out) {
			t.Errorf("remote check did not classify %s as identical:\n%s", exp, out)
		}
	}
}

// TestBlessSubcommand: bless promotes the store's newest records to the
// committed baseline with a provenance note, so an intentional result
// shift is one reviewed command.
func TestBlessSubcommand(t *testing.T) {
	baseDir := filepath.Join(t.TempDir(), "baseline")
	storeDir := filepath.Join(t.TempDir(), "store")
	writeTestBaseline(t, baseDir, nil)
	// The store's latest table1 record carries an intentional flip — the
	// kind of change bless exists to promote.
	writeTestBaseline(t, storeDir, func(rec *si.RunRecord) {
		if rec.Experiment == si.ExpTable1 {
			rec.Table1.Cells[0].Vulnerable = !rec.Table1.Cells[0].Vulnerable
		}
	})

	out := cmdtest.Run(t, "", "bless", "-store", storeDir, "-baseline", baseDir, "-reason", "recalibrated receiver")
	if !strings.Contains(out, "provenance: blessed") || !strings.Contains(out, "recalibrated receiver") {
		t.Errorf("bless output lacks the provenance note:\n%s", out)
	}
	for _, exp := range si.ResultExperiments() {
		if !strings.Contains(out, "blessed "+exp) {
			t.Errorf("bless output missing %s:\n%s", exp, out)
		}
	}

	// The promoted baseline must carry the store's records (flip
	// included), the provenance note, and exactly one record per
	// experiment.
	store, err := si.OpenResultStore(baseDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, exp := range si.ResultExperiments() {
		recs, err := store.Load(exp)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 {
			t.Fatalf("%s: blessed baseline has %d records, want 1", exp, len(recs))
		}
		if !strings.Contains(recs[0].Meta.Note, "recalibrated receiver") {
			t.Errorf("%s: blessed record note %q lacks the reason", exp, recs[0].Meta.Note)
		}
	}
	blessed, err := store.Latest(si.ExpTable1)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := si.RegenerateRecord(context.Background(), si.ExpTable1, blessed.Params, 0)
	if err != nil {
		t.Fatal(err)
	}
	if blessed.Hash == fresh.Hash {
		t.Error("blessed table1 record should carry the store's flipped cell, not the regenerated matrix")
	}
}

// TestBlessRequiresReason: promoting a baseline without saying why is
// exactly the unreviewed drift the provenance note prevents.
func TestBlessRequiresReason(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "store")
	writeTestBaseline(t, storeDir, nil)
	out := cmdtest.RunFail(t, "", "bless", "-store", storeDir, "-baseline", filepath.Join(t.TempDir(), "b"))
	if !strings.Contains(out, "-reason") {
		t.Errorf("bless without -reason should name the missing flag:\n%s", out)
	}
}

// TestBlessEmptyStore: nothing to promote is an error, not a no-op.
func TestBlessEmptyStore(t *testing.T) {
	storeDir := t.TempDir()
	out := cmdtest.RunFail(t, "", "bless", "-store", storeDir, "-baseline", filepath.Join(t.TempDir(), "b"), "-reason", "x")
	if !strings.Contains(out, "no run records") {
		t.Errorf("bless on an empty store should say so:\n%s", out)
	}
}

// TestCheckFailsOnFlippedMatrixCell is the gate's reason to exist: a
// baseline whose (gadget, scheme) cell disagrees with the current tree
// must classify as a regression and fail the check.
func TestCheckFailsOnFlippedMatrixCell(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "baseline")
	writeTestBaseline(t, dir, func(rec *si.RunRecord) {
		if rec.Experiment == si.ExpTable1 {
			rec.Table1.Cells[0].Vulnerable = !rec.Table1.Cells[0].Vulnerable
		}
	})
	out := cmdtest.RunFail(t, "", "check", "-baseline", dir)
	if !strings.Contains(out, "regression") || !strings.Contains(out, "flipped") {
		t.Errorf("check failure output lacks the regression finding:\n%s", out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Errorf("check failure output lacks the FAIL verdict:\n%s", out)
	}
}

// TestCheckFailsOnPartialBaseline: a baseline missing any experiment's
// records is a disabled gate, not a smaller one — check must refuse it.
func TestCheckFailsOnPartialBaseline(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "baseline")
	writeTestBaseline(t, dir, nil)
	if err := os.Remove(filepath.Join(dir, si.ExpTable1+".jsonl")); err != nil {
		t.Fatal(err)
	}
	out := cmdtest.RunFail(t, "", "check", "-baseline", dir)
	if !strings.Contains(out, "want records for all of") {
		t.Errorf("partial-baseline failure lacks the coverage diagnostic:\n%s", out)
	}
}

// TestDiffExitsNonZeroOnRegression: diff is scriptable — regression and
// incomparable classes exit non-zero.
func TestDiffExitsNonZeroOnRegression(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	writeTestBaseline(t, dir, nil)
	writeTestBaseline(t, dir, func(rec *si.RunRecord) {
		if rec.Experiment == si.ExpTable1 {
			rec.Table1.Cells[0].Vulnerable = !rec.Table1.Cells[0].Vulnerable
		}
	})
	out := cmdtest.RunFail(t, "", "diff", "-store", dir, "table1@0", "table1@1")
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("diff output lacks REGRESSION:\n%s", out)
	}
}

func TestBaselineSubcommand(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "baseline")
	out := cmdtest.Run(t, "", "baseline", "-dir", dir)
	for _, exp := range si.ResultExperiments() {
		if !strings.Contains(out, exp) {
			t.Errorf("baseline output missing %s:\n%s", exp, out)
		}
		if _, err := os.Stat(filepath.Join(dir, exp+".jsonl")); err != nil {
			t.Errorf("baseline file for %s: %v", exp, err)
		}
	}
	// Rewriting must be deterministic: a second run is byte-identical.
	before, err := os.ReadFile(filepath.Join(dir, "table1.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	cmdtest.Run(t, "", "baseline", "-dir", dir)
	after, err := os.ReadFile(filepath.Join(dir, "table1.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("regenerating the baseline changed its bytes")
	}
}
