// Package emu is the architectural (golden-model) emulator: it executes
// programs sequentially with no microarchitecture at all. It serves three
// roles:
//
//  1. differential-testing oracle for the out-of-order core (final
//     architectural state must match),
//  2. perfect branch oracle — the recorded branch outcomes drive the
//     "NoSpec(E)" executions required by the §5.1 security definition,
//  3. a fast way for tests to compute expected register/memory values.
package emu

import (
	"errors"
	"fmt"

	"specinterference/internal/isa"
	"specinterference/internal/mem"
)

// ErrStepLimit is wrapped by Run's error when MaxSteps dynamic
// instructions execute without reaching a halt. Callers distinguish it
// with errors.Is: a step-limit run is not a verdict about the program —
// the accompanying Result is a consistent prefix (see Run) — and analyses
// built on the emulator (the NoSpec oracle, the static leak detector)
// must surface it as an error rather than classify from the prefix.
var ErrStepLimit = errors.New("step limit exceeded")

// BranchRecord is the outcome of one dynamic conditional-branch execution.
type BranchRecord struct {
	PC    int
	Taken bool
}

// Result is the outcome of an emulated run.
type Result struct {
	// Regs is the final architectural register file.
	Regs [isa.NumRegs]int64
	// InstCount is the number of dynamic instructions executed (including
	// the final halt).
	InstCount int
	// Branches lists every dynamic conditional branch outcome in order.
	Branches []BranchRecord
	// Halted is true when the program reached a halt (vs. the step limit).
	Halted bool
	// LoadAddrs lists every dynamic load address in order (used by priming
	// and security analyses).
	LoadAddrs []int64
}

// DefaultMaxSteps bounds runaway programs.
const DefaultMaxSteps = 2_000_000

// Machine is an architectural emulator instance.
type Machine struct {
	prog *isa.Program
	mem  *mem.Memory
	// MaxSteps bounds the dynamic instruction count; DefaultMaxSteps when 0.
	MaxSteps int
	// RecordBranches enables Branches in the result.
	RecordBranches bool
	// RecordLoads enables LoadAddrs in the result.
	RecordLoads bool

	regs [isa.NumRegs]int64
}

// New returns a Machine executing prog against memory m. The memory is
// mutated by stores.
func New(prog *isa.Program, m *mem.Memory) *Machine {
	return &Machine{prog: prog, mem: m}
}

// SetReg sets an initial register value.
func (e *Machine) SetReg(r isa.Reg, v int64) { e.regs[r] = v }

// Run executes the program from instruction 0 until halt or the step
// limit. On the step limit it returns BOTH a non-nil Result and a non-nil
// error wrapping ErrStepLimit: the Result is the consistent prefix of the
// aborted run — Regs is the register file after the last completed
// instruction, InstCount counts exactly the executed instructions, and
// Branches/LoadAddrs (when recording) list exactly the branches and loads
// among them, in order. Out-of-range PCs and unimplemented opcodes return
// a nil Result.
func (e *Machine) Run() (*Result, error) {
	max := e.MaxSteps
	if max == 0 {
		max = DefaultMaxSteps
	}
	res := &Result{}
	pc := 0
	for steps := 0; steps < max; steps++ {
		if pc < 0 || pc >= e.prog.Len() {
			return nil, fmt.Errorf("emu: pc %d out of range [0,%d)", pc, e.prog.Len())
		}
		in := e.prog.Insts[pc]
		res.InstCount++
		next := pc + 1
		switch in.Op {
		case isa.Nop, isa.Fence, isa.Flush:
			// Architecturally invisible. Flush affects only cache state.
		case isa.Halt:
			res.Halted = true
			res.Regs = e.regs
			return res, nil
		case isa.MovI:
			e.regs[in.Dst] = in.Imm
		case isa.Mov:
			e.regs[in.Dst] = e.regs[in.Src1]
		case isa.Add:
			e.regs[in.Dst] = e.regs[in.Src1] + e.regs[in.Src2]
		case isa.AddI:
			e.regs[in.Dst] = e.regs[in.Src1] + in.Imm
		case isa.Sub:
			e.regs[in.Dst] = e.regs[in.Src1] - e.regs[in.Src2]
		case isa.And:
			e.regs[in.Dst] = e.regs[in.Src1] & e.regs[in.Src2]
		case isa.Or:
			e.regs[in.Dst] = e.regs[in.Src1] | e.regs[in.Src2]
		case isa.Xor:
			e.regs[in.Dst] = e.regs[in.Src1] ^ e.regs[in.Src2]
		case isa.ShlI:
			e.regs[in.Dst] = e.regs[in.Src1] << uint(in.Imm&63)
		case isa.ShrI:
			e.regs[in.Dst] = int64(uint64(e.regs[in.Src1]) >> uint(in.Imm&63))
		case isa.Mul:
			e.regs[in.Dst] = e.regs[in.Src1] * e.regs[in.Src2]
		case isa.MulI:
			e.regs[in.Dst] = e.regs[in.Src1] * in.Imm
		case isa.Div:
			e.regs[in.Dst] = SafeDiv(e.regs[in.Src1], e.regs[in.Src2])
		case isa.Sqrt:
			e.regs[in.Dst] = ISqrt(e.regs[in.Src1])
		case isa.Load:
			addr := e.regs[in.Src1] + in.Imm
			e.regs[in.Dst] = e.mem.Read64(addr)
			if e.RecordLoads {
				res.LoadAddrs = append(res.LoadAddrs, addr)
			}
		case isa.Store:
			e.mem.Write64(e.regs[in.Src1]+in.Imm, e.regs[in.Src2])
		case isa.RdCycle:
			// Architecturally: a monotonic counter. The emulator has no
			// cycles; instruction count is the closest monotone analog.
			e.regs[in.Dst] = int64(res.InstCount)
		case isa.Beq, isa.Bne, isa.Blt, isa.Bge:
			taken := BranchTaken(in.Op, e.regs[in.Src1], e.regs[in.Src2])
			if e.RecordBranches {
				res.Branches = append(res.Branches, BranchRecord{PC: pc, Taken: taken})
			}
			if taken {
				next = in.Target
			}
		case isa.Jmp:
			next = in.Target
		default:
			return nil, fmt.Errorf("emu: unimplemented opcode %s at pc %d", in.Op, pc)
		}
		pc = next
	}
	res.Regs = e.regs
	return res, fmt.Errorf("emu: %w after %d instructions", ErrStepLimit, max)
}

// BranchTaken evaluates a conditional branch condition. Shared with the
// out-of-order core so both machines agree on semantics.
func BranchTaken(op isa.Op, a, b int64) bool {
	switch op {
	case isa.Beq:
		return a == b
	case isa.Bne:
		return a != b
	case isa.Blt:
		return a < b
	case isa.Bge:
		return a >= b
	default:
		panic(fmt.Sprintf("emu: %s is not a conditional branch", op))
	}
}

// SafeDiv is the ISA's division: x/y with y==0 yielding 0 (no faults in
// this machine; Meltdown-style exception speculation is out of scope).
func SafeDiv(x, y int64) int64 {
	if y == 0 {
		return 0
	}
	return x / y
}

// ISqrt is the ISA's integer square root of |x|.
func ISqrt(x int64) int64 {
	if x < 0 {
		x = -x
	}
	if x < 2 {
		return x
	}
	// Newton's method on integers.
	r := int64(1) << ((bits64(x) + 1) / 2)
	for {
		nr := (r + x/r) / 2
		if nr >= r {
			return r
		}
		r = nr
	}
}

func bits64(x int64) uint {
	n := uint(0)
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}
