package emu

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"specinterference/internal/asm"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
)

func run(t *testing.T, src string, setup func(*Machine, *mem.Memory)) *Result {
	t.Helper()
	p := asm.MustAssemble(src)
	m := mem.New()
	e := New(p, m)
	if setup != nil {
		setup(e, m)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
    movi r1, 6
    movi r2, 7
    mul  r3, r1, r2
    addi r4, r3, -2
    sub  r5, r4, r1
    div  r6, r3, r2
    sqrt r7, r3
    shli r8, r1, 4
    shri r9, r8, 2
    and  r10, r8, r9
    or   r11, r8, r9
    xor  r12, r8, r8
    halt`, nil)
	want := map[isa.Reg]int64{
		isa.R3: 42, isa.R4: 40, isa.R5: 34, isa.R6: 6, isa.R7: 6,
		isa.R8: 96, isa.R9: 24, isa.R10: 96 & 24, isa.R11: 96 | 24, isa.R12: 0,
	}
	for r, v := range want {
		if res.Regs[r] != v {
			t.Errorf("%s = %d, want %d", r, res.Regs[r], v)
		}
	}
	if !res.Halted {
		t.Error("should have halted")
	}
}

func TestLoadStore(t *testing.T) {
	res := run(t, `
    movi r1, 4096
    movi r2, 99
    store r2, 16(r1)
    load r3, 16(r1)
    halt`, nil)
	if res.Regs[isa.R3] != 99 {
		t.Errorf("r3 = %d, want 99", res.Regs[isa.R3])
	}
}

func TestLoop(t *testing.T) {
	res := run(t, `
    movi r1, 0
    movi r2, 10
loop:
    addi r1, r1, 3
    addi r3, r3, 1
    blt  r3, r2, loop
    halt`, nil)
	if res.Regs[isa.R1] != 30 {
		t.Errorf("r1 = %d, want 30", res.Regs[isa.R1])
	}
}

func TestBranchRecording(t *testing.T) {
	p := asm.MustAssemble(`
    movi r1, 0
    movi r2, 3
loop:
    addi r1, r1, 1
    blt  r1, r2, loop
    halt`)
	e := New(p, mem.New())
	e.RecordBranches = true
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Branches) != 3 {
		t.Fatalf("branches = %d, want 3", len(res.Branches))
	}
	if !res.Branches[0].Taken || !res.Branches[1].Taken || res.Branches[2].Taken {
		t.Errorf("branch pattern = %+v, want taken,taken,not-taken", res.Branches)
	}
	if res.Branches[0].PC != 3 {
		t.Errorf("branch PC = %d, want 3", res.Branches[0].PC)
	}
}

func TestLoadRecording(t *testing.T) {
	p := asm.MustAssemble(`
    movi r1, 1024
    load r2, 0(r1)
    load r3, 64(r1)
    halt`)
	e := New(p, mem.New())
	e.RecordLoads = true
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LoadAddrs) != 2 || res.LoadAddrs[0] != 1024 || res.LoadAddrs[1] != 1088 {
		t.Errorf("LoadAddrs = %v", res.LoadAddrs)
	}
}

func TestInitialRegisters(t *testing.T) {
	p := asm.MustAssemble("addi r2, r1, 1\nhalt")
	e := New(p, mem.New())
	e.SetReg(isa.R1, 41)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[isa.R2] != 42 {
		t.Errorf("r2 = %d", res.Regs[isa.R2])
	}
}

func TestStepLimit(t *testing.T) {
	p := asm.MustAssemble("spin: jmp spin\nhalt")
	e := New(p, mem.New())
	e.MaxSteps = 100
	res, err := e.Run()
	if err == nil {
		t.Error("expected step-limit error")
	}
	if res.Halted {
		t.Error("should not report halted")
	}
	if res.InstCount != 100 {
		t.Errorf("InstCount = %d, want 100", res.InstCount)
	}
}

// TestStepLimitPrefixConsistency pins the step-limit contract Run
// documents: a deliberately non-halting program aborted at MaxSteps must
// yield errors.Is(err, ErrStepLimit), Halted == false, and a Result whose
// Regs/Branches/LoadAddrs are exactly the consistent prefix of the
// aborted run — so callers (the NoSpec oracle, the static leak detector)
// can reliably refuse to turn the prefix into a verdict.
func TestStepLimitPrefixConsistency(t *testing.T) {
	p := asm.MustAssemble(`
    movi r1, 65536
    movi r2, 0
  loop:
    load r3, 0(r1)
    addi r2, r2, 1
    blt r8, r2, loop
    halt`)
	m := mem.New()
	m.Write64(65536, 7)
	e := New(p, m)
	e.MaxSteps = 11 // 2 movi + 3 full iterations: load,addi,blt ×3
	e.RecordBranches = true
	e.RecordLoads = true
	res, err := e.Run()
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want errors.Is(_, ErrStepLimit)", err)
	}
	if res == nil {
		t.Fatal("step-limit run must still return the prefix result")
	}
	if res.Halted {
		t.Error("should not report halted")
	}
	if res.InstCount != 11 {
		t.Errorf("InstCount = %d, want 11", res.InstCount)
	}
	if got := res.Regs[isa.R2]; got != 3 {
		t.Errorf("r2 = %d, want 3 completed iterations", got)
	}
	if got := res.Regs[isa.R3]; got != 7 {
		t.Errorf("r3 = %d, want 7 (last completed load)", got)
	}
	if len(res.LoadAddrs) != 3 {
		t.Fatalf("LoadAddrs = %v, want exactly the 3 executed loads", res.LoadAddrs)
	}
	for i, a := range res.LoadAddrs {
		if a != 65536 {
			t.Errorf("LoadAddrs[%d] = %d, want 65536", i, a)
		}
	}
	if len(res.Branches) != 3 {
		t.Fatalf("Branches = %v, want exactly the 3 executed branches", res.Branches)
	}
	for i, b := range res.Branches {
		if !b.Taken || b.PC != 4 {
			t.Errorf("Branches[%d] = %+v, want taken loop branch at pc 4", i, b)
		}
	}
}

func TestDivByZero(t *testing.T) {
	res := run(t, "movi r1, 5\nmovi r2, 0\ndiv r3, r1, r2\nhalt", nil)
	if res.Regs[isa.R3] != 0 {
		t.Errorf("div by zero = %d, want 0", res.Regs[isa.R3])
	}
}

func TestRdCycleMonotone(t *testing.T) {
	res := run(t, "rdcycle r1\nnop\nnop\nrdcycle r2\nhalt", nil)
	if res.Regs[isa.R2] <= res.Regs[isa.R1] {
		t.Errorf("rdcycle not monotone: %d then %d", res.Regs[isa.R1], res.Regs[isa.R2])
	}
}

func TestFlushAndFenceAreArchitecturalNops(t *testing.T) {
	res := run(t, `
    movi r1, 2048
    movi r2, 5
    store r2, 0(r1)
    fence
    flush 0(r1)
    load r3, 0(r1)
    halt`, nil)
	if res.Regs[isa.R3] != 5 {
		t.Errorf("r3 = %d, want 5", res.Regs[isa.R3])
	}
}

func TestISqrt(t *testing.T) {
	cases := map[int64]int64{0: 0, 1: 1, 2: 1, 3: 1, 4: 2, 8: 2, 9: 3,
		15: 3, 16: 4, 1 << 40: 1 << 20, -9: 3}
	for x, want := range cases {
		if got := ISqrt(x); got != want {
			t.Errorf("ISqrt(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestISqrtProperty(t *testing.T) {
	f := func(xRaw int32) bool {
		x := int64(xRaw)
		r := ISqrt(x)
		ax := x
		if ax < 0 {
			ax = -ax
		}
		return r >= 0 && r*r <= ax && (r+1)*(r+1) > ax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestISqrtMatchesFloat(t *testing.T) {
	for x := int64(0); x < 10000; x += 7 {
		if got, want := ISqrt(x), int64(math.Sqrt(float64(x))); got != want {
			t.Fatalf("ISqrt(%d) = %d, float says %d", x, got, want)
		}
	}
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b int64
		want bool
	}{
		{isa.Beq, 1, 1, true}, {isa.Beq, 1, 2, false},
		{isa.Bne, 1, 2, true}, {isa.Bne, 2, 2, false},
		{isa.Blt, -1, 0, true}, {isa.Blt, 0, 0, false},
		{isa.Bge, 0, 0, true}, {isa.Bge, -1, 0, false},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.a, c.b); got != c.want {
			t.Errorf("BranchTaken(%s, %d, %d) = %v", c.op, c.a, c.b, c.want)
		}
	}
}

func TestBranchTakenPanicsOnNonBranch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BranchTaken(isa.Add, 0, 0)
}

func TestPointerChase(t *testing.T) {
	// Build a 4-node linked list in memory: 0x1000 -> 0x2000 -> 0x3000 -> 0.
	res := run(t, `
    movi r1, 4096
chase:
    load r1, 0(r1)
    bne  r1, r0, chase
    addi r2, r2, 1
    halt`, func(e *Machine, m *mem.Memory) {
		m.Write64(0x1000, 0x2000)
		m.Write64(0x2000, 0x3000)
		m.Write64(0x3000, 0)
	})
	if res.Regs[isa.R2] != 1 {
		t.Errorf("r2 = %d", res.Regs[isa.R2])
	}
}
