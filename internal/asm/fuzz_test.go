package asm_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"specinterference/internal/asm"
	"specinterference/internal/core"
	"specinterference/internal/isa"
)

// The fuzzer round-trips arbitrary instruction sequences through
// build → render → assemble → compare: decode the fuzz bytes into a
// valid program, render it in assembler syntax, reassemble the text, and
// require the identical instruction sequence back. The seed corpus is
// the three interference-gadget sender programs (GDNPEU, GDMSHR, GIRS),
// so the fuzzer starts from exactly the shapes the attack framework
// emits.

// instBytes is the fuzz wire format per instruction: opcode, three
// register bytes, a 48-bit little-endian immediate and a 16-bit target.
const instBytes = 12

// opCount is the number of defined opcodes, probed via Op.Valid so the
// encoding tracks the ISA without exporting internals.
var opCount = func() int {
	n := 0
	for isa.Op(n).Valid() {
		n++
	}
	return n
}()

// encodeInsts renders instructions into the fuzz wire format.
func encodeInsts(insts []isa.Inst) []byte {
	out := make([]byte, 0, len(insts)*instBytes)
	for _, in := range insts {
		var buf [instBytes]byte
		buf[0] = byte(in.Op)
		buf[1], buf[2], buf[3] = byte(in.Dst), byte(in.Src1), byte(in.Src2)
		binary.LittleEndian.PutUint32(buf[4:8], uint32(in.Imm))
		binary.LittleEndian.PutUint16(buf[8:10], uint16(in.Imm>>32))
		binary.LittleEndian.PutUint16(buf[10:12], uint16(in.Target))
		out = append(out, buf[:]...)
	}
	return out
}

// decodeInsts parses fuzz bytes into structurally valid instructions:
// opcodes and registers wrap into range, immediates sign-extend from 48
// bits, branch targets wrap into the program once its length is known.
func decodeInsts(data []byte) []isa.Inst {
	n := len(data) / instBytes
	if n == 0 {
		return nil
	}
	insts := make([]isa.Inst, 0, n)
	for i := 0; i < n; i++ {
		b := data[i*instBytes : (i+1)*instBytes]
		imm := int64(binary.LittleEndian.Uint32(b[4:8])) |
			int64(binary.LittleEndian.Uint16(b[8:10]))<<32
		// Sign-extend the 48-bit immediate.
		imm = imm << 16 >> 16
		insts = append(insts, isa.Inst{
			Op:     isa.Op(int(b[0]) % opCount),
			Dst:    isa.Reg(int(b[1]) % isa.NumRegs),
			Src1:   isa.Reg(int(b[2]) % isa.NumRegs),
			Src2:   isa.Reg(int(b[3]) % isa.NumRegs),
			Imm:    imm,
			Target: int(binary.LittleEndian.Uint16(b[10:12])) % n,
		})
	}
	for i := range insts {
		insts[i] = canonInst(insts[i])
	}
	return insts
}

// canonInst zeroes the fields an instruction's assembler syntax does not
// carry (a nop's decoded Dst, an add's Imm, ...), exactly the
// information a build → render → assemble round trip preserves.
func canonInst(in isa.Inst) isa.Inst {
	out := isa.Inst{Op: in.Op}
	if in.HasDst() {
		out.Dst = in.Dst
	}
	srcs, n := in.Uses()
	if n > 0 {
		out.Src1 = srcs[0]
	}
	if n > 1 {
		out.Src2 = srcs[1]
	}
	switch in.Op {
	case isa.MovI, isa.AddI, isa.MulI, isa.ShlI, isa.ShrI,
		isa.Load, isa.Store, isa.Flush:
		out.Imm = in.Imm
	}
	if in.IsBranch() {
		out.Target = in.Target
	}
	// Store reads Src1 (base) and Src2 (value) via Uses; keep both.
	return out
}

// render prints a program one instruction per line in the syntax
// Assemble parses (numeric @targets, no labels).
func render(insts []isa.Inst) string {
	var b strings.Builder
	for _, in := range insts {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// gadgetSeeds builds the three sender programs the attack framework
// generates, via the same path the harnesses use.
func gadgetSeeds(f *testing.F) [][]isa.Inst {
	f.Helper()
	var out [][]isa.Inst
	for _, spec := range []core.TrialSpec{
		{Gadget: core.GadgetNPEU, Ordering: core.OrderVDVD},
		{Gadget: core.GadgetMSHR, Ordering: core.OrderVDVD},
		{Gadget: core.GadgetRS, Ordering: core.OrderVIAD},
	} {
		_, _, v, err := core.NewAttackSystem(spec)
		if err != nil {
			f.Fatalf("building %s/%s seed: %v", spec.Gadget, spec.Ordering, err)
		}
		out = append(out, v.Prog.Insts)
	}
	return out
}

func FuzzAssemble(f *testing.F) {
	for _, insts := range gadgetSeeds(f) {
		f.Add(encodeInsts(insts))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		insts := decodeInsts(data)
		if len(insts) == 0 {
			t.Skip()
		}
		prog := &isa.Program{Insts: insts, CodeBase: isa.DefaultCodeBase}
		if err := prog.Validate(); err != nil {
			t.Fatalf("decoded program invalid (decoder bug): %v\n%s", err, render(insts))
		}
		text := render(insts)
		back, err := asm.Assemble(text)
		if err != nil {
			t.Fatalf("rendering of a valid program does not reassemble: %v\n%s", err, text)
		}
		if len(back.Insts) != len(insts) {
			t.Fatalf("round trip changed length: %d → %d\n%s", len(insts), len(back.Insts), text)
		}
		for i := range insts {
			if back.Insts[i] != insts[i] {
				t.Fatalf("inst %d round-tripped %v → %v\ntext: %s",
					i, insts[i], back.Insts[i], insts[i].String())
			}
		}
	})
}

// FuzzAssembleText feeds raw text straight into the assembler: any input
// must produce a program or an error, never a panic.
func FuzzAssembleText(f *testing.F) {
	f.Add("start:\n  movi r1, 64\n  load r2, 8(r1)\n  blt r2, r1, start\n  halt\n")
	f.Add("jmp @0\n")
	f.Add("store r5, -8(r1) ; comment\nfence # other comment\n")
	f.Add("label:label2: nop\n")
	f.Add("beq r1, r2, @-5\n")
	for _, insts := range gadgetSeeds(f) {
		f.Add(render(insts))
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := asm.Assemble(src)
		if err == nil && p.Len() == 0 {
			t.Fatal("Assemble returned an empty program without error")
		}
	})
}
