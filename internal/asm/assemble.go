package asm

import (
	"fmt"
	"strconv"
	"strings"

	"specinterference/internal/isa"
)

// Assemble parses assembler text into a program. The syntax matches
// isa.Inst.String() output, one instruction per line:
//
//	start:
//	    movi r1, 64          ; comments run to end of line
//	    load r2, 8(r1)
//	    blt  r2, r1, start   # labels or numeric @targets
//	    halt
//
// Both ';' and '#' start comments. Branch targets may be label names or
// absolute instruction indices written as @N.
func Assemble(src string) (*isa.Program, error) {
	b := NewBuilder()
	lineNo := 0
	for _, rawLine := range strings.Split(src, "\n") {
		lineNo++
		line := stripComment(rawLine)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// A line may carry a leading "label:" before an instruction.
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if !isIdent(label) {
				return nil, fmt.Errorf("asm: line %d: bad label %q", lineNo, label)
			}
			if _, dup := b.symbols[label]; dup {
				return nil, fmt.Errorf("asm: line %d: duplicate label %q", lineNo, label)
			}
			b.Label(label)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		if err := assembleInst(b, line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", lineNo, err)
		}
	}
	return b.Build()
}

// MustAssemble is Assemble that panics on error, for tests and examples with
// literal source.
func MustAssemble(src string) *isa.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(line string) string {
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		return line[:i]
	}
	return line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func assembleInst(b *Builder, line string) error {
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	args := splitArgs(rest)
	switch strings.ToLower(mnemonic) {
	case "nop":
		return noArgs(b, args, isa.Inst{Op: isa.Nop})
	case "halt":
		return noArgs(b, args, isa.Inst{Op: isa.Halt})
	case "fence":
		return noArgs(b, args, isa.Inst{Op: isa.Fence})
	case "movi":
		dst, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		imm, err := parseImm(args, 1)
		if err != nil {
			return err
		}
		b.MovI(dst, imm)
		return nil
	case "mov":
		return twoReg(b, args, func(d, s isa.Reg) { b.Mov(d, s) })
	case "sqrt":
		return twoReg(b, args, func(d, s isa.Reg) { b.Sqrt(d, s) })
	case "rdcycle":
		dst, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		if len(args) != 1 {
			return fmt.Errorf("rdcycle takes 1 operand")
		}
		b.RdCycle(dst)
		return nil
	case "add", "sub", "and", "or", "xor", "mul", "div":
		return threeReg(b, args, mnemonic)
	case "addi", "muli", "shli", "shri":
		dst, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		src, err := parseReg(args, 1)
		if err != nil {
			return err
		}
		imm, err := parseImm(args, 2)
		if err != nil {
			return err
		}
		switch strings.ToLower(mnemonic) {
		case "addi":
			b.AddI(dst, src, imm)
		case "muli":
			b.MulI(dst, src, imm)
		case "shli":
			b.ShlI(dst, src, imm)
		case "shri":
			b.ShrI(dst, src, imm)
		}
		return nil
	case "load":
		dst, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		off, base, err := parseMemOperand(args, 1)
		if err != nil {
			return err
		}
		b.Load(dst, base, off)
		return nil
	case "store":
		val, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		off, base, err := parseMemOperand(args, 1)
		if err != nil {
			return err
		}
		b.Store(base, off, val)
		return nil
	case "flush":
		off, base, err := parseMemOperand(args, 0)
		if err != nil {
			return err
		}
		b.Flush(base, off)
		return nil
	case "beq", "bne", "blt", "bge":
		s1, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		s2, err := parseReg(args, 1)
		if err != nil {
			return err
		}
		if len(args) != 3 {
			return fmt.Errorf("%s takes 3 operands", mnemonic)
		}
		return emitBranch(b, strings.ToLower(mnemonic), s1, s2, args[2])
	case "jmp":
		if len(args) != 1 {
			return fmt.Errorf("jmp takes 1 operand")
		}
		return emitBranch(b, "jmp", 0, 0, args[0])
	default:
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
}

func emitBranch(b *Builder, mnemonic string, s1, s2 isa.Reg, target string) error {
	if strings.HasPrefix(target, "@") {
		pc, err := strconv.Atoi(target[1:])
		if err != nil {
			return fmt.Errorf("bad numeric target %q", target)
		}
		var op isa.Op
		switch mnemonic {
		case "beq":
			op = isa.Beq
		case "bne":
			op = isa.Bne
		case "blt":
			op = isa.Blt
		case "bge":
			op = isa.Bge
		case "jmp":
			op = isa.Jmp
		}
		b.Emit(isa.Inst{Op: op, Src1: s1, Src2: s2, Target: pc})
		return nil
	}
	if !isIdent(target) {
		return fmt.Errorf("bad branch target %q", target)
	}
	switch mnemonic {
	case "beq":
		b.Beq(s1, s2, target)
	case "bne":
		b.Bne(s1, s2, target)
	case "blt":
		b.Blt(s1, s2, target)
	case "bge":
		b.Bge(s1, s2, target)
	case "jmp":
		b.Jmp(target)
	}
	return nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func noArgs(b *Builder, args []string, in isa.Inst) error {
	if len(args) != 0 {
		return fmt.Errorf("%s takes no operands", in.Op)
	}
	b.Emit(in)
	return nil
}

func twoReg(b *Builder, args []string, emit func(d, s isa.Reg)) error {
	d, err := parseReg(args, 0)
	if err != nil {
		return err
	}
	s, err := parseReg(args, 1)
	if err != nil {
		return err
	}
	if len(args) != 2 {
		return fmt.Errorf("expected 2 operands, got %d", len(args))
	}
	emit(d, s)
	return nil
}

func threeReg(b *Builder, args []string, mnemonic string) error {
	d, err := parseReg(args, 0)
	if err != nil {
		return err
	}
	s1, err := parseReg(args, 1)
	if err != nil {
		return err
	}
	s2, err := parseReg(args, 2)
	if err != nil {
		return err
	}
	if len(args) != 3 {
		return fmt.Errorf("expected 3 operands, got %d", len(args))
	}
	switch strings.ToLower(mnemonic) {
	case "add":
		b.Add(d, s1, s2)
	case "sub":
		b.Sub(d, s1, s2)
	case "and":
		b.And(d, s1, s2)
	case "or":
		b.Or(d, s1, s2)
	case "xor":
		b.Xor(d, s1, s2)
	case "mul":
		b.Mul(d, s1, s2)
	case "div":
		b.Div(d, s1, s2)
	}
	return nil
}

func parseReg(args []string, i int) (isa.Reg, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing operand %d", i+1)
	}
	s := strings.ToLower(args[i])
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("operand %d: expected register, got %q", i+1, args[i])
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("operand %d: bad register %q", i+1, args[i])
	}
	return isa.Reg(n), nil
}

func parseImm(args []string, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing operand %d", i+1)
	}
	v, err := strconv.ParseInt(args[i], 0, 64)
	if err != nil {
		return 0, fmt.Errorf("operand %d: bad immediate %q", i+1, args[i])
	}
	return v, nil
}

// parseMemOperand parses "off(base)" or "(base)".
func parseMemOperand(args []string, i int) (off int64, base isa.Reg, err error) {
	if i >= len(args) {
		return 0, 0, fmt.Errorf("missing operand %d", i+1)
	}
	s := args[i]
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("operand %d: expected off(base), got %q", i+1, s)
	}
	if open > 0 {
		off, err = strconv.ParseInt(s[:open], 0, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("operand %d: bad offset in %q", i+1, s)
		}
	}
	inner := s[open+1 : len(s)-1]
	base, err = parseReg([]string{inner}, 0)
	if err != nil {
		return 0, 0, fmt.Errorf("operand %d: bad base in %q", i+1, s)
	}
	return off, base, nil
}
