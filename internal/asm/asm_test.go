package asm

import (
	"strings"
	"testing"

	"specinterference/internal/isa"
)

func TestBuilderBasic(t *testing.T) {
	p, err := NewBuilder().
		MovI(isa.R1, 10).
		MovI(isa.R2, 0).
		Label("loop").
		AddI(isa.R2, isa.R2, 1).
		Blt(isa.R2, isa.R1, "loop").
		Halt().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5 {
		t.Fatalf("Len = %d, want 5", p.Len())
	}
	if p.Insts[3].Op != isa.Blt || p.Insts[3].Target != 2 {
		t.Errorf("branch = %s, want blt ... @2", p.Insts[3])
	}
	if p.Symbols["loop"] != 2 {
		t.Errorf("Symbols[loop] = %d, want 2", p.Symbols["loop"])
	}
}

func TestBuilderForwardReference(t *testing.T) {
	p, err := NewBuilder().
		MovI(isa.R1, 0).
		Beq(isa.R1, isa.R1, "end").
		Nop().
		Label("end").
		Halt().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[1].Target != 3 {
		t.Errorf("forward branch target = %d, want 3", p.Insts[1].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	_, err := NewBuilder().Jmp("nowhere").Halt().Build()
	if err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("expected undefined-label error, got %v", err)
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate label")
		}
	}()
	NewBuilder().Label("a").Nop().Label("a")
}

func TestBuilderEmitInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid instruction")
		}
	}()
	NewBuilder().Emit(isa.Inst{Op: isa.Add, Dst: isa.Reg(60)})
}

func TestBuilderAllEmitters(t *testing.T) {
	p := NewBuilder().
		Nop().Fence().
		MovI(isa.R1, 1).Mov(isa.R2, isa.R1).
		Add(isa.R3, isa.R1, isa.R2).AddI(isa.R3, isa.R3, 4).
		Sub(isa.R4, isa.R3, isa.R1).
		And(isa.R5, isa.R4, isa.R3).Or(isa.R5, isa.R5, isa.R1).Xor(isa.R5, isa.R5, isa.R5).
		ShlI(isa.R6, isa.R1, 6).ShrI(isa.R6, isa.R6, 3).
		Mul(isa.R7, isa.R6, isa.R1).MulI(isa.R7, isa.R7, 3).
		Div(isa.R8, isa.R7, isa.R1).Sqrt(isa.R9, isa.R8).
		Load(isa.R10, isa.R1, 8).Store(isa.R1, 16, isa.R10).Flush(isa.R1, 0).
		RdCycle(isa.R11).
		Halt().
		MustBuild()
	if p.Len() != 21 {
		t.Fatalf("Len = %d, want 21", p.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderSetCodeBase(t *testing.T) {
	p := NewBuilder().SetCodeBase(0x1000).Halt().MustBuild()
	if p.CodeBase != 0x1000 {
		t.Errorf("CodeBase = %#x", p.CodeBase)
	}
}

func TestBuilderPC(t *testing.T) {
	b := NewBuilder()
	if b.PC() != 0 {
		t.Error("fresh builder PC != 0")
	}
	b.Nop().Nop()
	if b.PC() != 2 {
		t.Errorf("PC = %d, want 2", b.PC())
	}
}

func TestAssembleRoundTrip(t *testing.T) {
	src := `
start:
    movi r1, 10
    movi r2, 0
loop:
    addi r2, r2, 1      ; increment
    blt  r2, r1, loop   # back edge
    load r3, 64(r2)
    store r3, 8(r1)
    flush 0(r1)
    sqrt r4, r3
    rdcycle r5
    fence
    jmp end
    nop
end:
    halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Op{isa.MovI, isa.MovI, isa.AddI, isa.Blt, isa.Load,
		isa.Store, isa.Flush, isa.Sqrt, isa.RdCycle, isa.Fence, isa.Jmp,
		isa.Nop, isa.Halt}
	if p.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(want))
	}
	for i, op := range want {
		if p.Insts[i].Op != op {
			t.Errorf("inst %d op = %s, want %s", i, p.Insts[i].Op, op)
		}
	}
	if p.Insts[3].Target != 2 {
		t.Errorf("blt target = %d, want 2", p.Insts[3].Target)
	}
	if p.Insts[10].Target != 12 {
		t.Errorf("jmp target = %d, want 12", p.Insts[10].Target)
	}
	if p.Insts[4].Imm != 64 || p.Insts[4].Src1 != isa.R2 {
		t.Errorf("load parsed as %s", p.Insts[4])
	}
	if p.Insts[5].Src2 != isa.R3 || p.Insts[5].Src1 != isa.R1 || p.Insts[5].Imm != 8 {
		t.Errorf("store parsed as %s", p.Insts[5])
	}
}

func TestAssembleNumericTarget(t *testing.T) {
	p := MustAssemble("beq r1, r2, @0\nhalt")
	if p.Insts[0].Target != 0 {
		t.Errorf("target = %d", p.Insts[0].Target)
	}
}

func TestAssembleThreeRegOps(t *testing.T) {
	p := MustAssemble(`
    add r1, r2, r3
    sub r1, r2, r3
    and r1, r2, r3
    or  r1, r2, r3
    xor r1, r2, r3
    mul r1, r2, r3
    div r1, r2, r3
    halt`)
	want := []isa.Op{isa.Add, isa.Sub, isa.And, isa.Or, isa.Xor, isa.Mul, isa.Div}
	for i, op := range want {
		in := p.Insts[i]
		if in.Op != op || in.Dst != isa.R1 || in.Src1 != isa.R2 || in.Src2 != isa.R3 {
			t.Errorf("inst %d = %s", i, in)
		}
	}
}

func TestAssembleImmediateForms(t *testing.T) {
	p := MustAssemble("addi r1, r2, -5\nmuli r3, r4, 0x40\nshli r5, r6, 6\nshri r7, r8, 2\nhalt")
	if p.Insts[0].Imm != -5 {
		t.Errorf("addi imm = %d", p.Insts[0].Imm)
	}
	if p.Insts[1].Imm != 0x40 {
		t.Errorf("muli imm = %d", p.Insts[1].Imm)
	}
}

func TestAssembleMemOperandNoOffset(t *testing.T) {
	p := MustAssemble("load r1, (r2)\nhalt")
	if p.Insts[0].Imm != 0 || p.Insts[0].Src1 != isa.R2 {
		t.Errorf("load = %s", p.Insts[0])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"add r1, r2",
		"add r1, r2, r3, r4",
		"movi r99, 1",
		"load r1, r2",
		"beq r1, r2, 9bad",
		"jmp",
		"nop r1",
		"movi r1, zz",
		"1label: halt",
		"dup: nop\ndup: halt",
		"beq r1, r2, @x",
		"load r1, 8(r2",
		"load r1, z(r2)",
		"store r1, 8(rr)",
		"rdcycle r1, r2",
	}
	for _, src := range cases {
		if _, err := Assemble(src + "\nhalt"); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustAssemble("bogus")
}

func TestAssembleInstStringRoundTrip(t *testing.T) {
	// Program text printed by isa should reassemble to identical instructions.
	orig := NewBuilder().
		MovI(isa.R1, 7).
		AddI(isa.R2, isa.R1, 3).
		Load(isa.R3, isa.R2, 32).
		Store(isa.R2, 16, isa.R3).
		Sqrt(isa.R4, isa.R3).
		Beq(isa.R1, isa.R2, "end").
		Label("end").
		Halt().
		MustBuild()
	var sb strings.Builder
	for _, in := range orig.Insts {
		sb.WriteString(in.String())
		sb.WriteString("\n")
	}
	re, err := Assemble(sb.String())
	if err != nil {
		t.Fatalf("reassemble: %v\nsource:\n%s", err, sb.String())
	}
	if re.Len() != orig.Len() {
		t.Fatalf("length mismatch %d vs %d", re.Len(), orig.Len())
	}
	for i := range orig.Insts {
		if re.Insts[i] != orig.Insts[i] {
			t.Errorf("inst %d: %v != %v", i, re.Insts[i], orig.Insts[i])
		}
	}
}
