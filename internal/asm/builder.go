// Package asm provides two ways to construct isa.Programs: a fluent Go
// Builder used by the attack-gadget generators, and a small text assembler
// (see Assemble) for hand-written programs in examples and tests.
package asm

import (
	"fmt"

	"specinterference/internal/isa"
)

// Builder incrementally constructs a program. Branches may reference labels
// that are defined later; Build resolves them. Methods panic on programmer
// error (invalid registers) — the builder is a code-generation tool, not an
// input parser.
type Builder struct {
	insts    []isa.Inst
	symbols  map[string]int
	fixups   []fixup
	codeBase int64
}

type fixup struct {
	instIdx int
	label   string
}

// NewBuilder returns an empty Builder mapping code at isa.DefaultCodeBase.
func NewBuilder() *Builder {
	return &Builder{symbols: map[string]int{}, codeBase: isa.DefaultCodeBase}
}

// SetCodeBase overrides where the program is mapped.
func (b *Builder) SetCodeBase(base int64) *Builder {
	b.codeBase = base
	return b
}

// PC returns the index of the next instruction to be emitted.
func (b *Builder) PC() int { return len(b.insts) }

// Label defines name at the current PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.symbols[name]; dup {
		panic(fmt.Sprintf("asm: duplicate label %q", name))
	}
	b.symbols[name] = len(b.insts)
	return b
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) *Builder {
	if err := in.Validate(); err != nil {
		panic(fmt.Sprintf("asm: %v", err))
	}
	b.insts = append(b.insts, in)
	return b
}

// Nop emits a nop.
func (b *Builder) Nop() *Builder { return b.Emit(isa.Inst{Op: isa.Nop}) }

// Halt emits a halt.
func (b *Builder) Halt() *Builder { return b.Emit(isa.Inst{Op: isa.Halt}) }

// Fence emits a speculation barrier.
func (b *Builder) Fence() *Builder { return b.Emit(isa.Inst{Op: isa.Fence}) }

// MovI emits dst = imm.
func (b *Builder) MovI(dst isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.MovI, Dst: dst, Imm: imm})
}

// Mov emits dst = src.
func (b *Builder) Mov(dst, src isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.Mov, Dst: dst, Src1: src})
}

// Add emits dst = s1 + s2.
func (b *Builder) Add(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.Add, Dst: dst, Src1: s1, Src2: s2})
}

// AddI emits dst = s1 + imm.
func (b *Builder) AddI(dst, s1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.AddI, Dst: dst, Src1: s1, Imm: imm})
}

// Sub emits dst = s1 - s2.
func (b *Builder) Sub(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.Sub, Dst: dst, Src1: s1, Src2: s2})
}

// And emits dst = s1 & s2.
func (b *Builder) And(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.And, Dst: dst, Src1: s1, Src2: s2})
}

// Or emits dst = s1 | s2.
func (b *Builder) Or(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.Or, Dst: dst, Src1: s1, Src2: s2})
}

// Xor emits dst = s1 ^ s2.
func (b *Builder) Xor(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.Xor, Dst: dst, Src1: s1, Src2: s2})
}

// ShlI emits dst = s1 << imm.
func (b *Builder) ShlI(dst, s1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.ShlI, Dst: dst, Src1: s1, Imm: imm})
}

// ShrI emits dst = s1 >> imm (logical).
func (b *Builder) ShrI(dst, s1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.ShrI, Dst: dst, Src1: s1, Imm: imm})
}

// Mul emits dst = s1 * s2.
func (b *Builder) Mul(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.Mul, Dst: dst, Src1: s1, Src2: s2})
}

// MulI emits dst = s1 * imm.
func (b *Builder) MulI(dst, s1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.MulI, Dst: dst, Src1: s1, Imm: imm})
}

// Div emits dst = s1 / s2.
func (b *Builder) Div(dst, s1, s2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.Div, Dst: dst, Src1: s1, Src2: s2})
}

// Sqrt emits dst = isqrt(|s1|). Non-pipelined long-latency op.
func (b *Builder) Sqrt(dst, s1 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.Sqrt, Dst: dst, Src1: s1})
}

// Load emits dst = Mem[base + off].
func (b *Builder) Load(dst, base isa.Reg, off int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.Load, Dst: dst, Src1: base, Imm: off})
}

// Store emits Mem[base + off] = val.
func (b *Builder) Store(base isa.Reg, off int64, val isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.Store, Src1: base, Src2: val, Imm: off})
}

// Flush emits clflush of the line containing base + off.
func (b *Builder) Flush(base isa.Reg, off int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.Flush, Src1: base, Imm: off})
}

// RdCycle emits dst = cycle counter.
func (b *Builder) RdCycle(dst isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.RdCycle, Dst: dst})
}

func (b *Builder) branch(op isa.Op, s1, s2 isa.Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{instIdx: len(b.insts), label: label})
	return b.Emit(isa.Inst{Op: op, Src1: s1, Src2: s2})
}

// Beq emits a branch to label when s1 == s2.
func (b *Builder) Beq(s1, s2 isa.Reg, label string) *Builder {
	return b.branch(isa.Beq, s1, s2, label)
}

// Bne emits a branch to label when s1 != s2.
func (b *Builder) Bne(s1, s2 isa.Reg, label string) *Builder {
	return b.branch(isa.Bne, s1, s2, label)
}

// Blt emits a branch to label when s1 < s2.
func (b *Builder) Blt(s1, s2 isa.Reg, label string) *Builder {
	return b.branch(isa.Blt, s1, s2, label)
}

// Bge emits a branch to label when s1 >= s2.
func (b *Builder) Bge(s1, s2 isa.Reg, label string) *Builder {
	return b.branch(isa.Bge, s1, s2, label)
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixups = append(b.fixups, fixup{instIdx: len(b.insts), label: label})
	return b.Emit(isa.Inst{Op: isa.Jmp})
}

// Build resolves label fixups and returns a validated program.
func (b *Builder) Build() (*isa.Program, error) {
	for _, f := range b.fixups {
		pc, ok := b.symbols[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		b.insts[f.instIdx].Target = pc
	}
	p := &isa.Program{Insts: b.insts, Symbols: b.symbols, CodeBase: b.codeBase}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for generator code whose output
// is a program construction bug, not an input error.
func (b *Builder) MustBuild() *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
