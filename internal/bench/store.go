package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store is a directory of BENCH_<name>.json trajectory files (the repo
// root, so the committed baselines sit next to bench_test.go). Like the
// resultstore, files are append-only histories: bless appends an entry,
// the newest entry is the baseline, and history is the point.
type Store struct {
	dir string
}

// OpenStore returns a store rooted at dir, creating it if needed.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("bench: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bench: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the trajectory file for a canonical benchmark name.
func (s *Store) Path(name string) string {
	return filepath.Join(s.dir, "BENCH_"+name+".json")
}

// Names lists the benchmarks with committed trajectories, sorted.
func (s *Store) Names() ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(s.dir, "BENCH_*.json"))
	if err != nil {
		return nil, fmt.Errorf("bench: list store: %w", err)
	}
	var names []string
	for _, m := range matches {
		base := filepath.Base(m)
		names = append(names, strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json"))
	}
	sort.Strings(names)
	return names, nil
}

// Load reads one benchmark's trajectory. A missing file returns (nil, nil):
// no history yet.
func (s *Store) Load(name string) (*Trajectory, error) {
	data, err := os.ReadFile(s.Path(name))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("bench: load %s: %w", name, err)
	}
	t := &Trajectory{}
	if err := json.Unmarshal(data, t); err != nil {
		return nil, fmt.Errorf("bench: load %s: %w", name, err)
	}
	if t.Name != name {
		return nil, fmt.Errorf("bench: %s holds trajectory for %q", s.Path(name), t.Name)
	}
	return t, nil
}

// Append records a new observation for name, creating the trajectory file
// on first bless. The file is rewritten whole (entries are small) with
// indented JSON so committed baselines diff readably.
func (s *Store) Append(name string, e Entry) error {
	t, err := s.Load(name)
	if err != nil {
		return err
	}
	if t == nil {
		t = &Trajectory{Name: name}
	}
	t.Entries = append(t.Entries, e)
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(s.Path(name), append(data, '\n'), 0o644)
}
