package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Class grades one field's baseline-versus-current comparison.
type Class int

const (
	// Same: the field matches the baseline (exactly, for gated fields).
	Same Class = iota
	// Improved: notably better than baseline (faster / fewer allocs).
	// Exact-gated fields report Improved too, but the check still fails —
	// an improvement should be blessed into the trajectory, not ignored.
	Improved
	// Drift: inside the tolerance band; expected machine noise.
	Drift
	// Regression: worse than the baseline beyond tolerance, or an exact
	// field that changed. Fails the check.
	Regression
	// Missing: the benchmark or metric exists on one side only.
	Missing
)

// String renders the class for reports.
func (c Class) String() string {
	switch c {
	case Same:
		return "same"
	case Improved:
		return "improved"
	case Drift:
		return "drift"
	case Regression:
		return "REGRESSION"
	case Missing:
		return "MISSING"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Tolerance is the gate policy.
type Tolerance struct {
	// NsBand is the allowed ns/op ratio in either direction. Wall time
	// varies across machines and load, so the default is deliberately
	// generous; the allocation gates carry the precision.
	NsBand float64
	// AllocBand is the allocs/op ratio band for benchmarks not listed in
	// ExactAllocs.
	AllocBand float64
	// ByteBand is the B/op ratio band for benchmarks not in ExactAllocs.
	ByteBand float64
	// ExactAllocs lists canonical benchmark names whose allocs/op and
	// B/op must match the baseline exactly — the steady-state hot-path
	// benchmarks whose alloc-free contract this store exists to pin.
	ExactAllocs map[string]bool
}

// DefaultTolerance returns the committed gate policy.
func DefaultTolerance() Tolerance {
	return Tolerance{
		NsBand:    8.0,
		AllocBand: 1.3,
		ByteBand:  1.5,
		ExactAllocs: map[string]bool{
			"TrialSteadyStateFigure7":    true,
			"TrialSteadyStateMatrixCell": true,
			"TrialSteadyStatePoCBit":     true,
			"SummarizeBaseline":          true,
			// The component microbenchmarks isolate the simulator's cycle-
			// level hot paths; all are allocation-free in steady state.
			"StepMixedKernel":      true,
			"StepComputeKernel":    true,
			"HierarchyAccessL1Hit": true,
			"HierarchyMissWalk":    true,
			"MemoryReadWrite":      true,
		},
	}
}

// Delta is one field's comparison.
type Delta struct {
	Name  string  // canonical benchmark name
	Field string  // "ns/op", "allocs/op", "B/op", or a metric unit
	Base  float64 // baseline value
	Cur   float64 // current value
	Class Class
	Why   string
}

// fails reports whether the delta should fail a check. Exact-gated
// improvements fail too: the fix is `benchstore bless`, recording the
// better number as the new floor.
func (d Delta) fails(exact bool) bool {
	return d.Class == Regression || d.Class == Missing ||
		(exact && d.Class == Improved)
}

// Diff compares a current measurement against a baseline entry under the
// tolerance policy, one Delta per field.
func Diff(name string, base, cur Entry, tol Tolerance) []Delta {
	exact := tol.ExactAllocs[name]
	var out []Delta
	out = append(out, band(name, "ns/op", base.NsPerOp, cur.NsPerOp, tol.NsBand))
	if exact {
		out = append(out,
			exactDelta(name, "allocs/op", base.AllocsPerOp, cur.AllocsPerOp),
			exactDelta(name, "B/op", base.BytesPerOp, cur.BytesPerOp))
	} else {
		out = append(out,
			band(name, "allocs/op", base.AllocsPerOp, cur.AllocsPerOp, tol.AllocBand),
			band(name, "B/op", base.BytesPerOp, cur.BytesPerOp, tol.ByteBand))
	}
	units := map[string]bool{}
	for u := range base.Metrics {
		units[u] = true
	}
	for u := range cur.Metrics {
		units[u] = true
	}
	sorted := make([]string, 0, len(units))
	for u := range units {
		sorted = append(sorted, u)
	}
	sort.Strings(sorted)
	for _, u := range sorted {
		bv, bok := base.Metrics[u]
		cv, cok := cur.Metrics[u]
		switch {
		case !bok:
			out = append(out, Delta{Name: name, Field: u, Cur: cv, Class: Missing,
				Why: "metric absent from baseline — bless to record it"})
		case !cok:
			out = append(out, Delta{Name: name, Field: u, Base: bv, Class: Missing,
				Why: "metric no longer reported"})
		default:
			out = append(out, exactDelta(name, u, bv, cv))
		}
	}
	return out
}

// band grades a machine-dependent field inside a ratio tolerance.
func band(name, field string, base, cur, ratio float64) Delta {
	d := Delta{Name: name, Field: field, Base: base, Cur: cur}
	switch {
	case base == cur:
		d.Class = Same
	case base == 0:
		d.Class = Regression
		d.Why = fmt.Sprintf("baseline is 0, current is %g", cur)
	case cur > base*ratio:
		d.Class = Regression
		d.Why = fmt.Sprintf("%.2fx over baseline (band %.2gx)", cur/base, ratio)
	case cur < base/ratio:
		d.Class = Improved
		d.Why = fmt.Sprintf("%.2fx under baseline", base/cur)
	default:
		d.Class = Drift
	}
	return d
}

// exactDelta grades a deterministic field: any mismatch is a finding.
func exactDelta(name, field string, base, cur float64) Delta {
	d := Delta{Name: name, Field: field, Base: base, Cur: cur}
	switch {
	case base == cur:
		d.Class = Same
	case cur < base:
		d.Class = Improved
		d.Why = "better than the blessed baseline — bless to record the new floor"
	default:
		d.Class = Regression
		d.Why = "exact-gated field changed"
	}
	return d
}

// CheckReport is the outcome of comparing one suite run against the store.
type CheckReport struct {
	Deltas []Delta
	// Failures holds the deltas that fail the gate, in report order.
	Failures []Delta
}

// OK reports whether the check passed.
func (r *CheckReport) OK() bool { return len(r.Failures) == 0 }

// Check compares a parsed suite run against every committed trajectory.
// Both directions gate: a result with no trajectory file means the
// baseline was never blessed, and a trajectory whose benchmark vanished
// from the suite means coverage silently regressed.
func Check(store *Store, results []Result, tol Tolerance) (*CheckReport, error) {
	rep := &CheckReport{}
	seen := map[string]bool{}
	for _, res := range results {
		seen[res.Name] = true
		t, err := store.Load(res.Name)
		if err != nil {
			return nil, err
		}
		if t == nil {
			rep.Deltas = append(rep.Deltas, Delta{Name: res.Name, Field: "-", Class: Missing,
				Why: "no committed trajectory — run `benchstore bless`"})
			continue
		}
		base, err := t.Baseline()
		if err != nil {
			return nil, err
		}
		rep.Deltas = append(rep.Deltas, Diff(res.Name, base, res.Entry, tol)...)
	}
	names, err := store.Names()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if !seen[name] {
			rep.Deltas = append(rep.Deltas, Delta{Name: name, Field: "-", Class: Missing,
				Why: "committed trajectory has no benchmark in this run"})
		}
	}
	for _, d := range rep.Deltas {
		if d.fails(tol.ExactAllocs[d.Name]) {
			rep.Failures = append(rep.Failures, d)
		}
	}
	return rep, nil
}

// Bless appends every result to its trajectory file, stamped with the
// given provenance.
func Bless(store *Store, results []Result, date, commit, goVersion, note string) error {
	for _, res := range results {
		e := res.Entry
		e.Date, e.Commit, e.Go, e.Note = date, commit, goVersion, note
		if err := store.Append(res.Name, e); err != nil {
			return err
		}
	}
	return nil
}

// Format renders a check report, failures last so they end up adjacent to
// the CI log tail.
func (r *CheckReport) Format(verbose bool) string {
	var b strings.Builder
	for _, d := range r.Deltas {
		if !verbose && (d.Class == Same || d.Class == Drift) {
			continue
		}
		writeDelta(&b, d)
	}
	if len(r.Failures) == 0 {
		fmt.Fprintf(&b, "benchstore: ok (%d comparisons)\n", len(r.Deltas))
		return b.String()
	}
	fmt.Fprintf(&b, "benchstore: %d comparison(s) FAILED:\n", len(r.Failures))
	for _, d := range r.Failures {
		b.WriteString("  ")
		writeDelta(&b, d)
	}
	return b.String()
}

func writeDelta(b *strings.Builder, d Delta) {
	fmt.Fprintf(b, "%-11s %s %s: %g -> %g", d.Class, d.Name, d.Field, d.Base, d.Cur)
	if d.Why != "" {
		fmt.Fprintf(b, " (%s)", d.Why)
	}
	b.WriteByte('\n')
}
