package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: specinterference
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable1Matrix-8                	       1	 351425908 ns/op	        98.00 cells-matching-paper	        98.00 cells-total	221584432 B/op	 3419948 allocs/op
BenchmarkTrialSteadyStateFigure7      	       1	   1384389 ns/op	       350.0 target-latency-cycles	  890944 B/op	   12429 allocs/op
BenchmarkSummarizeBaseline            	       2	     44719 ns/op	    8192 B/op	       1 allocs/op
PASS
ok  	specinterference	4.478s
`

func TestParseOutput(t *testing.T) {
	rs, err := ParseOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results, want 3", len(rs))
	}
	// Sorted canonically, GOMAXPROCS suffix stripped.
	if rs[0].Name != "SummarizeBaseline" || rs[1].Name != "Table1Matrix" || rs[2].Name != "TrialSteadyStateFigure7" {
		t.Fatalf("bad names: %v %v %v", rs[0].Name, rs[1].Name, rs[2].Name)
	}
	m := rs[1]
	if m.NsPerOp != 351425908 || m.BytesPerOp != 221584432 || m.AllocsPerOp != 3419948 {
		t.Fatalf("bad table1 measurement: %+v", m.Entry)
	}
	if m.Metrics["cells-matching-paper"] != 98 || m.Metrics["cells-total"] != 98 {
		t.Fatalf("bad table1 metrics: %v", m.Metrics)
	}
	if rs[2].Metrics["target-latency-cycles"] != 350 {
		t.Fatalf("bad figure7 metric: %v", rs[2].Metrics)
	}
}

func TestCanonicalName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkTable1Matrix-8":      "Table1Matrix",
		"BenchmarkTable1Matrix":        "Table1Matrix",
		"BenchmarkAblationCDBWidth-16": "AblationCDBWidth",
		"BenchmarkFoo-bar":             "Foo-bar", // non-numeric suffix stays
	} {
		if got := CanonicalName(in); got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if tr, err := store.Load("Missing"); err != nil || tr != nil {
		t.Fatalf("missing trajectory: got %v, %v", tr, err)
	}
	e1 := Entry{Date: "2026-08-07", Note: "pre", NsPerOp: 100, AllocsPerOp: 50, BytesPerOp: 4096,
		Metrics: map[string]float64{"separation-cycles": 75.45}}
	e2 := Entry{Date: "2026-08-07", Note: "post", NsPerOp: 60, AllocsPerOp: 0, BytesPerOp: 0,
		Metrics: map[string]float64{"separation-cycles": 75.45}}
	if err := store.Append("X", e1); err != nil {
		t.Fatal(err)
	}
	if err := store.Append("X", e2); err != nil {
		t.Fatal(err)
	}
	tr, err := store.Load("X")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(tr.Entries))
	}
	base, err := tr.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if base.Note != "post" || base.AllocsPerOp != 0 {
		t.Fatalf("baseline is not the newest entry: %+v", base)
	}
	names, err := store.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "X" {
		t.Fatalf("Names = %v", names)
	}
	if got := store.Path("X"); filepath.Base(got) != "BENCH_X.json" {
		t.Fatalf("Path = %s", got)
	}
}

func TestDiffBands(t *testing.T) {
	tol := DefaultTolerance()
	base := Entry{NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 10000,
		Metrics: map[string]float64{"m": 1.5}}

	// Inside every band: nothing fails.
	cur := Entry{NsPerOp: 3000, AllocsPerOp: 110, BytesPerOp: 12000,
		Metrics: map[string]float64{"m": 1.5}}
	for _, d := range Diff("Whatever", base, cur, tol) {
		if d.Class == Regression || d.Class == Missing {
			t.Errorf("unexpected failure: %+v", d)
		}
	}

	// ns/op beyond the band regresses.
	cur = base
	cur.NsPerOp = base.NsPerOp * tol.NsBand * 2
	if d := find(Diff("Whatever", base, cur, tol), "ns/op"); d.Class != Regression {
		t.Errorf("ns blowup: got %v", d.Class)
	}

	// allocs beyond the band regresses on non-exact benchmarks.
	cur = base
	cur.AllocsPerOp = base.AllocsPerOp * 2
	if d := find(Diff("Whatever", base, cur, tol), "allocs/op"); d.Class != Regression {
		t.Errorf("alloc blowup: got %v", d.Class)
	}

	// Shape metrics are exact.
	cur = base
	cur.Metrics = map[string]float64{"m": 1.5000001}
	if d := find(Diff("Whatever", base, cur, tol), "m"); d.Class != Regression {
		t.Errorf("metric drift: got %v", d.Class)
	}
}

func TestDiffExactAllocs(t *testing.T) {
	tol := DefaultTolerance()
	const name = "TrialSteadyStateFigure7"
	if !tol.ExactAllocs[name] {
		t.Fatalf("%s must be exact-gated", name)
	}
	base := Entry{NsPerOp: 1000, AllocsPerOp: 0, BytesPerOp: 0}

	// One stray alloc fails the exact gate even though 0→1 is tiny.
	cur := base
	cur.AllocsPerOp = 1
	cur.BytesPerOp = 16
	ds := Diff(name, base, cur, tol)
	if d := find(ds, "allocs/op"); d.Class != Regression {
		t.Errorf("exact alloc gate: got %v", d.Class)
	}
	if d := find(ds, "B/op"); d.Class != Regression {
		t.Errorf("exact byte gate: got %v", d.Class)
	}

	// An improvement is flagged (bless to record it), not silently passed.
	base.AllocsPerOp, base.BytesPerOp = 5, 100
	cur = base
	cur.AllocsPerOp, cur.BytesPerOp = 0, 0
	d := find(Diff(name, base, cur, tol), "allocs/op")
	if d.Class != Improved {
		t.Errorf("exact improvement: got %v", d.Class)
	}
	if !d.fails(true) {
		t.Error("exact-gated improvement must fail the check until blessed")
	}
}

func TestCheck(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tol := DefaultTolerance()
	base := Entry{NsPerOp: 1000, AllocsPerOp: 10, BytesPerOp: 100}
	if err := store.Append("A", base); err != nil {
		t.Fatal(err)
	}
	if err := store.Append("Gone", base); err != nil {
		t.Fatal(err)
	}

	rep, err := Check(store, []Result{
		{Name: "A", Entry: base},
		{Name: "New", Entry: base},
	}, tol)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("check passed despite missing trajectory and vanished benchmark")
	}
	var whys []string
	for _, d := range rep.Failures {
		whys = append(whys, d.Name+": "+d.Why)
	}
	joined := strings.Join(whys, "; ")
	if !strings.Contains(joined, "New") || !strings.Contains(joined, "Gone") {
		t.Fatalf("failures = %s", joined)
	}

	// Clean run: the matched benchmark alone, identical numbers.
	rep, err = Check(store, []Result{{Name: "A", Entry: base}}, tol)
	if err != nil {
		t.Fatal(err)
	}
	// "Gone" is still missing from the run.
	if rep.OK() {
		t.Fatal("vanished benchmark must fail")
	}
}

func TestBlessThenCheck(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rs := []Result{
		{Name: "A", Entry: Entry{NsPerOp: 1000, AllocsPerOp: 10, BytesPerOp: 100}},
		{Name: "B", Entry: Entry{NsPerOp: 2000, Metrics: map[string]float64{"m": 3}}},
	}
	if err := Bless(store, rs, "2026-08-07", "deadbeef", "go1.24.0", "initial"); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(store, rs, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("bless-then-check must pass: %s", rep.Format(true))
	}
	tr, err := store.Load("A")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := tr.Baseline()
	if b.Commit != "deadbeef" || b.Note != "initial" || b.Go != "go1.24.0" {
		t.Fatalf("provenance not stamped: %+v", b)
	}
}

func find(ds []Delta, field string) Delta {
	for _, d := range ds {
		if d.Field == field {
			return d
		}
	}
	return Delta{Class: Missing, Why: "field not found: " + field}
}
