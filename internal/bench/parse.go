package bench

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseOutput parses standard `go test -bench -benchmem` output into one
// Result per benchmark line. Non-benchmark lines (goos/pkg/cpu banners,
// PASS/ok trailers) are skipped. When -count produced several lines for
// one benchmark, the last wins (fixed seeds make them identical anyway).
func ParseOutput(r io.Reader) ([]Result, error) {
	byName := map[string]int{}
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("bench: line %d: %w", lineNo, err)
		}
		if i, ok := byName[res.Name]; ok {
			out[i] = res
			continue
		}
		byName[res.Name] = len(out)
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: parse: %w", err)
	}
	SortResults(out)
	return out, nil
}

// parseLine parses one benchmark result line: the name, the iteration
// count, then (value, unit) pairs — ns/op, B/op, allocs/op, and any
// b.ReportMetric custom units.
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("short benchmark line %q", line)
	}
	res := Result{Name: CanonicalName(fields[0])}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return Result{}, fmt.Errorf("bad iteration count in %q", line)
	}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, fmt.Errorf("odd value/unit pairing in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("bad value %q in %q", rest[i], line)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		case "MB/s":
			// throughput is derived from ns/op; skip
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, nil
}
