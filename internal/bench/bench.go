// Package bench is the perf-trajectory counterpart of internal/results:
// it canonicalizes `go test -bench` output into committed BENCH_<name>.json
// trajectory files, diffs fresh runs against the committed baseline with
// per-field tolerances, and backs the benchstore CLI that gates CI.
//
// The contract mirrors resultstore's: every benchmark in bench_test.go uses
// fixed seeds and reports deterministic shape metrics, so the committed
// baseline is a property of the code, not of the machine that ran it.
// Wall-clock fields (ns/op) are compared inside a generous ratio band;
// allocation counts are exact for the steady-state hot-path benchmarks
// (the alloc-free trial loop contract) and ratio-banded elsewhere; shape
// metrics are exact always.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Entry is one recorded observation of a benchmark: the measurement plus
// provenance. A trajectory file holds entries oldest-first; the newest is
// the active baseline.
type Entry struct {
	// Date is the recording day (UTC, YYYY-MM-DD).
	Date string `json:"date,omitempty"`
	// Commit is the source revision the recording ran at.
	Commit string `json:"commit,omitempty"`
	// Go is the toolchain version that produced the numbers.
	Go string `json:"go,omitempty"`
	// Note says why this entry was blessed ("pre-reuse baseline", ...).
	Note string `json:"note,omitempty"`

	// NsPerOp is wall time per op — machine-dependent, banded loosely.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is heap bytes allocated per op (-benchmem).
	BytesPerOp float64 `json:"bytes_per_op"`
	// AllocsPerOp is heap allocations per op (-benchmem).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds the benchmark's b.ReportMetric shape metrics
	// (separations, error rates, slowdowns) — deterministic by contract.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Result is one parsed benchmark measurement from a suite run.
type Result struct {
	// Name is the canonical benchmark name: the Go function name without
	// the "Benchmark" prefix or the -GOMAXPROCS suffix.
	Name string
	Entry
}

// Trajectory is the BENCH_<name>.json file contents: the full history of
// blessed observations for one benchmark, oldest first.
type Trajectory struct {
	Name    string  `json:"name"`
	Entries []Entry `json:"entries"`
}

// Baseline returns the newest entry — the one checks compare against.
func (t *Trajectory) Baseline() (Entry, error) {
	if t == nil || len(t.Entries) == 0 {
		return Entry{}, fmt.Errorf("bench: %s has no entries", t.Name)
	}
	return t.Entries[len(t.Entries)-1], nil
}

// CanonicalName strips the "Benchmark" prefix and the "-N" GOMAXPROCS
// suffix from a go test benchmark name.
func CanonicalName(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		digits := name[i+1:]
		if digits != "" && strings.Trim(digits, "0123456789") == "" {
			name = name[:i]
		}
	}
	return name
}

// SortResults orders results by canonical name for stable reports.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name })
}
