package bench

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
)

// RunConfig drives one fixed-seed suite run via `go test`.
type RunConfig struct {
	// Dir is the working directory for go test (the module root).
	Dir string
	// Pkg is the package holding the benchmarks (default ".").
	Pkg string
	// Pattern is the -bench regexp (default ".").
	Pattern string
	// Benchtime is the -benchtime value (default "3x"). The suite's
	// benchmarks warm up inside the body before b.ResetTimer, so every
	// timed iteration is the steady state and a systematic k-allocs-per-op
	// regression still reports exactly k; averaging over a few iterations
	// only flushes one-off noise (a GC emptying a sync.Pool mid-run adds
	// 1/N allocs/op, which truncates to zero instead of tripping the
	// exact gate).
	Benchtime string
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Pkg == "" {
		c.Pkg = "."
	}
	if c.Pattern == "" {
		c.Pattern = "."
	}
	if c.Benchtime == "" {
		c.Benchtime = "3x"
	}
	return c
}

// Run executes the benchmark suite and parses its output. The suite runs
// with a small fixed iteration count and -count 1: the benchmarks are
// seeded and warmed internally, so the timed iterations are both fast and
// exactly reproducible.
func Run(cfg RunConfig) ([]Result, error) {
	cfg = cfg.withDefaults()
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", cfg.Pattern, "-benchtime", cfg.Benchtime,
		"-benchmem", "-count", "1", cfg.Pkg)
	cmd.Dir = cfg.Dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("bench: go test: %w\n%s%s", err, out.String(), errb.String())
	}
	return ParseOutput(&out)
}

// ReadFile parses a saved `go test -bench` output file — the offline path
// for tests and for checking a run recorded elsewhere.
func ReadFile(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer f.Close()
	return ParseOutput(f)
}
