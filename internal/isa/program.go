package isa

import "fmt"

// Program is an executable instruction sequence. Instruction addresses are
// indices into Insts; the code is mapped at CodeBase in the (shared) address
// space so that instruction fetch exercises the I-cache. Each instruction
// occupies InstBytes bytes.
type Program struct {
	Insts []Inst
	// Symbols maps label names to instruction indices. Optional; used for
	// diagnostics and by the assembler.
	Symbols map[string]int
	// CodeBase is the byte address of instruction 0. It must be line-aligned
	// for deterministic I-cache behaviour.
	CodeBase int64
}

// InstBytes is the size of one instruction in the address space. Eight
// instructions share a 64-byte cache line.
const InstBytes = 8

// DefaultCodeBase is where programs are mapped unless overridden. It is
// far from the default data regions used by tests and gadget builders.
const DefaultCodeBase = 0x40_0000

// NewProgram wraps an instruction slice in a Program mapped at
// DefaultCodeBase.
func NewProgram(insts []Inst) *Program {
	return &Program{Insts: insts, Symbols: map[string]int{}, CodeBase: DefaultCodeBase}
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Insts) }

// InstAddr returns the byte address of instruction pc.
func (p *Program) InstAddr(pc int) int64 { return p.CodeBase + int64(pc)*InstBytes }

// AddrPC converts a byte address inside the code region back to an
// instruction index, with ok=false when the address is out of range.
func (p *Program) AddrPC(addr int64) (pc int, ok bool) {
	off := addr - p.CodeBase
	if off < 0 || off%InstBytes != 0 {
		return 0, false
	}
	pc = int(off / InstBytes)
	if pc >= len(p.Insts) {
		return 0, false
	}
	return pc, true
}

// Successors returns the static control-flow successors of instruction
// pc, for analyses that walk the program as a graph: both directions of a
// conditional branch (fall-through first), the target of a jump, nothing
// after a halt, and the fall-through otherwise. The final instruction has
// no fall-through successor.
func (p *Program) Successors(pc int) []int {
	if pc < 0 || pc >= len(p.Insts) {
		return nil
	}
	in := p.Insts[pc]
	var succ []int
	switch {
	case in.Op == Halt:
	case in.Op == Jmp:
		succ = append(succ, in.Target)
	case in.IsCondBranch():
		if pc+1 < len(p.Insts) {
			succ = append(succ, pc+1)
		}
		succ = append(succ, in.Target)
	default:
		if pc+1 < len(p.Insts) {
			succ = append(succ, pc+1)
		}
	}
	return succ
}

// Validate checks every instruction and branch target.
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("isa: empty program")
	}
	if p.CodeBase < 0 {
		return fmt.Errorf("isa: negative code base %d", p.CodeBase)
	}
	for i, in := range p.Insts {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("isa: inst %d (%s): %w", i, in, err)
		}
		if in.IsBranch() {
			if in.Target < 0 || in.Target >= len(p.Insts) {
				return fmt.Errorf("isa: inst %d (%s): branch target %d out of range [0,%d)",
					i, in, in.Target, len(p.Insts))
			}
		}
	}
	return nil
}

// String renders the whole program with instruction indices and labels.
func (p *Program) String() string {
	labelAt := map[int]string{}
	for name, pc := range p.Symbols {
		if prev, ok := labelAt[pc]; !ok || name < prev {
			labelAt[pc] = name
		}
	}
	out := ""
	for i, in := range p.Insts {
		if lbl, ok := labelAt[i]; ok {
			out += lbl + ":\n"
		}
		out += fmt.Sprintf("%4d:  %s\n", i, in)
	}
	return out
}
