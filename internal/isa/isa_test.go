package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	if got := R0.String(); got != "r0" {
		t.Errorf("R0.String() = %q, want %q", got, "r0")
	}
	if got := R31.String(); got != "r31" {
		t.Errorf("R31.String() = %q, want %q", got, "r31")
	}
}

func TestRegValid(t *testing.T) {
	if !R31.Valid() {
		t.Error("R31 should be valid")
	}
	if Reg(32).Valid() {
		t.Error("Reg(32) should be invalid")
	}
}

func TestOpStringAllDefined(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		s := o.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", uint8(o))
		}
	}
}

func TestOpValid(t *testing.T) {
	if !Load.Valid() {
		t.Error("Load should be valid")
	}
	if Op(200).Valid() {
		t.Error("Op(200) should be invalid")
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("Op(200).String() = %q", got)
	}
}

func TestOpClassEveryOpcodeClassified(t *testing.T) {
	want := map[Op]Class{
		Nop:     ClassNone,
		Halt:    ClassNone,
		Fence:   ClassNone,
		Add:     ClassALU,
		AddI:    ClassALU,
		MovI:    ClassALU,
		RdCycle: ClassALU,
		Mul:     ClassMul,
		MulI:    ClassMul,
		Div:     ClassSqrt,
		Sqrt:    ClassSqrt,
		Load:    ClassLoad,
		Flush:   ClassLoad,
		Store:   ClassStore,
		Beq:     ClassBranch,
		Jmp:     ClassBranch,
	}
	for op, cls := range want {
		if got := OpClass(op); got != cls {
			t.Errorf("OpClass(%s) = %s, want %s", op, got, cls)
		}
	}
}

func TestSqrtNonPipelined(t *testing.T) {
	if Pipelined(ClassSqrt) {
		t.Error("ClassSqrt must be non-pipelined (GDNPEU gadget requirement)")
	}
	for _, c := range []Class{ClassALU, ClassMul, ClassLoad, ClassStore, ClassBranch} {
		if !Pipelined(c) {
			t.Errorf("%s should be pipelined", c)
		}
	}
}

func TestClassLatencyPositive(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if ClassLatency(c) < 1 {
			t.Errorf("ClassLatency(%s) = %d, want >= 1", c, ClassLatency(c))
		}
	}
	if ClassLatency(ClassSqrt) <= ClassLatency(ClassALU) {
		t.Error("sqrt latency must dominate ALU latency for the interference cascade")
	}
}

func TestInstHasDst(t *testing.T) {
	cases := []struct {
		in   Inst
		want bool
	}{
		{Inst{Op: Add, Dst: R1, Src1: R2, Src2: R3}, true},
		{Inst{Op: Load, Dst: R1, Src1: R2}, true},
		{Inst{Op: Store, Src1: R1, Src2: R2}, false},
		{Inst{Op: Beq, Src1: R1, Src2: R2}, false},
		{Inst{Op: Flush, Src1: R1}, false},
		{Inst{Op: RdCycle, Dst: R5}, true},
		{Inst{Op: Nop}, false},
		{Inst{Op: Fence}, false},
	}
	for _, c := range cases {
		if got := c.in.HasDst(); got != c.want {
			t.Errorf("%s: HasDst() = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestInstUses(t *testing.T) {
	srcs, n := Inst{Op: Add, Dst: R1, Src1: R2, Src2: R3}.Uses()
	if n != 2 || srcs[0] != R2 || srcs[1] != R3 {
		t.Errorf("Add uses = %v/%d", srcs, n)
	}
	srcs, n = Inst{Op: Load, Dst: R1, Src1: R4}.Uses()
	if n != 1 || srcs[0] != R4 {
		t.Errorf("Load uses = %v/%d", srcs, n)
	}
	_, n = Inst{Op: MovI, Dst: R1, Imm: 7}.Uses()
	if n != 0 {
		t.Errorf("MovI uses n = %d, want 0", n)
	}
	srcs, n = Inst{Op: Store, Src1: R1, Src2: R2}.Uses()
	if n != 2 || srcs[0] != R1 || srcs[1] != R2 {
		t.Errorf("Store uses = %v/%d", srcs, n)
	}
}

func TestInstPredicates(t *testing.T) {
	b := Inst{Op: Blt, Src1: R1, Src2: R2, Target: 0}
	if !b.IsBranch() || !b.IsCondBranch() || !b.MaySquash() {
		t.Error("Blt should be a squashable conditional branch")
	}
	j := Inst{Op: Jmp, Target: 0}
	if !j.IsBranch() || j.IsCondBranch() || j.MaySquash() {
		t.Error("Jmp is an unconditional, non-squashing branch")
	}
	ld := Inst{Op: Load, Dst: R1, Src1: R2}
	if !ld.IsMem() || !ld.MaySquash() {
		t.Error("Load is a memory op and may squash (Futuristic model)")
	}
	add := Inst{Op: Add, Dst: R1, Src1: R2, Src2: R3}
	if add.IsMem() || add.MaySquash() || add.IsBranch() {
		t.Error("Add is plain ALU")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: MovI, Dst: R1, Imm: 42}, "movi r1, 42"},
		{Inst{Op: Add, Dst: R1, Src1: R2, Src2: R3}, "add r1, r2, r3"},
		{Inst{Op: Load, Dst: R4, Src1: R5, Imm: 16}, "load r4, 16(r5)"},
		{Inst{Op: Store, Src1: R5, Src2: R6, Imm: 8}, "store r6, 8(r5)"},
		{Inst{Op: Beq, Src1: R1, Src2: R2, Target: 7}, "beq r1, r2, @7"},
		{Inst{Op: Sqrt, Dst: R1, Src1: R2}, "sqrt r1, r2"},
		{Inst{Op: Fence}, "fence"},
		{Inst{Op: Flush, Src1: R3, Imm: 64}, "flush 64(r3)"},
		{Inst{Op: Jmp, Target: 3}, "jmp @3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestInstValidate(t *testing.T) {
	if err := (Inst{Op: Add, Dst: R1, Src1: R2, Src2: R3}).Validate(); err != nil {
		t.Errorf("valid inst rejected: %v", err)
	}
	if err := (Inst{Op: Op(99)}).Validate(); err == nil {
		t.Error("invalid opcode accepted")
	}
	if err := (Inst{Op: Add, Dst: Reg(40), Src1: R1, Src2: R2}).Validate(); err == nil {
		t.Error("invalid dst accepted")
	}
	if err := (Inst{Op: Add, Dst: R1, Src1: Reg(40), Src2: R2}).Validate(); err == nil {
		t.Error("invalid src accepted")
	}
}

func TestProgramValidate(t *testing.T) {
	p := NewProgram([]Inst{
		{Op: MovI, Dst: R1, Imm: 1},
		{Op: Beq, Src1: R1, Src2: R1, Target: 0},
		{Op: Halt},
	})
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	bad := NewProgram([]Inst{{Op: Jmp, Target: 5}})
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range branch target accepted")
	}
	empty := NewProgram(nil)
	if err := empty.Validate(); err == nil {
		t.Error("empty program accepted")
	}
}

func TestProgramAddressing(t *testing.T) {
	p := NewProgram(make([]Inst, 10))
	addr := p.InstAddr(3)
	if addr != DefaultCodeBase+3*InstBytes {
		t.Errorf("InstAddr(3) = %#x", addr)
	}
	pc, ok := p.AddrPC(addr)
	if !ok || pc != 3 {
		t.Errorf("AddrPC(%#x) = %d, %v", addr, pc, ok)
	}
	if _, ok := p.AddrPC(p.CodeBase - 8); ok {
		t.Error("address below code base accepted")
	}
	if _, ok := p.AddrPC(p.CodeBase + 1); ok {
		t.Error("unaligned address accepted")
	}
	if _, ok := p.AddrPC(p.InstAddr(10)); ok {
		t.Error("address past end accepted")
	}
}

func TestProgramAddrPCRoundTrip(t *testing.T) {
	p := NewProgram(make([]Inst, 64))
	f := func(pcRaw uint8) bool {
		pc := int(pcRaw) % 64
		got, ok := p.AddrPC(p.InstAddr(pc))
		return ok && got == pc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProgramString(t *testing.T) {
	p := NewProgram([]Inst{
		{Op: MovI, Dst: R1, Imm: 5},
		{Op: Halt},
	})
	p.Symbols["start"] = 0
	s := p.String()
	if !strings.Contains(s, "start:") || !strings.Contains(s, "movi r1, 5") {
		t.Errorf("Program.String() = %q", s)
	}
}

func TestDefsMatchesHasDst(t *testing.T) {
	for op := Nop; op < numOps; op++ {
		in := Inst{Op: op, Dst: R5}
		r, ok := in.Defs()
		if ok != in.HasDst() {
			t.Errorf("%s: Defs ok = %v, HasDst = %v", op, ok, in.HasDst())
		}
		if ok && r != R5 {
			t.Errorf("%s: Defs reg = %s, want r5", op, r)
		}
	}
}

func TestSuccessors(t *testing.T) {
	p := NewProgram([]Inst{
		{Op: MovI, Dst: R1, Imm: 1},              // 0
		{Op: Blt, Src1: R1, Src2: R2, Target: 4}, // 1
		{Op: Jmp, Target: 0},                     // 2
		{Op: Halt},                               // 3
		{Op: Nop},                                // 4: last inst, no fall-through
	})
	cases := []struct {
		pc   int
		want []int
	}{
		{0, []int{1}},
		{1, []int{2, 4}}, // fall-through first, then the taken target
		{2, []int{0}},
		{3, nil},
		{4, nil},
		{-1, nil},
		{5, nil},
	}
	for _, c := range cases {
		got := p.Successors(c.pc)
		if len(got) != len(c.want) {
			t.Errorf("Successors(%d) = %v, want %v", c.pc, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Successors(%d) = %v, want %v", c.pc, got, c.want)
				break
			}
		}
	}
}
