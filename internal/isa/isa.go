// Package isa defines the instruction set architecture executed by both the
// architectural emulator (internal/emu) and the cycle-level out-of-order core
// (internal/uarch).
//
// The ISA is a small RISC-like register machine chosen to expose exactly the
// microarchitectural levers the speculative interference attacks of Behnia et
// al. (ASPLOS 2021) require:
//
//   - SQRT/DIV are long-latency, non-pipelined, single-port operations (the
//     analog of VSQRTPD/VDIVPD used by the paper's GDNPEU gadget),
//   - LOAD/STORE traverse a cache hierarchy with MSHRs (GDMSHR),
//   - ADD chains occupy reservation stations (GIRS),
//   - CLFLUSH and RDCYCLE give the attacker the receiver primitives the
//     paper's PoCs use (Flush+Reload, timed probes),
//   - conditional branches are predicted by a mistrainable predictor.
package isa

import "fmt"

// Reg names an architectural register. The machine has NumRegs general
// purpose registers R0..R31. R0 is an ordinary register (not hardwired).
type Reg uint8

// NumRegs is the number of architectural registers.
const NumRegs = 32

// Convenience register names.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
)

// String implements fmt.Stringer.
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Valid reports whether r names an existing register.
func (r Reg) Valid() bool { return r < NumRegs }

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	// Nop does nothing.
	Nop Op = iota
	// Halt stops the machine.
	Halt

	// MovI: Dst = Imm.
	MovI
	// Mov: Dst = Src1.
	Mov
	// Add: Dst = Src1 + Src2.
	Add
	// AddI: Dst = Src1 + Imm.
	AddI
	// Sub: Dst = Src1 - Src2.
	Sub
	// And: Dst = Src1 & Src2.
	And
	// Or: Dst = Src1 | Src2.
	Or
	// Xor: Dst = Src1 ^ Src2.
	Xor
	// ShlI: Dst = Src1 << uint(Imm).
	ShlI
	// ShrI: Dst = int64(uint64(Src1) >> uint(Imm)).
	ShrI

	// Mul: Dst = Src1 * Src2. Pipelined, medium latency.
	Mul
	// MulI: Dst = Src1 * Imm. Pipelined, medium latency.
	MulI
	// Div: Dst = Src1 / Src2 (0 if Src2 == 0). Non-pipelined, long latency.
	Div
	// Sqrt: Dst = isqrt(|Src1|). Non-pipelined, long latency. This is the
	// VSQRTPD analog used by interference gadgets and targets.
	Sqrt

	// Load: Dst = Mem[Src1 + Imm].
	Load
	// Store: Mem[Src1 + Imm] = Src2.
	Store
	// Flush: evict the cache line containing address Src1 + Imm from the
	// entire hierarchy (clflush analog).
	Flush

	// RdCycle: Dst = current cycle count (emulator: instruction count). The
	// attacker's timer (rdtscp / clock-thread analog).
	RdCycle

	// Beq: if Src1 == Src2 branch to Target.
	Beq
	// Bne: if Src1 != Src2 branch to Target.
	Bne
	// Blt: if Src1 < Src2 branch to Target (signed).
	Blt
	// Bge: if Src1 >= Src2 branch to Target (signed).
	Bge
	// Jmp: unconditional branch to Target. Not predicted; never mispredicts.
	Jmp

	// Fence: speculation barrier. Younger instructions do not issue until
	// the fence retires. (lfence analog; also the §5.2 defense primitive.)
	Fence

	numOps
)

var opNames = [numOps]string{
	Nop:     "nop",
	Halt:    "halt",
	MovI:    "movi",
	Mov:     "mov",
	Add:     "add",
	AddI:    "addi",
	Sub:     "sub",
	And:     "and",
	Or:      "or",
	Xor:     "xor",
	ShlI:    "shli",
	ShrI:    "shri",
	Mul:     "mul",
	MulI:    "muli",
	Div:     "div",
	Sqrt:    "sqrt",
	Load:    "load",
	Store:   "store",
	Flush:   "flush",
	RdCycle: "rdcycle",
	Beq:     "beq",
	Bne:     "bne",
	Blt:     "blt",
	Bge:     "bge",
	Jmp:     "jmp",
	Fence:   "fence",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// Class is the execution resource class of an instruction. Each class maps
// to one or more execution ports in the out-of-order core.
type Class uint8

// Execution classes.
const (
	// ClassNone: instructions that occupy no execution unit (Nop, Fence,
	// Halt complete immediately at issue).
	ClassNone Class = iota
	// ClassALU: simple integer ops. Pipelined, short latency.
	ClassALU
	// ClassMul: multiplies. Pipelined, medium latency.
	ClassMul
	// ClassSqrt: Sqrt and Div. NON-pipelined, long latency, single port
	// (the paper's port-0 VSQRTPD analog).
	ClassSqrt
	// ClassLoad: loads and flushes. Handled by the load/store unit.
	ClassLoad
	// ClassStore: stores (address generation at issue; data written at
	// retire).
	ClassStore
	// ClassBranch: conditional branches and jumps.
	ClassBranch

	// NumClasses is the number of execution classes.
	NumClasses
)

var classNames = [NumClasses]string{
	ClassNone:   "none",
	ClassALU:    "alu",
	ClassMul:    "mul",
	ClassSqrt:   "sqrt",
	ClassLoad:   "load",
	ClassStore:  "store",
	ClassBranch: "branch",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// OpClass returns the execution class of an opcode.
func OpClass(o Op) Class {
	switch o {
	case Add, AddI, Sub, And, Or, Xor, ShlI, ShrI, Mov, MovI, RdCycle:
		return ClassALU
	case Mul, MulI:
		return ClassMul
	case Div, Sqrt:
		return ClassSqrt
	case Load, Flush:
		return ClassLoad
	case Store:
		return ClassStore
	case Beq, Bne, Blt, Bge, Jmp:
		return ClassBranch
	default:
		return ClassNone
	}
}

// Latencies (cycles from issue to completion) for each class, excluding
// memory operations whose latency depends on the cache hierarchy. These are
// defaults; the core's Config may override them.
const (
	// LatALU is the ALU latency.
	LatALU = 1
	// LatMul is the multiplier latency.
	LatMul = 4
	// LatSqrt is the Sqrt/Div latency. The unit is non-pipelined, so this
	// is also its occupancy (the paper's VSQRTPD: ~15-cycle latency,
	// ~9-12 cycle reciprocal throughput; we model full non-pipelining).
	LatSqrt = 12
	// LatBranch is the branch resolution latency once operands are ready.
	LatBranch = 1
)

// ClassLatency returns the default execution latency of class c. Memory
// classes return the minimum (address-generation) latency; the cache
// hierarchy adds the rest.
func ClassLatency(c Class) int {
	switch c {
	case ClassALU:
		return LatALU
	case ClassMul:
		return LatMul
	case ClassSqrt:
		return LatSqrt
	case ClassBranch:
		return LatBranch
	default:
		return 1
	}
}

// Pipelined reports whether execution units of class c accept a new
// operation every cycle. ClassSqrt units are non-pipelined: they are busy
// for the whole latency of the operation they execute.
func Pipelined(c Class) bool { return c != ClassSqrt }

// Inst is one instruction. The zero value is a Nop.
type Inst struct {
	Op  Op
	Dst Reg
	// Src1, Src2 are source registers. Which are meaningful depends on Op.
	Src1, Src2 Reg
	// Imm is the immediate operand (displacement for memory ops, value for
	// MovI/AddI/MulI, shift amount for ShlI/ShrI).
	Imm int64
	// Target is the branch target, an instruction index into the program.
	Target int
}

// HasDst reports whether the instruction writes a destination register.
func (in Inst) HasDst() bool {
	switch in.Op {
	case MovI, Mov, Add, AddI, Sub, And, Or, Xor, ShlI, ShrI,
		Mul, MulI, Div, Sqrt, Load, RdCycle:
		return true
	}
	return false
}

// Defs returns the register the instruction writes and whether it writes
// one at all — the def half of static use/def walking (Uses is the use
// half). It is HasDst expressed as data, so analyses can treat defs and
// uses uniformly.
func (in Inst) Defs() (Reg, bool) {
	if in.HasDst() {
		return in.Dst, true
	}
	return 0, false
}

// Uses returns the source registers read by the instruction. The second
// return value counts how many of the two entries are meaningful.
func (in Inst) Uses() (srcs [2]Reg, n int) {
	switch in.Op {
	case Mov, AddI, MulI, ShlI, ShrI, Sqrt, Load, Flush:
		return [2]Reg{in.Src1}, 1
	case Add, Sub, And, Or, Xor, Mul, Div, Store, Beq, Bne, Blt, Bge:
		return [2]Reg{in.Src1, in.Src2}, 2
	default:
		return [2]Reg{}, 0
	}
}

// IsBranch reports whether the instruction is a control-flow instruction.
func (in Inst) IsBranch() bool {
	switch in.Op {
	case Beq, Bne, Blt, Bge, Jmp:
		return true
	}
	return false
}

// IsCondBranch reports whether the instruction is a conditional branch
// (predicted; may mispredict and squash).
func (in Inst) IsCondBranch() bool {
	switch in.Op {
	case Beq, Bne, Blt, Bge:
		return true
	}
	return false
}

// IsMem reports whether the instruction accesses data memory.
func (in Inst) IsMem() bool {
	switch in.Op {
	case Load, Store, Flush:
		return true
	}
	return false
}

// MaySquash reports whether the instruction can trigger a pipeline squash.
// Under the paper's Futuristic threat model every such instruction casts a
// speculative shadow; under the Spectre model only conditional branches do.
// Loads are included (they may fault / be replayed), matching the paper's
// description of the Futuristic model.
func (in Inst) MaySquash() bool {
	return in.IsCondBranch() || in.Op == Load || in.Op == Store
}

// Class returns the execution class of the instruction.
func (in Inst) Class() Class { return OpClass(in.Op) }

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch in.Op {
	case Nop, Halt, Fence:
		return in.Op.String()
	case MovI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Dst, in.Imm)
	case Mov:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src1)
	case AddI, MulI, ShlI, ShrI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Dst, in.Src1, in.Imm)
	case Add, Sub, And, Or, Xor, Mul, Div:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
	case Sqrt:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src1)
	case Load:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Dst, in.Imm, in.Src1)
	case Store:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Src2, in.Imm, in.Src1)
	case Flush:
		return fmt.Sprintf("%s %d(%s)", in.Op, in.Imm, in.Src1)
	case RdCycle:
		return fmt.Sprintf("%s %s", in.Op, in.Dst)
	case Beq, Bne, Blt, Bge:
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, in.Src1, in.Src2, in.Target)
	case Jmp:
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	default:
		return fmt.Sprintf("%s ?", in.Op)
	}
}

// Validate reports an error when the instruction is malformed (bad opcode or
// out-of-range register). Branch targets are validated against a program by
// Program.Validate.
func (in Inst) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	if in.HasDst() && !in.Dst.Valid() {
		return fmt.Errorf("isa: %s: invalid destination %s", in.Op, in.Dst)
	}
	srcs, n := in.Uses()
	for i := 0; i < n; i++ {
		if !srcs[i].Valid() {
			return fmt.Errorf("isa: %s: invalid source %s", in.Op, srcs[i])
		}
	}
	return nil
}
