// Package results is the persistent results store: every experiment
// harness (the Figure 7 histogram, the Table 1 vulnerability matrix, the
// Figure 11 channel curves and the Figure 12 defense-overhead sweep) can
// persist its output as a Record — the experiment's parameters, volatile
// run metadata (git revision, worker count, wall time) and the full
// payload — into an append-only JSONL store for cross-run comparison and
// regression tracking.
//
// Two runs are comparable when their experiment and parameters match;
// volatile metadata (worker count included — results are bit-identical at
// any worker count by construction) never affects comparison. Each record
// carries a canonical SHA-256 signature of its parameters and payload, so
// "nothing changed" is a hash comparison; when hashes differ, Diff
// classifies the change as statistical drift or a regression (a matrix
// cell flipping vulnerable↔protected, channel accuracy collapsing, the
// interference separation disappearing, or defense overheads shifting
// beyond thresholds).
package results

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"specinterference/internal/channel"
	"specinterference/internal/core"
	"specinterference/internal/detect"
	"specinterference/internal/workload"
)

// SchemaVersion is bumped whenever Record's canonical encoding changes
// incompatibly; records with a different schema are incomparable.
const SchemaVersion = 1

// Experiment names. One Record holds exactly one experiment's payload.
const (
	// ExpFigure7 is the §4.2.1 interference-contention histogram.
	ExpFigure7 = "figure7"
	// ExpTable1 is the scheme × gadget × ordering vulnerability matrix.
	ExpTable1 = "table1"
	// ExpFigure11 is the covert-channel error-versus-rate curves.
	ExpFigure11 = "figure11"
	// ExpFigure12 is the defense-overhead sweep.
	ExpFigure12 = "figure12"
	// ExpConcordance is the static-detector-versus-simulator agreement
	// grid over the Table 1 cells.
	ExpConcordance = "concordance"
)

// Experiments lists every experiment name in canonical order.
func Experiments() []string {
	return []string{ExpFigure7, ExpTable1, ExpFigure11, ExpFigure12, ExpConcordance}
}

// Params are the experiment parameters that define comparability: two
// records are comparable only when their Params are equal. Fields are
// per-experiment; unused ones stay zero and are omitted from the JSON.
type Params struct {
	// Trials is the per-arm trial count (figure7).
	Trials int `json:"trials,omitempty"`
	// Jitter is the DRAM latency jitter in cycles (figure7).
	Jitter int `json:"jitter,omitempty"`
	// Seed is the measurement seed (figure7, figure11).
	Seed uint64 `json:"seed,omitempty"`
	// Schemes lists scheme names (table1, figure12).
	Schemes []string `json:"schemes,omitempty"`
	// PoCs lists PoC names, "dcache"/"icache" (figure11).
	PoCs []string `json:"pocs,omitempty"`
	// Bits is the number of random bits per curve point (figure11).
	Bits int `json:"bits,omitempty"`
	// Reps is the repetitions-per-bit sweep (figure11).
	Reps []int `json:"reps,omitempty"`
	// Iters is the per-kernel loop count (figure12).
	Iters int `json:"iters,omitempty"`
}

// Meta is volatile run metadata: recorded for provenance, excluded from
// the canonical signature, never part of comparability.
type Meta struct {
	// CreatedAt is the record's creation time, RFC 3339.
	CreatedAt string `json:"created_at,omitempty"`
	// GitRev is the source revision the run was built from.
	GitRev string `json:"git_rev,omitempty"`
	// Workers is the worker-goroutine count the run used (0 = one per
	// CPU). Results are bit-identical at any value, hence metadata.
	Workers int `json:"workers,omitempty"`
	// Backend names the execution backend the run used ("inprocess",
	// "subprocess"); like Workers it never affects results, hence
	// metadata, but provenance should say how a run was produced.
	Backend string `json:"backend,omitempty"`
	// Procs is the subprocess backend's worker-process count (0 = one
	// per CPU); zero for in-process runs.
	Procs int `json:"procs,omitempty"`
	// WallMillis is the run's wall-clock duration in milliseconds.
	WallMillis int64 `json:"wall_ms,omitempty"`
	// Note is a free-form annotation ("baseline", ticket numbers, ...).
	Note string `json:"note,omitempty"`
}

// Figure7Payload is the full per-arm data behind the Figure 7 histogram.
type Figure7Payload struct {
	// Baseline and Interference are the per-trial target latencies; the
	// histograms are derived views, so the raw arms are what persist.
	Baseline     []float64 `json:"baseline"`
	Interference []float64 `json:"interference"`
	// Separation is the difference of the arm means (cycles).
	Separation float64 `json:"separation"`
	// Overlap is the overlap coefficient of the two arm histograms.
	Overlap float64 `json:"overlap"`
}

// Table1Cell is one vulnerability-matrix entry.
type Table1Cell struct {
	Scheme     string `json:"scheme"`
	Gadget     string `json:"gadget"`
	Ordering   string `json:"ordering"`
	Vulnerable bool   `json:"vulnerable"`
	RefCycle   int64  `json:"ref_cycle,omitempty"`
}

// Table1Payload is the full vulnerability matrix.
type Table1Payload struct {
	Cells []Table1Cell `json:"cells"`
}

// CurvePoint is one error-versus-rate measurement.
type CurvePoint struct {
	Reps         int     `json:"reps"`
	Bits         int     `json:"bits"`
	Errors       int     `json:"errors"`
	Dropped      int     `json:"dropped"`
	ErrorRate    float64 `json:"error_rate"`
	CyclesPerBit float64 `json:"cycles_per_bit"`
	Bps          float64 `json:"bps"`
}

// Figure11Curve is one PoC's Figure 11 curve.
type Figure11Curve struct {
	PoC    string       `json:"poc"`
	Scheme string       `json:"scheme"`
	Points []CurvePoint `json:"points"`
}

// Figure11Payload holds every measured curve.
type Figure11Payload struct {
	Curves []Figure11Curve `json:"curves"`
}

// Figure12Row is one workload's normalized execution times.
type Figure12Row struct {
	Workload       string             `json:"workload"`
	BaselineCycles int64              `json:"baseline_cycles"`
	BaselineIPC    float64            `json:"baseline_ipc"`
	Slowdown       map[string]float64 `json:"slowdown"`
}

// Figure12Payload is the full defense-overhead table.
type Figure12Payload struct {
	Rows    []Figure12Row      `json:"rows"`
	Mean    map[string]float64 `json:"mean"`
	Geomean map[string]float64 `json:"geomean"`
}

// ConcordanceCell is one static-versus-empirical comparison entry.
type ConcordanceCell struct {
	Scheme   string `json:"scheme"`
	Gadget   string `json:"gadget"`
	Ordering string `json:"ordering"`
	// Empirical is the simulator's Table 1 classification.
	Empirical bool `json:"empirical"`
	// Detector is the static analysis verdict.
	Detector bool `json:"detector"`
	// Mechanism names the detector's decisive rule.
	Mechanism string `json:"mechanism"`
	// Match is Empirical == Detector.
	Match bool `json:"match"`
	// Exception explains an enumerated, allowed divergence (empty for
	// concordant cells).
	Exception string `json:"exception,omitempty"`
}

// ConcordancePayload is the full detector agreement grid.
type ConcordancePayload struct {
	Cells []ConcordanceCell `json:"cells"`
}

// Record is one persisted experiment run. Exactly one payload pointer is
// non-nil, matching Experiment.
type Record struct {
	Schema     int    `json:"schema"`
	Experiment string `json:"experiment"`
	Params     Params `json:"params"`
	Meta       Meta   `json:"meta"`
	// Hash is the canonical SHA-256 signature of (schema, experiment,
	// params, payload); see ComputeHash.
	Hash string `json:"hash"`

	Figure7     *Figure7Payload     `json:"figure7,omitempty"`
	Table1      *Table1Payload      `json:"table1,omitempty"`
	Figure11    *Figure11Payload    `json:"figure11,omitempty"`
	Figure12    *Figure12Payload    `json:"figure12,omitempty"`
	Concordance *ConcordancePayload `json:"concordance,omitempty"`
}

// canonicalView is what the signature covers: everything that defines the
// run's outcome, nothing volatile (Meta, and the Hash itself).
type canonicalView struct {
	Schema      int                 `json:"schema"`
	Experiment  string              `json:"experiment"`
	Params      Params              `json:"params"`
	Figure7     *Figure7Payload     `json:"figure7,omitempty"`
	Table1      *Table1Payload      `json:"table1,omitempty"`
	Figure11    *Figure11Payload    `json:"figure11,omitempty"`
	Figure12    *Figure12Payload    `json:"figure12,omitempty"`
	Concordance *ConcordancePayload `json:"concordance,omitempty"`
}

// CanonicalJSON renders the signature-covered view of the record. The
// encoding is deterministic: encoding/json emits struct fields in
// declaration order, map keys sorted, and floats in shortest round-trip
// form.
func (r *Record) CanonicalJSON() ([]byte, error) {
	return json.Marshal(canonicalView{
		Schema: r.Schema, Experiment: r.Experiment, Params: r.Params,
		Figure7: r.Figure7, Table1: r.Table1,
		Figure11: r.Figure11, Figure12: r.Figure12,
		Concordance: r.Concordance,
	})
}

// ComputeHash returns the canonical SHA-256 signature of the record.
func (r *Record) ComputeHash() (string, error) {
	b, err := r.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// seal stamps Schema and Hash; every constructor ends with it.
func (r *Record) seal() (*Record, error) {
	r.Schema = SchemaVersion
	h, err := r.ComputeHash()
	if err != nil {
		return nil, err
	}
	r.Hash = h
	return r, nil
}

// Validate checks structural consistency: a known experiment, exactly the
// matching payload present, and (when set) a hash matching the canonical
// signature.
func (r *Record) Validate() error {
	var want int
	for _, p := range []struct {
		name    string
		present bool
	}{
		{ExpFigure7, r.Figure7 != nil},
		{ExpTable1, r.Table1 != nil},
		{ExpFigure11, r.Figure11 != nil},
		{ExpFigure12, r.Figure12 != nil},
		{ExpConcordance, r.Concordance != nil},
	} {
		if p.present {
			want++
			if p.name != r.Experiment {
				return fmt.Errorf("results: record %q carries a %s payload", r.Experiment, p.name)
			}
		}
	}
	if want != 1 {
		return fmt.Errorf("results: record %q must carry exactly one payload, has %d", r.Experiment, want)
	}
	if r.Hash != "" {
		h, err := r.ComputeHash()
		if err != nil {
			return err
		}
		if h != r.Hash {
			return fmt.Errorf("results: record %q hash mismatch: stored %.12s, canonical %.12s", r.Experiment, r.Hash, h)
		}
	}
	return nil
}

// Stamp fills the volatile metadata of a freshly built record: creation
// time, git revision, worker count and wall time. The hash is unaffected.
func (r *Record) Stamp(workers int, wall time.Duration) {
	r.Meta.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	r.Meta.GitRev = GitRevision()
	r.Meta.Workers = workers
	r.Meta.WallMillis = wall.Milliseconds()
}

// NewFigure7Record wraps a Figure 7 measurement.
func NewFigure7Record(res *core.Figure7Result, trials, jitter int, seed uint64) (*Record, error) {
	r := &Record{
		Experiment: ExpFigure7,
		Params:     Params{Trials: trials, Jitter: jitter, Seed: seed},
		Figure7: &Figure7Payload{
			Baseline:     res.Baseline,
			Interference: res.Interference,
			Separation:   res.Separation,
			Overlap:      res.Overlap,
		},
	}
	return r.seal()
}

// NewTable1Record wraps a vulnerability-matrix run.
func NewTable1Record(cells []core.MatrixCell, schemeNames []string) (*Record, error) {
	p := &Table1Payload{Cells: make([]Table1Cell, 0, len(cells))}
	for _, c := range cells {
		p.Cells = append(p.Cells, Table1Cell{
			Scheme: c.Scheme, Gadget: c.Gadget.String(), Ordering: c.Ordering.String(),
			Vulnerable: c.Vulnerable, RefCycle: c.RefCycle,
		})
	}
	r := &Record{
		Experiment: ExpTable1,
		Params:     Params{Schemes: append([]string(nil), schemeNames...)},
		Table1:     p,
	}
	return r.seal()
}

// NewConcordanceRecord wraps a detector-versus-simulator agreement grid.
// It refuses to seal a record containing an unexplained mismatch: a
// divergence must be fixed in the detector or enumerated as an exception
// before it can become a committed result.
func NewConcordanceRecord(cells []detect.Cell, schemeNames []string) (*Record, error) {
	if err := detect.CheckCells(cells); err != nil {
		return nil, err
	}
	p := &ConcordancePayload{Cells: make([]ConcordanceCell, 0, len(cells))}
	for _, c := range cells {
		p.Cells = append(p.Cells, ConcordanceCell{
			Scheme: c.Scheme, Gadget: c.Gadget.String(), Ordering: c.Ordering.String(),
			Empirical: c.Empirical, Detector: c.Detector,
			Mechanism: c.Mechanism, Match: c.Match, Exception: c.Exception,
		})
	}
	r := &Record{
		Experiment:  ExpConcordance,
		Params:      Params{Schemes: append([]string(nil), schemeNames...)},
		Concordance: p,
	}
	return r.seal()
}

// CurveInput names one measured Figure 11 curve for NewFigure11Record.
type CurveInput struct {
	// PoC is "dcache" or "icache".
	PoC string
	// Scheme is the victim scheme the PoC attacked.
	Scheme string
	// Points is the measured error-versus-rate sweep.
	Points []channel.Result
}

// NewFigure11Record wraps a set of channel curves measured with the given
// bits/reps/seed parameters.
func NewFigure11Record(curves []CurveInput, bits int, reps []int, seed uint64) (*Record, error) {
	p := &Figure11Payload{}
	pocs := make([]string, 0, len(curves))
	for _, in := range curves {
		pocs = append(pocs, in.PoC)
		c := Figure11Curve{PoC: in.PoC, Scheme: in.Scheme}
		for _, pt := range in.Points {
			c.Points = append(c.Points, CurvePoint{
				Reps: pt.Reps, Bits: pt.Bits, Errors: pt.Errors, Dropped: pt.Dropped,
				ErrorRate: pt.ErrorRate, CyclesPerBit: pt.CyclesPerBit, Bps: pt.Bps,
			})
		}
		p.Curves = append(p.Curves, c)
	}
	r := &Record{
		Experiment: ExpFigure11,
		Params: Params{
			PoCs: pocs, Bits: bits,
			Reps: append([]int(nil), reps...), Seed: seed,
		},
		Figure11: p,
	}
	return r.seal()
}

// NewFigure12Record wraps a defense-overhead sweep.
func NewFigure12Record(res *workload.EvalResult, iters int, schemeNames []string) (*Record, error) {
	p := &Figure12Payload{Mean: res.Mean, Geomean: res.Geomean}
	for _, row := range res.Rows {
		p.Rows = append(p.Rows, Figure12Row{
			Workload: row.Workload, BaselineCycles: row.BaselineCycles,
			BaselineIPC: row.BaselineIPC, Slowdown: row.Slowdown,
		})
	}
	r := &Record{
		Experiment: ExpFigure12,
		Params:     Params{Iters: iters, Schemes: append([]string(nil), schemeNames...)},
		Figure12:   p,
	}
	return r.seal()
}
