package results

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
)

// DiffClass classifies the difference between two comparable records, in
// increasing severity. A report's class is the maximum over its findings.
type DiffClass int

const (
	// Identical: the canonical signatures match — nothing changed.
	Identical DiffClass = iota
	// Drift: numeric outcomes moved within thresholds and no qualitative
	// result changed (expected when seeds, noise models or tie-breaking
	// details are touched).
	Drift
	// Regression: a qualitative result flipped or a metric crossed its
	// threshold — a (gadget, scheme) matrix cell changing
	// vulnerable↔protected, channel error rates collapsing, the Figure 7
	// separation disappearing, or defense overheads shifting wholesale.
	Regression
	// Incomparable: the records cannot be diffed (different experiments,
	// parameters or schema versions). Gating treats this as a failure:
	// a baseline whose parameters silently changed is not a baseline.
	Incomparable
)

// String implements fmt.Stringer.
func (c DiffClass) String() string {
	switch c {
	case Identical:
		return "identical"
	case Drift:
		return "drift"
	case Regression:
		return "regression"
	case Incomparable:
		return "incomparable"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classification thresholds. Small-trial runs are intentionally coarse,
// so the regression thresholds are generous: they catch qualitative
// breakage, not noise.
const (
	// SeparationDropFrac: the Figure 7 arm separation shrinking by more
	// than this fraction of the old value is a regression (the
	// interference effect the whole attack rests on is disappearing).
	SeparationDropFrac = 0.5
	// OverlapRise: the Figure 7 histogram overlap coefficient rising by
	// more than this absolute amount is a regression (arms merging).
	OverlapRise = 0.25
	// ErrorRateRise: a Figure 11 point's bit error rate rising by more
	// than this absolute amount is a regression (channel accuracy drop).
	ErrorRateRise = 0.2
	// SlowdownFactor: a Figure 12 slowdown changing by more than this
	// multiplicative factor (either direction) is a regression.
	SlowdownFactor = 1.5
)

// Finding is one classified difference.
type Finding struct {
	Class  DiffClass `json:"class"`
	Detail string    `json:"detail"`
}

// DiffReport is the classified comparison of two records of the same
// experiment.
type DiffReport struct {
	Experiment string    `json:"experiment"`
	Class      DiffClass `json:"class"`
	Findings   []Finding `json:"findings,omitempty"`
}

// add records a finding and raises the report class.
func (d *DiffReport) add(c DiffClass, format string, args ...interface{}) {
	d.Findings = append(d.Findings, Finding{Class: c, Detail: fmt.Sprintf(format, args...)})
	if c > d.Class {
		d.Class = c
	}
}

// Format renders the report for terminals: one header line plus one line
// per finding.
func (d *DiffReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %s\n", d.Experiment, strings.ToUpper(d.Class.String()))
	for _, f := range d.Findings {
		fmt.Fprintf(&b, "  [%s] %s\n", f.Class, f.Detail)
	}
	return b.String()
}

// Diff compares an old record against a new one. Worker counts, git
// revisions and the rest of Meta never matter; records of the same
// experiment at the same parameters with equal signatures are Identical
// regardless of how they were produced.
func Diff(old, new *Record) *DiffReport {
	d := &DiffReport{Experiment: old.Experiment}
	if old.Experiment != new.Experiment {
		d.Experiment = old.Experiment + "→" + new.Experiment
		d.add(Incomparable, "different experiments: %s vs %s", old.Experiment, new.Experiment)
		return d
	}
	if old.Schema != new.Schema {
		d.add(Incomparable, "schema version changed: %d vs %d", old.Schema, new.Schema)
		return d
	}
	if !paramsEqual(old.Params, new.Params) {
		d.add(Incomparable, "parameters differ: %+v vs %+v", old.Params, new.Params)
		return d
	}
	// Compare recomputed signatures, not the stored strings: a record
	// whose hash field is absent (hand-edited fixture) must still diff as
	// identical against a byte-identical payload.
	oldHash, oldErr := old.ComputeHash()
	newHash, newErr := new.ComputeHash()
	if oldErr == nil && newErr == nil && oldHash == newHash {
		return d // Identical
	}
	switch old.Experiment {
	case ExpFigure7:
		diffFigure7(d, old.Figure7, new.Figure7)
	case ExpTable1:
		diffTable1(d, old.Table1, new.Table1)
	case ExpFigure11:
		diffFigure11(d, old.Figure11, new.Figure11)
	case ExpFigure12:
		diffFigure12(d, old.Figure12, new.Figure12)
	case ExpConcordance:
		diffConcordance(d, old.Concordance, new.Concordance)
	default:
		d.add(Incomparable, "unknown experiment %q", old.Experiment)
	}
	if len(d.Findings) == 0 {
		// The canonical bytes changed but no classifier fired (e.g. a
		// latency vector reordered without moving any summary): drift.
		d.add(Drift, "payload bytes changed without crossing any threshold")
	}
	return d
}

func paramsEqual(a, b Params) bool {
	return a.Trials == b.Trials && a.Jitter == b.Jitter && a.Seed == b.Seed &&
		a.Bits == b.Bits && a.Iters == b.Iters &&
		slices.Equal(a.Schemes, b.Schemes) && slices.Equal(a.PoCs, b.PoCs) &&
		slices.Equal(a.Reps, b.Reps)
}

func diffFigure7(d *DiffReport, old, new *Figure7Payload) {
	if sep := math.Abs(old.Separation); sep > 0 {
		// Project the new separation onto the old effect's direction: a
		// sign inversion is a full collapse (drop > 1), not a small
		// absolute change.
		aligned := new.Separation
		if old.Separation < 0 {
			aligned = -aligned
		}
		drop := (sep - aligned) / sep
		if drop > SeparationDropFrac {
			d.add(Regression, "interference separation collapsed: %.1f → %.1f cycles (-%.0f%%)",
				old.Separation, new.Separation, drop*100)
		} else if old.Separation != new.Separation {
			d.add(Drift, "separation %.1f → %.1f cycles", old.Separation, new.Separation)
		}
	}
	if rise := new.Overlap - old.Overlap; rise > OverlapRise {
		d.add(Regression, "histogram overlap rose: %.3f → %.3f (arms merging)", old.Overlap, new.Overlap)
	} else if new.Overlap != old.Overlap {
		d.add(Drift, "overlap %.3f → %.3f", old.Overlap, new.Overlap)
	}
}

func diffTable1(d *DiffReport, old, new *Table1Payload) {
	type cellKey struct{ scheme, gadget, ordering string }
	index := func(p *Table1Payload) map[cellKey]Table1Cell {
		m := make(map[cellKey]Table1Cell, len(p.Cells))
		for _, c := range p.Cells {
			m[cellKey{c.Scheme, c.Gadget, c.Ordering}] = c
		}
		return m
	}
	oldCells, newCells := index(old), index(new)
	keys := make([]cellKey, 0, len(oldCells))
	for k := range oldCells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.gadget != b.gadget {
			return a.gadget < b.gadget
		}
		if a.ordering != b.ordering {
			return a.ordering < b.ordering
		}
		return a.scheme < b.scheme
	})
	for _, k := range keys {
		oc := oldCells[k]
		nc, ok := newCells[k]
		if !ok {
			d.add(Incomparable, "cell %s/%s/%s missing from new record", k.scheme, k.gadget, k.ordering)
			continue
		}
		if oc.Vulnerable != nc.Vulnerable {
			d.add(Regression, "matrix cell %s under %s/%s flipped %s → %s",
				k.scheme, k.gadget, k.ordering, vulnWord(oc.Vulnerable), vulnWord(nc.Vulnerable))
		} else if oc.RefCycle != nc.RefCycle {
			d.add(Drift, "cell %s/%s/%s reference cycle %d → %d",
				k.scheme, k.gadget, k.ordering, oc.RefCycle, nc.RefCycle)
		}
	}
	for k := range newCells {
		if _, ok := oldCells[k]; !ok {
			d.add(Incomparable, "cell %s/%s/%s missing from old record", k.scheme, k.gadget, k.ordering)
		}
	}
}

func vulnWord(v bool) string {
	if v {
		return "vulnerable"
	}
	return "protected"
}

func diffConcordance(d *DiffReport, old, new *ConcordancePayload) {
	type cellKey struct{ scheme, gadget, ordering string }
	index := func(p *ConcordancePayload) map[cellKey]ConcordanceCell {
		m := make(map[cellKey]ConcordanceCell, len(p.Cells))
		for _, c := range p.Cells {
			m[cellKey{c.Scheme, c.Gadget, c.Ordering}] = c
		}
		return m
	}
	oldCells, newCells := index(old), index(new)
	keys := make([]cellKey, 0, len(oldCells))
	for k := range oldCells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.gadget != b.gadget {
			return a.gadget < b.gadget
		}
		if a.ordering != b.ordering {
			return a.ordering < b.ordering
		}
		return a.scheme < b.scheme
	})
	for _, k := range keys {
		oc := oldCells[k]
		nc, ok := newCells[k]
		if !ok {
			d.add(Incomparable, "cell %s/%s/%s missing from new record", k.scheme, k.gadget, k.ordering)
			continue
		}
		switch {
		// A verdict flip (on either side) or a lost agreement is a
		// regression: the detector or the simulator changed its mind about
		// a security property.
		case oc.Detector != nc.Detector || oc.Empirical != nc.Empirical || oc.Match != nc.Match:
			d.add(Regression, "cell %s/%s/%s changed: empirical %v→%v, detector %v→%v (match %v→%v)",
				k.scheme, k.gadget, k.ordering,
				oc.Empirical, nc.Empirical, oc.Detector, nc.Detector, oc.Match, nc.Match)
		case oc.Mechanism != nc.Mechanism:
			d.add(Drift, "cell %s/%s/%s mechanism %q → %q",
				k.scheme, k.gadget, k.ordering, oc.Mechanism, nc.Mechanism)
		case oc.Exception != nc.Exception:
			d.add(Drift, "cell %s/%s/%s exception %q → %q",
				k.scheme, k.gadget, k.ordering, oc.Exception, nc.Exception)
		}
	}
	for k := range newCells {
		if _, ok := oldCells[k]; !ok {
			d.add(Incomparable, "cell %s/%s/%s missing from old record", k.scheme, k.gadget, k.ordering)
		}
	}
}

func diffFigure11(d *DiffReport, old, new *Figure11Payload) {
	index := func(p *Figure11Payload) map[string]Figure11Curve {
		m := make(map[string]Figure11Curve, len(p.Curves))
		for _, c := range p.Curves {
			m[c.PoC+"/"+c.Scheme] = c
		}
		return m
	}
	oldCurves, newCurves := index(old), index(new)
	keys := make([]string, 0, len(oldCurves))
	for k := range oldCurves {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		oc := oldCurves[k]
		nc, ok := newCurves[k]
		if !ok {
			d.add(Incomparable, "curve %s missing from new record", k)
			continue
		}
		// Points pair positionally: equal Params.Reps guarantees the same
		// sweep order, and duplicate reps values (measured at distinct
		// seeds) stay distinct points.
		if len(oc.Points) != len(nc.Points) {
			d.add(Incomparable, "curve %s has %d points vs %d", k, len(oc.Points), len(nc.Points))
			continue
		}
		for i, op := range oc.Points {
			np := nc.Points[i]
			if np.Reps != op.Reps {
				d.add(Incomparable, "curve %s point %d is reps=%d vs reps=%d", k, i, op.Reps, np.Reps)
				continue
			}
			if rise := np.ErrorRate - op.ErrorRate; rise > ErrorRateRise {
				d.add(Regression, "curve %s reps=%d error rate rose %.3f → %.3f (channel accuracy drop)",
					k, op.Reps, op.ErrorRate, np.ErrorRate)
			} else if op != np {
				d.add(Drift, "curve %s reps=%d moved (error %.3f → %.3f, %.0f → %.0f cycles/bit)",
					k, op.Reps, op.ErrorRate, np.ErrorRate, op.CyclesPerBit, np.CyclesPerBit)
			}
		}
	}
	for k := range newCurves {
		if _, ok := oldCurves[k]; !ok {
			d.add(Incomparable, "curve %s missing from old record", k)
		}
	}
}

func diffFigure12(d *DiffReport, old, new *Figure12Payload) {
	newRows := make(map[string]Figure12Row, len(new.Rows))
	for _, r := range new.Rows {
		newRows[r.Workload] = r
	}
	for _, or := range old.Rows {
		nr, ok := newRows[or.Workload]
		if !ok {
			d.add(Incomparable, "workload %s missing from new record", or.Workload)
			continue
		}
		schemes := make([]string, 0, len(or.Slowdown))
		for s := range or.Slowdown {
			schemes = append(schemes, s)
		}
		sort.Strings(schemes)
		for _, s := range schemes {
			osd, nsd := or.Slowdown[s], nr.Slowdown[s]
			if osd <= 0 || nsd <= 0 {
				d.add(Incomparable, "%s/%s has non-positive slowdown (%.3f → %.3f)", or.Workload, s, osd, nsd)
				continue
			}
			if ratio := nsd / osd; ratio > SlowdownFactor || ratio < 1/SlowdownFactor {
				d.add(Regression, "%s under %s slowdown shifted %.2fx → %.2fx", or.Workload, s, osd, nsd)
			} else if osd != nsd {
				d.add(Drift, "%s under %s slowdown %.3fx → %.3fx", or.Workload, s, osd, nsd)
			}
		}
		if or.BaselineCycles != nr.BaselineCycles {
			d.add(Drift, "%s baseline cycles %d → %d", or.Workload, or.BaselineCycles, nr.BaselineCycles)
		}
	}
	for _, nr := range new.Rows {
		found := false
		for _, or := range old.Rows {
			if or.Workload == nr.Workload {
				found = true
				break
			}
		}
		if !found {
			d.add(Incomparable, "workload %s missing from old record", nr.Workload)
		}
	}
}
