package results

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Store is an append-only directory of run records: one JSONL file per
// experiment (<dir>/<experiment>.jsonl), one record per line, newest
// last. Records are never rewritten in place; history is the point.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("results: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path returns the JSONL file holding an experiment's records.
func (s *Store) path(experiment string) string {
	return filepath.Join(s.dir, experiment+".jsonl")
}

// Replace rewrites an experiment's history to just rec — the baseline
// workflow, where each experiment keeps one committed record that is
// swapped wholesale on intentional refreshes.
func (s *Store) Replace(rec *Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	if err := os.Remove(s.path(rec.Experiment)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("results: replace: %w", err)
	}
	return s.Append(rec)
}

// Append validates rec and appends it to its experiment's JSONL file.
func (s *Store) Append(rec *Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(s.path(rec.Experiment), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("results: append: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("results: append: %w", err)
	}
	return f.Close()
}

// RecordRun stamps a sealed record's volatile metadata (git revision,
// worker count, wall time) and appends it to the store at dir, creating
// the store if needed — the shared tail of every -store code path.
func RecordRun(dir string, rec *Record, workers int, wall time.Duration) error {
	store, err := Open(dir)
	if err != nil {
		return err
	}
	rec.Stamp(workers, wall)
	return store.Append(rec)
}

// Load returns every record of one experiment, oldest first. A missing
// file is an empty history, not an error.
func (s *Store) Load(experiment string) ([]*Record, error) {
	recs, err := ReadFile(s.path(experiment))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return recs, err
}

// Latest returns the newest record of an experiment, or an error when the
// experiment has no history.
func (s *Store) Latest(experiment string) (*Record, error) {
	recs, err := s.Load(experiment)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("results: no %s records in %s", experiment, s.dir)
	}
	return recs[len(recs)-1], nil
}

// At resolves an index into an experiment's history: 0 is the oldest
// record, negative counts from the end (-1 = latest).
func (s *Store) At(experiment string, idx int) (*Record, error) {
	recs, err := s.Load(experiment)
	if err != nil {
		return nil, err
	}
	if idx < 0 {
		idx += len(recs)
	}
	if idx < 0 || idx >= len(recs) {
		return nil, fmt.Errorf("results: %s has %d records, index %d out of range", experiment, len(recs), idx)
	}
	return recs[idx], nil
}

// Experiments lists the experiments that have history in the store, in
// canonical order.
func (s *Store) Experiments() ([]string, error) {
	var out []string
	for _, exp := range Experiments() {
		if _, err := os.Stat(s.path(exp)); err == nil {
			out = append(out, exp)
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	return out, nil
}

// ReadFile parses one JSONL record file, validating every record.
func ReadFile(path string) ([]*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []*Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec := &Record{}
		if err := json.Unmarshal(line, rec); err != nil {
			return nil, fmt.Errorf("results: %s:%d: %w", path, lineNo, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("results: %s:%d: %w", path, lineNo, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("results: %s: %w", path, err)
	}
	return out, nil
}

// ParseRef splits a record reference of the form "experiment" or
// "experiment@idx" (idx 0-based, negative from the end; bare experiment
// means @-1, the latest record).
func ParseRef(ref string) (experiment string, idx int, err error) {
	experiment, idx = ref, -1
	if at := strings.LastIndexByte(ref, '@'); at >= 0 {
		experiment = ref[:at]
		n, err := strconv.Atoi(ref[at+1:])
		if err != nil {
			return "", 0, fmt.Errorf("results: bad record index in %q", ref)
		}
		idx = n
	}
	for _, exp := range Experiments() {
		if experiment == exp {
			return experiment, idx, nil
		}
	}
	return "", 0, fmt.Errorf("results: unknown experiment %q (want one of %s)",
		experiment, strings.Join(Experiments(), ", "))
}

var gitRevOnce struct {
	sync.Once
	rev string
}

// GitRevision returns the source revision of the running binary
// ("+dirty" when the tree had local modifications), or "unknown" when no
// revision is discoverable. The build's stamped VCS info is preferred —
// it travels with the binary regardless of where it runs; `git` against
// the working directory is the fallback for un-stamped builds (go run,
// test binaries). The value is cached for the process lifetime.
func GitRevision() string {
	gitRevOnce.Do(func() {
		gitRevOnce.rev = "unknown"
		if rev, ok := buildInfoRevision(); ok {
			gitRevOnce.rev = rev
			return
		}
		out, err := exec.Command("git", "rev-parse", "HEAD").Output()
		if err != nil {
			return
		}
		rev := strings.TrimSpace(string(out))
		if rev == "" {
			return
		}
		if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil &&
			len(bytes.TrimSpace(status)) > 0 {
			rev += "+dirty"
		}
		gitRevOnce.rev = rev
	})
	return gitRevOnce.rev
}

// buildInfoRevision reads the vcs.revision/vcs.modified settings the Go
// toolchain stamps into binaries built inside a checkout.
func buildInfoRevision() (string, bool) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "", false
	}
	rev, modified := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if rev == "" {
		return "", false
	}
	if modified {
		rev += "+dirty"
	}
	return rev, true
}
