package results

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files and the committed regression
// baseline instead of asserting against them:
//
//	go test ./internal/results -run 'TestGolden|TestBaseline' -update
var update = flag.Bool("update", false, "rewrite golden files and the committed baseline")

// goldenPath returns testdata/<experiment>.golden.json.
func goldenPath(experiment string) string {
	return filepath.Join("testdata", experiment+".golden.json")
}

// baselineDir is the committed baseline store the CI `resultstore check`
// step gates against.
const baselineDir = "testdata/baseline"

// goldenBytes renders a record the way the golden files store it: the
// canonical (signature-covered) view, pretty-printed for reviewable
// diffs, trailing newline included.
func goldenBytes(t *testing.T, rec *Record) []byte {
	t.Helper()
	canonical, err := rec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, canonical, "", "  "); err != nil {
		t.Fatal(err)
	}
	pretty.WriteByte('\n')
	return pretty.Bytes()
}

// testGolden regenerates one experiment at the committed baseline
// parameters and asserts its canonical encoding is byte-identical to the
// golden file (or rewrites the golden under -update).
func testGolden(t *testing.T, experiment string) {
	params, err := BaselineParams(experiment)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Regenerate(context.Background(), experiment, params, 0)
	if err != nil {
		t.Fatalf("Regenerate(%s): %v", experiment, err)
	}
	got := goldenBytes(t, rec)
	path := goldenPath(experiment)

	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes, %.12s)", path, len(got), rec.Hash)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s output diverged from its golden file.\n"+
			"If the change is intentional, regenerate with:\n"+
			"  go test ./internal/results -run TestGolden -update\ngot:\n%swant:\n%s",
			experiment, got, want)
	}
}

func TestGoldenFigure7(t *testing.T)  { testGolden(t, ExpFigure7) }
func TestGoldenTable1(t *testing.T)   { testGolden(t, ExpTable1) }
func TestGoldenFigure11(t *testing.T) { testGolden(t, ExpFigure11) }
func TestGoldenFigure12(t *testing.T) { testGolden(t, ExpFigure12) }

func TestGoldenConcordance(t *testing.T) { testGolden(t, ExpConcordance) }

// TestBaselineCurrent mirrors the CI `resultstore check` gate in-process:
// every committed baseline record must diff as identical against a fresh
// run of its experiment at its recorded parameters. Under -update the
// baseline is rewritten instead (volatile metadata kept empty so the
// committed files stay deterministic).
func TestBaselineCurrent(t *testing.T) {
	if *update {
		store, err := Open(baselineDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, exp := range Experiments() {
			params, err := BaselineParams(exp)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := Regenerate(context.Background(), exp, params, 0)
			if err != nil {
				t.Fatal(err)
			}
			rec.Meta = Meta{Note: "baseline"}
			if err := store.Replace(rec); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s (%.12s)", store.path(exp), rec.Hash)
		}
		return
	}

	store, err := Open(baselineDir)
	if err != nil {
		t.Fatal(err)
	}
	exps, err := store.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != len(Experiments()) {
		t.Fatalf("baseline holds %v, want all of %v (regenerate with -update)", exps, Experiments())
	}
	for _, exp := range exps {
		ref, err := store.Latest(exp)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Regenerate(context.Background(), exp, ref.Params, 0)
		if err != nil {
			t.Fatalf("Regenerate(%s): %v", exp, err)
		}
		if d := Diff(ref, fresh); d.Class != Identical {
			t.Errorf("%s diverged from the committed baseline (class %s):\n%s"+
				"If intentional, regenerate with:\n"+
				"  go test ./internal/results -run TestBaseline -update",
				exp, d.Class, d.Format())
		}
	}
}
