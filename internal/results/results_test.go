package results

import (
	"context"
	"path/filepath"
	"testing"
	"time"
)

// smallTable1Params is a two-scheme matrix: enough to exercise every
// gadget/ordering combination while keeping unit tests fast.
func smallTable1Params() Params {
	return Params{Schemes: []string{"unsafe", "fence-spectre"}}
}

func mustRegen(t *testing.T, exp string, p Params, workers int) *Record {
	t.Helper()
	rec, err := Regenerate(context.Background(), exp, p, workers)
	if err != nil {
		t.Fatalf("Regenerate(%s): %v", exp, err)
	}
	return rec
}

func TestRecordValidate(t *testing.T) {
	rec := mustRegen(t, ExpTable1, smallTable1Params(), 0)
	if err := rec.Validate(); err != nil {
		t.Fatalf("fresh record invalid: %v", err)
	}

	twoPayloads := *rec
	twoPayloads.Figure7 = &Figure7Payload{}
	if err := twoPayloads.Validate(); err == nil {
		t.Fatal("record with two payloads passed validation")
	}

	wrongName := *rec
	wrongName.Experiment = ExpFigure7
	if err := wrongName.Validate(); err == nil {
		t.Fatal("record with mismatched experiment/payload passed validation")
	}

	tampered := *rec
	cells := append([]Table1Cell(nil), rec.Table1.Cells...)
	cells[0].Vulnerable = !cells[0].Vulnerable
	tampered.Table1 = &Table1Payload{Cells: cells}
	if err := tampered.Validate(); err == nil {
		t.Fatal("tampered payload passed hash validation")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := mustRegen(t, ExpTable1, smallTable1Params(), 0)
	rec.Stamp(2, 5*time.Millisecond)
	if err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
	second := mustRegen(t, ExpTable1, smallTable1Params(), 0)
	second.Meta.Note = "second"
	if err := s.Append(second); err != nil {
		t.Fatal(err)
	}

	recs, err := s.Load(ExpTable1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("loaded %d records, want 2", len(recs))
	}
	if recs[0].Meta.Workers != 2 || recs[0].Meta.GitRev == "" {
		t.Fatalf("first record lost its metadata: %+v", recs[0].Meta)
	}
	latest, err := s.Latest(ExpTable1)
	if err != nil {
		t.Fatal(err)
	}
	if latest.Meta.Note != "second" {
		t.Fatalf("Latest returned the wrong record: %+v", latest.Meta)
	}
	oldest, err := s.At(ExpTable1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if oldest.Meta.Note == "second" {
		t.Fatal("At(0) returned the newest record")
	}
	if _, err := s.At(ExpTable1, 5); err == nil {
		t.Fatal("out-of-range index succeeded")
	}
	if _, err := s.Latest(ExpFigure7); err == nil {
		t.Fatal("Latest on empty history succeeded")
	}
	exps, err := s.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 1 || exps[0] != ExpTable1 {
		t.Fatalf("Experiments() = %v, want [table1]", exps)
	}
}

func TestParseRef(t *testing.T) {
	for _, tc := range []struct {
		ref  string
		exp  string
		idx  int
		fail bool
	}{
		{ref: "table1", exp: ExpTable1, idx: -1},
		{ref: "figure7@0", exp: ExpFigure7, idx: 0},
		{ref: "figure11@-2", exp: ExpFigure11, idx: -2},
		{ref: "nonsense", fail: true},
		{ref: "table1@x", fail: true},
		{ref: "table1@1junk", fail: true},
	} {
		exp, idx, err := ParseRef(tc.ref)
		if tc.fail {
			if err == nil {
				t.Errorf("ParseRef(%q) succeeded, want error", tc.ref)
			}
			continue
		}
		if err != nil || exp != tc.exp || idx != tc.idx {
			t.Errorf("ParseRef(%q) = (%q, %d, %v), want (%q, %d)", tc.ref, exp, idx, err, tc.exp, tc.idx)
		}
	}
}

// TestDiffWorkerCountIdentical is the store's core guarantee: the same
// experiment at the same parameters is bit-identical at any worker count,
// so records produced serially and in parallel diff as identical.
func TestDiffWorkerCountIdentical(t *testing.T) {
	serial := mustRegen(t, ExpTable1, smallTable1Params(), 1)
	serial.Stamp(1, time.Second)
	parallel := mustRegen(t, ExpTable1, smallTable1Params(), 4)
	parallel.Stamp(4, time.Millisecond)

	if serial.Hash != parallel.Hash {
		t.Fatalf("hashes differ across worker counts: %.12s vs %.12s", serial.Hash, parallel.Hash)
	}
	d := Diff(serial, parallel)
	if d.Class != Identical || len(d.Findings) != 0 {
		t.Fatalf("diff across worker counts = %s %v, want identical", d.Class, d.Findings)
	}

	f7a := mustRegen(t, ExpFigure7, Params{Trials: 4, Jitter: 10, Seed: 1}, 1)
	f7b := mustRegen(t, ExpFigure7, Params{Trials: 4, Jitter: 10, Seed: 1}, 3)
	if d := Diff(f7a, f7b); d.Class != Identical {
		t.Fatalf("figure7 diff across worker counts = %s %v, want identical", d.Class, d.Findings)
	}
}

// TestDiffMatrixFlipRegression: flipping one (gadget, scheme) cell
// vulnerable↔protected must classify as a regression.
func TestDiffMatrixFlipRegression(t *testing.T) {
	old := mustRegen(t, ExpTable1, smallTable1Params(), 0)

	flipped := *old
	cells := append([]Table1Cell(nil), old.Table1.Cells...)
	cells[0].Vulnerable = !cells[0].Vulnerable
	flipped.Table1 = &Table1Payload{Cells: cells}
	if _, err := (&flipped).seal(); err != nil {
		t.Fatal(err)
	}

	d := Diff(old, &flipped)
	if d.Class != Regression {
		t.Fatalf("diff after cell flip = %s %v, want regression", d.Class, d.Findings)
	}
	if len(d.Findings) != 1 || d.Findings[0].Class != Regression {
		t.Fatalf("want exactly one regression finding, got %v", d.Findings)
	}
}

func TestDiffIncomparable(t *testing.T) {
	table := mustRegen(t, ExpTable1, smallTable1Params(), 0)
	figure := mustRegen(t, ExpFigure7, Params{Trials: 4, Jitter: 10, Seed: 1}, 0)
	if d := Diff(table, figure); d.Class != Incomparable {
		t.Fatalf("cross-experiment diff = %s, want incomparable", d.Class)
	}

	otherSeed := mustRegen(t, ExpFigure7, Params{Trials: 4, Jitter: 10, Seed: 2}, 0)
	if d := Diff(figure, otherSeed); d.Class != Incomparable {
		t.Fatalf("cross-parameter diff = %s, want incomparable", d.Class)
	}
}

// synthetic payload diffs: thresholds fire exactly as documented.
func sealedFigure7(t *testing.T, sep, overlap float64) *Record {
	t.Helper()
	r := &Record{
		Experiment: ExpFigure7,
		Params:     Params{Trials: 2, Jitter: 1, Seed: 1},
		Figure7: &Figure7Payload{
			Baseline: []float64{100, 100}, Interference: []float64{100 + sep, 100 + sep},
			Separation: sep, Overlap: overlap,
		},
	}
	if _, err := r.seal(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDiffFigure7Thresholds(t *testing.T) {
	base := sealedFigure7(t, 80, 0.05)
	if d := Diff(base, sealedFigure7(t, 70, 0.08)); d.Class != Drift {
		t.Fatalf("small separation move = %s %v, want drift", d.Class, d.Findings)
	}
	if d := Diff(base, sealedFigure7(t, 10, 0.05)); d.Class != Regression {
		t.Fatalf("separation collapse = %s, want regression", d.Class)
	}
	if d := Diff(base, sealedFigure7(t, 80, 0.9)); d.Class != Regression {
		t.Fatalf("overlap explosion = %s, want regression", d.Class)
	}
	// A sign inversion is a full collapse of the interference effect even
	// when the magnitudes are close.
	if d := Diff(base, sealedFigure7(t, -65, 0.05)); d.Class != Regression {
		t.Fatalf("separation sign inversion = %s %v, want regression", d.Class, d.Findings)
	}
}

// TestDiffRecomputesHashes: a fixture whose hash field was stripped (or
// never written) must still diff as identical against a byte-identical
// payload — the comparison trusts recomputed signatures, not stored
// strings.
func TestDiffRecomputesHashes(t *testing.T) {
	a := sealedFigure7(t, 80, 0.05)
	b := sealedFigure7(t, 80, 0.05)
	b.Hash = ""
	if d := Diff(b, a); d.Class != Identical || len(d.Findings) != 0 {
		t.Fatalf("diff with a hashless old record = %s %v, want identical", d.Class, d.Findings)
	}
	if d := Diff(a, b); d.Class != Identical {
		t.Fatalf("diff with a hashless new record = %s, want identical", d.Class)
	}
}

func sealedFigure11(t *testing.T, errorRates ...float64) *Record {
	t.Helper()
	reps := make([]int, len(errorRates))
	pts := make([]CurvePoint, len(errorRates))
	for i, er := range errorRates {
		reps[i] = 1 // duplicate reps values are legal: seeds differ by position
		pts[i] = CurvePoint{Reps: 1, Bits: 4, ErrorRate: er, CyclesPerBit: 2000, Bps: 1e6}
	}
	r := &Record{
		Experiment: ExpFigure11,
		Params:     Params{PoCs: []string{"dcache"}, Bits: 4, Reps: reps, Seed: 1},
		Figure11: &Figure11Payload{Curves: []Figure11Curve{{
			PoC: "dcache", Scheme: "invisispec-spectre", Points: pts,
		}}},
	}
	if _, err := r.seal(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDiffFigure11Thresholds(t *testing.T) {
	base := sealedFigure11(t, 0.1)
	if d := Diff(base, sealedFigure11(t, 0.2)); d.Class != Drift {
		t.Fatalf("small error-rate move = %s %v, want drift", d.Class, d.Findings)
	}
	if d := Diff(base, sealedFigure11(t, 0.5)); d.Class != Regression {
		t.Fatalf("error-rate collapse = %s, want regression", d.Class)
	}
	// Duplicate reps values pair positionally: a collapse in the second
	// duplicate point must not hide behind the healthy first one.
	if d := Diff(sealedFigure11(t, 0.1, 0.1), sealedFigure11(t, 0.1, 0.6)); d.Class != Regression {
		t.Fatalf("collapse in a duplicate-reps point = %s, want regression", d.Class)
	}
}

func sealedFigure12(t *testing.T, slowdown float64) *Record {
	t.Helper()
	r := &Record{
		Experiment: ExpFigure12,
		Params:     Params{Iters: 10, Schemes: []string{"fence-spectre"}},
		Figure12: &Figure12Payload{
			Rows: []Figure12Row{{
				Workload: "stream", BaselineCycles: 1000, BaselineIPC: 1,
				Slowdown: map[string]float64{"fence-spectre": slowdown},
			}},
			Mean:    map[string]float64{"fence-spectre": slowdown},
			Geomean: map[string]float64{"fence-spectre": slowdown},
		},
	}
	if _, err := r.seal(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDiffFigure12Thresholds(t *testing.T) {
	base := sealedFigure12(t, 1.6)
	if d := Diff(base, sealedFigure12(t, 1.7)); d.Class != Drift {
		t.Fatalf("small slowdown move = %s %v, want drift", d.Class, d.Findings)
	}
	if d := Diff(base, sealedFigure12(t, 4.0)); d.Class != Regression {
		t.Fatalf("slowdown explosion = %s, want regression", d.Class)
	}
}

func TestGitRevision(t *testing.T) {
	if rev := GitRevision(); rev == "" {
		t.Fatal("GitRevision returned an empty string")
	}
}
