package results

import (
	"context"
	"fmt"

	"specinterference/internal/channel"
	"specinterference/internal/core"
	"specinterference/internal/detect"
	"specinterference/internal/schemes"
	"specinterference/internal/workload"
)

// BaselineParams returns the small-trial parameter set the committed
// regression baselines use: large enough that every qualitative result
// (matrix cells, arm separation, decodable channels) shows, small enough
// that a full regeneration is a CI-friendly couple of seconds.
func BaselineParams(experiment string) (Params, error) {
	switch experiment {
	case ExpFigure7:
		return Params{Trials: 8, Jitter: 10, Seed: 1}, nil
	case ExpTable1:
		return Params{Schemes: schemes.Names()}, nil
	case ExpFigure11:
		return Params{PoCs: []string{"dcache", "icache"}, Bits: 4, Reps: []int{1, 3}, Seed: 1}, nil
	case ExpFigure12:
		return Params{Iters: 120, Schemes: []string{"fence-spectre", "fence-futuristic"}}, nil
	case ExpConcordance:
		return Params{Schemes: schemes.Names()}, nil
	default:
		return Params{}, fmt.Errorf("results: unknown experiment %q", experiment)
	}
}

// Regenerate runs one experiment at the given parameters and returns the
// fresh (unstamped) record. Workers bounds trial concurrency (0 = one per
// CPU); by the runner's determinism guarantee the record's signature is
// the same at any value.
func Regenerate(ctx context.Context, experiment string, p Params, workers int) (*Record, error) {
	switch experiment {
	case ExpFigure7:
		res, err := core.Figure7Parallel(ctx, p.Trials, p.Jitter, p.Seed, workers)
		if err != nil {
			return nil, err
		}
		return NewFigure7Record(res, p.Trials, p.Jitter, p.Seed)
	case ExpTable1:
		cells, err := core.VulnerabilityMatrixParallel(ctx, p.Schemes, workers)
		if err != nil {
			return nil, err
		}
		return NewTable1Record(cells, p.Schemes)
	case ExpFigure11:
		var curves []CurveInput
		for _, name := range p.PoCs {
			poc, err := channel.PoCByName(name)
			if err != nil {
				return nil, err
			}
			pts, err := channel.CurveParallel(ctx, poc, p.Reps, p.Bits, p.Seed, workers)
			if err != nil {
				return nil, err
			}
			curves = append(curves, CurveInput{PoC: name, Scheme: poc.SchemeName, Points: pts})
		}
		return NewFigure11Record(curves, p.Bits, p.Reps, p.Seed)
	case ExpFigure12:
		res, err := workload.EvaluateContext(ctx, workload.EvalConfig{
			Iters:     p.Iters,
			MaxCycles: workload.DefaultEvalConfig().MaxCycles,
			Schemes:   p.Schemes,
			Cores:     1,
			Workers:   workers,
		})
		if err != nil {
			return nil, err
		}
		return NewFigure12Record(res, p.Iters, p.Schemes)
	case ExpConcordance:
		cells, err := detect.Matrix(ctx, p.Schemes, workers)
		if err != nil {
			return nil, err
		}
		return NewConcordanceRecord(cells, p.Schemes)
	default:
		return nil, fmt.Errorf("results: unknown experiment %q", experiment)
	}
}
