// Package runner shards independent experiment trials across a bounded
// worker pool. Every paper artifact in this repo — the Figure 7 histogram,
// the Table 1 matrix, the Figure 11 channel curves and the Figure 12
// defense sweep — repeats many independent simulations, each with its own
// seed; runner fans those trials out over goroutines while preserving the
// exact results of the serial loops.
//
// The determinism contract: callers derive each shard's seed from the
// shard index alone (seedBase + index arithmetic identical to the old
// serial loops), every shard builds its own System/Memory, and Map returns
// results in index order. Under that contract the output is bit-identical
// at any worker count, so "-parallel 8" is purely a wall-clock knob.
//
// The nondeterminism analyzer (internal/lint, run as cmd/speclint in CI)
// enforces the contract statically: code reachable from a registered
// experiment spec must not read the wall clock, the global math/rand
// source, or the environment, and map-iteration order must not feed any
// output the signatures hash.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Workers clamps a requested worker count to something sensible for
// `shards` independent shards: non-positive requests mean "one worker per
// available CPU" (GOMAXPROCS), and the result never exceeds the shard
// count (extra workers would only idle) nor drops below one.
func Workers(requested, shards int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if shards >= 1 && w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(ctx, i) for every i in [0, n) across Workers(workers, n)
// goroutines and returns the n results in index order, regardless of
// completion order. The first error cancels the shared context — in-flight
// shards can observe ctx.Done() and abandon work — and no further shards
// are dispatched; Map then returns that first-dispatched error. A nil or
// already-cancelled ctx is honoured before any shard runs.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative shard count %d", n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if n == 0 {
		return nil, ctx.Err()
	}
	results := make([]T, n)
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	shards := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range shards {
				// A pre-cancelled or just-cancelled context can still win the
				// feeder's select race; don't start work on a dead context.
				if ctx.Err() != nil {
					return
				}
				r, err := fn(ctx, i)
				if err != nil {
					fail(err)
					return
				}
				results[i] = r
			}
		}()
	}

	// Feed shard indices until done or a failure cancels the context; the
	// select keeps the feeder from blocking on workers that bailed out.
feed:
	for i := 0; i < n; i++ {
		select {
		case shards <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(shards)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
