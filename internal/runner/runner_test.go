package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersClamping(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, shards, want int
	}{
		{0, 100, min(maxprocs, 100)},  // default: one per CPU
		{-3, 100, min(maxprocs, 100)}, // negative means default too
		{8, 3, 3},                     // never more workers than shards
		{8, 100, 8},                   // explicit request honoured
		{1, 100, 1},                   // serial
		{4, 0, 4},                     // zero shards: no clamp applies
		{0, 1, 1},                     // one shard: one worker
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.shards); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.shards, got, c.want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestMapOrderedResults forces out-of-order completion (early shards
// finish last) and checks results still land at their own index.
func TestMapOrderedResults(t *testing.T) {
	const n = 16
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := Map(context.Background(), n, workers, func(_ context.Context, i int) (int, error) {
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapErrorPropagation checks the first error is returned and cancels
// the shared context so in-flight shards can abandon their work.
func TestMapErrorPropagation(t *testing.T) {
	boom := errors.New("shard 3 exploded")
	var sawCancel atomic.Bool
	_, err := Map(context.Background(), 8, 4, func(ctx context.Context, i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		// Other shards park on the context; without cancellation this
		// test would deadlock (caught by the test timeout).
		select {
		case <-ctx.Done():
			sawCancel.Store(true)
			return 0, nil
		case <-time.After(10 * time.Second):
			return 0, fmt.Errorf("shard %d never saw cancellation", i)
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Map error = %v, want %v", err, boom)
	}
	if !sawCancel.Load() {
		t.Error("no in-flight shard observed the cancelled context")
	}
}

// TestMapStopsDispatchAfterError checks shards are not dispatched once a
// failure has been observed (the feeder bails out on ctx.Done).
func TestMapStopsDispatchAfterError(t *testing.T) {
	var dispatched atomic.Int64
	boom := errors.New("early failure")
	_, err := Map(context.Background(), 1000, 2, func(_ context.Context, i int) (int, error) {
		dispatched.Add(1)
		if i == 0 {
			return 0, boom
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Map error = %v, want %v", err, boom)
	}
	if n := dispatched.Load(); n >= 1000 {
		t.Errorf("all %d shards dispatched despite early error", n)
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		_, err := Map(ctx, 8, workers, func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if workers == 1 && ran.Load() != 0 {
			t.Errorf("serial path ran %d shards under a cancelled context", ran.Load())
		}
	}
}

func TestMapEdgeCases(t *testing.T) {
	got, err := Map(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) {
		t.Error("fn called for zero shards")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Errorf("Map(n=0) = (%v, %v), want (nil, nil)", got, err)
	}
	if _, err := Map(context.Background(), -1, 4, func(_ context.Context, i int) (int, error) {
		return 0, nil
	}); err == nil {
		t.Error("Map(n=-1) succeeded, want error")
	}
	// nil context is tolerated.
	res, err := Map(nil, 3, 2, func(_ context.Context, i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatalf("Map(nil ctx): %v", err)
	}
	if res[0] != 1 || res[1] != 2 || res[2] != 3 {
		t.Errorf("Map(nil ctx) results = %v", res)
	}
}

// TestMapManyShardsRace hammers the pool with more shards than workers so
// the race detector (CI runs go test -race) sees real contention on the
// results slice and dispatch channel.
func TestMapManyShardsRace(t *testing.T) {
	const n = 500
	got, err := Map(context.Background(), n, 8, func(_ context.Context, i int) (uint64, error) {
		// Simulate seed derivation: pure function of the shard index.
		return uint64(i)*2654435761 + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if want := uint64(i)*2654435761 + 1; v != want {
			t.Fatalf("result[%d] = %d, want %d", i, v, want)
		}
	}
}
