package trace

import (
	"strings"
	"testing"

	"specinterference/internal/asm"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
	"specinterference/internal/uarch"
)

func record(seq int64, op isa.Op, f, d, i, c, r int64, squashed bool) uarch.InstRecord {
	return uarch.InstRecord{
		Seq: seq, Inst: isa.Inst{Op: op},
		Fetch: f, Dispatch: d, Issue: i, Complete: c, Retire: r,
		Squashed: squashed,
	}
}

func TestRenderBasic(t *testing.T) {
	recs := []uarch.InstRecord{
		record(0, isa.MovI, 0, 1, 2, 3, 4, false),
		record(1, isa.Add, 0, 1, 3, 4, 5, false),
	}
	out := Render(recs, Options{CyclesPerChar: 1})
	if !strings.Contains(out, "movi") || !strings.Contains(out, "add") {
		t.Errorf("missing instructions:\n%s", out)
	}
	if !strings.Contains(out, "F") || !strings.Contains(out, "R") {
		t.Errorf("missing stage markers:\n%s", out)
	}
}

func TestRenderSquashedHidden(t *testing.T) {
	recs := []uarch.InstRecord{
		record(0, isa.MovI, 0, 1, 2, 3, 4, false),
		record(1, isa.Load, 0, 1, 2, 5, -1, true),
	}
	out := Render(recs, Options{})
	if strings.Contains(out, "load") {
		t.Error("squashed row shown without ShowSquashed")
	}
	out = Render(recs, Options{ShowSquashed: true})
	if !strings.Contains(out, "load") || !strings.Contains(out, "x") {
		t.Errorf("squashed row missing or unmarked:\n%s", out)
	}
}

func TestRenderWindowAndCap(t *testing.T) {
	var recs []uarch.InstRecord
	for i := int64(0); i < 20; i++ {
		recs = append(recs, record(i, isa.Nop, i*10, i*10+1, i*10+2, i*10+3, i*10+4, false))
	}
	out := Render(recs, Options{From: 0, To: 50, CyclesPerChar: 1})
	if strings.Count(out, "nop") > 7 {
		t.Errorf("window not applied:\n%s", out)
	}
	out = Render(recs, Options{MaxRows: 3})
	if strings.Count(out, "nop") != 3 || !strings.Contains(out, "more rows") {
		t.Errorf("row cap not applied:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if Render(nil, Options{}) != "(no records)\n" {
		t.Error("empty render")
	}
}

func TestLegendAndSummary(t *testing.T) {
	if Legend() == "" {
		t.Error("empty legend")
	}
	recs := []uarch.InstRecord{
		record(0, isa.MovI, 0, 1, 2, 3, 10, false),
		record(1, isa.Load, 0, 1, 2, 5, -1, true),
	}
	s := Summary(recs)
	if !strings.Contains(s, "retired 1") || !strings.Contains(s, "squashed 1") {
		t.Errorf("summary = %q", s)
	}
	if !strings.Contains(s, "10.0") {
		t.Errorf("latency missing: %q", s)
	}
}

func TestRecorderWithRealPipeline(t *testing.T) {
	p := asm.MustAssemble(`
    movi r1, 5
    movi r2, 6
    mul  r3, r1, r2
    sqrt r4, r3
    halt`)
	cfg := uarch.DefaultConfig(1)
	s := uarch.MustNewSystem(cfg, mem.New())
	rec := NewRecorder()
	s.Core(0).SetTraceHook(rec)
	if err := s.LoadProgram(0, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100_000); err != nil {
		t.Fatal(err)
	}
	recs := rec.Records()
	if len(recs) != 5 {
		t.Fatalf("records = %d, want 5", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq < recs[i-1].Seq {
			t.Error("records not ordered by seq")
		}
	}
	out := Render(recs, Options{})
	if !strings.Contains(out, "sqrt") {
		t.Errorf("pipeline render missing sqrt:\n%s", out)
	}
	rec.Reset()
	if len(rec.Records()) != 0 {
		t.Error("reset failed")
	}
}
