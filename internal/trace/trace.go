// Package trace collects per-instruction pipeline records and renders them
// as ASCII timelines — the textual analog of the paper's attack timeline
// figures (3b, 4b, 5b) and of pipeline viewers like Konata.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"specinterference/internal/uarch"
)

// Recorder implements uarch.TraceHook and accumulates records.
type Recorder struct {
	records []uarch.InstRecord
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record implements uarch.TraceHook.
func (r *Recorder) Record(_ int, rec uarch.InstRecord) {
	r.records = append(r.records, rec)
}

// Records returns everything recorded, ordered by sequence number.
func (r *Recorder) Records() []uarch.InstRecord {
	out := append([]uarch.InstRecord(nil), r.records...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset clears the recorder.
func (r *Recorder) Reset() { r.records = r.records[:0] }

// Options controls timeline rendering.
type Options struct {
	// From and To bound the rendered cycle window; To == 0 means "until
	// the last retirement".
	From, To int64
	// CyclesPerChar compresses the horizontal axis (default 2).
	CyclesPerChar int64
	// ShowSquashed includes squashed (wrong-path) instructions.
	ShowSquashed bool
	// MaxRows caps the number of rendered instructions (0 = no cap).
	MaxRows int
}

// stage markers used in the timeline:
//
//	F fetch   D dispatch   i issue   E executing   C complete   R retire
//	x squashed instruction (whole row rendered dimly with x markers)
const markers = "FDiECR"

// Render draws one row per instruction. Each row shows the instruction and
// its lifetime: F(etch), D(ispatch), i(ssue), C(omplete), R(etire), with
// '=' filling issue→complete and '.' filling other in-flight gaps.
func Render(records []uarch.InstRecord, opt Options) string {
	if opt.CyclesPerChar <= 0 {
		opt.CyclesPerChar = 2
	}
	if len(records) == 0 {
		return "(no records)\n"
	}
	recs := append([]uarch.InstRecord(nil), records...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })

	from, to := opt.From, opt.To
	if to == 0 {
		for _, r := range recs {
			if r.Retire > to {
				to = r.Retire
			}
			if r.Complete > to {
				to = r.Complete
			}
		}
	}
	if to <= from {
		to = from + 1
	}
	width := int((to-from)/opt.CyclesPerChar) + 1
	if width > 400 {
		width = 400
	}
	col := func(cyc int64) int {
		c := int((cyc - from) / opt.CyclesPerChar)
		if c < 0 {
			return 0
		}
		if c >= width {
			return width - 1
		}
		return c
	}

	var b strings.Builder
	fmt.Fprintf(&b, "cycles %d..%d, %d cycle(s)/column\n", from, to, opt.CyclesPerChar)
	rows := 0
	for _, r := range recs {
		if r.Squashed && !opt.ShowSquashed {
			continue
		}
		last := r.Retire
		if last < 0 {
			last = r.Complete
		}
		if last < from && r.Fetch < from {
			continue
		}
		if r.Fetch > to {
			continue
		}
		if opt.MaxRows > 0 && rows >= opt.MaxRows {
			fmt.Fprintf(&b, "... (%d more rows)\n", len(recs)-rows)
			break
		}
		rows++
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		span := func(a, z int64, fill byte) {
			if a < 0 || z < 0 {
				return
			}
			for i := col(a); i <= col(z); i++ {
				line[i] = fill
			}
		}
		mark := func(cyc int64, m byte) {
			if cyc >= 0 {
				line[col(cyc)] = m
			}
		}
		span(r.Fetch, lastOf(r), '.')
		if r.Issue >= 0 && r.Complete >= 0 {
			span(r.Issue, r.Complete, '=')
		}
		mark(r.Fetch, 'F')
		mark(r.Dispatch, 'D')
		mark(r.Issue, 'i')
		mark(r.Complete, 'C')
		mark(r.Retire, 'R')
		if r.Squashed {
			for i := range line {
				if line[i] == '.' || line[i] == '=' {
					line[i] = 'x'
				}
			}
		}
		tag := " "
		if r.Squashed {
			tag = "x"
		}
		fmt.Fprintf(&b, "%5d %s %-24s |%s|\n", r.Seq, tag, truncate(r.Inst.String(), 24), string(line))
	}
	return b.String()
}

func lastOf(r uarch.InstRecord) int64 {
	last := r.Fetch
	for _, c := range []int64{r.Dispatch, r.Issue, r.Complete, r.Retire} {
		if c > last {
			last = c
		}
	}
	return last
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Legend explains the timeline markers.
func Legend() string {
	return "F fetch  D dispatch  i issue  = executing  C complete  R retire  x squashed\n"
}

// Summary renders per-instruction latency statistics of a record set.
func Summary(records []uarch.InstRecord) string {
	var retired, squashed int
	var totLat int64
	for _, r := range records {
		if r.Squashed {
			squashed++
			continue
		}
		retired++
		if r.Retire >= 0 && r.Fetch >= 0 {
			totLat += r.Retire - r.Fetch
		}
	}
	avg := 0.0
	if retired > 0 {
		avg = float64(totLat) / float64(retired)
	}
	return fmt.Sprintf("retired %d, squashed %d, mean fetch-to-retire %.1f cycles\n",
		retired, squashed, avg)
}
