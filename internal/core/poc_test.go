package core

import (
	"testing"

	"specinterference/internal/cache"
)

func TestDCachePoCEndToEnd(t *testing.T) {
	// Figure 9's full flow, deterministic: both bit values must decode
	// correctly through the QLRU replacement-state receiver.
	p := NewDCachePoC("invisispec-spectre", 0)
	for secret := 0; secret <= 1; secret++ {
		out, err := p.RunBit(secret, uint64(secret+1))
		if err != nil {
			t.Fatal(err)
		}
		if !out.OK {
			t.Fatalf("secret=%d: receiver saw inconsistent state (latA=%d latB=%d)",
				secret, out.LatA, out.LatB)
		}
		if out.Decoded != secret {
			t.Errorf("secret=%d decoded as %d", secret, out.Decoded)
		}
		if out.Cycles <= 0 {
			t.Error("no cycle accounting")
		}
	}
}

func TestDCachePoCAgainstDoM(t *testing.T) {
	// §4.2 motivates the attack against Delay-on-Miss specifically.
	p := NewDCachePoC("dom", 0)
	for secret := 0; secret <= 1; secret++ {
		out, err := p.RunBit(secret, uint64(secret+1))
		if err != nil {
			t.Fatal(err)
		}
		if !out.OK || out.Decoded != secret {
			t.Errorf("dom secret=%d decoded=%d ok=%v", secret, out.Decoded, out.OK)
		}
	}
}

func TestICachePoCEndToEnd(t *testing.T) {
	for _, scheme := range []string{"invisispec-spectre", "dom"} {
		p := NewICachePoC(scheme, 0)
		for secret := 0; secret <= 1; secret++ {
			out, err := p.RunBit(secret, uint64(secret+1))
			if err != nil {
				t.Fatal(err)
			}
			if !out.OK || out.Decoded != secret {
				t.Errorf("%s secret=%d decoded=%d ok=%v latA=%d",
					scheme, secret, out.Decoded, out.OK, out.LatA)
			}
		}
	}
}

func TestMSHRPoCEndToEnd(t *testing.T) {
	p := &PoC{SchemeName: "invisispec-spectre", Kind: MSHRPoC}
	for secret := 0; secret <= 1; secret++ {
		out, err := p.RunBit(secret, uint64(secret+1))
		if err != nil {
			t.Fatal(err)
		}
		if !out.OK || out.Decoded != secret {
			t.Errorf("secret=%d decoded=%d ok=%v", secret, out.Decoded, out.OK)
		}
	}
}

func TestPoCBlockedBySchemesOutsideTable1(t *testing.T) {
	// The D-Cache PoC rides the GDNPEU VD-VD channel, which Table 1 says
	// is closed on Futuristic-shadow schemes: the receiver must then see a
	// secret-INdependent order.
	for _, scheme := range []string{"invisispec-futuristic", "muontrap", "fence-spectre"} {
		p := NewDCachePoC(scheme, 0)
		out0, err := p.RunBit(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		out1, err := p.RunBit(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if out0.OK && out1.OK && out0.Decoded != out1.Decoded {
			t.Errorf("%s: PoC still distinguishes secrets (%d vs %d)",
				scheme, out0.Decoded, out1.Decoded)
		}
	}
}

func TestPoCNoisyButUsable(t *testing.T) {
	// At the Figure 11 operating points, single trials must be right far
	// more often than wrong, but not perfect (otherwise there is no curve).
	p := NewDCachePoC("invisispec-spectre", 40)
	p.ReplNoisePct = 5
	good, wrong := 0, 0
	for i := 0; i < 30; i++ {
		secret := i % 2
		out, err := p.RunBit(secret, uint64(300+i*11))
		if err != nil {
			t.Fatal(err)
		}
		if !out.OK {
			continue
		}
		if out.Decoded == secret {
			good++
		} else {
			wrong++
		}
	}
	if good <= wrong*2 {
		t.Errorf("channel too noisy: good=%d wrong=%d", good, wrong)
	}
}

func TestPoCUnknownScheme(t *testing.T) {
	p := NewDCachePoC("not-a-scheme", 0)
	if _, err := p.RunBit(0, 1); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestPoCKindString(t *testing.T) {
	for _, k := range []PoCKind{DCachePoC, ICachePoC, MSHRPoC} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
	if PoCKind(9).String() != "poc(9)" {
		t.Error("unknown kind rendering")
	}
}

func TestQLRUReceiverConstruction(t *testing.T) {
	h := cache.NewHierarchy(AttackConfig().Cache)
	l := DefaultLayout(h)
	r, err := NewQLRUReceiver(h, l)
	if err != nil {
		t.Fatal(err)
	}
	ways := AttackConfig().Cache.LLC.Ways
	if len(r.EVS1) != ways-1 || len(r.EVS2) != ways-1 {
		t.Fatalf("eviction set sizes %d/%d, want %d", len(r.EVS1), len(r.EVS2), ways-1)
	}
	seen := map[int64]bool{l.AAddr: true, l.BAddr: true, l.GadgetBase: true}
	for _, a := range append(append([]int64{}, r.EVS1...), r.EVS2...) {
		if seen[a] {
			t.Errorf("eviction line %#x duplicated or colliding", a)
		}
		seen[a] = true
	}
	if p := r.PrimeProgram(); p.Validate() != nil {
		t.Error("invalid prime program")
	}
	if p := r.ProbeProgram(); p.Validate() != nil {
		t.Error("invalid probe program")
	}
}

func TestQLRUReceiverDecode(t *testing.T) {
	r := &QLRUReceiver{}
	if bit, ok := r.Decode(60, 250); !ok || bit != 0 {
		t.Error("fast B must decode 0")
	}
	if bit, ok := r.Decode(250, 60); !ok || bit != 1 {
		t.Error("slow B must decode 1")
	}
	if _, ok := r.Decode(60, 60); ok {
		t.Error("both-fast must be flagged as noise")
	}
}

func TestFlushReloadReceiverDecode(t *testing.T) {
	r := &FlushReloadReceiver{Target: 0x1000}
	if bit, ok := r.Decode(60); !ok || bit != 0 {
		t.Error("fast reload decodes 0 (target fetched)")
	}
	if bit, ok := r.Decode(250); !ok || bit != 1 {
		t.Error("slow reload decodes 1 (frontend throttled)")
	}
	if r.ReloadProgram().Validate() != nil {
		t.Error("invalid reload program")
	}
}
