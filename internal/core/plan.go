package core

import (
	"fmt"

	"specinterference/internal/cache"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
)

// PrimeKind classifies one cache-priming step of a PrimePlan.
type PrimeKind int

// Prime operation kinds.
const (
	// PrimeWarmInst installs Addr's line into core 0's instruction-side
	// hierarchy down to Level.
	PrimeWarmInst PrimeKind = iota
	// PrimeWarmData installs Addr's line into core 0's data-side hierarchy
	// down to Level.
	PrimeWarmData
	// PrimeFlush evicts Addr's line from the entire hierarchy.
	PrimeFlush
)

// PrimeOp is one cache-priming step. Order matters: priming touches
// replacement state, so plans are applied exactly in sequence.
type PrimeOp struct {
	Kind PrimeKind
	Addr int64
	// Level is the deepest cache level a warm installs to; unused by
	// flushes.
	Level cache.Level
}

// MemWrite is one initial memory write of a trial.
type MemWrite struct {
	Addr, Val int64
}

// RegInit is one initial victim-register assignment.
type RegInit struct {
	Reg isa.Reg
	Val int64
}

// PrimePlan is the declarative initial state of one trial for one secret
// value: the memory writes, the ordered cache-priming operations and the
// victim register file that prepareTrial applies before a run. Plans are
// precomputed per victim (BuildVictim attaches one per secret), which
// keeps the pooled steady-state trial path allocation-free and — more
// importantly — gives the static leak detector (internal/detect) the
// SAME priming ground truth the empirical harness executes: which lines
// start hot or cold, what memory holds, and what the registers are. One
// source of truth, two consumers.
type PrimePlan struct {
	// Secret is the trial's secret bit (0 or 1).
	Secret int
	// MemWrites are applied to memory first.
	MemWrites []MemWrite
	// Ops are the cache-priming steps, in application order.
	Ops []PrimeOp
	// Regs are the victim core's initial registers.
	Regs []RegInit
}

// buildPrimePlan mirrors the historical prepareTrial body operation for
// operation (§4.2.3 step 1 and the per-gadget setup of §3.2.2); the
// committed result baselines pin the equivalence.
func buildPrimePlan(g Gadget, l Layout, p VictimParams, v *Victim, secret int) *PrimePlan {
	plan := &PrimePlan{Secret: secret}

	// The out-of-bounds element T[i] holds the secret; N holds the bound.
	plan.MemWrites = append(plan.MemWrites,
		MemWrite{Addr: l.TAddr + l.Index*8, Val: int64(secret)},
		MemWrite{Addr: l.NAddr, Val: 4},
	)

	// Victim code: warm every line except the secret-encoding target line,
	// which must start cold.
	for pc := 0; pc < v.Prog.Len(); pc++ {
		line := mem.LineAddr(v.Prog.InstAddr(pc))
		if line == v.TargetLine {
			continue
		}
		plan.Ops = append(plan.Ops, PrimeOp{Kind: PrimeWarmInst, Addr: line, Level: cache.LevelL1})
	}
	if v.TargetLine != 0 {
		plan.Ops = append(plan.Ops, PrimeOp{Kind: PrimeFlush, Addr: v.TargetLine})
	}

	// Data priming.
	for _, a := range []int64{l.NAddr, l.AAddr, l.BAddr, l.RefAddr} {
		plan.Ops = append(plan.Ops, PrimeOp{Kind: PrimeFlush, Addr: a})
	}
	for k := 0; k < p.MSHRLoads; k++ {
		plan.Ops = append(plan.Ops, PrimeOp{Kind: PrimeFlush, Addr: l.GadgetBase + int64(k)*mem.LineBytes})
	}
	plan.Ops = append(plan.Ops,
		PrimeOp{Kind: PrimeWarmData, Addr: l.ZAddr, Level: cache.LevelLLC},
		PrimeOp{Kind: PrimeWarmData, Addr: l.TAddr + l.Index*8, Level: cache.LevelL1},
	)
	switch g {
	case GadgetNPEU:
		// Transmitter: S[64] hot (secret=1 hits), S[0] cold.
		plan.Ops = append(plan.Ops,
			PrimeOp{Kind: PrimeFlush, Addr: l.SBase},
			PrimeOp{Kind: PrimeWarmData, Addr: l.SBase + 64, Level: cache.LevelL1},
		)
	case GadgetRS:
		// Inverted per Figure 5: S[0] hot (secret=0 drains the RS),
		// S[64] cold (secret=1 back-throttles the frontend).
		plan.Ops = append(plan.Ops,
			PrimeOp{Kind: PrimeWarmData, Addr: l.SBase, Level: cache.LevelL1},
			PrimeOp{Kind: PrimeFlush, Addr: l.SBase + 64},
		)
	case GadgetMSHR:
		// The gadget loads must all miss; S is unused.
		plan.Ops = append(plan.Ops,
			PrimeOp{Kind: PrimeFlush, Addr: l.SBase},
			PrimeOp{Kind: PrimeFlush, Addr: l.SBase + 64},
		)
	}

	plan.Regs = append(plan.Regs,
		RegInit{Reg: RegN, Val: l.NAddr},
		RegInit{Reg: RegZ, Val: l.ZAddr},
		RegInit{Reg: RegT, Val: l.TAddr},
		RegInit{Reg: RegS, Val: l.SBase},
		RegInit{Reg: RegABase, Val: l.AAddr},
		RegInit{Reg: RegBBase, Val: l.BAddr},
		RegInit{Reg: RegIdx, Val: l.Index},
		RegInit{Reg: RegZero, Val: 0},
	)
	return plan
}

// PrimePlan returns the victim's initial-state plan for one secret value.
// Plans exist only on victims assembled by BuildVictim (hand-constructed
// Victim values have none).
func (v *Victim) PrimePlan(secret int) (*PrimePlan, error) {
	if secret != 0 && secret != 1 {
		return nil, fmt.Errorf("core: secret must be 0 or 1, got %d", secret)
	}
	if v.plans[secret] == nil {
		return nil, fmt.Errorf("core: victim has no prime plan (not built by BuildVictim)")
	}
	return v.plans[secret], nil
}

// ProbeLines exposes the probe-line pair for a gadget/ordering (the
// secret-carrying line first) — the observation points the static leak
// detector shares with the empirical harness.
func ProbeLines(g Gadget, ord Ordering, l Layout, v *Victim) [2]int64 {
	return probeLines(g, ord, l, v)
}
