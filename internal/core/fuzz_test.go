package core

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"specinterference/internal/asm"
	"specinterference/internal/emu"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
	"specinterference/internal/schemes"
	"specinterference/internal/uarch"
)

var updateCorpus = flag.Bool("update", false, "rewrite the committed fuzz seed corpus")

// fuzzDataBase is the data window fuzz programs may touch; the emulator
// and the pipeline are compared word-for-word over [base, base+window).
const (
	fuzzDataBase   = 0x10000
	fuzzDataWindow = 0x1000
	fuzzMaxInsts   = 256
)

// fuzzPool is the register set fuzz instructions read and write. R1 (the
// data base), R20 and R21 (loop counters) stay outside the pool, so every
// load and store hits the data window and every loop is bounded no matter
// what the pool registers hold.
var fuzzPool = []isa.Reg{
	isa.R3, isa.R4, isa.R5, isa.R6, isa.R7, isa.R8, isa.R9,
	isa.R10, isa.R11, isa.R12, isa.R13, isa.R14, isa.R15,
}

// buildFuzzProgram decodes arbitrary bytes into a valid, terminating
// program: three bytes per instruction (selector, register byte, operand
// byte), destination and source registers drawn from fuzzPool, memory
// operands confined to the data window off R1, and control flow limited
// to forward skips and counter-bounded loops — so any input halts in a
// bounded number of dynamic instructions. RdCycle is deliberately not
// generated: the emulator defines it as an instruction count and the
// pipeline as a cycle count, so it diverges by design.
func buildFuzzProgram(data []byte) *isa.Program {
	b := asm.NewBuilder()
	b.MovI(isa.R1, fuzzDataBase)
	pool := func(x byte) isa.Reg { return fuzzPool[int(x)%len(fuzzPool)] }
	label := 0
	n := 0
	for i := 0; i+2 < len(data) && n < fuzzMaxInsts; i, n = i+3, n+1 {
		sel, a, c := data[i]%16, data[i+1], data[i+2]
		dst, s1, s2 := pool(a&0x0f), pool(a>>4), pool(c)
		switch sel {
		case 0:
			b.MovI(dst, int64(c))
		case 1:
			b.Add(dst, s1, s2)
		case 2:
			b.Sub(dst, s1, s2)
		case 3:
			b.And(dst, s1, s2)
		case 4:
			b.Or(dst, s1, s2)
		case 5:
			b.Xor(dst, s1, s2)
		case 6:
			b.Mul(dst, s1, s2)
		case 7:
			b.Div(dst, s1, s2)
		case 8:
			b.AddI(dst, s1, int64(int8(c)))
		case 9:
			b.MulI(dst, s1, int64(c%7)+1)
		case 10:
			b.ShlI(dst, s1, int64(c%64))
		case 11:
			b.ShrI(dst, s1, int64(c%64))
		case 12:
			b.Sqrt(dst, s1)
		case 13:
			b.Load(dst, isa.R1, int64(c)*8)
		case 14:
			b.Store(isa.R1, int64(c)*8, pool(a&0x0f))
		case 15:
			l := "l" + strconv.Itoa(label)
			label++
			if c < 128 { // forward skip over one instruction
				b.Blt(pool(a&0x0f), pool(a>>4), l)
				b.AddI(pool(c), pool(c), 1)
				b.Label(l)
			} else { // counter-bounded loop
				b.MovI(isa.R20, 0)
				b.MovI(isa.R21, int64(c%6)+2)
				b.Label(l)
				b.AddI(pool(a&0x0f), pool(a&0x0f), 2)
				b.AddI(isa.R20, isa.R20, 1)
				b.Blt(isa.R20, isa.R21, l)
			}
			n += 2 // branches expand to 3 or 6 instructions
		}
	}
	b.Halt()
	return b.MustBuild()
}

// encodeSeedInst maps one victim-program instruction to the decoder bytes
// of the closest buildFuzzProgram form, preserving its opcode (and thus
// the gadgets' sqrt chains, load bursts and add floods) while the decoder
// re-bases operands into the valid fuzz domain.
func encodeSeedInst(in isa.Inst) []byte {
	a := byte(in.Dst)&0x0f | byte(in.Src1)<<4
	c := byte(in.Imm)
	sel := byte(0)
	switch in.Op {
	case isa.Add:
		sel, c = 1, byte(in.Src2)
	case isa.Sub:
		sel, c = 2, byte(in.Src2)
	case isa.And:
		sel, c = 3, byte(in.Src2)
	case isa.Or:
		sel, c = 4, byte(in.Src2)
	case isa.Xor:
		sel, c = 5, byte(in.Src2)
	case isa.Mul:
		sel, c = 6, byte(in.Src2)
	case isa.Div:
		sel, c = 7, byte(in.Src2)
	case isa.AddI:
		sel = 8
	case isa.MulI:
		sel = 9
	case isa.ShlI:
		sel = 10
	case isa.ShrI:
		sel = 11
	case isa.Sqrt:
		sel = 12
	case isa.Load:
		sel = 13
	case isa.Store:
		sel, a = 14, byte(in.Src2)&0x0f
	case isa.Beq, isa.Bne, isa.Blt, isa.Bge:
		sel, c = 15, byte(in.Src2) // c < 128: forward skip
	case isa.Jmp:
		sel, c = 15, 200 // bounded loop stands in for the spin jump
	default: // Nop, MovI, Flush, Fence, RdCycle, Halt
		sel = 0
	}
	return []byte{sel, a, c}
}

// fuzzSeeds returns the committed seed corpus: the three Table 1 gadget
// programs re-encoded into the fuzz input format, so the fuzzer starts
// from the instruction mixes the experiments actually run.
func fuzzSeeds(t testing.TB) map[string][]byte {
	t.Helper()
	cfg := AttackConfig()
	sys, err := uarch.NewSystem(cfg, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	l := DefaultLayout(sys.Hierarchy())
	p := DefaultVictimParams()
	seeds := map[string][]byte{}
	for _, gc := range []struct {
		name string
		g    Gadget
		ord  Ordering
	}{
		{"seed-npeu", GadgetNPEU, OrderVDVD},
		{"seed-mshr", GadgetMSHR, OrderVDVD},
		{"seed-rs", GadgetRS, OrderVIAD},
	} {
		v, err := BuildVictim(gc.g, gc.ord, l, p)
		if err != nil {
			t.Fatal(err)
		}
		var data []byte
		for _, in := range v.Prog.Insts {
			if in.Op == isa.Halt {
				break
			}
			data = append(data, encodeSeedInst(in)...)
		}
		seeds[gc.name] = data
	}
	return seeds
}

// corpusDir is where the seed corpus lives; `go test` feeds every file in
// it to FuzzArchEquivalence on ordinary (non-fuzzing) runs.
const corpusDir = "testdata/fuzz/FuzzArchEquivalence"

// TestFuzzCorpusCurrent pins the committed seed corpus to the generated
// victim programs (regenerate with -update after intentional gadget
// changes).
func TestFuzzCorpusCurrent(t *testing.T) {
	for name, data := range fuzzSeeds(t) {
		path := filepath.Join(corpusDir, name)
		want := []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
		if *updateCorpus {
			if err := os.MkdirAll(corpusDir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		if string(got) != string(want) {
			t.Errorf("%s is stale (regenerate with -update)", path)
		}
	}
}

// FuzzArchEquivalence cross-checks the OoO pipeline against the in-order
// emulator: under the unprotected scheme, any valid program must retire
// the same architectural state — registers, data-window memory and
// dynamic instruction count — regardless of speculation, reordering and
// cache behaviour. A divergence here is an oracle bug: either machine
// could silently corrupt every Table 1 verdict built on top of it.
func FuzzArchEquivalence(f *testing.F) {
	for _, data := range fuzzSeeds(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := buildFuzzProgram(data)

		goldenMem := mem.New()
		e := emu.New(p, goldenMem)
		want, err := e.Run()
		if err != nil {
			t.Fatalf("emulator: %v\n%s", err, p)
		}

		pipeMem := mem.New()
		sys, err := uarch.NewSystem(AttackConfig(), pipeMem)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.LoadProgram(0, p, schemes.Unsafe()); err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(2_000_000); err != nil {
			t.Fatalf("pipeline: %v\n%s", err, p)
		}
		c := sys.Core(0)
		if !c.Halted() {
			t.Fatalf("pipeline did not halt\n%s", p)
		}
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if c.Reg(r) != want.Regs[r] {
				t.Fatalf("%s = %d, emulator says %d\n%s", r, c.Reg(r), want.Regs[r], p)
			}
		}
		for off := int64(0); off < fuzzDataWindow; off += 8 {
			a := int64(fuzzDataBase) + off
			if pipeMem.Read64(a) != goldenMem.Read64(a) {
				t.Fatalf("mem[%#x] = %d, emulator says %d\n%s",
					a, pipeMem.Read64(a), goldenMem.Read64(a), p)
			}
		}
		if got := c.Stats().Retired; got != int64(want.InstCount) {
			t.Fatalf("retired %d instructions, emulator says %d\n%s", got, want.InstCount, p)
		}
	})
}
