// Package core implements the paper's primary contribution: the speculative
// interference attack framework (§3) and its end-to-end proof-of-concept
// attacks (§4).
//
// The pieces map to the paper as follows:
//
//   - Victim builders (victims.go) generate the sender programs: an
//     interference gadget in the shadow of a mistrained, slow-to-resolve
//     branch, plus an interference target of bound-to-retire instructions.
//     Three gadgets are provided: GDNPEU (non-pipelined execution-unit
//     contention, Figure 3/6), GDMSHR (miss-status-holding-register
//     exhaustion, Figure 4), and GIRS (reservation-station back-pressure on
//     the frontend, Figure 5).
//   - The QLRU replacement-state receiver (receiver.go) implements §4.2.2:
//     prime with EVS1 + A, let the victim issue its secret-dependent order,
//     probe with EVS2, then time A and B.
//   - Trial orchestration (trial.go) runs victim and attacker cores against
//     one shared hierarchy, including the cross-core "reference clock"
//     access of the VD-AD and VI-AD orderings (§3.3.1).
//   - The Table 1 vulnerability matrix driver (matrix.go) classifies every
//     scheme × gadget × ordering combination by comparing visible LLC
//     access logs across secret values.
//   - The Figure 7 histogram and the Figure 11 channel PoCs build on the
//     same trial machinery (figure7.go, poc.go).
//
// # Steady-state performance
//
// Batch harnesses run thousands of trials whose machines differ only by
// seed. TrialState (trialstate.go) exploits that: each worker resets one
// pooled two-core system in place between trials (uarch.System.Reset)
// and reuses every result buffer, with victim programs and PoC receivers
// memoized in front of the shared caches, so the post-warmup trial loop
// performs zero heap allocations. The reuse path is pinned bit-identical
// to fresh construction by TestTrialStateMatchesRunTrial and the
// committed result baselines, and the zero is pinned by
// TestTrialLoopAllocFree plus the committed BENCH_*.json trajectories
// (internal/bench). RunTrial remains the single-shot entry point: it
// runs on a private state, so its result — including the post-run
// System — belongs to the caller.
package core

import (
	"fmt"

	"specinterference/internal/cache"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
	"specinterference/internal/uarch"
)

// Layout fixes the victim/attacker address map for one attack instance.
// All addresses are line-aligned and chosen not to collide in the LLC set
// under attack except where the attack requires it.
type Layout struct {
	// NAddr holds the branch bound N; its line is flushed before every
	// trial so the bounds check resolves slowly (the speculation window).
	NAddr int64
	// ZAddr holds z, the input of the target's address chains; warmed to
	// the LLC so it resolves at a medium latency.
	ZAddr int64
	// TAddr is the base of the "array" whose out-of-bounds element the
	// access load reads; TAddr+Index*8 holds the secret bit.
	TAddr int64
	// SBase is the transmitter array: the transmitter loads
	// SBase + secret*64, so SBase+64 is primed hot and SBase+0 stays cold.
	SBase int64
	// AAddr is the victim load A (interference-target load).
	AAddr int64
	// BAddr is the reference load B; same LLC set and slice as AAddr.
	BAddr int64
	// RefAddr is the attacker's cross-core reference line (AD orderings).
	RefAddr int64
	// GadgetBase is the base of the GDMSHR gadget's load region.
	GadgetBase int64
	// Index is the out-of-bounds index i used by the access load.
	Index int64
}

// Victim register conventions: the harness presets these before a run, in
// place of a long (and timing-noisy) immediate preamble.
const (
	RegN     = isa.R1 // &N
	RegZ     = isa.R2 // &z
	RegT     = isa.R3 // &T[0]
	RegS     = isa.R4 // &S[0]
	RegABase = isa.R5 // A address base
	RegBBase = isa.R6 // B address base
	RegIdx   = isa.R7 // i (out-of-bounds index)
	RegZero  = isa.R8 // always 0
)

// DefaultLayout returns the address map used by the PoCs, built against h's
// geometry. Offsets are chosen so that the attacked LLC set (AAddr's set)
// contains nothing but A, B and the receiver's eviction sets: victim and
// attacker code lines land in low sets, each data line in its own low set,
// and AAddr sits in set 100 of a 1024-set LLC.
func DefaultLayout(h *cache.Hierarchy) Layout {
	l := Layout{
		NAddr:   0x0100_0000 + 1*64,
		ZAddr:   0x0110_0000 + 2*64,
		TAddr:   0x0120_0000 + 3*64,
		SBase:   0x0130_0000 + 4*64,
		AAddr:   0x0140_0000 + 100*64,
		RefAddr: 0x0170_0000 + 60*64,
		Index:   512, // "out of bounds" for T
	}
	// B and the MSHR gadget's k=0 line (the coalescing reference) must
	// conflict with A in the LLC set and slice so the QLRU receiver can
	// read the access order from one set's replacement state.
	l.GadgetBase = h.FindEvictionSet(l.AAddr, 1, 0x0150_0000, nil)[0]
	l.BAddr = h.FindEvictionSet(l.AAddr, 1, 0x0160_0000, nil)[0]
	return l
}

// probeLines returns the two line addresses whose visible-access pattern
// encodes the secret for a gadget/ordering combination (the secret line
// first). A fixed-size array keeps the per-trial result path off the heap.
func probeLines(g Gadget, ord Ordering, l Layout, v *Victim) [2]int64 {
	switch ord {
	case OrderVDVD:
		bLine := mem.LineAddr(l.BAddr)
		if g == GadgetMSHR {
			// The MSHR victim's reference load coalesces with the gadget's
			// first line instead of using BAddr.
			bLine = mem.LineAddr(l.GadgetBase)
		}
		return [2]int64{mem.LineAddr(l.AAddr), bLine}
	case OrderVDAD:
		return [2]int64{mem.LineAddr(l.AAddr), mem.LineAddr(l.RefAddr)}
	default: // OrderVIAD
		return [2]int64{v.TargetLine, mem.LineAddr(l.RefAddr)}
	}
}

// Gadget identifies one of the paper's interference gadgets.
type Gadget int

// Gadgets (§3.2.2).
const (
	// GadgetNPEU delays the target-address generation via contention on
	// the non-pipelined Sqrt unit (GDNPEU, implicit gadget).
	GadgetNPEU Gadget = iota
	// GadgetMSHR delays the victim load by exhausting L1D MSHRs (GDMSHR,
	// explicit gadget).
	GadgetMSHR
	// GadgetRS throttles the frontend by filling the reservation stations
	// (GIRS, implicit gadget).
	GadgetRS
)

// String implements fmt.Stringer.
func (g Gadget) String() string {
	switch g {
	case GadgetNPEU:
		return "G_NPEU"
	case GadgetMSHR:
		return "G_MSHR"
	case GadgetRS:
		return "G_RS"
	default:
		return fmt.Sprintf("gadget(%d)", int(g))
	}
}

// ParseGadget is the inverse of Gadget.String, for rebuilding typed
// matrix cells from persisted run records.
func ParseGadget(s string) (Gadget, error) {
	for _, g := range []Gadget{GadgetNPEU, GadgetMSHR, GadgetRS} {
		if g.String() == s {
			return g, nil
		}
	}
	return 0, fmt.Errorf("core: unknown gadget %q", s)
}

// Ordering identifies which two unprotected accesses the secret reorders
// (§3.3.1). The paper's VD-VI column behaves like VD-VD and is covered by
// it in the matrix.
type Ordering int

// Orderings.
const (
	// OrderVDVD reorders two victim data loads (A and B).
	OrderVDVD Ordering = iota
	// OrderVDAD orders a victim data load against an attacker reference
	// access from another core.
	OrderVDAD
	// OrderVIAD orders a victim instruction fetch against an attacker
	// reference access.
	OrderVIAD
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case OrderVDVD:
		return "VD-VD/VI"
	case OrderVDAD:
		return "VD-AD"
	case OrderVIAD:
		return "VI-AD"
	default:
		return fmt.Sprintf("ordering(%d)", int(o))
	}
}

// ParseOrdering is the inverse of Ordering.String, for rebuilding typed
// matrix cells from persisted run records.
func ParseOrdering(s string) (Ordering, error) {
	for _, o := range []Ordering{OrderVDVD, OrderVDAD, OrderVIAD} {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("core: unknown ordering %q", s)
}

// AttackConfig returns the two-core uarch configuration the attacks run
// on: a 16-way QLRU LLC (the receiver needs the §4.2.2 policy), modest
// private caches, and the default 8-port backend.
func AttackConfig() uarch.Config {
	cfg := uarch.DefaultConfig(2)
	cfg.Cache = cache.Config{
		Cores:      2,
		L1I:        cache.Geometry{Sets: 64, Ways: 4, Latency: 1},
		L1D:        cache.Geometry{Sets: 64, Ways: 4, Latency: 4},
		L2:         cache.Geometry{Sets: 256, Ways: 4, Latency: 12},
		LLC:        cache.Geometry{Sets: 1024, Ways: 16, Latency: 40},
		LLCSlices:  2,
		L1Policy:   cache.PolicyLRU,
		LLCPolicy:  cache.PolicyQLRU,
		MemLatency: 150,
		MemJitter:  0,
		DMSHRs:     4,
		Seed:       1,
	}
	return cfg
}
