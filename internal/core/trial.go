package core

import (
	"strconv"
	"sync"
	"sync/atomic"

	"specinterference/internal/asm"
	"specinterference/internal/cache"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
	"specinterference/internal/uarch"
)

// attackerCodeBase is where attacker-core programs are mapped; its lines
// land in low LLC sets, away from the attacked set.
const attackerCodeBase = 0x0048_0000

// trainRounds is how often the harness trains the victim branch taken
// before each trial (the §4.1 mistraining loop).
const trainRounds = 4

// trialMaxCycles bounds one trial.
const trialMaxCycles = 500_000

// TrialSpec describes one sender run.
type TrialSpec struct {
	Gadget   Gadget
	Ordering Ordering
	// Policy is the victim core's speculation scheme (nil = unprotected).
	// Stateful policies must be fresh per trial.
	Policy uarch.SpecPolicy
	// Secret is the bit the mis-speculated access load reads (0 or 1).
	Secret int
	// RefCycle, when positive, injects the attacker's cross-core reference
	// load at this absolute cycle (the AD orderings' "reference clock").
	RefCycle int64
	// Jitter adds uniform [0,Jitter] cycles to DRAM accesses (0 for the
	// deterministic matrix, >0 for the noisy channel runs).
	Jitter int
	// ReplNoisePct perturbs LLC victim selection (see
	// cache.Config.LLCReplacementNoisePct).
	ReplNoisePct int
	// Seed seeds the hierarchy RNG.
	Seed uint64
	// Params overrides the victim chain lengths (zero value = defaults).
	Params VictimParams
	// Trace records victim instruction records in the result.
	Trace bool
	// Tweak, when set, mutates the machine configuration before the system
	// is built (ablations: CDB width, issue policy, MSHR count, LLC
	// replacement, the §5.4 advanced-defense knobs).
	Tweak func(*uarch.Config)
}

func (s *TrialSpec) params() VictimParams {
	if s.Params == (VictimParams{}) {
		return DefaultVictimParams()
	}
	return s.Params
}

// ProbeEvent is one visible access to a probe line.
type ProbeEvent struct {
	Core  int
	Line  int64
	Cycle int64
}

// TrialResult is the outcome of one sender run.
type TrialResult struct {
	// Events lists visible accesses to the probe lines, in order.
	Events []ProbeEvent
	// SecretLineCycle is the cycle of the first visible access to the
	// secret-carrying line (load A or the target instruction line), or -1
	// when it never became visible.
	SecretLineCycle int64
	// VictimStats is the victim core's counters.
	VictimStats uarch.CoreStats
	// Records holds victim instruction records when TrialSpec.Trace is set.
	Records []uarch.InstRecord
	// Layout and Victim expose the generated artifacts for receivers.
	Layout Layout
	Victim *Victim
	// System is the post-run machine, for receivers that keep probing the
	// same hierarchy (the PoCs) and for white-box tests.
	System *uarch.System
	// sigBuf is Signature's scratch buffer, reused across trials on a
	// TrialState so the steady-state matrix loop formats signatures without
	// growing a fresh buffer per call. sigMemo holds the last few returned
	// strings: classification replays the same two secrets over and over, so
	// steady-state Signature calls hit the memo and allocate nothing.
	sigBuf  []byte
	sigMemo [4]string
	sigNext int
}

type recordSink struct{ recs []uarch.InstRecord }

func (r *recordSink) Record(_ int, rec uarch.InstRecord) { r.recs = append(r.recs, rec) }

// victimKey identifies one assembled victim program. The layout is part
// of the key because config tweaks can move the eviction-set-derived
// addresses; everything in it is a comparable value type.
type victimKey struct {
	gadget   Gadget
	ordering Ordering
	layout   Layout
	params   VictimParams
}

// victimTable is one generation of the victim-program cache: the map and
// the counters that describe it live together, so a reset — an atomic
// pointer swap to a fresh table — can never pair new counters with old
// entries (or vice versa) under concurrent shards.
type victimTable struct {
	// m memoizes BuildVictim across trials: batch harnesses (the Figure 7
	// arms, the matrix, the channel curves) run thousands of trials over a
	// handful of distinct (gadget, ordering, layout, params) tuples, and
	// the assembled program is immutable once built — the pipeline only
	// reads it, and the harness keys its per-trial state off the System,
	// not the Victim. Safe for concurrent shards.
	m            sync.Map // victimKey -> *Victim
	hits, misses atomic.Uint64
}

// victimTab points at the live cache generation. Readers Load the pointer
// once per operation and work against that table; resetVictimCache swaps
// in a fresh table instead of mutating the live one.
var victimTab atomic.Pointer[victimTable]

// victimCacheGen invalidates the per-TrialState victim memos, which sit in
// front of victimTab and would otherwise survive a reset.
var victimCacheGen atomic.Uint64

func init() { victimTab.Store(&victimTable{}) }

// cachedVictim returns the memoized victim for a key, building and
// publishing it on first use. Concurrent first uses may both build; the
// builder is deterministic, so either result is the same program.
func cachedVictim(g Gadget, ord Ordering, l Layout, p VictimParams) (*Victim, error) {
	t := victimTab.Load()
	key := victimKey{gadget: g, ordering: ord, layout: l, params: p}
	if v, ok := t.m.Load(key); ok {
		t.hits.Add(1)
		return v.(*Victim), nil
	}
	t.misses.Add(1)
	v, err := BuildVictim(g, ord, l, p)
	if err != nil {
		return nil, err
	}
	actual, _ := t.m.LoadOrStore(key, v)
	return actual.(*Victim), nil
}

// VictimCacheStats reports victim-program cache hits and misses for the
// current cache generation (diagnostics for the batch-trial fast path).
func VictimCacheStats() (hits, misses uint64) {
	t := victimTab.Load()
	return t.hits.Load(), t.misses.Load()
}

// resetVictimCache atomically replaces the cache with an empty generation
// and invalidates every TrialState's private memo (tests only). Shards
// racing with the reset finish against whichever table they loaded, so
// stats stay internally consistent either way.
func resetVictimCache() {
	victimTab.Store(&victimTable{})
	victimCacheGen.Add(1)
}

// NewAttackSystem builds the two-core system, layout and victim for a
// spec, fully primed and trained but not yet run. Exposed for receivers
// and tests that orchestrate phases themselves. The assembled victim
// program is cached per (gadget, ordering, layout, params) and shared
// across trials; see victimCache.
func NewAttackSystem(spec TrialSpec) (*uarch.System, Layout, *Victim, error) {
	cfg := AttackConfig()
	cfg.Cache.MemJitter = spec.Jitter
	cfg.Cache.LLCReplacementNoisePct = spec.ReplNoisePct
	if spec.Seed != 0 {
		cfg.Cache.Seed = spec.Seed
	}
	if spec.Tweak != nil {
		spec.Tweak(&cfg)
	}
	sys, err := uarch.NewSystem(cfg, mem.New())
	if err != nil {
		return nil, Layout{}, nil, err
	}
	h := sys.Hierarchy()
	l := DefaultLayout(h)
	v, err := cachedVictim(spec.Gadget, spec.Ordering, l, spec.params())
	if err != nil {
		return nil, Layout{}, nil, err
	}
	if err := prepareTrial(sys, v, spec); err != nil {
		return nil, Layout{}, nil, err
	}
	return sys, l, v, nil
}

// prepareTrial sets up memory contents, cache priming, branch training and
// victim registers for one trial by applying the victim's precomputed
// PrimePlan (the same declarative ground truth the static leak detector
// analyses), then training the branch and loading the program.
func prepareTrial(sys *uarch.System, v *Victim, spec TrialSpec) error {
	plan, err := v.PrimePlan(spec.Secret)
	if err != nil {
		return err
	}
	m := sys.Memory()
	h := sys.Hierarchy()

	for _, w := range plan.MemWrites {
		m.Write64(w.Addr, w.Val)
	}
	for _, op := range plan.Ops {
		switch op.Kind {
		case PrimeWarmInst:
			h.WarmInst(0, op.Addr, op.Level)
		case PrimeWarmData:
			h.Warm(0, op.Addr, op.Level)
		case PrimeFlush:
			h.Flush(op.Addr)
		}
	}

	// Mistrain the bounds-check branch toward taken.
	sys.Core(0).Predictor().Train(v.BranchPC, true, trainRounds)

	if err := sys.LoadProgram(0, v.Prog, spec.Policy); err != nil {
		return err
	}
	c := sys.Core(0)
	for _, r := range plan.Regs {
		c.SetReg(r.Reg, r.Val)
	}
	return nil
}

// refProgram returns the attacker's reference-clock program: one load of
// RefAddr, then halt. The program is spec-independent (the address comes
// from a register) and immutable once built, so it is assembled once.
var refProgram = sync.OnceValue(func() *isa.Program {
	return asm.NewBuilder().
		SetCodeBase(attackerCodeBase).
		Load(isa.R2, isa.R1, 0).
		Halt().
		MustBuild()
})

// injectReference loads the reference program on the attacker core and
// warms its code so the reference load issues immediately.
func injectReference(sys *uarch.System, l Layout) error {
	p := refProgram()
	for pc := 0; pc < p.Len(); pc++ {
		sys.Hierarchy().WarmInst(1, p.InstAddr(pc), cache.LevelL1)
	}
	if err := sys.LoadProgram(1, p, nil); err != nil {
		return err
	}
	sys.Core(1).SetReg(isa.R1, l.RefAddr)
	return nil
}

// RunTrial executes one sender run and returns the probe-line events. It
// runs on a private, unpooled TrialState, so the result (including the
// post-run System) belongs to the caller; batch harnesses that discard
// results between trials should use a pooled TrialState instead.
func RunTrial(spec TrialSpec) (*TrialResult, error) {
	return NewTrialState().Run(spec)
}

// Signature renders the order of probe events without timing — the view
// the §5.1 attacker model grants (the sequence of visible LLC accesses).
// The format is the committed-baseline one ("c%d:%#x;" per event); lines
// are nonnegative, so AppendInt-with-0x-prefix matches %#x byte for byte.
//
//speclint:allocfree
func (r *TrialResult) Signature() string {
	buf := r.sigBuf[:0]
	for _, e := range r.Events {
		buf = append(buf, 'c')
		buf = strconv.AppendInt(buf, int64(e.Core), 10)
		buf = append(buf, ':', '0', 'x')
		buf = strconv.AppendInt(buf, e.Line, 16)
		buf = append(buf, ';')
	}
	r.sigBuf = buf
	for _, s := range r.sigMemo {
		if s == string(buf) { // comparison only — no conversion alloc
			return s
		}
	}
	// Memo miss: materialize the string once and cache it. Steady-state
	// classification replays the same few signatures, so this conversion
	// runs O(distinct signatures) times, not O(trials) — the AllocsPerRun
	// pins hold because the loop hits the memo above.
	//speclint:ignore allocfree memo-miss slow path; steady state hits the memo
	s := string(buf)
	r.sigMemo[r.sigNext] = s
	r.sigNext = (r.sigNext + 1) % len(r.sigMemo)
	return s
}
