package core

import (
	"testing"

	"specinterference/internal/schemes"
)

func mustTrial(t *testing.T, spec TrialSpec) *TrialResult {
	t.Helper()
	r, err := RunTrial(spec)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNPEUReordersLoadsOnUnsafe(t *testing.T) {
	r0 := mustTrial(t, TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDVD, Secret: 0})
	r1 := mustTrial(t, TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDVD, Secret: 1})
	if len(r0.Events) != 2 || len(r1.Events) != 2 {
		t.Fatalf("events = %d/%d, want 2 each", len(r0.Events), len(r1.Events))
	}
	aLine := r0.Events[0].Line
	if r0.Events[0].Line == r1.Events[0].Line {
		t.Errorf("secret did not flip the A/B order: %s vs %s", r0.Signature(), r1.Signature())
	}
	// secret=0: A first (no interference); secret=1: B first.
	if aLine != r0.Layout.AAddr-(r0.Layout.AAddr%64) && aLine != r0.Layout.AAddr {
		t.Logf("first line %#x (layout A %#x)", aLine, r0.Layout.AAddr)
	}
}

func TestNPEUInterferenceDelaysA(t *testing.T) {
	r0 := mustTrial(t, TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDVD, Secret: 0})
	r1 := mustTrial(t, TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDVD, Secret: 1})
	if r1.SecretLineCycle <= r0.SecretLineCycle {
		t.Errorf("interference did not delay A: %d vs %d", r0.SecretLineCycle, r1.SecretLineCycle)
	}
	// The delay should be roughly FChain extra EU occupancies.
	delay := r1.SecretLineCycle - r0.SecretLineCycle
	if delay < 30 || delay > 200 {
		t.Errorf("implausible interference delay %d", delay)
	}
}

func TestMSHRGadgetExhaustsMSHRs(t *testing.T) {
	pol, _ := schemes.ByName("invisispec-spectre")
	r1 := mustTrial(t, TrialSpec{Gadget: GadgetMSHR, Ordering: OrderVDVD, Policy: pol, Secret: 1})
	if r1.VictimStats.MSHRRetries == 0 {
		t.Error("secret=1 should exhaust MSHRs and force retries")
	}
	pol, _ = schemes.ByName("invisispec-spectre")
	r0 := mustTrial(t, TrialSpec{Gadget: GadgetMSHR, Ordering: OrderVDVD, Policy: pol, Secret: 0})
	if r0.VictimStats.MSHRRetries >= r1.VictimStats.MSHRRetries {
		t.Errorf("MSHR retries should be secret-dependent: %d vs %d",
			r0.VictimStats.MSHRRetries, r1.VictimStats.MSHRRetries)
	}
}

func TestGIRSBackThrottlesFrontend(t *testing.T) {
	pol, _ := schemes.ByName("invisispec-spectre")
	r1 := mustTrial(t, TrialSpec{Gadget: GadgetRS, Ordering: OrderVIAD, Policy: pol, Secret: 1})
	if r1.VictimStats.RSFullStallCycles == 0 {
		t.Error("secret=1 should fill the RS and stall dispatch")
	}
	if r1.SecretLineCycle >= 0 {
		t.Error("secret=1 must suppress the target-line fetch")
	}
	pol, _ = schemes.ByName("invisispec-spectre")
	r0 := mustTrial(t, TrialSpec{Gadget: GadgetRS, Ordering: OrderVIAD, Policy: pol, Secret: 0})
	if r0.SecretLineCycle < 0 {
		t.Error("secret=0 must fetch the target line")
	}
}

func TestTrialDeterminism(t *testing.T) {
	spec := TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDVD, Secret: 1, Jitter: 50, Seed: 99}
	a := mustTrial(t, spec)
	b := mustTrial(t, spec)
	if a.Signature() != b.Signature() || a.SecretLineCycle != b.SecretLineCycle {
		t.Error("equal seeds must give identical trials")
	}
	spec.Seed = 100
	c := mustTrial(t, spec)
	_ = c // different seed may or may not change the outcome; just must run
}

func TestTrialRejectsBadSecret(t *testing.T) {
	_, err := RunTrial(TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDVD, Secret: 2})
	if err == nil {
		t.Error("secret=2 accepted")
	}
}

func TestTrialVictimAlwaysSquashes(t *testing.T) {
	// Mistraining must actually cause the mis-speculation the gadget rides.
	for _, g := range []Gadget{GadgetNPEU, GadgetMSHR} {
		r := mustTrial(t, TrialSpec{Gadget: g, Ordering: OrderVDVD, Secret: 1})
		if r.VictimStats.Squashes == 0 {
			t.Errorf("%s: victim never mis-speculated", g)
		}
	}
}

func TestTrialArchitecturalCleanliness(t *testing.T) {
	// The victim must halt having retired only correct-path work; the
	// secret must never reach architectural state.
	r := mustTrial(t, TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDVD, Secret: 1, Trace: true})
	for _, rec := range r.Records {
		if rec.Squashed {
			continue
		}
		if rec.PC > r.Victim.BranchPC+1 && rec.PC < r.Victim.Prog.Symbols["done"] {
			t.Errorf("gadget instruction at pc %d retired", rec.PC)
		}
	}
}

func TestTable1VulnerabilityMatrix(t *testing.T) {
	expected := ExpectedTable1()
	for _, combo := range Combos() {
		g := combo[0].(Gadget)
		ord := combo[1].(Ordering)
		for _, name := range schemes.Names() {
			name := name
			t.Run(g.String()+"/"+ord.String()+"/"+name, func(t *testing.T) {
				cell, err := Classify(name, g, ord)
				if err != nil {
					t.Fatal(err)
				}
				want := expected[key(g, ord)][name]
				if cell.Vulnerable != want {
					t.Errorf("vulnerable = %v, want %v (sig0=%q sig1=%q)",
						cell.Vulnerable, want, cell.Sig0, cell.Sig1)
				}
			})
		}
	}
}

func TestVulnerabilityMatrixDriver(t *testing.T) {
	cells, err := VulnerabilityMatrix([]string{"unsafe", "dom", "fence-spectre"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(Combos())*3 {
		t.Fatalf("cells = %d", len(cells))
	}
	out := FormatMatrix(cells)
	if out == "" {
		t.Error("empty matrix rendering")
	}
	for _, c := range cells {
		if c.Scheme == "fence-spectre" && c.Vulnerable {
			t.Errorf("fence defense reported vulnerable at %s/%s", c.Gadget, c.Ordering)
		}
	}
}

func TestFenceDefensesNeverVulnerable(t *testing.T) {
	for _, name := range []string{"fence-spectre", "fence-futuristic",
		"fence-spectre-ideal", "fence-futuristic-ideal"} {
		for _, combo := range Combos() {
			cell, err := Classify(name, combo[0].(Gadget), combo[1].(Ordering))
			if err != nil {
				t.Fatal(err)
			}
			if cell.Vulnerable {
				t.Errorf("%s vulnerable to %s/%s", name, cell.Gadget, cell.Ordering)
			}
		}
	}
}

func TestFigure7Separation(t *testing.T) {
	r, err := Figure7(30, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Baseline) != 30 || len(r.Interference) != 30 {
		t.Fatalf("arm sizes %d/%d", len(r.Baseline), len(r.Interference))
	}
	// The paper's Figure 7 shows ~80 cycles of separation with essentially
	// disjoint distributions; our scaled version must at least separate by
	// several EU occupancies and overlap very little.
	if r.Separation < 30 {
		t.Errorf("separation = %.1f cycles, want >= 30", r.Separation)
	}
	if r.Overlap > 0.2 {
		t.Errorf("overlap = %.2f, want nearly disjoint", r.Overlap)
	}
	if r.BaseHist.Render(40) == "" {
		t.Error("histogram did not render")
	}
}

func TestFigure7Validation(t *testing.T) {
	if _, err := Figure7(0, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}
