package core

import (
	"testing"

	"specinterference/internal/schemes"
)

// TestExpectedTable1Coverage is the drift guard between the committed
// expectation map and the experiment axes it describes: ExpectedTable1's
// keys must be exactly the (gadget, ordering) combos the matrix runs, and
// every scheme name it mentions must be a registered scheme. A new combo,
// a renamed scheme or a typo in the map trips this test instead of
// silently shrinking Table 1's checked surface.
func TestExpectedTable1Coverage(t *testing.T) {
	expected := ExpectedTable1()

	comboKeys := map[string]bool{}
	for _, c := range Combos() {
		k := key(c[0].(Gadget), c[1].(Ordering))
		if comboKeys[k] {
			t.Errorf("Combos() repeats %q", k)
		}
		comboKeys[k] = true
	}

	for k := range expected {
		if !comboKeys[k] {
			t.Errorf("ExpectedTable1 key %q is not a Combos() entry", k)
		}
	}
	for k := range comboKeys {
		if _, ok := expected[k]; !ok {
			t.Errorf("Combos() entry %q has no ExpectedTable1 row", k)
		}
	}

	registered := map[string]bool{}
	for _, n := range schemes.Names() {
		registered[n] = true
	}
	for k, set := range expected {
		for name := range set {
			if !registered[name] {
				t.Errorf("ExpectedTable1[%q] names unregistered scheme %q", k, name)
			}
		}
	}
}
