package core

import (
	"context"
	"fmt"

	"specinterference/internal/isa"
	"specinterference/internal/runner"
	"specinterference/internal/stats"
)

// Figure7Result holds the interference-contention histogram data of
// Figure 7: the interference target's execution time with and without the
// gadget running.
type Figure7Result struct {
	// Baseline and Interference are per-trial target latencies: cycles
	// from the first f(z) instruction issuing to load A completing.
	Baseline     []float64
	Interference []float64
	// BaseHist and IntHist share one geometry for overlap computation.
	BaseHist, IntHist *stats.Histogram
	// Separation is the difference of the arm means.
	Separation float64
	// Overlap is the overlap coefficient of the two histograms (Figure 7
	// shows clearly separated distributions, i.e. a small overlap).
	Overlap float64
}

// Figure7 measures the §4.2.1 contention histogram: `trials` runs per arm
// of the GDNPEU sender, the baseline arm with secret 0 (gadget inert) and
// the interference arm with secret 1. Jitter injects the DRAM latency
// noise that gives each arm its spread. Trials run across one worker per
// CPU; see Figure7Parallel for the explicit knob.
func Figure7(trials, jitter int, seedBase uint64) (*Figure7Result, error) {
	return Figure7Parallel(context.Background(), trials, jitter, seedBase, 0)
}

// Figure7Parallel is Figure7 with bounded concurrency: trials shard across
// Workers(workers, 2*trials) goroutines. Each shard's seed is derived from
// its (secret, trial) index exactly as the serial loop derived it —
// seedBase + 2*trial + secret — so results are bit-identical at any worker
// count.
func Figure7Parallel(ctx context.Context, trials, jitter int, seedBase uint64, workers int) (*Figure7Result, error) {
	n, err := Figure7Shards(trials)
	if err != nil {
		return nil, err
	}
	lats, err := runner.Map(ctx, n, workers, func(_ context.Context, j int) (float64, error) {
		return Figure7Shard(trials, jitter, seedBase, j)
	})
	if err != nil {
		return nil, err
	}
	return BuildFigure7Result(lats[:trials:trials], lats[trials:]), nil
}

// Figure7Shards returns the Figure 7 shard count for a per-arm trial
// count: one shard per (secret, trial) pair.
func Figure7Shards(trials int) (int, error) {
	if trials < 1 {
		return 0, fmt.Errorf("core: need at least one trial")
	}
	return 2 * trials, nil
}

// Figure7Shard runs shard j of a Figure 7 measurement. Shard j covers
// secret j/trials, trial j%trials — the flattening keeps baseline shards
// in [0, trials) and interference in [trials, 2*trials) — at seed
// seedBase + 2*trial + secret, the exact sequence the original serial
// loop produced. It is a pure function of its arguments, which is what
// lets shards run on any backend (goroutine or subprocess) in any order.
//
//speclint:allocfree
func Figure7Shard(trials, jitter int, seedBase uint64, j int) (float64, error) {
	secret, i := j/trials, j%trials
	ts := AcquireTrialState()
	defer ReleaseTrialState(ts)
	return measureTargetLatency(ts, secret, jitter, seedBase+uint64(2*i+secret))
}

// BuildFigure7Result assembles the Figure 7 histogram result from the two
// arms' per-trial latencies, in serial-loop order. The full slice
// expression below (in Figure7Parallel) keeps the arms from aliasing; here
// the slices are taken as given.
func BuildFigure7Result(baseline, interference []float64) *Figure7Result {
	res := &Figure7Result{Baseline: baseline, Interference: interference}
	lo, hi := rangeOf(append(append([]float64{}, res.Baseline...), res.Interference...))
	res.BaseHist = stats.NewHistogram(lo, hi, 30)
	res.IntHist = stats.NewHistogram(lo, hi, 30)
	res.BaseHist.AddAll(res.Baseline)
	res.IntHist.AddAll(res.Interference)
	res.Separation = stats.Summarize(res.Interference).Mean - stats.Summarize(res.Baseline).Mean
	res.Overlap = stats.Overlap(res.BaseHist, res.IntHist)
	return res
}

// measureTargetLatency runs one traced GDNPEU trial on ts (the latency
// scalars are extracted before ts is reused) and returns the target
// latency: first f-chain sqrt issue to load A completion.
//
//speclint:allocfree
func measureTargetLatency(ts *TrialState, secret, jitter int, seed uint64) (float64, error) {
	r, err := ts.Run(TrialSpec{
		Gadget: GadgetNPEU, Ordering: OrderVDVD,
		Policy: nil, // measured on the baseline machine, like the PoC
		Secret: secret, Jitter: jitter, Seed: seed, Trace: true,
	})
	if err != nil {
		return 0, err
	}
	var fIssue, aComplete int64 = -1, -1
	for _, rec := range r.Records {
		if rec.Squashed {
			continue
		}
		if rec.Inst.Op == isa.Sqrt && (fIssue < 0 || rec.Issue < fIssue) {
			fIssue = rec.Issue
		}
		if rec.PC == r.Victim.APC {
			aComplete = rec.Complete
		}
	}
	if fIssue < 0 || aComplete < 0 {
		return 0, fmt.Errorf("core: trace missing f-chain or load A (secret=%d)", secret)
	}
	return float64(aComplete - fIssue), nil
}

func rangeOf(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo - 5, hi + 5
}
