package core

import (
	"testing"

	"specinterference/internal/cache"
	"specinterference/internal/schemes"
	"specinterference/internal/uarch"
)

// TestCleanupSpecStillReorders verifies the paper's §6 remark: CleanupSpec
// undoes speculative fills but "does not block speculative interference" —
// the bound-to-retire loads A and B still reorder with the secret.
func TestCleanupSpecStillReorders(t *testing.T) {
	var sigs [2]string
	for secret := 0; secret <= 1; secret++ {
		r, err := RunTrial(TrialSpec{
			Gadget: GadgetNPEU, Ordering: OrderVDVD,
			Policy: schemes.CleanupSpec{}, Secret: secret,
		})
		if err != nil {
			t.Fatal(err)
		}
		sigs[secret] = r.Signature()
	}
	if sigs[0] == sigs[1] {
		t.Error("CleanupSpec should not block the GDNPEU reordering")
	}
}

// TestCleanupSpecUndoesTransientFootprint checks the scheme's actual
// guarantee: a squashed load's fill disappears.
func TestCleanupSpecUndoesTransientFootprint(t *testing.T) {
	r, err := RunTrial(TrialSpec{
		Gadget: GadgetNPEU, Ordering: OrderVDVD,
		Policy: schemes.CleanupSpec{}, Secret: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The transmitter line S+64 was speculatively accessed (L1 hit — no
	// fill to undo) but the access load's line T[i] was warmed, so probe
	// something that only the squashed path could have filled: under
	// secret=1 nothing beyond primed lines should survive. Check that the
	// transmitter's *miss* line S+0 was never left behind.
	h := r.System.Hierarchy()
	if h.LLCSlice(r.Layout.SBase).Contains(r.Layout.SBase) {
		t.Error("squashed-path line survived in the LLC")
	}
}

// TestCleanupSpecRandomReplacementBreaksQLRUReceiver quantifies the other
// half of the §6 remark: with randomized LLC replacement (CleanupSpec's
// deployment), the replacement-state receiver degrades to guessing even
// though the reordering itself persists.
func TestCleanupSpecRandomReplacementBreaksQLRUReceiver(t *testing.T) {
	accuracy := func(policy cache.PolicyKind) int {
		poc := &PoC{SchemeName: "cleanupspec", Kind: DCachePoC}
		poc.Tweak = func(c *uarch.Config) { c.Cache.LLCPolicy = policy }
		good := 0
		for i := 0; i < 12; i++ {
			out, err := poc.RunBit(i%2, uint64(100+i))
			if err != nil {
				t.Fatal(err)
			}
			if out.OK && out.Decoded == i%2 {
				good++
			}
		}
		return good
	}
	qlru := accuracy(cache.PolicyQLRU)
	random := accuracy(cache.PolicyRandom)
	if qlru < 11 {
		t.Errorf("QLRU receiver should decode reliably, got %d/12", qlru)
	}
	if random >= 11 {
		t.Errorf("random replacement should degrade the receiver, got %d/12", random)
	}
}

// TestCleanupSpecBlocksDirectSpectreFootprint mirrors the schemes-package
// footprint test for the extension scheme.
func TestCleanupSpecBlocksDirectSpectreFootprint(t *testing.T) {
	// Reuse the trial machinery: under CleanupSpec the NPEU gadget's
	// squashed loads must leave no fills, so its probe-line behaviour for a
	// FIXED secret is identical to a run where the gadget was never
	// fetched (fence defense), modulo the non-speculative A/B accesses.
	r1, err := RunTrial(TrialSpec{
		Gadget: GadgetNPEU, Ordering: OrderVDVD,
		Policy: schemes.CleanupSpec{}, Secret: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunTrial(TrialSpec{
		Gadget: GadgetNPEU, Ordering: OrderVDVD,
		Policy: schemes.FenceDefense{Model: schemes.FenceSpectre}, Secret: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Signature() != r2.Signature() {
		t.Errorf("secret-0 probe pattern differs from the fence reference: %q vs %q",
			r1.Signature(), r2.Signature())
	}
}
