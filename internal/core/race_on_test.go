//go:build race

package core

// raceDetectorEnabled: see race_off_test.go.
const raceDetectorEnabled = true
