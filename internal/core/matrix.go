package core

import (
	"context"
	"fmt"
	"strings"

	"specinterference/internal/runner"
)

// MatrixCell is one entry of the Table 1 vulnerability matrix.
type MatrixCell struct {
	Scheme   string
	Gadget   Gadget
	Ordering Ordering
	// Vulnerable is true when the visible LLC access pattern over the
	// probe lines differs between secret values — the §3.3 criterion
	// ("achieving such secret-dependent ordering is equivalent to forming
	// a covert channel").
	Vulnerable bool
	// Sig0 and Sig1 are the probe signatures for secret 0 and 1.
	Sig0, Sig1 string
	// RefCycle is the calibrated attacker reference time (AD orderings).
	RefCycle int64
}

// Combos lists the gadget × ordering combinations of Table 1.
func Combos() [][2]interface{} {
	return [][2]interface{}{
		{GadgetNPEU, OrderVDVD},
		{GadgetNPEU, OrderVDAD},
		{GadgetNPEU, OrderVIAD},
		{GadgetMSHR, OrderVDVD},
		{GadgetMSHR, OrderVDAD},
		{GadgetMSHR, OrderVIAD},
		{GadgetRS, OrderVIAD},
	}
}

// Classify runs both secret values for one scheme/gadget/ordering and
// decides vulnerability. For the AD orderings it first calibrates the
// attacker's reference cycle from two solo runs (the paper's attacker
// issues its access "at a fixed time after inducing the mis-speculation"),
// then replays both secrets with the cross-core reference injected.
//
//speclint:allocfree
func Classify(schemeName string, g Gadget, ord Ordering) (MatrixCell, error) {
	ts := AcquireTrialState()
	defer ReleaseTrialState(ts)
	cell := MatrixCell{Scheme: schemeName, Gadget: g, Ordering: ord}
	// run executes one trial on the shared state and extracts the scalars
	// Classify needs before the next run reuses the result buffers —
	// consecutive results from one TrialState alias each other, so the
	// *TrialResult itself must not outlive the call.
	run := func(secret int, refCycle int64) (sig string, secretCycle int64, err error) {
		policy, err := ts.Policy(schemeName)
		if err != nil {
			return "", 0, err
		}
		r, err := ts.Run(TrialSpec{
			Gadget: g, Ordering: ord, Policy: policy,
			Secret: secret, RefCycle: refCycle,
		})
		if err != nil {
			return "", 0, err
		}
		return r.Signature(), r.SecretLineCycle, nil
	}

	refCycle := int64(0)
	if ord == OrderVDAD || ord == OrderVIAD {
		sig0, t0, err := run(0, 0)
		if err != nil {
			return cell, err
		}
		sig1, t1, err := run(1, 0)
		if err != nil {
			return cell, err
		}
		switch {
		case t0 == t1:
			// The secret line appears at the same time (or never) under
			// both secrets: no reference clock can distinguish them.
			cell.Sig0, cell.Sig1 = sig0, sig1
			cell.Vulnerable = cell.Sig0 != cell.Sig1
			return cell, nil
		case t0 < 0 || t1 < 0:
			// Present under one secret only (the GIRS presence channel):
			// any reference time works; pick one after the present access.
			present := t0
			if present < 0 {
				present = t1
			}
			refCycle = present + 50
		default:
			refCycle = (t0 + t1) / 2
		}
	}

	sig0, _, err := run(0, refCycle)
	if err != nil {
		return cell, err
	}
	sig1, _, err := run(1, refCycle)
	if err != nil {
		return cell, err
	}
	cell.Sig0, cell.Sig1 = sig0, sig1
	cell.Vulnerable = cell.Sig0 != cell.Sig1
	cell.RefCycle = refCycle
	return cell, nil
}

// VulnerabilityMatrix classifies every scheme in schemeNames against every
// gadget/ordering combination, one worker per CPU; see
// VulnerabilityMatrixParallel for the explicit knob.
func VulnerabilityMatrix(schemeNames []string) ([]MatrixCell, error) {
	return VulnerabilityMatrixParallel(context.Background(), schemeNames, 0)
}

// VulnerabilityMatrixParallel shards the matrix one cell per
// scheme×gadget×ordering combination across a bounded worker pool. Each
// Classify builds its own deterministic (seedless) machine, so cell order
// and contents match the serial loop exactly at any worker count.
func VulnerabilityMatrixParallel(ctx context.Context, schemeNames []string, workers int) ([]MatrixCell, error) {
	if len(schemeNames) == 0 {
		return nil, nil
	}
	return runner.Map(ctx, MatrixShards(schemeNames), workers, func(_ context.Context, j int) (MatrixCell, error) {
		return MatrixShard(schemeNames, j)
	})
}

// MatrixShards returns the Table 1 shard count: one per
// scheme×gadget×ordering cell.
func MatrixShards(schemeNames []string) int {
	return len(Combos()) * len(schemeNames)
}

// MatrixShard classifies cell j of the scheme grid: combo j/len(schemes),
// scheme j%len(schemes) — the serial loop's cell order. Classification is
// seedless and each shard builds its own machine, so MatrixShard is a pure
// function of (schemeNames, j) and runs identically on any backend.
//
//speclint:allocfree
func MatrixShard(schemeNames []string, j int) (MatrixCell, error) {
	combo := Combos()[j/len(schemeNames)]
	name := schemeNames[j%len(schemeNames)]
	g := combo[0].(Gadget)
	ord := combo[1].(Ordering)
	cell, err := Classify(name, g, ord)
	if err != nil {
		return MatrixCell{}, fmt.Errorf("core: %s/%s/%s: %w", name, g, ord, err)
	}
	return cell, nil
}

// ExpectedTable1 returns the paper's Table 1 as a map from
// "gadget|ordering" to the set of vulnerable scheme names (the unsafe
// baseline, trivially vulnerable, is included for completeness).
func ExpectedTable1() map[string]map[string]bool {
	set := func(names ...string) map[string]bool {
		m := map[string]bool{}
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	// cleanupspec is our §6 extension (not part of the paper's Table 1):
	// it leaves bound-to-retire loads untouched, so every GDNPEU ordering
	// and the AD orderings of GDMSHR and GIRS stay open; its undo of
	// speculative D-fills does not help because the reordered loads are
	// never speculative. Like the unsafe baseline it escapes GDMSHR VD-VD
	// only because its visible gadget loads cache the reference line.
	allButFences := []string{
		"unsafe", "invisispec-spectre", "invisispec-futuristic",
		"dom", "dom-tso", "safespec-wfb", "safespec-wfc",
		"muontrap", "condspec", "cleanupspec",
	}
	return map[string]map[string]bool{
		key(GadgetNPEU, OrderVDVD): set("unsafe", "invisispec-spectre", "dom", "safespec-wfb", "cleanupspec"),
		key(GadgetNPEU, OrderVDAD): set(allButFences...),
		key(GadgetNPEU, OrderVIAD): set(allButFences...),
		// Note: the unprotected baseline is NOT in the GDMSHR VD-VD set —
		// with no defense the gadget's loads are visible, so the reference
		// load's line is already cached and its LLC access (the "clock")
		// disappears. The paper's Table 1 likewise only lists defended
		// designs here.
		key(GadgetMSHR, OrderVDVD): set("invisispec-spectre", "safespec-wfb"),
		key(GadgetMSHR, OrderVDAD): set("unsafe", "invisispec-spectre", "invisispec-futuristic",
			"safespec-wfb", "safespec-wfc", "muontrap", "cleanupspec"),
		key(GadgetMSHR, OrderVIAD): set("unsafe", "invisispec-spectre", "invisispec-futuristic",
			"safespec-wfb", "safespec-wfc", "muontrap", "cleanupspec"),
		key(GadgetRS, OrderVIAD): set("unsafe", "invisispec-spectre", "invisispec-futuristic",
			"dom", "dom-tso", "cleanupspec"),
	}
}

// key renders a gadget/ordering pair as an ExpectedTable1 map key.
func key(g Gadget, ord Ordering) string { return g.String() + "|" + ord.String() }

// FormatMatrix renders cells as a Table 1-style text table.
func FormatMatrix(cells []MatrixCell) string {
	var b strings.Builder
	byCombo := map[string][]MatrixCell{}
	var order []string
	for _, c := range cells {
		k := key(c.Gadget, c.Ordering)
		if _, seen := byCombo[k]; !seen {
			order = append(order, k)
		}
		byCombo[k] = append(byCombo[k], c)
	}
	fmt.Fprintf(&b, "%-22s %s\n", "Gadget|Ordering", "Vulnerable schemes")
	for _, k := range order {
		var vuln []string
		for _, c := range byCombo[k] {
			if c.Vulnerable {
				vuln = append(vuln, c.Scheme)
			}
		}
		if len(vuln) == 0 {
			vuln = []string{"-"}
		}
		fmt.Fprintf(&b, "%-22s %s\n", k, strings.Join(vuln, ", "))
	}
	return b.String()
}
