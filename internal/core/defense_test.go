package core

import (
	"testing"

	"specinterference/internal/schemes"
	"specinterference/internal/uarch"
)

// advancedDefense enables the §5.4 rules: instructions hold their
// reservation stations until safe (rule 1: no early release) and older
// instructions take strict precedence on non-pipelined units and the CDB,
// including preemption ("squashable EUs", rule 2).
func advancedDefense(cfg *uarch.Config) {
	cfg.HoldRSUntilSafe = true
	cfg.AgePriorityArb = true
}

// TestAdvancedDefenseBlocksNPEUInterference checks the paper's §5.4
// sketch: with no-early-release plus age-priority arbitration, a younger
// mis-speculated sqrt can no longer delay the older f-chain, so the A/B
// order stops depending on the secret even on an otherwise vulnerable
// scheme.
func TestAdvancedDefenseBlocksNPEUInterference(t *testing.T) {
	run := func(secret int, tweak func(*uarch.Config)) *TrialResult {
		pol, err := schemes.ByName("invisispec-spectre")
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunTrial(TrialSpec{
			Gadget: GadgetNPEU, Ordering: OrderVDVD,
			Policy: pol, Secret: secret, Tweak: tweak,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// Sanity: without the defense the order flips.
	if run(0, nil).Signature() == run(1, nil).Signature() {
		t.Fatal("baseline attack no longer works; defense test is vacuous")
	}
	s0 := run(0, advancedDefense).Signature()
	s1 := run(1, advancedDefense).Signature()
	if s0 != s1 {
		t.Errorf("advanced defense failed to close the channel: %q vs %q", s0, s1)
	}
}

// TestAdvancedDefenseReducesInterferenceDelay quantifies the mechanism:
// the secret-dependent delay on load A collapses under the defense.
func TestAdvancedDefenseReducesInterferenceDelay(t *testing.T) {
	measure := func(tweak func(*uarch.Config)) int64 {
		delay := int64(0)
		for secret := 0; secret <= 1; secret++ {
			pol, _ := schemes.ByName("invisispec-spectre")
			r, err := RunTrial(TrialSpec{
				Gadget: GadgetNPEU, Ordering: OrderVDVD,
				Policy: pol, Secret: secret, Tweak: tweak,
			})
			if err != nil {
				t.Fatal(err)
			}
			if secret == 0 {
				delay = -r.SecretLineCycle
			} else {
				delay += r.SecretLineCycle
			}
		}
		return delay
	}
	base := measure(nil)
	defended := measure(advancedDefense)
	if base < 30 {
		t.Fatalf("baseline interference delay %d too small — test vacuous", base)
	}
	if defended > base/3 {
		t.Errorf("defense left %d cycles of secret-dependent delay (baseline %d)", defended, base)
	}
}

// TestAdvancedDefenseComponentsAblation mirrors the §5.4 discussion: each
// rule alone is insufficient; preemption needs the RS entry alive
// (rule 1) and priority needs preemption to beat a non-pipelined unit
// (rule 2).
func TestAdvancedDefenseComponentsAblation(t *testing.T) {
	flips := func(tweak func(*uarch.Config)) bool {
		var sigs [2]string
		for secret := 0; secret <= 1; secret++ {
			pol, _ := schemes.ByName("invisispec-spectre")
			r, err := RunTrial(TrialSpec{
				Gadget: GadgetNPEU, Ordering: OrderVDVD,
				Policy: pol, Secret: secret, Tweak: tweak,
			})
			if err != nil {
				t.Fatal(err)
			}
			sigs[secret] = r.Signature()
		}
		return sigs[0] != sigs[1]
	}
	if !flips(func(c *uarch.Config) { c.HoldRSUntilSafe = true }) {
		t.Error("rule 1 alone should NOT stop the EU-occupancy interference")
	}
	if flips(advancedDefense) {
		t.Error("both rules together must stop it")
	}
}

// TestAdvancedDefenseDoesNotBreakMSHRGadget documents a limitation the
// paper concedes (§5.4 covers EUs and the CDB; MSHR reservation would need
// its own mechanism): GDMSHR still reorders accesses under the advanced
// defense.
func TestAdvancedDefenseDoesNotBreakMSHRGadget(t *testing.T) {
	var sigs [2]string
	for secret := 0; secret <= 1; secret++ {
		pol, _ := schemes.ByName("invisispec-spectre")
		r, err := RunTrial(TrialSpec{
			Gadget: GadgetMSHR, Ordering: OrderVDVD,
			Policy: pol, Secret: secret, Tweak: advancedDefense,
		})
		if err != nil {
			t.Fatal(err)
		}
		sigs[secret] = r.Signature()
	}
	if sigs[0] == sigs[1] {
		t.Log("note: advanced defense also closed GDMSHR on this configuration")
	}
}
