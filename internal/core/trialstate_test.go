package core

import (
	"runtime"
	"sync"
	"testing"

	"specinterference/internal/cache"
	"specinterference/internal/schemes"
	"specinterference/internal/uarch"
)

// sweepCase is one fresh-vs-reused comparison. When scheme is set, a
// fresh policy is built for every run — stateful policies must never be
// shared between trials.
type sweepCase struct {
	spec   TrialSpec
	scheme string
}

// trialStateSweep covers every gadget/ordering combination plus the shape
// (jitter, noise), seed and policy axes — the surface the reuse fast path
// must keep bit-identical to fresh construction.
func trialStateSweep() []sweepCase {
	return []sweepCase{
		{spec: TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDVD, Secret: 0, Trace: true}},
		{spec: TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDVD, Secret: 1, Jitter: 5, Seed: 7, Trace: true}},
		{spec: TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDAD, Secret: 1, RefCycle: 300}},
		{spec: TrialSpec{Gadget: GadgetMSHR, Ordering: OrderVDVD, Secret: 1}},
		{spec: TrialSpec{Gadget: GadgetMSHR, Ordering: OrderVDAD, Secret: 0, RefCycle: 250}},
		{spec: TrialSpec{Gadget: GadgetRS, Ordering: OrderVIAD, Secret: 1, RefCycle: 200}},
		{spec: TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDVD, Secret: 1, Jitter: 5, ReplNoisePct: 10, Seed: 3}},
		{spec: TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDVD, Secret: 1, Jitter: 5, Seed: 7, Trace: true}}, // shape revisit
		{spec: TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDVD, Secret: 1, Trace: true}, scheme: "dom"},
		{spec: TrialSpec{Gadget: GadgetRS, Ordering: OrderVIAD, Secret: 1, RefCycle: 200}, scheme: "invisispec-spectre"},
	}
}

// TestTrialStateMatchesRunTrial pins the tentpole equivalence: one reused
// TrialState stepping through a shape- and seed-varying spec sequence
// produces trial-for-trial the results fresh RunTrial machines produce.
func TestTrialStateMatchesRunTrial(t *testing.T) {
	ts := NewTrialState()
	for i, tc := range trialStateSweep() {
		withPolicy := func() TrialSpec {
			spec := tc.spec
			if tc.scheme != "" {
				p, err := schemes.ByName(tc.scheme)
				if err != nil {
					t.Fatal(err)
				}
				spec.Policy = p
			}
			return spec
		}
		fresh, err := RunTrial(withPolicy())
		if err != nil {
			t.Fatalf("spec %d: fresh: %v", i, err)
		}
		reused, err := ts.Run(withPolicy())
		if err != nil {
			t.Fatalf("spec %d: reused: %v", i, err)
		}
		if got, want := reused.Signature(), fresh.Signature(); got != want {
			t.Errorf("spec %d: signature %q != fresh %q", i, got, want)
		}
		if reused.SecretLineCycle != fresh.SecretLineCycle {
			t.Errorf("spec %d: secret-line cycle %d != fresh %d",
				i, reused.SecretLineCycle, fresh.SecretLineCycle)
		}
		if reused.VictimStats != fresh.VictimStats {
			t.Errorf("spec %d: victim stats %+v != fresh %+v",
				i, reused.VictimStats, fresh.VictimStats)
		}
		if len(reused.Events) != len(fresh.Events) {
			t.Errorf("spec %d: %d events != fresh %d", i, len(reused.Events), len(fresh.Events))
		} else {
			for j := range reused.Events {
				if reused.Events[j] != fresh.Events[j] {
					t.Errorf("spec %d event %d: %+v != fresh %+v",
						i, j, reused.Events[j], fresh.Events[j])
				}
			}
		}
		if len(reused.Records) != len(fresh.Records) {
			t.Errorf("spec %d: %d records != fresh %d", i, len(reused.Records), len(fresh.Records))
		} else {
			for j := range reused.Records {
				if reused.Records[j] != fresh.Records[j] {
					t.Errorf("spec %d record %d: %+v != fresh %+v",
						i, j, reused.Records[j], fresh.Records[j])
					break
				}
			}
		}
	}
}

// TestTrialStatePoCBitMatchesFresh pins the PoC fast path (memoized
// receiver and programs on a reused machine) against fresh per-bit
// machines, for every PoC kind.
func TestTrialStatePoCBitMatchesFresh(t *testing.T) {
	pocs := []*PoC{
		NewDCachePoC("dom", 0),
		NewICachePoC("invisispec-spectre", 0),
		{SchemeName: "invisispec-spectre", Kind: MSHRPoC},
	}
	for _, poc := range pocs {
		// freshOutcomes replays the pre-reuse flow: a brand-new TrialState
		// per bit, so nothing is memoized across bits.
		type key struct{ bit, rep int }
		want := map[key]BitOutcome{}
		for rep := 0; rep < 2; rep++ {
			for bit := 0; bit <= 1; bit++ {
				spec, err := poc.spec(bit, uint64(rep+1))
				if err != nil {
					t.Fatal(err)
				}
				st := NewTrialState()
				var out BitOutcome
				if poc.Kind == ICachePoC {
					out, err = poc.runICacheBit(st, spec)
				} else {
					out, err = poc.runReplacementStateBit(st, spec)
				}
				if err != nil {
					t.Fatalf("%s fresh bit %d rep %d: %v", poc.Kind, bit, rep, err)
				}
				want[key{bit, rep}] = out
			}
		}
		// RunBit goes through the pooled, memoized path.
		for rep := 0; rep < 2; rep++ {
			for bit := 0; bit <= 1; bit++ {
				out, err := poc.RunBit(bit, uint64(rep+1))
				if err != nil {
					t.Fatalf("%s pooled bit %d rep %d: %v", poc.Kind, bit, rep, err)
				}
				if out != want[key{bit, rep}] {
					t.Errorf("%s bit %d rep %d: pooled outcome %+v != fresh %+v",
						poc.Kind, bit, rep, out, want[key{bit, rep}])
				}
			}
		}
	}
}

// TestTrialStateTweakBypassesReuse: tweaked specs must build fresh
// machines (and skip the receiver memo), and must not poison the cached
// machine for subsequent untweaked trials.
func TestTrialStateTweakBypassesReuse(t *testing.T) {
	ts := NewTrialState()
	plain := TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDVD, Secret: 1}
	before, err := ts.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	sigBefore := before.Signature()
	cachedSys := ts.sys

	tweaked := plain
	tweaked.Tweak = func(c *uarch.Config) { c.CDBWidth = 1 }
	rTweaked, err := ts.Run(tweaked)
	if err != nil {
		t.Fatal(err)
	}
	if rTweaked.System == cachedSys {
		t.Error("tweaked trial ran on the cached machine")
	}

	after, err := ts.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if after.System != cachedSys {
		t.Error("untweaked trial after a tweak did not reuse the cached machine")
	}
	if got := after.Signature(); got != sigBefore {
		t.Errorf("signature after tweak detour %q != before %q", got, sigBefore)
	}
}

// TestTrialLoopAllocFree pins the tentpole's headline number: the
// steady-state per-trial loops allocate nothing once their worker state is
// warm. testing.AllocsPerRun pins averages, so any regression — even one
// allocation per trial — fails loudly.
func TestTrialLoopAllocFree(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	warm := func(f func()) float64 {
		runtime.GC() // keep an organic GC from emptying the pool mid-measurement
		f()          // warm the pooled TrialState, memos and buffers
		return testing.AllocsPerRun(10, f)
	}

	if n := warm(func() {
		if _, err := Figure7Shard(40, 30, 1, 1); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Figure7Shard steady-state trial: %.1f allocs/run, want 0", n)
	}

	poc := NewDCachePoC("dom", 0)
	if n := warm(func() {
		if _, err := poc.RunBit(1, 1); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("PoC RunBit steady-state trial: %.1f allocs/run, want 0", n)
	}

	// A matrix cell runs 2–6 trials plus per-cell policy construction and
	// signature strings; it cannot be zero, but it must stay within a few
	// allocations per cell (it was ~25k before the reuse layer).
	names := schemes.Names()
	if n := warm(func() {
		if _, err := MatrixShard(names, 0); err != nil {
			t.Fatal(err)
		}
	}); n > 16 {
		t.Errorf("MatrixShard steady-state cell: %.1f allocs/run, want <= 16", n)
	}
}

// TestVictimCacheResetRaceFree hammers the victim cache from concurrent
// shards while another goroutine keeps swapping in fresh generations —
// the exact interleaving the old clear-in-place reset raced on. Run under
// -race this pins the atomic-swap reset; in any mode it checks that every
// lookup still returns a well-formed victim and stats stay coherent.
func TestVictimCacheResetRaceFree(t *testing.T) {
	defer resetVictimCache()
	h := cache.NewHierarchy(AttackConfig().Cache)
	l := DefaultLayout(h)
	params := DefaultVictimParams()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g := []Gadget{GadgetNPEU, GadgetMSHR, GadgetRS}[i%3]
				ord := OrderVDVD
				if g == GadgetRS {
					ord = OrderVIAD
				}
				v, err := cachedVictim(g, ord, l, params)
				if err != nil {
					t.Error(err)
					return
				}
				if v == nil || v.Prog == nil {
					t.Error("cachedVictim returned an empty victim")
					return
				}
				hits, misses := VictimCacheStats()
				_ = hits + misses // stats must be readable mid-reset
			}
		}()
	}
	for i := 0; i < 200; i++ {
		resetVictimCache()
	}
	close(stop)
	wg.Wait()
}
