package core

import (
	"fmt"

	"specinterference/internal/asm"
	"specinterference/internal/cache"
	"specinterference/internal/isa"
	"specinterference/internal/uarch"
)

// LLCHitThreshold is the cycle threshold separating an LLC hit from a
// memory access in the attacker's timed probes (LLC-hit path ≈ 56 cycles
// plus pipeline slop; misses ≈ 206+, plus jitter).
const LLCHitThreshold = 140

// Receiver registers: the probe program leaves measured latencies here for
// the harness to read.
const (
	RegLatA = isa.R20 // timed latency of the first probed line
	RegLatB = isa.R21 // timed latency of the second probed line
)

// QLRUReceiver is the §4.2.2 replacement-state receiver: it decodes the
// ORDER of the victim's two loads from the QLRU state of one LLC set,
// something a conventional Prime+Probe cannot see (both lines are present
// regardless of order).
//
// Protocol:
//
//	prime: access EVS1 (ways-1 lines) repeatedly — saturating their age at
//	       0 — then access A (inserted at age 1).
//	...victim issues A-B or B-A...
//	probe: access EVS2 (ways-1 fresh lines), then time B and A.
//
// After the probe, QLRU arithmetic leaves B resident iff the victim issued
// A before B (see the package tests for the full state walk-through): a
// timed B hit decodes secret 0, a timed B miss decodes secret 1.
type QLRUReceiver struct {
	EVS1, EVS2 []int64
	A, B       int64
	// PrimeRounds is how often EVS1 is swept during prime (>=2 so ages
	// saturate at 0).
	PrimeRounds int
}

// NewQLRUReceiver constructs eviction sets for the layout's A/B pair
// against h's geometry.
func NewQLRUReceiver(h *cache.Hierarchy, l Layout) (*QLRUReceiver, error) {
	ways := h.Config().LLC.Ways
	need := 2 * (ways - 1)
	evs := h.FindEvictionSet(l.AAddr, need, 0x0180_0000, []int64{l.BAddr, l.GadgetBase})
	if len(evs) != need {
		return nil, fmt.Errorf("core: found %d eviction lines, need %d", len(evs), need)
	}
	return &QLRUReceiver{
		EVS1:        evs[:ways-1],
		EVS2:        evs[ways-1:],
		A:           l.AAddr,
		B:           l.BAddr,
		PrimeRounds: 4,
	}, nil
}

// FlushAll evicts every receiver-controlled line (per-trial reset).
func (r *QLRUReceiver) FlushAll(h *cache.Hierarchy) {
	for _, a := range r.EVS1 {
		h.Flush(a)
	}
	for _, a := range r.EVS2 {
		h.Flush(a)
	}
	h.Flush(r.A)
	h.Flush(r.B)
}

// PrimeProgram builds the attacker-core prime sequence.
func (r *QLRUReceiver) PrimeProgram() *isa.Program {
	b := asm.NewBuilder().SetCodeBase(attackerCodeBase)
	for round := 0; round < r.PrimeRounds; round++ {
		for _, a := range r.EVS1 {
			b.MovI(isa.R9, a)
			b.Load(isa.R10, isa.R9, 0)
		}
	}
	b.MovI(isa.R9, r.A)
	b.Load(isa.R10, isa.R9, 0)
	b.Halt()
	return b.MustBuild()
}

// ProbeProgram builds the attacker-core probe: sweep EVS2, then time B and
// A (B first — its fill would otherwise be perturbed by A's).
func (r *QLRUReceiver) ProbeProgram() *isa.Program {
	b := asm.NewBuilder().SetCodeBase(attackerCodeBase)
	for _, a := range r.EVS2 {
		b.MovI(isa.R9, a)
		b.Load(isa.R10, isa.R9, 0)
	}
	b.Fence()
	emitTimedLoad(b, r.B, RegLatB)
	emitTimedLoad(b, r.A, RegLatA)
	b.Halt()
	return b.MustBuild()
}

// emitTimedLoad emits a fenced, cycle-timed load of addr, leaving the
// latency in latReg.
func emitTimedLoad(b *asm.Builder, addr int64, latReg isa.Reg) {
	b.MovI(isa.R9, addr)
	b.Fence()
	b.RdCycle(isa.R11)
	b.Load(isa.R10, isa.R9, 0)
	b.Fence()
	b.RdCycle(isa.R12)
	b.Sub(latReg, isa.R12, isa.R11)
}

// Decode interprets the probe latencies: a resident (fast) B means the
// victim issued A-B, i.e. secret 0. ok is false when the state is
// inconsistent (both lines fast — the noise case the paper discards).
func (r *QLRUReceiver) Decode(latB, latA int64) (secret int, ok bool) {
	bHit := latB < LLCHitThreshold
	aHit := latA < LLCHitThreshold
	if bHit && aHit {
		return 0, false
	}
	if bHit {
		return 0, true
	}
	return 1, true
}

// FlushReloadReceiver is the attacker side of the I-Cache PoC (§4.3): it
// flushes the shared target line before the victim runs and afterwards
// times one load of it. A fast reload means the victim's frontend fetched
// the target line (secret 0 in Figure 5's convention).
type FlushReloadReceiver struct {
	Target int64
}

// ReloadProgram builds the timed reload probe.
func (r *FlushReloadReceiver) ReloadProgram() *isa.Program {
	b := asm.NewBuilder().SetCodeBase(attackerCodeBase)
	emitTimedLoad(b, r.Target, RegLatA)
	b.Halt()
	return b.MustBuild()
}

// Decode interprets the reload latency: present ⇒ the frontend was not
// throttled ⇒ secret 0.
func (r *FlushReloadReceiver) Decode(lat int64) (secret int, ok bool) {
	if lat < LLCHitThreshold {
		return 0, true
	}
	return 1, true
}

// runAttackerProgram loads p on the attacker core (with a warm I-cache)
// and runs it to completion while the victim core keeps ticking (it is
// typically halted or paused).
func runAttackerProgram(sys *uarch.System, p *isa.Program, maxCycles int64) error {
	for pc := 0; pc < p.Len(); pc++ {
		sys.Hierarchy().WarmInst(1, p.InstAddr(pc), cache.LevelL1)
	}
	if err := sys.LoadProgram(1, p, nil); err != nil {
		return err
	}
	return sys.RunUntilCoreHalts(1, maxCycles)
}
