//go:build !race

package core

// raceDetectorEnabled reports whether the race detector is instrumenting
// this test binary. Alloc-count pins are meaningless under -race: the
// instrumentation itself allocates and sync.Pool deliberately drops items
// to widen interleavings.
const raceDetectorEnabled = false
