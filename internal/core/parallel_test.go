package core

import (
	"context"
	"testing"
)

// serialFigure7Latencies is the pre-runner serial loop of Figure7, kept as
// the golden reference for the seed-derivation contract: trial i of arm
// `secret` always runs with seed seedBase + 2*i + secret.
func serialFigure7Latencies(t *testing.T, trials, jitter int, seedBase uint64) (baseline, interference []float64) {
	t.Helper()
	for secret := 0; secret <= 1; secret++ {
		for i := 0; i < trials; i++ {
			lat, err := measureTargetLatency(NewTrialState(), secret, jitter, seedBase+uint64(2*i+secret))
			if err != nil {
				t.Fatalf("serial reference: %v", err)
			}
			if secret == 0 {
				baseline = append(baseline, lat)
			} else {
				interference = append(interference, lat)
			}
		}
	}
	return baseline, interference
}

// TestFigure7ParallelMatchesSerial asserts the sharded Figure7 is
// bit-identical to the serial loop at worker counts 1 and 4.
func TestFigure7ParallelMatchesSerial(t *testing.T) {
	const trials, jitter, seed = 4, 25, 7
	wantBase, wantInt := serialFigure7Latencies(t, trials, jitter, seed)
	for _, workers := range []int{1, 4} {
		res, err := Figure7Parallel(context.Background(), trials, jitter, seed, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Baseline) != trials || len(res.Interference) != trials {
			t.Fatalf("workers=%d: got %d/%d latencies, want %d per arm",
				workers, len(res.Baseline), len(res.Interference), trials)
		}
		for i := range wantBase {
			if res.Baseline[i] != wantBase[i] {
				t.Errorf("workers=%d: baseline[%d] = %v, serial = %v", workers, i, res.Baseline[i], wantBase[i])
			}
			if res.Interference[i] != wantInt[i] {
				t.Errorf("workers=%d: interference[%d] = %v, serial = %v", workers, i, res.Interference[i], wantInt[i])
			}
		}
	}
}

// TestMatrixParallelMatchesSerial asserts the sharded matrix classifies
// every cell identically (signatures included) to the serial loop, in the
// same order, at worker counts 1 and 4.
func TestMatrixParallelMatchesSerial(t *testing.T) {
	names := []string{"unsafe", "dom", "invisispec-spectre"}
	var want []MatrixCell
	for _, combo := range Combos() {
		g := combo[0].(Gadget)
		ord := combo[1].(Ordering)
		for _, name := range names {
			cell, err := Classify(name, g, ord)
			if err != nil {
				t.Fatalf("serial reference %s/%s/%s: %v", name, g, ord, err)
			}
			want = append(want, cell)
		}
	}
	for _, workers := range []int{1, 4} {
		got, err := VulnerabilityMatrixParallel(context.Background(), names, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d cells, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: cell %d = %+v, serial = %+v", workers, i, got[i], want[i])
			}
		}
	}
}
