package core

import (
	"fmt"

	"specinterference/internal/asm"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
)

// Victim is a generated sender program plus the metadata the harness needs
// to train, trace and decode it.
type Victim struct {
	Prog *isa.Program
	// BranchPC is the mispredicted bounds-check branch (mistraining target).
	BranchPC int
	// APC and BPC are the PCs of the victim load A and reference load B.
	APC, BPC int
	// TargetLine is the instruction line whose fetch encodes the secret:
	// the correct-path continuation for VI-AD NPEU/MSHR victims, or the
	// wrong-path target function for the GIRS victim. Zero if unused.
	TargetLine int64
	// plans are the per-secret initial-state plans (see PrimePlan),
	// precomputed by BuildVictim so the pooled trial loop and the static
	// leak detector read one priming ground truth without per-trial
	// allocation.
	plans [2]*PrimePlan
}

// VictimParams tunes the gadget/target chain lengths. The defaults are
// calibrated for AttackConfig's latencies (L1 4, L2 12, LLC 40, Mem 150).
type VictimParams struct {
	// FChain is the length of the dependent sqrt chain f(z) that generates
	// A's address (the interference target).
	FChain int
	// GChain is the length of the dependent mul chain g(z) that generates
	// B's address; it is sized to complete between A's interfered and
	// non-interfered times (G > F in the paper's notation).
	GChain int
	// GadgetSqrts is the number of independent sqrts f'(x) in the NPEU
	// interference gadget.
	GadgetSqrts int
	// MSHRLoads is M, the number of gadget loads in the MSHR gadget
	// (set to the L1D MSHR count).
	MSHRLoads int
	// RSAdds is the number of transmitter-dependent adds in the GIRS
	// gadget (must exceed RS size + fetch buffer).
	RSAdds int
	// ZChain is the short address-generation chain of the MSHR victim.
	ZChain int
	// MSHRRefChain is the mul-chain length in front of the MSHR victim's
	// reference load (shorter than GChain: it must land inside the MSHR
	// exhaustion window rather than the EU-contention window).
	MSHRRefChain int
}

// DefaultVictimParams returns chain lengths calibrated for AttackConfig.
// FChain is long enough that the interference delay (~24 cycles per f step
// versus ~13 uncontended) pushes A's issue past the safety floor that
// TSO-style schemes impose, which the paper's "All" entries for VD-AD
// require.
func DefaultVictimParams() VictimParams {
	return VictimParams{
		FChain:       10,
		GChain:       35,
		GadgetSqrts:  40,
		MSHRLoads:    4,
		RSAdds:       140,
		ZChain:       2,
		MSHRRefChain: 20,
	}
}

// BuildVictim generates the sender program for the given gadget and
// ordering against the layout, including the per-secret PrimePlans the
// trial loop and the static leak detector both consume.
func BuildVictim(g Gadget, ord Ordering, l Layout, p VictimParams) (*Victim, error) {
	var v *Victim
	var err error
	switch g {
	case GadgetNPEU:
		if ord == OrderVIAD {
			v, err = buildNPEUorMSHRVIAD(g, l, p)
		} else {
			v, err = buildNPEUVictim(l, p)
		}
	case GadgetMSHR:
		if ord == OrderVIAD {
			v, err = buildNPEUorMSHRVIAD(g, l, p)
		} else {
			v, err = buildMSHRVictim(l, p)
		}
	case GadgetRS:
		if ord != OrderVIAD {
			return nil, fmt.Errorf("core: GIRS only supports the VI-AD ordering (Table 1)")
		}
		v, err = buildRSVictim(l, p)
	default:
		return nil, fmt.Errorf("core: unknown gadget %d", int(g))
	}
	if err != nil {
		return nil, err
	}
	v.plans = [2]*PrimePlan{
		buildPrimePlan(g, l, p, v, 0),
		buildPrimePlan(g, l, p, v, 1),
	}
	return v, nil
}

// zChainMuls sizes the z computation: the paper's "z = ... // takes Z
// cycles". It is an arithmetic chain, not a load, so no load-protection
// scheme can defer it: the interference window must open for every scheme.
const zChainMuls = 12

// emitZChain emits the z computation into isa.R11. Its value is irrelevant
// (the address chains mask it to zero); only its ~Z-cycle latency matters:
// long enough for the gadget's transmitter to return first, short enough
// that the interference window fits before the branch resolves.
func emitZChain(b *asm.Builder) {
	b.MulI(isa.R11, RegIdx, 1)
	for i := 1; i < zChainMuls; i++ {
		b.MulI(isa.R11, isa.R11, 1)
	}
}

// emitAccessAndTransmitter emits the access load (reads the secret at
// T[i]) and the transmitter load of S[secret*64], returning the register
// holding the transmitter result.
func emitAccessAndTransmitter(b *asm.Builder) isa.Reg {
	b.ShlI(isa.R22, RegIdx, 3)
	b.Add(isa.R22, isa.R22, RegT)
	b.Load(isa.R23, isa.R22, 0) // access load: secret = T[i]
	b.ShlI(isa.R24, isa.R23, 6) // secret * 64
	b.Add(isa.R24, isa.R24, RegS)
	b.Load(isa.R25, isa.R24, 0) // transmitter: S[secret*64]
	return isa.R25
}

// buildNPEUVictim is the Figure 6 sender: interference target f(z)→load A,
// reference chain g(z)→load B, and an NPEU gadget in the branch shadow.
func buildNPEUVictim(l Layout, p VictimParams) (*Victim, error) {
	b := asm.NewBuilder()
	b.Load(isa.R10, RegN, 0) // N: flushed line — the speculation window
	emitZChain(b)            // z: a Z-cycle arithmetic computation
	// f(z): dependent sqrt chain on the non-pipelined unit.
	b.Sqrt(isa.R12, isa.R11)
	for i := 1; i < p.FChain; i++ {
		b.Sqrt(isa.R12, isa.R12)
	}
	b.And(isa.R13, isa.R12, RegZero)
	b.Add(isa.R13, isa.R13, RegABase)
	apc := b.PC()
	b.Load(isa.R14, isa.R13, 0) // victim load A
	// g(z): dependent mul chain on a different (pipelined) unit.
	b.MulI(isa.R15, isa.R11, 1)
	for i := 1; i < p.GChain; i++ {
		b.MulI(isa.R15, isa.R15, 1)
	}
	b.And(isa.R16, isa.R15, RegZero)
	b.Add(isa.R16, isa.R16, RegBBase)
	bpc := b.PC()
	b.Load(isa.R17, isa.R16, 0) // reference load B
	branchPC := b.PC()
	b.Blt(RegIdx, isa.R10, "gadget") // mistrained taken; actually i >= N
	b.Jmp("done")
	b.Label("gadget")
	x := emitAccessAndTransmitter(b)
	// f'(x): independent sqrts, all data-dependent on the transmitter.
	for i := 0; i < p.GadgetSqrts; i++ {
		b.Sqrt(isa.R26, x)
	}
	b.Label("spin")
	b.Jmp("spin") // keep wrong-path fetch away from the done block
	b.Label("done")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Victim{Prog: prog, BranchPC: branchPC, APC: apc, BPC: bpc}, nil
}

// buildMSHRVictim is the Figure 4 sender: a short address chain for victim
// load A, a mul-chain reference load B that coalesces with the gadget's
// first line (so MSHR exhaustion cannot delay it), and M gadget loads whose
// addresses spread over M lines only when the secret is 1.
func buildMSHRVictim(l Layout, p VictimParams) (*Victim, error) {
	b := asm.NewBuilder()
	b.Load(isa.R10, RegN, 0)
	emitZChain(b)
	// Short f(z): A's address is ready soon after z, but late enough that
	// the gadget loads have issued first.
	b.Sqrt(isa.R12, isa.R11)
	for i := 1; i < p.ZChain; i++ {
		b.Sqrt(isa.R12, isa.R12)
	}
	b.And(isa.R13, isa.R12, RegZero)
	b.Add(isa.R13, isa.R13, RegABase)
	apc := b.PC()
	b.Load(isa.R14, isa.R13, 0) // victim load A: needs an MSHR
	// Reference B: mul chain, then a load of the gadget's k=0 line, which
	// coalesces with the outstanding gadget miss instead of needing a free
	// MSHR — its issue time is therefore unaffected by the gadget.
	b.MulI(isa.R15, isa.R11, 1)
	for i := 1; i < p.MSHRRefChain; i++ {
		b.MulI(isa.R15, isa.R15, 1)
	}
	b.And(isa.R16, isa.R15, RegZero)
	b.AddI(isa.R16, isa.R16, l.GadgetBase)
	bpc := b.PC()
	b.Load(isa.R17, isa.R16, 0) // reference load B (line GadgetBase)
	branchPC := b.PC()
	b.Blt(RegIdx, isa.R10, "gadget")
	b.Jmp("done")
	b.Label("gadget")
	b.ShlI(isa.R22, RegIdx, 3)
	b.Add(isa.R22, isa.R22, RegT)
	b.Load(isa.R23, isa.R22, 0) // access load: secret
	b.ShlI(isa.R24, isa.R23, 6) // secret * 64
	// M loads at GadgetBase + secret*64*k: one line when secret=0, M
	// distinct lines when secret=1.
	for k := 0; k < p.MSHRLoads; k++ {
		b.MulI(isa.R26, isa.R24, int64(k))
		b.AddI(isa.R26, isa.R26, l.GadgetBase)
		b.Load(isa.R27, isa.R26, 0)
	}
	b.Label("spin")
	b.Jmp("spin")
	b.Label("done")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Victim{Prog: prog, BranchPC: branchPC, APC: apc, BPC: bpc}, nil
}

// buildNPEUorMSHRVIAD is the VI-AD variant (§3.3.1): the branch condition
// depends on the gadget-delayed load A, so the interference delays branch
// resolution and with it the (visible, correct-path) fetch of the `done`
// block, which is placed on its own, initially-flushed instruction line.
func buildNPEUorMSHRVIAD(g Gadget, l Layout, p VictimParams) (*Victim, error) {
	b := asm.NewBuilder()
	emitZChain(b) // z
	chain := p.FChain
	if g == GadgetMSHR {
		chain = p.ZChain
	}
	b.Sqrt(isa.R12, isa.R11)
	for i := 1; i < chain; i++ {
		b.Sqrt(isa.R12, isa.R12)
	}
	b.And(isa.R13, isa.R12, RegZero)
	b.Add(isa.R13, isa.R13, RegABase)
	apc := b.PC()
	b.Load(isa.R14, isa.R13, 0) // A: the gadget-delayed load
	branchPC := b.PC()
	b.Blt(RegIdx, isa.R14, "gadget") // condition depends on A (A holds 0)
	b.Jmp("done")
	b.Label("gadget")
	if g == GadgetNPEU {
		x := emitAccessAndTransmitter(b)
		for i := 0; i < p.GadgetSqrts; i++ {
			b.Sqrt(isa.R26, x)
		}
	} else {
		b.ShlI(isa.R22, RegIdx, 3)
		b.Add(isa.R22, isa.R22, RegT)
		b.Load(isa.R23, isa.R22, 0)
		b.ShlI(isa.R24, isa.R23, 6)
		for k := 0; k < p.MSHRLoads; k++ {
			b.MulI(isa.R26, isa.R24, int64(k))
			b.AddI(isa.R26, isa.R26, l.GadgetBase)
			b.Load(isa.R27, isa.R26, 0)
		}
	}
	b.Label("spin")
	b.Jmp("spin")
	padToLine(b)
	b.Label("done")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	done := prog.Symbols["done"]
	return &Victim{
		Prog: prog, BranchPC: branchPC, APC: apc,
		TargetLine: mem.LineAddr(prog.InstAddr(done)),
	}, nil
}

// buildRSVictim is the Figure 5 / §4.3 sender: a transmitter load followed
// by enough transmitter-dependent adds to overflow the reservation
// stations, then a jump to a target function on its own instruction line.
// The whole gadget sits on the mis-speculated path, so the target line is
// fetched only when the transmitter hits (secret = 0) and the frontend is
// not back-throttled.
func buildRSVictim(l Layout, p VictimParams) (*Victim, error) {
	b := asm.NewBuilder()
	b.Load(isa.R10, RegN, 0) // N: flushed — speculation window
	branchPC := b.PC()
	b.Blt(RegIdx, isa.R10, "gadget")
	b.Jmp("done")
	b.Label("gadget")
	x := emitAccessAndTransmitter(b)
	// Congest the RS: adds that cannot issue until the transmitter returns.
	for i := 0; i < p.RSAdds; i++ {
		b.Add(isa.R26, x, x)
	}
	b.Jmp("targetfn")
	padToLine(b)
	b.Label("targetfn") // the shared-function line the receiver watches
	b.Halt()
	padToLine(b) // keep the correct-path done block off the target line
	b.Label("done")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	tfn := prog.Symbols["targetfn"]
	return &Victim{
		Prog: prog, BranchPC: branchPC,
		TargetLine: mem.LineAddr(prog.InstAddr(tfn)),
	}, nil
}

// padToLine emits nops until the next instruction starts a fresh cache
// line, so a labelled block gets a line of its own.
func padToLine(b *asm.Builder) {
	instsPerLine := int(mem.LineBytes / isa.InstBytes)
	for b.PC()%instsPerLine != 0 {
		b.Nop()
	}
}
