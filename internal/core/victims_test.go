package core

import (
	"testing"

	"specinterference/internal/cache"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
)

func testLayout(t *testing.T) Layout {
	t.Helper()
	h := cache.NewHierarchy(AttackConfig().Cache)
	return DefaultLayout(h)
}

func TestDefaultLayoutConflicts(t *testing.T) {
	cfg := AttackConfig().Cache
	h := cache.NewHierarchy(cfg)
	l := DefaultLayout(h)
	set := func(a int64) int { return mem.SetIndex(a, cfg.LLC.Sets) }
	slice := func(a int64) int { return mem.SliceIndex(a, cfg.LLCSlices) }
	if set(l.BAddr) != set(l.AAddr) || slice(l.BAddr) != slice(l.AAddr) {
		t.Error("B must share A's LLC set and slice")
	}
	if set(l.GadgetBase) != set(l.AAddr) || slice(l.GadgetBase) != slice(l.AAddr) {
		t.Error("GadgetBase must share A's LLC set and slice")
	}
	distinct := map[int64]bool{}
	for _, a := range []int64{l.NAddr, l.ZAddr, l.TAddr, l.SBase, l.AAddr,
		l.BAddr, l.GadgetBase, l.RefAddr} {
		line := mem.LineAddr(a)
		if distinct[line] {
			t.Errorf("address collision at %#x", line)
		}
		distinct[line] = true
	}
	// Nothing else may live in the attacked set: N, z, T, S, Ref all map
	// elsewhere.
	for _, a := range []int64{l.NAddr, l.ZAddr, l.TAddr + l.Index*8, l.SBase,
		l.SBase + 64, l.RefAddr} {
		if set(a) == set(l.AAddr) && slice(a) == slice(l.AAddr) {
			t.Errorf("address %#x pollutes the attacked LLC set", a)
		}
	}
}

func TestBuildVictimAllCombos(t *testing.T) {
	l := testLayout(t)
	p := DefaultVictimParams()
	for _, combo := range Combos() {
		g := combo[0].(Gadget)
		ord := combo[1].(Ordering)
		v, err := BuildVictim(g, ord, l, p)
		if err != nil {
			t.Fatalf("%s/%s: %v", g, ord, err)
		}
		if err := v.Prog.Validate(); err != nil {
			t.Fatalf("%s/%s: invalid program: %v", g, ord, err)
		}
		br := v.Prog.Insts[v.BranchPC]
		if !br.IsCondBranch() {
			t.Errorf("%s/%s: BranchPC %d is %s, not a conditional branch", g, ord, v.BranchPC, br)
		}
		if ord == OrderVIAD {
			if v.TargetLine == 0 {
				t.Errorf("%s/%s: missing target line", g, ord)
			}
			if v.TargetLine%mem.LineBytes != 0 {
				t.Errorf("%s/%s: target line unaligned", g, ord)
			}
		} else {
			if v.Prog.Insts[v.APC].Op != isa.Load || v.Prog.Insts[v.BPC].Op != isa.Load {
				t.Errorf("%s/%s: A/B PCs do not point at loads", g, ord)
			}
		}
	}
}

func TestGIRSRejectsDataOrderings(t *testing.T) {
	l := testLayout(t)
	for _, ord := range []Ordering{OrderVDVD, OrderVDAD} {
		if _, err := BuildVictim(GadgetRS, ord, l, DefaultVictimParams()); err == nil {
			t.Errorf("GIRS with %s should be rejected (Table 1 has no such cell)", ord)
		}
	}
}

func TestGIRSTargetLineIsolated(t *testing.T) {
	// The target function line must not be shared with the correct-path
	// done block (otherwise the correct path refetches it and the channel
	// closes).
	l := testLayout(t)
	v, err := BuildVictim(GadgetRS, OrderVIAD, l, DefaultVictimParams())
	if err != nil {
		t.Fatal(err)
	}
	done := v.Prog.Symbols["done"]
	if mem.LineAddr(v.Prog.InstAddr(done)) == v.TargetLine {
		t.Error("done block shares the target instruction line")
	}
	tfn := v.Prog.Symbols["targetfn"]
	if mem.LineAddr(v.Prog.InstAddr(tfn)) != v.TargetLine {
		t.Error("TargetLine does not match the targetfn label")
	}
}

func TestVictimParamsRespected(t *testing.T) {
	l := testLayout(t)
	p := DefaultVictimParams()
	p.GadgetSqrts = 7
	v, err := BuildVictim(GadgetNPEU, OrderVDVD, l, p)
	if err != nil {
		t.Fatal(err)
	}
	sqrts := 0
	for _, in := range v.Prog.Insts {
		if in.Op == isa.Sqrt {
			sqrts++
		}
	}
	if sqrts != p.FChain+7 {
		t.Errorf("sqrt count = %d, want f-chain %d + gadget 7", sqrts, p.FChain)
	}
}

func TestRSAddsExceedRSCapacity(t *testing.T) {
	cfg := AttackConfig()
	p := DefaultVictimParams()
	if p.RSAdds <= cfg.RSSize+cfg.FetchBufSize {
		t.Errorf("RSAdds %d cannot overflow RS %d + fetch buffer %d",
			p.RSAdds, cfg.RSSize, cfg.FetchBufSize)
	}
}

func TestMSHRLoadsMatchMSHRCount(t *testing.T) {
	cfg := AttackConfig()
	if DefaultVictimParams().MSHRLoads != cfg.Cache.DMSHRs {
		t.Error("the MSHR gadget must issue exactly as many loads as there are MSHRs")
	}
}

func TestGadgetAndOrderingStrings(t *testing.T) {
	for _, g := range []Gadget{GadgetNPEU, GadgetMSHR, GadgetRS} {
		if g.String() == "" {
			t.Error("empty gadget name")
		}
	}
	for _, o := range []Ordering{OrderVDVD, OrderVDAD, OrderVIAD} {
		if o.String() == "" {
			t.Error("empty ordering name")
		}
	}
	if Gadget(9).String() != "gadget(9)" || Ordering(9).String() != "ordering(9)" {
		t.Error("unknown enum rendering")
	}
}
