package core

import (
	"fmt"

	"specinterference/internal/schemes"
	"specinterference/internal/uarch"
)

// BitOutcome is the result of one end-to-end PoC trial.
type BitOutcome struct {
	// Decoded is the bit the receiver read (valid when OK).
	Decoded int
	// OK is false when the receiver saw an inconsistent state (discarded
	// as noise, as in §4.2.3 step 5).
	OK bool
	// Cycles is the total simulated time of the trial, attacker phases
	// included (the denominator of the Figure 11 bit rate).
	Cycles int64
	// LatA and LatB are the receiver's probe latencies (diagnostics).
	LatA, LatB int64
}

// PoC is an end-to-end cross-core attack: a victim core running under an
// invisible-speculation scheme, and an attacker core that primes and
// probes the shared LLC.
type PoC struct {
	// SchemeName selects the victim's policy (schemes.ByName); the paper's
	// PoCs emulate invisible speculation on real hardware, here the scheme
	// actually runs.
	SchemeName string
	// Jitter adds DRAM latency noise (0 = deterministic).
	Jitter int
	// ReplNoisePct makes LLC victim selection deviate randomly this
	// percent of the time (the adaptive-replacement noise of §4.2.2; the
	// D-Cache receiver's dominant error source).
	ReplNoisePct int
	// Kind selects the D-Cache (§4.2) or I-Cache (§4.3) attack.
	Kind PoCKind
	// Params overrides victim chain lengths.
	Params VictimParams
	// Tweak mutates the machine configuration (ablations).
	Tweak func(*uarch.Config)
}

// PoCKind selects the attack variant.
type PoCKind int

// PoC kinds.
const (
	// DCachePoC is the §4.2 GDNPEU attack decoded through QLRU
	// replacement state.
	DCachePoC PoCKind = iota
	// ICachePoC is the §4.3 GIRS attack decoded through Flush+Reload on
	// the target instruction line.
	ICachePoC
	// MSHRPoC is the GDMSHR VD-VD attack decoded through QLRU replacement
	// state of the set holding A and the gadget line.
	MSHRPoC
)

// String implements fmt.Stringer.
func (k PoCKind) String() string {
	switch k {
	case DCachePoC:
		return "dcache"
	case ICachePoC:
		return "icache"
	case MSHRPoC:
		return "mshr"
	default:
		return fmt.Sprintf("poc(%d)", int(k))
	}
}

// NewDCachePoC returns the §4.2 attack against scheme (default
// invisispec-spectre when empty).
func NewDCachePoC(scheme string, jitter int) *PoC {
	return &PoC{SchemeName: orDefault(scheme), Jitter: jitter, Kind: DCachePoC}
}

// NewICachePoC returns the §4.3 attack against scheme.
func NewICachePoC(scheme string, jitter int) *PoC {
	return &PoC{SchemeName: orDefault(scheme), Jitter: jitter, Kind: ICachePoC}
}

func orDefault(scheme string) string {
	if scheme == "" {
		return "invisispec-spectre"
	}
	return scheme
}

func (p *PoC) spec(secret int, seed uint64) (TrialSpec, error) {
	pol, err := schemes.ByName(p.SchemeName)
	if err != nil {
		return TrialSpec{}, err
	}
	spec := TrialSpec{
		Policy: pol, Secret: secret, Jitter: p.Jitter,
		ReplNoisePct: p.ReplNoisePct, Seed: seed, Params: p.Params,
		Tweak: p.Tweak,
	}
	switch p.Kind {
	case DCachePoC:
		spec.Gadget, spec.Ordering = GadgetNPEU, OrderVDVD
	case MSHRPoC:
		spec.Gadget, spec.Ordering = GadgetMSHR, OrderVDVD
	case ICachePoC:
		spec.Gadget, spec.Ordering = GadgetRS, OrderVIAD
	default:
		return TrialSpec{}, fmt.Errorf("core: unknown PoC kind %d", int(p.Kind))
	}
	return spec, nil
}

// RunBit executes one full prime → victim → probe trial transmitting
// secret; seed varies the jitter draw between repetitions. The trial runs
// on a pooled TrialState acquired per call, which keeps RunBit safe for
// concurrent use on one shared PoC (the channel harness fans a single PoC
// across its workers) while the steady-state bit loop stays off the heap.
//
//speclint:allocfree
func (p *PoC) RunBit(secret int, seed uint64) (BitOutcome, error) {
	spec, err := p.spec(secret, seed)
	if err != nil {
		return BitOutcome{}, err
	}
	ts := AcquireTrialState()
	defer ReleaseTrialState(ts)
	switch p.Kind {
	case ICachePoC:
		return p.runICacheBit(ts, spec)
	default:
		return p.runReplacementStateBit(ts, spec)
	}
}

// runReplacementStateBit is the Figure 9 flow: eviction-set init, prime,
// mistrained victim, probe, decode.
//
//speclint:allocfree
func (p *PoC) runReplacementStateBit(ts *TrialState, spec TrialSpec) (BitOutcome, error) {
	sys, l, _, err := ts.attackSystem(spec)
	if err != nil {
		return BitOutcome{}, err
	}
	h := sys.Hierarchy()
	if p.Kind == MSHRPoC {
		// The MSHR victim's reference load targets the gadget's first line
		// (l is a value copy; the state's cached layout stays untouched).
		l.BAddr = l.GadgetBase
	}
	recv, prime, probe, err := ts.receiver(h, l, p.Kind, spec.Tweak != nil)
	if err != nil {
		return BitOutcome{}, err
	}
	recv.FlushAll(h)

	// Phase 1: attacker primes while the victim is held.
	victim := sys.Core(0)
	victim.SetPaused(true)
	if err := runAttackerProgram(sys, prime, trialMaxCycles); err != nil {
		return BitOutcome{}, fmt.Errorf("core: prime: %w", err)
	}

	// Phase 2: the victim runs its mis-speculated sender.
	victim.SetPaused(false)
	if err := sys.RunUntilCoreHalts(0, trialMaxCycles); err != nil {
		return BitOutcome{}, fmt.Errorf("core: victim: %w", err)
	}

	// Phase 3: attacker probes and times.
	if err := runAttackerProgram(sys, probe, trialMaxCycles); err != nil {
		return BitOutcome{}, fmt.Errorf("core: probe: %w", err)
	}
	latB := sys.Core(1).Reg(RegLatB)
	latA := sys.Core(1).Reg(RegLatA)
	bit, ok := recv.Decode(latB, latA)
	return BitOutcome{Decoded: bit, OK: ok, Cycles: sys.Cycle(), LatA: latA, LatB: latB}, nil
}

// runICacheBit is the §4.3 flow: flush target, run victim, timed reload.
//
//speclint:allocfree
func (p *PoC) runICacheBit(ts *TrialState, spec TrialSpec) (BitOutcome, error) {
	sys, _, v, err := ts.attackSystem(spec)
	if err != nil {
		return BitOutcome{}, err
	}
	if err := sys.RunUntilCoreHalts(0, trialMaxCycles); err != nil {
		return BitOutcome{}, fmt.Errorf("core: victim: %w", err)
	}
	recv := FlushReloadReceiver{Target: v.TargetLine}
	if err := runAttackerProgram(sys, ts.reloadProgram(v.TargetLine, spec.Tweak != nil), trialMaxCycles); err != nil {
		return BitOutcome{}, fmt.Errorf("core: reload: %w", err)
	}
	lat := sys.Core(1).Reg(RegLatA)
	bit, ok := recv.Decode(lat)
	return BitOutcome{Decoded: bit, OK: ok, Cycles: sys.Cycle(), LatA: lat}, nil
}
