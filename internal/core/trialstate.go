package core

import (
	"sync"

	"specinterference/internal/cache"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
	"specinterference/internal/schemes"
	"specinterference/internal/uarch"
)

// trialShape is the part of a TrialSpec that fixes the machine
// configuration: two specs with the same shape differ only in seed,
// secret, policy and programs, so one reset machine can serve both.
// Tweaked specs (spec.Tweak != nil) have no comparable shape and never
// reuse a machine.
type trialShape struct {
	jitter       int
	replNoisePct int
}

// victimMemo is one entry of TrialState's private victim cache. The global
// victimCache already memoizes builds, but looking it up boxes the struct
// key into an interface on every call; the per-state linear scan below is
// allocation-free on the steady-state path.
type victimMemo struct {
	key victimKey
	v   *Victim
}

// TrialState is a reusable trial context for batch harnesses. Instead of
// building a fresh two-core system (and a fresh flat memory, hierarchy,
// predictor, ...) per trial, it resets one machine in place between trials
// — bit-identical to a fresh build, pinned by the equivalence tests — and
// reuses every result buffer. The steady-state trial loop on a warmed
// TrialState performs zero heap allocations.
//
// A TrialState is NOT safe for concurrent use; use AcquireTrialState /
// ReleaseTrialState to get a per-goroutine instance from the shared pool.
type TrialState struct {
	hasSys bool
	shape  trialShape
	sys    *uarch.System
	layout Layout

	sink recordSink
	res  TrialResult

	victims   []victimMemo
	victimGen uint64

	// policies memoizes schemes.ByName per state: constructing a scheme
	// boxes it (and MuonTrap builds a filter cache), which the steady-state
	// matrix loop would otherwise pay on every trial. Stateful policies are
	// reset before each reuse — see TrialState.Policy.
	policies []policyMemo

	// PoC receiver memo: the QLRU receiver and its prime/probe programs
	// depend only on the layout, geometry and PoC kind — all fixed for a
	// given kind on untweaked machines — so they are built once per kind.
	recvOK   bool
	recvKind PoCKind
	recv     *QLRUReceiver
	prime    *isa.Program
	probe    *isa.Program

	// Flush+Reload program memo (I-Cache PoC), keyed by target line.
	reloadOK   bool
	reloadLine int64
	reload     *isa.Program
}

// NewTrialState returns an empty trial context. Most callers want
// AcquireTrialState instead.
func NewTrialState() *TrialState { return &TrialState{} }

// trialStatePool recycles TrialStates across shards: batch harnesses
// acquire one per shard, and the pool hands each worker goroutine back a
// warmed machine so the per-trial system construction cost is paid only
// once per worker.
var trialStatePool = sync.Pool{New: func() any { return NewTrialState() }}

// AcquireTrialState returns a pooled trial context, possibly warmed by a
// previous shard.
func AcquireTrialState() *TrialState { return trialStatePool.Get().(*TrialState) }

// ReleaseTrialState returns ts to the pool. Results returned by ts.Run
// alias the state's buffers and must not be used after release.
func ReleaseTrialState(ts *TrialState) { trialStatePool.Put(ts) }

// attackSystem is NewAttackSystem against the state's reusable machine:
// when the spec's shape matches the cached system, the machine is reset in
// place (no allocation) instead of rebuilt. Tweaked specs always build
// fresh — a config mutation cannot be keyed, so reuse would be unsound.
func (ts *TrialState) attackSystem(spec TrialSpec) (*uarch.System, Layout, *Victim, error) {
	if spec.Tweak != nil {
		return NewAttackSystem(spec)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1 // AttackConfig's default hierarchy seed
	}
	shape := trialShape{jitter: spec.Jitter, replNoisePct: spec.ReplNoisePct}
	if ts.hasSys && ts.shape == shape {
		ts.sys.Reset(seed)
	} else {
		cfg := AttackConfig()
		cfg.Cache.MemJitter = spec.Jitter
		cfg.Cache.LLCReplacementNoisePct = spec.ReplNoisePct
		cfg.Cache.Seed = seed
		sys, err := uarch.NewSystem(cfg, mem.New())
		if err != nil {
			return nil, Layout{}, nil, err
		}
		ts.sys, ts.shape, ts.hasSys = sys, shape, true
		// The layout is pure address arithmetic over the geometry, which
		// is shape-independent, so it survives shape changes; computing it
		// here keeps the no-system and new-shape paths identical.
		ts.layout = DefaultLayout(sys.Hierarchy())
	}
	v, err := ts.victim(spec)
	if err != nil {
		return nil, Layout{}, nil, err
	}
	if err := prepareTrial(ts.sys, v, spec); err != nil {
		return nil, Layout{}, nil, err
	}
	return ts.sys, ts.layout, v, nil
}

// policyMemo is one entry of TrialState's policy cache.
type policyMemo struct {
	name string
	p    uarch.SpecPolicy
}

// Policy returns the named scheme policy, memoized on the state. A policy
// implementing uarch.ResettablePolicy is reset to its just-constructed
// state before every handout, so a memoized instance behaves bit-
// identically to a fresh schemes.ByName build; the remaining schemes are
// stateless values, safe to reuse as-is.
func (ts *TrialState) Policy(name string) (uarch.SpecPolicy, error) {
	for i := range ts.policies {
		if ts.policies[i].name == name {
			p := ts.policies[i].p
			if r, ok := p.(uarch.ResettablePolicy); ok {
				r.ResetPolicy()
			}
			return p, nil
		}
	}
	p, err := schemes.ByName(name)
	if err != nil {
		return nil, err
	}
	ts.policies = append(ts.policies, policyMemo{name: name, p: p})
	return p, nil
}

// victim returns the assembled victim program for spec, consulting the
// state's linear memo before the global (interface-boxing) cache. The
// memo is dropped when the global cache generation changes, so a
// resetVictimCache is visible through pooled states too.
func (ts *TrialState) victim(spec TrialSpec) (*Victim, error) {
	if g := victimCacheGen.Load(); g != ts.victimGen {
		ts.victims, ts.victimGen = ts.victims[:0], g
	}
	key := victimKey{gadget: spec.Gadget, ordering: spec.Ordering, layout: ts.layout, params: spec.params()}
	for i := range ts.victims {
		if ts.victims[i].key == key {
			// A memo hit still reuses the shared build: count it so
			// VictimCacheStats keeps describing the batch fast path.
			victimTab.Load().hits.Add(1)
			return ts.victims[i].v, nil
		}
	}
	v, err := cachedVictim(spec.Gadget, spec.Ordering, ts.layout, spec.params())
	if err != nil {
		return nil, err
	}
	ts.victims = append(ts.victims, victimMemo{key: key, v: v})
	return v, nil
}

// Run executes one trial exactly like RunTrial, reusing the state's
// machine and buffers. The returned result aliases TrialState storage —
// Events, Records and System belong to the state — so it is valid only
// until the next Run on the same state and must not be retained past
// ReleaseTrialState. Callers that keep results (or the post-run System)
// should use RunTrial, which runs on a private, unpooled state.
//
//speclint:allocfree
func (ts *TrialState) Run(spec TrialSpec) (*TrialResult, error) {
	sys, l, v, err := ts.attackSystem(spec)
	if err != nil {
		return nil, err
	}
	ts.sink.recs = ts.sink.recs[:0]
	if spec.Trace {
		sys.Core(0).SetTraceHook(&ts.sink)
	}
	h := sys.Hierarchy()
	h.ResetLog()

	if spec.RefCycle > 0 {
		for sys.Cycle() < spec.RefCycle && !sys.AllHalted() {
			sys.Step()
		}
		if err := injectReference(sys, l); err != nil {
			return nil, err
		}
	}
	if err := sys.Run(trialMaxCycles); err != nil {
		return nil, err
	}

	ts.res = TrialResult{
		Events:          ts.res.Events[:0],
		sigBuf:          ts.res.sigBuf,
		sigMemo:         ts.res.sigMemo,
		sigNext:         ts.res.sigNext,
		SecretLineCycle: -1,
		VictimStats:     sys.Core(0).Stats(),
		Records:         ts.sink.recs,
		Layout:          l,
		Victim:          v,
		System:          sys,
	}
	probes := probeLines(spec.Gadget, spec.Ordering, l, v)
	secretLine := probes[0]
	for _, a := range h.Log() {
		for _, pl := range probes {
			if a.Line == pl {
				ts.res.Events = append(ts.res.Events, ProbeEvent{Core: a.Core, Line: a.Line, Cycle: a.Cycle})
				if a.Line == secretLine && ts.res.SecretLineCycle < 0 {
					ts.res.SecretLineCycle = a.Cycle
				}
				break
			}
		}
	}
	return &ts.res, nil
}

// receiver returns the QLRU receiver and its prime/probe programs for a
// replacement-state PoC, memoized per kind. Tweaked machines bypass the
// memo entirely: their geometry (and thus eviction sets) may differ.
func (ts *TrialState) receiver(h *cache.Hierarchy, l Layout, kind PoCKind, tweaked bool) (*QLRUReceiver, *isa.Program, *isa.Program, error) {
	if !tweaked && ts.recvOK && ts.recvKind == kind {
		return ts.recv, ts.prime, ts.probe, nil
	}
	recv, err := NewQLRUReceiver(h, l)
	if err != nil {
		return nil, nil, nil, err
	}
	prime, probe := recv.PrimeProgram(), recv.ProbeProgram()
	if !tweaked {
		ts.recv, ts.prime, ts.probe = recv, prime, probe
		ts.recvKind, ts.recvOK = kind, true
	}
	return recv, prime, probe, nil
}

// reloadProgram returns the Flush+Reload probe for target, memoized per
// target line (tweaked machines bypass the memo like receiver does).
func (ts *TrialState) reloadProgram(target int64, tweaked bool) *isa.Program {
	if !tweaked && ts.reloadOK && ts.reloadLine == target {
		return ts.reload
	}
	r := FlushReloadReceiver{Target: target}
	p := r.ReloadProgram()
	if !tweaked {
		ts.reload, ts.reloadLine, ts.reloadOK = p, target, true
	}
	return p
}
