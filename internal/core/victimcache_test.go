package core

import (
	"context"
	"testing"
)

// TestVictimCacheIdenticalTrials proves the batch-trial fast path is
// invisible: a trial that builds its victim program from scratch (cold
// cache) and a trial that reuses the memoized program produce identical
// probe signatures, and the cached program is the same code BuildVictim
// emits.
func TestVictimCacheIdenticalTrials(t *testing.T) {
	spec := TrialSpec{
		Gadget: GadgetNPEU, Ordering: OrderVDVD,
		Secret: 1, Jitter: 5, Seed: 7,
	}

	resetVictimCache()
	defer resetVictimCache()
	cold, err := RunTrial(spec)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := VictimCacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("cold trial: hits=%d misses=%d, want 0/1", hits, misses)
	}

	warm, err := RunTrial(spec)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := VictimCacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("warm trial: hits=%d misses=%d, want 1/1", hits, misses)
	}

	if got, want := warm.Signature(), cold.Signature(); got != want {
		t.Errorf("cached trial signature %q differs from uncached %q", got, want)
	}
	if warm.SecretLineCycle != cold.SecretLineCycle {
		t.Errorf("cached trial secret-line cycle %d differs from uncached %d",
			warm.SecretLineCycle, cold.SecretLineCycle)
	}

	// The memoized program is exactly what a fresh build emits.
	fresh, err := BuildVictim(spec.Gadget, spec.Ordering, warm.Layout, DefaultVictimParams())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := warm.Victim.Prog.String(), fresh.Prog.String(); got != want {
		t.Errorf("cached program differs from a fresh build:\n%s\nvs\n%s", got, want)
	}
	if warm.Victim.BranchPC != fresh.BranchPC || warm.Victim.APC != fresh.APC ||
		warm.Victim.BPC != fresh.BPC || warm.Victim.TargetLine != fresh.TargetLine {
		t.Errorf("cached victim metadata %+v differs from fresh %+v", warm.Victim, fresh)
	}
}

// TestVictimCacheKeysDistinct: different gadgets, orderings and params
// must never share a cache entry.
func TestVictimCacheKeysDistinct(t *testing.T) {
	resetVictimCache()
	defer resetVictimCache()
	specs := []TrialSpec{
		{Gadget: GadgetNPEU, Ordering: OrderVDVD},
		{Gadget: GadgetNPEU, Ordering: OrderVIAD},
		{Gadget: GadgetMSHR, Ordering: OrderVDVD},
		{Gadget: GadgetRS, Ordering: OrderVIAD},
	}
	progs := map[string]bool{}
	for _, s := range specs {
		r, err := RunTrial(s)
		if err != nil {
			t.Fatalf("%s/%s: %v", s.Gadget, s.Ordering, err)
		}
		progs[r.Victim.Prog.String()] = true
	}
	if len(progs) != len(specs) {
		t.Fatalf("distinct specs shared programs: %d unique of %d", len(progs), len(specs))
	}
	if _, misses := VictimCacheStats(); misses != uint64(len(specs)) {
		t.Errorf("misses = %d, want %d (one per distinct key)", misses, len(specs))
	}

	// Params changes miss too.
	p := DefaultVictimParams()
	p.FChain += 2
	if _, err := RunTrial(TrialSpec{Gadget: GadgetNPEU, Ordering: OrderVDVD, Params: p}); err != nil {
		t.Fatal(err)
	}
	if _, misses := VictimCacheStats(); misses != uint64(len(specs))+1 {
		t.Errorf("param change did not miss the cache (misses=%d)", misses)
	}
}

// TestVictimCacheParallelHarness: the cache sits under concurrent shards;
// a parallel Figure 7 run must stay bit-identical to the serial one (the
// runner's seed discipline) while sharing one cached victim.
func TestVictimCacheParallelHarness(t *testing.T) {
	resetVictimCache()
	defer resetVictimCache()
	serial, err := Figure7Parallel(context.Background(), 4, 10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure7Parallel(context.Background(), 4, 10, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Baseline {
		if serial.Baseline[i] != parallel.Baseline[i] ||
			serial.Interference[i] != parallel.Interference[i] {
			t.Fatalf("trial %d diverged across worker counts with a shared victim cache", i)
		}
	}
	hits, misses := VictimCacheStats()
	if misses == 0 || hits == 0 {
		t.Errorf("expected both misses and hits across 16 trials, got hits=%d misses=%d", hits, misses)
	}
	if misses > 5 {
		// 16 trials over one (gadget, ordering, layout, params) tuple: at
		// worst the serial first build plus four racing parallel builds.
		t.Errorf("cache misses %d times for one victim tuple", misses)
	}
}
