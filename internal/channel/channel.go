// Package channel measures end-to-end covert-channel quality: bit error
// probability versus bit rate (the Figure 11 curves). The rate/error
// trade-off knob is the number of PoC repetitions per transmitted bit,
// decoded by majority vote — the paper's "number of times the PoC is run
// to leak each bit" (§4.4).
package channel

import (
	"context"
	"fmt"

	"specinterference/internal/cache"
	"specinterference/internal/core"
	"specinterference/internal/runner"
)

// NominalGHz converts simulated cycles to wall-clock time for the bps
// figures, matching the paper's 3.6 GHz Kaby Lake base clock.
const NominalGHz = 3.6

// Config describes one channel measurement.
type Config struct {
	// PoC is the attack transmitting the bits.
	PoC *core.PoC
	// Reps is the number of trials per bit (majority decode; odd avoids
	// ties).
	Reps int
	// Bits is the number of random bits transmitted.
	Bits int
	// SeedBase derives per-trial seeds (deterministic measurements).
	SeedBase uint64
	// Workers bounds trial concurrency (0 = one per CPU). Seeds are a pure
	// function of the trial index, so results are identical at any value.
	Workers int
}

// Result is one point of the error-vs-rate curve.
type Result struct {
	Reps         int
	Bits         int
	Errors       int
	Dropped      int // trials discarded as inconsistent (receiver noise)
	ErrorRate    float64
	TotalCycles  int64
	CyclesPerBit float64
	// Bps is the bit rate at the nominal clock.
	Bps float64
}

// String renders the point like the Figure 11 axes.
func (r Result) String() string {
	return fmt.Sprintf("reps=%2d  rate=%8.0f bps  error=%.3f  (%d/%d bits, %.0f cycles/bit)",
		r.Reps, r.Bps, r.ErrorRate, r.Errors, r.Bits, r.CyclesPerBit)
}

// Measure transmits Bits random bits through the PoC at Reps trials per
// bit and reports the achieved error rate and rate. Trials shard across
// cfg.Workers goroutines: trial (b, rep) always runs with seed
// seedBase*1_000_003 + 17 + b*Reps + rep + 1 — the exact sequence the
// serial loop's seed++ produced — so the measurement is bit-identical at
// any worker count.
func Measure(cfg Config) (Result, error) {
	return MeasureContext(context.Background(), cfg)
}

// MeasureContext is Measure with cancellation.
func MeasureContext(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Reps < 1 || cfg.Bits < 1 {
		return Result{}, fmt.Errorf("channel: reps and bits must be >= 1")
	}
	if cfg.PoC == nil {
		return Result{}, fmt.Errorf("channel: nil PoC")
	}
	bits := DrawBits(cfg.SeedBase, cfg.Bits)
	outs, err := runner.Map(ctx, cfg.Bits*cfg.Reps, cfg.Workers,
		func(_ context.Context, j int) (core.BitOutcome, error) {
			return cfg.PoC.RunBit(bits[j/cfg.Reps], TrialSeed(cfg.SeedBase, j))
		})
	if err != nil {
		return Result{}, err
	}
	return DecodePoint(cfg.Reps, bits, outs), nil
}

// DrawBits returns the n transmitted bits of a measurement at seedBase,
// drawn upfront in the same rng order the original serial loop drew them
// between trial batches. Pure function of its arguments, so any shard can
// recompute the bit it transmits.
func DrawBits(seedBase uint64, n int) []int {
	rng := cache.NewRand(seedBase | 1)
	bits := make([]int, n)
	for b := range bits {
		bits[b] = rng.Intn(2)
	}
	return bits
}

// TrialSeed returns the seed of flattened trial j (= bit*reps + rep) of a
// measurement at seedBase: seedBase*1_000_003 + 17 + j + 1, the exact
// sequence the original serial loop's seed++ produced.
func TrialSeed(seedBase uint64, j int) uint64 {
	return seedBase*1_000_003 + 17 + uint64(j) + 1
}

// PointSeedBase returns curve point i's measurement seed base in a
// Figure 11 sweep rooted at seedBase.
func PointSeedBase(seedBase uint64, point int) uint64 {
	return seedBase + uint64(point)*7_919
}

// DecodePoint folds the len(bits)*reps trial outcomes of one curve point
// (flattened bit-major, trial j = bit*reps + rep, in index order) into the
// majority-decoded Result — the serial-order aggregation shared by
// MeasureContext and the experiment engine.
func DecodePoint(reps int, bits []int, outs []core.BitOutcome) Result {
	res := Result{Reps: reps, Bits: len(bits)}
	for b := 0; b < len(bits); b++ {
		votes := [2]int{}
		for rep := 0; rep < reps; rep++ {
			out := outs[b*reps+rep]
			res.TotalCycles += out.Cycles
			if out.OK {
				votes[out.Decoded]++
			} else {
				res.Dropped++
			}
		}
		decoded := 0
		if votes[1] > votes[0] {
			decoded = 1
		}
		if decoded != bits[b] {
			res.Errors++
		}
	}
	res.ErrorRate = float64(res.Errors) / float64(res.Bits)
	res.CyclesPerBit = float64(res.TotalCycles) / float64(res.Bits)
	res.Bps = NominalGHz * 1e9 / res.CyclesPerBit
	return res
}

// Curve measures one point per repetition count, producing a Figure 11
// style error-vs-rate curve (higher reps → lower rate → lower error),
// with one worker per CPU; see CurveParallel for the explicit knob.
func Curve(poc *core.PoC, repsList []int, bits int, seedBase uint64) ([]Result, error) {
	return CurveParallel(context.Background(), poc, repsList, bits, seedBase, 0)
}

// CurveParallel is Curve with bounded per-trial concurrency. Points are
// measured in order (each point's SeedBase depends only on its position),
// and the trials inside each point fan out across the pool.
func CurveParallel(ctx context.Context, poc *core.PoC, repsList []int, bits int, seedBase uint64, workers int) ([]Result, error) {
	var out []Result
	for i, reps := range repsList {
		r, err := MeasureContext(ctx, Config{
			PoC: poc, Reps: reps, Bits: bits,
			SeedBase: PointSeedBase(seedBase, i),
			Workers:  workers,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// DefaultReps is the repetition sweep used by the Figure 11 harnesses.
func DefaultReps() []int { return []int{1, 3, 5, 9, 15} }

// DCacheFigure11 returns the Figure 11(a) PoC with its calibrated noise
// operating point (adaptive-replacement deviations dominate, §4.2.2).
func DCacheFigure11() *core.PoC {
	p := core.NewDCachePoC("invisispec-spectre", 40)
	p.ReplNoisePct = 5
	return p
}

// ICacheFigure11 returns the Figure 11(b) PoC with its calibrated noise
// operating point (DRAM jitter shifts the RS drain against the squash).
func ICacheFigure11() *core.PoC {
	return core.NewICachePoC("invisispec-spectre", 120)
}

// PoCByName returns the calibrated Figure 11 PoC for a persisted name.
func PoCByName(name string) (*core.PoC, error) {
	switch name {
	case "dcache":
		return DCacheFigure11(), nil
	case "icache":
		return ICacheFigure11(), nil
	default:
		return nil, fmt.Errorf("channel: unknown poc %q (want dcache or icache)", name)
	}
}
