// Package channel measures end-to-end covert-channel quality: bit error
// probability versus bit rate (the Figure 11 curves). The rate/error
// trade-off knob is the number of PoC repetitions per transmitted bit,
// decoded by majority vote — the paper's "number of times the PoC is run
// to leak each bit" (§4.4).
package channel

import (
	"fmt"

	"specinterference/internal/cache"
	"specinterference/internal/core"
)

// NominalGHz converts simulated cycles to wall-clock time for the bps
// figures, matching the paper's 3.6 GHz Kaby Lake base clock.
const NominalGHz = 3.6

// Config describes one channel measurement.
type Config struct {
	// PoC is the attack transmitting the bits.
	PoC *core.PoC
	// Reps is the number of trials per bit (majority decode; odd avoids
	// ties).
	Reps int
	// Bits is the number of random bits transmitted.
	Bits int
	// SeedBase derives per-trial seeds (deterministic measurements).
	SeedBase uint64
}

// Result is one point of the error-vs-rate curve.
type Result struct {
	Reps         int
	Bits         int
	Errors       int
	Dropped      int // trials discarded as inconsistent (receiver noise)
	ErrorRate    float64
	TotalCycles  int64
	CyclesPerBit float64
	// Bps is the bit rate at the nominal clock.
	Bps float64
}

// String renders the point like the Figure 11 axes.
func (r Result) String() string {
	return fmt.Sprintf("reps=%2d  rate=%8.0f bps  error=%.3f  (%d/%d bits, %.0f cycles/bit)",
		r.Reps, r.Bps, r.ErrorRate, r.Errors, r.Bits, r.CyclesPerBit)
}

// Measure transmits Bits random bits through the PoC at Reps trials per
// bit and reports the achieved error rate and rate.
func Measure(cfg Config) (Result, error) {
	if cfg.Reps < 1 || cfg.Bits < 1 {
		return Result{}, fmt.Errorf("channel: reps and bits must be >= 1")
	}
	if cfg.PoC == nil {
		return Result{}, fmt.Errorf("channel: nil PoC")
	}
	rng := cache.NewRand(cfg.SeedBase | 1)
	res := Result{Reps: cfg.Reps, Bits: cfg.Bits}
	seed := cfg.SeedBase*1_000_003 + 17
	for b := 0; b < cfg.Bits; b++ {
		bit := rng.Intn(2)
		votes := [2]int{}
		for rep := 0; rep < cfg.Reps; rep++ {
			seed++
			out, err := cfg.PoC.RunBit(bit, seed)
			if err != nil {
				return Result{}, err
			}
			res.TotalCycles += out.Cycles
			if out.OK {
				votes[out.Decoded]++
			} else {
				res.Dropped++
			}
		}
		decoded := 0
		if votes[1] > votes[0] {
			decoded = 1
		}
		if decoded != bit {
			res.Errors++
		}
	}
	res.ErrorRate = float64(res.Errors) / float64(res.Bits)
	res.CyclesPerBit = float64(res.TotalCycles) / float64(res.Bits)
	res.Bps = NominalGHz * 1e9 / res.CyclesPerBit
	return res, nil
}

// Curve measures one point per repetition count, producing a Figure 11
// style error-vs-rate curve (higher reps → lower rate → lower error).
func Curve(poc *core.PoC, repsList []int, bits int, seedBase uint64) ([]Result, error) {
	var out []Result
	for i, reps := range repsList {
		r, err := Measure(Config{
			PoC: poc, Reps: reps, Bits: bits,
			SeedBase: seedBase + uint64(i)*7_919,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// DefaultReps is the repetition sweep used by the Figure 11 harnesses.
func DefaultReps() []int { return []int{1, 3, 5, 9, 15} }

// DCacheFigure11 returns the Figure 11(a) PoC with its calibrated noise
// operating point (adaptive-replacement deviations dominate, §4.2.2).
func DCacheFigure11() *core.PoC {
	p := core.NewDCachePoC("invisispec-spectre", 40)
	p.ReplNoisePct = 5
	return p
}

// ICacheFigure11 returns the Figure 11(b) PoC with its calibrated noise
// operating point (DRAM jitter shifts the RS drain against the squash).
func ICacheFigure11() *core.PoC {
	return core.NewICachePoC("invisispec-spectre", 120)
}
