package channel

import (
	"testing"

	"specinterference/internal/cache"
)

// serialMeasure is the pre-runner serial loop of Measure, kept as the
// golden reference for the seed contract: trial (bit, rep) runs with seed
// seedBase*1_000_003 + 17 + bit*Reps + rep + 1.
func serialMeasure(t *testing.T, cfg Config) Result {
	t.Helper()
	rng := cache.NewRand(cfg.SeedBase | 1)
	res := Result{Reps: cfg.Reps, Bits: cfg.Bits}
	seed := cfg.SeedBase*1_000_003 + 17
	for b := 0; b < cfg.Bits; b++ {
		bit := rng.Intn(2)
		votes := [2]int{}
		for rep := 0; rep < cfg.Reps; rep++ {
			seed++
			out, err := cfg.PoC.RunBit(bit, seed)
			if err != nil {
				t.Fatalf("serial reference: %v", err)
			}
			res.TotalCycles += out.Cycles
			if out.OK {
				votes[out.Decoded]++
			} else {
				res.Dropped++
			}
		}
		decoded := 0
		if votes[1] > votes[0] {
			decoded = 1
		}
		if decoded != bit {
			res.Errors++
		}
	}
	res.ErrorRate = float64(res.Errors) / float64(res.Bits)
	res.CyclesPerBit = float64(res.TotalCycles) / float64(res.Bits)
	res.Bps = NominalGHz * 1e9 / res.CyclesPerBit
	return res
}

// TestMeasureParallelMatchesSerial asserts a noisy D-Cache measurement is
// bit-identical to the serial loop at worker counts 1 and 4 (every Result
// field, cycle totals included).
func TestMeasureParallelMatchesSerial(t *testing.T) {
	cfg := Config{PoC: DCacheFigure11(), Reps: 3, Bits: 4, SeedBase: 11}
	want := serialMeasure(t, cfg)
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		got, err := Measure(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: Measure = %+v, serial = %+v", workers, got, want)
		}
	}
}

// TestCurveParallelMatchesSerial asserts whole curves agree between worker
// counts (each point derives its SeedBase from its position only).
func TestCurveParallelMatchesSerial(t *testing.T) {
	poc := ICacheFigure11()
	reps := []int{1, 3}
	c1, err := Curve(poc, reps, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := CurveParallel(nil, poc, reps, 3, 5, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(c1) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(c1))
		}
		for i := range c1 {
			if got[i] != c1[i] {
				t.Errorf("workers=%d: point %d = %+v, want %+v", workers, i, got[i], c1[i])
			}
		}
	}
}
