package channel

import (
	"testing"

	"specinterference/internal/core"
)

func TestNoiselessChannelIsPerfect(t *testing.T) {
	poc := core.NewDCachePoC("invisispec-spectre", 0)
	r, err := Measure(Config{PoC: poc, Reps: 1, Bits: 8, SeedBase: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.ErrorRate != 0 {
		t.Errorf("noiseless channel error = %.2f, want 0", r.ErrorRate)
	}
	if r.Bps <= 0 || r.CyclesPerBit <= 0 {
		t.Error("rate accounting broken")
	}
}

func TestMeasureDeterministic(t *testing.T) {
	mk := func() Config {
		return Config{PoC: DCacheFigure11(), Reps: 3, Bits: 6, SeedBase: 11}
	}
	a, err := Measure(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.Errors != b.Errors || a.TotalCycles != b.TotalCycles {
		t.Error("equal seeds must reproduce the measurement")
	}
}

func TestCurveShapeICache(t *testing.T) {
	// Figure 11(b)'s qualitative shape: more repetitions per bit cost
	// cycles (lower rate) and reduce error.
	results, err := Curve(ICacheFigure11(), []int{1, 9}, 16, 21)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].CyclesPerBit <= results[0].CyclesPerBit {
		t.Error("more reps must lower the bit rate")
	}
	if results[1].ErrorRate > results[0].ErrorRate {
		t.Errorf("error should not grow with reps: %.2f -> %.2f",
			results[0].ErrorRate, results[1].ErrorRate)
	}
}

func TestICacheChannelFasterThanDCache(t *testing.T) {
	// Figure 11: the I-Cache PoC reaches usable error at several times the
	// D-Cache PoC's rate (465 vs ~100 bps on the paper's machine).
	d, err := Measure(Config{PoC: DCacheFigure11(), Reps: 1, Bits: 8, SeedBase: 31})
	if err != nil {
		t.Fatal(err)
	}
	i, err := Measure(Config{PoC: ICacheFigure11(), Reps: 1, Bits: 8, SeedBase: 31})
	if err != nil {
		t.Fatal(err)
	}
	if i.CyclesPerBit >= d.CyclesPerBit {
		t.Errorf("I-Cache channel (%0.f cyc/bit) should beat D-Cache (%.0f)",
			i.CyclesPerBit, d.CyclesPerBit)
	}
}

func TestMeasureValidation(t *testing.T) {
	if _, err := Measure(Config{PoC: nil, Reps: 1, Bits: 1}); err == nil {
		t.Error("nil PoC accepted")
	}
	if _, err := Measure(Config{PoC: DCacheFigure11(), Reps: 0, Bits: 1}); err == nil {
		t.Error("zero reps accepted")
	}
	if _, err := Measure(Config{PoC: DCacheFigure11(), Reps: 1, Bits: 0}); err == nil {
		t.Error("zero bits accepted")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Reps: 3, Bits: 10, Errors: 2, ErrorRate: 0.2, CyclesPerBit: 1000, Bps: 3.6e6}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestDefaultRepsOddAndAscending(t *testing.T) {
	reps := DefaultReps()
	for i, r := range reps {
		if r%2 == 0 {
			t.Errorf("reps[%d]=%d is even (majority ties)", i, r)
		}
		if i > 0 && reps[i] <= reps[i-1] {
			t.Error("reps not ascending")
		}
	}
}
