package cache

import (
	"strings"
	"testing"
)

func TestCacheFillAndContains(t *testing.T) {
	c := NewCache("t", 4, 2, 1, PolicyLRU, nil)
	if c.Contains(0x100) {
		t.Error("empty cache contains nothing")
	}
	c.Fill(0x100)
	if !c.Contains(0x100) {
		t.Error("filled line missing")
	}
	// Same line, different offset.
	if !c.Contains(0x13f) {
		t.Error("same-line offset should hit")
	}
	if c.Contains(0x140) {
		t.Error("next line should miss")
	}
}

func TestCacheLookupCountsStats(t *testing.T) {
	c := NewCache("t", 4, 2, 1, PolicyLRU, nil)
	c.Fill(0x100)
	if !c.Lookup(0x100) {
		t.Error("lookup should hit")
	}
	if c.Lookup(0x999999) {
		t.Error("lookup should miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheLookupDoesNotUpdateReplacement(t *testing.T) {
	c := NewCache("t", 1, 2, 1, PolicyLRU, nil)
	c.Fill(0x000) // way0, older
	c.Fill(0x040) // way1, newer
	// Plain Lookup of 0x000 must not refresh it...
	c.Lookup(0x000)
	c.Fill(0x080) // needs a victim: still 0x000
	if c.Contains(0x000) {
		t.Error("Lookup should not have refreshed 0x000")
	}
	if !c.Contains(0x040) {
		t.Error("0x040 should survive")
	}
}

func TestCacheTouchUpdatesReplacement(t *testing.T) {
	c := NewCache("t", 1, 2, 1, PolicyLRU, nil)
	c.Fill(0x000)
	c.Fill(0x040)
	if !c.Touch(0x000) {
		t.Error("touch should find the line")
	}
	c.Fill(0x080)
	if !c.Contains(0x000) {
		t.Error("touched line should survive")
	}
	if c.Contains(0x040) {
		t.Error("untouched line should be the victim")
	}
	if c.Touch(0xdead00) {
		t.Error("touch of absent line should report false")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache("t", 1, 2, 1, PolicyLRU, nil)
	c.Fill(0x000)
	c.Fill(0x040)
	ev, has := c.Fill(0x080)
	if !has || ev != 0x000 {
		t.Errorf("evicted = %#x/%v, want 0x0", ev, has)
	}
	if c.Stats().Evictions != 1 {
		t.Error("eviction not counted")
	}
}

func TestCacheRefillIsTouch(t *testing.T) {
	c := NewCache("t", 1, 2, 1, PolicyLRU, nil)
	c.Fill(0x000)
	c.Fill(0x040)
	// Re-filling a resident line must not duplicate or evict.
	if _, has := c.Fill(0x000); has {
		t.Error("refill should not evict")
	}
	c.Fill(0x080)
	if !c.Contains(0x000) || c.Contains(0x040) {
		t.Error("refill should have refreshed recency of 0x000")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache("t", 2, 2, 1, PolicyLRU, nil)
	c.Fill(0x100)
	if !c.Invalidate(0x100) {
		t.Error("invalidate should find line")
	}
	if c.Contains(0x100) {
		t.Error("line should be gone")
	}
	if c.Invalidate(0x100) {
		t.Error("second invalidate should miss")
	}
	if c.Stats().Invalidates != 1 {
		t.Error("invalidate not counted")
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	c := NewCache("t", 2, 2, 1, PolicyLRU, nil)
	for i := int64(0); i < 8; i++ {
		c.Fill(i * 64)
	}
	c.InvalidateAll()
	for i := int64(0); i < 8; i++ {
		if c.Contains(i * 64) {
			t.Fatalf("line %d survived InvalidateAll", i)
		}
	}
}

func TestCacheSetConflictsOnly(t *testing.T) {
	// 4 sets: lines 0 and 4 conflict; lines 0 and 1 do not.
	c := NewCache("t", 4, 1, 1, PolicyLRU, nil)
	c.Fill(0 * 64)
	c.Fill(1 * 64)
	if !c.Contains(0) || !c.Contains(64) {
		t.Error("different sets should coexist")
	}
	c.Fill(4 * 64)
	if c.Contains(0) {
		t.Error("set conflict should evict line 0")
	}
	if !c.Contains(64) {
		t.Error("line 1 untouched by conflict in set 0")
	}
}

func TestCacheLinesInSetAndDump(t *testing.T) {
	c := NewCache("t", 1, 4, 1, PolicyLRU, nil)
	c.Fill(0x000)
	c.Fill(0x040)
	lines := c.LinesInSet(0)
	if len(lines) != 2 || lines[0] != 0 || lines[1] != 0x40 {
		t.Errorf("LinesInSet = %#v", lines)
	}
	d := c.DumpSet(0)
	if !strings.Contains(d, "0x40") || !strings.Contains(d, "lru") {
		t.Errorf("DumpSet = %q", d)
	}
}

func TestCacheAccessors(t *testing.T) {
	c := NewCache("name", 8, 4, 3, PolicySRRIP, nil)
	if c.Name() != "name" || c.Sets() != 8 || c.Ways() != 4 || c.Latency() != 3 {
		t.Error("accessor mismatch")
	}
	if c.SetOf(9*64) != 1 {
		t.Errorf("SetOf = %d", c.SetOf(9*64))
	}
}

func TestCacheConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewCache("x", 3, 2, 1, PolicyLRU, nil) },
		func() { NewCache("x", 0, 2, 1, PolicyLRU, nil) },
		func() { NewCache("x", 4, 0, 1, PolicyLRU, nil) },
		func() { NewCache("x", 4, 2, 0, PolicyLRU, nil) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMSHRAllocateAndReap(t *testing.T) {
	f := NewMSHRFile(2)
	if f.Cap() != 2 {
		t.Error("cap")
	}
	if !f.Allocate(0x000, 100, 0) {
		t.Error("first allocate should succeed")
	}
	if !f.Allocate(0x040, 120, 0) {
		t.Error("second allocate should succeed")
	}
	if f.Allocate(0x080, 130, 0) {
		t.Error("third allocate should fail: file full")
	}
	if f.InUse(0) != 2 {
		t.Errorf("InUse = %d", f.InUse(0))
	}
	// At cycle 100 the first entry has completed.
	if f.InUse(100) != 1 {
		t.Errorf("InUse(100) = %d", f.InUse(100))
	}
	if !f.Allocate(0x080, 200, 100) {
		t.Error("allocate after reap should succeed")
	}
	st := f.Stats()
	if st.Allocs != 3 || st.FullStalls != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMSHRCoalesce(t *testing.T) {
	f := NewMSHRFile(1)
	f.Allocate(0x100, 150, 0)
	ready, ok := f.Lookup(0x108, 10) // same line, different offset
	if !ok || ready != 150 {
		t.Errorf("Lookup = %d, %v", ready, ok)
	}
	if _, ok := f.Lookup(0x140, 10); ok {
		t.Error("different line should not coalesce")
	}
	if f.Stats().Coalesces != 1 {
		t.Error("coalesce not counted")
	}
}

func TestMSHRDoubleAllocatePanics(t *testing.T) {
	f := NewMSHRFile(2)
	f.Allocate(0x100, 50, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f.Allocate(0x100, 60, 0)
}

func TestMSHRClear(t *testing.T) {
	f := NewMSHRFile(2)
	f.Allocate(0x100, 1000, 0)
	f.Clear()
	if f.InUse(0) != 0 {
		t.Error("clear should empty the file")
	}
}

func TestMSHRBadCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMSHRFile(0)
}
