package cache

import (
	"fmt"
	"testing"
)

// qlruMaxAge is the policy's 2-bit age domain ceiling.
const qlruMaxAge = 3

// checkAges asserts the QLRU state never leaves its 2-bit domain.
func checkAges(t *testing.T, s *QLRUSet, when string) {
	t.Helper()
	for w, a := range s.Ages() {
		if a > qlruMaxAge {
			t.Fatalf("%s: way %d age %d outside the 2-bit domain", when, w, a)
		}
	}
}

// leftmostMax returns the leftmost occupied way of maximal age — the way
// the R0 eviction rule with U0 aging must select: uniform saturating
// increments preserve the age order, so the first way to reach age 3 is
// the leftmost one that started maximal.
func leftmostMax(ages []uint8, occupied []bool) int {
	best, way := -1, -1
	for w, a := range ages {
		if occupied[w] && int(a) > best {
			best, way = int(a), w
		}
	}
	return way
}

// TestQLRUPropertyRandomAccess drives QLRU_H11_M1_R0_U0 sets with long
// pseudo-random access/invalidate sequences and asserts, after every
// operation:
//
//   - ages stay within the 2-bit domain (the hardware has no age 4),
//   - insertions obey M1 (age 1) and hits obey H11 (promote to 0 or 1),
//   - Victim fills empty ways leftmost-first,
//   - Victim on a full set returns the leftmost way of maximal age, so a
//     just-touched way — whose age an immediately preceding hit forced to
//     0 or 1 — is never evicted while any way holds a strictly greater
//     age. (When every occupied way is age-tied, U0 ages them to 3 in
//     lockstep and R0's leftmost tie-break applies; that tie-break, not
//     recency, is the only way a just-hit way can ever be the victim, and
//     it is exactly the determinism the §4.2.2 receiver decodes.)
func TestQLRUPropertyRandomAccess(t *testing.T) {
	for _, ways := range []int{4, 16} {
		for seed := uint64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("ways=%d/seed=%d", ways, seed), func(t *testing.T) {
				rng := NewRand(seed*0x9e37 + uint64(ways))
				s := NewQLRUSet(ways)
				occupied := make([]bool, ways)
				resident := make([]int, ways) // line id per way, -1 = empty
				for w := range resident {
					resident[w] = -1
				}
				find := func(line int) int {
					for w, l := range resident {
						if occupied[w] && l == line {
							return w
						}
					}
					return -1
				}
				lastHit := -1 // way touched by the most recent OnHit

				// 2*ways distinct lines: misses and hits stay interleaved.
				lines := 2 * ways
				for step := 0; step < 4000; step++ {
					switch op := rng.Intn(10); {
					case op == 0 && step > 0:
						// Occasional back-invalidation of a random way.
						w := rng.Intn(ways)
						if occupied[w] {
							s.OnInvalidate(w)
							occupied[w] = false
							resident[w] = -1
							if lastHit == w {
								lastHit = -1
							}
							checkAges(t, s, "after OnInvalidate")
						}
					default:
						line := rng.Intn(lines)
						if w := find(line); w >= 0 {
							s.OnHit(w)
							if a := s.Ages()[w]; a > 1 {
								t.Fatalf("H11 violated: hit way %d left age %d", w, a)
							}
							lastHit = w
							checkAges(t, s, "after OnHit")
							continue
						}
						agesBefore := s.Ages()
						full := true
						for _, o := range occupied {
							full = full && o
						}
						w := s.Victim(occupied)
						checkAges(t, s, "after Victim")
						if !full {
							want := -1
							for i, o := range occupied {
								if !o {
									want = i
									break
								}
							}
							if w != want {
								t.Fatalf("Victim on a non-full set chose way %d, want leftmost empty %d", w, want)
							}
						} else {
							want := leftmostMax(agesBefore, occupied)
							if w != want {
								t.Fatalf("Victim chose way %d (age %d), want leftmost maximal way %d (age %d); ages %v",
									w, agesBefore[w], want, agesBefore[want], agesBefore)
							}
							// The just-touched-way guarantee: only an
							// all-maximal tie may evict the last hit way.
							if w == lastHit {
								for ow, o := range occupied {
									if o && agesBefore[ow] > agesBefore[w] {
										t.Fatalf("just-hit way %d evicted while way %d is older (%d > %d)",
											w, ow, agesBefore[ow], agesBefore[w])
									}
								}
							}
						}
						s.OnFill(w)
						if a := s.Ages()[w]; a != 1 {
							t.Fatalf("M1 violated: fill of way %d set age %d, want 1", w, a)
						}
						occupied[w] = true
						resident[w] = line
						if lastHit == w {
							lastHit = -1
						}
						checkAges(t, s, "after OnFill")
					}
				}
			})
		}
	}
}

// TestQLRUJustTouchedSurvivesPressure is the receiver's working
// assumption in miniature: prime a full set, hit one way, then stream
// fills through the set — the hit way (age 0) must survive every
// eviction round until aging catches it up with the churned ways, which
// takes more rounds than the receiver's probe needs.
func TestQLRUJustTouchedSurvivesPressure(t *testing.T) {
	const ways = 16
	s := NewQLRUSet(ways)
	occupied := make([]bool, ways)
	for w := 0; w < ways; w++ {
		v := s.Victim(occupied)
		s.OnFill(v)
		occupied[v] = true
	}
	const hot = 5
	s.OnHit(hot) // age 0; every other way is age 1
	v := s.Victim(occupied)
	if v == hot {
		t.Fatalf("first eviction after the hit chose the just-touched way %d", hot)
	}
	s.OnFill(v)
	// One more round: the hot way is still the youngest.
	if v := s.Victim(occupied); v == hot {
		t.Fatalf("second eviction chose the just-touched way %d; ages %v", hot, s.Ages())
	}
}
