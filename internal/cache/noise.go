package cache

// noisySet wraps a SetState and makes Victim deviate to a random occupied
// way with pct percent probability. It models adaptive / imperfectly
// reverse-engineered replacement behaviour (§4.2.2's footnote: the target
// LLC only approximately follows QLRU_H11_M1_R0_U0).
type noisySet struct {
	inner SetState
	pct   int
	rng   *Rand
}

// AddReplacementNoise wraps every set's replacement state so that victim
// selection deviates randomly pct percent of the time. Empty-way
// preference is preserved: only occupied-victim choices are perturbed.
func (c *Cache) AddReplacementNoise(pct int, rng *Rand) {
	if pct <= 0 || pct > 100 {
		panic("cache: replacement noise percent out of range")
	}
	if rng == nil {
		rng = NewRand(1)
	}
	for s := range c.state {
		c.state[s] = &noisySet{inner: c.state[s], pct: pct, rng: rng}
	}
}

// OnFill implements SetState.
func (n *noisySet) OnFill(way int) { n.inner.OnFill(way) }

// OnHit implements SetState.
func (n *noisySet) OnHit(way int) { n.inner.OnHit(way) }

// OnInvalidate implements SetState.
func (n *noisySet) OnInvalidate(way int) { n.inner.OnInvalidate(way) }

// Victim implements SetState.
func (n *noisySet) Victim(occupied []bool) int {
	if w, ok := firstEmpty(occupied); ok {
		// Keep the deterministic empty-way rule; also let the inner policy
		// observe the selection pressure it would have seen.
		return w
	}
	v := n.inner.Victim(occupied)
	if n.rng.Intn(100) < n.pct {
		return n.rng.Intn(len(occupied))
	}
	return v
}

// Reset implements SetState.
func (n *noisySet) Reset() { n.inner.Reset() }

// DebugString implements SetState.
func (n *noisySet) DebugString() string { return n.inner.DebugString() + "~noise" }
