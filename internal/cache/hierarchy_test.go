package cache

import (
	"testing"

	"specinterference/internal/mem"
)

// smallConfig is a 2-core hierarchy small enough to reason about by hand.
func smallConfig() Config {
	return Config{
		Cores:      2,
		L1I:        Geometry{Sets: 8, Ways: 2, Latency: 1},
		L1D:        Geometry{Sets: 8, Ways: 2, Latency: 4},
		L2:         Geometry{Sets: 16, Ways: 2, Latency: 12},
		LLC:        Geometry{Sets: 32, Ways: 4, Latency: 40},
		LLCSlices:  1,
		L1Policy:   PolicyLRU,
		LLCPolicy:  PolicyQLRU,
		MemLatency: 150,
		DMSHRs:     4,
		Seed:       1,
	}
}

func TestHierarchyMissLatencyStack(t *testing.T) {
	h := NewHierarchy(smallConfig())
	r := h.AccessData(0, 0x1000, KindDataRead, true, 100)
	// Cold miss: L1(4) + L2(12) + LLC(40) + Mem(150).
	if r.Level != LevelMem {
		t.Errorf("level = %s, want Mem", r.Level)
	}
	if want := int64(100 + 4 + 12 + 40 + 150); r.Ready != want {
		t.Errorf("ready = %d, want %d", r.Ready, want)
	}
}

func TestHierarchyHitLatencies(t *testing.T) {
	h := NewHierarchy(smallConfig())
	h.AccessData(0, 0x1000, KindDataRead, true, 0)
	// Now an L1 hit.
	r := h.AccessData(0, 0x1000, KindDataRead, true, 500)
	if r.Level != LevelL1 || r.Ready != 504 {
		t.Errorf("L1 hit = %s/%d", r.Level, r.Ready)
	}
	// Evict from L1 only: other core's L1 state does not matter.
	h.L1D(0).Invalidate(0x1000)
	r = h.AccessData(0, 0x1000, KindDataRead, true, 600)
	if r.Level != LevelL2 || r.Ready != 600+4+12 {
		t.Errorf("L2 hit = %s/%d", r.Level, r.Ready)
	}
	h.L1D(0).Invalidate(0x1000)
	h.L2(0).Invalidate(0x1000)
	r = h.AccessData(0, 0x1000, KindDataRead, true, 700)
	if r.Level != LevelLLC || r.Ready != 700+4+12+40 {
		t.Errorf("LLC hit = %s/%d", r.Level, r.Ready)
	}
}

func TestHierarchyNoL2(t *testing.T) {
	cfg := smallConfig()
	cfg.L2 = Geometry{}
	h := NewHierarchy(cfg)
	if h.HasL2() || h.L2(0) != nil {
		t.Fatal("L2 should be absent")
	}
	r := h.AccessData(0, 0x1000, KindDataRead, true, 0)
	if want := int64(4 + 40 + 150); r.Ready != want {
		t.Errorf("ready = %d, want %d", r.Ready, want)
	}
}

func TestHierarchyInvisibleAccessChangesNothing(t *testing.T) {
	h := NewHierarchy(smallConfig())
	r := h.AccessData(0, 0x2000, KindDataRead, false, 0)
	if r.Level != LevelMem {
		t.Errorf("level = %s", r.Level)
	}
	if h.L1D(0).Contains(0x2000) || h.L2(0).Contains(0x2000) || h.LLCSlice(0x2000).Contains(0x2000) {
		t.Error("invisible access must not fill any level")
	}
	if len(h.Log()) != 0 {
		t.Error("invisible access must not be logged")
	}
	// Invisible access still observes current contents for latency.
	h.Warm(0, 0x2000, LevelLLC)
	r = h.AccessData(0, 0x2000, KindDataRead, false, 0)
	if r.Level != LevelLLC {
		t.Errorf("invisible access should see warmed LLC, got %s", r.Level)
	}
}

func TestHierarchyVisibleLog(t *testing.T) {
	h := NewHierarchy(smallConfig())
	h.AccessData(0, 0x3000, KindDataRead, true, 10)  // miss → logged
	h.AccessData(0, 0x3000, KindDataRead, true, 400) // L1 hit → not logged
	h.AccessData(1, 0x3000, KindDataRead, true, 500) // other core: LLC hit → logged
	log := h.Log()
	if len(log) != 2 {
		t.Fatalf("log length = %d, want 2: %+v", len(log), log)
	}
	if log[0].Core != 0 || log[0].Line != 0x3000 || log[0].Hit {
		t.Errorf("log[0] = %+v", log[0])
	}
	if log[1].Core != 1 || !log[1].Hit {
		t.Errorf("log[1] = %+v", log[1])
	}
	h.ResetLog()
	if len(h.Log()) != 0 {
		t.Error("ResetLog failed")
	}
	h.SetLogging(false)
	h.AccessData(0, 0x9000, KindDataRead, true, 0)
	if len(h.Log()) != 0 {
		t.Error("logging-off still logged")
	}
}

func TestHierarchyInclusiveBackInvalidation(t *testing.T) {
	cfg := smallConfig()
	cfg.LLC = Geometry{Sets: 1, Ways: 2, Latency: 40} // tiny LLC forces evictions
	h := NewHierarchy(cfg)
	h.AccessData(0, 0x0000, KindDataRead, true, 0)
	h.AccessData(0, 0x0040, KindDataRead, true, 0)
	if !h.L1D(0).Contains(0x0000) {
		t.Fatal("line should be in L1")
	}
	// Third line evicts one of the first two from the LLC; the private
	// copies must be back-invalidated.
	h.AccessData(0, 0x0080, KindDataRead, true, 0)
	inLLC0 := h.LLCSlice(0).Contains(0x0000)
	inLLC1 := h.LLCSlice(0).Contains(0x0040)
	if inLLC0 && inLLC1 {
		t.Fatal("LLC eviction expected")
	}
	if !inLLC0 && h.L1D(0).Contains(0x0000) {
		t.Error("L1 copy survived LLC eviction (inclusion violated)")
	}
	if !inLLC1 && h.L1D(0).Contains(0x0040) {
		t.Error("L1 copy survived LLC eviction (inclusion violated)")
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := NewHierarchy(smallConfig())
	h.AccessData(0, 0x4000, KindDataRead, true, 0)
	h.AccessData(1, 0x4000, KindDataRead, true, 0)
	h.Flush(0x4000)
	if h.L1D(0).Contains(0x4000) || h.L1D(1).Contains(0x4000) ||
		h.L2(0).Contains(0x4000) || h.L2(1).Contains(0x4000) ||
		h.LLCSlice(0x4000).Contains(0x4000) {
		t.Error("flush must remove every copy")
	}
}

func TestHierarchyWarmLevels(t *testing.T) {
	h := NewHierarchy(smallConfig())
	h.Warm(0, 0x5000, LevelLLC)
	if h.L1D(0).Contains(0x5000) || h.L2(0).Contains(0x5000) {
		t.Error("Warm(LLC) must not fill private levels")
	}
	if !h.LLCSlice(0x5000).Contains(0x5000) {
		t.Error("Warm(LLC) must fill LLC")
	}
	h.Warm(0, 0x5040, LevelL2)
	if !h.L2(0).Contains(0x5040) || h.L1D(0).Contains(0x5040) {
		t.Error("Warm(L2) fills LLC+L2 only")
	}
	h.Warm(0, 0x5080, LevelL1)
	if !h.L1D(0).Contains(0x5080) || !h.L2(0).Contains(0x5080) {
		t.Error("Warm(L1) fills all levels")
	}
	if len(h.Log()) != 0 {
		t.Error("Warm must not log")
	}
}

func TestHierarchyWarmInst(t *testing.T) {
	h := NewHierarchy(smallConfig())
	h.WarmInst(0, 0x6000, LevelL1)
	if !h.L1I(0).Contains(0x6000) {
		t.Error("WarmInst should fill L1I")
	}
	r := h.AccessInst(0, 0x6000, true, 0)
	if r.Level != LevelL1 {
		t.Errorf("I-fetch level = %s", r.Level)
	}
}

func TestHierarchyInstFetchSeparateFromData(t *testing.T) {
	h := NewHierarchy(smallConfig())
	h.AccessInst(0, 0x7000, true, 0)
	if h.L1D(0).Contains(0x7000) {
		t.Error("I-fetch must not fill L1D")
	}
	if !h.L1I(0).Contains(0x7000) {
		t.Error("I-fetch should fill L1I")
	}
	// Both sides share the LLC.
	if !h.LLCSlice(0x7000).Contains(0x7000) {
		t.Error("I-fetch should fill LLC")
	}
	log := h.Log()
	if len(log) != 1 || log[0].Kind != KindInstFetch {
		t.Errorf("log = %+v", log)
	}
}

func TestHierarchyL1DHitAndTouch(t *testing.T) {
	h := NewHierarchy(smallConfig())
	if h.L1DHit(0, 0x8000) {
		t.Error("cold line reported hit")
	}
	h.Warm(0, 0x8000, LevelL1)
	if !h.L1DHit(0, 0x8000) {
		t.Error("warm line reported miss")
	}
	// TouchL1D is the DoM deferred replacement update; it must not panic
	// and must keep the line resident.
	h.TouchL1D(0, 0x8000)
	if !h.L1DHit(0, 0x8000) {
		t.Error("touch lost the line")
	}
}

func TestHierarchyMemJitterDeterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.MemJitter = 20
	h1 := NewHierarchy(cfg)
	h2 := NewHierarchy(cfg)
	for i := int64(0); i < 10; i++ {
		r1 := h1.AccessData(0, 0x10000+i*4096, KindDataRead, true, 0)
		r2 := h2.AccessData(0, 0x10000+i*4096, KindDataRead, true, 0)
		if r1.Ready != r2.Ready {
			t.Fatal("jitter must be reproducible for equal seeds")
		}
	}
}

func TestFindEvictionSet(t *testing.T) {
	cfg := smallConfig()
	cfg.LLCSlices = 2
	h := NewHierarchy(cfg)
	target := int64(0x9000)
	avoid := []int64{0xa000}
	ev := h.FindEvictionSet(target, 8, 0x100000, avoid)
	if len(ev) != 8 {
		t.Fatalf("got %d addresses", len(ev))
	}
	wantSet := mem.SetIndex(target, cfg.LLC.Sets)
	wantSlice := mem.SliceIndex(target, cfg.LLCSlices)
	seen := map[int64]bool{}
	for _, a := range ev {
		if mem.SetIndex(a, cfg.LLC.Sets) != wantSet {
			t.Errorf("addr %#x maps to wrong set", a)
		}
		if mem.SliceIndex(a, cfg.LLCSlices) != wantSlice {
			t.Errorf("addr %#x maps to wrong slice", a)
		}
		if a == mem.LineAddr(target) || a == mem.LineAddr(avoid[0]) {
			t.Errorf("addr %#x collides with target/avoid", a)
		}
		if seen[a] {
			t.Errorf("duplicate %#x", a)
		}
		seen[a] = true
	}
	// Accessing the eviction set must actually evict the target from LLC.
	h.Warm(0, target, LevelLLC)
	for round := 0; round < 3; round++ {
		for _, a := range ev {
			h.AccessData(1, a, KindDataRead, true, 0)
		}
	}
	if h.LLCSlice(target).Contains(target) {
		t.Error("eviction set failed to evict target")
	}
}

func TestHierarchyConstructorPanics(t *testing.T) {
	bad1 := smallConfig()
	bad1.Cores = 0
	bad2 := smallConfig()
	bad2.LLCSlices = 0
	for i, cfg := range []Config{bad1, bad2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			NewHierarchy(cfg)
		}()
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig(4)
	h := NewHierarchy(cfg)
	if h.Config().Cores != 4 {
		t.Error("cores")
	}
	r := h.AccessData(0, 0x1234, KindDataRead, true, 0)
	if r.Level != LevelMem || r.Ready <= 0 {
		t.Errorf("cold access = %+v", r)
	}
	if h.DMSHR(0).Cap() != 10 {
		t.Error("default MSHR count should be 10")
	}
}

func TestLevelAndKindStrings(t *testing.T) {
	if LevelL1.String() != "L1" || LevelMem.String() != "Mem" {
		t.Error("level names")
	}
	if KindDataRead.String() != "read" || KindInstFetch.String() != "fetch" {
		t.Error("kind names")
	}
	if Level(9).String() == "" || AccessKind(9).String() == "" {
		t.Error("unknown enums should still render")
	}
}
