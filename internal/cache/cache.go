package cache

import (
	"fmt"

	"specinterference/internal/mem"
)

// Stats counts cache events.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Fills       uint64
	Evictions   uint64
	Invalidates uint64
}

// Cache is one set-associative cache level (or one LLC slice). It tracks
// only tags and replacement state; data always comes from the flat memory,
// which is kept architecturally current (stores write through at retire).
type Cache struct {
	name   string
	sets   int
	ways   int
	lat    int
	policy PolicyKind
	state  []SetState
	lines  [][]int64 // line address per way, or -1 when invalid
	valid  [][]bool
	stats  Stats
}

// NewCache builds a cache. sets must be a power of two; lat is the hit
// latency in cycles. rng is required for PolicyRandom.
func NewCache(name string, sets, ways, lat int, policy PolicyKind, rng *Rand) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: sets %d not a positive power of two", name, sets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways %d must be positive", name, ways))
	}
	if lat < 1 {
		panic(fmt.Sprintf("cache %s: latency %d must be >= 1", name, lat))
	}
	c := &Cache{name: name, sets: sets, ways: ways, lat: lat, policy: policy}
	c.state = make([]SetState, sets)
	c.lines = make([][]int64, sets)
	c.valid = make([][]bool, sets)
	for s := 0; s < sets; s++ {
		c.state[s] = NewSetState(policy, ways, rng)
		c.lines[s] = make([]int64, ways)
		c.valid[s] = make([]bool, ways)
		for w := range c.lines[s] {
			c.lines[s][w] = -1
		}
	}
	return c
}

// Name returns the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Latency returns the hit latency in cycles.
func (c *Cache) Latency() int { return c.lat }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// SetOf returns the set index for addr.
func (c *Cache) SetOf(addr int64) int { return mem.SetIndex(addr, c.sets) }

func (c *Cache) find(addr int64) (set, way int, hit bool) {
	line := mem.LineAddr(addr)
	set = c.SetOf(addr)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.lines[set][w] == line {
			return set, w, true
		}
	}
	return set, -1, false
}

// Contains reports whether the line holding addr is present, without
// touching replacement state or statistics.
func (c *Cache) Contains(addr int64) bool {
	_, _, hit := c.find(addr)
	return hit
}

// Lookup probes for addr, counting a hit or miss but NOT updating
// replacement state. Callers that want the replacement side effect of a hit
// must call Touch (this split is what lets Delay-on-Miss defer replacement
// updates for speculative hits, §2.2).
func (c *Cache) Lookup(addr int64) bool {
	_, _, hit := c.find(addr)
	if hit {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return hit
}

// Touch applies the replacement hit-update for addr if present, returning
// whether it was. This is the deferred part of a speculative hit.
func (c *Cache) Touch(addr int64) bool {
	set, way, hit := c.find(addr)
	if !hit {
		return false
	}
	c.state[set].OnHit(way)
	return true
}

// Fill inserts the line containing addr, evicting if needed. It returns the
// evicted line address and whether an eviction of a valid line happened.
// Filling a line that is already present degenerates to Touch.
func (c *Cache) Fill(addr int64) (evicted int64, hasEvict bool) {
	set, way, hit := c.find(addr)
	if hit {
		c.state[set].OnHit(way)
		return 0, false
	}
	way = c.state[set].Victim(c.valid[set])
	if c.valid[set][way] {
		evicted = c.lines[set][way]
		hasEvict = true
		c.stats.Evictions++
	}
	c.lines[set][way] = mem.LineAddr(addr)
	c.valid[set][way] = true
	c.state[set].OnFill(way)
	c.stats.Fills++
	return evicted, hasEvict
}

// Invalidate removes the line containing addr, reporting whether it was
// present.
func (c *Cache) Invalidate(addr int64) bool {
	set, way, hit := c.find(addr)
	if !hit {
		return false
	}
	c.valid[set][way] = false
	c.lines[set][way] = -1
	c.state[set].OnInvalidate(way)
	c.stats.Invalidates++
	return true
}

// InvalidateAll empties the cache (used by MuonTrap's filter-cache flush on
// squash).
func (c *Cache) InvalidateAll() {
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			if c.valid[s][w] {
				c.valid[s][w] = false
				c.lines[s][w] = -1
				c.state[s].OnInvalidate(w)
				c.stats.Invalidates++
			}
		}
	}
}

// Reset restores the cache to its just-constructed state — every way
// invalid, replacement state fresh, statistics zeroed — reusing the
// existing arrays. Noise wrappers installed by AddReplacementNoise stay
// in place (their shared Rand is reseeded by the hierarchy).
func (c *Cache) Reset() {
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			c.lines[s][w] = -1
			c.valid[s][w] = false
		}
		c.state[s].Reset()
	}
	c.stats = Stats{}
}

// LinesInSet returns the valid line addresses currently in set, in way
// order (introspection for tests and receivers' documentation).
func (c *Cache) LinesInSet(set int) []int64 {
	var out []int64
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] {
			out = append(out, c.lines[set][w])
		}
	}
	return out
}

// SetState exposes the replacement state of a set for white-box tests.
func (c *Cache) SetState(set int) SetState { return c.state[set] }

// DumpSet renders a set for diagnostics.
func (c *Cache) DumpSet(set int) string {
	s := fmt.Sprintf("%s set %d:", c.name, set)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] {
			s += fmt.Sprintf(" [%d]=%#x", w, c.lines[set][w])
		} else {
			s += fmt.Sprintf(" [%d]=-", w)
		}
	}
	return s + " " + c.state[set].DebugString()
}
