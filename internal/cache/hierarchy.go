package cache

import (
	"fmt"

	"specinterference/internal/mem"
)

// Level identifies where in the hierarchy an access was served.
type Level int

// Hierarchy levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelLLC
	LevelMem
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelMem:
		return "Mem"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// AccessKind classifies a memory access.
type AccessKind int

// Access kinds.
const (
	KindDataRead AccessKind = iota
	KindDataWrite
	KindInstFetch
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case KindDataRead:
		return "read"
	case KindDataWrite:
		return "write"
	case KindInstFetch:
		return "fetch"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// VisibleAccess is one entry of the visible shared-cache access log: the
// C(E) abstraction of §5.1. The attacker model sees the *sequence* of
// visible LLC accesses without timing, so equality of logs is compared on
// (Core, Line, Kind) order; Cycle is retained for diagnostics only.
type VisibleAccess struct {
	Core  int
	Line  int64
	Kind  AccessKind
	Cycle int64
	// Hit reports whether the LLC held the line (diagnostics).
	Hit bool
}

// Geometry describes one cache level.
type Geometry struct {
	Sets    int
	Ways    int
	Latency int
}

// Config describes a hierarchy.
type Config struct {
	// Cores is the number of cores (each gets private L1I/L1D and, when
	// configured, a private L2).
	Cores int
	L1I   Geometry
	L1D   Geometry
	// L2 is optional: Sets == 0 disables the level.
	L2 Geometry
	// LLC is the per-slice geometry of the shared last-level cache.
	LLC Geometry
	// LLCSlices is the number of LLC slices (power of two).
	LLCSlices int
	// L1Policy is the replacement policy of private levels.
	L1Policy PolicyKind
	// LLCPolicy is the replacement policy of the shared LLC.
	LLCPolicy PolicyKind
	// MemLatency is the DRAM access latency in cycles.
	MemLatency int
	// MemJitter, when positive, adds a uniform [0, MemJitter] pseudo-random
	// extra latency to each DRAM access (used by the Figure 7 histogram
	// runs; zero for deterministic tests).
	MemJitter int
	// DMSHRs is the number of L1D miss-status holding registers per core.
	DMSHRs int
	// Seed seeds the deterministic RNG (random replacement, jitter).
	Seed uint64
	// LLCReplacementNoisePct, when positive, makes each LLC victim
	// selection deviate to a random way with the given percent
	// probability. It models the paper's observation (§4.2.2) that the
	// real machine's LLC only approximately follows QLRU (adaptive sets),
	// which is the D-Cache receiver's natural error source.
	LLCReplacementNoisePct int
}

// DefaultConfig returns a hierarchy shaped like a scaled-down Kaby Lake:
// 32KB 8-way L1s, 256KB 8-way private L2, 2MB-per-slice 16-way shared LLC
// over 4 slices, 10 L1D MSHRs.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:      cores,
		L1I:        Geometry{Sets: 64, Ways: 8, Latency: 1},
		L1D:        Geometry{Sets: 64, Ways: 8, Latency: 4},
		L2:         Geometry{Sets: 512, Ways: 8, Latency: 12},
		LLC:        Geometry{Sets: 2048, Ways: 16, Latency: 40},
		LLCSlices:  4,
		L1Policy:   PolicyLRU,
		LLCPolicy:  PolicyQLRU,
		MemLatency: 150,
		DMSHRs:     10,
		Seed:       1,
	}
}

// Response reports where an access was served and when its data is ready.
type Response struct {
	Level Level
	// Ready is the cycle at which the data reaches the core.
	Ready int64
}

// Hierarchy is the full memory-side system: per-core private caches over a
// shared, sliced, inclusive LLC over flat DRAM.
type Hierarchy struct {
	cfg  Config
	rng  *Rand
	l1i  []*Cache
	l1d  []*Cache
	l2   []*Cache
	mshr []*MSHRFile
	llc  []*Cache

	logOn bool
	log   []VisibleAccess
}

// NewHierarchy builds a hierarchy from cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	if cfg.Cores < 1 {
		panic("cache: need at least one core")
	}
	if cfg.LLCSlices < 1 {
		panic("cache: need at least one LLC slice")
	}
	h := &Hierarchy{cfg: cfg, rng: NewRand(cfg.Seed), logOn: true}
	for c := 0; c < cfg.Cores; c++ {
		h.l1i = append(h.l1i, NewCache(fmt.Sprintf("c%d.l1i", c),
			cfg.L1I.Sets, cfg.L1I.Ways, cfg.L1I.Latency, cfg.L1Policy, h.rng))
		h.l1d = append(h.l1d, NewCache(fmt.Sprintf("c%d.l1d", c),
			cfg.L1D.Sets, cfg.L1D.Ways, cfg.L1D.Latency, cfg.L1Policy, h.rng))
		if cfg.L2.Sets > 0 {
			h.l2 = append(h.l2, NewCache(fmt.Sprintf("c%d.l2", c),
				cfg.L2.Sets, cfg.L2.Ways, cfg.L2.Latency, cfg.L1Policy, h.rng))
		}
		h.mshr = append(h.mshr, NewMSHRFile(cfg.DMSHRs))
	}
	for s := 0; s < cfg.LLCSlices; s++ {
		c := NewCache(fmt.Sprintf("llc%d", s),
			cfg.LLC.Sets, cfg.LLC.Ways, cfg.LLC.Latency, cfg.LLCPolicy, h.rng)
		if cfg.LLCReplacementNoisePct > 0 {
			c.AddReplacementNoise(cfg.LLCReplacementNoisePct, h.rng)
		}
		h.llc = append(h.llc, c)
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// HasL2 reports whether a private L2 level exists.
func (h *Hierarchy) HasL2() bool { return len(h.l2) > 0 }

// DMSHR returns core's L1D miss-status holding register file.
func (h *Hierarchy) DMSHR(core int) *MSHRFile { return h.mshr[core] }

// LLCSlice returns the slice cache that addr maps to (receiver
// introspection and tests).
func (h *Hierarchy) LLCSlice(addr int64) *Cache {
	return h.llc[mem.SliceIndex(addr, h.cfg.LLCSlices)]
}

// L1D returns core's L1 data cache.
func (h *Hierarchy) L1D(core int) *Cache { return h.l1d[core] }

// L1I returns core's L1 instruction cache.
func (h *Hierarchy) L1I(core int) *Cache { return h.l1i[core] }

// L2 returns core's private L2 or nil.
func (h *Hierarchy) L2(core int) *Cache {
	if len(h.l2) == 0 {
		return nil
	}
	return h.l2[core]
}

// SetLogging toggles the visible-access log.
func (h *Hierarchy) SetLogging(on bool) { h.logOn = on }

// Log returns the visible LLC access log (C(E), §5.1).
func (h *Hierarchy) Log() []VisibleAccess { return h.log }

// ResetLog clears the visible-access log, retaining its capacity.
func (h *Hierarchy) ResetLog() { h.log = h.log[:0] }

// Reset restores the hierarchy to the state NewHierarchy would return for
// the same configuration with Seed set to seed, reusing every cache array
// and the log's capacity. It is the memory-side half of uarch.System.Reset.
func (h *Hierarchy) Reset(seed uint64) {
	h.cfg.Seed = seed
	h.rng.Reseed(seed)
	for _, c := range h.l1i {
		c.Reset()
	}
	for _, c := range h.l1d {
		c.Reset()
	}
	for _, c := range h.l2 {
		c.Reset()
	}
	for _, f := range h.mshr {
		f.Reset()
	}
	for _, c := range h.llc {
		c.Reset()
	}
	h.logOn = true
	h.log = h.log[:0]
}

func (h *Hierarchy) record(core int, addr int64, kind AccessKind, cycle int64, hit bool) {
	if h.logOn {
		h.log = append(h.log, VisibleAccess{
			Core: core, Line: mem.LineAddr(addr), Kind: kind, Cycle: cycle, Hit: hit,
		})
	}
}

func (h *Hierarchy) memLatency() int64 {
	lat := int64(h.cfg.MemLatency)
	if h.cfg.MemJitter > 0 {
		lat += int64(h.rng.Intn(h.cfg.MemJitter + 1))
	}
	return lat
}

// fillLLC installs a line into the LLC; inclusive back-invalidation evicts
// any private copies of the victim line in every core.
func (h *Hierarchy) fillLLC(addr int64) {
	slice := h.LLCSlice(addr)
	evicted, has := slice.Fill(addr)
	if !has {
		return
	}
	for c := 0; c < h.cfg.Cores; c++ {
		h.l1i[c].Invalidate(evicted)
		h.l1d[c].Invalidate(evicted)
		if h.HasL2() {
			h.l2[c].Invalidate(evicted)
		}
	}
}

// access walks the hierarchy starting at the given private L1 for core.
// When visible is false, no cache state anywhere changes and nothing is
// logged (the data still flows to the core: an "invisible" request in the
// sense of InvisiSpec/SafeSpec).
//
//speclint:allocfree
func (h *Hierarchy) access(core int, l1 *Cache, addr int64, kind AccessKind, visible bool, cycle int64) Response {
	t := cycle + int64(l1.Latency())
	if visible {
		if l1.Lookup(addr) {
			l1.Touch(addr)
			return Response{Level: LevelL1, Ready: t}
		}
	} else if l1.Contains(addr) {
		return Response{Level: LevelL1, Ready: t}
	}

	if h.HasL2() {
		l2 := h.l2[core]
		t += int64(l2.Latency())
		if visible {
			if l2.Lookup(addr) {
				l2.Touch(addr)
				l1.Fill(addr)
				return Response{Level: LevelL2, Ready: t}
			}
		} else if l2.Contains(addr) {
			return Response{Level: LevelL2, Ready: t}
		}
	}

	slice := h.LLCSlice(addr)
	t += int64(slice.Latency())
	if visible {
		hit := slice.Lookup(addr)
		h.record(core, addr, kind, cycle, hit)
		if hit {
			slice.Touch(addr)
			if h.HasL2() {
				h.l2[core].Fill(addr)
			}
			l1.Fill(addr)
			return Response{Level: LevelLLC, Ready: t}
		}
		t += h.memLatency()
		h.fillLLC(addr)
		if h.HasL2() {
			h.l2[core].Fill(addr)
		}
		l1.Fill(addr)
		return Response{Level: LevelMem, Ready: t}
	}
	if slice.Contains(addr) {
		return Response{Level: LevelLLC, Ready: t}
	}
	t += h.memLatency()
	return Response{Level: LevelMem, Ready: t}
}

// AccessData performs a data access for core at cycle. Invisible accesses
// change no cache state (they model protected speculative loads).
//
//speclint:allocfree
func (h *Hierarchy) AccessData(core int, addr int64, kind AccessKind, visible bool, cycle int64) Response {
	return h.access(core, h.l1d[core], addr, kind, visible, cycle)
}

// AccessInst performs an instruction fetch for core at cycle.
//
//speclint:allocfree
func (h *Hierarchy) AccessInst(core int, addr int64, visible bool, cycle int64) Response {
	return h.access(core, h.l1i[core], addr, KindInstFetch, visible, cycle)
}

// L1DHit reports whether addr would hit core's L1D, with no side effects.
// Delay-on-Miss consults this to decide between "execute invisibly" and
// "delay" (§2.2).
func (h *Hierarchy) L1DHit(core int, addr int64) bool {
	return h.l1d[core].Contains(addr)
}

// TouchL1D applies the deferred replacement update of a Delay-on-Miss
// speculative hit once the load becomes safe.
func (h *Hierarchy) TouchL1D(core int, addr int64) { h.l1d[core].Touch(addr) }

// Flush evicts the line containing addr from every cache in the system
// (clflush semantics: coherence removes all copies).
func (h *Hierarchy) Flush(addr int64) {
	for c := 0; c < h.cfg.Cores; c++ {
		h.l1i[c].Invalidate(addr)
		h.l1d[c].Invalidate(addr)
		if h.HasL2() {
			h.l2[c].Invalidate(addr)
		}
	}
	h.LLCSlice(addr).Invalidate(addr)
}

// Warm installs the line containing addr into the hierarchy down to the
// given level for core, without logging or timing: an experiment-setup
// helper used to prime cache contents before a measured run.
//
//	Warm(c, a, LevelL1)  → LLC, L2 and L1D hold the line
//	Warm(c, a, LevelLLC) → only the LLC holds the line
func (h *Hierarchy) Warm(core int, addr int64, level Level) {
	wasOn := h.logOn
	h.logOn = false
	defer func() { h.logOn = wasOn }()
	h.fillLLC(addr)
	if level == LevelLLC {
		return
	}
	if h.HasL2() {
		h.l2[core].Fill(addr)
	}
	if level == LevelL2 {
		return
	}
	h.l1d[core].Fill(addr)
}

// WarmInst is Warm for the instruction side.
func (h *Hierarchy) WarmInst(core int, addr int64, level Level) {
	wasOn := h.logOn
	h.logOn = false
	defer func() { h.logOn = wasOn }()
	h.fillLLC(addr)
	if level == LevelLLC {
		return
	}
	if h.HasL2() {
		h.l2[core].Fill(addr)
	}
	if level == LevelL2 {
		return
	}
	h.l1i[core].Fill(addr)
}

// FindEvictionSet returns n distinct line addresses that map to the same
// LLC set and slice as target, excluding target's own line and every line
// in avoid. Candidates are scanned upward from startHint (line-aligned).
// This is the simulator analog of the eviction-set construction the PoCs
// borrow from Liu et al. (§4.1): the attacker knows the geometry.
func (h *Hierarchy) FindEvictionSet(target int64, n int, startHint int64, avoid []int64) []int64 {
	// The exclusion check is a linear scan over the (tiny) avoid list
	// rather than a per-call map: this runs in trial setup for every cell
	// of the campaign matrix, and the map allocation dominated its cost.
	excluded := func(cand int64) bool {
		if cand == mem.LineAddr(target) {
			return true
		}
		for _, a := range avoid {
			if cand == mem.LineAddr(a) {
				return true
			}
		}
		return false
	}
	wantSet := mem.SetIndex(target, h.cfg.LLC.Sets)
	wantSlice := mem.SliceIndex(target, h.cfg.LLCSlices)
	var out []int64
	for cand := mem.LineAddr(startHint); len(out) < n; cand += mem.LineBytes {
		if mem.SetIndex(cand, h.cfg.LLC.Sets) == wantSet &&
			mem.SliceIndex(cand, h.cfg.LLCSlices) == wantSlice &&
			!excluded(cand) {
			out = append(out, cand)
		}
	}
	return out
}
