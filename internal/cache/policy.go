// Package cache implements the memory-side substrate of the simulator:
// parametric set-associative caches with pluggable replacement policies
// (including the QLRU_H11_M1_R0_U0 policy reverse-engineered from the
// paper's Kaby Lake target in §4.2.2), miss-status-holding-register files,
// per-core private levels, a shared sliced last-level cache with inclusive
// back-invalidation, a visible-access log implementing the C(E) abstraction
// of §5.1, and eviction-set construction for the attacker's receiver.
package cache

import (
	"fmt"
	"strings"
)

// PolicyKind selects a replacement policy.
type PolicyKind int

// Replacement policies.
const (
	// PolicyLRU is true least-recently-used.
	PolicyLRU PolicyKind = iota
	// PolicyTreePLRU is tree pseudo-LRU (ways must be a power of two).
	PolicyTreePLRU
	// PolicyNRU is not-recently-used (single reference bit).
	PolicyNRU
	// PolicySRRIP is 2-bit static re-reference interval prediction.
	PolicySRRIP
	// PolicyQLRU is QLRU_H11_M1_R0_U0, the quad-age LRU variant the paper
	// identified on its Kaby Lake LLC sets (§4.2.2).
	PolicyQLRU
	// PolicyRandom picks uniformly random victims (CleanupSpec-style
	// randomized replacement; the §6 mitigation discussion).
	PolicyRandom
)

// String implements fmt.Stringer.
func (k PolicyKind) String() string {
	switch k {
	case PolicyLRU:
		return "lru"
	case PolicyTreePLRU:
		return "tree-plru"
	case PolicyNRU:
		return "nru"
	case PolicySRRIP:
		return "srrip"
	case PolicyQLRU:
		return "qlru_h11_m1_r0_u0"
	case PolicyRandom:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// SetState is the replacement state of a single cache set. Implementations
// are not safe for concurrent use; the simulator is single-threaded per
// system.
type SetState interface {
	// OnFill records that a line was inserted into way.
	OnFill(way int)
	// OnHit records a hit on way.
	OnHit(way int)
	// Victim selects the way for an incoming fill. occupied[i] reports
	// whether way i currently holds a valid line. Victim may mutate state
	// (e.g., QLRU's U0 aging runs during victim selection).
	Victim(occupied []bool) int
	// OnInvalidate records that way was invalidated.
	OnInvalidate(way int)
	// Reset restores the state a freshly-constructed set would have,
	// without allocating.
	Reset()
	// DebugString renders the state for diagnostics.
	DebugString() string
}

// NewSetState constructs the per-set state for a policy. rng is used only
// by PolicyRandom; it must not be nil for that policy.
func NewSetState(k PolicyKind, ways int, rng *Rand) SetState {
	switch k {
	case PolicyLRU:
		return NewLRUSet(ways)
	case PolicyTreePLRU:
		return NewTreePLRUSet(ways)
	case PolicyNRU:
		return NewNRUSet(ways)
	case PolicySRRIP:
		return NewSRRIPSet(ways)
	case PolicyQLRU:
		return NewQLRUSet(ways)
	case PolicyRandom:
		if rng == nil {
			panic("cache: PolicyRandom requires a Rand")
		}
		return NewRandomSet(ways, rng)
	default:
		panic(fmt.Sprintf("cache: unknown policy %d", int(k)))
	}
}

func firstEmpty(occupied []bool) (int, bool) {
	for i, occ := range occupied {
		if !occ {
			return i, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// LRU

// LRUSet is true LRU via monotonically increasing use stamps.
type LRUSet struct {
	stamp []uint64
	clock uint64
}

// NewLRUSet returns LRU state for a set with the given associativity.
func NewLRUSet(ways int) *LRUSet { return &LRUSet{stamp: make([]uint64, ways)} }

func (s *LRUSet) touch(way int) {
	s.clock++
	s.stamp[way] = s.clock
}

// OnFill implements SetState.
func (s *LRUSet) OnFill(way int) { s.touch(way) }

// OnHit implements SetState.
func (s *LRUSet) OnHit(way int) { s.touch(way) }

// Victim implements SetState: leftmost empty way, else the least recently
// used occupied way.
func (s *LRUSet) Victim(occupied []bool) int {
	if w, ok := firstEmpty(occupied); ok {
		return w
	}
	victim, best := 0, s.stamp[0]
	for w := 1; w < len(s.stamp); w++ {
		if s.stamp[w] < best {
			victim, best = w, s.stamp[w]
		}
	}
	return victim
}

// OnInvalidate implements SetState.
func (s *LRUSet) OnInvalidate(way int) { s.stamp[way] = 0 }

// Reset implements SetState.
func (s *LRUSet) Reset() {
	clear(s.stamp)
	s.clock = 0
}

// DebugString implements SetState.
func (s *LRUSet) DebugString() string { return fmt.Sprintf("lru%v", s.stamp) }

// ---------------------------------------------------------------------------
// Tree PLRU

// TreePLRUSet is tree pseudo-LRU over a power-of-two number of ways.
type TreePLRUSet struct {
	ways int
	// bits is a perfect binary tree in heap order; bits[i]==false points
	// left (lower ways), true points right.
	bits []bool
}

// NewTreePLRUSet returns tree-PLRU state; ways must be a power of two >= 2.
func NewTreePLRUSet(ways int) *TreePLRUSet {
	if ways < 2 || ways&(ways-1) != 0 {
		panic(fmt.Sprintf("cache: tree-plru needs power-of-two ways, got %d", ways))
	}
	return &TreePLRUSet{ways: ways, bits: make([]bool, ways-1)}
}

// touch makes way the most recently used: every tree node on the path is
// pointed away from it.
func (s *TreePLRUSet) touch(way int) {
	node := 0
	lo, hi := 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			s.bits[node] = true // point away: right
			node = 2*node + 1
			hi = mid
		} else {
			s.bits[node] = false // point away: left
			node = 2*node + 2
			lo = mid
		}
	}
}

// OnFill implements SetState.
func (s *TreePLRUSet) OnFill(way int) { s.touch(way) }

// OnHit implements SetState.
func (s *TreePLRUSet) OnHit(way int) { s.touch(way) }

// Victim implements SetState.
func (s *TreePLRUSet) Victim(occupied []bool) int {
	if w, ok := firstEmpty(occupied); ok {
		return w
	}
	node := 0
	lo, hi := 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if !s.bits[node] {
			node = 2*node + 1
			hi = mid
		} else {
			node = 2*node + 2
			lo = mid
		}
	}
	return lo
}

// OnInvalidate implements SetState. PLRU keeps no per-way state to clear.
func (s *TreePLRUSet) OnInvalidate(int) {}

// Reset implements SetState.
func (s *TreePLRUSet) Reset() { clear(s.bits) }

// DebugString implements SetState.
func (s *TreePLRUSet) DebugString() string { return fmt.Sprintf("plru%v", s.bits) }

// ---------------------------------------------------------------------------
// NRU

// NRUSet is not-recently-used: one reference bit per way.
type NRUSet struct {
	ref []bool
}

// NewNRUSet returns NRU state.
func NewNRUSet(ways int) *NRUSet { return &NRUSet{ref: make([]bool, ways)} }

// OnFill implements SetState.
func (s *NRUSet) OnFill(way int) { s.ref[way] = true }

// OnHit implements SetState.
func (s *NRUSet) OnHit(way int) { s.ref[way] = true }

// Victim implements SetState: leftmost empty, else leftmost way with a
// clear reference bit, clearing all bits when none is clear.
func (s *NRUSet) Victim(occupied []bool) int {
	if w, ok := firstEmpty(occupied); ok {
		return w
	}
	for w, r := range s.ref {
		if !r {
			return w
		}
	}
	for w := range s.ref {
		s.ref[w] = false
	}
	return 0
}

// OnInvalidate implements SetState.
func (s *NRUSet) OnInvalidate(way int) { s.ref[way] = false }

// Reset implements SetState.
func (s *NRUSet) Reset() { clear(s.ref) }

// DebugString implements SetState.
func (s *NRUSet) DebugString() string { return fmt.Sprintf("nru%v", s.ref) }

// ---------------------------------------------------------------------------
// SRRIP

// SRRIPSet is 2-bit static RRIP (Jaleel et al.): insert at RRPV 2, promote
// to 0 on hit, evict the leftmost way with RRPV 3, aging all ways until one
// exists.
type SRRIPSet struct {
	rrpv []uint8
}

// NewSRRIPSet returns SRRIP state.
func NewSRRIPSet(ways int) *SRRIPSet { return &SRRIPSet{rrpv: make([]uint8, ways)} }

// OnFill implements SetState.
func (s *SRRIPSet) OnFill(way int) { s.rrpv[way] = 2 }

// OnHit implements SetState.
func (s *SRRIPSet) OnHit(way int) { s.rrpv[way] = 0 }

// Victim implements SetState.
func (s *SRRIPSet) Victim(occupied []bool) int {
	if w, ok := firstEmpty(occupied); ok {
		return w
	}
	for {
		for w, v := range s.rrpv {
			if v == 3 {
				return w
			}
		}
		for w := range s.rrpv {
			if s.rrpv[w] < 3 {
				s.rrpv[w]++
			}
		}
	}
}

// OnInvalidate implements SetState.
func (s *SRRIPSet) OnInvalidate(way int) { s.rrpv[way] = 0 }

// Reset implements SetState.
func (s *SRRIPSet) Reset() { clear(s.rrpv) }

// DebugString implements SetState.
func (s *SRRIPSet) DebugString() string { return fmt.Sprintf("srrip%v", s.rrpv) }

// ---------------------------------------------------------------------------
// QLRU_H11_M1_R0_U0

// QLRUSet implements QLRU_H11_M1_R0_U0, the quad-age LRU variant that the
// paper identified (via nanoBench/CacheQuery) on the Kaby Lake LLC sets it
// attacks (§4.2.2). Sub-policies, quoting the paper:
//
//   - M1 insertion: new lines enter with age 1.
//   - H11 hit promotion: age 3 -> 1, age 2 -> 1, age 1 or 0 -> 0.
//   - R0 eviction: insert into the leftmost empty way when the set is not
//     full; otherwise evict the leftmost way whose age is 3.
//   - U0 aging: when an eviction is needed and no way has age 3, increment
//     every way's age (saturating at 3) until a victim candidate exists.
//
// The D-Cache PoC receiver (internal/core) decodes load-issue *order* from
// exactly these rules.
type QLRUSet struct {
	age []uint8
}

// NewQLRUSet returns QLRU state.
func NewQLRUSet(ways int) *QLRUSet { return &QLRUSet{age: make([]uint8, ways)} }

// OnFill implements SetState (M1: insertion age 1).
func (s *QLRUSet) OnFill(way int) { s.age[way] = 1 }

// OnHit implements SetState (H11 promotion).
func (s *QLRUSet) OnHit(way int) {
	switch s.age[way] {
	case 3, 2:
		s.age[way] = 1
	default:
		s.age[way] = 0
	}
}

// Victim implements SetState (R0 eviction with U0 aging).
func (s *QLRUSet) Victim(occupied []bool) int {
	if w, ok := firstEmpty(occupied); ok {
		return w
	}
	for {
		for w, a := range s.age {
			if a == 3 {
				return w
			}
		}
		// U0: age everything until a candidate appears.
		for w := range s.age {
			if s.age[w] < 3 {
				s.age[w]++
			}
		}
	}
}

// OnInvalidate implements SetState.
func (s *QLRUSet) OnInvalidate(way int) { s.age[way] = 0 }

// Reset implements SetState.
func (s *QLRUSet) Reset() { clear(s.age) }

// Ages returns a copy of the per-way age vector (for tests and the
// replacement-state receiver's documentation of Figure 8).
func (s *QLRUSet) Ages() []uint8 {
	out := make([]uint8, len(s.age))
	copy(out, s.age)
	return out
}

// DebugString implements SetState.
func (s *QLRUSet) DebugString() string {
	var b strings.Builder
	b.WriteString("qlru[")
	for i, a := range s.age {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", a)
	}
	b.WriteString("]")
	return b.String()
}

// ---------------------------------------------------------------------------
// Random

// RandomSet picks uniformly random victims among occupied ways.
type RandomSet struct {
	ways int
	rng  *Rand
}

// NewRandomSet returns random-replacement state drawing from rng.
func NewRandomSet(ways int, rng *Rand) *RandomSet {
	return &RandomSet{ways: ways, rng: rng}
}

// OnFill implements SetState.
func (s *RandomSet) OnFill(int) {}

// OnHit implements SetState.
func (s *RandomSet) OnHit(int) {}

// Victim implements SetState.
func (s *RandomSet) Victim(occupied []bool) int {
	if w, ok := firstEmpty(occupied); ok {
		return w
	}
	return int(s.rng.Uint64() % uint64(s.ways))
}

// OnInvalidate implements SetState.
func (s *RandomSet) OnInvalidate(int) {}

// Reset implements SetState. The shared Rand is reseeded by the hierarchy,
// not per set.
func (s *RandomSet) Reset() {}

// DebugString implements SetState.
func (s *RandomSet) DebugString() string { return "random" }

// ---------------------------------------------------------------------------

// Rand is a small deterministic xorshift64* generator so the simulator does
// not depend on math/rand ordering and is reproducible across runs.
type Rand struct{ state uint64 }

// NewRand seeds a generator; seed 0 is remapped to a fixed non-zero value.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Reseed restarts the stream as if the generator had been built with
// NewRand(seed), with the same zero-seed remapping.
func (r *Rand) Reseed(seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r.state = seed
}

// Uint64 returns the next pseudo-random value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("cache: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}
