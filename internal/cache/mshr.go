package cache

import (
	"math"

	"specinterference/internal/mem"
)

// MSHRFile models a file of miss-status holding registers. Each entry
// tracks one outstanding cache-line miss; same-line misses coalesce into
// the existing entry. Entries free when their fill completes. A full file
// blocks new misses from issuing — the structural hazard the GDMSHR
// interference gadget (§3.2.2) exhausts.
//
// Allocation is in request order with no reservation for older
// instructions, matching the paper's observation that invisible-speculation
// proposals "use the standard policy of allocating an MSHR to a missing
// load based on issue order".
type MSHRFile struct {
	cap     int
	entries []mshrEntry

	// stats
	allocs    uint64
	coalesces uint64
	fullStall uint64
}

type mshrEntry struct {
	line  int64
	ready int64
}

// NewMSHRFile returns a file with capacity entries.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity < 1 {
		panic("cache: MSHR capacity must be >= 1")
	}
	return &MSHRFile{cap: capacity}
}

// Cap returns the file capacity.
func (f *MSHRFile) Cap() int { return f.cap }

// reap drops entries whose fills completed at or before now.
func (f *MSHRFile) reap(now int64) {
	kept := f.entries[:0]
	for _, e := range f.entries {
		if e.ready > now {
			kept = append(kept, e)
		}
	}
	f.entries = kept
}

// InUse returns the number of live entries at cycle now.
func (f *MSHRFile) InUse(now int64) int {
	f.reap(now)
	return len(f.entries)
}

// Lookup reports whether an entry for addr's line is outstanding at cycle
// now, returning its fill-ready cycle (coalescing consumers wait for it).
func (f *MSHRFile) Lookup(addr, now int64) (ready int64, ok bool) {
	f.reap(now)
	line := mem.LineAddr(addr)
	for _, e := range f.entries {
		if e.line == line {
			f.coalesces++
			return e.ready, true
		}
	}
	return 0, false
}

// Allocate claims an entry for addr's line, with the fill completing at
// ready. It returns false when the file is full (the requester must retry).
// Callers must Lookup first; allocating a duplicate line is a logic error
// and panics.
func (f *MSHRFile) Allocate(addr, ready, now int64) bool {
	f.reap(now)
	line := mem.LineAddr(addr)
	for _, e := range f.entries {
		if e.line == line {
			panic("cache: MSHR double allocation — Lookup before Allocate")
		}
	}
	if len(f.entries) >= f.cap {
		f.fullStall++
		return false
	}
	f.entries = append(f.entries, mshrEntry{line: line, ready: ready})
	f.allocs++
	return true
}

// NextReady returns the earliest cycle strictly after now at which an
// outstanding entry's fill completes (freeing its slot for retrying
// loads), or math.MaxInt64 when nothing is pending. It mutates nothing —
// idle-cycle fast-forward (uarch.System) polls it between ticks.
func (f *MSHRFile) NextReady(now int64) int64 {
	next := int64(math.MaxInt64)
	for _, e := range f.entries {
		if e.ready > now && e.ready < next {
			next = e.ready
		}
	}
	return next
}

// Clear empties the file (used when resetting a system between trials).
func (f *MSHRFile) Clear() { f.entries = f.entries[:0] }

// Reset empties the file and zeroes its statistics, restoring the state
// NewMSHRFile returns.
func (f *MSHRFile) Reset() {
	f.Clear()
	f.allocs, f.coalesces, f.fullStall = 0, 0, 0
}

// MSHRStats summarizes file activity.
type MSHRStats struct {
	Allocs     uint64
	Coalesces  uint64
	FullStalls uint64
}

// Stats returns activity counters.
func (f *MSHRFile) Stats() MSHRStats {
	return MSHRStats{Allocs: f.allocs, Coalesces: f.coalesces, FullStalls: f.fullStall}
}
