package cache

import (
	"testing"
	"testing/quick"
)

func occ(n int, occupied ...int) []bool {
	o := make([]bool, n)
	for _, i := range occupied {
		o[i] = true
	}
	return o
}

func full(n int) []bool {
	o := make([]bool, n)
	for i := range o {
		o[i] = true
	}
	return o
}

func TestPolicyKindString(t *testing.T) {
	kinds := []PolicyKind{PolicyLRU, PolicyTreePLRU, PolicyNRU, PolicySRRIP, PolicyQLRU, PolicyRandom}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("bad or duplicate name %q", s)
		}
		seen[s] = true
	}
	if PolicyKind(99).String() != "policy(99)" {
		t.Error("unknown policy name")
	}
}

func TestNewSetStateAllKinds(t *testing.T) {
	rng := NewRand(7)
	for _, k := range []PolicyKind{PolicyLRU, PolicyTreePLRU, PolicyNRU, PolicySRRIP, PolicyQLRU, PolicyRandom} {
		s := NewSetState(k, 4, rng)
		if s == nil {
			t.Fatalf("nil state for %s", k)
		}
		if s.DebugString() == "" {
			t.Errorf("%s: empty debug string", k)
		}
	}
}

func TestNewSetStateRandomNeedsRand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSetState(PolicyRandom, 4, nil)
}

func TestNewSetStateUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSetState(PolicyKind(42), 4, nil)
}

func TestLRUVictimOrder(t *testing.T) {
	s := NewLRUSet(4)
	// Fill 0..3; victim should be way 0 (oldest).
	for w := 0; w < 4; w++ {
		s.OnFill(w)
	}
	if v := s.Victim(full(4)); v != 0 {
		t.Errorf("victim = %d, want 0", v)
	}
	// Touch way 0; victim becomes way 1.
	s.OnHit(0)
	if v := s.Victim(full(4)); v != 1 {
		t.Errorf("victim after hit = %d, want 1", v)
	}
}

func TestLRUPrefersEmptyWay(t *testing.T) {
	s := NewLRUSet(4)
	s.OnFill(0)
	if v := s.Victim(occ(4, 0)); v != 1 {
		t.Errorf("victim = %d, want first empty way 1", v)
	}
}

func TestLRUInvalidate(t *testing.T) {
	s := NewLRUSet(2)
	s.OnFill(0)
	s.OnFill(1)
	s.OnInvalidate(1)
	// Way 1 stamp cleared: with both occupied it would be the victim.
	if v := s.Victim(full(2)); v != 1 {
		t.Errorf("victim = %d, want invalidated way 1", v)
	}
}

func TestTreePLRUBasic(t *testing.T) {
	s := NewTreePLRUSet(4)
	for w := 0; w < 4; w++ {
		s.OnFill(w)
	}
	// After filling 0,1,2,3 in order, PLRU should evict from the left half.
	v := s.Victim(full(4))
	if v != 0 && v != 1 {
		t.Errorf("victim = %d, want left half", v)
	}
	// Victim never points at the most recently touched way.
	for w := 0; w < 4; w++ {
		s.OnHit(w)
		if got := s.Victim(full(4)); got == w {
			t.Errorf("victim %d equals MRU way %d", got, w)
		}
	}
}

func TestTreePLRUNeedsPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTreePLRUSet(6)
}

func TestNRUVictim(t *testing.T) {
	s := NewNRUSet(4)
	for w := 0; w < 4; w++ {
		s.OnFill(w)
	}
	// All referenced: Victim clears everything and returns way 0.
	if v := s.Victim(full(4)); v != 0 {
		t.Errorf("victim = %d, want 0", v)
	}
	// After the clear, touching way 0 makes way 1 the next victim.
	s.OnHit(0)
	if v := s.Victim(full(4)); v != 1 {
		t.Errorf("victim = %d, want 1", v)
	}
}

func TestSRRIPInsertAndPromote(t *testing.T) {
	s := NewSRRIPSet(2)
	s.OnFill(0)
	s.OnFill(1)
	s.OnHit(0) // way0 rrpv=0, way1 rrpv=2
	// Aging: way1 reaches 3 first.
	if v := s.Victim(full(2)); v != 1 {
		t.Errorf("victim = %d, want 1", v)
	}
}

func TestRandomVictimInRangeAndDeterministic(t *testing.T) {
	s1 := NewRandomSet(8, NewRand(42))
	s2 := NewRandomSet(8, NewRand(42))
	for i := 0; i < 100; i++ {
		v1 := s1.Victim(full(8))
		v2 := s2.Victim(full(8))
		if v1 != v2 {
			t.Fatal("random policy not reproducible with equal seeds")
		}
		if v1 < 0 || v1 >= 8 {
			t.Fatalf("victim %d out of range", v1)
		}
	}
}

// --- QLRU_H11_M1_R0_U0: the paper's §4.2.2 policy ---

func TestQLRUInsertionAgeM1(t *testing.T) {
	s := NewQLRUSet(4)
	s.OnFill(2)
	if ages := s.Ages(); ages[2] != 1 {
		t.Errorf("insert age = %d, want 1 (M1)", ages[2])
	}
}

func TestQLRUHitPromotionH11(t *testing.T) {
	cases := []struct{ before, after uint8 }{{3, 1}, {2, 1}, {1, 0}, {0, 0}}
	for _, c := range cases {
		s := NewQLRUSet(1)
		s.age[0] = c.before
		s.OnHit(0)
		if s.age[0] != c.after {
			t.Errorf("hit on age %d -> %d, want %d (H11)", c.before, s.age[0], c.after)
		}
	}
}

func TestQLRUVictimR0LeftmostEmpty(t *testing.T) {
	s := NewQLRUSet(4)
	if v := s.Victim(occ(4, 0, 2)); v != 1 {
		t.Errorf("victim = %d, want leftmost empty way 1 (R0)", v)
	}
}

func TestQLRUVictimU0Aging(t *testing.T) {
	s := NewQLRUSet(4)
	s.age = []uint8{0, 1, 2, 1}
	v := s.Victim(full(4))
	// U0 increments all by 1 until a 3 exists: {1,2,3,2} -> way 2 evicted.
	if v != 2 {
		t.Errorf("victim = %d, want 2", v)
	}
	wantAges := []uint8{1, 2, 3, 2}
	for i, a := range s.Ages() {
		if a != wantAges[i] {
			t.Errorf("age[%d] = %d, want %d", i, a, wantAges[i])
		}
	}
}

func TestQLRUVictimLeftmostAge3(t *testing.T) {
	s := NewQLRUSet(4)
	s.age = []uint8{2, 3, 3, 0}
	if v := s.Victim(full(4)); v != 1 {
		t.Errorf("victim = %d, want leftmost age-3 way 1", v)
	}
}

func TestQLRUInvalidate(t *testing.T) {
	s := NewQLRUSet(2)
	s.age = []uint8{3, 3}
	s.OnInvalidate(0)
	if s.Ages()[0] != 0 {
		t.Error("invalidate should clear age")
	}
}

// TestQLRUFigure8StateEvolution walks the exact prime → victim → probe
// sequence of Figure 8 on a 16-way set and checks the paper's key claim:
// after the full sequence only one of {A, B} remains resident, and which
// one depends on the victim's access order.
func TestQLRUFigure8StateEvolution(t *testing.T) {
	const ways = 16
	run := func(victimOrder string) (aResident, bResident bool) {
		c := NewCache("llc", 1, ways, 1, PolicyQLRU, nil)
		// 15-line eviction sets EVS1 (EV0-EV14) and EVS2 (EV15-EV29).
		evs1 := make([]int64, 15)
		evs2 := make([]int64, 15)
		for i := range evs1 {
			evs1[i] = int64(i+1) * 64
			evs2[i] = int64(i+16) * 64
		}
		addrA := int64(31 * 64)
		addrB := int64(32 * 64)
		// Prime: access EVS1 many times (saturate ages at 0), then A.
		for round := 0; round < 4; round++ {
			for _, a := range evs1 {
				c.Fill(a)
			}
		}
		c.Fill(addrA)
		// Victim accesses in secret-dependent order.
		if victimOrder == "A-B" {
			c.Fill(addrA)
			c.Fill(addrB)
		} else {
			c.Fill(addrB)
			c.Fill(addrA)
		}
		// Probe: access EVS2.
		for _, a := range evs2 {
			c.Fill(a)
		}
		return c.Contains(addrA), c.Contains(addrB)
	}

	aRes, bRes := run("A-B")
	if aRes || !bRes {
		t.Errorf("A-B: residency A=%v B=%v, want A evicted, B resident", aRes, bRes)
	}
	aRes, bRes = run("B-A")
	if !aRes || bRes {
		t.Errorf("B-A: residency A=%v B=%v, want A resident, B evicted", aRes, bRes)
	}
}

// TestQLRUFigure8IntermediateStates pins down the intermediate set states
// the paper draws in Figure 8 (a) and (b) for the A-B order.
func TestQLRUFigure8IntermediateStates(t *testing.T) {
	const ways = 16
	c := NewCache("llc", 1, ways, 1, PolicyQLRU, nil)
	evs1 := make([]int64, 15)
	for i := range evs1 {
		evs1[i] = int64(i+1) * 64
	}
	addrA := int64(31 * 64)
	addrB := int64(32 * 64)
	for round := 0; round < 4; round++ {
		for _, a := range evs1 {
			c.Fill(a)
		}
	}
	c.Fill(addrA)
	qs := c.SetState(0).(*QLRUSet)
	ages := qs.Ages()
	// After prime: EVS1 saturated at age 0, A inserted at age 1.
	for w := 0; w < 15; w++ {
		if ages[w] != 0 {
			t.Errorf("after prime: age[%d] = %d, want 0", w, ages[w])
		}
	}
	if ages[15] != 1 {
		t.Errorf("after prime: age[A] = %d, want 1 (M1)", ages[15])
	}
	// Victim A-B: hit on A (1->0), then miss on B ages everything to 3 and
	// evicts the leftmost line (EV0), inserting B at age 1.
	c.Fill(addrA)
	c.Fill(addrB)
	if !c.Contains(addrB) || c.Contains(evs1[0]) {
		t.Error("B should replace EV0")
	}
	ages = qs.Ages()
	if ages[0] != 1 {
		t.Errorf("B age = %d, want 1", ages[0])
	}
	for w := 1; w < 16; w++ {
		if ages[w] != 3 {
			t.Errorf("age[%d] = %d, want 3 after U0 aging", w, ages[w])
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(5), NewRand(5)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRand(0).Uint64() == 0 {
		t.Error("zero seed must still produce values")
	}
}

func TestRandIntn(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Intn(0)")
		}
	}()
	r.Intn(0)
}

// Property: for every policy, Victim always returns an in-range way and
// prefers an empty way when one exists.
func TestVictimPropertyAllPolicies(t *testing.T) {
	rng := NewRand(3)
	for _, k := range []PolicyKind{PolicyLRU, PolicyTreePLRU, PolicyNRU, PolicySRRIP, PolicyQLRU, PolicyRandom} {
		k := k
		f := func(fillSeq []uint8, emptyWay uint8) bool {
			const ways = 8
			s := NewSetState(k, ways, rng)
			for _, w := range fillSeq {
				s.OnFill(int(w) % ways)
				s.OnHit(int(w) % ways)
			}
			occupied := full(ways)
			e := int(emptyWay) % ways
			occupied[e] = false
			if v := s.Victim(occupied); v != e {
				// All policies here use first-empty; with one hole the
				// victim must be that hole.
				return false
			}
			v := s.Victim(full(ways))
			return v >= 0 && v < ways
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
}
