package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWrite(t *testing.T) {
	m := New()
	if m.Read64(0x100) != 0 {
		t.Error("fresh memory should read zero")
	}
	m.Write64(0x100, 42)
	if got := m.Read64(0x100); got != 42 {
		t.Errorf("Read64 = %d, want 42", got)
	}
	// Unaligned access hits the containing word.
	if got := m.Read64(0x103); got != 42 {
		t.Errorf("unaligned Read64 = %d, want 42", got)
	}
	m.Write64(0x107, 7)
	if got := m.Read64(0x100); got != 7 {
		t.Errorf("unaligned write should overwrite containing word, got %d", got)
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	m.Write64(0, 1)
	m.Write64(8, 1)
	m.Write64(3, 2) // same word as 0
	if m.Footprint() != 2 {
		t.Errorf("Footprint = %d, want 2", m.Footprint())
	}
}

func TestClone(t *testing.T) {
	m := New()
	m.Write64(64, 9)
	c := m.Clone()
	c.Write64(64, 10)
	if m.Read64(64) != 9 {
		t.Error("clone aliases original")
	}
	if c.Read64(64) != 10 {
		t.Error("clone write lost")
	}
}

func TestLineHelpers(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Errorf("LineAddr(0x1234) = %#x", LineAddr(0x1234))
	}
	if LineOf(0x1234) != 0x48 {
		t.Errorf("LineOf(0x1234) = %#x", LineOf(0x1234))
	}
	if !SameLine(0x1200, 0x123f) {
		t.Error("0x1200 and 0x123f share a line")
	}
	if SameLine(0x1200, 0x1240) {
		t.Error("0x1200 and 0x1240 are different lines")
	}
}

func TestSetIndex(t *testing.T) {
	// Lines 0..63 with 64 sets map to distinct sets, then wrap.
	for i := int64(0); i < 64; i++ {
		if got := SetIndex(i*LineBytes, 64); got != int(i) {
			t.Fatalf("SetIndex(line %d) = %d", i, got)
		}
	}
	if SetIndex(64*LineBytes, 64) != 0 {
		t.Error("set index should wrap")
	}
	// Offsets within a line do not change the set.
	if SetIndex(0x1200, 64) != SetIndex(0x123f, 64) {
		t.Error("intra-line offset changed set index")
	}
}

func TestSetIndexPanicsOnBadSets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two sets")
		}
	}()
	SetIndex(0, 48)
}

func TestSliceIndexRangeAndStability(t *testing.T) {
	counts := make([]int, 8)
	for i := int64(0); i < 4096; i++ {
		s := SliceIndex(i*LineBytes, 8)
		if s < 0 || s >= 8 {
			t.Fatalf("slice %d out of range", s)
		}
		counts[s]++
		if again := SliceIndex(i*LineBytes, 8); again != s {
			t.Fatal("slice hash is not deterministic")
		}
	}
	for s, c := range counts {
		if c == 0 {
			t.Errorf("slice %d never used — hash does not spread", s)
		}
	}
}

func TestSliceIndexSingleSlice(t *testing.T) {
	if SliceIndex(0xdeadbeef, 1) != 0 {
		t.Error("single slice must map to 0")
	}
}

func TestSliceIndexPanics(t *testing.T) {
	for _, n := range []int{0, -1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for numSlices=%d", n)
				}
			}()
			SliceIndex(0, n)
		}()
	}
}

func TestMemoryWordIsolationProperty(t *testing.T) {
	f := func(aRaw, bRaw uint16, va, vb int64) bool {
		a, b := int64(aRaw)*8, int64(bRaw)*8
		if a == b {
			return true
		}
		m := New()
		m.Write64(a, va)
		m.Write64(b, vb)
		return m.Read64(a) == va && m.Read64(b) == vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
