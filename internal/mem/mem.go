// Package mem provides the flat physical memory shared by all cores and the
// address-arithmetic helpers (cache-line, set and LLC-slice extraction) used
// throughout the simulator.
package mem

import (
	"fmt"
	"math/bits"
)

// LineBytes is the cache line size used by every cache level.
const LineBytes = 64

// LineShift is log2(LineBytes).
const LineShift = 6

// pageWords is the number of 8-byte words per memory page (4KB pages).
const pageWords = 512

// pageShift is log2(pageWords), applied to word numbers.
const pageShift = 9

// page is one 4KB chunk of backing store. written marks the words ever
// written, so Footprint and the O(footprint) Reset need no separate index.
type page struct {
	words   [pageWords]int64
	written [pageWords / 64]uint64
}

// Memory is a sparse, word-granular physical memory backed by a paged
// dense store: every load and store in the simulator lands here, so the
// hot path is shift/mask indexing into a 4KB array rather than a map
// probe. Addresses are byte addresses; reads and writes operate on
// naturally-aligned 8-byte words (unaligned accesses are truncated to
// their containing word, which is all the ISA needs). Unwritten memory
// reads as zero.
type Memory struct {
	pages map[int64]*page
	// lastIdx/lastPage memoize the most recently touched page — trial
	// working sets cluster, so nearly every access hits the memo.
	lastIdx  int64
	lastPage *page
	// footprint counts distinct words ever written since the last Reset.
	footprint int
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[int64]*page), lastIdx: -1 << 62}
}

// pageAt returns the page holding word number w, creating it if create is
// set; otherwise it may return nil (unwritten memory).
func (m *Memory) pageAt(w int64, create bool) *page {
	idx := w >> pageShift
	if idx == m.lastIdx {
		return m.lastPage
	}
	p := m.pages[idx]
	if p == nil {
		if !create {
			return nil
		}
		p = &page{}
		m.pages[idx] = p
	}
	m.lastIdx, m.lastPage = idx, p
	return p
}

// Read64 returns the word containing addr.
func (m *Memory) Read64(addr int64) int64 {
	w := addr >> 3
	p := m.pageAt(w, false)
	if p == nil {
		return 0
	}
	return p.words[w&(pageWords-1)]
}

// Write64 stores v into the word containing addr.
func (m *Memory) Write64(addr int64, v int64) {
	w := addr >> 3
	p := m.pageAt(w, true)
	off := w & (pageWords - 1)
	p.words[off] = v
	if bit := uint64(1) << uint(off&63); p.written[off>>6]&bit == 0 {
		p.written[off>>6] |= bit
		m.footprint++
	}
}

// Footprint returns the number of distinct words ever written.
func (m *Memory) Footprint() int { return m.footprint }

// Reset makes the memory observably identical to New() while keeping the
// allocated pages, so steady-state reuse (internal/core.TrialState) pays no
// allocation to start over. Only words actually written are zeroed —
// O(footprint), not O(capacity).
func (m *Memory) Reset() {
	for _, p := range m.pages {
		for i, w := range p.written {
			for ; w != 0; w &= w - 1 {
				p.words[i<<6|bits.TrailingZeros64(w)] = 0
			}
			p.written[i] = 0
		}
	}
	m.footprint = 0
}

// Clone returns a deep copy; used by differential tests that need to run the
// same initial state through two machines.
func (m *Memory) Clone() *Memory {
	c := New()
	for idx, p := range m.pages {
		cp := *p
		c.pages[idx] = &cp
	}
	c.footprint = m.footprint
	return c
}

// LineAddr returns the address of the cache line containing addr.
func LineAddr(addr int64) int64 { return addr &^ (LineBytes - 1) }

// LineOf returns the line number (address / LineBytes).
func LineOf(addr int64) int64 { return addr >> LineShift }

// SameLine reports whether two addresses share a cache line.
func SameLine(a, b int64) bool { return LineAddr(a) == LineAddr(b) }

// SetIndex extracts the set index for a cache with numSets sets (must be a
// power of two) from the line number.
func SetIndex(addr int64, numSets int) int {
	if numSets&(numSets-1) != 0 || numSets <= 0 {
		panic(fmt.Sprintf("mem: numSets %d is not a positive power of two", numSets))
	}
	return int(LineOf(addr) & int64(numSets-1))
}

// SliceIndex computes the LLC slice for an address by XOR-folding the line
// number, mimicking (not matching) Intel's undocumented slice hash: it
// spreads consecutive lines across slices while remaining deterministic and
// invertible enough for eviction-set construction from known geometry.
func SliceIndex(addr int64, numSlices int) int {
	if numSlices <= 0 {
		panic(fmt.Sprintf("mem: numSlices %d must be positive", numSlices))
	}
	if numSlices == 1 {
		return 0
	}
	if numSlices&(numSlices-1) != 0 {
		panic(fmt.Sprintf("mem: numSlices %d is not a power of two", numSlices))
	}
	line := uint64(LineOf(addr))
	h := line ^ (line >> 7) ^ (line >> 13) ^ (line >> 21)
	return int(h & uint64(numSlices-1))
}
