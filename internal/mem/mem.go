// Package mem provides the flat physical memory shared by all cores and the
// address-arithmetic helpers (cache-line, set and LLC-slice extraction) used
// throughout the simulator.
package mem

import "fmt"

// LineBytes is the cache line size used by every cache level.
const LineBytes = 64

// LineShift is log2(LineBytes).
const LineShift = 6

// Memory is a sparse, word-granular physical memory. Addresses are byte
// addresses; reads and writes operate on naturally-aligned 8-byte words
// (unaligned accesses are truncated to their containing word, which is all
// the ISA needs). Unwritten memory reads as zero.
type Memory struct {
	words map[int64]int64
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{words: make(map[int64]int64)}
}

// wordAddr truncates a byte address to its containing 8-byte word.
func wordAddr(addr int64) int64 { return addr &^ 7 }

// Read64 returns the word containing addr.
func (m *Memory) Read64(addr int64) int64 {
	return m.words[wordAddr(addr)]
}

// Write64 stores v into the word containing addr.
func (m *Memory) Write64(addr int64, v int64) {
	m.words[wordAddr(addr)] = v
}

// Footprint returns the number of distinct words ever written.
func (m *Memory) Footprint() int { return len(m.words) }

// Reset makes the memory observably identical to New() while keeping the
// map's buckets, so steady-state reuse (internal/core.TrialState) pays no
// allocation to start over.
func (m *Memory) Reset() { clear(m.words) }

// Clone returns a deep copy; used by differential tests that need to run the
// same initial state through two machines.
func (m *Memory) Clone() *Memory {
	c := New()
	for a, v := range m.words {
		c.words[a] = v
	}
	return c
}

// LineAddr returns the address of the cache line containing addr.
func LineAddr(addr int64) int64 { return addr &^ (LineBytes - 1) }

// LineOf returns the line number (address / LineBytes).
func LineOf(addr int64) int64 { return addr >> LineShift }

// SameLine reports whether two addresses share a cache line.
func SameLine(a, b int64) bool { return LineAddr(a) == LineAddr(b) }

// SetIndex extracts the set index for a cache with numSets sets (must be a
// power of two) from the line number.
func SetIndex(addr int64, numSets int) int {
	if numSets&(numSets-1) != 0 || numSets <= 0 {
		panic(fmt.Sprintf("mem: numSets %d is not a positive power of two", numSets))
	}
	return int(LineOf(addr) & int64(numSets-1))
}

// SliceIndex computes the LLC slice for an address by XOR-folding the line
// number, mimicking (not matching) Intel's undocumented slice hash: it
// spreads consecutive lines across slices while remaining deterministic and
// invertible enough for eviction-set construction from known geometry.
func SliceIndex(addr int64, numSlices int) int {
	if numSlices <= 0 {
		panic(fmt.Sprintf("mem: numSlices %d must be positive", numSlices))
	}
	if numSlices == 1 {
		return 0
	}
	if numSlices&(numSlices-1) != 0 {
		panic(fmt.Sprintf("mem: numSlices %d is not a power of two", numSlices))
	}
	line := uint64(LineOf(addr))
	h := line ^ (line >> 7) ^ (line >> 13) ^ (line >> 21)
	return int(h & uint64(numSlices-1))
}
