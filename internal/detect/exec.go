package detect

import (
	"fmt"

	"specinterference/internal/emu"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
	"specinterference/internal/uarch"
)

// maxExploredBranches caps how many dynamic branch visits open a
// speculative window; later branches still execute architecturally.
const maxExploredBranches = 64

// Window summarizes one speculative (wrong-path) window: everything the
// policy let the wrong path do before the bounding squash.
type Window struct {
	// BranchPC is the conditional branch whose misprediction opens the
	// window.
	BranchPC int
	// SqrtIssued counts wrong-path sqrt operations whose operands were
	// available (they reach the non-pipelined unit before the squash).
	SqrtIssued int
	// SqrtFast counts issued sqrts with no slow (miss-latency) operand —
	// the ones that contend with the victim's f-chain early.
	SqrtFast int
	// MissLines is the set of lines brought in flight by non-delayed
	// wrong-path loads that missed (each occupies an L1D MSHR).
	MissLines map[int64]bool
	// Parked counts wrong-path instructions waiting on slow or
	// unavailable operands — reservation-station occupancy.
	Parked int
	// Visible is the set of data lines touched by issued ActVisible
	// loads.
	Visible map[int64]bool
	// Fetched is the set of instruction lines the wrong-path frontend
	// fetched.
	Fetched map[int64]bool
}

// WindowPair is the same branch visit explored under both secrets.
type WindowPair struct {
	BranchPC int
	W        [2]Window
}

// Report is the outcome of one self-composed analysis.
type Report struct {
	Facts  Facts
	Params Params
	// ArchDiff is true when the two architectural (correct-path)
	// executions themselves diverge — branch outcomes or load addresses
	// differ by secret. The program then leaks without any
	// microarchitecture, and the speculative analysis is moot.
	ArchDiff bool
	// Pairs are the per-branch-visit speculative windows, paired across
	// secrets (empty when the policy stalls fetch in shadow).
	Pairs []WindowPair
}

// SqrtDiff reports differential non-pipelined-unit pressure: some window
// pair issues a different number of sqrts, or a different number of
// immediately-ready sqrts, under the two secrets.
func (r *Report) SqrtDiff() bool {
	for _, p := range r.Pairs {
		if p.W[0].SqrtIssued != p.W[1].SqrtIssued || p.W[0].SqrtFast != p.W[1].SqrtFast {
			return true
		}
	}
	return false
}

// MSHRDiff reports differential MSHR pressure: some window pair has
// secret-dependent miss-line sets and one side covers every L1D MSHR.
func (r *Report) MSHRDiff() bool {
	for _, p := range r.Pairs {
		a, b := p.W[0].MissLines, p.W[1].MissLines
		if len(a) < r.Params.DMSHRs && len(b) < r.Params.DMSHRs {
			continue
		}
		if !sameLineSet(a, b) {
			return true
		}
	}
	return false
}

// RSDiff reports differential reservation-station pressure: the parked
// count exceeds the RS capacity under exactly one secret.
func (r *Report) RSDiff() bool {
	for _, p := range r.Pairs {
		if (p.W[0].Parked >= r.Params.RSSize) != (p.W[1].Parked >= r.Params.RSSize) {
			return true
		}
	}
	return false
}

// FootprintDiff reports whether the wrong path's visible data footprint
// on the probe lines differs by secret — a direct transient leak.
func (r *Report) FootprintDiff(lines [2]int64) bool {
	for _, p := range r.Pairs {
		for _, l := range lines {
			if p.W[0].Visible[l] != p.W[1].Visible[l] {
				return true
			}
		}
	}
	return false
}

// Absorbed reports whether every window pair's wrong path visibly caches
// line under BOTH secrets (and at least one window exists): the line's
// later architectural access then hits and emits no LLC event — the
// VD-VD reference clock disappears.
func (r *Report) Absorbed(line int64) bool {
	if len(r.Pairs) == 0 {
		return false
	}
	for _, p := range r.Pairs {
		if !p.W[0].Visible[line] || !p.W[1].Visible[line] {
			return false
		}
	}
	return true
}

// AnyVisibleLoad reports whether any wrong-path load executed visibly
// under either secret.
func (r *Report) AnyVisibleLoad() bool {
	for _, p := range r.Pairs {
		if len(p.W[0].Visible) > 0 || len(p.W[1].Visible) > 0 {
			return true
		}
	}
	return false
}

// TargetFetchedWhenDrained reports whether the secret whose reservation
// stations stay below capacity (the drained side) fetches line in its
// wrong-path window — the G_IRS presence channel.
func (r *Report) TargetFetchedWhenDrained(line int64) bool {
	for _, p := range r.Pairs {
		for s := 0; s < 2; s++ {
			if p.W[s].Parked < r.Params.RSSize && p.W[s].Fetched[line] {
				return true
			}
		}
	}
	return false
}

func sameLineSet(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for l := range a {
		if !b[l] {
			return false
		}
	}
	return true
}

// branchVisit is one architectural conditional-branch execution plus the
// state snapshot a speculative window starts from.
type branchVisit struct {
	pc    int
	taken bool
	// snapshot of the architectural state at the branch (nil when past
	// the exploration cap).
	regs *[isa.NumRegs]int64
	slow *[isa.NumRegs]bool
	mem  map[int64]int64
}

// archTrace is one correct-path execution.
type archTrace struct {
	branches []branchVisit
	loads    []int64
	regs     [isa.NumRegs]int64
}

// Analyze self-composes the program under policy across the two secret
// environments and returns the paired speculative windows. It fails —
// rather than returning a verdict-bearing report — when either
// architectural execution does not halt (emu.ErrStepLimit is wrapped and
// can be tested with errors.Is) or when the internal stepper disagrees
// with the emu golden model.
func Analyze(prog *isa.Program, policy uarch.SpecPolicy, envs [2]Env, params Params) (*Report, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("detect: %w", err)
	}
	facts := ProbeFacts(policy)
	rep := &Report{Facts: facts, Params: params}

	var traces [2]archTrace
	for s := 0; s < 2; s++ {
		oracle, err := runOracle(prog, envs[s])
		if err != nil {
			return nil, fmt.Errorf("detect: secret %d: %w", s, err)
		}
		tr, err := runArch(prog, envs[s])
		if err != nil {
			return nil, fmt.Errorf("detect: secret %d: %w", s, err)
		}
		if err := crossCheck(prog, tr, oracle); err != nil {
			return nil, fmt.Errorf("detect: secret %d: %w", s, err)
		}
		traces[s] = tr
	}

	rep.ArchDiff = archDiverges(traces[0], traces[1])

	if facts.StallFetch {
		return rep, nil // no wrong path is ever fetched
	}
	n := len(traces[0].branches)
	if len(traces[1].branches) < n {
		n = len(traces[1].branches)
	}
	for i := 0; i < n; i++ {
		b0, b1 := traces[0].branches[i], traces[1].branches[i]
		if b0.regs == nil || b1.regs == nil {
			break // past the exploration cap
		}
		if b0.pc != b1.pc {
			break // control already diverged (ArchDiff is set)
		}
		rep.Pairs = append(rep.Pairs, WindowPair{
			BranchPC: b0.pc,
			W: [2]Window{
				explore(prog, policy, facts, envs[0], b0, params),
				explore(prog, policy, facts, envs[1], b1, params),
			},
		})
	}
	return rep, nil
}

// runOracle executes the program on the architectural emulator, the
// golden model the internal stepper is checked against. A non-halting
// run surfaces as an error (wrapping emu.ErrStepLimit), never as data.
func runOracle(prog *isa.Program, env Env) (*emu.Result, error) {
	m := mem.New()
	for a, v := range env.Mem {
		m.Write64(a, v)
	}
	e := emu.New(prog, m)
	e.RecordBranches = true
	e.RecordLoads = true
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if env.Regs[r] != 0 {
			e.SetReg(r, env.Regs[r])
		}
	}
	res, err := e.Run()
	if err != nil {
		return nil, fmt.Errorf("architectural oracle: %w", err)
	}
	return res, nil
}

// runArch is the detector's own correct-path stepper: architecturally
// identical to emu (cross-checked), but additionally tracking the L1
// fast/slow latency class of every register and snapshotting state at
// conditional branches for window exploration.
func runArch(prog *isa.Program, env Env) (archTrace, error) {
	var tr archTrace
	regs := env.Regs
	var slow [isa.NumRegs]bool
	memory := map[int64]int64{}
	for a, v := range env.Mem {
		memory[a] = v
	}
	present := map[int64]bool{}
	for l := range env.WarmData {
		present[l] = true
	}

	pc := 0
	for steps := 0; steps < emu.DefaultMaxSteps; steps++ {
		if pc < 0 || pc >= prog.Len() {
			return tr, fmt.Errorf("stepper: pc %d out of range", pc)
		}
		in := prog.Insts[pc]
		next := pc + 1
		switch in.Op {
		case isa.Halt:
			tr.regs = regs
			return tr, nil
		case isa.Nop, isa.Fence, isa.Flush:
		case isa.MovI:
			regs[in.Dst], slow[in.Dst] = in.Imm, false
		case isa.Mov:
			regs[in.Dst], slow[in.Dst] = regs[in.Src1], slow[in.Src1]
		case isa.Load:
			addr := regs[in.Src1] + in.Imm
			line := mem.LineAddr(addr)
			regs[in.Dst], slow[in.Dst] = memory[addr], !present[line]
			present[line] = true // architectural loads fill visibly
			tr.loads = append(tr.loads, addr)
		case isa.Store:
			addr := regs[in.Src1] + in.Imm
			memory[addr] = regs[in.Src2]
			present[mem.LineAddr(addr)] = true
		case isa.RdCycle:
			// The stepper has no clock; zero keeps it deterministic, and
			// the emu cross-check tolerates the one register RdCycle
			// defines differently (see crossCheck).
			regs[in.Dst], slow[in.Dst] = 0, false
		case isa.Beq, isa.Bne, isa.Blt, isa.Bge:
			taken := emu.BranchTaken(in.Op, regs[in.Src1], regs[in.Src2])
			v := branchVisit{pc: pc, taken: taken}
			if len(tr.branches) < maxExploredBranches {
				r, sl := regs, slow
				mm := make(map[int64]int64, len(memory))
				for a, val := range memory {
					mm[a] = val
				}
				v.regs, v.slow, v.mem = &r, &sl, mm
			}
			tr.branches = append(tr.branches, v)
			if taken {
				next = in.Target
			}
		case isa.Jmp:
			next = in.Target
		default:
			regs[in.Dst] = alu(in, regs[in.Src1], regs[in.Src2])
			srcs, ns := in.Uses()
			sl := false
			for i := 0; i < ns; i++ {
				sl = sl || slow[srcs[i]]
			}
			slow[in.Dst] = sl
		}
		pc = next
	}
	return tr, fmt.Errorf("stepper: %w", emu.ErrStepLimit)
}

// alu evaluates a register-writing arithmetic/logic instruction with the
// emulator's semantics (shared SafeDiv/ISqrt ensure bit-equality).
func alu(in isa.Inst, a, b int64) int64 {
	switch in.Op {
	case isa.MovI:
		return in.Imm
	case isa.Mov:
		return a
	case isa.Add:
		return a + b
	case isa.AddI:
		return a + in.Imm
	case isa.Sub:
		return a - b
	case isa.And:
		return a & b
	case isa.Or:
		return a | b
	case isa.Xor:
		return a ^ b
	case isa.ShlI:
		return a << uint(in.Imm&63)
	case isa.ShrI:
		return int64(uint64(a) >> uint(in.Imm&63))
	case isa.Mul:
		return a * b
	case isa.MulI:
		return a * in.Imm
	case isa.Div:
		return emu.SafeDiv(a, b)
	case isa.Sqrt:
		return emu.ISqrt(a)
	default:
		panic(fmt.Sprintf("detect: alu on %s", in.Op))
	}
}

// crossCheck pins the stepper to the emu golden model: branch streams and
// final registers must agree (RdCycle destinations excepted — the two
// models define the counter differently, which is also why the fuzz
// generator excludes it).
func crossCheck(prog *isa.Program, tr archTrace, oracle *emu.Result) error {
	if len(tr.branches) != len(oracle.Branches) {
		return fmt.Errorf("stepper diverged: %d branches vs oracle %d",
			len(tr.branches), len(oracle.Branches))
	}
	for i, b := range tr.branches {
		if b.pc != oracle.Branches[i].PC || b.taken != oracle.Branches[i].Taken {
			return fmt.Errorf("stepper diverged at branch %d: pc %d taken %v vs oracle pc %d taken %v",
				i, b.pc, b.taken, oracle.Branches[i].PC, oracle.Branches[i].Taken)
		}
	}
	if len(tr.loads) != len(oracle.LoadAddrs) {
		return fmt.Errorf("stepper diverged: %d loads vs oracle %d", len(tr.loads), len(oracle.LoadAddrs))
	}
	for i, a := range tr.loads {
		if a != oracle.LoadAddrs[i] {
			return fmt.Errorf("stepper diverged at load %d: %#x vs oracle %#x", i, a, oracle.LoadAddrs[i])
		}
	}
	var skip [isa.NumRegs]bool
	for _, in := range prog.Insts {
		if in.Op == isa.RdCycle {
			skip[in.Dst] = true
		}
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if !skip[r] && tr.regs[r] != oracle.Regs[r] {
			return fmt.Errorf("stepper diverged: %s = %d vs oracle %d", r, tr.regs[r], oracle.Regs[r])
		}
	}
	return nil
}

// archDiverges reports whether the two correct-path executions are
// distinguishable: different branch outcomes or different load addresses.
func archDiverges(a, b archTrace) bool {
	if len(a.branches) != len(b.branches) || len(a.loads) != len(b.loads) {
		return true
	}
	for i := range a.branches {
		if a.branches[i].pc != b.branches[i].pc || a.branches[i].taken != b.branches[i].taken {
			return true
		}
	}
	for i := range a.loads {
		if a.loads[i] != b.loads[i] {
			return true
		}
	}
	return false
}

// explore walks the anti-architectural direction of one branch for up to
// ROBSize fetched instructions, applying the policy's issue and load
// rules. The wrong-path "present" model is deliberately the PLAN's warm
// L1 lines plus wrong-path refills only: correct-path fills are the
// in-flight state the window races against, not guaranteed hits.
func explore(prog *isa.Program, policy uarch.SpecPolicy, facts Facts, env Env, at branchVisit, params Params) Window {
	w := Window{
		BranchPC:  at.pc,
		MissLines: map[int64]bool{},
		Visible:   map[int64]bool{},
		Fetched:   map[int64]bool{},
	}
	regs := *at.regs
	slow := *at.slow
	var unavail [isa.NumRegs]bool
	storeBuf := map[int64]int64{}
	present := map[int64]bool{}
	for l := range env.WarmData {
		present[l] = true
	}

	// The mispredicted direction is the one the architecture did NOT take.
	pc := at.pc + 1
	if !at.taken {
		pc = prog.Insts[at.pc].Target
	}

	read := func(addr int64) int64 {
		if v, ok := storeBuf[addr]; ok {
			return v
		}
		return at.mem[addr]
	}
	srcState := func(in isa.Inst) (anyUnavail, anySlow bool) {
		srcs, n := in.Uses()
		for i := 0; i < n; i++ {
			anyUnavail = anyUnavail || unavail[srcs[i]]
			anySlow = anySlow || slow[srcs[i]]
		}
		return
	}

	for fetched := 0; fetched < params.ROBSize; fetched++ {
		if pc < 0 || pc >= prog.Len() {
			break
		}
		in := prog.Insts[pc]
		w.Fetched[mem.LineAddr(prog.InstAddr(pc))] = true
		next := pc + 1

		switch in.Op {
		case isa.Halt, isa.Fence:
			return w
		case isa.Jmp:
			pc = in.Target
			continue
		case isa.Nop, isa.Flush:
			pc = next
			continue
		}

		anyUnavail, anySlow := srcState(in)
		if anyUnavail || anySlow {
			w.Parked++ // waits in the RS for its operands
		}
		issued := facts.IssueInShadow && !anyUnavail

		switch {
		case in.IsCondBranch():
			if !issued {
				return w // direction unknowable, stop the window
			}
			if emu.BranchTaken(in.Op, regs[in.Src1], regs[in.Src2]) {
				next = in.Target
			}
		case in.Op == isa.Load:
			if !issued {
				unavail[in.Dst] = true
				break
			}
			addr := regs[in.Src1] + in.Imm
			line := mem.LineAddr(addr)
			hit := present[line]
			act := policy.DecideLoad(uarch.LoadCtx{Core: 0, Addr: addr, Cycle: 0, L1Hit: hit})
			if act == uarch.ActDelay {
				unavail[in.Dst] = true
				break
			}
			regs[in.Dst], slow[in.Dst], unavail[in.Dst] = read(addr), !hit, false
			if !hit {
				w.MissLines[line] = true
			}
			if act == uarch.ActVisible {
				w.Visible[line] = true
				present[line] = true // visible fills serve later wrong-path hits
			}
		case in.Op == isa.Store:
			if issued {
				storeBuf[regs[in.Src1]+in.Imm] = regs[in.Src2]
			}
		case in.Op == isa.RdCycle:
			// Timing-dependent value: treat the destination as unknowable.
			unavail[in.Dst] = true
		default: // register-writing ALU ops
			if !issued {
				if in.HasDst() {
					unavail[in.Dst] = true
				}
				break
			}
			if in.Op == isa.Sqrt {
				w.SqrtIssued++
				if !anySlow {
					w.SqrtFast++
				}
			}
			if in.HasDst() {
				regs[in.Dst] = alu(in, regs[in.Src1], regs[in.Src2])
				slow[in.Dst], unavail[in.Dst] = anySlow, false
			}
		}
		pc = next
	}
	return w
}
