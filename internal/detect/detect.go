// Package detect is the static speculative-leak detector: a
// SPECTECTOR-style analysis that decides, WITHOUT running the cycle-level
// simulator, whether a victim program under a given speculation policy can
// leak its secret through speculative interference (Behnia et al.,
// ASPLOS 2021, §3).
//
// The detector self-composes two abstract executions of the program — one
// per secret value — over the same initial-state ground truth the
// empirical harness primes (core.PrimePlan). Each execution follows the
// architectural (correct) path concretely, and at every conditional
// branch opens a bounded speculative window down the anti-architectural
// direction, tracking which wrong-path instructions the policy lets
// issue, which lines they touch and whether their operands arrive fast
// (L1-resident) or slow. Comparing the paired windows across the two
// secrets yields the paper's three differential pressure signals:
//
//   - NPEU contention: the count (or readiness) of issued non-pipelined
//     sqrt operations differs by secret (§3.2.2, G_NPEU);
//   - MSHR exhaustion: the per-secret sets of in-flight miss lines differ
//     and one of them covers every L1D MSHR (§3.2.2, G_MSHR);
//   - RS back-pressure: the number of wrong-path instructions parked on
//     slow or unavailable operands exceeds the reservation-station
//     capacity under exactly one secret (§4.3, G_IRS).
//
// A per-ordering rule (see CellVerdict) then combines the pressure
// signals with the policy's visibility facts — shadow model, load
// actions, instruction-fetch mode, issue gating — to produce a leak /
// no-leak verdict and a mechanism string.
//
// # Soundness caveats
//
// The analysis is a model, not a proof. It reasons about ONE speculative
// window per branch (depth bounded by the ROB), treats latency as the
// binary fast/slow classification induced by the primed L1 state, and
// decides pressure by signal-specific thresholds rather than by
// simulating contention cycle by cycle. The concordance experiment
// (Matrix) keeps it honest: every verdict is compared against the
// empirical Table 1 classification of the simulator, and any mismatch
// that is not an explicitly enumerated exception fails the run.
package detect

import (
	"fmt"

	"specinterference/internal/cache"
	"specinterference/internal/core"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
	"specinterference/internal/uarch"
)

// Params are the machine capacities the pressure thresholds compare
// against.
type Params struct {
	// ROBSize bounds the speculative window depth (fetched wrong-path
	// instructions per branch).
	ROBSize int
	// RSSize is the reservation-station capacity the G_IRS clog must
	// exceed.
	RSSize int
	// DMSHRs is the L1D miss-status-holding-register count the G_MSHR
	// exhaustion must cover.
	DMSHRs int
}

// DefaultParams returns the capacities of the attack machine
// (core.AttackConfig).
func DefaultParams() Params {
	cfg := core.AttackConfig()
	return Params{ROBSize: cfg.ROBSize, RSSize: cfg.RSSize, DMSHRs: cfg.Cache.DMSHRs}
}

// Facts are the policy properties the detector consumes, probed once per
// analysis. Load decisions are not part of Facts: they may depend on the
// address and hit state, so the executor consults SpecPolicy.DecideLoad
// per dynamic load (the purity contract makes that exact).
type Facts struct {
	// Shadow is the scheme's speculative-shadow model.
	Shadow uarch.ShadowModel
	// IFetch is the speculative instruction-fetch mode.
	IFetch uarch.IFetchMode
	// IssueInShadow is CanIssue(safe=false): whether any speculative
	// instruction may issue at all (false for the §5.2 fence defenses).
	IssueInShadow bool
	// StallFetch is StallFetchInShadow: the ideal fence variant that
	// never fetches a wrong path.
	StallFetch bool
}

// ProbeFacts extracts the detector-relevant facts from a policy.
func ProbeFacts(p uarch.SpecPolicy) Facts {
	return Facts{
		Shadow:        p.Shadow(),
		IFetch:        p.IFetch(),
		IssueInShadow: p.CanIssue(false),
		StallFetch:    p.StallFetchInShadow(),
	}
}

// Env is the initial abstract machine state for one secret value: the
// memory image, the register file and the set of L1-resident data lines.
// Lines absent from WarmData are "slow" — the detector does not care how
// slow (L2, LLC or DRAM), only that they lose against L1 hits.
type Env struct {
	Mem      map[int64]int64
	Regs     [isa.NumRegs]int64
	WarmData map[int64]bool
}

// EnvFromPlan derives the abstract environment from a victim's priming
// plan — the same declarative ground truth prepareTrial executes, so the
// detector and the empirical harness cannot disagree about the initial
// state.
func EnvFromPlan(plan *core.PrimePlan) Env {
	env := Env{Mem: map[int64]int64{}, WarmData: map[int64]bool{}}
	for _, w := range plan.MemWrites {
		env.Mem[w.Addr] = w.Val
	}
	for _, op := range plan.Ops {
		line := mem.LineAddr(op.Addr)
		switch op.Kind {
		case core.PrimeWarmData:
			// Only L1-deep warms make a line "fast"; an LLC warm still
			// loses against L1 hits, which is the only latency contrast
			// the pressure signals use.
			if op.Level == cache.LevelL1 {
				env.WarmData[line] = true
			}
		case core.PrimeFlush:
			delete(env.WarmData, line)
		}
	}
	for _, r := range plan.Regs {
		env.Regs[r.Reg] = r.Val
	}
	return env
}

// Verdict is the detector's decision for one (program, policy) pair.
type Verdict struct {
	// Leak is true when the analysis finds a secret-dependent visible
	// access pattern.
	Leak bool
	// Mechanism names the decisive rule (Mech* constants): the leaking
	// pressure channel, or the property that closes it.
	Mechanism string
}

// String implements fmt.Stringer.
func (v Verdict) String() string {
	if v.Leak {
		return fmt.Sprintf("leak(%s)", v.Mechanism)
	}
	return fmt.Sprintf("no-leak(%s)", v.Mechanism)
}

// Mechanism values: why a cell leaks, or what protects it.
const (
	// MechNPEU: differential sqrt-port contention delays the bound-to-
	// retire chain by secret.
	MechNPEU = "npeu-contention"
	// MechMSHR: wrong-path misses exhaust the L1D MSHRs under one secret.
	MechMSHR = "mshr-exhaustion"
	// MechRS: wrong-path RS occupancy throttles the frontend under one
	// secret.
	MechRS = "rs-backpressure"
	// MechFootprint: the wrong path's visible loads touch the probe lines
	// differently by secret (a classic transient-footprint leak, caught
	// for completeness).
	MechFootprint = "wrong-path-visible-footprint"
	// MechNoSpecFetch: the policy never fetches a wrong path (ideal
	// fences).
	MechNoSpecFetch = "no-speculative-fetch"
	// MechNoSpecIssue: wrong-path instructions are fetched but never
	// issue, so no resource pressure forms (fence defenses).
	MechNoSpecIssue = "no-speculative-issue"
	// MechNoPressure: the windows exert no secret-differential pressure.
	MechNoPressure = "no-differential-pressure"
	// MechOrdered: pressure exists, but the scheme's visibility order
	// (TSO / futuristic with non-visible speculative loads) pins the
	// victim's visible accesses to program order, closing VD-VD.
	MechOrdered = "in-order-visibility"
	// MechAbsorbed: the wrong path itself caches the reference line under
	// both secrets, destroying the VD-VD reference clock.
	MechAbsorbed = "wrong-path-caches-reference"
	// MechIFetchProtected: the RS clog exists but speculative fetch
	// leaves no I-cache state for the receiver.
	MechIFetchProtected = "ifetch-protected"
	// MechTargetNotFetched: the drained window never reaches the target
	// line.
	MechTargetNotFetched = "target-line-not-fetched"
)
