package detect

import (
	"errors"
	"testing"

	"specinterference/internal/asm"
	"specinterference/internal/emu"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
	"specinterference/internal/schemes"
)

// Toy-program addresses: the secret word, a cold line table the gadgets
// index with the secret, and a warm "reference" line.
const (
	toySecret = int64(0x2000)
	toyTable  = int64(0x4000)
	toyRef    = int64(0x6000)
)

// toyEnvs returns the two self-composition environments for the toy
// programs: identical registers (R2 = secret address, R1 = table base,
// R9 = reference address), memory differing only in the secret word, and
// the secret line warm so the wrong-path secret load resolves fast.
func toyEnvs() [2]Env {
	var envs [2]Env
	for s := 0; s < 2; s++ {
		envs[s] = Env{
			Mem:      map[int64]int64{toySecret: int64(s)},
			WarmData: map[int64]bool{mem.LineAddr(toySecret): true},
		}
		envs[s].Regs[isa.R1] = toyTable
		envs[s].Regs[isa.R2] = toySecret
		envs[s].Regs[isa.R9] = toyRef
	}
	return envs
}

// toyPrologue emits the shared skeleton: a never-taken branch to "wrong"
// (R4=1 < R3=0 is false), so the architectural path halts immediately and
// the detector explores the taken direction as the wrong path.
func toyPrologue(b *asm.Builder) {
	b.MovI(isa.R3, 0)
	b.MovI(isa.R4, 1)
	b.Blt(isa.R4, isa.R3, "wrong")
	b.Halt()
	b.Label("wrong")
	b.Load(isa.R5, isa.R2, 0) // the secret, fast (warm line)
}

// analyzeToy runs the detector on a toy program under the unprotected
// scheme with small thresholds so toy-sized pressure trips them.
func analyzeToy(t *testing.T, build func(b *asm.Builder)) *Report {
	t.Helper()
	b := asm.NewBuilder()
	toyPrologue(b)
	build(b)
	b.Halt()
	params := DefaultParams()
	params.RSSize = 8 // toy-sized reservation station
	rep, err := Analyze(b.MustBuild(), schemes.Unsafe(), toyEnvs(), params)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ArchDiff {
		t.Fatal("toy program's architectural trace depends on the secret")
	}
	return rep
}

// TestTaintPrimitives drives each pressure/visibility rule with one
// leaking and one non-leaking toy program, so a regression in a single
// signal is pinned to its rule rather than surfacing as a Table 1-wide
// concordance failure.
func TestTaintPrimitives(t *testing.T) {
	secretGate := func(b *asm.Builder, label string) {
		// Skips the gadget body when the secret is 0 (R5 < R4=1).
		b.Blt(isa.R5, isa.R4, label)
	}
	cases := []struct {
		name   string
		build  func(b *asm.Builder)
		signal func(r *Report) bool
		want   bool
	}{
		{
			name: "npeu-leak",
			build: func(b *asm.Builder) {
				secretGate(b, "skip")
				for i := 0; i < 3; i++ {
					b.Sqrt(isa.R6, isa.R4)
				}
				b.Label("skip")
			},
			signal: (*Report).SqrtDiff,
			want:   true,
		},
		{
			name: "npeu-noleak",
			build: func(b *asm.Builder) {
				for i := 0; i < 3; i++ { // same sqrts under both secrets
					b.Sqrt(isa.R6, isa.R4)
				}
			},
			signal: (*Report).SqrtDiff,
			want:   false,
		},
		{
			name: "npeu-latency-leak",
			build: func(b *asm.Builder) {
				// Same sqrt count, but the operand arrives slow under
				// secret 1 only (cold table line) — readiness differs.
				b.ShlI(isa.R6, isa.R5, 6)
				b.Add(isa.R6, isa.R6, isa.R1)
				b.Load(isa.R7, isa.R6, 0)
				b.Sqrt(isa.R8, isa.R7)
			},
			signal: (*Report).SqrtDiff,
			want:   false, // both table lines are cold: same counts, same readiness
		},
		{
			name: "mshr-leak",
			build: func(b *asm.Builder) {
				secretGate(b, "skip")
				for i := int64(0); i < 4; i++ { // 4 cold lines = all L1D MSHRs
					b.Load(isa.R6, isa.R1, i*mem.LineBytes)
				}
				b.Label("skip")
			},
			signal: (*Report).MSHRDiff,
			want:   true,
		},
		{
			name: "mshr-noleak",
			build: func(b *asm.Builder) {
				for i := int64(0); i < 4; i++ { // unconditional: same miss set
					b.Load(isa.R6, isa.R1, i*mem.LineBytes)
				}
			},
			signal: (*Report).MSHRDiff,
			want:   false,
		},
		{
			name: "mshr-below-threshold",
			build: func(b *asm.Builder) {
				secretGate(b, "skip")
				for i := int64(0); i < 3; i++ { // differs, but never exhausts
					b.Load(isa.R6, isa.R1, i*mem.LineBytes)
				}
				b.Label("skip")
			},
			signal: (*Report).MSHRDiff,
			want:   false,
		},
		{
			name: "rs-leak",
			build: func(b *asm.Builder) {
				// Only secret 1 reaches the slow load and the flood of
				// dependent adds that park on its value.
				secretGate(b, "skip")
				b.Load(isa.R7, isa.R1, 0) // cold line: slow
				for i := 0; i < 10; i++ {
					b.Add(isa.R8, isa.R7, isa.R7)
				}
				b.Label("skip")
			},
			signal: (*Report).RSDiff,
			want:   true,
		},
		{
			name: "rs-noleak",
			build: func(b *asm.Builder) {
				for i := 0; i < 10; i++ { // fast operands: nothing parks
					b.Add(isa.R8, isa.R4, isa.R4)
				}
			},
			signal: (*Report).RSDiff,
			want:   false,
		},
		{
			name: "footprint-leak",
			build: func(b *asm.Builder) {
				b.ShlI(isa.R6, isa.R5, 6) // classic transient footprint:
				b.Add(isa.R6, isa.R6, isa.R1)
				b.Load(isa.R7, isa.R6, 0) // visibly touches table[secret*64]
			},
			signal: func(r *Report) bool {
				return r.FootprintDiff([2]int64{mem.LineAddr(toyTable), mem.LineAddr(toyTable + mem.LineBytes)})
			},
			want: true,
		},
		{
			name: "footprint-noleak",
			build: func(b *asm.Builder) {
				b.Load(isa.R7, isa.R1, 0) // fixed address
			},
			signal: func(r *Report) bool {
				return r.FootprintDiff([2]int64{mem.LineAddr(toyTable), mem.LineAddr(toyTable + mem.LineBytes)})
			},
			want: false,
		},
		{
			name: "absorb-reference",
			build: func(b *asm.Builder) {
				b.Load(isa.R6, isa.R9, 0) // caches the reference line under BOTH secrets
			},
			signal: func(r *Report) bool { return r.Absorbed(mem.LineAddr(toyRef)) },
			want:   true,
		},
		{
			name: "absorb-one-side-only",
			build: func(b *asm.Builder) {
				secretGate(b, "skip")
				b.Load(isa.R6, isa.R9, 0) // only secret 1 reaches the reference
				b.Label("skip")
			},
			signal: func(r *Report) bool { return r.Absorbed(mem.LineAddr(toyRef)) },
			want:   false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := analyzeToy(t, tc.build)
			if len(rep.Pairs) == 0 {
				t.Fatal("no speculative window explored")
			}
			if got := tc.signal(rep); got != tc.want {
				t.Errorf("signal = %v, want %v\nwindows: %+v", got, tc.want, rep.Pairs)
			}
		})
	}

	// rs-leak's premise: the secret-0 table slot is warm, the secret-1
	// slot cold. Re-run it with that environment to pin the latency rule.
	t.Run("rs-leak-warm-slot", func(t *testing.T) {
		b := asm.NewBuilder()
		toyPrologue(b)
		b.ShlI(isa.R6, isa.R5, 6)
		b.Add(isa.R6, isa.R6, isa.R1)
		b.Load(isa.R7, isa.R6, 0)
		for i := 0; i < 10; i++ {
			b.Add(isa.R8, isa.R7, isa.R7)
		}
		b.Halt()
		envs := toyEnvs()
		for s := 0; s < 2; s++ {
			envs[s].WarmData[mem.LineAddr(toyTable)] = true // secret-0 slot fast
		}
		params := DefaultParams()
		params.RSSize = 8
		rep, err := Analyze(b.MustBuild(), schemes.Unsafe(), envs, params)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.RSDiff() {
			t.Errorf("RSDiff = false, want true\nwindows: %+v", rep.Pairs)
		}
	})
}

// TestPolicyGates pins the two policy facts that short-circuit every
// pressure signal: fences keep wrong-path work from issuing, and the
// ideal fences never even fetch a wrong path.
func TestPolicyGates(t *testing.T) {
	buildNPEU := func() *isa.Program {
		b := asm.NewBuilder()
		toyPrologue(b)
		for i := 0; i < 3; i++ {
			b.Sqrt(isa.R6, isa.R5)
		}
		b.Halt()
		return b.MustBuild()
	}

	t.Run("fence-no-issue", func(t *testing.T) {
		policy, err := schemes.ByName("fence-spectre")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Analyze(buildNPEU(), policy, toyEnvs(), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Facts.IssueInShadow {
			t.Error("fence-spectre: IssueInShadow = true")
		}
		for _, p := range rep.Pairs {
			for s := 0; s < 2; s++ {
				if p.W[s].SqrtIssued != 0 || len(p.W[s].Visible) != 0 || len(p.W[s].MissLines) != 0 {
					t.Errorf("secret %d: wrong-path work issued under a fence: %+v", s, p.W[s])
				}
			}
		}
	})

	t.Run("ideal-fence-no-fetch", func(t *testing.T) {
		policy, err := schemes.ByName("fence-spectre-ideal")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Analyze(buildNPEU(), policy, toyEnvs(), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Facts.StallFetch {
			t.Error("fence-spectre-ideal: StallFetch = false")
		}
		if len(rep.Pairs) != 0 {
			t.Errorf("explored %d windows under stalled fetch", len(rep.Pairs))
		}
	})
}

// TestAnalyzeArchDiff: a program whose CORRECT path depends on the secret
// is flagged as architecturally divergent, not given a speculative
// verdict.
func TestAnalyzeArchDiff(t *testing.T) {
	b := asm.NewBuilder()
	b.Load(isa.R5, isa.R2, 0)
	b.ShlI(isa.R6, isa.R5, 6)
	b.Add(isa.R6, isa.R6, isa.R1)
	b.Load(isa.R7, isa.R6, 0) // architectural secret-indexed load
	b.Halt()
	rep, err := Analyze(b.MustBuild(), schemes.Unsafe(), toyEnvs(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ArchDiff {
		t.Error("ArchDiff = false for a secret-dependent architectural trace")
	}
}

// TestAnalyzeStepLimit: a non-halting program surfaces the emulator's
// step-limit error (satellite: pinned emu.Machine semantics) instead of a
// verdict.
func TestAnalyzeStepLimit(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("spin")
	b.Jmp("spin")
	_, err := Analyze(b.MustBuild(), schemes.Unsafe(), toyEnvs(), DefaultParams())
	if !errors.Is(err, emu.ErrStepLimit) {
		t.Errorf("err = %v, want errors.Is(_, emu.ErrStepLimit)", err)
	}
}
