package detect

import (
	"context"
	"runtime"
	"testing"

	"specinterference/internal/core"
	"specinterference/internal/schemes"
)

// TestCellVerdictAllCells is the detector⇔schemes contract: every
// registered policy must yield a verdict (no error) for every gadget and
// ordering the matrix runs, and that verdict must equal the committed
// Table 1 expectation for the cell. This checks the static analysis
// against the paper's ground truth without running the simulator.
func TestCellVerdictAllCells(t *testing.T) {
	expected := core.ExpectedTable1()
	for _, combo := range core.Combos() {
		g := combo[0].(core.Gadget)
		ord := combo[1].(core.Ordering)
		row := expected[g.String()+"|"+ord.String()]
		for _, name := range schemes.Names() {
			v, err := CellVerdict(name, g, ord)
			if err != nil {
				t.Errorf("%s/%s/%s: %v", name, g, ord, err)
				continue
			}
			if want := row[name]; v.Leak != want {
				t.Errorf("%s/%s/%s: detector says %v, Table 1 says leak=%v", name, g, ord, v, want)
			}
			if v.Mechanism == "" {
				t.Errorf("%s/%s/%s: verdict without mechanism", name, g, ord)
			}
		}
	}
}

// TestConcordanceMatrix runs the full empirical-vs-static grid for the
// paper's schemes and requires every cell to match with no enumerated
// exceptions (the allowlist is empty and should stay that way).
func TestConcordanceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator grid in -short mode")
	}
	names := schemes.Names()
	cells, err := Matrix(context.Background(), names, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(cells), Shards(names); got != want {
		t.Fatalf("got %d cells, want %d", got, want)
	}
	for _, c := range cells {
		if c.Exception != "" {
			t.Errorf("%s/%s/%s: unexpected exception entry %q", c.Scheme, c.Gadget, c.Ordering, c.Exception)
		}
	}
}
