package detect

import (
	"context"
	"fmt"

	"specinterference/internal/cache"
	"specinterference/internal/core"
	"specinterference/internal/runner"
	"specinterference/internal/schemes"
	"specinterference/internal/uarch"
)

// CellVerdict statically analyzes one Table 1 cell: it builds the cell's
// victim program and priming plans exactly as the empirical harness does,
// runs the self-composed analysis under the named scheme, and applies the
// per-ordering decision rule.
func CellVerdict(schemeName string, g core.Gadget, ord core.Ordering) (Verdict, error) {
	policy, err := schemes.ByName(schemeName)
	if err != nil {
		return Verdict{}, err
	}
	h := cache.NewHierarchy(core.AttackConfig().Cache)
	l := core.DefaultLayout(h)
	v, err := core.BuildVictim(g, ord, l, core.DefaultVictimParams())
	if err != nil {
		return Verdict{}, err
	}
	var envs [2]Env
	for s := 0; s < 2; s++ {
		plan, err := v.PrimePlan(s)
		if err != nil {
			return Verdict{}, err
		}
		envs[s] = EnvFromPlan(plan)
	}
	rep, err := Analyze(v.Prog, policy, envs, DefaultParams())
	if err != nil {
		return Verdict{}, fmt.Errorf("detect: %s/%s/%s: %w", schemeName, g, ord, err)
	}
	if rep.ArchDiff {
		// The Table 1 victims are constant-time on the correct path by
		// construction; a divergence means the victim builder broke, not
		// that the scheme leaks.
		return Verdict{}, fmt.Errorf("detect: %s/%s/%s: architectural trace depends on the secret", schemeName, g, ord)
	}
	return cellVerdict(rep, g, ord, core.ProbeLines(g, ord, l, v)), nil
}

// cellVerdict is the decision rule: policy gates first, then the gadget's
// differential-pressure signal, then the ordering-specific visibility
// conditions that decide whether the pressure reaches a receiver.
func cellVerdict(rep *Report, g core.Gadget, ord core.Ordering, probes [2]int64) Verdict {
	f := rep.Facts
	if f.StallFetch {
		return Verdict{Leak: false, Mechanism: MechNoSpecFetch}
	}
	if !f.IssueInShadow {
		return Verdict{Leak: false, Mechanism: MechNoSpecIssue}
	}

	var pressure bool
	var mech string
	switch g {
	case core.GadgetNPEU:
		pressure, mech = rep.SqrtDiff(), MechNPEU
	case core.GadgetMSHR:
		pressure, mech = rep.MSHRDiff(), MechMSHR
	case core.GadgetRS:
		pressure, mech = rep.RSDiff(), MechRS
	}
	if !pressure {
		if ord == core.OrderVDVD && rep.FootprintDiff(probes) {
			return Verdict{Leak: true, Mechanism: MechFootprint}
		}
		return Verdict{Leak: false, Mechanism: MechNoPressure}
	}

	switch ord {
	case core.OrderVDVD:
		if rep.FootprintDiff(probes) {
			return Verdict{Leak: true, Mechanism: MechFootprint}
		}
		// The VD-VD receiver reads the ORDER of the victim's own two
		// visible accesses, so pressure only transmits when the scheme
		// lets the delayed load overtake: under TSO (loads stay ordered)
		// or under a futuristic shadow with no visibly-executing
		// speculative loads, visibility is program-ordered regardless of
		// pressure.
		if f.Shadow == uarch.ShadowSpectreTSO ||
			(f.Shadow == uarch.ShadowFuturistic && !rep.AnyVisibleLoad()) {
			return Verdict{Leak: false, Mechanism: MechOrdered}
		}
		// If the wrong path itself visibly caches the reference line under
		// both secrets, the reference access hits and emits no visible
		// event — the clock the receiver compares against disappears.
		if rep.Absorbed(probes[1]) {
			return Verdict{Leak: false, Mechanism: MechAbsorbed}
		}
		return Verdict{Leak: true, Mechanism: mech}
	case core.OrderVDAD:
		// The attacker's cross-core reference load is non-speculative and
		// non-delayable; any differential delay of the victim's visible
		// load flips its order against the reference.
		return Verdict{Leak: true, Mechanism: mech}
	case core.OrderVIAD:
		if g == core.GadgetRS {
			// The G_IRS receiver probes the I-cache line of the
			// not-yet-fetched target block, so the clog must modulate a
			// VISIBLE speculative fetch of that line.
			if f.IFetch != uarch.IFetchVisible {
				return Verdict{Leak: false, Mechanism: MechIFetchProtected}
			}
			if !rep.TargetFetchedWhenDrained(probes[0]) {
				return Verdict{Leak: false, Mechanism: MechTargetNotFetched}
			}
			return Verdict{Leak: true, Mechanism: MechRS}
		}
		// For G_NPEU/G_MSHR the VI receiver times the committed done-block
		// fetch — a correct-path access no speculation scheme may hide —
		// so differential pressure transmits unconditionally.
		return Verdict{Leak: true, Mechanism: mech}
	}
	return Verdict{Leak: false, Mechanism: MechNoPressure}
}

// Cell is one concordance cell: the static verdict side by side with the
// empirical simulator classification.
type Cell struct {
	Scheme   string
	Gadget   core.Gadget
	Ordering core.Ordering
	// Empirical is the simulator's Table 1 classification.
	Empirical bool
	// Detector is the static verdict.
	Detector bool
	// Mechanism is the detector's decisive rule.
	Mechanism string
	// Match is Empirical == Detector.
	Match bool
	// Exception is non-empty when the cell is an enumerated, explained
	// divergence (see exceptions); an unexplained mismatch is an error.
	Exception string
}

// exceptions enumerates the (scheme, gadget, ordering) cells where the
// detector is allowed to disagree with the simulator, keyed
// "scheme|gadget|ordering", with the explanation as value. Currently
// empty: the detector is exact on the full grid, and any regression must
// either be fixed or explained here explicitly.
var exceptions = map[string]string{}

func cellKey(scheme string, g core.Gadget, ord core.Ordering) string {
	return scheme + "|" + g.String() + "|" + ord.String()
}

// Shards returns the concordance shard count for a scheme list: the full
// (combo, scheme) grid.
func Shards(schemeNames []string) int {
	return core.MatrixShards(schemeNames)
}

// Shard computes concordance cell j — combo j/len(schemes), scheme
// j%len(schemes), matching core.MatrixShard's order. Each shard runs the
// empirical classification AND the static analysis, then compares. It is
// a pure function of (schemeNames, j), so it runs identically on any
// execution backend.
func Shard(schemeNames []string, j int) (Cell, error) {
	combo := core.Combos()[j/len(schemeNames)]
	name := schemeNames[j%len(schemeNames)]
	g := combo[0].(core.Gadget)
	ord := combo[1].(core.Ordering)

	empirical, err := core.MatrixShard(schemeNames, j)
	if err != nil {
		return Cell{}, err
	}
	v, err := CellVerdict(name, g, ord)
	if err != nil {
		return Cell{}, err
	}
	c := Cell{
		Scheme:    name,
		Gadget:    g,
		Ordering:  ord,
		Empirical: empirical.Vulnerable,
		Detector:  v.Leak,
		Mechanism: v.Mechanism,
		Exception: exceptions[cellKey(name, g, ord)],
	}
	c.Match = c.Empirical == c.Detector
	return c, nil
}

// Matrix computes the full concordance grid in parallel and fails on any
// mismatch that is not an enumerated exception.
func Matrix(ctx context.Context, schemeNames []string, workers int) ([]Cell, error) {
	cells, err := runner.Map(ctx, Shards(schemeNames), workers, func(_ context.Context, j int) (Cell, error) {
		return Shard(schemeNames, j)
	})
	if err != nil {
		return nil, err
	}
	return cells, CheckCells(cells)
}

// CheckCells returns an error naming every unexplained detector/simulator
// mismatch in cells (nil when fully concordant modulo exceptions).
func CheckCells(cells []Cell) error {
	var bad []string
	for _, c := range cells {
		if !c.Match && c.Exception == "" {
			bad = append(bad, fmt.Sprintf("%s/%s/%s: empirical=%v detector=%v (%s)",
				c.Scheme, c.Gadget, c.Ordering, c.Empirical, c.Detector, c.Mechanism))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("detect: %d unexplained concordance mismatches: %v", len(bad), bad)
	}
	return nil
}
