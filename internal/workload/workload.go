// Package workload provides the synthetic SPEC-like kernels used to
// evaluate defense overhead (the paper's Figure 12 runs SPEC CPU2017 on
// gem5; see DESIGN.md for the substitution argument). Each kernel stresses
// a different pipeline bottleneck so the fence defenses' cost spreads the
// way the paper's per-benchmark bars do:
//
//	pointer_chase — dependent-load latency (mcf-like)
//	stream        — sequential loads/stores (lbm-like)
//	compute       — dense mul/sqrt arithmetic (namd-like)
//	branchy       — data-dependent branches (perlbench/xalancbmk-like)
//	hash          — computed addresses, mixed ALU/memory (xz-like)
//	mixed         — a loop combining all of the above
package workload

import (
	"fmt"

	"specinterference/internal/asm"
	"specinterference/internal/cache"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
)

// Workload is one synthetic kernel.
type Workload struct {
	// Name identifies the kernel in reports.
	Name string
	// Build generates the program for a given scale factor (loop
	// iterations) and a memory initializer.
	Build func(iters int) (*isa.Program, func(*mem.Memory))
}

// dataBase is where workload data lives.
const dataBase = 0x0200_0000

// All returns every kernel.
func All() []Workload {
	return []Workload{
		{Name: "pointer_chase", Build: buildPointerChase},
		{Name: "stream", Build: buildStream},
		{Name: "compute", Build: buildCompute},
		{Name: "branchy", Build: buildBranchy},
		{Name: "hash", Build: buildHash},
		{Name: "mixed", Build: buildMixed},
	}
}

// ByName returns the named kernel.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown kernel %q", name)
}

// buildPointerChase traverses a pseudo-randomly permuted linked list:
// serial dependent loads, memory-latency bound.
func buildPointerChase(iters int) (*isa.Program, func(*mem.Memory)) {
	const nodes = 256
	b := asm.NewBuilder()
	b.MovI(isa.R1, dataBase) // current pointer
	b.MovI(isa.R2, 0)        // iteration counter
	b.MovI(isa.R3, int64(iters))
	b.Label("chase")
	b.Load(isa.R1, isa.R1, 0) // p = *p
	b.AddI(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, "chase")
	b.Halt()
	setup := func(m *mem.Memory) {
		// A permutation cycle over `nodes` line-spaced slots.
		rng := cache.NewRand(12345)
		perm := make([]int64, nodes)
		for i := range perm {
			perm[i] = int64(i)
		}
		for i := len(perm) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i := 0; i < nodes; i++ {
			from := dataBase + perm[i]*mem.LineBytes
			to := dataBase + perm[(i+1)%nodes]*mem.LineBytes
			m.Write64(from, to)
		}
	}
	return b.MustBuild(), setup
}

// buildStream reads and writes a long array sequentially: high memory-level
// parallelism, branch-light.
func buildStream(iters int) (*isa.Program, func(*mem.Memory)) {
	b := asm.NewBuilder()
	b.MovI(isa.R1, dataBase)
	b.MovI(isa.R2, 0)
	b.MovI(isa.R3, int64(iters))
	b.Label("loop")
	b.Load(isa.R4, isa.R1, 0)
	b.Load(isa.R5, isa.R1, 8)
	b.Add(isa.R6, isa.R4, isa.R5)
	b.Store(isa.R1, 16, isa.R6)
	b.AddI(isa.R1, isa.R1, 64)
	b.AddI(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, "loop")
	b.Halt()
	return b.MustBuild(), func(*mem.Memory) {}
}

// buildCompute is a dense arithmetic kernel: mul and sqrt chains with high
// ILP, barely touching memory.
func buildCompute(iters int) (*isa.Program, func(*mem.Memory)) {
	b := asm.NewBuilder()
	b.MovI(isa.R1, 999983)
	b.MovI(isa.R2, 0)
	b.MovI(isa.R3, int64(iters))
	b.MovI(isa.R4, 7)
	b.MovI(isa.R5, 13)
	b.Label("loop")
	b.Mul(isa.R6, isa.R4, isa.R5)
	b.MulI(isa.R7, isa.R6, 3)
	b.Sqrt(isa.R8, isa.R1)
	b.Add(isa.R4, isa.R6, isa.R8)
	b.Sub(isa.R5, isa.R7, isa.R8)
	b.Xor(isa.R1, isa.R1, isa.R7)
	b.AddI(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, "loop")
	b.Halt()
	return b.MustBuild(), func(*mem.Memory) {}
}

// buildBranchy walks a pseudo-random bit table and branches on each bit:
// roughly half the branches mispredict, squash-bound.
func buildBranchy(iters int) (*isa.Program, func(*mem.Memory)) {
	const tableWords = 128
	b := asm.NewBuilder()
	b.MovI(isa.R1, dataBase)
	b.MovI(isa.R2, 0)
	b.MovI(isa.R3, int64(iters))
	b.MovI(isa.R9, tableWords-1)
	b.Label("loop")
	b.And(isa.R4, isa.R2, isa.R9) // index = i % tableWords
	b.ShlI(isa.R4, isa.R4, 3)
	b.Add(isa.R4, isa.R4, isa.R1)
	b.Load(isa.R5, isa.R4, 0) // data-dependent direction
	b.Beq(isa.R5, isa.R0, "even")
	b.AddI(isa.R6, isa.R6, 3)
	b.Jmp("join")
	b.Label("even")
	b.AddI(isa.R6, isa.R6, 1)
	b.Label("join")
	b.AddI(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, "loop")
	b.Halt()
	setup := func(m *mem.Memory) {
		rng := cache.NewRand(777)
		for i := int64(0); i < tableWords; i++ {
			m.Write64(dataBase+i*8, int64(rng.Intn(2)))
		}
	}
	return b.MustBuild(), setup
}

// buildHash mixes computed-address loads, stores and ALU work (xz-like).
func buildHash(iters int) (*isa.Program, func(*mem.Memory)) {
	const maskWords = 511 // 4KB window
	b := asm.NewBuilder()
	b.MovI(isa.R1, dataBase)
	b.MovI(isa.R2, 0)
	b.MovI(isa.R3, int64(iters))
	b.MovI(isa.R9, maskWords)
	b.MovI(isa.R4, 0x9e37)
	b.Label("loop")
	b.Mul(isa.R5, isa.R4, isa.R4)
	b.ShrI(isa.R5, isa.R5, 5)
	b.Xor(isa.R4, isa.R4, isa.R5)
	b.And(isa.R6, isa.R4, isa.R9)
	b.ShlI(isa.R6, isa.R6, 3)
	b.Add(isa.R6, isa.R6, isa.R1)
	b.Load(isa.R7, isa.R6, 0)
	b.Add(isa.R7, isa.R7, isa.R4)
	b.Store(isa.R6, 0, isa.R7)
	b.AddI(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, "loop")
	b.Halt()
	return b.MustBuild(), func(*mem.Memory) {}
}

// buildMixed interleaves chase, stream, arithmetic and a data-dependent
// branch in one loop body.
func buildMixed(iters int) (*isa.Program, func(*mem.Memory)) {
	b := asm.NewBuilder()
	b.MovI(isa.R1, dataBase)
	b.MovI(isa.R2, 0)
	b.MovI(isa.R3, int64(iters))
	b.MovI(isa.R9, 255)
	b.Label("loop")
	b.And(isa.R4, isa.R2, isa.R9)
	b.ShlI(isa.R4, isa.R4, 3)
	b.Add(isa.R4, isa.R4, isa.R1)
	b.Load(isa.R5, isa.R4, 0)
	b.Sqrt(isa.R6, isa.R5)
	b.MulI(isa.R7, isa.R6, 5)
	b.Store(isa.R4, 0, isa.R7)
	b.And(isa.R8, isa.R5, isa.R9)
	b.Beq(isa.R8, isa.R0, "skip")
	b.AddI(isa.R10, isa.R10, 1)
	b.Label("skip")
	b.AddI(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, "loop")
	b.Halt()
	setup := func(m *mem.Memory) {
		rng := cache.NewRand(4242)
		for i := int64(0); i < 256; i++ {
			m.Write64(dataBase+i*8, int64(rng.Uint64()%1024))
		}
	}
	return b.MustBuild(), setup
}
