package workload

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// serialEvaluate is the pre-runner serial loop of Evaluate, kept as the
// golden reference: baseline then schemes per workload, accumulating the
// mean/geomean sums in that order (float addition order matters for
// bit-identity).
func serialEvaluate(t *testing.T, cfg EvalConfig) *EvalResult {
	t.Helper()
	res := &EvalResult{
		Geomean: map[string]float64{},
		Mean:    map[string]float64{},
	}
	logSum := map[string]float64{}
	sum := map[string]float64{}
	for _, w := range All() {
		base, ipc, err := runOnce(w, "unsafe", cfg)
		if err != nil {
			t.Fatalf("serial reference: %v", err)
		}
		row := EvalRow{
			Workload:       w.Name,
			BaselineCycles: base,
			BaselineIPC:    ipc,
			Slowdown:       map[string]float64{},
		}
		for _, s := range cfg.Schemes {
			cycles, _, err := runOnce(w, s, cfg)
			if err != nil {
				t.Fatalf("serial reference: %v", err)
			}
			sd := float64(cycles) / float64(base)
			row.Slowdown[s] = sd
			logSum[s] += math.Log(sd)
			sum[s] += sd
		}
		res.Rows = append(res.Rows, row)
	}
	n := float64(len(res.Rows))
	for _, s := range cfg.Schemes {
		res.Geomean[s] = math.Exp(logSum[s] / n)
		res.Mean[s] = sum[s] / n
	}
	return res
}

// TestEvaluateParallelMatchesSerial asserts the sharded Figure 12 sweep is
// bit-identical (rows, means and geomeans) to the serial loop at worker
// counts 1 and 4.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	cfg := EvalConfig{Iters: 50, MaxCycles: 5_000_000, Schemes: []string{"fence-spectre"}, Cores: 1}
	want := serialEvaluate(t, cfg)
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		got, err := EvaluateContext(context.Background(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: Evaluate = %+v, serial = %+v", workers, got, want)
		}
	}
}
