package workload

import (
	"testing"

	"specinterference/internal/emu"
	"specinterference/internal/mem"
)

func TestAllKernelsTerminateArchitecturally(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, setup := w.Build(50)
			if err := prog.Validate(); err != nil {
				t.Fatal(err)
			}
			m := mem.New()
			setup(m)
			e := emu.New(prog, m)
			res, err := e.Run()
			if err != nil {
				t.Fatalf("emulator: %v", err)
			}
			if !res.Halted {
				t.Error("kernel did not halt")
			}
			if res.InstCount < 50 {
				t.Errorf("only %d instructions for 50 iterations", res.InstCount)
			}
		})
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("stream")
	if err != nil || w.Name != "stream" {
		t.Errorf("ByName(stream) = %v, %v", w.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestKernelNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range All() {
		if seen[w.Name] {
			t.Errorf("duplicate kernel %q", w.Name)
		}
		seen[w.Name] = true
	}
	if len(seen) < 6 {
		t.Errorf("only %d kernels", len(seen))
	}
}

func TestPointerChaseIsSerial(t *testing.T) {
	// The chase list must form a cycle: following `iters` hops never hits
	// address zero (which would mean a broken permutation).
	prog, setup := buildPointerChase(300)
	m := mem.New()
	setup(m)
	e := emu.New(prog, m)
	e.RecordLoads = true
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.LoadAddrs {
		if a == 0 {
			t.Fatalf("chase reached null at hop %d", i)
		}
	}
	// All hops distinct within one lap of the 256-node cycle.
	seen := map[int64]bool{}
	for _, a := range res.LoadAddrs[:256] {
		if seen[a] {
			t.Fatal("chase revisited a node within one lap")
		}
		seen[a] = true
	}
}

func TestBranchyHasUnpredictableBranches(t *testing.T) {
	prog, setup := buildBranchy(200)
	m := mem.New()
	setup(m)
	e := emu.New(prog, m)
	e.RecordBranches = true
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	taken := 0
	inner := 0
	for _, b := range res.Branches {
		if b.PC == prog.Symbols["even"]-3 { // the data-dependent beq
			inner++
			if b.Taken {
				taken++
			}
		}
	}
	if inner == 0 {
		t.Fatal("no data-dependent branches recorded")
	}
	frac := float64(taken) / float64(inner)
	if frac < 0.2 || frac > 0.8 {
		t.Errorf("branch bias %.2f — not unpredictable enough", frac)
	}
}

func TestEvaluateFigure12Shape(t *testing.T) {
	cfg := DefaultEvalConfig()
	cfg.Iters = 300
	res, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(All()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	sp := res.Mean["fence-spectre"]
	fu := res.Mean["fence-futuristic"]
	// Figure 12's shape: Futuristic >> Spectre > baseline.
	if sp < 1.0 {
		t.Errorf("fence-spectre mean %.2fx < 1", sp)
	}
	if fu <= sp {
		t.Errorf("futuristic (%.2fx) must exceed spectre (%.2fx)", fu, sp)
	}
	if fu < 2 {
		t.Errorf("futuristic mean %.2fx implausibly low", fu)
	}
	// The branchy kernel must be among the most hurt under the Spectre
	// model (its cost is concentrated in unresolved branches).
	var branchySD, maxOtherSD float64
	for _, row := range res.Rows {
		if row.Workload == "branchy" {
			branchySD = row.Slowdown["fence-spectre"]
		} else if sd := row.Slowdown["fence-spectre"]; sd > maxOtherSD && row.Workload != "mixed" {
			maxOtherSD = sd
		}
	}
	if branchySD < maxOtherSD {
		t.Errorf("branchy (%.2fx) should suffer most under fence-spectre (max other %.2fx)",
			branchySD, maxOtherSD)
	}
	if out := res.Format(cfg.Schemes); out == "" {
		t.Error("empty format")
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(EvalConfig{Iters: 0}); err == nil {
		t.Error("zero iters accepted")
	}
}
