package workload

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"specinterference/internal/mem"
	"specinterference/internal/runner"
	"specinterference/internal/schemes"
	"specinterference/internal/uarch"
)

// EvalConfig drives a Figure 12 style defense-overhead sweep.
type EvalConfig struct {
	// Iters is the per-kernel loop count.
	Iters int
	// MaxCycles bounds each run.
	MaxCycles int64
	// Schemes lists the policies to evaluate against the unsafe baseline
	// (default: the two §5.2 fence defenses).
	Schemes []string
	// Cores for the machine (Figure 12's system is multi-core; one is
	// enough since the kernels are single-threaded).
	Cores int
	// Workers bounds cell concurrency — one shard per workload×scheme run,
	// baseline included (0 = one per CPU). Every run builds its own system
	// and the sweep is seedless, so results match the serial loop exactly.
	Workers int
}

// DefaultEvalConfig returns the Figure 12 setup.
func DefaultEvalConfig() EvalConfig {
	return EvalConfig{
		Iters:     2000,
		MaxCycles: 30_000_000,
		Schemes:   []string{"fence-spectre", "fence-futuristic"},
		Cores:     1,
	}
}

// EvalRow is one workload's normalized execution times.
type EvalRow struct {
	Workload       string
	BaselineCycles int64
	// Slowdown maps scheme name to execution time normalized to the
	// unsafe baseline (the Figure 12 y-axis).
	Slowdown map[string]float64
	// IPC of the unsafe baseline (diagnostics).
	BaselineIPC float64
}

// EvalResult is the full sweep.
type EvalResult struct {
	Rows []EvalRow
	// Geomean maps scheme name to the geometric-mean slowdown across
	// workloads (the paper reports 1.58x Spectre / 5.38x Futuristic
	// arithmetic averages over SPEC2017).
	Geomean map[string]float64
	// Mean is the arithmetic mean, matching the paper's "on average"
	// phrasing.
	Mean map[string]float64
}

// Cell is one workload×policy measurement of the Figure 12 grid.
type Cell struct {
	// Cycles is the kernel's execution time under the policy.
	Cycles int64 `json:"cycles"`
	// IPC is the run's instructions per cycle (diagnostics).
	IPC float64 `json:"ipc"`
}

// Normalize fills EvalConfig defaults (schemes, cores) the way Evaluate
// does, so shard planning, execution and aggregation all see one config.
func (cfg EvalConfig) Normalize() EvalConfig {
	if cfg.Iters <= 0 {
		cfg.Iters = DefaultEvalConfig().Iters
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = DefaultEvalConfig().MaxCycles
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = DefaultEvalConfig().Schemes
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	return cfg
}

// Policies returns the policy axis of the Figure 12 grid: the unsafe
// baseline followed by the configured schemes.
func (cfg EvalConfig) Policies() []string {
	return append([]string{"unsafe"}, cfg.Schemes...)
}

// EvalShards returns the Figure 12 shard count for a normalized config:
// one per workload×policy cell, baseline included.
func EvalShards(cfg EvalConfig) int {
	return len(All()) * len(cfg.Policies())
}

// EvalShard runs cell j of the grid: workload j/len(policies) under
// policy j%len(policies), where policy 0 is the unsafe baseline. The
// sweep is seedless and every run builds its own system, so EvalShard is
// a pure function of (cfg, j) and runs identically on any backend.
func EvalShard(cfg EvalConfig, j int) (Cell, error) {
	policies := cfg.Policies()
	cycles, ipc, err := runOnce(All()[j/len(policies)], policies[j%len(policies)], cfg)
	return Cell{Cycles: cycles, IPC: ipc}, err
}

// AggregateCells folds the EvalShards(cfg) cells (in shard-index order)
// into the Figure 12 result, replaying the serial loop's aggregation
// order so sums and geomeans are bit-identical however the cells ran.
func AggregateCells(cfg EvalConfig, cells []Cell) *EvalResult {
	ws := All()
	np := len(cfg.Policies())
	res := &EvalResult{
		Geomean: map[string]float64{},
		Mean:    map[string]float64{},
	}
	logSum := map[string]float64{}
	sum := map[string]float64{}
	for wi, w := range ws {
		base := cells[wi*np]
		row := EvalRow{
			Workload:       w.Name,
			BaselineCycles: base.Cycles,
			BaselineIPC:    base.IPC,
			Slowdown:       map[string]float64{},
		}
		for si, s := range cfg.Schemes {
			sd := float64(cells[wi*np+1+si].Cycles) / float64(base.Cycles)
			row.Slowdown[s] = sd
			logSum[s] += math.Log(sd)
			sum[s] += sd
		}
		res.Rows = append(res.Rows, row)
	}
	n := float64(len(res.Rows))
	for _, s := range cfg.Schemes {
		res.Geomean[s] = math.Exp(logSum[s] / n)
		res.Mean[s] = sum[s] / n
	}
	return res
}

// evalSys is one pooled evaluation machine. The pool hands each worker
// goroutine a machine it resets between cells instead of rebuilding —
// System.Reset restores exactly the NewSystem(cfg, mem.New()) state, so
// cells stay pure functions of (cfg, j) with or without reuse.
type evalSys struct {
	cores int
	seed  uint64
	sys   *uarch.System
}

var evalSysPool sync.Pool // *evalSys

// acquireEvalSys returns a machine for the given core count, reusing a
// pooled one when its shape matches.
func acquireEvalSys(cores int) (*evalSys, error) {
	if es, _ := evalSysPool.Get().(*evalSys); es != nil {
		if es.cores == cores {
			es.sys.Reset(es.seed)
			return es, nil
		}
		// Wrong shape for this sweep; drop it and build the right one.
	}
	ucfg := uarch.DefaultConfig(cores)
	sys, err := uarch.NewSystem(ucfg, mem.New())
	if err != nil {
		return nil, err
	}
	return &evalSys{cores: cores, seed: ucfg.Cache.Seed, sys: sys}, nil
}

// runOnce executes one kernel under one policy and returns cycles.
func runOnce(w Workload, policyName string, cfg EvalConfig) (int64, float64, error) {
	prog, setup := w.Build(cfg.Iters)
	es, err := acquireEvalSys(cfg.Cores)
	if err != nil {
		return 0, 0, err
	}
	defer evalSysPool.Put(es)
	sys := es.sys
	setup(sys.Memory())
	var policy uarch.SpecPolicy
	if policyName != "unsafe" {
		policy, err = schemes.ByName(policyName)
		if err != nil {
			return 0, 0, err
		}
	}
	// Warm the code so the comparison measures pipeline policy, not cold
	// instruction misses.
	for pc := 0; pc < prog.Len(); pc++ {
		sys.Hierarchy().WarmInst(0, prog.InstAddr(pc), 0)
	}
	if err := sys.LoadProgram(0, prog, policy); err != nil {
		return 0, 0, err
	}
	if err := sys.Run(cfg.MaxCycles); err != nil {
		return 0, 0, fmt.Errorf("workload %s under %s: %w", w.Name, policyName, err)
	}
	st := sys.Core(0).Stats()
	return st.Cycles, st.IPC(), nil
}

// Evaluate runs every kernel under the unsafe baseline and each scheme,
// producing the Figure 12 table. The workload×scheme cells (baseline
// included) shard across cfg.Workers goroutines; aggregation happens
// afterwards in the serial loop's order, so sums and geomeans are
// bit-identical at any worker count.
func Evaluate(cfg EvalConfig) (*EvalResult, error) {
	return EvaluateContext(context.Background(), cfg)
}

// EvaluateContext is Evaluate with cancellation.
func EvaluateContext(ctx context.Context, cfg EvalConfig) (*EvalResult, error) {
	if cfg.Iters <= 0 {
		return nil, fmt.Errorf("workload: iters must be positive")
	}
	cfg = cfg.Normalize()
	cells, err := runner.Map(ctx, EvalShards(cfg), cfg.Workers,
		func(_ context.Context, j int) (Cell, error) {
			return EvalShard(cfg, j)
		})
	if err != nil {
		return nil, err
	}
	return AggregateCells(cfg, cells), nil
}

// Format renders the result as a Figure 12 style table.
func (r *EvalResult) Format(schemeOrder []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %12s", "workload", "base cycles")
	for _, s := range schemeOrder {
		fmt.Fprintf(&b, " %18s", s)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-15s %12d", row.Workload, row.BaselineCycles)
		for _, s := range schemeOrder {
			fmt.Fprintf(&b, " %17.2fx", row.Slowdown[s])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-15s %12s", "mean", "")
	for _, s := range schemeOrder {
		fmt.Fprintf(&b, " %17.2fx", r.Mean[s])
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-15s %12s", "geomean", "")
	for _, s := range schemeOrder {
		fmt.Fprintf(&b, " %17.2fx", r.Geomean[s])
	}
	b.WriteString("\n")
	return b.String()
}
