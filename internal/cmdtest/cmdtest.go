// Package cmdtest builds and runs the cmd/ binaries for smoke tests: each
// test compiles the main package in its own working directory and asserts
// a zero exit with non-empty output on a tiny workload.
package cmdtest

import (
	"bytes"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Run builds the main package in the test's working directory, executes it
// with args (feeding stdin when non-empty), and returns stdout. Any build
// failure, non-zero exit or empty stdout fails the test.
func Run(t *testing.T, stdin string, args ...string) string {
	t.Helper()
	stdout, stderr, err := run(t, stdin, args...)
	if err != nil {
		t.Fatalf("%s: %v", strings.Join(args, " "), err)
	}
	if stdout == "" {
		t.Fatalf("%s produced no output (stderr: %s)", strings.Join(args, " "), stderr)
	}
	return stdout
}

// RunCapture is Run returning stderr alongside stdout, for asserting on
// diagnostics that must stay off stdout (-progress reporting, -store
// notices). Unlike Run it tolerates an empty stdout: some invocations
// legitimately write only to stderr.
func RunCapture(t *testing.T, stdin string, args ...string) (string, string) {
	t.Helper()
	stdout, stderr, err := run(t, stdin, args...)
	if err != nil {
		t.Fatalf("%s: %v", strings.Join(args, " "), err)
	}
	return stdout, stderr
}

// RunFail is Run for invocations that must exit non-zero (regression
// gates, validation errors). It fails the test when the command succeeds,
// and returns the combined stdout+stderr for assertions on diagnostics.
func RunFail(t *testing.T, stdin string, args ...string) string {
	t.Helper()
	stdout, stderr, err := run(t, stdin, args...)
	if err == nil {
		t.Fatalf("%s exited zero, want failure\nstdout: %s", strings.Join(args, " "), stdout)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("%s did not run: %v", strings.Join(args, " "), err)
	}
	return stdout + stderr
}

// run builds the main package in the test's working directory and executes
// it, returning stdout, stderr and the exit error (nil on success).
func run(t *testing.T, stdin string, args ...string) (string, string, error) {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "smoke.bin")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err = cmd.Run()
	if err != nil {
		err = &runError{args: args, err: err, stderr: stderr.String()}
	}
	return stdout.String(), stderr.String(), err
}

// runError decorates a command failure with its stderr.
type runError struct {
	args   []string
	err    error
	stderr string
}

func (e *runError) Error() string {
	return strings.Join(e.args, " ") + ": " + e.err.Error() + "\nstderr: " + e.stderr
}

// Unwrap exposes the underlying exec error to errors.As callers.
func (e *runError) Unwrap() error { return e.err }
