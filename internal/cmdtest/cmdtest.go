// Package cmdtest builds and runs the cmd/ binaries for smoke tests: each
// test compiles the main package in its own working directory and asserts
// a zero exit with non-empty output on a tiny workload.
package cmdtest

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Run builds the main package in the test's working directory, executes it
// with args (feeding stdin when non-empty), and returns stdout. Any build
// failure, non-zero exit or empty stdout fails the test.
func Run(t *testing.T, stdin string, args ...string) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "smoke.bin")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %s: %v\nstderr: %s", filepath.Base(bin), strings.Join(args, " "), err, stderr.String())
	}
	if stdout.Len() == 0 {
		t.Fatalf("%s produced no output (stderr: %s)", strings.Join(args, " "), stderr.String())
	}
	return stdout.String()
}
