// Package security implements the §5.1 "ideal invisible speculation"
// definition and its checker.
//
// Definition (paraphrasing the paper): let C(E) be the sequence of visible
// shared-cache (LLC) accesses of an execution E, without timing, and let
// NoSpec(E) be the execution that would have occurred had E contained no
// mis-speculations. A design provides ideal invisible speculation iff for
// every execution E: C(E) = C(NoSpec(E)) — non-interference in the sense of
// Goguen-Meseguer.
//
// The checker realizes NoSpec(E) as the same machine, same scheme, same
// initial state, driven by a perfect branch oracle recorded from the
// architectural emulator: everything is identical except that no
// misprediction ever happens.
package security

import (
	"fmt"
	"strings"

	"specinterference/internal/cache"
	"specinterference/internal/emu"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
	"specinterference/internal/uarch"
)

// RunSpec describes one program-under-scheme whose executions are compared.
type RunSpec struct {
	// Prog runs on core 0.
	Prog *isa.Program
	// PolicyFactory builds a fresh policy per run (stateful schemes must
	// not be shared across the E and NoSpec runs).
	PolicyFactory func() uarch.SpecPolicy
	// Config is the machine configuration (cache geometry etc.).
	Config uarch.Config
	// SetupMem initializes memory contents (applied to the emulator and
	// to both machine runs). Optional.
	SetupMem func(*mem.Memory)
	// InitRegs presets architectural registers (emulator and both runs).
	InitRegs map[isa.Reg]int64
	// PrepareSystem applies cache priming and predictor training — the
	// attacker-controlled environment. It must not touch memory contents
	// or registers. Optional.
	PrepareSystem func(*uarch.System) error
	// MaxCycles bounds each run.
	MaxCycles int64
}

// Report is the checker outcome. The two equality notions form a
// hierarchy that maps directly onto the paper's narrative:
//
//   - SetHolds (multiset equality, order ignored) is what invisible
//     speculation schemes actually provide: no access appears or
//     disappears because of mis-speculation. The unprotected baseline
//     fails even this (the classic Spectre footprint).
//   - Holds (sequence equality) is the full §5.1 definition. Invisible
//     speculation schemes fail it — mis-speculation still shifts the
//     timing of bound-to-retire work and with it the ORDER of visible
//     accesses — which is precisely the residual channel the paper's
//     interference attacks weaponize. Only the prediction-free ideal
//     fence satisfies it on this machine.
type Report struct {
	// Holds is true when C(E) == C(NoSpec(E)) as sequences (§5.1).
	Holds bool
	// SetHolds is true when the multisets of visible accesses match.
	SetHolds bool
	// E and NoSpec are the rendered access patterns.
	E, NoSpec []string
	// FirstDiff is the index of the first difference (-1 when equal).
	FirstDiff int
	// Mispredicts counts mispredictions in the E run (0 means the check
	// was vacuous: E had no mis-speculation to hide).
	Mispredicts uint64
}

// PatternOf renders a visible-access log as the timing-free C(E) sequence.
func PatternOf(log []cache.VisibleAccess) []string {
	out := make([]string, len(log))
	for i, a := range log {
		out[i] = fmt.Sprintf("c%d:%s:%#x", a.Core, a.Kind, a.Line)
	}
	return out
}

// Check runs E (real predictor) and NoSpec(E) (oracle) and compares their
// visible LLC access patterns.
func Check(spec RunSpec) (*Report, error) {
	if spec.Prog == nil {
		return nil, fmt.Errorf("security: nil program")
	}
	if spec.MaxCycles == 0 {
		spec.MaxCycles = 2_000_000
	}
	if err := spec.Prog.Validate(); err != nil {
		return nil, err
	}

	// Golden run: record the dynamic branch outcome sequence.
	goldenMem := mem.New()
	if spec.SetupMem != nil {
		spec.SetupMem(goldenMem)
	}
	e := emu.New(spec.Prog, goldenMem)
	e.RecordBranches = true
	for r, v := range spec.InitRegs {
		e.SetReg(r, v)
	}
	golden, err := e.Run()
	if err != nil {
		return nil, fmt.Errorf("security: golden run: %w", err)
	}
	outcomes := make([]bool, len(golden.Branches))
	for i, b := range golden.Branches {
		outcomes[i] = b.Taken
	}

	runOnce := func(oracle []bool) ([]string, uint64, error) {
		m := mem.New()
		if spec.SetupMem != nil {
			spec.SetupMem(m)
		}
		sys, err := uarch.NewSystem(spec.Config, m)
		if err != nil {
			return nil, 0, err
		}
		if spec.PrepareSystem != nil {
			if err := spec.PrepareSystem(sys); err != nil {
				return nil, 0, err
			}
		}
		var policy uarch.SpecPolicy
		if spec.PolicyFactory != nil {
			policy = spec.PolicyFactory()
		}
		if err := sys.LoadProgram(0, spec.Prog, policy); err != nil {
			return nil, 0, err
		}
		for r, v := range spec.InitRegs {
			sys.Core(0).SetReg(r, v)
		}
		if oracle != nil {
			sys.Core(0).SetBranchOracle(oracle)
		}
		sys.Hierarchy().ResetLog()
		if err := sys.Run(spec.MaxCycles); err != nil {
			return nil, 0, err
		}
		_, mispredicts := sys.Core(0).Predictor().Stats()
		return PatternOf(sys.Hierarchy().Log()), mispredicts, nil
	}

	ePattern, mispredicts, err := runOnce(nil)
	if err != nil {
		return nil, fmt.Errorf("security: E run: %w", err)
	}
	nsPattern, _, err := runOnce(outcomes)
	if err != nil {
		return nil, fmt.Errorf("security: NoSpec run: %w", err)
	}

	rep := &Report{E: ePattern, NoSpec: nsPattern, FirstDiff: -1, Mispredicts: mispredicts}
	rep.Holds = len(ePattern) == len(nsPattern)
	n := len(ePattern)
	if len(nsPattern) < n {
		n = len(nsPattern)
	}
	for i := 0; i < n; i++ {
		if ePattern[i] != nsPattern[i] {
			rep.Holds = false
			rep.FirstDiff = i
			break
		}
	}
	if rep.FirstDiff == -1 && len(ePattern) != len(nsPattern) {
		rep.FirstDiff = n
	}
	counts := map[string]int{}
	for _, a := range ePattern {
		counts[a]++
	}
	for _, a := range nsPattern {
		counts[a]--
	}
	rep.SetHolds = true
	for _, c := range counts {
		if c != 0 {
			rep.SetHolds = false
			break
		}
	}
	return rep, nil
}

// Diff renders a short human-readable explanation of a failed check.
func (r *Report) Diff() string {
	if r.Holds {
		return "C(E) = C(NoSpec(E))"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "C(E) has %d visible accesses, C(NoSpec(E)) has %d; first difference at %d\n",
		len(r.E), len(r.NoSpec), r.FirstDiff)
	show := func(name string, p []string) {
		lo := r.FirstDiff - 2
		if lo < 0 {
			lo = 0
		}
		hi := r.FirstDiff + 3
		if hi > len(p) {
			hi = len(p)
		}
		fmt.Fprintf(&b, "  %s:", name)
		for i := lo; i < hi; i++ {
			fmt.Fprintf(&b, " [%d]%s", i, p[i])
		}
		b.WriteString("\n")
	}
	show("E      ", r.E)
	show("NoSpec ", r.NoSpec)
	return b.String()
}
