package security

import (
	"testing"

	"specinterference/internal/asm"
	"specinterference/internal/cache"
	"specinterference/internal/isa"
	"specinterference/internal/schemes"
	"specinterference/internal/uarch"
)

func testConfig() uarch.Config {
	cfg := uarch.DefaultConfig(1)
	cfg.Cache = cache.Config{
		Cores:      1,
		L1I:        cache.Geometry{Sets: 16, Ways: 4, Latency: 1},
		L1D:        cache.Geometry{Sets: 16, Ways: 4, Latency: 4},
		L2:         cache.Geometry{Sets: 64, Ways: 4, Latency: 12},
		LLC:        cache.Geometry{Sets: 256, Ways: 8, Latency: 40},
		LLCSlices:  1,
		L1Policy:   cache.PolicyLRU,
		LLCPolicy:  cache.PolicyQLRU,
		MemLatency: 150,
		DMSHRs:     4,
		Seed:       1,
	}
	return cfg
}

// spectreVictim is the trained-bounds-check program whose final iteration
// transiently loads a probe line on the wrong path.
func spectreVictim() *isa.Program {
	return asm.MustAssemble(`
    movi r1, 131072
    movi r5, 16384
    movi r9, 4
    store r9, 0(r5)
    movi r2, 0
    movi r8, 5
loop:
    flush 0(r5)
    fence               ; clflush is weakly ordered: fence before reload
    load r6, 0(r5)
    blt  r2, r6, in
    jmp  next
in:
    shli r10, r2, 6
    add  r10, r10, r1
    load r7, 0(r10)
next:
    addi r2, r2, 1
    blt  r2, r8, loop
    halt`)
}

func check(t *testing.T, policy func() uarch.SpecPolicy, prog *isa.Program) *Report {
	t.Helper()
	rep, err := Check(RunSpec{
		Prog:          prog,
		PolicyFactory: policy,
		Config:        testConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestUnsafeViolatesDefinition(t *testing.T) {
	rep := check(t, func() uarch.SpecPolicy { return schemes.Unsafe() }, spectreVictim())
	if rep.Mispredicts == 0 {
		t.Fatal("vacuous check: no mispredictions")
	}
	if rep.Holds {
		t.Error("the unprotected baseline must violate ideal invisible speculation")
	}
	if rep.SetHolds {
		t.Error("the baseline leaks a transient footprint: even the access SET must differ")
	}
	if rep.Diff() == "" {
		t.Error("diff rendering empty")
	}
}

func TestIdealFenceSatisfiesDefinition(t *testing.T) {
	for _, name := range []string{"fence-spectre-ideal", "fence-futuristic-ideal"} {
		rep := check(t, func() uarch.SpecPolicy {
			p, err := schemes.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}, spectreVictim())
		if !rep.Holds {
			t.Errorf("%s must satisfy ideal invisible speculation:\n%s", name, rep.Diff())
		}
	}
}

func TestFenceBlocksTheSpectreLeak(t *testing.T) {
	// The non-ideal fence defense blocks the data-side leak on this victim
	// too: wrong-path loads never issue, and wrong-path fetch misses are
	// held back.
	rep := check(t, func() uarch.SpecPolicy {
		return schemes.FenceDefense{Model: schemes.FenceSpectre}
	}, spectreVictim())
	if !rep.Holds {
		t.Errorf("fence-spectre leaked on the Spectre victim:\n%s", rep.Diff())
	}
}

func TestInvisibleSchemesHideDirectVictim(t *testing.T) {
	// Invisible-speculation schemes block the DIRECT transient channel:
	// on this (serialized, flush-fenced) Spectre victim the visible access
	// pattern is fully speculation-invariant. The attacks in internal/core
	// and TestDoMViolatesOnInterferenceShapedProgram below show where this
	// guarantee ends: overlapped bound-to-retire accesses whose ORDER the
	// gadget perturbs.
	for _, name := range []string{"dom", "invisispec-spectre", "muontrap"} {
		rep := check(t, func() uarch.SpecPolicy {
			p, err := schemes.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}, spectreVictim())
		if !rep.SetHolds {
			t.Errorf("%s leaked a footprint (set inequality):\n%s", name, rep.Diff())
		}
		if !rep.Holds {
			t.Errorf("%s altered the access order on the serialized victim:\n%s", name, rep.Diff())
		}
	}
}

func TestDoMViolatesOnInterferenceShapedProgram(t *testing.T) {
	rep := interferenceCheck(t)
	if rep.Mispredicts == 0 {
		t.Fatal("vacuous: branch predicted correctly")
	}
	if rep.Holds {
		t.Error("DoM should violate the definition under speculative interference")
	}
	if !rep.SetHolds {
		t.Error("the violation should be pure reordering: the access SET must match " +
			"(DoM hides the footprint; the interference leaks through order alone)")
	}
}

// interferenceCheck builds the interference-shaped DoM program and runs
// the checker (shared by the test and debugging).
func interferenceCheck(t *testing.T) *Report {
	t.Helper()

	// A single-program VD-VD interference sender: two bound-to-retire
	// loads whose order flips with wrong-path EU contention. DoM permits
	// the reorder, so C(E) != C(NoSpec(E)) — the paper's central claim,
	// expressed in the §5.1 vocabulary.
	b := asm.NewBuilder()
	b.MovI(isa.R1, 0x100040)   // &N (flushed via PrepareSystem)
	b.MovI(isa.R2, 0x140000)   // A
	b.MovI(isa.R3, 0x180000)   // B (same LLC set as A: 256 sets, both set 0)
	b.MovI(isa.R4, 0x130000)   // S (transmitter target, warm)
	b.MovI(isa.R8, 0)          // zero
	b.Load(isa.R10, isa.R1, 0) // N: slow — the speculation window
	// z-chain (arithmetic).
	b.MulI(isa.R11, isa.R8, 1)
	for i := 0; i < 11; i++ {
		b.MulI(isa.R11, isa.R11, 1)
	}
	// f(z) -> A.
	b.Sqrt(isa.R12, isa.R11)
	for i := 1; i < 10; i++ {
		b.Sqrt(isa.R12, isa.R12)
	}
	b.And(isa.R13, isa.R12, isa.R8)
	b.Add(isa.R13, isa.R13, isa.R2)
	b.Load(isa.R14, isa.R13, 0) // A
	// g(z) -> B.
	b.MulI(isa.R15, isa.R11, 1)
	for i := 1; i < 35; i++ {
		b.MulI(isa.R15, isa.R15, 1)
	}
	b.And(isa.R16, isa.R15, isa.R8)
	b.Add(isa.R16, isa.R16, isa.R3)
	b.Load(isa.R17, isa.R16, 0)      // B
	b.Blt(isa.R8, isa.R10, "gadget") // 0 < N(=0): not taken, mistrained taken
	b.Jmp("done")
	b.Label("gadget")
	b.Load(isa.R25, isa.R4, 0) // transmitter (warm L1: returns fast)
	for i := 0; i < 40; i++ {
		b.Sqrt(isa.R26, isa.R25)
	}
	b.Label("spin")
	b.Jmp("spin")
	b.Label("done")
	b.Halt()
	prog := b.MustBuild()

	rep, err := Check(RunSpec{
		Prog:          prog,
		PolicyFactory: func() uarch.SpecPolicy { return schemes.DoM{} },
		Config:        testConfig(),
		PrepareSystem: func(sys *uarch.System) error {
			h := sys.Hierarchy()
			for pc := 0; pc < prog.Len(); pc++ {
				h.WarmInst(0, prog.InstAddr(pc), cache.LevelL1)
			}
			h.Flush(0x100040)
			h.Flush(0x140000)
			h.Flush(0x180000)
			h.Warm(0, 0x130000, cache.LevelL1)
			// Mistrain the bounds check toward taken.
			sys.Core(0).Predictor().Train(prog.Symbols["gadget"]-2, true, 4)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCheckValidation(t *testing.T) {
	if _, err := Check(RunSpec{}); err == nil {
		t.Error("nil program accepted")
	}
	bad := asm.NewBuilder().Jmp("x").Label("x").Halt().MustBuild()
	bad.Insts[0].Target = 99
	if _, err := Check(RunSpec{Prog: bad, Config: testConfig()}); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestPatternOf(t *testing.T) {
	log := []cache.VisibleAccess{
		{Core: 0, Line: 0x40, Kind: cache.KindDataRead},
		{Core: 1, Line: 0x80, Kind: cache.KindInstFetch},
	}
	p := PatternOf(log)
	if len(p) != 2 || p[0] != "c0:read:0x40" || p[1] != "c1:fetch:0x80" {
		t.Errorf("pattern = %v", p)
	}
}

func TestReportDiffWhenHolds(t *testing.T) {
	r := &Report{Holds: true}
	if r.Diff() != "C(E) = C(NoSpec(E))" {
		t.Error("holds diff")
	}
}
