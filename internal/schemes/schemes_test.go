package schemes

import (
	"testing"

	"specinterference/internal/asm"
	"specinterference/internal/cache"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
	"specinterference/internal/uarch"
)

func testConfig(cores int) uarch.Config {
	cfg := uarch.DefaultConfig(cores)
	cfg.Cache = cache.Config{
		Cores:      cores,
		L1I:        cache.Geometry{Sets: 16, Ways: 4, Latency: 1},
		L1D:        cache.Geometry{Sets: 16, Ways: 4, Latency: 4},
		L2:         cache.Geometry{Sets: 64, Ways: 4, Latency: 12},
		LLC:        cache.Geometry{Sets: 256, Ways: 8, Latency: 40},
		LLCSlices:  1,
		L1Policy:   cache.PolicyLRU,
		LLCPolicy:  cache.PolicyQLRU,
		MemLatency: 150,
		DMSHRs:     4,
		Seed:       1,
	}
	return cfg
}

// spectreProgram builds the canonical trained-bounds-check program whose
// final iteration transiently loads `probe+4*64` on the wrong path.
func spectreProgram() *isa.Program {
	return asm.MustAssemble(`
    movi r1, 131072       ; probe base
    movi r5, 16384        ; &N
    movi r9, 4
    store r9, 0(r5)       ; N = 4
    movi r2, 0            ; i
    movi r8, 5
loop:
    flush 0(r5)
    fence               ; clflush is weakly ordered: fence before reload
    load r6, 0(r5)
    blt  r2, r6, in
    jmp  next
in:
    shli r10, r2, 6
    add  r10, r10, r1
    load r7, 0(r10)
next:
    addi r2, r2, 1
    blt  r2, r8, loop
    halt`)
}

// runSpectre runs the canonical transient-load program under policy and
// reports whether the transient line ended up in the LLC, plus the core.
func runSpectre(t *testing.T, policy uarch.SpecPolicy) (leaked bool, c *uarch.Core) {
	t.Helper()
	p := spectreProgram()
	s := uarch.MustNewSystem(testConfig(1), mem.New())
	for pc := 0; pc < p.Len(); pc++ {
		s.Hierarchy().WarmInst(0, p.InstAddr(pc), cache.LevelL1)
	}
	if err := s.LoadProgram(0, p, policy); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(500_000); err != nil {
		t.Fatal(err)
	}
	transient := int64(131072 + 4*64)
	return s.Hierarchy().LLCSlice(transient).Contains(transient), s.Core(0)
}

func TestUnsafeLeaksTransientLoad(t *testing.T) {
	leaked, c := runSpectre(t, Unsafe())
	if !leaked {
		t.Error("baseline should leak the transient line")
	}
	if c.Reg(isa.R2) != 5 {
		t.Errorf("r2 = %d, want 5", c.Reg(isa.R2))
	}
}

// Every invisible-speculation scheme must block the direct transient-load
// footprint — that is their core security claim, which the paper's attacks
// then bypass through interference rather than through this direct channel.
func TestAllSchemesBlockDirectTransientFootprint(t *testing.T) {
	for _, p := range All() {
		if p.Name() == "unsafe" {
			continue
		}
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			leaked, c := runSpectre(t, p)
			if leaked {
				t.Errorf("%s: transient load left an LLC footprint", p.Name())
			}
			if c.Reg(isa.R2) != 5 {
				t.Errorf("%s: r2 = %d, want 5 (architectural breakage)", p.Name(), c.Reg(isa.R2))
			}
		})
	}
}

func TestFenceDefensesBlockDirectTransientFootprint(t *testing.T) {
	for _, name := range []string{"fence-spectre", "fence-futuristic",
		"fence-spectre-ideal", "fence-futuristic-ideal"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			leaked, c := runSpectre(t, p)
			if leaked {
				t.Errorf("%s: transient load left an LLC footprint", name)
			}
			if c.Reg(isa.R2) != 5 {
				t.Errorf("%s: r2 = %d, want 5", name, c.Reg(isa.R2))
			}
		})
	}
}

// All schemes must preserve architectural semantics on an ordinary program.
func TestSchemesArchitecturallyTransparent(t *testing.T) {
	prog := asm.MustAssemble(`
    movi r1, 4096
    movi r2, 17
    store r2, 0(r1)
    movi r3, 0
    movi r4, 6
loop:
    load r5, 0(r1)
    add  r6, r6, r5
    addi r3, r3, 1
    blt  r3, r4, loop
    sqrt r7, r6
    halt`)
	policies := All()
	for _, name := range Names() {
		if p, err := ByName(name); err == nil {
			policies = append(policies, p)
		}
	}
	for _, p := range policies {
		s := uarch.MustNewSystem(testConfig(1), mem.New())
		if err := s.LoadProgram(0, prog, p); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(500_000); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		c := s.Core(0)
		if c.Reg(isa.R6) != 102 || c.Reg(isa.R7) != 10 {
			t.Errorf("%s: r6=%d r7=%d, want 102/10", p.Name(), c.Reg(isa.R6), c.Reg(isa.R7))
		}
	}
}

func TestDoMDelaysSpeculativeMisses(t *testing.T) {
	_, c := runSpectre(t, DoM{})
	if c.Stats().LoadsDelayed == 0 {
		t.Error("DoM should have delayed speculative misses")
	}
}

func TestInvisiSpecExposes(t *testing.T) {
	// A speculative load on the CORRECT path completes invisibly, becomes
	// safe when the branch resolves, and must then expose visibly.
	prog := asm.MustAssemble(`
    movi r1, 16384
    movi r2, 131072
    flush 0(r1)
    load r3, 0(r1)        ; slow: branch resolves late
    movi r4, 1
    blt  r0, r4, go       ; always taken; predictor warms up quickly
go:
    load r5, 0(r2)        ; speculative while older branch unresolved
    halt`)
	s := uarch.MustNewSystem(testConfig(1), mem.New())
	if err := s.LoadProgram(0, prog, InvisiSpec{Mode: InvisiSpecSpectre}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(500_000); err != nil {
		t.Fatal(err)
	}
	probe := int64(131072)
	if !s.Hierarchy().LLCSlice(probe).Contains(probe) {
		t.Error("correct-path speculative load was never exposed")
	}
}

func TestMuonTrapFilter(t *testing.T) {
	m := NewMuonTrap(8, 4)
	if _, hit := m.FilterLookup(0x1000); hit {
		t.Error("empty filter hit")
	}
	m.OnInvisibleFill(0x1000)
	if lat, hit := m.FilterLookup(0x1000); !hit || lat <= 0 {
		t.Error("filter should hit after fill")
	}
	m.OnSquash()
	if _, hit := m.FilterLookup(0x1000); hit {
		t.Error("filter should be empty after squash")
	}
}

func TestMuonTrapVisibleAccessesInCommitOrder(t *testing.T) {
	// Two loads that execute out of order (first has a slow address chain)
	// must still produce visible LLC accesses in program order under
	// MuonTrap, because installs happen at commit.
	prog := asm.MustAssemble(`
    movi r1, 16384
    movi r2, 131072
    movi r3, 135168
    flush 0(r1)
    load r4, 0(r1)        ; slow chain head
    and  r5, r4, r0       ; r5 = 0, but only after the slow load
    add  r6, r5, r2       ; addr A depends on slow chain
    load r7, 0(r6)        ; A (late issue)
    load r8, 0(r3)        ; B (early issue)
    halt`)
	s := uarch.MustNewSystem(testConfig(1), mem.New())
	if err := s.LoadProgram(0, prog, NewMuonTrap(8, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(500_000); err != nil {
		t.Fatal(err)
	}
	var lines []int64
	for _, a := range s.Hierarchy().Log() {
		if a.Kind == cache.KindDataRead && (a.Line == 131072 || a.Line == 135168) {
			lines = append(lines, a.Line)
		}
	}
	if len(lines) < 2 || lines[0] != 131072 || lines[1] != 135168 {
		t.Errorf("visible order = %v, want program order (A then B)", lines)
	}
}

func TestFenceSpectreSlowerThanUnsafe(t *testing.T) {
	prog := asm.MustAssemble(`
    movi r1, 0
    movi r2, 50
loop:
    addi r3, r3, 7
    muli r4, r3, 3
    addi r1, r1, 1
    blt  r1, r2, loop
    halt`)
	run := func(p uarch.SpecPolicy) int64 {
		s := uarch.MustNewSystem(testConfig(1), mem.New())
		for pc := 0; pc < prog.Len(); pc++ {
			s.Hierarchy().WarmInst(0, prog.InstAddr(pc), cache.LevelL1)
		}
		if err := s.LoadProgram(0, prog, p); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		return s.Core(0).Stats().Cycles
	}
	unsafe := run(Unsafe())
	spectre := run(FenceDefense{Model: FenceSpectre})
	futuristic := run(FenceDefense{Model: FenceFuturistic})
	if spectre <= unsafe {
		t.Errorf("fence-spectre (%d) not slower than unsafe (%d)", spectre, unsafe)
	}
	if futuristic <= spectre {
		t.Errorf("fence-futuristic (%d) not slower than fence-spectre (%d)", futuristic, spectre)
	}
}

func TestByNameRoundTrip(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestShadowModels(t *testing.T) {
	cases := map[string]uarch.ShadowModel{
		"dom":                   uarch.ShadowSpectre,
		"dom-tso":               uarch.ShadowSpectreTSO,
		"invisispec-spectre":    uarch.ShadowSpectre,
		"invisispec-futuristic": uarch.ShadowFuturistic,
		"safespec-wfb":          uarch.ShadowSpectre,
		"safespec-wfc":          uarch.ShadowFuturistic,
		"muontrap":              uarch.ShadowFuturistic,
		"condspec":              uarch.ShadowFuturistic,
	}
	for name, want := range cases {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Shadow() != want {
			t.Errorf("%s shadow = %s, want %s", name, p.Shadow(), want)
		}
	}
}

func TestIFetchModes(t *testing.T) {
	visible := []string{"unsafe", "dom", "invisispec-spectre", "invisispec-futuristic"}
	for _, name := range visible {
		p, _ := ByName(name)
		if p.IFetch() != uarch.IFetchVisible {
			t.Errorf("%s should leave the I-cache unprotected", name)
		}
	}
	protected := []string{"safespec-wfb", "muontrap", "condspec", "fence-spectre"}
	for _, name := range protected {
		p, _ := ByName(name)
		if p.IFetch() == uarch.IFetchVisible {
			t.Errorf("%s should protect speculative I-fetch", name)
		}
	}
}
