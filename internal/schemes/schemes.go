// Package schemes implements the invisible-speculation proposals the paper
// attacks (§2.2, §3.3.1) and the defenses it proposes (§5), as uarch
// speculation policies:
//
//	Unsafe                      — unprotected baseline
//	DoM (TSO / non-TSO)         — Delay-on-Miss, Sakalis et al. ISCA'19
//	InvisiSpec (Spectre / Futuristic) — Yan et al. MICRO'18
//	SafeSpec (WFB / WFC)        — Khasawneh et al. DAC'19
//	MuonTrap                    — Ainsworth & Jones ISCA'20 (filter cache)
//	Conditional Speculation     — Li et al. HPCA'19
//	Fence defense (§5.2)        — Spectre / Futuristic variants, plus the
//	                              prediction-free "ideal" variant that also
//	                              satisfies the §5.1 definition exactly
//
// The schemes are behavioural models: each captures the load-visibility,
// shadow and instruction-fetch rules that the paper's Table 1 analysis
// depends on, not the proposals' full hardware detail.
package schemes

import (
	"fmt"

	"specinterference/internal/cache"
	"specinterference/internal/uarch"
)

// Unsafe returns the unprotected baseline policy.
func Unsafe() uarch.SpecPolicy { return uarch.Unprotected{} }

// ---------------------------------------------------------------------------
// Delay-on-Miss

// DoM is Delay-on-Miss (§2.2): a speculative load that hits the L1 executes
// and forwards its result, deferring the replacement-state update until it
// becomes safe; a speculative load that misses is delayed and re-executed
// when safe. TSO selects the memory consistency model: under TSO no two
// unprotected loads are concurrently in flight, which closes the VD-VD
// reordering channel (Table 1 lists only "DoM (non-TSO)" under GDNPEU
// VD-VD).
type DoM struct {
	// TSO selects the TSO variant.
	TSO bool
}

// Name implements uarch.SpecPolicy.
func (d DoM) Name() string {
	if d.TSO {
		return "dom-tso"
	}
	return "dom"
}

// Shadow implements uarch.SpecPolicy.
func (d DoM) Shadow() uarch.ShadowModel {
	if d.TSO {
		return uarch.ShadowSpectreTSO
	}
	return uarch.ShadowSpectre
}

// DecideLoad implements uarch.SpecPolicy.
func (d DoM) DecideLoad(ctx uarch.LoadCtx) uarch.LoadAction {
	if ctx.L1Hit {
		return uarch.ActInvisible
	}
	return uarch.ActDelay
}

// ExposeOnSafe implements uarch.SpecPolicy.
func (DoM) ExposeOnSafe() bool { return false }

// TouchOnSafe implements uarch.SpecPolicy: the deferred replacement update.
func (DoM) TouchOnSafe() bool { return true }

// IFetch implements uarch.SpecPolicy: DoM leaves the I-cache unprotected
// (§3.2.2: "Such accesses are performed by InvisiSpec and DoM").
func (DoM) IFetch() uarch.IFetchMode { return uarch.IFetchVisible }

// CanIssue implements uarch.SpecPolicy.
func (DoM) CanIssue(bool) bool { return true }

// StallFetchInShadow implements uarch.SpecPolicy.
func (DoM) StallFetchInShadow() bool { return false }

// ---------------------------------------------------------------------------
// InvisiSpec

// InvisiSpecMode selects InvisiSpec's threat model.
type InvisiSpecMode int

// InvisiSpec modes.
const (
	// InvisiSpecSpectre defends only control-flow speculation: a load is
	// safe once all older branches have resolved.
	InvisiSpecSpectre InvisiSpecMode = iota
	// InvisiSpecFuturistic defends all speculation sources: a load is safe
	// only once every older instruction has completed.
	InvisiSpecFuturistic
)

// InvisiSpec issues speculative loads as invisible requests that change no
// cache state (but do occupy MSHRs on a miss — the GDMSHR lever), then
// exposes/validates them with a visible access once safe.
type InvisiSpec struct {
	Mode InvisiSpecMode
}

// Name implements uarch.SpecPolicy.
func (p InvisiSpec) Name() string {
	if p.Mode == InvisiSpecFuturistic {
		return "invisispec-futuristic"
	}
	return "invisispec-spectre"
}

// Shadow implements uarch.SpecPolicy.
func (p InvisiSpec) Shadow() uarch.ShadowModel {
	if p.Mode == InvisiSpecFuturistic {
		return uarch.ShadowFuturistic
	}
	return uarch.ShadowSpectre
}

// DecideLoad implements uarch.SpecPolicy.
func (InvisiSpec) DecideLoad(uarch.LoadCtx) uarch.LoadAction { return uarch.ActInvisible }

// ExposeOnSafe implements uarch.SpecPolicy.
func (InvisiSpec) ExposeOnSafe() bool { return true }

// TouchOnSafe implements uarch.SpecPolicy.
func (InvisiSpec) TouchOnSafe() bool { return false }

// IFetch implements uarch.SpecPolicy: unprotected I-cache.
func (InvisiSpec) IFetch() uarch.IFetchMode { return uarch.IFetchVisible }

// CanIssue implements uarch.SpecPolicy.
func (InvisiSpec) CanIssue(bool) bool { return true }

// StallFetchInShadow implements uarch.SpecPolicy.
func (InvisiSpec) StallFetchInShadow() bool { return false }

// ---------------------------------------------------------------------------
// SafeSpec

// SafeSpecMode selects when SafeSpec commits shadow state.
type SafeSpecMode int

// SafeSpec modes.
const (
	// SafeSpecWFB (wait-for-branch) unprotects a load once older branches
	// resolve.
	SafeSpecWFB SafeSpecMode = iota
	// SafeSpecWFC (wait-for-commit) unprotects a load only at the head of
	// the ROB.
	SafeSpecWFC
)

// SafeSpec buffers speculative loads in shadow structures: invisible
// requests (MSHR-occupying on a miss) whose fills move into the real caches
// when the load is safe. Unlike InvisiSpec/DoM, SafeSpec also shadows
// speculative instruction fetches.
type SafeSpec struct {
	Mode SafeSpecMode
}

// Name implements uarch.SpecPolicy.
func (p SafeSpec) Name() string {
	if p.Mode == SafeSpecWFC {
		return "safespec-wfc"
	}
	return "safespec-wfb"
}

// Shadow implements uarch.SpecPolicy.
func (p SafeSpec) Shadow() uarch.ShadowModel {
	if p.Mode == SafeSpecWFC {
		return uarch.ShadowFuturistic
	}
	return uarch.ShadowSpectre
}

// DecideLoad implements uarch.SpecPolicy.
func (SafeSpec) DecideLoad(uarch.LoadCtx) uarch.LoadAction { return uarch.ActInvisible }

// ExposeOnSafe implements uarch.SpecPolicy.
func (SafeSpec) ExposeOnSafe() bool { return true }

// TouchOnSafe implements uarch.SpecPolicy.
func (SafeSpec) TouchOnSafe() bool { return false }

// IFetch implements uarch.SpecPolicy: shadow I-structures — speculative
// fetches do not change I-cache state (hence SafeSpec is absent from the
// GIRS row of Table 1).
func (SafeSpec) IFetch() uarch.IFetchMode { return uarch.IFetchInvisible }

// CanIssue implements uarch.SpecPolicy.
func (SafeSpec) CanIssue(bool) bool { return true }

// StallFetchInShadow implements uarch.SpecPolicy.
func (SafeSpec) StallFetchInShadow() bool { return false }

// ---------------------------------------------------------------------------
// MuonTrap

// MuonTrap gives each core a small filter cache for speculative fills: a
// speculative load misses invisibly into the filter (occupying an MSHR —
// the Table 1 GDMSHR row includes MuonTrap), hits in the filter are served
// locally, the filter is flushed on squash, and surviving lines install
// into the real hierarchy when the load commits. Visible accesses thus
// happen in commit order, which closes VD-VD reordering but not the
// VD-AD/VI-AD attacker-reference-clock orderings.
type MuonTrap struct {
	filter    *cache.Cache
	filterLat int64
}

// NewMuonTrap builds a MuonTrap policy with a sets×ways filter cache.
func NewMuonTrap(sets, ways int) *MuonTrap {
	return &MuonTrap{
		filter:    cache.NewCache("muontrap-filter", sets, ways, 2, cache.PolicyLRU, nil),
		filterLat: 2,
	}
}

// Name implements uarch.SpecPolicy.
func (*MuonTrap) Name() string { return "muontrap" }

// Shadow implements uarch.SpecPolicy: commit-time unprotection.
func (*MuonTrap) Shadow() uarch.ShadowModel { return uarch.ShadowFuturistic }

// DecideLoad implements uarch.SpecPolicy.
func (*MuonTrap) DecideLoad(uarch.LoadCtx) uarch.LoadAction { return uarch.ActInvisible }

// ExposeOnSafe implements uarch.SpecPolicy: the commit-time L1 install.
func (*MuonTrap) ExposeOnSafe() bool { return true }

// TouchOnSafe implements uarch.SpecPolicy.
func (*MuonTrap) TouchOnSafe() bool { return false }

// IFetch implements uarch.SpecPolicy: MuonTrap filters instruction fills
// too, so speculative fetch leaves no I-cache state.
func (*MuonTrap) IFetch() uarch.IFetchMode { return uarch.IFetchInvisible }

// CanIssue implements uarch.SpecPolicy.
func (*MuonTrap) CanIssue(bool) bool { return true }

// StallFetchInShadow implements uarch.SpecPolicy.
func (*MuonTrap) StallFetchInShadow() bool { return false }

// FilterLookup implements uarch.FilterPolicy.
func (m *MuonTrap) FilterLookup(addr int64) (int64, bool) {
	if m.filter.Contains(addr) {
		m.filter.Touch(addr)
		return m.filterLat, true
	}
	return 0, false
}

// OnInvisibleFill implements uarch.FilterPolicy.
func (m *MuonTrap) OnInvisibleFill(addr int64) { m.filter.Fill(addr) }

// OnSquash implements uarch.FilterPolicy: the filter holds only speculative
// state and is cleared on any squash.
func (m *MuonTrap) OnSquash() { m.filter.InvalidateAll() }

// Filter exposes the filter cache for tests.
func (m *MuonTrap) Filter() *cache.Cache { return m.filter }

// ResetPolicy implements uarch.ResettablePolicy: the filter returns to its
// just-constructed state (all ways invalid, replacement metadata fresh), so
// a memoized MuonTrap is indistinguishable from a NewMuonTrap build.
func (m *MuonTrap) ResetPolicy() { m.filter.Reset() }

// ---------------------------------------------------------------------------
// Conditional Speculation

// CondSpec models Conditional Speculation (Li et al.): "suspicious"
// speculative loads — cache misses — are delayed until the load is the
// oldest in flight; speculative hits proceed without changing replacement
// state. Speculative I-fetch misses are likewise held back.
type CondSpec struct{}

// Name implements uarch.SpecPolicy.
func (CondSpec) Name() string { return "condspec" }

// Shadow implements uarch.SpecPolicy.
func (CondSpec) Shadow() uarch.ShadowModel { return uarch.ShadowFuturistic }

// DecideLoad implements uarch.SpecPolicy.
func (CondSpec) DecideLoad(ctx uarch.LoadCtx) uarch.LoadAction {
	if ctx.L1Hit {
		return uarch.ActInvisible
	}
	return uarch.ActDelay
}

// ExposeOnSafe implements uarch.SpecPolicy.
func (CondSpec) ExposeOnSafe() bool { return false }

// TouchOnSafe implements uarch.SpecPolicy.
func (CondSpec) TouchOnSafe() bool { return true }

// IFetch implements uarch.SpecPolicy.
func (CondSpec) IFetch() uarch.IFetchMode { return uarch.IFetchDelay }

// CanIssue implements uarch.SpecPolicy.
func (CondSpec) CanIssue(bool) bool { return true }

// StallFetchInShadow implements uarch.SpecPolicy.
func (CondSpec) StallFetchInShadow() bool { return false }

// ---------------------------------------------------------------------------
// CleanupSpec

// CleanupSpec models Saileshwar & Qureshi's "undo" approach (discussed in
// the paper's §6): speculative loads execute and fill caches normally, but
// fills caused by squashed loads are invalidated when the squash happens,
// and the recommended deployment randomizes LLC replacement to blunt
// replacement-state receivers. CleanupSpec blocks the direct transient
// footprint yet — as the paper notes — "does not block speculative
// interference but makes its exploitation more challenging": the
// bound-to-retire reordering survives, while the QLRU receiver degrades
// once the LLC replacement is randomized (see the ablation benchmarks).
//
// Modelling scope: data-side fill undo only (instruction fills are not
// undone), and the replacement-randomization is a machine configuration
// (cache.PolicyRandom) rather than part of the policy object.
type CleanupSpec struct{}

// Name implements uarch.SpecPolicy.
func (CleanupSpec) Name() string { return "cleanupspec" }

// Shadow implements uarch.SpecPolicy.
func (CleanupSpec) Shadow() uarch.ShadowModel { return uarch.ShadowSpectre }

// DecideLoad implements uarch.SpecPolicy: speculative loads run visibly.
func (CleanupSpec) DecideLoad(uarch.LoadCtx) uarch.LoadAction { return uarch.ActVisible }

// ExposeOnSafe implements uarch.SpecPolicy.
func (CleanupSpec) ExposeOnSafe() bool { return false }

// TouchOnSafe implements uarch.SpecPolicy.
func (CleanupSpec) TouchOnSafe() bool { return false }

// IFetch implements uarch.SpecPolicy.
func (CleanupSpec) IFetch() uarch.IFetchMode { return uarch.IFetchVisible }

// CanIssue implements uarch.SpecPolicy.
func (CleanupSpec) CanIssue(bool) bool { return true }

// StallFetchInShadow implements uarch.SpecPolicy.
func (CleanupSpec) StallFetchInShadow() bool { return false }

// UndoSpeculativeFills implements uarch.UndoPolicy.
func (CleanupSpec) UndoSpeculativeFills() bool { return true }

// ---------------------------------------------------------------------------
// Fence defense (§5.2)

// FenceModel selects the threat model of the basic fence defense.
type FenceModel int

// Fence defense models.
const (
	// FenceSpectre inserts a fence after every conditional branch: younger
	// instructions dispatch but do not issue until the branch resolves.
	FenceSpectre FenceModel = iota
	// FenceFuturistic fences after every instruction that may squash:
	// younger instructions issue only when all older ones have completed.
	FenceFuturistic
)

// FenceDefense is the §5.2 basic defense: hardware-inserted fences that
// allow dispatch but block issue until the fenced instruction becomes
// non-speculative. Speculative I-fetch misses are held back so wrong-path
// fetch cannot leave I-cache state.
//
// Ideal additionally stops fetch (not just issue) inside a speculative
// shadow, and never consults the branch predictor: with Ideal set the
// machine's visible LLC access pattern provably equals its mis-speculation-
// free counterpart — C(E) = C(NoSpec(E)), the §5.1 definition. Without
// Ideal, a residual channel remains: wrong-path fetch work can shift the
// *timing* (though not the content) of later visible accesses around a
// squash, which is exactly the paper's point that timing is hard to fully
// scrub out of cache-based definitions.
type FenceDefense struct {
	Model FenceModel
	Ideal bool
}

// Name implements uarch.SpecPolicy.
func (f FenceDefense) Name() string {
	s := "fence-spectre"
	if f.Model == FenceFuturistic {
		s = "fence-futuristic"
	}
	if f.Ideal {
		s += "-ideal"
	}
	return s
}

// Shadow implements uarch.SpecPolicy.
func (f FenceDefense) Shadow() uarch.ShadowModel {
	if f.Model == FenceFuturistic {
		return uarch.ShadowFuturistic
	}
	return uarch.ShadowSpectre
}

// DecideLoad implements uarch.SpecPolicy. Unreachable in practice: the
// issue gate keeps unsafe loads from issuing at all. Delay defensively.
func (FenceDefense) DecideLoad(uarch.LoadCtx) uarch.LoadAction { return uarch.ActDelay }

// ExposeOnSafe implements uarch.SpecPolicy.
func (FenceDefense) ExposeOnSafe() bool { return false }

// TouchOnSafe implements uarch.SpecPolicy.
func (FenceDefense) TouchOnSafe() bool { return false }

// IFetch implements uarch.SpecPolicy.
func (FenceDefense) IFetch() uarch.IFetchMode { return uarch.IFetchDelay }

// CanIssue implements uarch.SpecPolicy: the fence — only safe instructions
// issue.
func (FenceDefense) CanIssue(safe bool) bool { return safe }

// StallFetchInShadow implements uarch.SpecPolicy.
func (f FenceDefense) StallFetchInShadow() bool { return f.Ideal }

// ---------------------------------------------------------------------------

// All returns one instance of every scheme the paper analyses, in the order
// used by the Table 1 harness. Stateful schemes are freshly constructed.
func All() []uarch.SpecPolicy {
	return []uarch.SpecPolicy{
		Unsafe(),
		InvisiSpec{Mode: InvisiSpecSpectre},
		InvisiSpec{Mode: InvisiSpecFuturistic},
		DoM{TSO: false},
		DoM{TSO: true},
		SafeSpec{Mode: SafeSpecWFB},
		SafeSpec{Mode: SafeSpecWFC},
		NewMuonTrap(8, 4),
		CondSpec{},
		CleanupSpec{},
	}
}

// ByName constructs a scheme from its Name() string (CLI convenience).
func ByName(name string) (uarch.SpecPolicy, error) {
	switch name {
	case "unsafe":
		return Unsafe(), nil
	case "dom":
		return DoM{}, nil
	case "dom-tso":
		return DoM{TSO: true}, nil
	case "invisispec-spectre":
		return InvisiSpec{Mode: InvisiSpecSpectre}, nil
	case "invisispec-futuristic":
		return InvisiSpec{Mode: InvisiSpecFuturistic}, nil
	case "safespec-wfb":
		return SafeSpec{Mode: SafeSpecWFB}, nil
	case "safespec-wfc":
		return SafeSpec{Mode: SafeSpecWFC}, nil
	case "muontrap":
		return NewMuonTrap(8, 4), nil
	case "condspec":
		return CondSpec{}, nil
	case "cleanupspec":
		return CleanupSpec{}, nil
	case "fence-spectre":
		return FenceDefense{Model: FenceSpectre}, nil
	case "fence-futuristic":
		return FenceDefense{Model: FenceFuturistic}, nil
	case "fence-spectre-ideal":
		return FenceDefense{Model: FenceSpectre, Ideal: true}, nil
	case "fence-futuristic-ideal":
		return FenceDefense{Model: FenceFuturistic, Ideal: true}, nil
	default:
		return nil, fmt.Errorf("schemes: unknown scheme %q", name)
	}
}

// Names lists every name ByName accepts.
func Names() []string {
	return []string{
		"unsafe", "dom", "dom-tso",
		"invisispec-spectre", "invisispec-futuristic",
		"safespec-wfb", "safespec-wfc",
		"muontrap", "condspec", "cleanupspec",
		"fence-spectre", "fence-futuristic",
		"fence-spectre-ideal", "fence-futuristic-ideal",
	}
}
