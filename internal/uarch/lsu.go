package uarch

import "specinterference/internal/cache"

// lsuTick advances every in-flight load: (re)attempts cache accesses,
// finishes walks whose data arrived, re-issues delayed loads that became
// safe, and performs deferred exposes/touches for invisibly-completed loads.
func (c *Core) lsuTick(cycle int64) {
	model := c.policy.Shadow()
	for _, e := range c.memOrder {
		if !e.isLoad() {
			continue
		}
		switch e.mstate {
		case memRetry:
			if e.issued {
				c.attemptAccess(e, cycle)
				// A still-retrying load is the one attempt that can leave the
				// machine unchanged (forwarding store's data pending, or MSHR
				// file full — the latter marks e invisible/wasL1Hit, but those
				// writes are idempotent and cycle-independent, so replaying
				// the attempt each skipped cycle reproduces them exactly).
				if e.mstate != memRetry {
					c.progressed = true
				}
			}
		case memDelayed:
			if c.safe(e, model) {
				// Delay-on-Miss re-execution: the load is non-speculative
				// now, so it performs a normal visible access.
				c.progressed = true
				c.startWalk(e, cycle, true)
			}
		case memWalking:
			if e.memReady <= cycle {
				c.progressed = true
				c.finishLoad(e, cycle)
			}
		case memDone:
			if e.invisible && !e.exposed && c.safe(e, model) {
				c.progressed = true
				c.exposeLoad(e, cycle)
			}
		}
	}
}

// attemptAccess runs one load's D-cache access attempt: store forwarding,
// then the policy decision, then the hierarchy walk with MSHR allocation.
func (c *Core) attemptAccess(e *entry, cycle int64) {
	// Store-to-load forwarding. The issue gate guarantees every older store
	// address is known, so this scan is exact.
	if st := c.forwardingStore(e); st != nil {
		if st.srcTag[1] != -1 {
			return // store data not produced yet; retry next cycle
		}
		e.destVal = st.srcVal[1]
		e.forwarded = true
		e.level = cache.LevelL1
		e.mstate = memWalking
		e.memReady = cycle + 1
		return
	}

	if c.safe(e, c.policy.Shadow()) {
		c.startWalk(e, cycle, true)
		return
	}
	l1hit := c.sys.hier.L1DHit(c.id, e.addr)
	// Schemes with a private speculative buffer (MuonTrap filter) serve
	// speculative hits from it before consulting the shared hierarchy.
	if fp, ok := c.policy.(FilterPolicy); ok {
		if lat, hit := fp.FilterLookup(e.addr); hit {
			e.invisible = true
			e.wasL1Hit = true // filter data needs no later install
			e.level = cache.LevelL1
			e.mstate = memWalking
			e.memReady = cycle + lat
			return
		}
	}
	action := c.policy.DecideLoad(LoadCtx{
		Core: c.id, Addr: e.addr, Cycle: cycle, L1Hit: l1hit,
	})
	switch action {
	case ActVisible:
		c.startWalk(e, cycle, true)
	case ActInvisible:
		e.invisible = true
		e.wasL1Hit = l1hit
		c.startWalk(e, cycle, false)
	case ActDelay:
		e.mstate = memDelayed
		c.stats.LoadsDelayed++
	}
}

// forwardingStore returns the youngest older store to the same word, if any.
func (c *Core) forwardingStore(e *entry) *entry {
	var found *entry
	for _, o := range c.memOrder {
		if o.seq >= e.seq {
			break
		}
		if o.isStore() && o.addrKnown && sameWord(o.addr, e.addr) {
			found = o
		}
	}
	return found
}

func sameWord(a, b int64) bool { return a&^7 == b&^7 }

// startWalk issues the hierarchy access for a load, allocating an MSHR for
// L1 misses. A full MSHR file leaves the load in memRetry — the structural
// delay the GDMSHR gadget induces on the victim.
func (c *Core) startWalk(e *entry, cycle int64, visible bool) {
	h := c.sys.hier
	if h.L1DHit(c.id, e.addr) {
		resp := h.AccessData(c.id, e.addr, cache.KindDataRead, visible, cycle)
		e.level = resp.Level
		e.mstate = memWalking
		e.memReady = resp.Ready
		return
	}
	mshr := h.DMSHR(c.id)
	if ready, ok := mshr.Lookup(e.addr, cycle); ok {
		// Coalesce onto the outstanding miss. A visible requester still
		// walks the hierarchy so fills and the C(E) log happen (the fill
		// the invisible originator suppressed must not be lost).
		if visible {
			resp := h.AccessData(c.id, e.addr, cache.KindDataRead, true, cycle)
			if resp.Ready > ready {
				ready = resp.Ready
			}
		}
		min := cycle + int64(h.Config().L1D.Latency)
		if ready < min {
			ready = min
		}
		e.level = cache.LevelLLC
		e.mstate = memWalking
		e.memReady = ready
		return
	}
	if mshr.InUse(cycle) >= mshr.Cap() {
		e.mstate = memRetry
		c.stats.MSHRRetries++
		return
	}
	resp := h.AccessData(c.id, e.addr, cache.KindDataRead, visible, cycle)
	mshr.Allocate(e.addr, resp.Ready, cycle)
	e.level = resp.Level
	e.mstate = memWalking
	e.memReady = resp.Ready
}

// finishLoad captures the data and hands the load to the CDB.
func (c *Core) finishLoad(e *entry, cycle int64) {
	if !e.forwarded {
		e.destVal = c.sys.mem.Read64(e.addr)
	}
	if e.invisible {
		c.stats.LoadsInvisible++
	}
	e.mstate = memDone
	e.execDoneAt = cycle
	c.executing = append(c.executing, e)
}

// exposeLoad performs the deferred visible effect of an invisibly-completed
// load once it is safe: InvisiSpec/SafeSpec expose the access (fills and
// C(E) entry happen now), MuonTrap installs the filter line, Delay-on-Miss
// applies the deferred L1 replacement touch.
func (c *Core) exposeLoad(e *entry, cycle int64) {
	e.exposed = true
	switch {
	case c.policy.ExposeOnSafe():
		c.sys.hier.AccessData(c.id, e.addr, cache.KindDataRead, true, cycle)
		c.stats.Exposes++
	case c.policy.TouchOnSafe() && e.wasL1Hit:
		c.sys.hier.TouchL1D(c.id, e.addr)
	}
}
