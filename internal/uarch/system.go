package uarch

import (
	"fmt"

	"specinterference/internal/cache"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
)

// PortConfig describes one issue port and its single execution unit.
type PortConfig struct {
	// Classes lists the instruction classes this port serves.
	Classes []isa.Class
}

// serves reports whether the port can execute class c.
func (p PortConfig) serves(c isa.Class) bool {
	for _, pc := range p.Classes {
		if pc == c {
			return true
		}
	}
	return false
}

// Config describes a core (all cores in a System are homogeneous).
type Config struct {
	// FetchWidth is the maximum instructions fetched per cycle.
	FetchWidth int
	// DispatchWidth is the maximum instructions renamed/dispatched per cycle.
	DispatchWidth int
	// RetireWidth is the maximum instructions retired per cycle.
	RetireWidth int
	// ROBSize is the reorder-buffer capacity.
	ROBSize int
	// RSSize is the unified reservation-station capacity (the paper's Kaby
	// Lake holds 97 micro-ops; GIRS fills this structure).
	RSSize int
	// FetchBufSize is the decoded-instruction buffer between fetch and
	// dispatch; once RS back-pressure fills it, fetch stops (GIRS).
	FetchBufSize int
	// CDBWidth is the number of results the common data bus can write back
	// per cycle; contention delays the losers (Figure 1).
	CDBWidth int
	// RedirectPenalty is the cycles between a squash and fetch resuming at
	// the correct PC.
	RedirectPenalty int
	// BPEntries sizes the branch predictor (power of two).
	BPEntries int
	// Ports lists the issue ports. Non-pipelined classes (Sqrt/Div) occupy
	// their unit for the whole operation latency.
	Ports []PortConfig
	// Cache configures the shared memory hierarchy.
	Cache cache.Config

	// HoldRSUntilSafe keeps an instruction's reservation station allocated
	// until it is safe (advanced-defense rule 1, §5.4: no early release of
	// resources).
	HoldRSUntilSafe bool
	// AgePriorityArb gives older instructions strict precedence on the CDB
	// and lets them preempt younger instructions occupying non-pipelined
	// units ("squashable EUs", advanced-defense rule 2, §5.4).
	AgePriorityArb bool
	// YoungestFirstIssue flips issue arbitration to prefer the youngest
	// ready instruction (an ablation knob; the default, false, is the
	// oldest-first scheduling the paper's cascade relies on).
	YoungestFirstIssue bool
}

// DefaultConfig returns a Kaby-Lake-shaped configuration: 4-wide front end,
// 192-entry ROB, 97-entry unified RS, 8 ports with one non-pipelined
// Sqrt/Div unit, 4-wide CDB, and the cache.DefaultConfig hierarchy.
func DefaultConfig(cores int) Config {
	return Config{
		FetchWidth:      4,
		DispatchWidth:   4,
		RetireWidth:     4,
		ROBSize:         192,
		RSSize:          97,
		FetchBufSize:    16,
		CDBWidth:        4,
		RedirectPenalty: 2,
		BPEntries:       512,
		Ports: []PortConfig{
			{Classes: []isa.Class{isa.ClassSqrt}},
			{Classes: []isa.Class{isa.ClassMul}},
			{Classes: []isa.Class{isa.ClassALU}},
			{Classes: []isa.Class{isa.ClassALU}},
			{Classes: []isa.Class{isa.ClassLoad}},
			{Classes: []isa.Class{isa.ClassLoad}},
			{Classes: []isa.Class{isa.ClassStore}},
			{Classes: []isa.Class{isa.ClassBranch}},
		},
		Cache: cache.DefaultConfig(cores),
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	type bound struct {
		name string
		v    int
	}
	for _, b := range []bound{
		{"FetchWidth", c.FetchWidth}, {"DispatchWidth", c.DispatchWidth},
		{"RetireWidth", c.RetireWidth}, {"ROBSize", c.ROBSize},
		{"RSSize", c.RSSize}, {"FetchBufSize", c.FetchBufSize},
		{"CDBWidth", c.CDBWidth}, {"BPEntries", c.BPEntries},
	} {
		if b.v < 1 {
			return fmt.Errorf("uarch: %s must be >= 1, got %d", b.name, b.v)
		}
	}
	if c.RedirectPenalty < 0 {
		return fmt.Errorf("uarch: RedirectPenalty must be >= 0")
	}
	if len(c.Ports) == 0 {
		return fmt.Errorf("uarch: at least one port required")
	}
	need := []isa.Class{isa.ClassALU, isa.ClassMul, isa.ClassSqrt,
		isa.ClassLoad, isa.ClassStore, isa.ClassBranch}
	for _, cls := range need {
		found := false
		for _, p := range c.Ports {
			if p.serves(cls) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("uarch: no port serves class %s", cls)
		}
	}
	return nil
}

// CoreStats aggregates per-core counters.
type CoreStats struct {
	// Cycles the core was active (until halt).
	Cycles int64
	// Retired dynamic instructions.
	Retired int64
	// Fetched dynamic instructions (including squashed ones).
	Fetched int64
	// Squashes counts pipeline flushes.
	Squashes int64
	// SquashedInsts counts instructions flushed by squashes.
	SquashedInsts int64
	// RSFullStallCycles counts cycles dispatch stalled on a full RS.
	RSFullStallCycles int64
	// ROBFullStallCycles counts cycles dispatch stalled on a full ROB.
	ROBFullStallCycles int64
	// FetchStallCycles counts cycles fetch could not deliver (buffer full,
	// I-miss pending, shadow stall).
	FetchStallCycles int64
	// MSHRRetries counts load issue retries due to a full MSHR file.
	MSHRRetries int64
	// LoadsDelayed counts loads parked by an ActDelay policy decision.
	LoadsDelayed int64
	// LoadsInvisible counts loads that completed invisibly.
	LoadsInvisible int64
	// Exposes counts visible re-accesses of invisibly completed loads.
	Exposes int64
	// IssueGateStalls counts issue attempts blocked by CanIssue (fence
	// defenses).
	IssueGateStalls int64
	// CDBConflicts counts writebacks delayed by CDB contention.
	CDBConflicts int64
}

// IPC returns retired instructions per active cycle.
func (s CoreStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// InstRecord is the per-dynamic-instruction trace record delivered to a
// TraceHook at retire or squash time.
type InstRecord struct {
	Seq      int64
	PC       int
	Inst     isa.Inst
	Fetch    int64
	Dispatch int64
	Issue    int64 // -1 if never issued
	Complete int64 // -1 if never completed
	Retire   int64 // -1 if squashed
	Squashed bool
	// Level is where a load's data came from (loads only).
	Level cache.Level
	// Addr is the effective address (memory ops only).
	Addr int64
}

// TraceHook receives instruction records as they leave the pipeline.
type TraceHook interface {
	Record(core int, r InstRecord)
}

// System is a lockstep multi-core machine over one shared hierarchy and
// flat memory.
type System struct {
	cfg   Config
	mem   *mem.Memory
	hier  *cache.Hierarchy
	cores []*Core
	cycle int64

	// fastForward enables idle-cycle skipping in Run/RunUntilCoreHalts
	// (on by default; see runUntil). snaps is the per-core stat snapshot
	// buffer the skip accounting reuses.
	fastForward bool
	snaps       []idleStats
}

// NewSystem builds a system; every core starts halted with no program.
func NewSystem(cfg Config, m *mem.Memory) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("uarch: nil memory")
	}
	h := cache.NewHierarchy(cfg.Cache)
	s := &System{cfg: cfg, mem: m, hier: h, fastForward: true}
	for i := 0; i < cfg.Cache.Cores; i++ {
		s.cores = append(s.cores, newCore(i, s))
	}
	s.snaps = make([]idleStats, len(s.cores))
	return s, nil
}

// MustNewSystem is NewSystem panicking on error (test/harness convenience).
func MustNewSystem(cfg Config, m *mem.Memory) *System {
	s, err := NewSystem(cfg, m)
	if err != nil {
		panic(err)
	}
	return s
}

// Reset restores the system to the state NewSystem(cfg, mem.New()) returns
// with the cache seed set to seed — empty memory, cold caches, fresh cores,
// cycle zero — while reusing every internal array and the cores' entry
// pools. It is the allocation-free replacement for building a new system
// per trial (internal/core.TrialState).
func (s *System) Reset(seed uint64) {
	s.cfg.Cache.Seed = seed
	s.mem.Reset()
	s.hier.Reset(seed)
	for _, c := range s.cores {
		c.reset()
	}
	s.cycle = 0
}

// Hierarchy exposes the shared cache hierarchy.
func (s *System) Hierarchy() *cache.Hierarchy { return s.hier }

// Memory exposes the flat memory.
func (s *System) Memory() *mem.Memory { return s.mem }

// Core returns core i.
func (s *System) Core(i int) *Core { return s.cores[i] }

// NumCores returns the core count.
func (s *System) NumCores() int { return len(s.cores) }

// Cycle returns the global cycle counter.
func (s *System) Cycle() int64 { return s.cycle }

// Step advances the whole system by one cycle.
//
//speclint:allocfree
func (s *System) Step() {
	for _, c := range s.cores {
		c.tick(s.cycle)
	}
	s.cycle++
}

// AllHalted reports whether every core with a program has halted.
func (s *System) AllHalted() bool {
	for _, c := range s.cores {
		if !c.halted {
			return false
		}
	}
	return true
}

// SetFastForward enables or disables idle-cycle fast-forwarding in Run and
// RunUntilCoreHalts (enabled by default). Both settings produce
// bit-identical machines, stats, logs and cycle counts — the toggle exists
// so the equivalence tests can prove exactly that. Step never skips.
func (s *System) SetFastForward(on bool) { s.fastForward = on }

// runUntil advances the system until done() holds or budget cycles elapse,
// reporting whether done() held. It is cycle-for-cycle identical to
// calling Step in a loop; the only difference is speed. When a whole tick
// provably changed nothing (no core set progressed — per-cycle stall
// counters excepted), every subsequent cycle up to the earliest pending
// event must repeat it exactly, so the loop jumps the cycle counter there
// and multiplies out the idle tick's stat deltas instead of grinding one
// Go iteration per simulated cycle. With no pending event at all (a
// non-halting deadlock), the remaining budget is consumed the same way.
func (s *System) runUntil(budget int64, done func() bool) bool {
	for budget > 0 {
		if done() {
			return true
		}
		idle := true
		for i, c := range s.cores {
			if !c.halted && !c.paused {
				s.snaps[i] = c.snapIdleStats()
			}
			c.tick(s.cycle)
			if c.progressed {
				idle = false
			}
		}
		now := s.cycle
		s.cycle++
		budget--
		if !idle || !s.fastForward || budget == 0 {
			continue
		}
		next := noSeq
		active := false
		for _, c := range s.cores {
			if c.halted || c.paused {
				continue
			}
			active = true
			if t := c.nextEventAfter(now); t < next {
				next = t
			}
		}
		if !active {
			continue
		}
		var skip int64
		if next == noSeq {
			skip = budget
		} else if next > now+1 {
			skip = next - now - 1
			if skip > budget {
				skip = budget
			}
		}
		if skip <= 0 {
			continue
		}
		for i, c := range s.cores {
			if !c.halted && !c.paused {
				c.applyIdleCycles(skip, s.snaps[i])
			}
		}
		s.cycle += skip
		budget -= skip
	}
	return done()
}

// Run steps until all cores halt or maxCycles elapse, returning an error in
// the latter case.
func (s *System) Run(maxCycles int64) error {
	if s.runUntil(maxCycles, s.AllHalted) {
		return nil
	}
	return fmt.Errorf("uarch: %d cycles elapsed without all cores halting", maxCycles)
}

// RunUntilCoreHalts steps until core i halts, for phase-structured
// experiments where other cores are paused or already halted.
func (s *System) RunUntilCoreHalts(i int, maxCycles int64) error {
	if s.runUntil(maxCycles, s.cores[i].Halted) {
		return nil
	}
	return fmt.Errorf("uarch: core %d did not halt within %d cycles", i, maxCycles)
}
