package uarch

import (
	"testing"

	"specinterference/internal/asm"
	"specinterference/internal/cache"
	"specinterference/internal/emu"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
)

// delayAllPolicy delays every speculative load (a DoM-like extreme) — used
// to exercise the memDelayed path and safety re-issue.
type delayAllPolicy struct{ Unprotected }

func (delayAllPolicy) DecideLoad(LoadCtx) LoadAction { return ActDelay }
func (delayAllPolicy) Shadow() ShadowModel           { return ShadowSpectre }

// invisibleExposePolicy makes every speculative load invisible with an
// expose (InvisiSpec-like).
type invisibleExposePolicy struct{ Unprotected }

func (invisibleExposePolicy) DecideLoad(LoadCtx) LoadAction { return ActInvisible }
func (invisibleExposePolicy) ExposeOnSafe() bool            { return true }

// gateAllPolicy blocks issue of anything unsafe (fence-like).
type gateAllPolicy struct{ Unprotected }

func (gateAllPolicy) CanIssue(safe bool) bool { return safe }

func TestDelayedLoadReissuesWhenSafe(t *testing.T) {
	// A speculative load behind a slow branch gets delayed, then re-issues
	// once the branch resolves; the architectural result must be correct.
	p := asm.MustAssemble(`
    movi r1, 16384
    movi r2, 131072
    movi r9, 77
    store r9, 0(r2)
    flush 0(r1)
    fence
    load r3, 0(r1)        ; slow
    blt  r0, r3, go       ; unresolved until r3 returns; target==fallthrough
go:
    load r5, 0(r2)        ; speculative: delayed by the policy
    halt`)
	s := MustNewSystem(testConfig(1), mem.New())
	if err := s.LoadProgram(0, p, delayAllPolicy{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(500_000); err != nil {
		t.Fatal(err)
	}
	if got := s.Core(0).Reg(isa.R5); got != 77 {
		t.Errorf("r5 = %d, want 77", got)
	}
	if s.Core(0).Stats().LoadsDelayed == 0 {
		t.Error("no loads were delayed — policy not exercised")
	}
}

func TestInvisibleLoadExposesExactlyOnce(t *testing.T) {
	p := asm.MustAssemble(`
    movi r1, 16384
    movi r2, 131072
    flush 0(r1)
    fence
    load r3, 0(r1)        ; slow
    blt  r0, r3, go       ; unresolved until r3 returns
go:
    load r5, 0(r2)        ; invisible, exposes when the branch resolves
    halt`)
	s := MustNewSystem(testConfig(1), mem.New())
	if err := s.LoadProgram(0, p, invisibleExposePolicy{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(500_000); err != nil {
		t.Fatal(err)
	}
	st := s.Core(0).Stats()
	if st.LoadsInvisible == 0 {
		t.Error("no invisible loads")
	}
	if st.Exposes != 1 {
		t.Errorf("exposes = %d, want exactly 1", st.Exposes)
	}
	// The expose produced the visible fill.
	if !s.Hierarchy().LLCSlice(131072).Contains(131072) {
		t.Error("exposed line missing from LLC")
	}
}

func TestIssueGateCountsStalls(t *testing.T) {
	p := asm.MustAssemble(`
    movi r1, 16384
    flush 0(r1)
    fence
    load r3, 0(r1)
    movi r4, 1
    blt  r0, r3, go       ; unresolved until r3 returns
go:
    addi r5, r4, 1        ; gated until the branch resolves
    halt`)
	s := MustNewSystem(testConfig(1), mem.New())
	if err := s.LoadProgram(0, p, gateAllPolicy{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(500_000); err != nil {
		t.Fatal(err)
	}
	if s.Core(0).Stats().IssueGateStalls == 0 {
		t.Error("gate never engaged")
	}
	if s.Core(0).Reg(isa.R5) != 2 {
		t.Errorf("r5 = %d", s.Core(0).Reg(isa.R5))
	}
}

func TestBranchOracleEliminatesMispredictions(t *testing.T) {
	p := asm.MustAssemble(`
    movi r1, 0
    movi r2, 5
loop:
    addi r1, r1, 1
    blt  r1, r2, loop
    halt`)
	s := MustNewSystem(testConfig(1), mem.New())
	if err := s.LoadProgram(0, p, nil); err != nil {
		t.Fatal(err)
	}
	// Outcomes: taken ×4, then not-taken.
	s.Core(0).SetBranchOracle([]bool{true, true, true, true, false})
	if err := s.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if sq := s.Core(0).Stats().Squashes; sq != 0 {
		t.Errorf("squashes = %d with a perfect oracle", sq)
	}
	if s.Core(0).Reg(isa.R1) != 5 {
		t.Errorf("r1 = %d", s.Core(0).Reg(isa.R1))
	}
}

func TestPausedCoreMakesNoProgress(t *testing.T) {
	p := asm.MustAssemble("movi r1, 1\nhalt")
	s := MustNewSystem(testConfig(2), mem.New())
	if err := s.LoadProgram(0, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgram(1, p, nil); err != nil {
		t.Fatal(err)
	}
	s.Core(0).SetPaused(true)
	if err := s.RunUntilCoreHalts(1, 10_000); err != nil {
		t.Fatal(err)
	}
	if s.Core(0).Halted() || s.Core(0).Stats().Cycles != 0 {
		t.Error("paused core made progress")
	}
	s.Core(0).SetPaused(false)
	if err := s.RunUntilCoreHalts(0, 10_000); err != nil {
		t.Fatal(err)
	}
	if s.Core(0).Reg(isa.R1) != 1 {
		t.Error("resumed core did not execute")
	}
}

func TestRunUntilCoreHaltsTimeout(t *testing.T) {
	p := asm.MustAssemble("spin: jmp spin\nhalt")
	s := MustNewSystem(testConfig(1), mem.New())
	if err := s.LoadProgram(0, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilCoreHalts(0, 500); err == nil {
		t.Error("expected timeout")
	}
}

func TestStoreForwardingAcrossDistance(t *testing.T) {
	// A store whose value arrives late must still forward to a younger
	// load of the same word, and never to a different word.
	c := runProgram(t, `
    movi r1, 4096
    movi r2, 16384
    flush 0(r2)
    fence
    load r3, 0(r2)        ; slow producer of the store VALUE
    store r3, 8(r1)       ; address known early, data late
    load r4, 8(r1)        ; must forward (value 0 from memory)
    movi r5, 9
    store r5, 16(r1)
    load r6, 24(r1)       ; different word: no forwarding
    halt`, nil)
	if c.Reg(isa.R4) != 0 {
		t.Errorf("forwarded r4 = %d, want 0", c.Reg(isa.R4))
	}
	if c.Reg(isa.R6) != 0 {
		t.Errorf("r6 = %d", c.Reg(isa.R6))
	}
}

func TestFlushAppliesAtRetireNotTransiently(t *testing.T) {
	// A wrong-path flush must have no effect: the line stays cached.
	p := asm.MustAssemble(`
    movi r1, 131072
    load r2, 0(r1)        ; warm the probe line
    fence
    movi r5, 16384
    flush 0(r5)
    fence
    load r6, 0(r5)        ; slow branch operand
    movi r4, 1
    blt  r6, r4, skip     ; taken (0 < 1); mistrained NOT taken below
skip:
    halt`)
	// Wrong path (fallthrough) would flush the probe line:
	p2 := asm.MustAssemble(`
    movi r1, 131072
    load r2, 0(r1)
    fence
    movi r5, 16384
    flush 0(r5)
    fence
    load r6, 0(r5)
    movi r4, 1
    blt  r6, r4, skip     ; actually taken; predictor starts not-taken
    flush 0(r1)           ; transient flush — must NOT persist
skip:
    halt`)
	_ = p
	s := MustNewSystem(testConfig(1), mem.New())
	warmCode(s, 0, p2)
	if err := s.LoadProgram(0, p2, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(500_000); err != nil {
		t.Fatal(err)
	}
	if s.Core(0).Stats().Squashes == 0 {
		t.Fatal("branch did not mispredict — wrong-path flush never fetched")
	}
	if !s.Hierarchy().LLCSlice(131072).Contains(131072) {
		t.Error("transient flush persisted (clflush must not be transient)")
	}
}

// Differential property: every scheme (and defense) preserves architectural
// semantics on random programs — the strongest transparency guarantee.
func TestSchemesDifferentialOnRandomPrograms(t *testing.T) {
	policies := []func() SpecPolicy{
		func() SpecPolicy { return delayAllPolicy{} },
		func() SpecPolicy { return invisibleExposePolicy{} },
		func() SpecPolicy { return gateAllPolicy{} },
	}
	for pi, mk := range policies {
		for seed := uint64(200); seed < 206; seed++ {
			rng := cache.NewRand(seed)
			p := genProgram(rng)
			goldenMem := mem.New()
			want, err := emuRun(p, goldenMem)
			if err != nil {
				t.Fatal(err)
			}
			s := MustNewSystem(testConfig(1), mem.New())
			if err := s.LoadProgram(0, p, mk()); err != nil {
				t.Fatal(err)
			}
			if err := s.Run(5_000_000); err != nil {
				t.Fatalf("policy %d seed %d: %v", pi, seed, err)
			}
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				if s.Core(0).Reg(r) != want[r] {
					t.Fatalf("policy %d seed %d: %s = %d, want %d\n%s",
						pi, seed, r, s.Core(0).Reg(r), want[r], p)
				}
			}
		}
	}
}

// emuRun executes p on the architectural emulator and returns final regs.
func emuRun(p *isa.Program, m *mem.Memory) ([isa.NumRegs]int64, error) {
	e := emu.New(p, m)
	res, err := e.Run()
	if err != nil {
		return [isa.NumRegs]int64{}, err
	}
	return res.Regs, nil
}
