package uarch

import (
	"testing"

	"specinterference/internal/asm"
	"specinterference/internal/cache"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
)

// invisibleFetchPolicy models SafeSpec-like shadow I-structures.
type invisibleFetchPolicy struct{ Unprotected }

func (invisibleFetchPolicy) IFetch() IFetchMode { return IFetchInvisible }

// delayFetchPolicy models CondSpec-like I-miss holdback.
type delayFetchPolicy struct{ Unprotected }

func (delayFetchPolicy) IFetch() IFetchMode { return IFetchDelay }

// stallFetchPolicy is the ideal-fence frontend behaviour.
type stallFetchPolicy struct{ Unprotected }

func (stallFetchPolicy) StallFetchInShadow() bool { return false } // uses branch-stall path
func (stallFetchPolicy) CanIssue(safe bool) bool  { return safe }

type trueStallPolicy struct{ Unprotected }

func (trueStallPolicy) StallFetchInShadow() bool { return true }
func (trueStallPolicy) CanIssue(safe bool) bool  { return safe }

// tsoPolicy delays speculative misses under the TSO shadow.
type tsoPolicy struct{ Unprotected }

func (tsoPolicy) Shadow() ShadowModel { return ShadowSpectreTSO }
func (tsoPolicy) DecideLoad(ctx LoadCtx) LoadAction {
	if ctx.L1Hit {
		return ActInvisible
	}
	return ActDelay
}
func (tsoPolicy) TouchOnSafe() bool { return true }

// fakeFilter is a trivial FilterPolicy holding one line.
type fakeFilter struct {
	Unprotected
	line   int64
	filled []int64
	squash int
}

func (f *fakeFilter) DecideLoad(LoadCtx) LoadAction { return ActInvisible }
func (f *fakeFilter) Shadow() ShadowModel           { return ShadowFuturistic }
func (f *fakeFilter) ExposeOnSafe() bool            { return true }
func (f *fakeFilter) FilterLookup(addr int64) (int64, bool) {
	if mem.LineAddr(addr) == f.line {
		return 2, true
	}
	return 0, false
}
func (f *fakeFilter) OnInvisibleFill(addr int64) { f.filled = append(f.filled, addr) }
func (f *fakeFilter) OnSquash()                  { f.squash++ }

// wrongPathVictim builds a program whose mistrained branch fetches a
// distant wrong-path line, then halts. Returns program and wrong-path line.
func wrongPathVictim() (*isa.Program, int64, int) {
	b := asm.NewBuilder()
	b.MovI(isa.R5, 16384)
	b.Flush(isa.R5, 0)
	b.Fence()
	b.Load(isa.R6, isa.R5, 0) // slow branch operand
	branchPC := b.PC()
	b.Blt(isa.R0, isa.R6, "wrong") // 0 < 0: not taken; mistrained taken
	b.Jmp("done")
	// Pad so the wrong path sits on its own line.
	for b.PC()%8 != 0 {
		b.Nop()
	}
	b.Label("wrong")
	b.Nop()
	b.Label("spin")
	b.Jmp("spin")
	// Keep the correct-path done block off the wrong-path line.
	for b.PC()%8 != 0 {
		b.Nop()
	}
	b.Label("done")
	b.Halt()
	p := b.MustBuild()
	return p, mem.LineAddr(p.InstAddr(p.Symbols["wrong"])), branchPC
}

func runWrongPath(t *testing.T, policy SpecPolicy) (*System, int64) {
	t.Helper()
	p, wrongLine, branchPC := wrongPathVictim()
	s := MustNewSystem(testConfig(1), mem.New())
	for pc := 0; pc < p.Len(); pc++ {
		line := p.InstAddr(pc) &^ 63
		if line != wrongLine {
			s.Hierarchy().WarmInst(0, line, cache.LevelL1)
		}
	}
	s.Hierarchy().Flush(wrongLine)
	s.Core(0).Predictor().Train(branchPC, true, 4)
	if err := s.LoadProgram(0, p, policy); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(500_000); err != nil {
		t.Fatal(err)
	}
	return s, wrongLine
}

func TestIFetchVisibleFillsWrongPathLine(t *testing.T) {
	s, wrongLine := runWrongPath(t, Unprotected{})
	if s.Core(0).Stats().Squashes == 0 {
		t.Fatal("no mis-speculation")
	}
	if !s.Hierarchy().LLCSlice(wrongLine).Contains(wrongLine) {
		t.Error("unprotected frontend should fill the wrong-path I-line")
	}
}

func TestIFetchInvisibleHidesWrongPathLine(t *testing.T) {
	s, wrongLine := runWrongPath(t, invisibleFetchPolicy{})
	if s.Core(0).Stats().Squashes == 0 {
		t.Fatal("no mis-speculation")
	}
	if s.Hierarchy().LLCSlice(wrongLine).Contains(wrongLine) {
		t.Error("shadow I-structures must not fill the wrong-path line")
	}
}

func TestIFetchDelayHoldsWrongPathMiss(t *testing.T) {
	s, wrongLine := runWrongPath(t, delayFetchPolicy{})
	if s.Core(0).Stats().Squashes == 0 {
		t.Fatal("no mis-speculation")
	}
	if s.Hierarchy().LLCSlice(wrongLine).Contains(wrongLine) {
		t.Error("delayed I-fetch must never issue the wrong-path miss")
	}
	if s.Core(0).Stats().FetchStallCycles == 0 {
		t.Error("expected fetch stalls while the miss was held")
	}
}

func TestStallFetchNeverMispredicts(t *testing.T) {
	s, wrongLine := runWrongPath(t, trueStallPolicy{})
	if sq := s.Core(0).Stats().Squashes; sq != 0 {
		t.Errorf("stall-fetch mode squashed %d times — it must never predict", sq)
	}
	if s.Hierarchy().LLCSlice(wrongLine).Contains(wrongLine) {
		t.Error("wrong-path line fetched despite stall-fetch")
	}
	// Despite never predicting, the mistrained predictor state is ignored
	// and the program still completes correctly.
	if !s.Core(0).Halted() {
		t.Error("did not halt")
	}
}

func TestFilterPolicyServesAndFlushes(t *testing.T) {
	// A speculative load to the filter's line completes from the filter;
	// invisible fills are reported; squash clears via OnSquash.
	p, _, branchPC := wrongPathVictim()
	_ = branchPC
	fp := &fakeFilter{line: 131072}
	prog := asm.MustAssemble(`
    movi r1, 16384
    movi r2, 131072
    movi r3, 196608
    flush 0(r1)
    fence
    load r4, 0(r1)        ; slow
    blt  r0, r4, go       ; unresolved; target == fallthrough
go:
    load r5, 0(r2)        ; filter hit
    load r6, 0(r3)        ; filter miss → invisible walk → OnInvisibleFill
    halt`)
	_ = p
	s := MustNewSystem(testConfig(1), mem.New())
	if err := s.LoadProgram(0, prog, fp); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(500_000); err != nil {
		t.Fatal(err)
	}
	if len(fp.filled) == 0 {
		t.Error("invisible fill never reported to the filter")
	}
	found := false
	for _, a := range fp.filled {
		if mem.LineAddr(a) == 196608 {
			found = true
		}
	}
	if !found {
		t.Errorf("filter fills = %#v, missing the missing line", fp.filled)
	}
}

func TestFilterPolicySquashNotification(t *testing.T) {
	fp := &fakeFilter{line: 1 << 40} // never hits
	s, _ := func() (*System, int64) {
		p, wrongLine, branchPC := wrongPathVictim()
		s := MustNewSystem(testConfig(1), mem.New())
		for pc := 0; pc < p.Len(); pc++ {
			s.Hierarchy().WarmInst(0, p.InstAddr(pc)&^63, cache.LevelL1)
		}
		s.Core(0).Predictor().Train(branchPC, true, 4)
		if err := s.LoadProgram(0, p, fp); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(500_000); err != nil {
			t.Fatal(err)
		}
		return s, wrongLine
	}()
	if s.Core(0).Stats().Squashes == 0 {
		t.Fatal("no squash")
	}
	if fp.squash == 0 {
		t.Error("OnSquash never called")
	}
}

func TestTSOShadowDelaysYoungerLoadBehindOlderLoad(t *testing.T) {
	// Under ShadowSpectreTSO a load is unsafe while any OLDER load is
	// incomplete, even without branches.
	prog := asm.MustAssemble(`
    movi r1, 16384
    movi r2, 131072
    flush 0(r1)
    fence
    load r3, 0(r1)        ; slow older load
    load r4, 0(r2)        ; younger: TSO-unsafe until r3 completes
    halt`)
	s := MustNewSystem(testConfig(1), mem.New())
	if err := s.LoadProgram(0, prog, tsoPolicy{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(500_000); err != nil {
		t.Fatal(err)
	}
	if s.Core(0).Stats().LoadsDelayed == 0 {
		t.Error("TSO shadow should have delayed the younger load")
	}
	// Visible order must be program order.
	var lines []int64
	for _, a := range s.Hierarchy().Log() {
		if a.Kind == cache.KindDataRead {
			lines = append(lines, a.Line)
		}
	}
	if len(lines) < 2 || lines[0] != 16384 || lines[1] != 131072 {
		t.Errorf("visible order = %#x", lines)
	}
}

func TestCoreAccessors(t *testing.T) {
	s := MustNewSystem(testConfig(2), mem.New())
	c := s.Core(1)
	if c.ID() != 1 {
		t.Error("ID")
	}
	if c.Policy() == nil {
		t.Error("default policy nil")
	}
	c.SetReg(isa.R3, 42)
	if c.Reg(isa.R3) != 42 {
		t.Error("SetReg")
	}
	if s.NumCores() != 2 {
		t.Error("NumCores")
	}
	if s.Cycle() != 0 {
		t.Error("fresh cycle")
	}
	s.Step()
	if s.Cycle() != 1 {
		t.Error("Step")
	}
	var st CoreStats
	if st.IPC() != 0 {
		t.Error("IPC of zero stats")
	}
	st.Cycles, st.Retired = 10, 5
	if st.IPC() != 0.5 {
		t.Error("IPC")
	}
}

func TestMustNewSystemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	bad := DefaultConfig(1)
	bad.ROBSize = 0
	MustNewSystem(bad, mem.New())
}

func TestPreemptionOnNonPipelinedUnit(t *testing.T) {
	// With the advanced-defense knobs, an older sqrt preempts a younger
	// one occupying the non-pipelined unit: the older's issue-to-complete
	// time stays at one occupancy despite a busy unit.
	cfg := testConfig(1)
	cfg.HoldRSUntilSafe = true
	cfg.AgePriorityArb = true
	b := asm.NewBuilder()
	b.MovI(isa.R1, 16384)
	b.Flush(isa.R1, 0)
	b.Fence()
	b.Load(isa.R2, isa.R1, 0) // slow producer for the OLDER sqrt
	// An unresolved branch (target == fallthrough: never squashes) keeps
	// everything below speculative, so HoldRSUntilSafe keeps the younger
	// sqrts preemptable — the attack's configuration.
	b.Blt(isa.R0, isa.R2, "go")
	b.Label("go")
	b.Sqrt(isa.R3, isa.R2) // older sqrt, ready late
	b.MovI(isa.R4, 99)
	for i := 0; i < 30; i++ {
		b.Sqrt(isa.R5, isa.R4) // younger speculative sqrts keep the unit busy
	}
	b.Halt()
	p := b.MustBuild()
	s := MustNewSystem(cfg, mem.New())
	warmCode(s, 0, p)
	rec := &captureHook{}
	s.Core(0).SetTraceHook(rec)
	if err := s.LoadProgram(0, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(500_000); err != nil {
		t.Fatal(err)
	}
	var olderWait int64 = -1
	var loadDone int64
	for _, r := range rec.recs {
		if r.Inst.Op == isa.Load {
			loadDone = r.Complete
		}
		if r.Inst.Op == isa.Sqrt && r.PC == 5 {
			olderWait = r.Issue
		}
	}
	if olderWait < 0 {
		t.Fatal("older sqrt not traced")
	}
	// With preemption the older sqrt issues within ~2 cycles of readiness
	// instead of waiting out a 12-cycle occupancy.
	if olderWait > loadDone+3 {
		t.Errorf("older sqrt issued at %d, ready at %d: preemption failed", olderWait, loadDone)
	}
}
