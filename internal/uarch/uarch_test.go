package uarch

import (
	"testing"

	"specinterference/internal/asm"
	"specinterference/internal/cache"
	"specinterference/internal/emu"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
)

// testConfig returns a small fast config for unit tests.
func testConfig(cores int) Config {
	cfg := DefaultConfig(cores)
	cfg.Cache = cache.Config{
		Cores:      cores,
		L1I:        cache.Geometry{Sets: 16, Ways: 4, Latency: 1},
		L1D:        cache.Geometry{Sets: 16, Ways: 4, Latency: 4},
		L2:         cache.Geometry{Sets: 64, Ways: 4, Latency: 12},
		LLC:        cache.Geometry{Sets: 256, Ways: 8, Latency: 40},
		LLCSlices:  1,
		L1Policy:   cache.PolicyLRU,
		LLCPolicy:  cache.PolicyQLRU,
		MemLatency: 150,
		DMSHRs:     4,
		Seed:       1,
	}
	return cfg
}

// warmCode preloads every instruction line of p into core's L1I so tests
// measure pipeline behaviour rather than cold instruction misses.
func warmCode(s *System, core int, p *isa.Program) {
	for pc := 0; pc < p.Len(); pc++ {
		s.Hierarchy().WarmInst(core, p.InstAddr(pc), cache.LevelL1)
	}
}

// runProgram runs src on a fresh single-core system (with a warm I-cache)
// and returns the core.
func runProgram(t *testing.T, src string, setup func(*System)) *Core {
	t.Helper()
	p := asm.MustAssemble(src)
	s := MustNewSystem(testConfig(1), mem.New())
	warmCode(s, 0, p)
	if setup != nil {
		setup(s)
	}
	if err := s.LoadProgram(0, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(200_000); err != nil {
		t.Fatal(err)
	}
	return s.Core(0)
}

func TestSimpleArithmetic(t *testing.T) {
	c := runProgram(t, `
    movi r1, 6
    movi r2, 7
    mul  r3, r1, r2
    sqrt r4, r3
    div  r5, r3, r2
    halt`, nil)
	if c.Reg(isa.R3) != 42 || c.Reg(isa.R4) != 6 || c.Reg(isa.R5) != 6 {
		t.Errorf("r3=%d r4=%d r5=%d", c.Reg(isa.R3), c.Reg(isa.R4), c.Reg(isa.R5))
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	c := runProgram(t, `
    movi r1, 4096
    movi r2, 1234
    store r2, 8(r1)
    load r3, 8(r1)
    halt`, nil)
	if c.Reg(isa.R3) != 1234 {
		t.Errorf("r3 = %d (store-to-load forwarding broken?)", c.Reg(isa.R3))
	}
}

func TestStoreVisibleAfterRetire(t *testing.T) {
	p := asm.MustAssemble(`
    movi r1, 4096
    movi r2, 55
    store r2, 0(r1)
    halt`)
	s := MustNewSystem(testConfig(1), mem.New())
	if err := s.LoadProgram(0, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if got := s.Memory().Read64(4096); got != 55 {
		t.Errorf("memory = %d, want 55", got)
	}
}

func TestLoop(t *testing.T) {
	c := runProgram(t, `
    movi r1, 0
    movi r2, 20
loop:
    addi r1, r1, 3
    addi r3, r3, 1
    blt  r3, r2, loop
    halt`, nil)
	if c.Reg(isa.R1) != 60 {
		t.Errorf("r1 = %d, want 60", c.Reg(isa.R1))
	}
	// The backward branch should quickly train to taken; most iterations
	// must not squash.
	if sq := c.Stats().Squashes; sq > 6 {
		t.Errorf("squashes = %d, want few (predictor should learn)", sq)
	}
}

func TestMispredictionSquashAndRecovery(t *testing.T) {
	// Train the branch taken, then flip the condition: the wrong path
	// writes r5; the squash must discard it.
	c := runProgram(t, `
    movi r4, 0
    movi r5, 0
    movi r6, 10
    movi r7, 0
loop:
    blt r7, r6, body      ; taken 10 times, then falls through
    jmp end
body:
    addi r7, r7, 1
    jmp loop
end:
    halt`, nil)
	if c.Reg(isa.R7) != 10 {
		t.Errorf("r7 = %d, want 10", c.Reg(isa.R7))
	}
	if c.Stats().Squashes == 0 {
		t.Error("expected at least one squash (the final not-taken)")
	}
}

func TestWrongPathWritesDiscarded(t *testing.T) {
	// r2 < r1 is false, but the predictor can be trained taken by the loop
	// structure; even so, the wrong-path movi to r9 must never retire.
	c := runProgram(t, `
    movi r1, 5
    movi r2, 9
    movi r9, 111
    blt r2, r1, wrong
    jmp ok
wrong:
    movi r9, 222
ok:
    halt`, nil)
	if c.Reg(isa.R9) != 111 {
		t.Errorf("r9 = %d, wrong-path write retired", c.Reg(isa.R9))
	}
}

func TestSpeculativeLoadLeavesCacheFootprint(t *testing.T) {
	// The unprotected baseline lets a wrong-path load fill the cache: the
	// primitive Spectre relies on. A bounds check `i < N` runs in a loop:
	// iterations 0..3 take the branch and train the predictor; iteration 4
	// (i == N == 4) mispredicts taken because N's line is flushed each
	// round, and the wrong path loads probe+4*64.
	probe := int64(0x20000)
	src := `
    movi r1, 131072       ; probe base 0x20000
    movi r5, 16384        ; &N
    movi r9, 4
    store r9, 0(r5)       ; N = 4
    movi r2, 0            ; i
    movi r8, 5            ; loop bound
loop:
    flush 0(r5)
    fence               ; clflush is weakly ordered: fence before reload
    load r6, 0(r5)        ; N, slow every iteration
    blt  r2, r6, in       ; i < N: mispredicts at i == 4
    jmp  next
in:
    shli r10, r2, 6
    add  r10, r10, r1
    load r7, 0(r10)       ; accesses probe + i*64
next:
    addi r2, r2, 1
    blt  r2, r8, loop
    halt`
	p := asm.MustAssemble(src)
	s := MustNewSystem(testConfig(1), mem.New())
	warmCode(s, 0, p)
	if err := s.LoadProgram(0, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(200_000); err != nil {
		t.Fatal(err)
	}
	if c := s.Core(0); c.Stats().Squashes == 0 {
		t.Fatal("no squash: the attack branch did not mispredict")
	}
	transient := probe + 4*64
	if !s.Hierarchy().LLCSlice(transient).Contains(transient) {
		t.Error("transient load left no LLC footprint on the unsafe baseline")
	}
}

func TestNonPipelinedSqrtSerializes(t *testing.T) {
	// Two independent sqrts share the single non-pipelined unit: the second
	// must wait the full latency. Two independent adds on two ALU ports
	// finish essentially together.
	cSqrt := runProgram(t, `
    movi r1, 100
    movi r2, 200
    sqrt r3, r1
    sqrt r4, r2
    halt`, nil)
	cAdd := runProgram(t, `
    movi r1, 100
    movi r2, 200
    addi r3, r1, 1
    addi r4, r2, 1
    halt`, nil)
	dSqrt := cSqrt.Stats().Cycles
	dAdd := cAdd.Stats().Cycles
	if dSqrt < dAdd+int64(isa.LatSqrt)-2 {
		t.Errorf("sqrt pair = %d cycles, add pair = %d: non-pipelined unit not serializing", dSqrt, dAdd)
	}
}

func TestAgeOrderedIssuePrefersOlder(t *testing.T) {
	// An older sqrt (dependent on a slow load) and a pool of younger,
	// immediately-ready sqrts contend for the single non-pipelined unit.
	// While the older is not ready the youngers stream through; the moment
	// it becomes ready it must win the next free slot, ahead of remaining
	// youngers. This is the arbitration behaviour the GDNPEU cascade needs.
	const youngers = 30
	b := asm.NewBuilder()
	b.MovI(isa.R1, 8192)
	b.Load(isa.R2, isa.R1, 0) // cold: ~200 cycles
	b.Sqrt(isa.R3, isa.R2)    // OLDER sqrt at pc=2, ready late
	b.MovI(isa.R4, 99)
	for i := 0; i < youngers; i++ {
		b.Sqrt(isa.R5, isa.R4)
	}
	b.Halt()
	p := b.MustBuild()
	s := MustNewSystem(testConfig(1), mem.New())
	warmCode(s, 0, p)
	rec := &captureHook{}
	s.Core(0).SetTraceHook(rec)
	if err := s.LoadProgram(0, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100_000); err != nil {
		t.Fatal(err)
	}
	olderIssue := int64(-1)
	var youngerIssues []int64
	for _, r := range rec.recs {
		if r.Inst.Op != isa.Sqrt {
			continue
		}
		if r.PC == 2 {
			olderIssue = r.Issue
		} else {
			youngerIssues = append(youngerIssues, r.Issue)
		}
	}
	if olderIssue < 0 || len(youngerIssues) != youngers {
		t.Fatalf("trace incomplete: older=%d youngers=%d", olderIssue, len(youngerIssues))
	}
	before, after := 0, 0
	for _, y := range youngerIssues {
		if y < olderIssue {
			before++
		} else {
			after++
		}
	}
	if before == 0 {
		t.Error("no younger sqrt issued before the older was ready — load not slow enough")
	}
	if after == 0 {
		t.Error("age order violated: ready older sqrt never outranked pending youngers")
	}
	// Once ready (load completes ~cycle 210), the older must grab the very
	// next free slot: its issue must precede every still-pending younger by
	// coming right after load completion, not after the youngers drain.
	loadDone := int64(-1)
	for _, r := range rec.recs {
		if r.Inst.Op == isa.Load {
			loadDone = r.Complete
		}
	}
	if olderIssue > loadDone+int64(isa.LatSqrt)+2 {
		t.Errorf("older sqrt issued at %d, load done at %d: waited more than one unit occupancy", olderIssue, loadDone)
	}
}

func TestRSBackPressureStallsFrontend(t *testing.T) {
	// A long chain of adds dependent on a cold load fills the RS and must
	// stall dispatch and then fetch (the GIRS precondition).
	cfg := testConfig(1)
	cfg.RSSize = 16
	cfg.FetchBufSize = 4
	b := asm.NewBuilder()
	b.MovI(isa.R1, 8192)
	b.Load(isa.R2, isa.R1, 0) // cold: ~200 cycles
	for i := 0; i < 40; i++ {
		b.Add(isa.R3, isa.R3, isa.R2) // dependent chain, cannot issue
	}
	b.Halt()
	p := b.MustBuild()
	s := MustNewSystem(cfg, mem.New())
	warmCode(s, 0, p)
	if err := s.LoadProgram(0, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100_000); err != nil {
		t.Fatal(err)
	}
	st := s.Core(0).Stats()
	if st.RSFullStallCycles == 0 {
		t.Error("expected RS-full dispatch stalls")
	}
	if st.FetchStallCycles == 0 {
		t.Error("expected fetch stalls from back-pressure")
	}
}

func TestMSHRLimitSerializesMisses(t *testing.T) {
	// With one MSHR, two cold loads to different lines serialize; with
	// four they overlap.
	build := func() *isa.Program {
		return asm.MustAssemble(`
    movi r1, 8192
    movi r2, 16384
    load r3, 0(r1)
    load r4, 0(r2)
    halt`)
	}
	run := func(mshrs int) int64 {
		cfg := testConfig(1)
		cfg.Cache.DMSHRs = mshrs
		s := MustNewSystem(cfg, mem.New())
		if err := s.LoadProgram(0, build(), nil); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(100_000); err != nil {
			t.Fatal(err)
		}
		return s.Core(0).Stats().Cycles
	}
	serial := run(1)
	parallel := run(4)
	if serial < parallel+100 {
		t.Errorf("1 MSHR: %d cycles, 4 MSHRs: %d — misses did not serialize", serial, parallel)
	}
}

func TestCDBWidthContention(t *testing.T) {
	// Many independent 1-cycle adds completing together: CDB width 1 must
	// take longer than width 4.
	build := func() *isa.Program {
		b := asm.NewBuilder()
		b.MovI(isa.R1, 1)
		for i := 0; i < 24; i++ {
			b.AddI(isa.Reg(2+(i%8)), isa.R1, int64(i))
		}
		b.Halt()
		return b.MustBuild()
	}
	run := func(w int) int64 {
		cfg := testConfig(1)
		cfg.CDBWidth = w
		s := MustNewSystem(cfg, mem.New())
		p := build()
		warmCode(s, 0, p)
		if err := s.LoadProgram(0, p, nil); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(100_000); err != nil {
			t.Fatal(err)
		}
		return s.Core(0).Stats().Cycles
	}
	narrow := run(1)
	wide := run(4)
	if narrow <= wide {
		t.Errorf("CDB width 1 = %d cycles, width 4 = %d — no contention modeled", narrow, wide)
	}
}

func TestFenceBlocksYoungerIssue(t *testing.T) {
	// rdcycle around a fence + slow load: the second rdcycle must not issue
	// until the fence retires, which needs the load completed.
	c := runProgram(t, `
    movi r1, 8192
    rdcycle r2
    load r3, 0(r1)       ; slow
    fence
    rdcycle r4
    halt`, nil)
	delta := c.Reg(isa.R4) - c.Reg(isa.R2)
	if delta < 150 {
		t.Errorf("rdcycle delta across fence+miss = %d, want >= memory latency", delta)
	}
}

func TestRdCycleWithoutFenceOverlaps(t *testing.T) {
	c := runProgram(t, `
    movi r1, 8192
    rdcycle r2
    load r3, 0(r1)
    rdcycle r4
    halt`, nil)
	delta := c.Reg(isa.R4) - c.Reg(isa.R2)
	if delta > 50 {
		t.Errorf("independent rdcycle waited for the load: delta = %d", delta)
	}
}

func TestFlushForcesMiss(t *testing.T) {
	c := runProgram(t, `
    movi r1, 8192
    load r2, 0(r1)       ; warm the line
    fence                ; drain the warming miss
    rdcycle r3
    load r4, 0(r1)       ; hit
    fence
    rdcycle r5
    flush 0(r1)
    fence
    rdcycle r6
    load r7, 0(r1)       ; miss again
    fence
    rdcycle r8
    halt`, nil)
	hit := c.Reg(isa.R5) - c.Reg(isa.R3)
	miss := c.Reg(isa.R8) - c.Reg(isa.R6)
	if miss < hit+100 {
		t.Errorf("hit=%d miss=%d: flush did not evict", hit, miss)
	}
}

func TestVisibleLogOrderFollowsIssueOrder(t *testing.T) {
	p := asm.MustAssemble(`
    movi r1, 8192
    movi r2, 16384
    load r3, 0(r1)
    fence
    load r4, 0(r2)
    halt`)
	s := MustNewSystem(testConfig(1), mem.New())
	if err := s.LoadProgram(0, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100_000); err != nil {
		t.Fatal(err)
	}
	var dataLines []int64
	for _, a := range s.Hierarchy().Log() {
		if a.Kind == cache.KindDataRead {
			dataLines = append(dataLines, a.Line)
		}
	}
	if len(dataLines) != 2 || dataLines[0] != 8192 || dataLines[1] != 16384 {
		t.Errorf("visible data log = %#v", dataLines)
	}
}

func TestTraceHookRecords(t *testing.T) {
	p := asm.MustAssemble("movi r1, 1\naddi r2, r1, 2\nhalt")
	s := MustNewSystem(testConfig(1), mem.New())
	rec := &captureHook{}
	s.Core(0).SetTraceHook(rec)
	if err := s.LoadProgram(0, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if len(rec.recs) != 3 {
		t.Fatalf("records = %d, want 3", len(rec.recs))
	}
	r := rec.recs[1]
	if r.Inst.Op != isa.AddI || r.Issue < r.Dispatch || r.Complete < r.Issue || r.Retire < r.Complete {
		t.Errorf("record ordering broken: %+v", r)
	}
}

type captureHook struct{ recs []InstRecord }

func (h *captureHook) Record(_ int, r InstRecord) { h.recs = append(h.recs, r) }

func TestMultiCoreIndependentPrograms(t *testing.T) {
	s := MustNewSystem(testConfig(2), mem.New())
	p0 := asm.MustAssemble("movi r1, 10\nmuli r2, r1, 3\nhalt")
	p1 := asm.MustAssemble("movi r1, 7\naddi r2, r1, 1\nhalt")
	if err := s.LoadProgram(0, p0, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgram(1, p1, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if s.Core(0).Reg(isa.R2) != 30 || s.Core(1).Reg(isa.R2) != 8 {
		t.Errorf("r2 = %d / %d", s.Core(0).Reg(isa.R2), s.Core(1).Reg(isa.R2))
	}
}

func TestCrossCoreLLCSharing(t *testing.T) {
	s := MustNewSystem(testConfig(2), mem.New())
	// Core 0 warms a line; core 1's load should then hit the LLC (fast),
	// versus a cold line (slow).
	warm := asm.MustAssemble("movi r1, 8192\nload r2, 0(r1)\nhalt")
	if err := s.LoadProgram(0, warm, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10_000); err != nil {
		t.Fatal(err)
	}
	probe := asm.MustAssemble(`
    movi r1, 8192
    movi r2, 65536
    rdcycle r3
    load r4, 0(r1)       ; LLC hit (warmed by core 0)
    fence
    rdcycle r5
    load r6, 0(r2)       ; cold miss
    fence
    rdcycle r7
    halt`)
	if err := s.LoadProgram(1, probe, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100_000); err != nil {
		t.Fatal(err)
	}
	c := s.Core(1)
	shared := c.Reg(isa.R5) - c.Reg(isa.R3)
	cold := c.Reg(isa.R7) - c.Reg(isa.R5)
	if cold < shared+80 {
		t.Errorf("shared=%d cold=%d: LLC sharing not observable", shared, cold)
	}
}

func TestHaltOnWrongPathRecovered(t *testing.T) {
	// The wrong path contains a halt; the squash must revive fetch.
	c := runProgram(t, `
    movi r1, 3
    movi r2, 0
loop:
    addi r2, r2, 1
    blt  r2, r1, loop
    jmp good
    halt                  ; wrong-path halt (fallthrough of jmp never runs)
good:
    movi r9, 77
    halt`, nil)
	if c.Reg(isa.R9) != 77 {
		t.Errorf("r9 = %d: machine died on a wrong-path halt", c.Reg(isa.R9))
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig(1)
	bad.ROBSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ROB accepted")
	}
	bad = DefaultConfig(1)
	bad.Ports = []PortConfig{{Classes: []isa.Class{isa.ClassALU}}}
	if err := bad.Validate(); err == nil {
		t.Error("missing port classes accepted")
	}
	bad = DefaultConfig(1)
	bad.Ports = nil
	if err := bad.Validate(); err == nil {
		t.Error("no ports accepted")
	}
	bad = DefaultConfig(1)
	bad.RedirectPenalty = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative redirect penalty accepted")
	}
}

func TestNewSystemErrors(t *testing.T) {
	if _, err := NewSystem(DefaultConfig(1), nil); err == nil {
		t.Error("nil memory accepted")
	}
	bad := DefaultConfig(1)
	bad.CDBWidth = 0
	if _, err := NewSystem(bad, mem.New()); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunTimeout(t *testing.T) {
	p := asm.MustAssemble("spin: jmp spin\nhalt")
	s := MustNewSystem(testConfig(1), mem.New())
	if err := s.LoadProgram(0, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1000); err == nil {
		t.Error("expected timeout error")
	}
}

func TestBranchPredictorMistraining(t *testing.T) {
	bp := NewBranchPred(16)
	if bp.Predict(5) {
		t.Error("fresh predictor should predict not-taken (weakly)")
	}
	bp.Train(5, true, 4)
	if !bp.Predict(5) {
		t.Error("trained predictor should predict taken")
	}
	bp.Update(5, false, true)
	bp.Update(5, false, true)
	bp.Update(5, false, true)
	if bp.Predict(5) {
		t.Error("counter should have decayed to not-taken")
	}
	_, mis := bp.Stats()
	if mis != 3 {
		t.Errorf("mispredicts = %d", mis)
	}
	bp.Reset()
	if bp.Predict(5) {
		t.Error("reset should restore weakly not-taken")
	}
}

func TestBranchPredBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBranchPred(3)
}

func TestShadowModelStrings(t *testing.T) {
	for _, m := range []ShadowModel{ShadowSpectre, ShadowSpectreTSO, ShadowFuturistic} {
		if m.String() == "" {
			t.Error("empty shadow name")
		}
	}
	for _, a := range []LoadAction{ActVisible, ActInvisible, ActDelay} {
		if a.String() == "" {
			t.Error("empty action name")
		}
	}
	for _, m := range []IFetchMode{IFetchVisible, IFetchInvisible, IFetchDelay} {
		if m.String() == "" {
			t.Error("empty ifetch name")
		}
	}
}

// ---------------------------------------------------------------------------
// Differential testing against the architectural emulator.

// genProgram builds a random but guaranteed-terminating program mixing
// arithmetic, memory traffic within a 4KB window, forward branches, and
// counted loops.
func genProgram(rng *cache.Rand) *isa.Program {
	b := asm.NewBuilder()
	const dataBase = 0x10000
	b.MovI(isa.R1, dataBase)
	b.MovI(isa.R2, 0x0ff8) // address mask within the window
	regs := []isa.Reg{isa.R3, isa.R4, isa.R5, isa.R6, isa.R7, isa.R8}
	rreg := func() isa.Reg { return regs[rng.Intn(len(regs))] }
	label := 0
	nBlocks := 4 + rng.Intn(5)
	for blk := 0; blk < nBlocks; blk++ {
		n := 3 + rng.Intn(8)
		for i := 0; i < n; i++ {
			switch rng.Intn(10) {
			case 0:
				b.MovI(rreg(), int64(rng.Intn(1000)))
			case 1:
				b.Add(rreg(), rreg(), rreg())
			case 2:
				b.Sub(rreg(), rreg(), rreg())
			case 3:
				b.MulI(rreg(), rreg(), int64(1+rng.Intn(7)))
			case 4:
				b.Sqrt(rreg(), rreg())
			case 5:
				b.Div(rreg(), rreg(), rreg())
			case 6: // load from masked address
				d, a := rreg(), rreg()
				b.And(isa.R9, a, isa.R2)
				b.Add(isa.R10, isa.R9, isa.R1)
				b.Load(d, isa.R10, 0)
			case 7: // store to masked address
				v, a := rreg(), rreg()
				b.And(isa.R9, a, isa.R2)
				b.Add(isa.R10, isa.R9, isa.R1)
				b.Store(isa.R10, 0, v)
			case 8: // forward branch over the next block
				l := labelName(label)
				label++
				b.Blt(rreg(), rreg(), l)
				b.AddI(rreg(), rreg(), 1)
				b.Label(l)
			case 9: // bounded loop
				cnt := isa.R11
				lim := isa.R12
				l := labelName(label)
				label++
				b.MovI(cnt, 0)
				b.MovI(lim, int64(2+rng.Intn(6)))
				b.Label(l)
				b.AddI(rreg(), rreg(), 2)
				b.AddI(cnt, cnt, 1)
				b.Blt(cnt, lim, l)
			}
		}
	}
	b.Halt()
	return b.MustBuild()
}

func labelName(i int) string {
	return "L" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestDifferentialAgainstEmulator(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		rng := cache.NewRand(seed)
		p := genProgram(rng)

		goldenMem := mem.New()
		e := emu.New(p, goldenMem)
		want, err := e.Run()
		if err != nil {
			t.Fatalf("seed %d: emulator: %v\n%s", seed, err, p)
		}

		pipeMem := mem.New()
		s := MustNewSystem(testConfig(1), pipeMem)
		if err := s.LoadProgram(0, p, nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Run(2_000_000); err != nil {
			t.Fatalf("seed %d: pipeline: %v\n%s", seed, err, p)
		}
		c := s.Core(0)
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if c.Reg(r) != want.Regs[r] {
				t.Fatalf("seed %d: %s = %d, emulator says %d\n%s",
					seed, r, c.Reg(r), want.Regs[r], p)
			}
		}
		// Compare the data window word by word.
		for off := int64(0); off < 0x1000; off += 8 {
			a := int64(0x10000) + off
			if pipeMem.Read64(a) != goldenMem.Read64(a) {
				t.Fatalf("seed %d: mem[%#x] = %d, emulator says %d",
					seed, a, pipeMem.Read64(a), goldenMem.Read64(a))
			}
		}
	}
}

func TestDifferentialWithDefenses(t *testing.T) {
	// The pipeline must stay architecturally correct under every
	// microarchitectural knob.
	knobs := []func(*Config){
		func(c *Config) { c.CDBWidth = 1 },
		func(c *Config) { c.YoungestFirstIssue = true },
		func(c *Config) { c.HoldRSUntilSafe = true },
		func(c *Config) { c.HoldRSUntilSafe = true; c.AgePriorityArb = true },
		func(c *Config) { c.Cache.DMSHRs = 1 },
		func(c *Config) { c.RSSize = 8; c.ROBSize = 16; c.FetchBufSize = 2 },
	}
	for ki, knob := range knobs {
		for seed := uint64(100); seed < 108; seed++ {
			rng := cache.NewRand(seed)
			p := genProgram(rng)
			goldenMem := mem.New()
			want, err := emu.New(p, goldenMem).Run()
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig(1)
			knob(&cfg)
			s := MustNewSystem(cfg, mem.New())
			if err := s.LoadProgram(0, p, nil); err != nil {
				t.Fatal(err)
			}
			if err := s.Run(2_000_000); err != nil {
				t.Fatalf("knob %d seed %d: %v", ki, seed, err)
			}
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				if s.Core(0).Reg(r) != want.Regs[r] {
					t.Fatalf("knob %d seed %d: %s = %d, want %d\n%s",
						ki, seed, r, s.Core(0).Reg(r), want.Regs[r], p)
				}
			}
		}
	}
}
