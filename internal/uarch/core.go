package uarch

import (
	"fmt"

	"specinterference/internal/cache"
	"specinterference/internal/emu"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
)

// stalledBranch is the predNext sentinel for conditional branches fetched
// in StallFetchInShadow mode: fetch stopped at the branch instead of
// predicting, and resumes via a redirect when the branch resolves.
const stalledBranch = -1

// memState tracks a load's progress through the load/store unit.
type memState int

const (
	memNone    memState = iota
	memRetry            // issued; waiting to (re)attempt the cache access
	memWalking          // access in flight; data arrives at memReadyAt
	memDelayed          // parked by an ActDelay policy decision
	memDone             // data obtained
)

// entry is one in-flight dynamic instruction (a ROB entry).
type entry struct {
	seq   int64
	pc    int
	inst  isa.Inst
	class isa.Class

	// renamed operands: srcTag[k] is the producer's seq or -1 when srcVal[k]
	// holds the value.
	nsrc   int
	srcTag [2]int64
	srcVal [2]int64

	fetchCycle    int64
	dispCycle     int64
	issued        bool
	issueCycle    int64
	execDoneAt    int64
	completed     bool
	completeCycle int64
	destVal       int64
	inRS          bool
	port          int
	robIdx        int // refreshed every cycle by the prefix pass

	// branches
	predTaken  bool
	predNext   int
	actualNext int

	// invisibleFetch: see fetched.invisibleFetch.
	invisibleFetch bool

	// memory
	addrKnown bool
	addr      int64
	mstate    memState
	memReady  int64
	invisible bool
	wasL1Hit  bool
	exposed   bool
	forwarded bool
	level     cache.Level
}

func (e *entry) isLoad() bool  { return e.inst.Op == isa.Load }
func (e *entry) isStore() bool { return e.inst.Op == isa.Store }
func (e *entry) isFlush() bool { return e.inst.Op == isa.Flush }

// srcsReady reports whether all renamed operands have values.
func (e *entry) srcsReady() bool {
	for k := 0; k < e.nsrc; k++ {
		if e.srcTag[k] != -1 {
			return false
		}
	}
	return true
}

// fetched is a decoded instruction waiting in the fetch buffer.
type fetched struct {
	pc         int
	inst       isa.Inst
	predTaken  bool
	predNext   int
	fetchCycle int64
	// invisibleFetch marks instructions whose line was fetched invisibly
	// (IFetchInvisible shadow structures); the line is exposed when the
	// instruction retires, modelling the shadow-I-structure commit.
	invisibleFetch bool
}

// prefix holds the per-cycle prefix scans over the ROB used for O(1)
// shadow/safety queries. prefix[i] answers "does any entry OLDER than ROB
// index i satisfy the predicate".
type prefix struct {
	unresolvedCB     []bool
	incomplete       []bool
	incompleteLoad   []bool
	fence            []bool
	storeAddrUnknown []bool
}

// Core is one out-of-order core.
type Core struct {
	id  int
	sys *System
	cfg *Config

	prog   *isa.Program
	policy SpecPolicy

	archRegs [isa.NumRegs]int64
	// regMap maps an architectural register to the seq of its latest
	// in-flight producer, or -1 when the value is architectural.
	regMap [isa.NumRegs]int64

	rob  []*entry
	live map[int64]*entry
	rs   []*entry
	// memOrder lists in-flight loads and stores in program order.
	memOrder []*entry

	executing []*entry // issued, completion scheduled at execDoneAt
	wbQueue   []*entry // execution done, waiting for a CDB slot

	euFreeAt []int64
	euBusy   []*entry // entry occupying a non-pipelined unit, else nil

	bp        *BranchPred
	oracle    []bool
	oracleIdx int
	nextSeq   int64

	fetchPC      int
	fetchOn      bool
	fetchBuf     []fetched
	lastIFLine   int64
	lastIFInvis  bool
	ifPending    bool
	ifReadyAt    int64
	redirectPend bool
	redirectAt   int64
	redirectPC   int

	pref   prefix
	halted bool
	paused bool

	// freeEntries is the recycled-entry pool: every entry that leaves the
	// pipeline (retire, squash, LoadProgram) returns here zeroed, so the
	// steady-state trial loop dispatches without allocating.
	freeEntries []*entry

	stats CoreStats
	hook  TraceHook
}

func newCore(id int, sys *System) *Core {
	c := &Core{
		id:     id,
		sys:    sys,
		cfg:    &sys.cfg,
		policy: Unprotected{},
		bp:     NewBranchPred(sys.cfg.BPEntries),
		halted: true,
		live:   map[int64]*entry{},
	}
	c.euFreeAt = make([]int64, len(sys.cfg.Ports))
	c.euBusy = make([]*entry, len(sys.cfg.Ports))
	for i := range c.regMap {
		c.regMap[i] = -1
	}
	return c
}

// newEntry returns a zeroed entry, reusing a recycled one when available.
func (c *Core) newEntry() *entry {
	if n := len(c.freeEntries); n > 0 {
		e := c.freeEntries[n-1]
		c.freeEntries[n-1] = nil
		c.freeEntries = c.freeEntries[:n-1]
		return e
	}
	return &entry{}
}

// recycle zeroes e and returns it to the pool. Callers must have removed e
// from every pipeline queue first; euBusy may legitimately still point at a
// finished non-pipelined op (issue never consults it once euFreeAt passes),
// so it is scrubbed here.
func (c *Core) recycle(e *entry) {
	for p, b := range c.euBusy {
		if b == e {
			c.euBusy[p] = nil
		}
	}
	*e = entry{}
	c.freeEntries = append(c.freeEntries, e)
}

// truncEntries empties an entry queue keeping its capacity, nilling slots so
// the backing array holds no stale pointers into the pool.
func truncEntries(s []*entry) []*entry {
	for i := range s {
		s[i] = nil
	}
	return s[:0]
}

// clearPipeline recycles every in-flight entry and empties all pipeline
// queues, retaining their storage.
func (c *Core) clearPipeline() {
	for _, e := range c.live {
		c.recycle(e)
	}
	clear(c.live)
	c.rob = truncEntries(c.rob)
	c.rs = truncEntries(c.rs)
	c.memOrder = truncEntries(c.memOrder)
	c.executing = truncEntries(c.executing)
	c.wbQueue = truncEntries(c.wbQueue)
	c.fetchBuf = c.fetchBuf[:0]
	for i := range c.euFreeAt {
		c.euFreeAt[i] = 0
		c.euBusy[i] = nil
	}
}

// reset restores the core to the state newCore returns: no program, no
// policy, architectural state zeroed, predictor fresh. Storage (queues,
// entry pool, prefix arrays) is retained for reuse.
func (c *Core) reset() {
	c.clearPipeline()
	c.prog = nil
	c.policy = Unprotected{}
	for i := range c.archRegs {
		c.archRegs[i] = 0
	}
	for i := range c.regMap {
		c.regMap[i] = -1
	}
	c.bp.Reset()
	c.bp.ResetStats()
	c.oracle = nil
	c.oracleIdx = 0
	c.nextSeq = 0
	c.fetchPC = 0
	c.fetchOn = false
	c.lastIFLine = 0
	c.lastIFInvis = false
	c.ifPending = false
	c.ifReadyAt = 0
	c.redirectPend = false
	c.redirectAt = 0
	c.redirectPC = 0
	c.halted = true
	c.paused = false
	c.stats = CoreStats{}
	c.hook = nil
}

// ID returns the core id.
func (c *Core) ID() int { return c.id }

// Stats returns a copy of the core's counters.
func (c *Core) Stats() CoreStats { return c.stats }

// Policy returns the attached speculation policy.
func (c *Core) Policy() SpecPolicy { return c.policy }

// Halted reports whether the core has retired a halt (or has no program).
func (c *Core) Halted() bool { return c.halted }

// Reg returns the architectural value of r (valid once halted).
func (c *Core) Reg(r isa.Reg) int64 { return c.archRegs[r] }

// SetReg sets an architectural register before a run.
func (c *Core) SetReg(r isa.Reg, v int64) { c.archRegs[r] = v }

// SetTraceHook installs h (nil disables tracing).
func (c *Core) SetTraceHook(h TraceHook) { c.hook = h }

// Predictor exposes the branch predictor (mistraining, tests).
func (c *Core) Predictor() *BranchPred { return c.bp }

// SetBranchOracle supplies the dynamic conditional-branch outcome sequence
// consumed in fetch order instead of the predictor — the "NoSpec(E)"
// execution of §5.1 is this machine with a perfect oracle. Call after
// LoadProgram (which clears any oracle).
func (c *Core) SetBranchOracle(outcomes []bool) {
	c.oracle = outcomes
	c.oracleIdx = 0
}

// LoadProgram resets the core's pipeline and attaches prog under policy.
// Architectural registers, the branch predictor and all cache state are
// preserved across loads — exactly what a multi-trial attack needs.
func (c *Core) LoadProgram(prog *isa.Program, policy SpecPolicy) error {
	if err := prog.Validate(); err != nil {
		return err
	}
	if policy == nil {
		policy = Unprotected{}
	}
	c.prog = prog
	c.policy = policy
	c.clearPipeline()
	for i := range c.regMap {
		c.regMap[i] = -1
	}
	c.fetchPC = 0
	c.fetchOn = true
	c.lastIFLine = -1
	c.ifPending = false
	c.redirectPend = false
	c.halted = false
	c.oracle = nil
	c.oracleIdx = 0
	c.stats = CoreStats{}
	return nil
}

// LoadProgram loads prog on core with policy (System-level convenience).
func (s *System) LoadProgram(core int, prog *isa.Program, policy SpecPolicy) error {
	return s.cores[core].LoadProgram(prog, policy)
}

// ---------------------------------------------------------------------------
// per-cycle pipeline

// SetPaused freezes or thaws the core (multi-phase attack harnesses hold
// the victim while the attacker primes, and vice versa).
func (c *Core) SetPaused(p bool) { c.paused = p }

func (c *Core) tick(cycle int64) {
	if c.halted || c.paused {
		return
	}
	c.stats.Cycles++
	c.computePrefix()
	c.releaseRS()
	c.lsuTick(cycle)
	c.issue(cycle)
	c.writeback(cycle)
	c.retire(cycle)
	c.dispatch(cycle)
	c.fetch(cycle)
}

// computePrefix refreshes the O(1) shadow/safety query arrays.
func (c *Core) computePrefix() {
	n := len(c.rob)
	p := &c.pref
	grow := func(s []bool) []bool {
		if cap(s) < n+1 {
			return make([]bool, n+1)
		}
		return s[:n+1]
	}
	p.unresolvedCB = grow(p.unresolvedCB)
	p.incomplete = grow(p.incomplete)
	p.incompleteLoad = grow(p.incompleteLoad)
	p.fence = grow(p.fence)
	p.storeAddrUnknown = grow(p.storeAddrUnknown)
	ucb, inc, incL, fen, sau := false, false, false, false, false
	for i, e := range c.rob {
		e.robIdx = i
		p.unresolvedCB[i] = ucb
		p.incomplete[i] = inc
		p.incompleteLoad[i] = incL
		p.fence[i] = fen
		p.storeAddrUnknown[i] = sau
		if e.inst.IsCondBranch() && !e.completed {
			ucb = true
		}
		if !e.completed {
			inc = true
		}
		if e.isLoad() && !e.completed {
			incL = true
		}
		if e.inst.Op == isa.Fence {
			fen = true
		}
		if e.isStore() && !e.addrKnown {
			sau = true
		}
	}
	p.unresolvedCB[n] = ucb
	p.incomplete[n] = inc
	p.incompleteLoad[n] = incL
	p.fence[n] = fen
	p.storeAddrUnknown[n] = sau
}

// safe reports whether e is non-speculative under model, using the prefix
// arrays computed this cycle.
func (c *Core) safe(e *entry, model ShadowModel) bool {
	switch model {
	case ShadowSpectre:
		return !c.pref.unresolvedCB[e.robIdx]
	case ShadowSpectreTSO:
		return !c.pref.unresolvedCB[e.robIdx] && !c.pref.incompleteLoad[e.robIdx]
	case ShadowFuturistic:
		return !c.pref.incomplete[e.robIdx]
	default:
		panic(fmt.Sprintf("uarch: unknown shadow model %d", model))
	}
}

// releaseRS frees reservation stations. Normally an RS entry frees at
// issue; under HoldRSUntilSafe (advanced defense rule 1) it frees only once
// the instruction is safe.
func (c *Core) releaseRS() {
	if !c.cfg.HoldRSUntilSafe {
		return
	}
	kept := c.rs[:0]
	for _, e := range c.rs {
		if e.issued && c.safe(e, c.policy.Shadow()) {
			e.inRS = false
			continue
		}
		kept = append(kept, e)
	}
	c.rs = kept
}

// ---------------------------------------------------------------------------
// issue

// candidateReady reports whether e can issue this cycle (operands, gates).
func (c *Core) candidateReady(e *entry, cycle int64) bool {
	if e.issued || !e.srcsReady() {
		return false
	}
	// lfence semantics: nothing younger than an unretired fence issues.
	if c.pref.fence[e.robIdx] {
		return false
	}
	// Fence-defense gate.
	if !c.policy.CanIssue(c.safe(e, c.policy.Shadow())) {
		c.stats.IssueGateStalls++
		return false
	}
	// Loads wait until every older store address is known (conservative
	// disambiguation: this machine never replays on memory ordering).
	if e.isLoad() && c.pref.storeAddrUnknown[e.robIdx] {
		return false
	}
	return true
}

func (c *Core) issue(cycle int64) {
	for p := range c.cfg.Ports {
		port := &c.cfg.Ports[p]
		var best *entry
		for _, e := range c.rs {
			if e.issued || !port.serves(e.class) {
				continue
			}
			if !c.candidateReady(e, cycle) {
				continue
			}
			if best == nil {
				best = e
				continue
			}
			if c.cfg.YoungestFirstIssue {
				if e.seq > best.seq {
					best = e
				}
			} else if e.seq < best.seq {
				best = e
			}
		}
		if best == nil {
			continue
		}
		if cycle < c.euFreeAt[p] {
			// Unit busy. Advanced-defense rule 2: an older instruction may
			// preempt a younger one on a non-pipelined ("squashable") unit.
			busy := c.euBusy[p]
			// Preemption requires the victim to still hold its RS entry,
			// otherwise it could never re-issue.
			if c.cfg.AgePriorityArb && c.cfg.HoldRSUntilSafe && busy != nil &&
				busy.inRS && busy.seq > best.seq && !busy.completed {
				c.preempt(p, busy)
			} else {
				continue
			}
		}
		c.issueTo(p, best, cycle)
	}
}

// preempt cancels busy's execution on port p and returns it to the ready
// pool (it still holds its RS entry under HoldRSUntilSafe).
func (c *Core) preempt(p int, busy *entry) {
	busy.issued = false
	busy.execDoneAt = 0
	kept := c.executing[:0]
	for _, x := range c.executing {
		if x != busy {
			kept = append(kept, x)
		}
	}
	c.executing = kept
	c.euFreeAt[p] = 0
	c.euBusy[p] = nil
}

func (c *Core) issueTo(p int, e *entry, cycle int64) {
	e.issued = true
	e.issueCycle = cycle
	e.port = p
	lat := int64(isa.ClassLatency(e.class))
	switch {
	case e.isLoad():
		// One cycle of AGU/port occupancy; the LSU walks the hierarchy from
		// the next cycle on.
		e.addr = e.srcVal[0] + e.inst.Imm
		e.addrKnown = true
		e.mstate = memRetry
		c.euFreeAt[p] = cycle + 1
	case e.isFlush():
		// Address generation only: the eviction applies at retire, so a
		// squashed flush has no effect (clflush is not transient; like on
		// x86 it must be fenced before a reload can be expected to miss).
		e.addr = e.srcVal[0] + e.inst.Imm
		e.addrKnown = true
		e.execDoneAt = cycle + 1
		c.executing = append(c.executing, e)
		c.euFreeAt[p] = cycle + 1
	case e.isStore():
		// Address was computed at wakeup; data travels with the entry and
		// is written at retire.
		e.execDoneAt = cycle + 1
		c.executing = append(c.executing, e)
		c.euFreeAt[p] = cycle + 1
	case e.inst.IsCondBranch():
		taken := emu.BranchTaken(e.inst.Op, e.srcVal[0], e.srcVal[1])
		if taken {
			e.actualNext = e.inst.Target
		} else {
			e.actualNext = e.pc + 1
		}
		e.execDoneAt = cycle + lat
		c.executing = append(c.executing, e)
		c.euFreeAt[p] = cycle + 1
	case e.inst.Op == isa.Jmp:
		e.actualNext = e.inst.Target
		e.execDoneAt = cycle + lat
		c.executing = append(c.executing, e)
		c.euFreeAt[p] = cycle + 1
	default:
		e.destVal = c.compute(e, cycle)
		e.execDoneAt = cycle + lat
		c.executing = append(c.executing, e)
		if isa.Pipelined(e.class) {
			c.euFreeAt[p] = cycle + 1
		} else {
			c.euFreeAt[p] = cycle + lat
			c.euBusy[p] = e
		}
	}
	if !c.cfg.HoldRSUntilSafe {
		c.removeRS(e)
	}
}

func (c *Core) removeRS(e *entry) {
	e.inRS = false
	for i, x := range c.rs {
		if x == e {
			c.rs = append(c.rs[:i], c.rs[i+1:]...)
			return
		}
	}
}

// compute evaluates a register-writing non-memory instruction.
func (c *Core) compute(e *entry, cycle int64) int64 {
	a, b := e.srcVal[0], e.srcVal[1]
	in := e.inst
	switch in.Op {
	case isa.MovI:
		return in.Imm
	case isa.Mov:
		return a
	case isa.Add:
		return a + b
	case isa.AddI:
		return a + in.Imm
	case isa.Sub:
		return a - b
	case isa.And:
		return a & b
	case isa.Or:
		return a | b
	case isa.Xor:
		return a ^ b
	case isa.ShlI:
		return a << uint(in.Imm&63)
	case isa.ShrI:
		return int64(uint64(a) >> uint(in.Imm&63))
	case isa.Mul:
		return a * b
	case isa.MulI:
		return a * in.Imm
	case isa.Div:
		return emu.SafeDiv(a, b)
	case isa.Sqrt:
		return emu.ISqrt(a)
	case isa.RdCycle:
		return cycle
	default:
		panic(fmt.Sprintf("uarch: compute called for %s", in.Op))
	}
}

// ---------------------------------------------------------------------------
// writeback

func (c *Core) writeback(cycle int64) {
	// Move finished executions into the CDB queue.
	kept := c.executing[:0]
	for _, e := range c.executing {
		if e.execDoneAt <= cycle {
			c.wbQueue = append(c.wbQueue, e)
		} else {
			kept = append(kept, e)
		}
	}
	c.executing = kept

	// CDB arbitration: by default finish-time then age; under
	// AgePriorityArb strictly by age (advanced defense rule 2).
	if c.cfg.AgePriorityArb {
		sortEntries(c.wbQueue, func(a, b *entry) bool { return a.seq < b.seq })
	} else {
		sortEntries(c.wbQueue, func(a, b *entry) bool {
			if a.execDoneAt != b.execDoneAt {
				return a.execDoneAt < b.execDoneAt
			}
			return a.seq < b.seq
		})
	}
	n := c.cfg.CDBWidth
	if n > len(c.wbQueue) {
		n = len(c.wbQueue)
	}
	c.stats.CDBConflicts += int64(len(c.wbQueue) - n)

	// The winner loop never reads or writes the queue, so it can run before
	// the losers are compacted down in place (no per-cycle reallocation).
	var squashAt *entry
	for _, e := range c.wbQueue[:n] {
		e.completed = true
		e.completeCycle = cycle
		if e.inst.HasDst() {
			c.broadcast(e)
		}
		if e.inst.IsCondBranch() {
			if e.predNext == stalledBranch {
				// Ideal-defense mode: fetch waited at this branch; resume
				// it at the resolved target. Nothing younger exists, so no
				// squash is needed and the predictor is never consulted.
				c.redirectPend = true
				c.redirectAt = cycle + int64(c.cfg.RedirectPenalty)
				c.redirectPC = e.actualNext
			} else {
				mispred := e.actualNext != e.predNext
				c.bp.Update(e.pc, e.actualNext == e.inst.Target, mispred)
				if mispred && (squashAt == nil || e.seq < squashAt.seq) {
					squashAt = e
				}
			}
		}
		if fp, ok := c.policy.(FilterPolicy); ok && e.isLoad() && e.invisible && !e.wasL1Hit {
			fp.OnInvisibleFill(e.addr)
		}
	}
	m := copy(c.wbQueue, c.wbQueue[n:])
	for i := m; i < len(c.wbQueue); i++ {
		c.wbQueue[i] = nil
	}
	c.wbQueue = c.wbQueue[:m]
	if squashAt != nil {
		c.squash(squashAt, cycle)
	}
}

// broadcast delivers e's result to every waiting consumer and computes
// store addresses whose base register just arrived.
func (c *Core) broadcast(e *entry) {
	for _, o := range c.rob {
		for k := 0; k < o.nsrc; k++ {
			if o.srcTag[k] == e.seq {
				o.srcTag[k] = -1
				o.srcVal[k] = e.destVal
				if o.isStore() && k == 0 && !o.addrKnown {
					o.addr = o.srcVal[0] + o.inst.Imm
					o.addrKnown = true
				}
			}
		}
	}
}

func sortEntries(s []*entry, less func(a, b *entry) bool) {
	// Insertion sort: queues are short and usually nearly sorted.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ---------------------------------------------------------------------------
// squash

func (c *Core) squash(br *entry, cycle int64) {
	c.stats.Squashes++
	// Flush everything younger than the branch.
	cut := len(c.rob)
	for i, e := range c.rob {
		if e.seq > br.seq {
			cut = i
			break
		}
	}
	doomed := c.rob[cut:]
	c.rob = c.rob[:cut]
	undo := false
	if up, ok := c.policy.(UndoPolicy); ok {
		undo = up.UndoSpeculativeFills()
	}
	for _, e := range doomed {
		c.stats.SquashedInsts++
		delete(c.live, e.seq)
		if undo && e.isLoad() && !e.invisible && e.addrKnown &&
			(e.mstate == memWalking || e.mstate == memDone) &&
			e.level != cache.LevelL1 {
			// CleanupSpec: invalidate the lines this squashed load filled.
			c.sys.hier.Flush(e.addr)
		}
		if c.hook != nil {
			c.hook.Record(c.id, record(e, true))
		}
	}
	isDoomed := func(e *entry) bool { return e.seq > br.seq }
	c.rs = filterEntries(c.rs, isDoomed)
	c.memOrder = filterEntries(c.memOrder, isDoomed)
	c.executing = filterEntries(c.executing, isDoomed)
	c.wbQueue = filterEntries(c.wbQueue, isDoomed)
	for p := range c.euBusy {
		if c.euBusy[p] != nil && isDoomed(c.euBusy[p]) {
			// The non-pipelined unit keeps grinding on the dead op until its
			// scheduled completion (realistic: EUs are not squashable in the
			// baseline; see §5.4 for the defense that changes this).
			c.euBusy[p] = nil
		}
	}
	// Rebuild the rename map from the surviving entries.
	for i := range c.regMap {
		c.regMap[i] = -1
	}
	for _, e := range c.rob {
		if e.inst.HasDst() {
			c.regMap[e.inst.Dst] = e.seq
		}
	}
	// Every queue has been filtered; the doomed entries can go back to the
	// pool (and out of the ROB's backing array).
	for i, e := range doomed {
		c.recycle(e)
		doomed[i] = nil
	}
	// Redirect the front end.
	c.fetchBuf = c.fetchBuf[:0]
	c.ifPending = false
	c.lastIFLine = -1
	c.fetchOn = false
	c.redirectPend = true
	c.redirectAt = cycle + int64(c.cfg.RedirectPenalty)
	c.redirectPC = br.actualNext
	if fp, ok := c.policy.(FilterPolicy); ok {
		fp.OnSquash()
	}
}

func filterEntries(s []*entry, drop func(*entry) bool) []*entry {
	kept := s[:0]
	for _, e := range s {
		if !drop(e) {
			kept = append(kept, e)
		}
	}
	return kept
}

// ---------------------------------------------------------------------------
// retire

func (c *Core) retire(cycle int64) {
	popped := 0
	for n := 0; n < c.cfg.RetireWidth && popped < len(c.rob); n++ {
		e := c.rob[popped]
		if !e.completed {
			break
		}
		// Safety-deferred cache effects that have not fired yet must fire
		// no later than retirement.
		if e.isLoad() && e.invisible && !e.exposed {
			c.exposeLoad(e, cycle)
		}
		if e.invisibleFetch {
			// Shadow-I-structure commit (SafeSpec/MuonTrap): retiring an
			// invisibly fetched instruction makes its line architectural.
			line := mem.LineAddr(c.prog.InstAddr(e.pc))
			if !c.sys.hier.L1I(c.id).Contains(line) {
				c.sys.hier.AccessInst(c.id, line, true, cycle)
			}
		}
		switch e.inst.Op {
		case isa.Store:
			c.sys.mem.Write64(e.addr, e.srcVal[1])
			c.sys.hier.AccessData(c.id, e.addr, cache.KindDataWrite, true, cycle)
		case isa.Flush:
			c.sys.hier.Flush(e.addr)
		case isa.Halt:
			c.halted = true
		}
		if e.inst.HasDst() {
			c.archRegs[e.inst.Dst] = e.destVal
			if c.regMap[e.inst.Dst] == e.seq {
				c.regMap[e.inst.Dst] = -1
			}
		}
		e.inRS = false
		c.rs = filterEntries(c.rs, func(x *entry) bool { return x == e })
		c.memOrder = filterEntries(c.memOrder, func(x *entry) bool { return x == e })
		delete(c.live, e.seq)
		popped++
		c.stats.Retired++
		if c.hook != nil {
			r := record(e, false)
			r.Retire = cycle
			c.hook.Record(c.id, r)
		}
		c.recycle(e)
		if c.halted {
			break
		}
	}
	// One compaction per cycle keeps the ROB anchored at its backing array's
	// base, so dispatch appends never reallocate in steady state.
	if popped > 0 {
		m := copy(c.rob, c.rob[popped:])
		for i := m; i < m+popped; i++ {
			c.rob[i] = nil
		}
		c.rob = c.rob[:m]
	}
}

func record(e *entry, squashed bool) InstRecord {
	r := InstRecord{
		Seq: e.seq, PC: e.pc, Inst: e.inst,
		Fetch: e.fetchCycle, Dispatch: e.dispCycle,
		Issue: -1, Complete: -1, Retire: -1,
		Squashed: squashed, Level: e.level, Addr: e.addr,
	}
	if e.issued {
		r.Issue = e.issueCycle
	}
	if e.completed {
		r.Complete = e.completeCycle
	}
	return r
}

// ---------------------------------------------------------------------------
// dispatch

func (c *Core) dispatch(cycle int64) {
	for n := 0; n < c.cfg.DispatchWidth && len(c.fetchBuf) > 0; n++ {
		if len(c.rob) >= c.cfg.ROBSize {
			c.stats.ROBFullStallCycles++
			return
		}
		f := c.fetchBuf[0]
		needsRS := isa.OpClass(f.inst.Op) != isa.ClassNone
		if needsRS && len(c.rs) >= c.cfg.RSSize {
			c.stats.RSFullStallCycles++
			return
		}
		nf := copy(c.fetchBuf, c.fetchBuf[1:])
		c.fetchBuf = c.fetchBuf[:nf]
		e := c.newEntry()
		e.seq, e.pc, e.inst = c.nextSeq, f.pc, f.inst
		e.class = isa.OpClass(f.inst.Op)
		e.fetchCycle, e.dispCycle = f.fetchCycle, cycle
		e.predTaken, e.predNext = f.predTaken, f.predNext
		e.invisibleFetch = f.invisibleFetch
		e.level = cache.LevelMem
		c.nextSeq++
		srcs, nsrc := f.inst.Uses()
		e.nsrc = nsrc
		for k := 0; k < nsrc; k++ {
			e.srcTag[k] = -1
			if tag := c.regMap[srcs[k]]; tag == -1 {
				e.srcVal[k] = c.archRegs[srcs[k]]
			} else if prod, ok := c.live[tag]; ok && prod.completed {
				e.srcVal[k] = prod.destVal
			} else {
				e.srcTag[k] = tag
			}
		}
		if f.inst.HasDst() {
			c.regMap[f.inst.Dst] = e.seq
		}
		if !needsRS {
			// Nop/Fence/Halt complete at dispatch and retire in order.
			e.completed = true
			e.completeCycle = cycle
		} else {
			e.inRS = true
			c.rs = append(c.rs, e)
		}
		if e.isStore() && e.srcTag[0] == -1 {
			e.addr = e.srcVal[0] + e.inst.Imm
			e.addrKnown = true
		}
		if e.isLoad() || e.isStore() {
			c.memOrder = append(c.memOrder, e)
		}
		c.rob = append(c.rob, e)
		c.live[e.seq] = e
	}
}

// ---------------------------------------------------------------------------
// fetch

// fetchShadowed reports whether an unresolved squash source (per the
// policy's shadow model) is in flight ahead of the fetch PC.
func (c *Core) fetchShadowed() bool {
	model := c.policy.Shadow()
	counts := func(in isa.Inst, completed bool) bool {
		if completed {
			return false
		}
		switch model {
		case ShadowSpectre, ShadowSpectreTSO:
			return in.IsCondBranch()
		default:
			return in.IsCondBranch() || in.Op == isa.Load
		}
	}
	for _, e := range c.rob {
		if counts(e.inst, e.completed) {
			return true
		}
	}
	for _, f := range c.fetchBuf {
		if counts(f.inst, false) {
			return true
		}
	}
	return false
}

func (c *Core) fetch(cycle int64) {
	if c.redirectPend && cycle >= c.redirectAt {
		c.redirectPend = false
		c.fetchPC = c.redirectPC
		c.fetchOn = true
	}
	if !c.fetchOn {
		c.stats.FetchStallCycles++
		return
	}
	if c.policy.StallFetchInShadow() && c.fetchShadowed() {
		c.stats.FetchStallCycles++
		return
	}
	if c.ifPending {
		if cycle < c.ifReadyAt {
			c.stats.FetchStallCycles++
			return
		}
		c.ifPending = false
	}
	fetchedAny := false
	for n := 0; n < c.cfg.FetchWidth && len(c.fetchBuf) < c.cfg.FetchBufSize; n++ {
		if c.fetchPC < 0 || c.fetchPC >= c.prog.Len() {
			c.fetchOn = false
			break
		}
		line := mem.LineAddr(c.prog.InstAddr(c.fetchPC))
		if line != c.lastIFLine {
			if !c.accessILine(line, cycle) {
				break // stalled on I-cache
			}
		}
		in := c.prog.Insts[c.fetchPC]
		f := fetched{pc: c.fetchPC, inst: in, fetchCycle: cycle,
			invisibleFetch: c.lastIFInvis}
		c.stats.Fetched++
		fetchedAny = true
		switch {
		case in.Op == isa.Halt:
			f.predNext = c.fetchPC + 1
			c.fetchBuf = append(c.fetchBuf, f)
			c.fetchOn = false
			return
		case in.Op == isa.Jmp:
			f.predNext = in.Target
			c.fetchBuf = append(c.fetchBuf, f)
			c.fetchPC = in.Target
			return // fetch group ends at a taken control transfer
		case in.IsCondBranch():
			if c.policy.StallFetchInShadow() {
				// Ideal-defense mode: never predict. Fetch stalls at the
				// branch and resumes via a redirect when it resolves, so
				// execution is bit-identical to its NoSpec counterpart.
				f.predNext = stalledBranch
				c.fetchBuf = append(c.fetchBuf, f)
				c.fetchOn = false
				return
			}
			if c.oracle != nil && c.oracleIdx < len(c.oracle) {
				f.predTaken = c.oracle[c.oracleIdx]
				c.oracleIdx++
			} else {
				f.predTaken = c.bp.Predict(c.fetchPC)
			}
			if f.predTaken {
				f.predNext = in.Target
			} else {
				f.predNext = c.fetchPC + 1
			}
			c.fetchBuf = append(c.fetchBuf, f)
			c.fetchPC = f.predNext
			return
		default:
			f.predNext = c.fetchPC + 1
			c.fetchBuf = append(c.fetchBuf, f)
			c.fetchPC++
		}
	}
	if !fetchedAny {
		c.stats.FetchStallCycles++
	}
}

// accessILine brings the instruction line into the frontend, returning
// false when fetch must stall this cycle.
func (c *Core) accessILine(line int64, cycle int64) bool {
	h := c.sys.hier
	mode := c.policy.IFetch()
	shadowed := mode != IFetchVisible && c.fetchShadowed()
	visible := true
	if shadowed {
		switch mode {
		case IFetchInvisible:
			visible = false
		case IFetchDelay:
			if !h.L1I(c.id).Contains(line) {
				// Miss under shadow: stall until the shadow clears.
				return false
			}
			// In-shadow hit proceeds without a replacement update.
			c.lastIFLine = line
			c.lastIFInvis = false
			return true
		}
	}
	resp := h.AccessInst(c.id, line, visible, cycle)
	c.lastIFLine = line
	c.lastIFInvis = !visible
	if resp.Level == cache.LevelL1 {
		return true
	}
	c.ifPending = true
	c.ifReadyAt = resp.Ready
	return false
}
