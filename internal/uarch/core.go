package uarch

import (
	"fmt"
	"math"

	"specinterference/internal/cache"
	"specinterference/internal/emu"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
)

// stalledBranch is the predNext sentinel for conditional branches fetched
// in StallFetchInShadow mode: fetch stopped at the branch instead of
// predicting, and resumes via a redirect when the branch resolves.
const stalledBranch = -1

// memState tracks a load's progress through the load/store unit.
type memState int

const (
	memNone    memState = iota
	memRetry            // issued; waiting to (re)attempt the cache access
	memWalking          // access in flight; data arrives at memReadyAt
	memDelayed          // parked by an ActDelay policy decision
	memDone             // data obtained
)

// entry is one in-flight dynamic instruction (a ROB entry).
type entry struct {
	seq   int64
	pc    int
	inst  isa.Inst
	class isa.Class

	// renamed operands: srcTag[k] is the producer's seq or -1 when srcVal[k]
	// holds the value.
	nsrc   int
	srcTag [2]int64
	srcVal [2]int64

	fetchCycle int64
	dispCycle  int64
	issued     bool
	issueCycle int64
	// rdyStamp/rdyOK/rdyGated memoize candidateReady for cycle rdyStamp-1:
	// readiness is port-independent, so ports sharing a class reuse the
	// verdict (the gate-stall stat still counts once per examining port).
	rdyStamp      int64
	rdyOK         bool
	rdyGated      bool
	execDoneAt    int64
	completed     bool
	completeCycle int64
	destVal       int64
	inRS          bool
	port          int

	// branches
	predTaken  bool
	predNext   int
	actualNext int

	// invisibleFetch: see fetched.invisibleFetch.
	invisibleFetch bool

	// memory
	addrKnown bool
	addr      int64
	mstate    memState
	memReady  int64
	invisible bool
	wasL1Hit  bool
	exposed   bool
	forwarded bool
	level     cache.Level
}

func (e *entry) isLoad() bool  { return e.inst.Op == isa.Load }
func (e *entry) isStore() bool { return e.inst.Op == isa.Store }
func (e *entry) isFlush() bool { return e.inst.Op == isa.Flush }

// srcsReady reports whether all renamed operands have values.
func (e *entry) srcsReady() bool {
	for k := 0; k < e.nsrc; k++ {
		if e.srcTag[k] != -1 {
			return false
		}
	}
	return true
}

// fetched is a decoded instruction waiting in the fetch buffer.
type fetched struct {
	pc         int
	inst       isa.Inst
	predTaken  bool
	predNext   int
	fetchCycle int64
	// invisibleFetch marks instructions whose line was fetched invisibly
	// (IFetchInvisible shadow structures); the line is exposed when the
	// instruction retires, modelling the shadow-I-structure commit.
	invisibleFetch bool
}

// noSeq is the min() result of an empty seqSet: older than nothing.
const noSeq = int64(math.MaxInt64)

// seqSet tracks the seqs of in-flight entries satisfying one shadow/safety
// predicate (unresolved branch, incomplete, fence, ...). Because dispatch
// hands out strictly increasing seqs, add() is always an append and the
// slice stays sorted; squash cuts a tail. The per-cycle prefix scan the
// arrays replace asked "is any entry OLDER than e marked" — with sorted
// seqs that is just min() < e.seq, so safety queries are O(1) and the
// bookkeeping moves to the (much rarer) completion/retire/squash events.
type seqSet struct {
	seqs []int64
}

// add records seq, which must exceed every seq already present.
func (s *seqSet) add(seq int64) { s.seqs = append(s.seqs, seq) }

// remove drops seq if present.
func (s *seqSet) remove(seq int64) {
	lo, hi := 0, len(s.seqs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.seqs[mid] < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.seqs) && s.seqs[lo] == seq {
		s.seqs = append(s.seqs[:lo], s.seqs[lo+1:]...)
	}
}

// dropYoungerThan removes every seq greater than keep (squash).
func (s *seqSet) dropYoungerThan(keep int64) {
	lo, hi := 0, len(s.seqs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.seqs[mid] <= keep {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.seqs = s.seqs[:lo]
}

// min returns the oldest tracked seq, or noSeq when empty.
func (s *seqSet) min() int64 {
	if len(s.seqs) == 0 {
		return noSeq
	}
	return s.seqs[0]
}

func (s *seqSet) empty() bool { return len(s.seqs) == 0 }

func (s *seqSet) clear() { s.seqs = s.seqs[:0] }

// Core is one out-of-order core.
type Core struct {
	id  int
	sys *System
	cfg *Config

	prog   *isa.Program
	policy SpecPolicy

	archRegs [isa.NumRegs]int64
	// regMap maps an architectural register to the seq of its latest
	// in-flight producer, or -1 when the value is architectural.
	regMap [isa.NumRegs]int64

	// rob holds the in-flight window in program order. Dispatch appends
	// strictly increasing seqs, retire pops the front and squash cuts the
	// tail, so the window is always seq-sorted (with gaps where squashes
	// consumed seqs) and robEntry resolves a rename tag by binary search.
	rob []*entry
	rs  []*entry
	// rsClass partitions the unified RS by execution class (same entries,
	// same relative order), so issue visits only the candidates a port can
	// serve instead of scanning the whole RS once per port.
	rsClass [isa.NumClasses][]*entry
	// memOrder lists in-flight loads and stores in program order.
	memOrder []*entry
	// waiting lists, in program order, the entries with at least one
	// unresolved source tag — the only possible wakeup targets. broadcast
	// scans it instead of the whole ROB; entries drop out the moment their
	// last tag resolves (and at squash).
	waiting []*entry

	executing []*entry // issued, completion scheduled at execDoneAt
	wbQueue   []*entry // execution done, waiting for a CDB slot

	euFreeAt []int64
	euBusy   []*entry // entry occupying a non-pipelined unit, else nil

	bp        *BranchPred
	oracle    []bool
	oracleIdx int
	nextSeq   int64

	fetchPC      int
	fetchOn      bool
	fetchBuf     []fetched
	lastIFLine   int64
	lastIFInvis  bool
	ifPending    bool
	ifReadyAt    int64
	redirectPend bool
	redirectAt   int64
	redirectPC   int

	// Shadow/safety trackers: the seqs of in-flight entries that are an
	// unresolved conditional branch / not yet complete / an incomplete load /
	// a fence / a store with unknown address. Maintained incrementally at
	// dispatch, completion, retire and squash; safe() and candidateReady
	// compare against their minimums instead of re-scanning the ROB.
	unresolvedCB   seqSet
	incomplete     seqSet
	incompleteLoad seqSet
	fenceSet       seqSet
	storeAddrUnk   seqSet
	// fbCondBr/fbLoads count conditional branches and loads sitting in the
	// fetch buffer — the fetch-buffer half of fetchShadowed.
	fbCondBr int
	fbLoads  int

	// portClasses[p] lists (deduplicated) the classes port p serves.
	portClasses [][]isa.Class

	// progressed records whether this core's last tick changed any machine
	// state (beyond per-cycle stall counters). A cycle where no core
	// progresses is provably idle and Run may fast-forward to the next
	// scheduled event; see System.runUntil.
	progressed bool

	halted bool
	paused bool

	// freeEntries is the recycled-entry pool: every entry that leaves the
	// pipeline (retire, squash, LoadProgram) returns here zeroed, so the
	// steady-state trial loop dispatches without allocating.
	freeEntries []*entry

	stats CoreStats
	hook  TraceHook
}

func newCore(id int, sys *System) *Core {
	c := &Core{
		id:     id,
		sys:    sys,
		cfg:    &sys.cfg,
		policy: Unprotected{},
		bp:     NewBranchPred(sys.cfg.BPEntries),
		halted: true,
	}
	c.euFreeAt = make([]int64, len(sys.cfg.Ports))
	c.euBusy = make([]*entry, len(sys.cfg.Ports))
	c.portClasses = make([][]isa.Class, len(sys.cfg.Ports))
	for p := range sys.cfg.Ports {
		var seen [isa.NumClasses]bool
		for _, cls := range sys.cfg.Ports[p].Classes {
			if !seen[cls] {
				seen[cls] = true
				c.portClasses[p] = append(c.portClasses[p], cls)
			}
		}
	}
	for i := range c.regMap {
		c.regMap[i] = -1
	}
	return c
}

// newEntry returns a zeroed entry, reusing a recycled one when available.
func (c *Core) newEntry() *entry {
	if n := len(c.freeEntries); n > 0 {
		e := c.freeEntries[n-1]
		c.freeEntries[n-1] = nil
		c.freeEntries = c.freeEntries[:n-1]
		return e
	}
	return &entry{}
}

// recycle zeroes e and returns it to the pool. Callers must have removed e
// from every pipeline queue first; euBusy may legitimately still point at a
// finished non-pipelined op (issue never consults it once euFreeAt passes),
// so it is scrubbed here.
func (c *Core) recycle(e *entry) {
	for p, b := range c.euBusy {
		if b == e {
			c.euBusy[p] = nil
		}
	}
	*e = entry{}
	c.freeEntries = append(c.freeEntries, e)
}

// robEntry returns the in-flight entry with the given seq, or nil. The ROB
// is always seq-sorted (see the rob field), so this is a binary search,
// replacing the seq→entry map the rename path used to probe.
func (c *Core) robEntry(seq int64) *entry {
	lo, hi := 0, len(c.rob)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.rob[mid].seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.rob) && c.rob[lo].seq == seq {
		return c.rob[lo]
	}
	return nil
}

// truncEntries empties an entry queue keeping its capacity, nilling slots so
// the backing array holds no stale pointers into the pool.
func truncEntries(s []*entry) []*entry {
	for i := range s {
		s[i] = nil
	}
	return s[:0]
}

// clearPipeline recycles every in-flight entry and empties all pipeline
// queues, retaining their storage.
func (c *Core) clearPipeline() {
	for _, e := range c.rob {
		c.recycle(e)
	}
	c.rob = truncEntries(c.rob)
	c.rs = truncEntries(c.rs)
	for cls := range c.rsClass {
		c.rsClass[cls] = truncEntries(c.rsClass[cls])
	}
	c.memOrder = truncEntries(c.memOrder)
	c.waiting = truncEntries(c.waiting)
	c.executing = truncEntries(c.executing)
	c.wbQueue = truncEntries(c.wbQueue)
	c.fetchBuf = c.fetchBuf[:0]
	c.unresolvedCB.clear()
	c.incomplete.clear()
	c.incompleteLoad.clear()
	c.fenceSet.clear()
	c.storeAddrUnk.clear()
	c.fbCondBr, c.fbLoads = 0, 0
	for i := range c.euFreeAt {
		c.euFreeAt[i] = 0
		c.euBusy[i] = nil
	}
}

// reset restores the core to the state newCore returns: no program, no
// policy, architectural state zeroed, predictor fresh. Storage (queues,
// entry pool, tracker slices) is retained for reuse.
func (c *Core) reset() {
	c.clearPipeline()
	c.prog = nil
	c.policy = Unprotected{}
	for i := range c.archRegs {
		c.archRegs[i] = 0
	}
	for i := range c.regMap {
		c.regMap[i] = -1
	}
	c.bp.Reset()
	c.bp.ResetStats()
	c.oracle = nil
	c.oracleIdx = 0
	c.nextSeq = 0
	c.fetchPC = 0
	c.fetchOn = false
	c.lastIFLine = 0
	c.lastIFInvis = false
	c.ifPending = false
	c.ifReadyAt = 0
	c.redirectPend = false
	c.redirectAt = 0
	c.redirectPC = 0
	c.halted = true
	c.paused = false
	c.stats = CoreStats{}
	c.hook = nil
}

// ID returns the core id.
func (c *Core) ID() int { return c.id }

// Stats returns a copy of the core's counters.
func (c *Core) Stats() CoreStats { return c.stats }

// Policy returns the attached speculation policy.
func (c *Core) Policy() SpecPolicy { return c.policy }

// Halted reports whether the core has retired a halt (or has no program).
func (c *Core) Halted() bool { return c.halted }

// Reg returns the architectural value of r (valid once halted).
func (c *Core) Reg(r isa.Reg) int64 { return c.archRegs[r] }

// SetReg sets an architectural register before a run.
func (c *Core) SetReg(r isa.Reg, v int64) { c.archRegs[r] = v }

// SetTraceHook installs h (nil disables tracing).
func (c *Core) SetTraceHook(h TraceHook) { c.hook = h }

// Predictor exposes the branch predictor (mistraining, tests).
func (c *Core) Predictor() *BranchPred { return c.bp }

// SetBranchOracle supplies the dynamic conditional-branch outcome sequence
// consumed in fetch order instead of the predictor — the "NoSpec(E)"
// execution of §5.1 is this machine with a perfect oracle. Call after
// LoadProgram (which clears any oracle).
func (c *Core) SetBranchOracle(outcomes []bool) {
	c.oracle = outcomes
	c.oracleIdx = 0
}

// LoadProgram resets the core's pipeline and attaches prog under policy.
// Architectural registers, the branch predictor and all cache state are
// preserved across loads — exactly what a multi-trial attack needs.
func (c *Core) LoadProgram(prog *isa.Program, policy SpecPolicy) error {
	if err := prog.Validate(); err != nil {
		return err
	}
	if policy == nil {
		policy = Unprotected{}
	}
	c.prog = prog
	c.policy = policy
	c.clearPipeline()
	for i := range c.regMap {
		c.regMap[i] = -1
	}
	c.fetchPC = 0
	c.fetchOn = true
	c.lastIFLine = -1
	c.ifPending = false
	c.redirectPend = false
	c.halted = false
	c.oracle = nil
	c.oracleIdx = 0
	c.stats = CoreStats{}
	return nil
}

// LoadProgram loads prog on core with policy (System-level convenience).
func (s *System) LoadProgram(core int, prog *isa.Program, policy SpecPolicy) error {
	return s.cores[core].LoadProgram(prog, policy)
}

// ---------------------------------------------------------------------------
// per-cycle pipeline

// SetPaused freezes or thaws the core (multi-phase attack harnesses hold
// the victim while the attacker primes, and vice versa).
func (c *Core) SetPaused(p bool) { c.paused = p }

func (c *Core) tick(cycle int64) {
	c.progressed = false
	if c.halted || c.paused {
		return
	}
	c.stats.Cycles++
	c.releaseRS()
	c.lsuTick(cycle)
	c.issue(cycle)
	c.writeback(cycle)
	c.retire(cycle)
	c.dispatch(cycle)
	c.fetch(cycle)
}

// safe reports whether e is non-speculative under model: no tracked entry
// strictly older than e satisfies the model's shadow predicate. The
// trackers are maintained at dispatch/completion/retire/squash time, so
// this is a compare against a minimum, not a ROB scan. Within a tick the
// trackers mutate only in writeback and later stages — after every safe()
// consumer (releaseRS, lsuTick, issue) has run — so the values those
// stages observe are exactly the cycle-start snapshot the old per-cycle
// prefix scan produced.
func (c *Core) safe(e *entry, model ShadowModel) bool {
	switch model {
	case ShadowSpectre:
		return c.unresolvedCB.min() >= e.seq
	case ShadowSpectreTSO:
		return c.unresolvedCB.min() >= e.seq && c.incompleteLoad.min() >= e.seq
	case ShadowFuturistic:
		return c.incomplete.min() >= e.seq
	default:
		panic(fmt.Sprintf("uarch: unknown shadow model %d", model))
	}
}

// releaseRS frees reservation stations. Normally an RS entry frees at
// issue; under HoldRSUntilSafe (advanced defense rule 1) it frees only once
// the instruction is safe.
func (c *Core) releaseRS() {
	if !c.cfg.HoldRSUntilSafe {
		return
	}
	kept := c.rs[:0]
	for _, e := range c.rs {
		if e.issued && c.safe(e, c.policy.Shadow()) {
			e.inRS = false
			c.removeFromClass(e)
			c.progressed = true
			continue
		}
		kept = append(kept, e)
	}
	nilTail(c.rs, len(kept))
	c.rs = kept
}

// ---------------------------------------------------------------------------
// issue

// candidateReady reports whether e can issue this cycle (operands, gates).
// The verdict is port-independent and its inputs (operands, trackers, the
// policy's pure CanIssue) are immutable while issue() runs, so it is
// memoized per entry per cycle; ports sharing a class reuse it. The
// gate-stall stat still counts once per examining (port, candidate) pair:
// a memoized gated verdict replays the increment on every visit.
func (c *Core) candidateReady(e *entry, cycle int64) bool {
	if e.issued {
		return false
	}
	if e.rdyStamp == cycle+1 {
		if e.rdyGated {
			c.stats.IssueGateStalls++
		}
		return e.rdyOK
	}
	e.rdyStamp = cycle + 1
	e.rdyGated = false
	e.rdyOK = c.readyCheck(e)
	return e.rdyOK
}

// readyCheck is the uncached body of candidateReady.
func (c *Core) readyCheck(e *entry) bool {
	if !e.srcsReady() {
		return false
	}
	// lfence semantics: nothing younger than an unretired fence issues.
	if c.fenceSet.min() < e.seq {
		return false
	}
	// Fence-defense gate.
	if !c.policy.CanIssue(c.safe(e, c.policy.Shadow())) {
		e.rdyGated = true
		c.stats.IssueGateStalls++
		return false
	}
	// Loads wait until every older store address is known (conservative
	// disambiguation: this machine never replays on memory ordering).
	if e.isLoad() && c.storeAddrUnk.min() < e.seq {
		return false
	}
	return true
}

// issue walks, for each port, the per-class lists of the classes it serves
// — only real candidates, not the whole RS once per port. The visible
// behavior of the old (port × full RS) scan is preserved exactly: best
// selection is order-independent (seqs are unique, comparisons strict), and
// IssueGateStalls still counts once per gated (port, candidate) pair per
// cycle because every serving port visits the gated entry and candidateReady
// replays the increment on memoized visits. Port class lists are deduped at
// construction so no port visits a list twice.
func (c *Core) issue(cycle int64) {
	for p := range c.cfg.Ports {
		var best *entry
		for _, cls := range c.portClasses[p] {
			for _, e := range c.rsClass[cls] {
				if e.issued {
					continue
				}
				if !c.candidateReady(e, cycle) {
					continue
				}
				if best == nil {
					best = e
					continue
				}
				if c.cfg.YoungestFirstIssue {
					if e.seq > best.seq {
						best = e
					}
				} else if e.seq < best.seq {
					best = e
				}
			}
		}
		if best == nil {
			continue
		}
		if cycle < c.euFreeAt[p] {
			// Unit busy. Advanced-defense rule 2: an older instruction may
			// preempt a younger one on a non-pipelined ("squashable") unit.
			busy := c.euBusy[p]
			// Preemption requires the victim to still hold its RS entry,
			// otherwise it could never re-issue.
			if c.cfg.AgePriorityArb && c.cfg.HoldRSUntilSafe && busy != nil &&
				busy.inRS && busy.seq > best.seq && !busy.completed {
				c.preempt(p, busy)
			} else {
				continue
			}
		}
		c.issueTo(p, best, cycle)
	}
}

// preempt cancels busy's execution on port p and returns it to the ready
// pool (it still holds its RS entry under HoldRSUntilSafe).
func (c *Core) preempt(p int, busy *entry) {
	c.progressed = true
	busy.issued = false
	busy.execDoneAt = 0
	kept := c.executing[:0]
	for _, x := range c.executing {
		if x != busy {
			kept = append(kept, x)
		}
	}
	c.executing = kept
	c.euFreeAt[p] = 0
	c.euBusy[p] = nil
}

func (c *Core) issueTo(p int, e *entry, cycle int64) {
	c.progressed = true
	e.issued = true
	e.issueCycle = cycle
	e.port = p
	lat := int64(isa.ClassLatency(e.class))
	switch {
	case e.isLoad():
		// One cycle of AGU/port occupancy; the LSU walks the hierarchy from
		// the next cycle on.
		e.addr = e.srcVal[0] + e.inst.Imm
		e.addrKnown = true
		e.mstate = memRetry
		c.euFreeAt[p] = cycle + 1
	case e.isFlush():
		// Address generation only: the eviction applies at retire, so a
		// squashed flush has no effect (clflush is not transient; like on
		// x86 it must be fenced before a reload can be expected to miss).
		e.addr = e.srcVal[0] + e.inst.Imm
		e.addrKnown = true
		e.execDoneAt = cycle + 1
		c.executing = append(c.executing, e)
		c.euFreeAt[p] = cycle + 1
	case e.isStore():
		// Address was computed at wakeup; data travels with the entry and
		// is written at retire.
		e.execDoneAt = cycle + 1
		c.executing = append(c.executing, e)
		c.euFreeAt[p] = cycle + 1
	case e.inst.IsCondBranch():
		taken := emu.BranchTaken(e.inst.Op, e.srcVal[0], e.srcVal[1])
		if taken {
			e.actualNext = e.inst.Target
		} else {
			e.actualNext = e.pc + 1
		}
		e.execDoneAt = cycle + lat
		c.executing = append(c.executing, e)
		c.euFreeAt[p] = cycle + 1
	case e.inst.Op == isa.Jmp:
		e.actualNext = e.inst.Target
		e.execDoneAt = cycle + lat
		c.executing = append(c.executing, e)
		c.euFreeAt[p] = cycle + 1
	default:
		e.destVal = c.compute(e, cycle)
		e.execDoneAt = cycle + lat
		c.executing = append(c.executing, e)
		if isa.Pipelined(e.class) {
			c.euFreeAt[p] = cycle + 1
		} else {
			c.euFreeAt[p] = cycle + lat
			c.euBusy[p] = e
		}
	}
	if !c.cfg.HoldRSUntilSafe {
		c.removeRS(e)
	}
}

func (c *Core) removeRS(e *entry) {
	e.inRS = false
	for i, x := range c.rs {
		if x == e {
			copy(c.rs[i:], c.rs[i+1:])
			c.rs[len(c.rs)-1] = nil
			c.rs = c.rs[:len(c.rs)-1]
			break
		}
	}
	c.removeFromClass(e)
}

// removeFromClass drops e from its per-class issue list.
func (c *Core) removeFromClass(e *entry) {
	l := c.rsClass[e.class]
	for i, x := range l {
		if x == e {
			copy(l[i:], l[i+1:])
			l[len(l)-1] = nil
			c.rsClass[e.class] = l[:len(l)-1]
			return
		}
	}
}

// compute evaluates a register-writing non-memory instruction.
func (c *Core) compute(e *entry, cycle int64) int64 {
	a, b := e.srcVal[0], e.srcVal[1]
	in := e.inst
	switch in.Op {
	case isa.MovI:
		return in.Imm
	case isa.Mov:
		return a
	case isa.Add:
		return a + b
	case isa.AddI:
		return a + in.Imm
	case isa.Sub:
		return a - b
	case isa.And:
		return a & b
	case isa.Or:
		return a | b
	case isa.Xor:
		return a ^ b
	case isa.ShlI:
		return a << uint(in.Imm&63)
	case isa.ShrI:
		return int64(uint64(a) >> uint(in.Imm&63))
	case isa.Mul:
		return a * b
	case isa.MulI:
		return a * in.Imm
	case isa.Div:
		return emu.SafeDiv(a, b)
	case isa.Sqrt:
		return emu.ISqrt(a)
	case isa.RdCycle:
		return cycle
	default:
		panic(fmt.Sprintf("uarch: compute called for %s", in.Op))
	}
}

// ---------------------------------------------------------------------------
// writeback

func (c *Core) writeback(cycle int64) {
	// Move finished executions into the CDB queue.
	kept := c.executing[:0]
	for _, e := range c.executing {
		if e.execDoneAt <= cycle {
			c.wbQueue = append(c.wbQueue, e)
		} else {
			kept = append(kept, e)
		}
	}
	c.executing = kept
	if len(c.wbQueue) > 0 {
		// CDBWidth >= 1, so a non-empty queue always completes something.
		c.progressed = true
	}

	// CDB arbitration: by default finish-time then age; under
	// AgePriorityArb strictly by age (advanced defense rule 2).
	if c.cfg.AgePriorityArb {
		sortEntries(c.wbQueue, func(a, b *entry) bool { return a.seq < b.seq })
	} else {
		sortEntries(c.wbQueue, func(a, b *entry) bool {
			if a.execDoneAt != b.execDoneAt {
				return a.execDoneAt < b.execDoneAt
			}
			return a.seq < b.seq
		})
	}
	n := c.cfg.CDBWidth
	if n > len(c.wbQueue) {
		n = len(c.wbQueue)
	}
	c.stats.CDBConflicts += int64(len(c.wbQueue) - n)

	// The winner loop never reads or writes the queue, so it can run before
	// the losers are compacted down in place (no per-cycle reallocation).
	var squashAt *entry
	for _, e := range c.wbQueue[:n] {
		e.completed = true
		e.completeCycle = cycle
		c.incomplete.remove(e.seq)
		if e.isLoad() {
			c.incompleteLoad.remove(e.seq)
		}
		if e.inst.HasDst() {
			c.broadcast(e)
		}
		if e.inst.IsCondBranch() {
			c.unresolvedCB.remove(e.seq)
			if e.predNext == stalledBranch {
				// Ideal-defense mode: fetch waited at this branch; resume
				// it at the resolved target. Nothing younger exists, so no
				// squash is needed and the predictor is never consulted.
				c.redirectPend = true
				c.redirectAt = cycle + int64(c.cfg.RedirectPenalty)
				c.redirectPC = e.actualNext
			} else {
				mispred := e.actualNext != e.predNext
				c.bp.Update(e.pc, e.actualNext == e.inst.Target, mispred)
				if mispred && (squashAt == nil || e.seq < squashAt.seq) {
					squashAt = e
				}
			}
		}
		if fp, ok := c.policy.(FilterPolicy); ok && e.isLoad() && e.invisible && !e.wasL1Hit {
			fp.OnInvisibleFill(e.addr)
		}
	}
	m := copy(c.wbQueue, c.wbQueue[n:])
	for i := m; i < len(c.wbQueue); i++ {
		c.wbQueue[i] = nil
	}
	c.wbQueue = c.wbQueue[:m]
	if squashAt != nil {
		c.squash(squashAt, cycle)
	}
}

// broadcast delivers e's result to every waiting consumer and computes
// store addresses whose base register just arrived. Only entries with an
// unresolved source tag can consume a broadcast, so the scan covers the
// waiting list — compacting out consumers whose last tag just resolved —
// rather than the whole ROB.
func (c *Core) broadcast(e *entry) {
	kept := c.waiting[:0]
	for _, o := range c.waiting {
		pending := false
		for k := 0; k < o.nsrc; k++ {
			if o.srcTag[k] == e.seq {
				o.srcTag[k] = -1
				o.srcVal[k] = e.destVal
				if o.isStore() && k == 0 && !o.addrKnown {
					o.addr = o.srcVal[0] + o.inst.Imm
					o.addrKnown = true
					c.storeAddrUnk.remove(o.seq)
				}
			} else if o.srcTag[k] != -1 {
				pending = true
			}
		}
		if pending {
			kept = append(kept, o)
		}
	}
	nilTail(c.waiting, len(kept))
	c.waiting = kept
}

// nilTail clears s[n:] so compacted entry queues hold no stale pointers
// into the pool.
func nilTail(s []*entry, n int) {
	for i := n; i < len(s); i++ {
		s[i] = nil
	}
}

func sortEntries(s []*entry, less func(a, b *entry) bool) {
	// Insertion sort: queues are short and usually nearly sorted.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ---------------------------------------------------------------------------
// squash

func (c *Core) squash(br *entry, cycle int64) {
	c.stats.Squashes++
	// Flush everything younger than the branch.
	cut := len(c.rob)
	for i, e := range c.rob {
		if e.seq > br.seq {
			cut = i
			break
		}
	}
	doomed := c.rob[cut:]
	c.rob = c.rob[:cut]
	c.unresolvedCB.dropYoungerThan(br.seq)
	c.incomplete.dropYoungerThan(br.seq)
	c.incompleteLoad.dropYoungerThan(br.seq)
	c.fenceSet.dropYoungerThan(br.seq)
	c.storeAddrUnk.dropYoungerThan(br.seq)
	undo := false
	if up, ok := c.policy.(UndoPolicy); ok {
		undo = up.UndoSpeculativeFills()
	}
	for _, e := range doomed {
		c.stats.SquashedInsts++
		if undo && e.isLoad() && !e.invisible && e.addrKnown &&
			(e.mstate == memWalking || e.mstate == memDone) &&
			e.level != cache.LevelL1 {
			// CleanupSpec: invalidate the lines this squashed load filled.
			c.sys.hier.Flush(e.addr)
		}
		if c.hook != nil {
			c.hook.Record(c.id, record(e, true))
		}
	}
	isDoomed := func(e *entry) bool { return e.seq > br.seq }
	c.rs = filterEntries(c.rs, isDoomed)
	for cls := range c.rsClass {
		c.rsClass[cls] = filterEntries(c.rsClass[cls], isDoomed)
	}
	c.memOrder = filterEntries(c.memOrder, isDoomed)
	c.waiting = filterEntries(c.waiting, isDoomed)
	c.executing = filterEntries(c.executing, isDoomed)
	c.wbQueue = filterEntries(c.wbQueue, isDoomed)
	for p := range c.euBusy {
		if c.euBusy[p] != nil && isDoomed(c.euBusy[p]) {
			// The non-pipelined unit keeps grinding on the dead op until its
			// scheduled completion (realistic: EUs are not squashable in the
			// baseline; see §5.4 for the defense that changes this).
			c.euBusy[p] = nil
		}
	}
	// Rebuild the rename map from the surviving entries.
	for i := range c.regMap {
		c.regMap[i] = -1
	}
	for _, e := range c.rob {
		if e.inst.HasDst() {
			c.regMap[e.inst.Dst] = e.seq
		}
	}
	// Every queue has been filtered; the doomed entries can go back to the
	// pool (and out of the ROB's backing array).
	for i, e := range doomed {
		c.recycle(e)
		doomed[i] = nil
	}
	// Redirect the front end.
	c.fetchBuf = c.fetchBuf[:0]
	c.fbCondBr, c.fbLoads = 0, 0
	c.ifPending = false
	c.lastIFLine = -1
	c.fetchOn = false
	c.redirectPend = true
	c.redirectAt = cycle + int64(c.cfg.RedirectPenalty)
	c.redirectPC = br.actualNext
	if fp, ok := c.policy.(FilterPolicy); ok {
		fp.OnSquash()
	}
}

func filterEntries(s []*entry, drop func(*entry) bool) []*entry {
	kept := s[:0]
	for _, e := range s {
		if !drop(e) {
			kept = append(kept, e)
		}
	}
	return kept
}

// ---------------------------------------------------------------------------
// retire

func (c *Core) retire(cycle int64) {
	popped := 0
	for n := 0; n < c.cfg.RetireWidth && popped < len(c.rob); n++ {
		e := c.rob[popped]
		if !e.completed {
			break
		}
		// Safety-deferred cache effects that have not fired yet must fire
		// no later than retirement.
		if e.isLoad() && e.invisible && !e.exposed {
			c.exposeLoad(e, cycle)
		}
		if e.invisibleFetch {
			// Shadow-I-structure commit (SafeSpec/MuonTrap): retiring an
			// invisibly fetched instruction makes its line architectural.
			line := mem.LineAddr(c.prog.InstAddr(e.pc))
			if !c.sys.hier.L1I(c.id).Contains(line) {
				c.sys.hier.AccessInst(c.id, line, true, cycle)
			}
		}
		switch e.inst.Op {
		case isa.Store:
			c.sys.mem.Write64(e.addr, e.srcVal[1])
			c.sys.hier.AccessData(c.id, e.addr, cache.KindDataWrite, true, cycle)
		case isa.Flush:
			c.sys.hier.Flush(e.addr)
		case isa.Fence:
			c.fenceSet.remove(e.seq)
		case isa.Halt:
			c.halted = true
		}
		if e.inst.HasDst() {
			c.archRegs[e.inst.Dst] = e.destVal
			if c.regMap[e.inst.Dst] == e.seq {
				c.regMap[e.inst.Dst] = -1
			}
		}
		if e.inRS {
			c.removeRS(e)
		}
		if e.isLoad() || e.isStore() {
			// Retirement is in order, so e is memOrder's front entry.
			for i, x := range c.memOrder {
				if x == e {
					copy(c.memOrder[i:], c.memOrder[i+1:])
					c.memOrder[len(c.memOrder)-1] = nil
					c.memOrder = c.memOrder[:len(c.memOrder)-1]
					break
				}
			}
		}
		popped++
		c.stats.Retired++
		if c.hook != nil {
			r := record(e, false)
			r.Retire = cycle
			c.hook.Record(c.id, r)
		}
		c.recycle(e)
		if c.halted {
			break
		}
	}
	// One compaction per cycle keeps the ROB anchored at its backing array's
	// base, so dispatch appends never reallocate in steady state.
	if popped > 0 {
		c.progressed = true
		m := copy(c.rob, c.rob[popped:])
		for i := m; i < m+popped; i++ {
			c.rob[i] = nil
		}
		c.rob = c.rob[:m]
	}
}

func record(e *entry, squashed bool) InstRecord {
	r := InstRecord{
		Seq: e.seq, PC: e.pc, Inst: e.inst,
		Fetch: e.fetchCycle, Dispatch: e.dispCycle,
		Issue: -1, Complete: -1, Retire: -1,
		Squashed: squashed, Level: e.level, Addr: e.addr,
	}
	if e.issued {
		r.Issue = e.issueCycle
	}
	if e.completed {
		r.Complete = e.completeCycle
	}
	return r
}

// ---------------------------------------------------------------------------
// dispatch

func (c *Core) dispatch(cycle int64) {
	for n := 0; n < c.cfg.DispatchWidth && len(c.fetchBuf) > 0; n++ {
		if len(c.rob) >= c.cfg.ROBSize {
			c.stats.ROBFullStallCycles++
			return
		}
		f := c.fetchBuf[0]
		needsRS := isa.OpClass(f.inst.Op) != isa.ClassNone
		if needsRS && len(c.rs) >= c.cfg.RSSize {
			c.stats.RSFullStallCycles++
			return
		}
		nf := copy(c.fetchBuf, c.fetchBuf[1:])
		c.fetchBuf = c.fetchBuf[:nf]
		if f.inst.IsCondBranch() {
			c.fbCondBr--
		}
		if f.inst.Op == isa.Load {
			c.fbLoads--
		}
		e := c.newEntry()
		e.seq, e.pc, e.inst = c.nextSeq, f.pc, f.inst
		e.class = isa.OpClass(f.inst.Op)
		e.fetchCycle, e.dispCycle = f.fetchCycle, cycle
		e.predTaken, e.predNext = f.predTaken, f.predNext
		e.invisibleFetch = f.invisibleFetch
		e.level = cache.LevelMem
		c.nextSeq++
		srcs, nsrc := f.inst.Uses()
		e.nsrc = nsrc
		for k := 0; k < nsrc; k++ {
			e.srcTag[k] = -1
			if tag := c.regMap[srcs[k]]; tag == -1 {
				e.srcVal[k] = c.archRegs[srcs[k]]
			} else if prod := c.robEntry(tag); prod != nil && prod.completed {
				e.srcVal[k] = prod.destVal
			} else {
				e.srcTag[k] = tag
			}
		}
		if !e.srcsReady() {
			c.waiting = append(c.waiting, e)
		}
		if f.inst.HasDst() {
			c.regMap[f.inst.Dst] = e.seq
		}
		if !needsRS {
			// Nop/Fence/Halt complete at dispatch and retire in order.
			e.completed = true
			e.completeCycle = cycle
		} else {
			e.inRS = true
			c.rs = append(c.rs, e)
			c.rsClass[e.class] = append(c.rsClass[e.class], e)
			c.incomplete.add(e.seq)
			if e.inst.IsCondBranch() {
				c.unresolvedCB.add(e.seq)
			}
			if e.isLoad() {
				c.incompleteLoad.add(e.seq)
			}
		}
		if e.inst.Op == isa.Fence {
			c.fenceSet.add(e.seq)
		}
		if e.isStore() && e.srcTag[0] == -1 {
			e.addr = e.srcVal[0] + e.inst.Imm
			e.addrKnown = true
		}
		if e.isStore() && !e.addrKnown {
			c.storeAddrUnk.add(e.seq)
		}
		if e.isLoad() || e.isStore() {
			c.memOrder = append(c.memOrder, e)
		}
		c.rob = append(c.rob, e)
		c.progressed = true
	}
}

// ---------------------------------------------------------------------------
// fetch

// fetchShadowed reports whether an unresolved squash source (per the
// policy's shadow model) is in flight ahead of the fetch PC. Unlike the
// issue-side safety queries, this is a live view: the trackers and
// fetch-buffer counters are updated at the mutation site, so a branch that
// resolved earlier this same cycle already reads as resolved here.
func (c *Core) fetchShadowed() bool {
	switch c.policy.Shadow() {
	case ShadowSpectre, ShadowSpectreTSO:
		return !c.unresolvedCB.empty() || c.fbCondBr > 0
	default:
		return !c.unresolvedCB.empty() || c.fbCondBr > 0 ||
			!c.incompleteLoad.empty() || c.fbLoads > 0
	}
}

// pushFetched appends f to the fetch buffer, maintaining the shadow
// counters fetchShadowed reads.
func (c *Core) pushFetched(f fetched) {
	if f.inst.IsCondBranch() {
		c.fbCondBr++
	}
	if f.inst.Op == isa.Load {
		c.fbLoads++
	}
	c.fetchBuf = append(c.fetchBuf, f)
}

func (c *Core) fetch(cycle int64) {
	if c.redirectPend && cycle >= c.redirectAt {
		c.redirectPend = false
		c.fetchPC = c.redirectPC
		c.fetchOn = true
		c.progressed = true
	}
	if !c.fetchOn {
		c.stats.FetchStallCycles++
		return
	}
	if c.policy.StallFetchInShadow() && c.fetchShadowed() {
		c.stats.FetchStallCycles++
		return
	}
	if c.ifPending {
		if cycle < c.ifReadyAt {
			c.stats.FetchStallCycles++
			return
		}
		c.ifPending = false
		c.progressed = true
	}
	fetchedAny := false
	for n := 0; n < c.cfg.FetchWidth && len(c.fetchBuf) < c.cfg.FetchBufSize; n++ {
		if c.fetchPC < 0 || c.fetchPC >= c.prog.Len() {
			c.fetchOn = false
			c.progressed = true
			break
		}
		line := mem.LineAddr(c.prog.InstAddr(c.fetchPC))
		if line != c.lastIFLine {
			if !c.accessILine(line, cycle) {
				break // stalled on I-cache
			}
		}
		in := c.prog.Insts[c.fetchPC]
		f := fetched{pc: c.fetchPC, inst: in, fetchCycle: cycle,
			invisibleFetch: c.lastIFInvis}
		c.stats.Fetched++
		fetchedAny = true
		c.progressed = true
		switch {
		case in.Op == isa.Halt:
			f.predNext = c.fetchPC + 1
			c.pushFetched(f)
			c.fetchOn = false
			return
		case in.Op == isa.Jmp:
			f.predNext = in.Target
			c.pushFetched(f)
			c.fetchPC = in.Target
			return // fetch group ends at a taken control transfer
		case in.IsCondBranch():
			if c.policy.StallFetchInShadow() {
				// Ideal-defense mode: never predict. Fetch stalls at the
				// branch and resumes via a redirect when it resolves, so
				// execution is bit-identical to its NoSpec counterpart.
				f.predNext = stalledBranch
				c.pushFetched(f)
				c.fetchOn = false
				return
			}
			if c.oracle != nil && c.oracleIdx < len(c.oracle) {
				f.predTaken = c.oracle[c.oracleIdx]
				c.oracleIdx++
			} else {
				f.predTaken = c.bp.Predict(c.fetchPC)
			}
			if f.predTaken {
				f.predNext = in.Target
			} else {
				f.predNext = c.fetchPC + 1
			}
			c.pushFetched(f)
			c.fetchPC = f.predNext
			return
		default:
			f.predNext = c.fetchPC + 1
			c.pushFetched(f)
			c.fetchPC++
		}
	}
	if !fetchedAny {
		c.stats.FetchStallCycles++
	}
}

// accessILine brings the instruction line into the frontend, returning
// false when fetch must stall this cycle.
func (c *Core) accessILine(line int64, cycle int64) bool {
	h := c.sys.hier
	mode := c.policy.IFetch()
	shadowed := mode != IFetchVisible && c.fetchShadowed()
	visible := true
	if shadowed {
		switch mode {
		case IFetchInvisible:
			visible = false
		case IFetchDelay:
			if !h.L1I(c.id).Contains(line) {
				// Miss under shadow: stall until the shadow clears.
				return false
			}
			// In-shadow hit proceeds without a replacement update.
			c.lastIFLine = line
			c.lastIFInvis = false
			c.progressed = true
			return true
		}
	}
	resp := h.AccessInst(c.id, line, visible, cycle)
	c.lastIFLine = line
	c.lastIFInvis = !visible
	c.progressed = true
	if resp.Level == cache.LevelL1 {
		return true
	}
	c.ifPending = true
	c.ifReadyAt = resp.Ready
	return false
}

// ---------------------------------------------------------------------------
// idle-cycle fast-forward support

// idleStats snapshots the stall counters a provably idle cycle still
// increments; everything else in CoreStats only moves on progress cycles.
type idleStats struct {
	fetchStall, robStall, rsStall, gateStall, mshrRetries int64
}

func (c *Core) snapIdleStats() idleStats {
	return idleStats{
		fetchStall:  c.stats.FetchStallCycles,
		robStall:    c.stats.ROBFullStallCycles,
		rsStall:     c.stats.RSFullStallCycles,
		gateStall:   c.stats.IssueGateStalls,
		mshrRetries: c.stats.MSHRRetries,
	}
}

// applyIdleCycles accounts n fast-forwarded cycles exactly as if the core
// had re-run its last (idle) tick n more times: the per-cycle deltas that
// tick produced — captured by comparing against the pre-tick snapshot —
// are multiplied out. All other machine state is by construction unchanged
// by an idle tick.
func (c *Core) applyIdleCycles(n int64, pre idleStats) {
	st := &c.stats
	st.Cycles += n
	st.FetchStallCycles += n * (st.FetchStallCycles - pre.fetchStall)
	st.ROBFullStallCycles += n * (st.ROBFullStallCycles - pre.robStall)
	st.RSFullStallCycles += n * (st.RSFullStallCycles - pre.rsStall)
	st.IssueGateStalls += n * (st.IssueGateStalls - pre.gateStall)
	st.MSHRRetries += n * (st.MSHRRetries - pre.mshrRetries)
}

// nextEventAfter returns the earliest cycle strictly after now at which
// this core's tick could act differently than it just did: a pending
// redirect or I-fetch completing, an execution or hierarchy walk
// finishing, a busy execution unit freeing, or an outstanding MSHR entry
// expiring (which unblocks full-file load retries). Everything else the
// pipeline waits on — operand wakeups, safety-shadow clearing, fence
// retirement, structural slots — is driven by one of these completions
// and therefore happens on a cycle some prior tick made progress.
func (c *Core) nextEventAfter(now int64) int64 {
	next := noSeq
	minTo := func(t int64) {
		if t > now && t < next {
			next = t
		}
	}
	if c.redirectPend {
		minTo(c.redirectAt)
	}
	if c.ifPending {
		minTo(c.ifReadyAt)
	}
	for _, e := range c.executing {
		minTo(e.execDoneAt)
	}
	for _, e := range c.memOrder {
		if e.isLoad() && e.mstate == memWalking {
			minTo(e.memReady)
		}
	}
	for _, t := range c.euFreeAt {
		minTo(t)
	}
	minTo(c.sys.hier.DMSHR(c.id).NextReady(now))
	return next
}
