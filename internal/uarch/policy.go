// Package uarch implements the cycle-level out-of-order multi-core
// simulator: fetch with a mistrainable branch predictor, rename/dispatch
// into a reorder buffer and unified reservation stations, age-ordered issue
// to pipelined and non-pipelined execution units, common-data-bus
// arbitration, a load/store unit with MSHR allocation, in-order retirement,
// and squash/recovery.
//
// The design deliberately exposes the five microarchitectural behaviours
// that the speculative interference attacks of Behnia et al. (ASPLOS 2021)
// exploit:
//
//  1. ready-oldest-first issue arbitration (§3.2.2's f/f' cascade),
//  2. non-pipelined execution-unit occupancy (GDNPEU),
//  3. one-cycle wakeup delay between a producer's writeback and its
//     dependant's earliest issue (the "writeback delay" of Figure 3),
//  4. MSHR allocation in request order with no age reservation (GDMSHR),
//  5. reservation-station back-pressure that stalls dispatch and then
//     fetch (GIRS).
//
// Invisible-speculation schemes and defenses plug in via SpecPolicy.
//
// # Performance architecture
//
// The simulator's hot loop is tick() on each core; everything on it is
// organized around two invariants. First, dispatch hands out strictly
// increasing sequence numbers and never reuses them, so the ROB is always
// seq-sorted (binary-searchable for rename, tail-cuttable for squash) and
// every "is any OLDER in-flight instruction X?" safety question reduces to
// comparing against the minimum of a sorted seq slice. The per-predicate
// seqSet trackers (unresolved branches, incomplete instructions and loads,
// fences, unknown store addresses) are maintained at the rare mutation
// events — dispatch, completion, retire, squash — so safe(), the fence
// check and load disambiguation are O(1) per query instead of a per-cycle
// ROB scan. Second, issue visits only plausible candidates: the unified RS
// is mirrored into per-execution-class lists, each port walks just the
// classes it serves, and the port-independent readiness verdict is
// memoized per entry per cycle. Wakeup likewise scans only the entries
// with an unresolved source tag (the waiting list), not the ROB.
//
// On top of the per-cycle work, System.Run skips provably idle cycles
// entirely: when a tick changes nothing (no core sets its progressed
// flag), the run jumps to the earliest scheduled event — redirect,
// I-fetch or execution completion, hierarchy walk, EU free, MSHR fill —
// multiplying out the per-cycle stall counters for exact stats.
//
// All of this is contractually timing-neutral: the optimizations change
// how fast cycles are simulated, never what a cycle does. The committed
// sim-cycles/op / sim-insts/op trajectory and the fast-forward on/off
// equivalence test (TestFastForwardEquivalence) pin that contract in CI.
package uarch

import "fmt"

// ShadowModel defines when an instruction stops being speculative.
type ShadowModel int

// Shadow models.
const (
	// ShadowSpectre: an instruction is safe when no older conditional
	// branch is unresolved (the paper's "Spectre model").
	ShadowSpectre ShadowModel = iota
	// ShadowSpectreTSO additionally requires all older loads to have
	// completed (Delay-on-Miss under a TSO memory model: unprotected loads
	// may not bypass older loads, so no two unprotected loads are ever
	// concurrently in flight).
	ShadowSpectreTSO
	// ShadowFuturistic: an instruction is safe only when every older
	// instruction has completed (the paper's "Futuristic model"; the
	// head-of-ROB unprotection rule of InvisiSpec-Futuristic, SafeSpec
	// wait-for-commit, Conditional Speculation and MuonTrap).
	ShadowFuturistic
)

// String implements fmt.Stringer.
func (m ShadowModel) String() string {
	switch m {
	case ShadowSpectre:
		return "spectre"
	case ShadowSpectreTSO:
		return "spectre-tso"
	case ShadowFuturistic:
		return "futuristic"
	default:
		return fmt.Sprintf("shadow(%d)", int(m))
	}
}

// LoadAction is a policy's decision for a speculative load about to access
// the data cache.
type LoadAction int

// Load actions.
const (
	// ActVisible lets the load access and update the caches normally (the
	// unsafe baseline).
	ActVisible LoadAction = iota
	// ActInvisible lets the load obtain data without changing any cache
	// state. The load may later require an expose (see ExposeOnSafe) or a
	// deferred replacement touch (TouchOnSafe).
	ActInvisible
	// ActDelay parks the load; it re-issues visibly once it becomes safe
	// (Delay-on-Miss's miss handling).
	ActDelay
)

// String implements fmt.Stringer.
func (a LoadAction) String() string {
	switch a {
	case ActVisible:
		return "visible"
	case ActInvisible:
		return "invisible"
	case ActDelay:
		return "delay"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// IFetchMode governs speculative instruction fetch.
type IFetchMode int

// Instruction-fetch modes.
const (
	// IFetchVisible: speculative fetches fill the I-cache normally
	// (InvisiSpec and Delay-on-Miss leave the I-cache unprotected, §3.2.2).
	IFetchVisible IFetchMode = iota
	// IFetchInvisible: in-shadow fetches read without filling (SafeSpec
	// shadow structures, MuonTrap instruction filter).
	IFetchInvisible
	// IFetchDelay: in-shadow fetch misses stall the frontend until the
	// shadow clears (Conditional Speculation, the fence defenses).
	IFetchDelay
)

// String implements fmt.Stringer.
func (m IFetchMode) String() string {
	switch m {
	case IFetchVisible:
		return "visible"
	case IFetchInvisible:
		return "invisible"
	case IFetchDelay:
		return "delay"
	default:
		return fmt.Sprintf("ifetch(%d)", int(m))
	}
}

// LoadCtx carries what a policy may inspect when deciding a load.
type LoadCtx struct {
	// Core is the issuing core's id.
	Core int
	// Addr is the load's effective address.
	Addr int64
	// Cycle is the current cycle.
	Cycle int64
	// L1Hit reports whether the line is in the core's L1D right now.
	L1Hit bool
}

// SpecPolicy is an invisible-speculation scheme or defense. One instance is
// attached per core (stateful policies keep per-core state).
//
// Purity contract: CanIssue and DecideLoad must be pure functions of their
// arguments (plus policy construction parameters) — no hidden state, no
// randomness, no dependence on call order or call count. The core relies on
// this: issue memoizes each entry's readiness verdict (which embeds
// CanIssue's answer) for the rest of the cycle, so a CanIssue that answered
// differently on a repeat call would silently desynchronize ports. Policies
// that do keep state (e.g. MuonTrap's filter cache) mutate it only through
// the explicit notification hooks (FilterPolicy, UndoPolicy), which the
// core invokes outside the memoized window.
//
// The policypurity analyzer (internal/lint, run as cmd/speclint in CI)
// enforces the write half of this contract statically: any assignment to
// receiver state inside CanIssue or DecideLoad on a SpecPolicy
// implementation fails the lint gate, with stats accumulation into
// *IssueGateStalls* fields as the one sanctioned exception.
type SpecPolicy interface {
	// Name identifies the scheme in reports.
	Name() string
	// Shadow returns the scheme's speculative-shadow model.
	Shadow() ShadowModel
	// DecideLoad is consulted for a load that is NOT safe under Shadow().
	DecideLoad(ctx LoadCtx) LoadAction
	// ExposeOnSafe reports whether invisibly-completed loads must perform a
	// visible cache access once safe (InvisiSpec validation/expose, SafeSpec
	// commit, MuonTrap L1 install).
	ExposeOnSafe() bool
	// TouchOnSafe reports whether invisible L1 hits apply their deferred
	// replacement update once safe (Delay-on-Miss).
	TouchOnSafe() bool
	// IFetch returns the speculative instruction-fetch mode.
	IFetch() IFetchMode
	// CanIssue gates issue: it receives whether the instruction is safe
	// under Shadow() and returns whether it may issue now. The §5.2 fence
	// defenses return safe; everything else returns true.
	CanIssue(safe bool) bool
	// StallFetchInShadow, when true, stops the frontend from fetching past
	// any unresolved squash source (the "ideal" fence variant used to
	// establish the §5.1 non-interference property; it never mispredicts
	// because it never predicts).
	StallFetchInShadow() bool
}

// UndoPolicy is implemented by CleanupSpec-style schemes: speculative loads
// execute visibly, but cache fills caused by squashed loads are undone
// (invalidated) when the squash happens.
type UndoPolicy interface {
	// UndoSpeculativeFills enables fill-undo at squash.
	UndoSpeculativeFills() bool
}

// FilterPolicy is implemented by schemes with a private speculative buffer
// (MuonTrap's filter cache): the core consults the filter before the L1 and
// notifies the policy about invisible fills and squashes.
type FilterPolicy interface {
	// FilterLookup returns the extra latency and true when the filter holds
	// the line.
	FilterLookup(addr int64) (lat int64, hit bool)
	// OnInvisibleFill records an invisibly-fetched line into the filter.
	OnInvisibleFill(addr int64)
	// OnSquash flushes speculative filter state.
	OnSquash()
}

// ResettablePolicy is implemented by stateful policies whose internal
// structures can be restored to their just-constructed state. Batch
// harnesses memoize policy instances across trials and call ResetPolicy
// before each reuse, so a recycled policy behaves bit-identically to a
// fresh build.
type ResettablePolicy interface {
	ResetPolicy()
}

// Unprotected is the baseline machine: every load is visible, speculative
// fetch fills the I-cache, nothing is gated. It is defined here (rather
// than in internal/schemes) because it is the hardware default the other
// policies modify.
type Unprotected struct{}

// Name implements SpecPolicy.
func (Unprotected) Name() string { return "unsafe" }

// Shadow implements SpecPolicy.
func (Unprotected) Shadow() ShadowModel { return ShadowSpectre }

// DecideLoad implements SpecPolicy.
func (Unprotected) DecideLoad(LoadCtx) LoadAction { return ActVisible }

// ExposeOnSafe implements SpecPolicy.
func (Unprotected) ExposeOnSafe() bool { return false }

// TouchOnSafe implements SpecPolicy.
func (Unprotected) TouchOnSafe() bool { return false }

// IFetch implements SpecPolicy.
func (Unprotected) IFetch() IFetchMode { return IFetchVisible }

// CanIssue implements SpecPolicy.
func (Unprotected) CanIssue(bool) bool { return true }

// StallFetchInShadow implements SpecPolicy.
func (Unprotected) StallFetchInShadow() bool { return false }
