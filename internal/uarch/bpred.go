package uarch

// BranchPred is a bimodal direction predictor: a table of 2-bit saturating
// counters indexed by PC. It is intentionally mistrainable — the paper's
// PoCs train the victim branch in one direction before triggering it in the
// other (§4.1), and the attack harness in internal/core does exactly the
// same thing against this predictor.
type BranchPred struct {
	table []uint8
	mask  int

	lookups    uint64
	mispredict uint64
}

// NewBranchPred returns a predictor with entries counters (power of two).
// Counters start at 1 (weakly not-taken).
func NewBranchPred(entries int) *BranchPred {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("uarch: predictor entries must be a positive power of two")
	}
	t := make([]uint8, entries)
	for i := range t {
		t[i] = 1
	}
	return &BranchPred{table: t, mask: entries - 1}
}

func (b *BranchPred) idx(pc int) int { return pc & b.mask }

// Predict returns the predicted direction for the branch at pc.
func (b *BranchPred) Predict(pc int) bool {
	b.lookups++
	return b.table[b.idx(pc)] >= 2
}

// Update trains the counter at pc with the resolved direction and records
// whether the earlier prediction was wrong.
func (b *BranchPred) Update(pc int, taken, wasMispredicted bool) {
	i := b.idx(pc)
	if taken {
		if b.table[i] < 3 {
			b.table[i]++
		}
	} else if b.table[i] > 0 {
		b.table[i]--
	}
	if wasMispredicted {
		b.mispredict++
	}
}

// Train repeatedly pushes the counter for pc toward the given direction —
// the harness-visible analog of the PoCs' mistraining loops.
func (b *BranchPred) Train(pc int, taken bool, times int) {
	for i := 0; i < times; i++ {
		b.Update(pc, taken, false)
	}
}

// Reset returns all counters to weakly not-taken.
func (b *BranchPred) Reset() {
	for i := range b.table {
		b.table[i] = 1
	}
}

// ResetStats zeroes the lookup/misprediction counters; Reset deliberately
// leaves them alone because harnesses reset counters between measured
// phases without wanting to lose the tallies.
func (b *BranchPred) ResetStats() { b.lookups, b.mispredict = 0, 0 }

// Stats returns (lookups, mispredictions).
func (b *BranchPred) Stats() (uint64, uint64) { return b.lookups, b.mispredict }
