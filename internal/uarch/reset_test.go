package uarch

import (
	"testing"

	"specinterference/internal/asm"
	"specinterference/internal/isa"
	"specinterference/internal/mem"
)

// resetProbeSrc exercises the structures System.Reset must restore:
// trained and mispredicted branches, cache-missing loads, a store, the
// non-pipelined sqrt unit and a multi-iteration loop.
const resetProbeSrc = `
    movi r1, 4096
    movi r2, 77
    store r2, 0(r1)
    movi r3, 0
    movi r4, 12
loop:
    load r5, 0(r1)
    mul  r6, r5, r4
    sqrt r7, r6
    addi r1, r1, 320      ; stride past the line: every load misses DRAM
    addi r3, r3, 1
    blt  r3, r4, loop
    halt`

// resetDirtySrc is a different program used to perturb a machine before
// resetting it, so the reset has real state to erase.
const resetDirtySrc = `
    movi r1, 8192
    movi r2, 5
    store r2, 0(r1)
    load r3, 64(r1)
    load r4, 128(r1)
    sqrt r5, r2
    halt`

// runSnapshot is the observable outcome of one run, for fresh-vs-reset
// comparison.
type runSnapshot struct {
	cycles  int64
	stats   CoreStats
	regs    [4]int64
	memWord int64
	logLen  int
}

func snapshotRun(t *testing.T, s *System, p *isa.Program) runSnapshot {
	t.Helper()
	warmCode(s, 0, p)
	if err := s.LoadProgram(0, p, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(200_000); err != nil {
		t.Fatal(err)
	}
	c := s.Core(0)
	return runSnapshot{
		cycles: s.Cycle(),
		stats:  c.Stats(),
		regs: [4]int64{
			c.Reg(isa.R3), c.Reg(isa.R5), c.Reg(isa.R6), c.Reg(isa.R7),
		},
		memWord: s.Memory().Read64(4096),
		logLen:  len(s.Hierarchy().Log()),
	}
}

// TestResetMatchesFreshSystem pins the System.Reset contract: a machine
// that ran arbitrary work and was then reset produces the exact run a
// fresh NewSystem produces, including timing, stats and the visible log.
func TestResetMatchesFreshSystem(t *testing.T) {
	cfg := testConfig(1)
	cfg.Cache.MemJitter = 9 // make the hierarchy RNG observable
	p := asm.MustAssemble(resetProbeSrc)

	fresh := snapshotRun(t, MustNewSystem(cfg, mem.New()), p)

	reused := MustNewSystem(cfg, mem.New())
	snapshotRun(t, reused, asm.MustAssemble(resetDirtySrc))
	reused.Reset(cfg.Cache.Seed)
	if got := snapshotRun(t, reused, p); got != fresh {
		t.Errorf("reset run %+v differs from fresh run %+v", got, fresh)
	}

	// Reset is idempotent under repetition: every further cycle of
	// dirty-work-then-reset replays the identical run.
	for i := 0; i < 2; i++ {
		reused.Reset(cfg.Cache.Seed)
		if got := snapshotRun(t, reused, p); got != fresh {
			t.Errorf("reset cycle %d: run %+v differs from fresh %+v", i, got, fresh)
		}
	}
}

// TestResetAdoptsNewSeed pins that Reset(seed) is equivalent to building a
// fresh machine with that seed, not just to the machine's original seed.
func TestResetAdoptsNewSeed(t *testing.T) {
	cfg := testConfig(1)
	cfg.Cache.MemJitter = 9
	p := asm.MustAssemble(resetProbeSrc)

	cfg7 := cfg
	cfg7.Cache.Seed = 7
	fresh7 := snapshotRun(t, MustNewSystem(cfg7, mem.New()), p)

	reused := MustNewSystem(cfg, mem.New()) // built at seed 1
	_ = snapshotRun(t, reused, p)
	reused.Reset(7)
	got := snapshotRun(t, reused, p)
	if got != fresh7 {
		t.Errorf("reset-to-seed-7 run %+v differs from fresh seed-7 run %+v", got, fresh7)
	}

	// Sanity: the two seeds genuinely diverge under jitter, so the
	// equality above is not vacuous.
	fresh1 := snapshotRun(t, MustNewSystem(cfg, mem.New()), p)
	if fresh1 == fresh7 {
		t.Fatalf("seed 1 and seed 7 runs are identical; jitter probe is broken")
	}
}
