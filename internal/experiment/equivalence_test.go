// The equivalence sweep lives in the external test package so it can
// exercise the remote backend too: internal/experiment/remote imports
// internal/experiment, so an in-package test file could not import it
// back without a cycle.
package experiment_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"specinterference/internal/experiment"
	"specinterference/internal/experiment/remote"
	"specinterference/internal/results"
)

// backendsUnderTest is the backend-configuration matrix the equivalence
// sweep runs: goroutine workers, re-exec'd subprocess workers at several
// process counts and chunk sizes, and the remote HTTP backend at 1/2/3
// workers × varying lease chunk sizes. The determinism contract says
// every entry produces the same canonical signature.
func backendsUnderTest() []experiment.Backend {
	return []experiment.Backend{
		experiment.InProcess{Workers: 1},
		experiment.InProcess{Workers: 3},
		experiment.Subprocess{Procs: 1},
		experiment.Subprocess{Procs: 2, Chunk: 1},
		experiment.Subprocess{Procs: 3, Workers: 2, Chunk: 3},
		remote.Remote{Procs: 1, Chunk: 2},
		remote.Remote{Procs: 2, Chunk: 1},
		remote.Remote{Procs: 3, Workers: 2, Chunk: 4, Lease: 5 * time.Second},
	}
}

// TestBackendEquivalence runs all four experiments at the committed
// baseline parameters on every backend configuration and requires the
// canonical signatures to be byte-identical — to each other, to the
// legacy direct path (results.Regenerate), and to the committed PR 2
// baseline records. This is the engine's core guarantee: the backend is
// purely a wall-clock knob, whether the shards ran on goroutines, local
// worker processes, or leased chunks over HTTP.
func TestBackendEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes and full small-trial sweeps")
	}
	for _, exp := range results.Experiments() {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			params, err := results.BaselineParams(exp)
			if err != nil {
				t.Fatal(err)
			}
			committed := committedBaselineHash(t, exp)

			legacy, err := results.Regenerate(context.Background(), exp, params, 2)
			if err != nil {
				t.Fatalf("legacy regenerate: %v", err)
			}
			if legacy.Hash != committed {
				t.Fatalf("legacy path hash %.12s != committed baseline %.12s", legacy.Hash, committed)
			}

			spec, err := experiment.Lookup(exp)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range backendsUnderTest() {
				rec, err := experiment.Run(context.Background(), spec, params, quiet(t, b), nil)
				if err != nil {
					t.Fatalf("%s %+v: %v", b.Name(), b, err)
				}
				if err := rec.Validate(); err != nil {
					t.Errorf("%s %+v: %v", b.Name(), b, err)
				}
				if rec.Hash != committed {
					t.Errorf("%s %+v: hash %.12s != committed baseline %.12s",
						b.Name(), b, rec.Hash, committed)
				}
			}
		})
	}
}

// quiet routes a backend's stderr chatter (coordinator notices, worker
// banners) into the test log instead of the test runner's stderr.
func quiet(t *testing.T, b experiment.Backend) experiment.Backend {
	switch b := b.(type) {
	case remote.Remote:
		b.Stderr = testWriter{t}
		return b
	case experiment.Subprocess:
		b.Stderr = testWriter{t}
		return b
	}
	return b
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// committedBaselineHash loads the PR 2 baseline record's signature.
func committedBaselineHash(t *testing.T, exp string) string {
	t.Helper()
	path := filepath.Join("..", "results", "testdata", "baseline", exp+".jsonl")
	recs, err := results.ReadFile(path)
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	if len(recs) == 0 {
		t.Fatalf("committed baseline %s is empty", path)
	}
	return recs[len(recs)-1].Hash
}

// TestSubprocessPayloadEquality goes beyond hashes for one experiment:
// the full canonical JSON must match across all three backends, catching
// any hash-collision paranoia and making diffs readable on failure.
func TestSubprocessPayloadEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	spec, err := experiment.Lookup("figure11")
	if err != nil {
		t.Fatal(err)
	}
	p := results.Params{PoCs: []string{"dcache", "icache"}, Bits: 3, Reps: []int{1, 3}, Seed: 9}
	in, err := experiment.Run(context.Background(), spec, p, experiment.InProcess{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inJSON, err := in.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []experiment.Backend{
		experiment.Subprocess{Procs: 3},
		remote.Remote{Procs: 2, Chunk: 3},
	} {
		rec, err := experiment.Run(context.Background(), spec, p, quiet(t, b), nil)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		recJSON, err := rec.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(inJSON) != string(recJSON) {
			t.Errorf("canonical JSON diverged across backends:\n  inprocess: %s\n  %s: %s", inJSON, b.Name(), recJSON)
		}
	}
}
