package experiment

import (
	"context"
	"path/filepath"
	"testing"

	"specinterference/internal/results"
)

// backendsUnderTest is the worker/process-count matrix the equivalence
// sweep runs: the determinism contract says every entry produces the
// same canonical signature.
func backendsUnderTest() []Backend {
	return []Backend{
		InProcess{Workers: 1},
		InProcess{Workers: 3},
		Subprocess{Procs: 1},
		Subprocess{Procs: 2},
		Subprocess{Procs: 3, Workers: 2},
	}
}

// TestBackendEquivalence runs all four experiments at the committed
// baseline parameters on every backend configuration and requires the
// canonical signatures to be byte-identical — to each other, to the
// legacy direct path (results.Regenerate), and to the committed PR 2
// baseline records. This is the engine's core guarantee: the backend is
// purely a wall-clock knob.
func TestBackendEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes and full small-trial sweeps")
	}
	for _, exp := range results.Experiments() {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			params, err := results.BaselineParams(exp)
			if err != nil {
				t.Fatal(err)
			}
			committed := committedBaselineHash(t, exp)

			legacy, err := results.Regenerate(context.Background(), exp, params, 2)
			if err != nil {
				t.Fatalf("legacy regenerate: %v", err)
			}
			if legacy.Hash != committed {
				t.Fatalf("legacy path hash %.12s != committed baseline %.12s", legacy.Hash, committed)
			}

			spec, err := Lookup(exp)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range backendsUnderTest() {
				rec, err := Run(context.Background(), spec, params, b, nil)
				if err != nil {
					t.Fatalf("%s %+v: %v", b.Name(), b, err)
				}
				if err := rec.Validate(); err != nil {
					t.Errorf("%s %+v: %v", b.Name(), b, err)
				}
				if rec.Hash != committed {
					t.Errorf("%s %+v: hash %.12s != committed baseline %.12s",
						b.Name(), b, rec.Hash, committed)
				}
			}
		})
	}
}

// committedBaselineHash loads the PR 2 baseline record's signature.
func committedBaselineHash(t *testing.T, exp string) string {
	t.Helper()
	path := filepath.Join("..", "results", "testdata", "baseline", exp+".jsonl")
	recs, err := results.ReadFile(path)
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	if len(recs) == 0 {
		t.Fatalf("committed baseline %s is empty", path)
	}
	return recs[len(recs)-1].Hash
}

// TestSubprocessPayloadEquality goes beyond hashes for one experiment:
// the full canonical JSON must match across backends, catching any
// hash-collision paranoia and making diffs readable on failure.
func TestSubprocessPayloadEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	spec, err := Lookup("figure11")
	if err != nil {
		t.Fatal(err)
	}
	p := results.Params{PoCs: []string{"dcache", "icache"}, Bits: 3, Reps: []int{1, 3}, Seed: 9}
	in, err := Run(context.Background(), spec, p, InProcess{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Run(context.Background(), spec, p, Subprocess{Procs: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inJSON, err := in.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	subJSON, err := sub.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(inJSON) != string(subJSON) {
		t.Errorf("canonical JSON diverged across backends:\n  inprocess:  %s\n  subprocess: %s", inJSON, subJSON)
	}
}
