// Package faulttest hardens the remote backend with deliberately
// misbehaving workers. The Shim speaks the coordinator's wire protocol
// by hand — no help from the well-behaved remote.RunWorker path — so
// tests can crash mid-chunk, stall past a lease, stream malformed,
// duplicate, out-of-range or corrupted result lines, and then assert
// two things: the coordinator rejected or absorbed the misbehavior, and
// a healthy worker still drove the run to the exact committed baseline
// signature. Crash tolerance that changes the answer is not tolerance.
package faulttest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"specinterference/internal/experiment"
	"specinterference/internal/experiment/remote"
	"specinterference/internal/results"
)

// Shim is a hand-rolled remote worker with no conscience: it exposes the
// raw protocol moves (lease, renew, post arbitrary bytes) and composed
// misbehaviors built from them. It never renews a lease unless told to —
// a Shim that stops calling is indistinguishable from a crashed machine,
// which is the point.
type Shim struct {
	// Base is the coordinator's base URL (no trailing slash).
	Base string
	// Run is the run token echoed on every request. Sync fills it from
	// the coordinator's job; leave it stale (or forge it) to play a
	// worker from another run.
	Run string
	// Client overrides the HTTP client (nil = http.DefaultClient).
	Client *http.Client
}

func (s *Shim) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

// Job fetches the coordinator's job description.
func (s *Shim) Job() (remote.Job, error) {
	resp, err := s.client().Get(s.Base + "/job")
	if err != nil {
		return remote.Job{}, err
	}
	defer resp.Body.Close()
	var job remote.Job
	if resp.StatusCode != http.StatusOK {
		return job, fmt.Errorf("job: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&job)
	return job, err
}

// Sync fetches the job and adopts its run token — what a well-behaved
// worker does before its first lease.
func (s *Shim) Sync() (remote.Job, error) {
	job, err := s.Job()
	if err == nil {
		s.Run = job.Run
	}
	return job, err
}

// Lease claims the next chunk under the given worker identity.
func (s *Shim) Lease(worker string) (remote.Lease, error) {
	body, _ := json.Marshal(remote.LeaseRequest{Worker: worker, Run: s.Run})
	resp, err := s.client().Post(s.Base+"/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		return remote.Lease{}, err
	}
	defer resp.Body.Close()
	var l remote.Lease
	if resp.StatusCode != http.StatusOK {
		return l, fmt.Errorf("lease: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&l)
	return l, err
}

// Stats fetches the coordinator's GET /stats snapshot — run progress,
// the speculative-backup counters and per-worker throughput estimates.
func (s *Shim) Stats() (remote.Stats, error) {
	resp, err := s.client().Get(s.Base + "/stats")
	if err != nil {
		return remote.Stats{}, err
	}
	defer resp.Body.Close()
	var st remote.Stats
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// Renew renews a lease and returns the HTTP status (200 alive, 410 gone).
func (s *Shim) Renew(leaseID string) (int, error) {
	body, _ := json.Marshal(remote.RenewRequest{ID: leaseID, Run: s.Run})
	resp, err := s.client().Post(s.Base+"/renew", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// PostRaw streams arbitrary bytes to /results, returning the HTTP status
// and the coordinator's acknowledgment (zero-valued when the response
// body isn't a ResultAck).
func (s *Shim) PostRaw(body []byte) (int, remote.ResultAck, error) {
	resp, err := s.client().Post(s.Base+"/results", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, remote.ResultAck{}, err
	}
	defer resp.Body.Close()
	var ack remote.ResultAck
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, ack, err
	}
	json.Unmarshal(raw, &ack)
	return resp.StatusCode, ack, nil
}

// PostLine posts one well-formed result line under a lease.
func (s *Shim) PostLine(leaseID string, sl experiment.ShardLine) (int, remote.ResultAck, error) {
	raw, err := json.Marshal(remote.ResultLine{Run: s.Run, Lease: leaseID, ShardLine: sl})
	if err != nil {
		return 0, remote.ResultAck{}, err
	}
	return s.PostRaw(append(raw, '\n'))
}

// PostErrorLine posts a shard-failure line under a lease — the
// straggler poison move: a worker whose lease was re-issued reporting
// a failure for work someone else already finished.
func (s *Shim) PostErrorLine(leaseID string, shard int, msg string) (int, remote.ResultAck, error) {
	return s.PostLine(leaseID, experiment.ShardLine{Shard: shard, Err: msg})
}

// CorrectLine computes the honest result line for one shard — what a
// healthy worker would stream. Misbehaviors are built by withholding,
// duplicating or mangling these.
func (s *Shim) CorrectLine(spec *experiment.Spec, state any, p results.Params, shard int) (experiment.ShardLine, error) {
	v, err := spec.Run(context.Background(), state, p, shard)
	if err != nil {
		return experiment.ShardLine{}, err
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return experiment.ShardLine{}, err
	}
	return experiment.ShardLine{Shard: shard, Value: raw}, nil
}

// CrashMidChunk leases a chunk, streams correct results for its first
// `complete` shards, then vanishes — no more posts, no renewals. The
// coordinator must re-issue the rest of the chunk after the lease TTL
// and keep the shards the shim did finish. Returns the abandoned lease.
func (s *Shim) CrashMidChunk(spec *experiment.Spec, state any, p results.Params, complete int) (remote.Lease, error) {
	l, err := s.Lease("crash-shim")
	if err != nil {
		return l, err
	}
	if l.Wait || l.Done {
		return l, fmt.Errorf("crash shim got no chunk: %+v", l)
	}
	for shard := l.Start; shard < l.End && shard < l.Start+complete; shard++ {
		sl, err := s.CorrectLine(spec, state, p, shard)
		if err != nil {
			return l, err
		}
		if status, ack, err := s.PostLine(l.ID, sl); err != nil || status != http.StatusOK {
			return l, fmt.Errorf("crash shim post shard %d: status %d ack %+v err %v", shard, status, ack, err)
		}
	}
	return l, nil // ...and the process is gone.
}

// StallPastLease leases a chunk and does nothing at all with it: no
// results, no renewal — the slow-machine failure mode. Returns the
// doomed lease.
func (s *Shim) StallPastLease() (remote.Lease, error) {
	l, err := s.Lease("stall-shim")
	if err != nil {
		return l, err
	}
	if l.Wait || l.Done {
		return l, fmt.Errorf("stall shim got no chunk: %+v", l)
	}
	return l, nil
}
