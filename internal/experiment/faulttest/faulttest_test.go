package faulttest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"specinterference/internal/experiment"
	"specinterference/internal/experiment/remote"
	"specinterference/internal/results"
)

// harness is one fault scenario's world: a figure7 coordinator at the
// committed baseline parameters with a deliberately short lease TTL, an
// httptest server in front of it, and a shim pointed at the server.
type harness struct {
	spec      *experiment.Spec
	state     any
	params    results.Params
	n         int
	coord     *remote.Coordinator
	shim      *Shim
	url       string
	committed string
}

// faultLease is the TTL under test: short enough that expiry-driven
// re-leasing happens within test budget, long enough that the healthy
// worker (renewing at TTL/3) never loses a lease it is serving.
const faultLease = 400 * time.Millisecond

func newHarness(t *testing.T, chunk int) *harness {
	t.Helper()
	return newHarnessLease(t, chunk, faultLease)
}

// newHarnessLease is newHarness with an explicit lease TTL — the backup
// scenarios need a TTL far longer than the test so that speculative
// execution, not lease expiry, is what rescues a stalled span.
func newHarnessLease(t *testing.T, chunk int, lease time.Duration) *harness {
	t.Helper()
	spec, err := experiment.Lookup(results.ExpFigure7)
	if err != nil {
		t.Fatal(err)
	}
	params, err := results.BaselineParams(results.ExpFigure7)
	if err != nil {
		t.Fatal(err)
	}
	n, err := spec.Plan(params)
	if err != nil {
		t.Fatal(err)
	}
	state, err := spec.PrepareState(params)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := remote.NewCoordinator(spec, params, n, remote.Config{Chunk: chunk, Lease: lease})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	shim := &Shim{Base: srv.URL}
	if _, err := shim.Sync(); err != nil {
		t.Fatal(err)
	}
	return &harness{
		spec: spec, state: state, params: params, n: n,
		coord: coord, url: srv.URL,
		shim:      shim,
		committed: committedBaselineHash(t, results.ExpFigure7),
	}
}

// drainAndVerify runs one healthy worker until the coordinator reports
// done, then asserts the aggregated record's canonical signature equals
// the committed baseline — the "crash tolerance never changes the
// answer" acceptance check.
func (h *harness) drainAndVerify(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := remote.RunWorker(ctx, h.url, 0, io.Discard); err != nil {
		t.Fatalf("healthy worker: %v", err)
	}
	select {
	case <-h.coord.Finished():
	default:
		t.Fatal("healthy worker returned but the run is not finished")
	}
	shards, err := h.coord.Values()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := h.spec.Aggregate(h.params, shards)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Hash != h.committed {
		t.Errorf("record signature %.12s != committed baseline %.12s — the fault leaked into the results", rec.Hash, h.committed)
	}
}

// TestFaultInjection is the table of misbehaving-worker scenarios: each
// fault fires first, then a healthy worker drains the run, and the final
// record must be byte-identical to the committed baseline.
func TestFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full figure7 baseline sweeps with deliberate lease expiries")
	}
	cases := []struct {
		name  string
		chunk int
		fault func(t *testing.T, h *harness)
	}{
		{
			// A worker that dies halfway through its chunk: the two shards
			// it finished stay finished, the rest re-lease after the TTL.
			name: "crash-mid-chunk", chunk: 4,
			fault: func(t *testing.T, h *harness) {
				l, err := h.shim.CrashMidChunk(h.spec, h.state, h.params, 2)
				if err != nil {
					t.Fatal(err)
				}
				if l.End-l.Start != 4 {
					t.Fatalf("shim lease [%d,%d), want a 4-shard chunk", l.Start, l.End)
				}
			},
		},
		{
			// A worker that leases and then hangs: its whole chunk
			// re-leases; the stalled lease can never renew again.
			name: "stall-past-lease", chunk: 5,
			fault: func(t *testing.T, h *harness) {
				l, err := h.shim.StallPastLease()
				if err != nil {
					t.Fatal(err)
				}
				time.Sleep(faultLease + 50*time.Millisecond)
				status, err := h.shim.Renew(l.ID)
				if err != nil {
					t.Fatal(err)
				}
				if status != http.StatusGone {
					t.Errorf("renew after stall: status %d, want %d (lease must be reclaimed)", status, http.StatusGone)
				}
			},
		},
		{
			// Garbage on the wire is rejected per line and never touches
			// shard state.
			name: "malformed-lines", chunk: 0,
			fault: func(t *testing.T, h *harness) {
				for _, body := range []string{
					"{definitely not json\n",
					"\x00\xff\xfe\n",
					`{"lease":`,
				} {
					status, _, err := h.shim.PostRaw([]byte(body))
					if err != nil {
						t.Fatal(err)
					}
					if status != http.StatusBadRequest {
						t.Errorf("malformed body %q: status %d, want 400", body, status)
					}
				}
			},
		},
		{
			// Duplicate correct results are acknowledged idempotently —
			// exactly what a re-issued lease's straggler produces.
			name: "duplicate-results", chunk: 4,
			fault: func(t *testing.T, h *harness) {
				l, err := h.shim.Lease("dup-shim")
				if err != nil {
					t.Fatal(err)
				}
				sl, err := h.shim.CorrectLine(h.spec, h.state, h.params, l.Start)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 3; i++ {
					status, ack, err := h.shim.PostLine(l.ID, sl)
					if err != nil {
						t.Fatal(err)
					}
					if status != http.StatusOK || ack.Accepted != 1 {
						t.Errorf("duplicate post %d: status %d ack %+v, want idempotent accept", i, status, ack)
					}
				}
				// ...then the shim crashes; the rest of its chunk re-leases.
			},
		},
		{
			// Shard indexes outside [0, n) are rejected outright.
			name: "out-of-range-results", chunk: 0,
			fault: func(t *testing.T, h *harness) {
				l, err := h.shim.Lease("oob-shim")
				if err != nil {
					t.Fatal(err)
				}
				for _, shard := range []int{-1, h.n, 1 << 20} {
					line, _ := json.Marshal(remote.ResultLine{Run: h.shim.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: shard, Value: json.RawMessage("1.5")}})
					status, _, err := h.shim.PostRaw(append(line, '\n'))
					if err != nil {
						t.Fatal(err)
					}
					if status != http.StatusBadRequest {
						t.Errorf("out-of-range shard %d: status %d, want 400", shard, status)
					}
				}
			},
		},
		{
			// A lease id is not a license to post arbitrary in-range
			// shards: results are scoped to the span their lease granted,
			// so a misbehaving worker cannot publish values for work it
			// was never handed.
			name: "out-of-span-results", chunk: 4,
			fault: func(t *testing.T, h *harness) {
				l, err := h.shim.Lease("span-shim")
				if err != nil {
					t.Fatal(err)
				}
				if l.End-l.Start != 4 {
					t.Fatalf("shim lease [%d,%d), want a 4-shard chunk", l.Start, l.End)
				}
				// Forge results for shards outside the span — with the
				// wrong bytes, exactly what unscoped acceptance would have
				// published as those shards' values.
				wrong, err := h.shim.CorrectLine(h.spec, h.state, h.params, l.Start)
				if err != nil {
					t.Fatal(err)
				}
				for _, shard := range []int{l.End, h.n - 1} {
					status, _, err := h.shim.PostLine(l.ID, experiment.ShardLine{Shard: shard, Value: wrong.Value})
					if err != nil {
						t.Fatal(err)
					}
					if status != http.StatusBadRequest {
						t.Errorf("out-of-span shard %d: status %d, want 400", shard, status)
					}
				}
			},
		},
		{
			// The stale-straggler poison: a stalled worker's chunk is
			// re-issued, another worker completes a shard from it, and
			// then the straggler reports a *failure* for that shard. The
			// error is moot — the accepted bytes already satisfied the
			// contract — and must not fail the run.
			name: "stale-error-for-done-shard", chunk: 1 << 20, // one lease spans every shard
			fault: func(t *testing.T, h *harness) {
				stalled, err := h.shim.StallPastLease()
				if err != nil {
					t.Fatal(err)
				}
				if stalled.Start != 0 || stalled.End != h.n {
					t.Fatalf("stalled lease [%d,%d), want [0,%d)", stalled.Start, stalled.End, h.n)
				}
				time.Sleep(faultLease + 50*time.Millisecond)
				thief := &Shim{Base: h.url}
				if _, err := thief.Sync(); err != nil {
					t.Fatal(err)
				}
				reissued, err := thief.Lease("thief")
				if err != nil {
					t.Fatal(err)
				}
				if reissued.Wait || reissued.Done || reissued.Start != 0 {
					t.Fatalf("re-issued lease = %+v, want a grant from shard 0", reissued)
				}
				sl, err := thief.CorrectLine(h.spec, h.state, h.params, 0)
				if err != nil {
					t.Fatal(err)
				}
				if status, _, err := thief.PostLine(reissued.ID, sl); err != nil || status != http.StatusOK {
					t.Fatalf("thief post: status %d err %v", status, err)
				}
				// The straggler wakes up and reports shard 0 "failed".
				status, _, err := h.shim.PostErrorLine(stalled.ID, 0, "stale straggler boom")
				if err != nil {
					t.Fatal(err)
				}
				if status != http.StatusOK {
					t.Errorf("stale error line: status %d, want 200 (ignored)", status)
				}
				select {
				case <-h.coord.Finished():
					t.Fatal("stale error line terminated the run")
				default:
				}
			},
		},
		{
			// Payloads that don't decode as the spec's shard type are
			// corrupt: rejected, and the shard is served again later.
			name: "corrupted-payloads", chunk: 4,
			fault: func(t *testing.T, h *harness) {
				l, err := h.shim.Lease("corrupt-shim")
				if err != nil {
					t.Fatal(err)
				}
				for _, payload := range []string{`"banana"`, `{"not":"a float"}`, `[1,2,3]`} {
					status, _, err := h.shim.PostLine(l.ID, experiment.ShardLine{Shard: l.Start, Value: json.RawMessage(payload)})
					if err != nil {
						t.Fatal(err)
					}
					if status != http.StatusBadRequest {
						t.Errorf("corrupt payload %s: status %d, want 400", payload, status)
					}
				}
				// The shim gives up; its chunk must re-lease intact.
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(t, tc.chunk)
			tc.fault(t, h)
			h.drainAndVerify(t)
		})
	}
}

// mustPost streams the honest result line for one shard under a lease
// and requires an accept — shared plumbing for the backup scenarios,
// where primaries and backups race each other with correct bytes.
func (h *harness) mustPost(t *testing.T, s *Shim, leaseID string, shard int) {
	t.Helper()
	sl, err := s.CorrectLine(h.spec, h.state, h.params, shard)
	if err != nil {
		t.Fatal(err)
	}
	status, ack, err := s.PostLine(leaseID, sl)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || ack.Accepted != 1 {
		t.Fatalf("post shard %d under %s: status %d ack %+v, want accept", shard, leaseID, status, ack)
	}
}

// TestBackupExecution drives speculative backup leases over the real
// wire protocol. The lease TTL is 30s — far beyond the test — so in
// every scenario it is backup execution, never expiry-driven re-leasing,
// that determines the outcome; and in every scenario the byte-equality
// dedup keeps the final record pinned to the committed baseline.
func TestBackupExecution(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full figure7 baseline sweeps")
	}
	const backupLease = 30 * time.Second

	// A stalled primary holding every shard is overtaken: the healthy
	// worker's first poll finds the queue empty and gets a backup copy of
	// the stalled span, and the run finishes with the primary's TTL
	// nowhere near expiry.
	t.Run("stalled-primary-overtaken", func(t *testing.T) {
		h := newHarnessLease(t, 1<<20, backupLease)
		stalled, err := h.shim.StallPastLease()
		if err != nil {
			t.Fatal(err)
		}
		if stalled.Start != 0 || stalled.End != h.n {
			t.Fatalf("stalled lease [%d,%d), want [0,%d)", stalled.Start, stalled.End, h.n)
		}
		h.drainAndVerify(t)
		st, err := h.shim.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.BackupsIssued != 1 || st.BackupsWon != h.n || st.BackupsWasted != 0 {
			t.Errorf("backup counters issued/won/wasted = %d/%d/%d, want 1/%d/0",
				st.BackupsIssued, st.BackupsWon, st.BackupsWasted, h.n)
		}
	})

	// Primary and backup both land copies of the same shards: whichever
	// copy is second is acknowledged idempotently — wasted work, never an
	// error — and the record is still the baseline.
	t.Run("both-copies-land", func(t *testing.T) {
		h := newHarnessLease(t, 1<<20, backupLease)
		prim, err := h.shim.Lease("primary")
		if err != nil {
			t.Fatal(err)
		}
		h.mustPost(t, h.shim, prim.ID, 0)
		spec := &Shim{Base: h.url}
		if _, err := spec.Sync(); err != nil {
			t.Fatal(err)
		}
		bk, err := spec.Lease("speculator")
		if err != nil {
			t.Fatal(err)
		}
		if !bk.Backup || bk.Start != 1 || bk.End != h.n {
			t.Fatalf("speculator lease = %+v, want a backup of [1,%d)", bk, h.n)
		}
		// The backup lands shard 1 first; the primary's late copy is
		// acknowledged idempotently and not held against the backup.
		h.mustPost(t, spec, bk.ID, 1)
		h.mustPost(t, h.shim, prim.ID, 1)
		// The primary lands shard 2 first; the backup's late copy is
		// wasted speculation.
		h.mustPost(t, h.shim, prim.ID, 2)
		h.mustPost(t, spec, bk.ID, 2)
		// The primary now stalls for good; the backup drains the rest.
		for shard := 3; shard < h.n; shard++ {
			h.mustPost(t, spec, bk.ID, shard)
		}
		st, err := spec.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if want := h.n - 2; st.BackupsIssued != 1 || st.BackupsWon != want || st.BackupsWasted != 1 {
			t.Errorf("backup counters issued/won/wasted = %d/%d/%d, want 1/%d/1",
				st.BackupsIssued, st.BackupsWon, st.BackupsWasted, want)
		}
		h.drainAndVerify(t)
	})

	// A backup is held to the same determinism contract as everyone
	// else: a forged divergent copy of a shard the primary already
	// landed is the 409 tripwire and fails the run.
	t.Run("forged-backup-divergence", func(t *testing.T) {
		h := newHarnessLease(t, 1<<20, backupLease)
		prim, err := h.shim.Lease("primary")
		if err != nil {
			t.Fatal(err)
		}
		// The primary lands shard 1 — mid-span, so with shard 0 still
		// undone the backup's span [0,n) covers it and a forged copy is
		// an in-span duplicate, not an out-of-span 400.
		h.mustPost(t, h.shim, prim.ID, 1)
		forger := &Shim{Base: h.url}
		if _, err := forger.Sync(); err != nil {
			t.Fatal(err)
		}
		bk, err := forger.Lease("forger")
		if err != nil {
			t.Fatal(err)
		}
		if !bk.Backup || bk.Start != 0 || bk.End != h.n {
			t.Fatalf("forger lease = %+v, want a backup of [0,%d)", bk, h.n)
		}
		status, _, err := forger.PostLine(bk.ID, experiment.ShardLine{Shard: 1, Value: json.RawMessage("271828182845")})
		if err != nil {
			t.Fatal(err)
		}
		if status != http.StatusConflict {
			t.Errorf("forged backup duplicate: status %d, want %d", status, http.StatusConflict)
		}
		select {
		case <-h.coord.Finished():
		case <-time.After(5 * time.Second):
			t.Fatal("determinism violation did not stop the run")
		}
		if _, err := h.coord.Values(); err == nil || !strings.Contains(err.Error(), "determinism") {
			t.Errorf("Values() = %v, want determinism-contract failure", err)
		}
		next, err := h.shim.Lease("bystander")
		if err != nil {
			t.Fatal(err)
		}
		if !next.Done {
			t.Errorf("post-violation lease = %+v, want done", next)
		}
	})
}

// TestDeterminismViolationFailsRun is the one fault that must NOT heal:
// two different byte payloads for the same shard mean the purity
// contract broke somewhere, and silently picking one would publish wrong
// results. The run fails and every worker is sent home.
func TestDeterminismViolationFailsRun(t *testing.T) {
	h := newHarness(t, 4)
	l, err := h.shim.Lease("evil-shim")
	if err != nil {
		t.Fatal(err)
	}
	sl, err := h.shim.CorrectLine(h.spec, h.state, h.params, l.Start)
	if err != nil {
		t.Fatal(err)
	}
	if status, _, err := h.shim.PostLine(l.ID, sl); err != nil || status != http.StatusOK {
		t.Fatalf("honest post: status %d err %v", status, err)
	}
	forged := experiment.ShardLine{Shard: l.Start, Value: json.RawMessage("123456789")}
	status, _, err := h.shim.PostLine(l.ID, forged)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusConflict {
		t.Errorf("forged duplicate: status %d, want %d", status, http.StatusConflict)
	}
	select {
	case <-h.coord.Finished():
	case <-time.After(5 * time.Second):
		t.Fatal("determinism violation did not stop the run")
	}
	if _, err := h.coord.Values(); err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Errorf("Values() = %v, want determinism-contract failure", err)
	}
	// Workers polling for work are told the run is over.
	next, err := h.shim.Lease("bystander")
	if err != nil {
		t.Fatal(err)
	}
	if !next.Done {
		t.Errorf("post-violation lease = %+v, want done", next)
	}
}

// TestCrossRunLeaseCollision pins the run-token fence: lease ids are
// predictable (L1, L2, ...), so two coordinator instances for the same
// experiment — exactly what a journal-resumed restart on the same port
// produces — issue colliding ids. A worker still holding run A's token
// must get 410 from run B everywhere, never an accepted payload or a
// spurious determinism conflict.
func TestCrossRunLeaseCollision(t *testing.T) {
	a := newHarness(t, 4)
	b := newHarness(t, 4)

	lA, err := a.shim.Lease("worker-a")
	if err != nil {
		t.Fatal(err)
	}
	lB, err := b.shim.Lease("worker-b")
	if err != nil {
		t.Fatal(err)
	}
	if lA.ID != lB.ID {
		t.Fatalf("precondition broke: lease ids %q and %q no longer collide across runs", lA.ID, lB.ID)
	}
	if a.shim.Run == b.shim.Run {
		t.Fatal("two coordinator instances minted the same run token")
	}

	// The worker from run A, left pointing at run B's address.
	stale := &Shim{Base: b.url, Run: a.shim.Run}
	sl, err := a.shim.CorrectLine(a.spec, a.state, a.params, lA.Start)
	if err != nil {
		t.Fatal(err)
	}
	if status, _, err := stale.PostLine(lA.ID, sl); err != nil || status != http.StatusGone {
		t.Errorf("stale-run result: status %d err %v, want 410", status, err)
	}
	if status, err := stale.Renew(lB.ID); err != nil || status != http.StatusGone {
		t.Errorf("stale-run renew: status %d err %v, want 410", status, err)
	}
	if _, err := stale.Lease("worker-a"); err == nil {
		t.Error("stale-run lease request was granted, want 410 rejection")
	}

	// Run B is untouched by any of it and still drains to the committed
	// baseline; run A likewise.
	b.drainAndVerify(t)
	a.drainAndVerify(t)
}

// restartCoordEnv triggers the child-process coordinator role of the
// crash/restart sweep; its value is a JSON restartConfig.
const restartCoordEnv = "FAULTTEST_RESTART_COORDINATOR"

// restartConfig is the child coordinator's marching orders.
type restartConfig struct {
	Experiment string `json:"experiment"`
	Journal    string `json:"journal"`
	Procs      int    `json:"procs"`
	Chunk      int    `json:"chunk"`
}

// TestMain lets this test binary play three extra roles: a backend
// worker (subprocess/remote modes, served by the registered hooks), and
// the journaled remote coordinator the restart sweep SIGKILLs.
func TestMain(m *testing.M) {
	experiment.RunWorkerIfRequested()
	if raw := os.Getenv(restartCoordEnv); raw != "" {
		runRestartCoordinator(raw) // never returns
	}
	os.Exit(m.Run())
}

// runRestartCoordinator serves one journaled remote-backend run of the
// configured experiment at its committed baseline params and prints the
// final record signature on stdout.
func runRestartCoordinator(raw string) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "restart-coordinator:", err)
		os.Exit(1)
	}
	var cfg restartConfig
	if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
		fail(err)
	}
	params, err := results.BaselineParams(cfg.Experiment)
	if err != nil {
		fail(err)
	}
	spec, err := experiment.Lookup(cfg.Experiment)
	if err != nil {
		fail(err)
	}
	backend := remote.Remote{
		Procs: cfg.Procs, Chunk: cfg.Chunk, Journal: cfg.Journal,
		Lease: 2 * time.Second,
	}
	rec, err := experiment.Run(context.Background(), spec, params, backend, nil)
	if err != nil {
		fail(err)
	}
	fmt.Println(rec.Hash)
	os.Exit(0)
}

// journalEntries counts the intact shard entries in a journal file (the
// header excluded; a torn tail parses as nothing and counts as nothing).
func journalEntries(path string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	count, sawHeader := 0, false
	for {
		nl := bytes.IndexByte(raw, '\n')
		if nl < 0 {
			return count
		}
		line := bytes.TrimSpace(raw[:nl])
		raw = raw[nl+1:]
		switch {
		case len(line) == 0:
		case !sawHeader:
			sawHeader = true
		default:
			var sl experiment.ShardLine
			if json.Unmarshal(line, &sl) == nil {
				count++
			}
		}
	}
}

// TestCoordinatorRestartResume is the crash/restart equivalence sweep:
// a real coordinator process (this test binary in a helper role,
// spawning its own local remote workers) is SIGKILLed once roughly half
// the shards are journaled, then restarted against the same journal.
// The restart must replay exactly the journaled shards, run only the
// remainder, and produce a record whose canonical signature equals the
// committed baseline — at several worker × chunk configurations.
func TestCoordinatorRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns coordinator processes and SIGKILLs them mid-run")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		exp          string
		procs, chunk int
	}{
		{results.ExpFigure7, 1, 1},
		{results.ExpFigure7, 2, 2},
		{results.ExpTable1, 2, 0}, // adaptive chunking
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s-procs%d-chunk%d", tc.exp, tc.procs, tc.chunk), func(t *testing.T) {
			spec, err := experiment.Lookup(tc.exp)
			if err != nil {
				t.Fatal(err)
			}
			params, err := results.BaselineParams(tc.exp)
			if err != nil {
				t.Fatal(err)
			}
			n, err := spec.Plan(params)
			if err != nil {
				t.Fatal(err)
			}
			half := n / 2
			if half < 1 {
				half = 1
			}
			dir := t.TempDir()
			jpath := filepath.Join(dir, tc.exp+".jsonl")
			cfgJSON, err := json.Marshal(restartConfig{
				Experiment: tc.exp, Journal: dir, Procs: tc.procs, Chunk: tc.chunk,
			})
			if err != nil {
				t.Fatal(err)
			}
			env := append(os.Environ(), restartCoordEnv+"="+string(cfgJSON))

			var firstErr bytes.Buffer
			first := exec.Command(exe)
			first.Env = env
			first.Stderr = &firstErr
			if err := first.Start(); err != nil {
				t.Fatal(err)
			}
			exited := make(chan error, 1)
			go func() { exited <- first.Wait() }()
			deadline := time.Now().Add(2 * time.Minute)
			alreadyExited := false
			for journalEntries(jpath) < half {
				select {
				case werr := <-exited:
					// A clean too-fast finish leaves a full journal; anything
					// less is a real failure.
					if journalEntries(jpath) < half {
						t.Fatalf("first run exited (%v) before journaling %d shards\nstderr: %s", werr, half, firstErr.String())
					}
					alreadyExited = true
				case <-time.After(2 * time.Millisecond):
				}
				if alreadyExited {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("first run never journaled %d shards\nstderr: %s", half, firstErr.String())
				}
			}
			if !alreadyExited {
				first.Process.Kill() // SIGKILL: no cleanup, possibly a torn journal tail
				<-exited
			}
			replayable := journalEntries(jpath)
			if replayable < half {
				t.Fatalf("journal holds %d entries after the kill, want at least %d", replayable, half)
			}

			var out, errBuf bytes.Buffer
			second := exec.Command(exe)
			second.Env = env
			second.Stdout, second.Stderr = &out, &errBuf
			if err := second.Run(); err != nil {
				t.Fatalf("restarted run failed: %v\nstderr: %s", err, errBuf.String())
			}
			hash := strings.TrimSpace(out.String())
			if committed := committedBaselineHash(t, tc.exp); hash != committed {
				t.Errorf("restarted run signature %.12s != committed baseline %.12s", hash, committed)
			}
			// The restart replayed the journal rather than re-running it...
			m := regexp.MustCompile(`resumed: (\d+) of (\d+) shards`).FindStringSubmatch(errBuf.String())
			if m == nil {
				t.Fatalf("no journal-resume notice in restart stderr:\n%s", errBuf.String())
			}
			if replayed, _ := strconv.Atoi(m[1]); replayed != replayable {
				t.Errorf("restart replayed %d shards, journal held %d", replayed, replayable)
			}
			// ...and every shard was journaled exactly once across both runs.
			if got := journalEntries(jpath); got != n {
				t.Errorf("final journal holds %d entries, want %d", got, n)
			}
		})
	}
}

// committedBaselineHash loads the committed PR 2 baseline signature.
func committedBaselineHash(t *testing.T, exp string) string {
	t.Helper()
	path := filepath.Join("..", "..", "results", "testdata", "baseline", exp+".jsonl")
	recs, err := results.ReadFile(path)
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	if len(recs) == 0 {
		t.Fatalf("committed baseline %s is empty", path)
	}
	return recs[len(recs)-1].Hash
}
