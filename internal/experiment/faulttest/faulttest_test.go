package faulttest

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"specinterference/internal/experiment"
	"specinterference/internal/experiment/remote"
	"specinterference/internal/results"
)

// harness is one fault scenario's world: a figure7 coordinator at the
// committed baseline parameters with a deliberately short lease TTL, an
// httptest server in front of it, and a shim pointed at the server.
type harness struct {
	spec      *experiment.Spec
	state     any
	params    results.Params
	n         int
	coord     *remote.Coordinator
	shim      *Shim
	url       string
	committed string
}

// faultLease is the TTL under test: short enough that expiry-driven
// re-leasing happens within test budget, long enough that the healthy
// worker (renewing at TTL/3) never loses a lease it is serving.
const faultLease = 400 * time.Millisecond

func newHarness(t *testing.T, chunk int) *harness {
	t.Helper()
	spec, err := experiment.Lookup(results.ExpFigure7)
	if err != nil {
		t.Fatal(err)
	}
	params, err := results.BaselineParams(results.ExpFigure7)
	if err != nil {
		t.Fatal(err)
	}
	n, err := spec.Plan(params)
	if err != nil {
		t.Fatal(err)
	}
	state, err := spec.PrepareState(params)
	if err != nil {
		t.Fatal(err)
	}
	coord := remote.NewCoordinator(spec, params, n, remote.Config{Chunk: chunk, Lease: faultLease})
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	return &harness{
		spec: spec, state: state, params: params, n: n,
		coord: coord, url: srv.URL,
		shim:      &Shim{Base: srv.URL},
		committed: committedBaselineHash(t, results.ExpFigure7),
	}
}

// drainAndVerify runs one healthy worker until the coordinator reports
// done, then asserts the aggregated record's canonical signature equals
// the committed baseline — the "crash tolerance never changes the
// answer" acceptance check.
func (h *harness) drainAndVerify(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := remote.RunWorker(ctx, h.url, 0, io.Discard); err != nil {
		t.Fatalf("healthy worker: %v", err)
	}
	select {
	case <-h.coord.Finished():
	default:
		t.Fatal("healthy worker returned but the run is not finished")
	}
	shards, err := h.coord.Values()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := h.spec.Aggregate(h.params, shards)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Hash != h.committed {
		t.Errorf("record signature %.12s != committed baseline %.12s — the fault leaked into the results", rec.Hash, h.committed)
	}
}

// TestFaultInjection is the table of misbehaving-worker scenarios: each
// fault fires first, then a healthy worker drains the run, and the final
// record must be byte-identical to the committed baseline.
func TestFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full figure7 baseline sweeps with deliberate lease expiries")
	}
	cases := []struct {
		name  string
		chunk int
		fault func(t *testing.T, h *harness)
	}{
		{
			// A worker that dies halfway through its chunk: the two shards
			// it finished stay finished, the rest re-lease after the TTL.
			name: "crash-mid-chunk", chunk: 4,
			fault: func(t *testing.T, h *harness) {
				l, err := h.shim.CrashMidChunk(h.spec, h.state, h.params, 2)
				if err != nil {
					t.Fatal(err)
				}
				if l.End-l.Start != 4 {
					t.Fatalf("shim lease [%d,%d), want a 4-shard chunk", l.Start, l.End)
				}
			},
		},
		{
			// A worker that leases and then hangs: its whole chunk
			// re-leases; the stalled lease can never renew again.
			name: "stall-past-lease", chunk: 5,
			fault: func(t *testing.T, h *harness) {
				l, err := h.shim.StallPastLease()
				if err != nil {
					t.Fatal(err)
				}
				time.Sleep(faultLease + 50*time.Millisecond)
				status, err := h.shim.Renew(l.ID)
				if err != nil {
					t.Fatal(err)
				}
				if status != http.StatusGone {
					t.Errorf("renew after stall: status %d, want %d (lease must be reclaimed)", status, http.StatusGone)
				}
			},
		},
		{
			// Garbage on the wire is rejected per line and never touches
			// shard state.
			name: "malformed-lines", chunk: 0,
			fault: func(t *testing.T, h *harness) {
				for _, body := range []string{
					"{definitely not json\n",
					"\x00\xff\xfe\n",
					`{"lease":`,
				} {
					status, _, err := h.shim.PostRaw([]byte(body))
					if err != nil {
						t.Fatal(err)
					}
					if status != http.StatusBadRequest {
						t.Errorf("malformed body %q: status %d, want 400", body, status)
					}
				}
			},
		},
		{
			// Duplicate correct results are acknowledged idempotently —
			// exactly what a re-issued lease's straggler produces.
			name: "duplicate-results", chunk: 4,
			fault: func(t *testing.T, h *harness) {
				l, err := h.shim.Lease("dup-shim")
				if err != nil {
					t.Fatal(err)
				}
				sl, err := h.shim.CorrectLine(h.spec, h.state, h.params, l.Start)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 3; i++ {
					status, ack, err := h.shim.PostLine(l.ID, sl)
					if err != nil {
						t.Fatal(err)
					}
					if status != http.StatusOK || ack.Accepted != 1 {
						t.Errorf("duplicate post %d: status %d ack %+v, want idempotent accept", i, status, ack)
					}
				}
				// ...then the shim crashes; the rest of its chunk re-leases.
			},
		},
		{
			// Shard indexes outside [0, n) are rejected outright.
			name: "out-of-range-results", chunk: 0,
			fault: func(t *testing.T, h *harness) {
				l, err := h.shim.Lease("oob-shim")
				if err != nil {
					t.Fatal(err)
				}
				for _, shard := range []int{-1, h.n, 1 << 20} {
					line, _ := json.Marshal(remote.ResultLine{Lease: l.ID, ShardLine: experiment.ShardLine{Shard: shard, Value: json.RawMessage("1.5")}})
					status, _, err := h.shim.PostRaw(append(line, '\n'))
					if err != nil {
						t.Fatal(err)
					}
					if status != http.StatusBadRequest {
						t.Errorf("out-of-range shard %d: status %d, want 400", shard, status)
					}
				}
			},
		},
		{
			// Payloads that don't decode as the spec's shard type are
			// corrupt: rejected, and the shard is served again later.
			name: "corrupted-payloads", chunk: 4,
			fault: func(t *testing.T, h *harness) {
				l, err := h.shim.Lease("corrupt-shim")
				if err != nil {
					t.Fatal(err)
				}
				for _, payload := range []string{`"banana"`, `{"not":"a float"}`, `[1,2,3]`} {
					status, _, err := h.shim.PostLine(l.ID, experiment.ShardLine{Shard: l.Start, Value: json.RawMessage(payload)})
					if err != nil {
						t.Fatal(err)
					}
					if status != http.StatusBadRequest {
						t.Errorf("corrupt payload %s: status %d, want 400", payload, status)
					}
				}
				// The shim gives up; its chunk must re-lease intact.
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(t, tc.chunk)
			tc.fault(t, h)
			h.drainAndVerify(t)
		})
	}
}

// TestDeterminismViolationFailsRun is the one fault that must NOT heal:
// two different byte payloads for the same shard mean the purity
// contract broke somewhere, and silently picking one would publish wrong
// results. The run fails and every worker is sent home.
func TestDeterminismViolationFailsRun(t *testing.T) {
	h := newHarness(t, 4)
	l, err := h.shim.Lease("evil-shim")
	if err != nil {
		t.Fatal(err)
	}
	sl, err := h.shim.CorrectLine(h.spec, h.state, h.params, l.Start)
	if err != nil {
		t.Fatal(err)
	}
	if status, _, err := h.shim.PostLine(l.ID, sl); err != nil || status != http.StatusOK {
		t.Fatalf("honest post: status %d err %v", status, err)
	}
	forged := experiment.ShardLine{Shard: l.Start, Value: json.RawMessage("123456789")}
	status, _, err := h.shim.PostLine(l.ID, forged)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusConflict {
		t.Errorf("forged duplicate: status %d, want %d", status, http.StatusConflict)
	}
	select {
	case <-h.coord.Finished():
	case <-time.After(5 * time.Second):
		t.Fatal("determinism violation did not stop the run")
	}
	if _, err := h.coord.Values(); err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Errorf("Values() = %v, want determinism-contract failure", err)
	}
	// Workers polling for work are told the run is over.
	next, err := h.shim.Lease("bystander")
	if err != nil {
		t.Fatal(err)
	}
	if !next.Done {
		t.Errorf("post-violation lease = %+v, want done", next)
	}
}

// committedBaselineHash loads the committed PR 2 baseline signature.
func committedBaselineHash(t *testing.T, exp string) string {
	t.Helper()
	path := filepath.Join("..", "..", "results", "testdata", "baseline", exp+".jsonl")
	recs, err := results.ReadFile(path)
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	if len(recs) == 0 {
		t.Fatalf("committed baseline %s is empty", path)
	}
	return recs[len(recs)-1].Hash
}
