//go:build unix

package remote

import (
	"os"
	"syscall"
)

// lockJournal takes an exclusive, non-blocking advisory lock on the
// journal file: two live coordinators pointed at the same journal would
// interleave appends and truncate each other, so the second one must
// fail at startup instead. The lock is released automatically when the
// file descriptor closes — including when the process is SIGKILLed,
// which is exactly the restart scenario the journal exists for.
func lockJournal(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
