//go:build !unix

package remote

import "os"

// lockJournal is a no-op where flock is unavailable; concurrent
// coordinators on one journal file are unguarded on such platforms.
func lockJournal(*os.File) error { return nil }
