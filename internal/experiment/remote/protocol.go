// Package remote is the distributed execution backend: an HTTP
// coordinator that leases small shard chunks to worker processes on any
// machine that can reach it, re-issuing expired leases so crashed or
// stalled workers cost wall-clock, never correctness.
//
// The wire protocol is five JSON endpoints on the coordinator:
//
//	GET  /job      -> Job          the experiment, params and shard count
//	POST /lease    LeaseRequest -> Lease   claim the next chunk (or wait/done)
//	POST /renew    RenewRequest -> Renewal  extend a held lease's TTL
//	POST /results  ResultLine JSON lines -> ResultAck   stream shard results
//	GET  /stats    -> Stats        progress, backup counters, worker rates
//
// Workers are the same binary in a hidden -remote-worker mode; they fetch
// the job once, then loop lease → run shards (the shared
// experiment.RunShardLines path) → stream each result as it completes.
// A worker that dies mid-chunk simply stops renewing: the lease expires
// and the chunk's unfinished shards go back in the queue for someone
// else. Results are deduplicated by shard index with a byte-equality
// assertion — under the repo's determinism contract two workers that run
// the same shard must produce identical bytes, so a mismatch is a fatal
// contract violation, not something to paper over.
//
// That dedup also buys speculative backup execution for free: when the
// pending queue drains but grants are still in flight, an idle worker is
// handed a backup copy of the oldest grant's undone remainder (never the
// holder's own; at most one live backup per span) instead of a Wait, so
// the run's tail is min(primary, backup) rather than the straggler's
// lease TTL. Whichever copy lands first wins; the loser's duplicates are
// acknowledged idempotently, and a divergent duplicate is still the 409
// determinism tripwire.
//
// Every request is scoped to one coordinator instance by a per-run
// random token (Job.Run): lease requests, renewals and result lines
// that echo a different token are rejected with 410, so a worker that
// outlived a coordinator restart can never have stale payloads accepted
// under the new run's identically-numbered leases — it re-fetches the
// job and rejoins when the restarted coordinator serves the same run.
// Result lines are additionally scoped to the span their lease actually
// granted; a lease id is not a license to post arbitrary in-range
// shards.
//
// Chunk size and lease re-issue timing are adaptive (see Config), and a
// coordinator given a -journal directory appends every accepted shard
// result to an on-disk journal it replays after a restart, serving only
// the remainder. All of that moves scheduling and wall-clock only:
// shard values stay a pure function of (params, shard index), so record
// signatures are byte-identical with or without faults, restarts, or
// adaptation.
package remote

import (
	"encoding/json"

	"specinterference/internal/experiment"
	"specinterference/internal/results"
)

// WorkerArg is the hidden CLI argument naming remote-worker mode:
//
//	<binary> -remote-worker -connect http://host:port [-parallel N]
const WorkerArg = "-remote-worker"

// workerEnvVar mirrors WorkerArg for locally spawned workers.
const workerEnvVar = "SPECINTERFERENCE_REMOTE_WORKER"

// Job describes the one experiment a coordinator is serving; workers
// fetch it once, prepare per-process state, then start leasing.
type Job struct {
	Experiment string         `json:"experiment"`
	Params     results.Params `json:"params"`
	// Run is the coordinator's per-run random token. Every lease
	// request, renewal and result line must echo it; a mismatch is
	// rejected with 410. Lease ids alone (L1, L2, ...) are predictable
	// and collide across runs, so without the token a worker left
	// talking to a restarted coordinator on the same port could have
	// stale payloads accepted under the new run's identically-named
	// leases.
	Run string `json:"run"`
	// Shards is the total shard count ([0, Shards) across all leases).
	Shards int `json:"shards"`
	// LeaseMillis is the lease TTL workers must renew within.
	LeaseMillis int64 `json:"lease_ms"`
}

// LeaseRequest asks for the next chunk; Worker is a diagnostic identity
// (host-pid) the scheduler also keys idempotent re-polls and renew
// cadence on — a scheduling input, never a correctness input. Run must
// echo the job's run token.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Run    string `json:"run"`
}

// Lease is the coordinator's answer to a lease request: a chunk grant,
// "nothing right now, poll again", or "the run is over, go home".
type Lease struct {
	// ID names the grant; result lines and renewals must echo it.
	ID string `json:"id,omitempty"`
	// Run echoes the coordinator's run token on every answer.
	Run string `json:"run,omitempty"`
	// Start and End bound the leased chunk: shards [Start, End).
	Start int `json:"start"`
	End   int `json:"end"`
	// ExpiresMillis is the TTL: unfinished shards return to the queue
	// this many milliseconds from the grant unless renewed.
	ExpiresMillis int64 `json:"expires_ms,omitempty"`
	// Backup marks a speculative backup grant: a second copy of another
	// worker's in-flight remainder, issued when the pending queue
	// drained. Purely informational for the worker — it runs the span
	// exactly like a primary grant; the coordinator's byte-equality
	// dedup decides which copy wins.
	Backup bool `json:"backup,omitempty"`
	// Wait means every shard is leased or done but the run isn't over:
	// poll again in PollMillis (a crashed peer's lease may expire).
	Wait bool `json:"wait,omitempty"`
	// PollMillis is the suggested retry interval when Wait is set.
	PollMillis int64 `json:"poll_ms,omitempty"`
	// Done means all shards are complete (or the run failed): no more
	// work will ever be granted and the worker should exit.
	Done bool `json:"done,omitempty"`
}

// RenewRequest extends a held lease's TTL; Run must echo the job's run
// token.
type RenewRequest struct {
	ID  string `json:"id"`
	Run string `json:"run"`
}

// Renewal acknowledges a renew with the fresh TTL.
type Renewal struct {
	ExpiresMillis int64 `json:"expires_ms"`
}

// ResultLine is one streamed shard result: the shared ShardLine wire
// shape (shard index + JSON value, or a shard failure) tagged with the
// lease it was produced under. The /results body is a stream of these,
// one JSON document per line.
type ResultLine struct {
	// Run must echo the job's run token; lines from another run — a
	// worker that outlived a coordinator restart — are rejected with 410
	// instead of being mistaken for this run's identically-named leases.
	Run string `json:"run"`
	// Lease echoes the grant the shard ran under. Results from expired
	// leases are still accepted when valid — re-issuing a lease makes the
	// work redundant, never wrong — but a line must name a lease this
	// coordinator actually issued, and its shard must fall inside that
	// lease's granted span.
	Lease string `json:"lease"`
	experiment.ShardLine
}

// ResultAck reports how many lines of a /results body were accepted;
// Error carries the rejection reason when the status is non-2xx.
type ResultAck struct {
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
}

// WorkerStats is one worker's scheduling estimates in a Stats snapshot.
type WorkerStats struct {
	// Worker is the worker's self-reported identity (host-pid-seq).
	Worker string `json:"worker"`
	// ThroughputPerSec is the worker's accepted-shards-per-second EWMA;
	// adaptive grant sizes scale with it relative to the fleet mean.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	// CadenceMillis is the worker's renew-cadence EWMA (0 = no renewals
	// observed yet); the adaptive re-issue deadline rides on it.
	CadenceMillis int64 `json:"cadence_ms,omitempty"`
}

// Stats is the GET /stats snapshot: run progress, the live lease and
// queue shape, the speculative-backup counters, and per-worker
// scheduling estimates. Observability only — nothing here feeds back
// into results.
type Stats struct {
	Run          string `json:"run"`
	Shards       int    `json:"shards"`
	Done         int    `json:"done"`
	Remaining    int    `json:"remaining"`
	PendingSpans int    `json:"pending_spans"`
	// Leases counts every outstanding grant; BackupLeases counts the
	// live speculative copies among them.
	Leases       int `json:"leases"`
	BackupLeases int `json:"backup_leases"`
	// BackupsIssued / BackupsWon / BackupsWasted: backup leases granted
	// over the whole run, shards whose first accepted result arrived
	// under a backup, and byte-equal duplicates a backup streamed after
	// its primary had already landed the shard.
	BackupsIssued int `json:"backups_issued"`
	BackupsWon    int `json:"backups_won"`
	BackupsWasted int `json:"backups_wasted"`
	// CostEWMAMicros is the observed per-shard completion cost driving
	// adaptive chunk sizing, in microseconds (0 = no estimate yet).
	CostEWMAMicros int64 `json:"cost_ewma_us"`
	// Workers lists per-worker estimates, sorted by worker name.
	Workers []WorkerStats `json:"workers,omitempty"`
}

// mustJSON encodes a response document; protocol types marshal without
// error by construction.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
