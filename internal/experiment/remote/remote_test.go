package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"specinterference/internal/experiment"
	"specinterference/internal/results"
)

// The unit tests run against a tiny registered spec: shard i's value is
// a pure function of i, like every real spec.
func init() {
	experiment.Register(&experiment.Spec{
		Name: "remote-test",
		Plan: func(p results.Params) (int, error) { return p.Trials, nil },
		Run: func(_ context.Context, _ any, p results.Params, i int) (any, error) {
			return float64(i*i) + float64(p.Seed), nil
		},
		NewShard: func() any { return new(float64) },
		Aggregate: func(p results.Params, shards []any) (*results.Record, error) {
			return nil, fmt.Errorf("unit tests aggregate by hand")
		},
	})
}

func testSpec(t *testing.T) *experiment.Spec {
	t.Helper()
	spec, err := experiment.Lookup("remote-test")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// startCoordinator serves a coordinator over httptest and returns it
// with its base URL.
func startCoordinator(t *testing.T, spec *experiment.Spec, p results.Params, n int, cfg Config) (*Coordinator, string) {
	t.Helper()
	coord, err := NewCoordinator(spec, p, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	return coord, srv.URL
}

// runToken fetches the coordinator's per-run token from /job.
func runToken(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/job")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job.Run
}

// runGoroutineWorkers drains a coordinator with n in-process RunWorker
// goroutines — the httptest configuration: real HTTP over loopback, no
// process spawning.
func runGoroutineWorkers(t *testing.T, url string, n, shardWorkers int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(context.Background(), url, shardWorkers, io.Discard)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
}

// TestHTTPWorkerEquivalence is the httptest-based remote equivalence
// sweep: every real experiment at its committed baseline parameters,
// served by 1/2/3 HTTP workers at varying chunk sizes, must hash
// byte-identically to the committed PR 2 baseline records.
func TestHTTPWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-trial sweeps")
	}
	for _, exp := range results.Experiments() {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			params, err := results.BaselineParams(exp)
			if err != nil {
				t.Fatal(err)
			}
			committed := committedBaselineHash(t, exp)
			spec, err := experiment.Lookup(exp)
			if err != nil {
				t.Fatal(err)
			}
			n, err := spec.Plan(params)
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range []struct{ workers, chunk int }{
				{1, 0}, {2, 1}, {3, 2}, {2, 5},
			} {
				coord, url := startCoordinator(t, spec, params, n, Config{Chunk: tc.chunk})
				runGoroutineWorkers(t, url, tc.workers, 0)
				shards, err := coord.Values()
				if err != nil {
					t.Fatalf("workers=%d chunk=%d: %v", tc.workers, tc.chunk, err)
				}
				rec, err := spec.Aggregate(params, shards)
				if err != nil {
					t.Fatal(err)
				}
				if rec.Hash != committed {
					t.Errorf("workers=%d chunk=%d: hash %.12s != committed baseline %.12s",
						tc.workers, tc.chunk, rec.Hash, committed)
				}
			}
		})
	}
}

// committedBaselineHash loads the PR 2 baseline record's signature.
func committedBaselineHash(t *testing.T, exp string) string {
	t.Helper()
	path := filepath.Join("..", "..", "results", "testdata", "baseline", exp+".jsonl")
	recs, err := results.ReadFile(path)
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	if len(recs) == 0 {
		t.Fatalf("committed baseline %s is empty", path)
	}
	return recs[len(recs)-1].Hash
}

// post sends one JSON document and decodes the response into out when
// the status is 2xx, returning the status either way.
func postDoc(t *testing.T, url string, doc any, out any) int {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return postBytes(t, url, append(raw, '\n'), out)
}

func postBytes(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s response %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode
}

func grantLease(t *testing.T, url, worker string) Lease {
	t.Helper()
	var l Lease
	if status := postDoc(t, url+"/lease", LeaseRequest{Worker: worker, Run: runToken(t, url)}, &l); status != http.StatusOK {
		t.Fatalf("lease: status %d", status)
	}
	return l
}

// encodeValue marshals the remote-test spec's shard value for a shard.
func encodeValue(t *testing.T, p results.Params, shard int) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(float64(shard*shard) + float64(p.Seed))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// fakeClock is a mutex-guarded test clock: HTTP handlers read it from
// server goroutines while the test advances it.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestLeaseExpiryReissue: an unrenewed lease's unfinished shards go back
// in the queue and are granted to the next asker; shards completed under
// the expired lease stay completed.
func TestLeaseExpiryReissue(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	p := results.Params{Trials: 4, Seed: 7}
	spec := testSpec(t)
	coord, url := startCoordinator(t, spec, p, 4, Config{Chunk: 4, Lease: time.Second, Now: clock.Now})

	first := grantLease(t, url, "doomed")
	if first.Start != 0 || first.End != 4 {
		t.Fatalf("first lease = [%d,%d), want [0,4)", first.Start, first.End)
	}
	// The doomed worker completes shard 1, then stalls past its TTL.
	var ack ResultAck
	if status := postDoc(t, url+"/results", ResultLine{Run: first.Run, Lease: first.ID, ShardLine: experiment.ShardLine{Shard: 1, Value: encodeValue(t, p, 1)}}, &ack); status != http.StatusOK {
		t.Fatalf("result: status %d", status)
	}

	// Before expiry: nothing to grant.
	if l := grantLease(t, url, "vulture"); !l.Wait {
		t.Fatalf("pre-expiry lease = %+v, want wait", l)
	}
	clock.Advance(2 * time.Second)
	// After expiry the unfinished shards are re-issued as contiguous
	// sub-spans around the completed shard 1: [0,1) then [2,4). Two
	// distinct workers ask — a re-poll from one worker would
	// idempotently return its own unstarted grant.
	a := grantLease(t, url, "vulture-a")
	b := grantLease(t, url, "vulture-b")
	if a.Start != 0 || a.End != 1 || b.Start != 2 || b.End != 4 {
		t.Fatalf("re-issued spans [%d,%d) [%d,%d), want [0,1) [2,4)", a.Start, a.End, b.Start, b.End)
	}

	// Renewing the expired lease must fail.
	if status := postDoc(t, url+"/renew", RenewRequest{ID: first.ID, Run: first.Run}, nil); status != http.StatusGone {
		t.Errorf("renew of expired lease: status %d, want %d", status, http.StatusGone)
	}

	// Completing the re-issued shards finishes the run; the late result
	// for shard 1 was kept.
	for _, shard := range []int{0, 2, 3} {
		id := a.ID
		if shard >= 2 {
			id = b.ID
		}
		if status := postDoc(t, url+"/results", ResultLine{Run: first.Run, Lease: id, ShardLine: experiment.ShardLine{Shard: shard, Value: encodeValue(t, p, shard)}}, &ack); status != http.StatusOK {
			t.Fatalf("shard %d: status %d", shard, status)
		}
	}
	select {
	case <-coord.Finished():
	default:
		t.Fatal("run not finished after all shards reported")
	}
	vals, err := coord.Values()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if want := float64(i*i) + float64(p.Seed); v != want {
			t.Errorf("shard %d = %v, want %v", i, v, want)
		}
	}
}

// TestRenewExtendsLease: a renewed lease survives its original TTL.
func TestRenewExtendsLease(t *testing.T) {
	clock := &fakeClock{t: time.Unix(2000, 0)}
	p := results.Params{Trials: 2}
	_, url := startCoordinator(t, testSpec(t), p, 2, Config{Chunk: 2, Lease: time.Second, Now: clock.Now})

	l := grantLease(t, url, "steady")
	clock.Advance(900 * time.Millisecond)
	var renewed Renewal
	if status := postDoc(t, url+"/renew", RenewRequest{ID: l.ID, Run: l.Run}, &renewed); status != http.StatusOK {
		t.Fatalf("renew: status %d", status)
	}
	clock.Advance(900 * time.Millisecond)
	// 1.8s after grant but only 0.9s after renewal: still held.
	if got := grantLease(t, url, "vulture"); !got.Wait {
		t.Errorf("post-renew lease = %+v, want wait (lease still held)", got)
	}
}

// TestResultRejection pins the coordinator's hard validation: each bad
// /results body is rejected with the right status and leaves shard state
// untouched.
func TestResultRejection(t *testing.T) {
	p := results.Params{Trials: 3}
	for _, tc := range []struct {
		name   string
		body   func(t *testing.T, l Lease) []byte
		status int
	}{
		{"malformed-json", func(t *testing.T, l Lease) []byte {
			return []byte("{this is not json\n")
		}, http.StatusBadRequest},
		{"unknown-lease", func(t *testing.T, l Lease) []byte {
			raw, _ := json.Marshal(ResultLine{Run: l.Run, Lease: "L999", ShardLine: experiment.ShardLine{Shard: 0, Value: encodeValue(t, p, 0)}})
			return append(raw, '\n')
		}, http.StatusGone},
		{"out-of-range-shard", func(t *testing.T, l Lease) []byte {
			raw, _ := json.Marshal(ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 99, Value: encodeValue(t, p, 0)}})
			return append(raw, '\n')
		}, http.StatusBadRequest},
		{"corrupt-payload", func(t *testing.T, l Lease) []byte {
			raw, _ := json.Marshal(ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 0, Value: json.RawMessage(`"banana"`)}})
			return append(raw, '\n')
		}, http.StatusBadRequest},
		{"empty-value", func(t *testing.T, l Lease) []byte {
			raw, _ := json.Marshal(ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 0}})
			return append(raw, '\n')
		}, http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			coord, url := startCoordinator(t, testSpec(t), p, 3, Config{Chunk: 3})
			l := grantLease(t, url, "naughty")
			if status := postBytes(t, url+"/results", tc.body(t, l), nil); status != tc.status {
				t.Errorf("status %d, want %d", status, tc.status)
			}
			if _, err := coord.Values(); err == nil {
				t.Error("rejected result completed the run")
			}
			select {
			case <-coord.Finished():
				t.Error("rejected result finished the run")
			default:
			}
		})
	}
}

// TestDuplicateResults: equal duplicate bytes are acknowledged
// idempotently (re-issued leases make them inevitable); unequal bytes
// for a done shard are a determinism violation that fails the run.
func TestDuplicateResults(t *testing.T) {
	p := results.Params{Trials: 2, Seed: 3}
	coord, url := startCoordinator(t, testSpec(t), p, 2, Config{Chunk: 2})
	l := grantLease(t, url, "dup")

	line := ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 0, Value: encodeValue(t, p, 0)}}
	var ack ResultAck
	if status := postDoc(t, url+"/results", line, &ack); status != http.StatusOK {
		t.Fatalf("first post: status %d", status)
	}
	if status := postDoc(t, url+"/results", line, &ack); status != http.StatusOK || ack.Accepted != 1 {
		t.Fatalf("equal duplicate: status %d ack %+v, want 200/accepted", status, ack)
	}

	bad := ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 0, Value: json.RawMessage("12345")}}
	if status := postDoc(t, url+"/results", bad, nil); status != http.StatusConflict {
		t.Fatalf("mismatched duplicate: status %d, want %d", status, http.StatusConflict)
	}
	select {
	case <-coord.Finished():
	default:
		t.Fatal("determinism violation did not finish (fail) the run")
	}
	if _, err := coord.Values(); err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Errorf("Values() error = %v, want determinism violation", err)
	}
}

// TestStragglerAfterCompletion: faults arriving after the last shard
// landed — a mismatched duplicate or an error line from a re-issued
// lease's straggler — are rejected per line but must not panic the
// handler, fail a completed run, or close the finished channel twice.
func TestStragglerAfterCompletion(t *testing.T) {
	p := results.Params{Trials: 2, Seed: 5}
	coord, url := startCoordinator(t, testSpec(t), p, 2, Config{Chunk: 2})
	l := grantLease(t, url, "fast")
	for shard := 0; shard < 2; shard++ {
		var ack ResultAck
		if status := postDoc(t, url+"/results", ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: shard, Value: encodeValue(t, p, shard)}}, &ack); status != http.StatusOK {
			t.Fatalf("shard %d: status %d", shard, status)
		}
	}
	select {
	case <-coord.Finished():
	default:
		t.Fatal("run not finished")
	}

	// A forged duplicate after completion: rejected with 409, run stays
	// successful.
	forged := ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 0, Value: json.RawMessage("999")}}
	if status := postDoc(t, url+"/results", forged, nil); status != http.StatusConflict {
		t.Errorf("post-completion forged duplicate: status %d, want %d", status, http.StatusConflict)
	}
	// A late error line after completion: acknowledged, run stays
	// successful.
	late := ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 1, Err: "late boom"}}
	if status := postDoc(t, url+"/results", late, nil); status != http.StatusOK {
		t.Errorf("post-completion error line: status %d, want 200", status)
	}
	if _, err := coord.Values(); err != nil {
		t.Errorf("completed run tainted by post-completion faults: %v", err)
	}
}

// TestShardErrorFailsRun: a streamed shard failure fails the run and
// subsequent lease polls say done, sending workers home.
func TestShardErrorFailsRun(t *testing.T) {
	p := results.Params{Trials: 2}
	coord, url := startCoordinator(t, testSpec(t), p, 2, Config{Chunk: 1})
	l := grantLease(t, url, "broken")
	line := ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 0, Err: "shard exploded"}}
	if status := postDoc(t, url+"/results", line, nil); status != http.StatusOK {
		t.Fatalf("error line: status %d", status)
	}
	if _, err := coord.Values(); err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Errorf("Values() error = %v, want shard failure", err)
	}
	if got := grantLease(t, url, "next"); !got.Done {
		t.Errorf("post-failure lease = %+v, want done", got)
	}
}

// TestRemoteBackendViaFactory: the factory registration resolves
// "remote" and a full engine run over the backend matches an in-process
// run of the same spec.
func TestRemoteBackendViaFactory(t *testing.T) {
	b, err := experiment.NewBackendOptions("remote", experiment.BackendOptions{Procs: 2, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "remote" {
		t.Fatalf("backend name = %q", b.Name())
	}
	if _, err := experiment.NewBackendOptions("carrier-pigeon", experiment.BackendOptions{}); err == nil {
		t.Error("unknown backend accepted")
	}
	names := experiment.BackendNames()
	want := []string{"inprocess", "remote", "subprocess"}
	if len(names) != len(want) {
		t.Fatalf("BackendNames() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("BackendNames() = %v, want %v", names, want)
		}
	}
}
