package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"specinterference/internal/experiment"
	"specinterference/internal/results"
)

// The unit tests run against a tiny registered spec: shard i's value is
// a pure function of i, like every real spec.
func init() {
	experiment.Register(&experiment.Spec{
		Name: "remote-test",
		Plan: func(p results.Params) (int, error) { return p.Trials, nil },
		Run: func(_ context.Context, _ any, p results.Params, i int) (any, error) {
			return float64(i*i) + float64(p.Seed), nil
		},
		NewShard: func() any { return new(float64) },
		Aggregate: func(p results.Params, shards []any) (*results.Record, error) {
			return nil, fmt.Errorf("unit tests aggregate by hand")
		},
	})
}

func testSpec(t *testing.T) *experiment.Spec {
	t.Helper()
	spec, err := experiment.Lookup("remote-test")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// startCoordinator serves a coordinator over httptest and returns it
// with its base URL.
func startCoordinator(t *testing.T, spec *experiment.Spec, p results.Params, n int, cfg Config) (*Coordinator, string) {
	t.Helper()
	coord, err := NewCoordinator(spec, p, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	return coord, srv.URL
}

// runToken fetches the coordinator's per-run token from /job.
func runToken(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/job")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job.Run
}

// runGoroutineWorkers drains a coordinator with n in-process RunWorker
// goroutines — the httptest configuration: real HTTP over loopback, no
// process spawning.
func runGoroutineWorkers(t *testing.T, url string, n, shardWorkers int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(context.Background(), url, shardWorkers, io.Discard)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
}

// TestHTTPWorkerEquivalence is the httptest-based remote equivalence
// sweep: every real experiment at its committed baseline parameters,
// served by 1/2/3 HTTP workers at varying chunk sizes, must hash
// byte-identically to the committed PR 2 baseline records.
func TestHTTPWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-trial sweeps")
	}
	for _, exp := range results.Experiments() {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			params, err := results.BaselineParams(exp)
			if err != nil {
				t.Fatal(err)
			}
			committed := committedBaselineHash(t, exp)
			spec, err := experiment.Lookup(exp)
			if err != nil {
				t.Fatal(err)
			}
			n, err := spec.Plan(params)
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range []struct{ workers, chunk int }{
				{1, 0}, {2, 1}, {3, 2}, {2, 5},
			} {
				coord, url := startCoordinator(t, spec, params, n, Config{Chunk: tc.chunk})
				runGoroutineWorkers(t, url, tc.workers, 0)
				shards, err := coord.Values()
				if err != nil {
					t.Fatalf("workers=%d chunk=%d: %v", tc.workers, tc.chunk, err)
				}
				rec, err := spec.Aggregate(params, shards)
				if err != nil {
					t.Fatal(err)
				}
				if rec.Hash != committed {
					t.Errorf("workers=%d chunk=%d: hash %.12s != committed baseline %.12s",
						tc.workers, tc.chunk, rec.Hash, committed)
				}
			}
		})
	}
}

// committedBaselineHash loads the PR 2 baseline record's signature.
func committedBaselineHash(t *testing.T, exp string) string {
	t.Helper()
	path := filepath.Join("..", "..", "results", "testdata", "baseline", exp+".jsonl")
	recs, err := results.ReadFile(path)
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	if len(recs) == 0 {
		t.Fatalf("committed baseline %s is empty", path)
	}
	return recs[len(recs)-1].Hash
}

// post sends one JSON document and decodes the response into out when
// the status is 2xx, returning the status either way.
func postDoc(t *testing.T, url string, doc any, out any) int {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return postBytes(t, url, append(raw, '\n'), out)
}

func postBytes(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s response %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode
}

func grantLease(t *testing.T, url, worker string) Lease {
	t.Helper()
	var l Lease
	if status := postDoc(t, url+"/lease", LeaseRequest{Worker: worker, Run: runToken(t, url)}, &l); status != http.StatusOK {
		t.Fatalf("lease: status %d", status)
	}
	return l
}

// encodeValue marshals the remote-test spec's shard value for a shard.
func encodeValue(t *testing.T, p results.Params, shard int) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(float64(shard*shard) + float64(p.Seed))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// fakeClock is a mutex-guarded test clock: HTTP handlers read it from
// server goroutines while the test advances it.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestLeaseExpiryReissue: an unrenewed lease's unfinished shards go back
// in the queue and are granted to the next asker; shards completed under
// the expired lease stay completed.
func TestLeaseExpiryReissue(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	p := results.Params{Trials: 4, Seed: 7}
	spec := testSpec(t)
	coord, url := startCoordinator(t, spec, p, 4, Config{Chunk: 4, Lease: time.Second, Now: clock.Now})

	first := grantLease(t, url, "doomed")
	if first.Start != 0 || first.End != 4 {
		t.Fatalf("first lease = [%d,%d), want [0,4)", first.Start, first.End)
	}
	// The doomed worker completes shard 1, then stalls past its TTL.
	var ack ResultAck
	if status := postDoc(t, url+"/results", ResultLine{Run: first.Run, Lease: first.ID, ShardLine: experiment.ShardLine{Shard: 1, Value: encodeValue(t, p, 1)}}, &ack); status != http.StatusOK {
		t.Fatalf("result: status %d", status)
	}

	// Before expiry there is nothing in the queue, but the doomed grant
	// is in flight: an idle worker gets a speculative backup of its
	// undone remainder (shards 0, 2, 3 — bounding span [0,4)) instead of
	// a Wait. This vulture then stalls too, so expiry still plays out.
	bk := grantLease(t, url, "vulture")
	if !bk.Backup || bk.Start != 0 || bk.End != 4 {
		t.Fatalf("pre-expiry lease = %+v, want a backup of [0,4)", bk)
	}
	clock.Advance(2 * time.Second)
	// After expiry — the primary and its backup both lapsed — the
	// unfinished shards are re-issued exactly once, as contiguous
	// sub-spans around the completed shard 1: [0,1) then [2,4). Two
	// distinct workers ask — a re-poll from one worker would
	// idempotently return its own unstarted grant.
	a := grantLease(t, url, "vulture-a")
	b := grantLease(t, url, "vulture-b")
	if a.Start != 0 || a.End != 1 || b.Start != 2 || b.End != 4 {
		t.Fatalf("re-issued spans [%d,%d) [%d,%d), want [0,1) [2,4)", a.Start, a.End, b.Start, b.End)
	}
	// Had the double expiry requeued the span twice, a third asker would
	// be handed a duplicate copy from the queue rather than a wait/backup
	// answer (both live grants are unstarted re-issues, not backup
	// targets with progress, so nothing else is grantable).
	if l := grantLease(t, url, "vulture-c"); !l.Wait && !l.Backup {
		t.Fatalf("post-reissue third lease = %+v, want wait or backup, not a queued duplicate", l)
	}

	// Renewing the expired lease must fail.
	if status := postDoc(t, url+"/renew", RenewRequest{ID: first.ID, Run: first.Run}, nil); status != http.StatusGone {
		t.Errorf("renew of expired lease: status %d, want %d", status, http.StatusGone)
	}

	// Completing the re-issued shards finishes the run; the late result
	// for shard 1 was kept.
	for _, shard := range []int{0, 2, 3} {
		id := a.ID
		if shard >= 2 {
			id = b.ID
		}
		if status := postDoc(t, url+"/results", ResultLine{Run: first.Run, Lease: id, ShardLine: experiment.ShardLine{Shard: shard, Value: encodeValue(t, p, shard)}}, &ack); status != http.StatusOK {
			t.Fatalf("shard %d: status %d", shard, status)
		}
	}
	select {
	case <-coord.Finished():
	default:
		t.Fatal("run not finished after all shards reported")
	}
	vals, err := coord.Values()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if want := float64(i*i) + float64(p.Seed); v != want {
			t.Errorf("shard %d = %v, want %v", i, v, want)
		}
	}
}

// TestRenewExtendsLease: a renewed lease survives its original TTL.
func TestRenewExtendsLease(t *testing.T) {
	clock := &fakeClock{t: time.Unix(2000, 0)}
	p := results.Params{Trials: 2}
	_, url := startCoordinator(t, testSpec(t), p, 2, Config{Chunk: 2, Lease: time.Second, Now: clock.Now})

	l := grantLease(t, url, "steady")
	clock.Advance(900 * time.Millisecond)
	var renewed Renewal
	if status := postDoc(t, url+"/renew", RenewRequest{ID: l.ID, Run: l.Run}, &renewed); status != http.StatusOK {
		t.Fatalf("renew: status %d", status)
	}
	clock.Advance(900 * time.Millisecond)
	// 1.8s after grant but only 0.9s after renewal: the lease survived
	// its original TTL — the holder's re-poll gets the same unstarted
	// grant back instead of a fresh one carved from a requeued span, and
	// an idle stranger is offered only a speculative backup of it, never
	// the span itself off the queue.
	if got := grantLease(t, url, "steady"); got.ID != l.ID {
		t.Errorf("post-renew re-poll = %+v, want the held grant %s back", got, l.ID)
	}
	if got := grantLease(t, url, "vulture"); !got.Backup {
		t.Errorf("post-renew stranger lease = %+v, want a backup (lease still held)", got)
	}
}

// postShard streams one honest result line and asserts it is accepted.
func postShard(t *testing.T, url string, p results.Params, run, lease string, shard int) {
	t.Helper()
	var ack ResultAck
	if status := postDoc(t, url+"/results", ResultLine{Run: run, Lease: lease, ShardLine: experiment.ShardLine{Shard: shard, Value: encodeValue(t, p, shard)}}, &ack); status != http.StatusOK {
		t.Fatalf("shard %d: status %d", shard, status)
	}
}

// TestBackupAvoidsTTLCliff is the tail-latency acceptance test: with one
// of three workers stalled mid-chunk, the run finishes through a
// speculative backup lease while the stalled lease's TTL (an hour, on a
// fake clock that never advances past a second) is nowhere near expiry —
// the coordinator no longer waits out the cliff. Also pins the backup
// fences: one live backup per span, and an already-satisfied span is
// never a backup target.
func TestBackupAvoidsTTLCliff(t *testing.T) {
	clock := &fakeClock{t: time.Unix(3000, 0)}
	p := results.Params{Trials: 6, Seed: 2}
	spec := testSpec(t)
	coord, url := startCoordinator(t, spec, p, 6, Config{Chunk: 2, Lease: time.Hour, Now: clock.Now})

	la := grantLease(t, url, "alpha") // [0,2)
	lb := grantLease(t, url, "beta")  // [2,4)
	lc := grantLease(t, url, "gamma") // [4,6)
	if la.Start != 0 || lb.Start != 2 || lc.Start != 4 {
		t.Fatalf("grants [%d %d %d], want [0 2 4]", la.Start, lb.Start, lc.Start)
	}
	postShard(t, url, p, la.Run, la.ID, 0)
	postShard(t, url, p, la.Run, la.ID, 1)
	postShard(t, url, p, lc.Run, lc.ID, 4)
	postShard(t, url, p, lc.Run, lc.ID, 5)
	// beta completes shard 2, then stalls mid-chunk with shard 3 undone.
	postShard(t, url, p, lb.Run, lb.ID, 2)

	clock.Advance(time.Second) // far from the one-hour cliff
	// alpha, idle again, asks for more: the queue is empty, so it gets a
	// speculative backup of beta's undone remainder [3,4) — never a Wait.
	bk := grantLease(t, url, "alpha")
	if !bk.Backup || bk.Start != 3 || bk.End != 4 {
		t.Fatalf("idle-worker lease = %+v, want a backup of [3,4)", bk)
	}
	// One backup per span: a fourth worker is told to wait, not handed a
	// third copy.
	if l := grantLease(t, url, "delta"); !l.Wait {
		t.Fatalf("second idle lease = %+v, want wait (span already backed up)", l)
	}
	// The backup's result finishes the run with the stalled lease still
	// hours from expiry.
	postShard(t, url, p, bk.Run, bk.ID, 3)
	select {
	case <-coord.Finished():
	default:
		t.Fatal("run not finished after the backup result landed")
	}
	vals, err := coord.Values()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if want := float64(i*i) + float64(p.Seed); v != want {
			t.Errorf("shard %d = %v, want %v", i, v, want)
		}
	}
	st := coord.Stats()
	if st.BackupsIssued != 1 || st.BackupsWon != 1 || st.BackupsWasted != 0 {
		t.Errorf("backup counters issued/won/wasted = %d/%d/%d, want 1/1/0", st.BackupsIssued, st.BackupsWon, st.BackupsWasted)
	}
	// beta's straggler copy of shard 3 arrives late: acknowledged
	// idempotently, and not counted against the backup.
	postShard(t, url, p, lb.Run, lb.ID, 3)
	if st := coord.Stats(); st.BackupsWasted != 0 {
		t.Errorf("primary straggler counted as wasted backup: %+v", st)
	}
}

// TestBackupDuplicateWasted: when the primary wins a shard the backup
// also ran, the backup's byte-equal duplicate is acknowledged and
// counted as wasted speculation; a divergent duplicate from a backup is
// still the 409 determinism tripwire.
func TestBackupDuplicateWasted(t *testing.T) {
	p := results.Params{Trials: 3, Seed: 11}
	coord, url := startCoordinator(t, testSpec(t), p, 3, Config{Chunk: 3})
	prim := grantLease(t, url, "prim")
	postShard(t, url, p, prim.Run, prim.ID, 0) // started; 1,2 undone
	bk := grantLease(t, url, "spec")
	if !bk.Backup || bk.Start != 1 || bk.End != 3 {
		t.Fatalf("backup lease = %+v, want backup of [1,3)", bk)
	}
	// Primary lands shard 1 first; the backup's copy is wasted.
	postShard(t, url, p, prim.Run, prim.ID, 1)
	postShard(t, url, p, bk.Run, bk.ID, 1)
	if st := coord.Stats(); st.BackupsIssued != 1 || st.BackupsWon != 0 || st.BackupsWasted != 1 {
		t.Errorf("backup counters issued/won/wasted = %d/%d/%d, want 1/0/1", st.BackupsIssued, st.BackupsWon, st.BackupsWasted)
	}
	// A forged divergent copy from the backup fails the run.
	if status := postDoc(t, url+"/results", ResultLine{Run: bk.Run, Lease: bk.ID, ShardLine: experiment.ShardLine{Shard: 1, Value: json.RawMessage("424242")}}, nil); status != http.StatusConflict {
		t.Errorf("divergent backup duplicate: status %d, want %d", status, http.StatusConflict)
	}
	if _, err := coord.Values(); err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Errorf("Values() = %v, want determinism violation", err)
	}
}

// TestAbandonedGrantRelease pins the abandoned-grant bugfix: a worker
// that starts a chunk, abandons it (the transport-error fallback) and
// re-polls /lease used to get fresh work while its old lease kept the
// abandoned shards unserveable for the full TTL. Now the re-poll
// releases the undone remainder first.
func TestAbandonedGrantRelease(t *testing.T) {
	clock := &fakeClock{t: time.Unix(4000, 0)}
	p := results.Params{Trials: 4, Seed: 9}
	coord, url := startCoordinator(t, testSpec(t), p, 4, Config{Chunk: 4, Lease: time.Hour, Now: clock.Now})

	l1 := grantLease(t, url, "flaky")
	if l1.Start != 0 || l1.End != 4 {
		t.Fatalf("first grant [%d,%d), want [0,4)", l1.Start, l1.End)
	}
	postShard(t, url, p, l1.Run, l1.ID, 0) // started
	clock.Advance(time.Second)             // nowhere near the cliff
	// The worker abandoned the chunk and asks again: the old lease's
	// remainder [1,4) must come back immediately as a regular grant —
	// not the same lease, not a backup, and not a TTL-long stall.
	l2 := grantLease(t, url, "flaky")
	if l2.ID == l1.ID || l2.Backup || l2.Wait || l2.Start != 1 || l2.End != 4 {
		t.Fatalf("re-poll after abandonment = %+v, want a fresh grant of [1,4)", l2)
	}
	// The abandoned lease is gone: renewing it fails...
	if status := postDoc(t, url+"/renew", RenewRequest{ID: l1.ID, Run: l1.Run}, nil); status != http.StatusGone {
		t.Errorf("renew of released lease: status %d, want %d", status, http.StatusGone)
	}
	// ...but a straggler result it already computed is still accepted
	// (issued spans survive release, like expiry).
	postShard(t, url, p, l1.Run, l1.ID, 1)
	for _, shard := range []int{2, 3} {
		postShard(t, url, p, l2.Run, l2.ID, shard)
	}
	select {
	case <-coord.Finished():
	default:
		t.Fatal("run not finished")
	}
	if _, err := coord.Values(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerStatePruned pins the state-leak bugfix: churning through
// many short-lived workers must not grow byWorker, cadence or throughput
// without bound — a swept worker's entries go with its last lease.
func TestWorkerStatePruned(t *testing.T) {
	clock := &fakeClock{t: time.Unix(5000, 0)}
	p := results.Params{Trials: 64, Seed: 1}
	coord, url := startCoordinator(t, testSpec(t), p, 64, Config{Chunk: 1, Lease: time.Second, Now: clock.Now})

	const churn = 20
	for i := 0; i < churn; i++ {
		w := fmt.Sprintf("ephemeral-%d", i)
		l := grantLease(t, url, w)
		if l.Wait || l.Done {
			t.Fatalf("worker %s got no grant: %+v", w, l)
		}
		// A renewal seeds the cadence map; a posted result seeds
		// throughput — the maps under test.
		clock.Advance(100 * time.Millisecond)
		if status := postDoc(t, url+"/renew", RenewRequest{ID: l.ID, Run: l.Run}, nil); status != http.StatusOK {
			t.Fatalf("renew %s: status %d", w, status)
		}
		postShard(t, url, p, l.Run, l.ID, l.Start)
		// ...and the worker vanishes; its lease expires.
		clock.Advance(3 * time.Second)
	}
	// One live worker remains after the final sweep.
	last := grantLease(t, url, "survivor")
	if last.Wait || last.Done {
		t.Fatalf("survivor got no grant: %+v", last)
	}
	coord.mu.Lock()
	defer coord.mu.Unlock()
	if len(coord.byWorker) > 1 {
		t.Errorf("byWorker holds %d entries after churn, want <= 1", len(coord.byWorker))
	}
	if len(coord.cadence) > 1 {
		t.Errorf("cadence holds %d entries after churn, want <= 1 (stale EWMAs leak)", len(coord.cadence))
	}
	if len(coord.throughput) > 1 {
		t.Errorf("throughput holds %d entries after churn, want <= 1", len(coord.throughput))
	}
	if len(coord.leases) > 1 {
		t.Errorf("%d leases outstanding after churn, want <= 1", len(coord.leases))
	}
}

// TestFirstResultAnchorsCostEWMA pins the cost-poisoning bugfix: a long
// gap between a grant and its first result (job fetch, the wait/poll
// loop) is idle time, not shard cost, and must not collapse the adaptive
// chunk size.
func TestFirstResultAnchorsCostEWMA(t *testing.T) {
	clock := &fakeClock{t: time.Unix(6000, 0)}
	p := results.Params{Trials: 8, Seed: 4}
	coord, url := startCoordinator(t, testSpec(t), p, 8, Config{Chunk: 4, Lease: time.Hour, Now: clock.Now})

	l := grantLease(t, url, "idler")
	clock.Advance(30 * time.Second) // a long idle stretch before any result
	postShard(t, url, p, l.Run, l.ID, 0)
	coord.mu.Lock()
	ewma := coord.costEWMA
	coord.mu.Unlock()
	if ewma != 0 {
		t.Fatalf("first result fed the cost EWMA (%v); it must only anchor the clock", ewma)
	}
	clock.Advance(50 * time.Millisecond)
	postShard(t, url, p, l.Run, l.ID, 1)
	coord.mu.Lock()
	ewma = coord.costEWMA
	tp := coord.throughput["idler"]
	coord.mu.Unlock()
	if ewma != 50*time.Millisecond {
		t.Errorf("cost EWMA after one interval = %v, want exactly 50ms (the idle gap leaked in)", ewma)
	}
	if want := 20.0; tp != want {
		t.Errorf("throughput EWMA = %v shards/s, want %v", tp, want)
	}
}

// TestThroughputScalesGrants: with two workers whose observed completion
// rates differ, the fast worker's adaptive grants are larger than the
// slow worker's — within the global [1, n/8] clamp and a 4x band.
func TestThroughputScalesGrants(t *testing.T) {
	clock := &fakeClock{t: time.Unix(7000, 0)}
	p := results.Params{Trials: 1024, Seed: 3}
	coord, url := startCoordinator(t, testSpec(t), p, 1024, Config{Now: clock.Now})

	fast := grantLease(t, url, "fast")
	slow := grantLease(t, url, "slow")
	post := func(l Lease, shard int, step time.Duration) {
		clock.Advance(step)
		postShard(t, url, p, l.Run, l.ID, shard)
	}
	// Interleave so both EWMAs see result-to-result intervals: fast
	// completes a shard every 10ms, slow every 160ms.
	post(fast, fast.Start, 0)
	post(slow, slow.Start, 0)
	for i := 1; i < 8; i++ {
		post(fast, fast.Start+i, 10*time.Millisecond)
		post(slow, slow.Start+i, 160*time.Millisecond)
	}
	coord.mu.Lock()
	kFast := coord.targetChunkFor("fast")
	kSlow := coord.targetChunkFor("slow")
	kAnon := coord.targetChunkFor("")
	coord.mu.Unlock()
	if kFast <= kSlow {
		t.Errorf("targetChunk fast=%d slow=%d, want fast > slow", kFast, kSlow)
	}
	if kFast < 1 || kFast > 128 || kSlow < 1 || kSlow > 128 {
		t.Errorf("chunk sizes fast=%d slow=%d escaped [1, n/8]", kFast, kSlow)
	}
	if base := coord.targetChunk(); kAnon != base {
		t.Errorf("anonymous worker chunk = %d, want the global target %d", kAnon, base)
	}
}

// TestStatsEndpoint: GET /stats serves a JSON snapshot whose progress,
// lease and backup fields track the run.
func TestStatsEndpoint(t *testing.T) {
	p := results.Params{Trials: 4, Seed: 6}
	_, url := startCoordinator(t, testSpec(t), p, 4, Config{Chunk: 4})
	prim := grantLease(t, url, "prim")
	// Two results per worker: the first anchors its clock, the second
	// yields an interval, so both earn a throughput estimate.
	postShard(t, url, p, prim.Run, prim.ID, 0)
	postShard(t, url, p, prim.Run, prim.ID, 1)
	bk := grantLease(t, url, "spec")
	if !bk.Backup || bk.Start != 2 || bk.End != 4 {
		t.Fatalf("second lease = %+v, want backup of [2,4)", bk)
	}
	postShard(t, url, p, bk.Run, bk.ID, 2)
	postShard(t, url, p, bk.Run, bk.ID, 3)

	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Run != prim.Run {
		t.Errorf("stats run = %q, want %q", st.Run, prim.Run)
	}
	if st.Shards != 4 || st.Done != 4 || st.Remaining != 0 {
		t.Errorf("stats progress = %d/%d/%d, want shards 4 done 4 remaining 0", st.Shards, st.Done, st.Remaining)
	}
	if st.Leases != 2 || st.BackupLeases != 1 {
		t.Errorf("stats leases = %d (backup %d), want 2 (1)", st.Leases, st.BackupLeases)
	}
	if st.BackupsIssued != 1 || st.BackupsWon != 2 {
		t.Errorf("stats backups issued/won = %d/%d, want 1/2", st.BackupsIssued, st.BackupsWon)
	}
	// Both workers posted two results, so both appear with throughput
	// estimates, sorted by name.
	if len(st.Workers) != 2 || st.Workers[0].Worker != "prim" || st.Workers[1].Worker != "spec" {
		t.Fatalf("stats workers = %+v, want prim then spec", st.Workers)
	}
	for _, ws := range st.Workers {
		if ws.ThroughputPerSec <= 0 {
			t.Errorf("worker %s throughput = %v, want > 0", ws.Worker, ws.ThroughputPerSec)
		}
	}
}

// TestResultRejection pins the coordinator's hard validation: each bad
// /results body is rejected with the right status and leaves shard state
// untouched.
func TestResultRejection(t *testing.T) {
	p := results.Params{Trials: 3}
	for _, tc := range []struct {
		name   string
		body   func(t *testing.T, l Lease) []byte
		status int
	}{
		{"malformed-json", func(t *testing.T, l Lease) []byte {
			return []byte("{this is not json\n")
		}, http.StatusBadRequest},
		{"unknown-lease", func(t *testing.T, l Lease) []byte {
			raw, _ := json.Marshal(ResultLine{Run: l.Run, Lease: "L999", ShardLine: experiment.ShardLine{Shard: 0, Value: encodeValue(t, p, 0)}})
			return append(raw, '\n')
		}, http.StatusGone},
		{"out-of-range-shard", func(t *testing.T, l Lease) []byte {
			raw, _ := json.Marshal(ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 99, Value: encodeValue(t, p, 0)}})
			return append(raw, '\n')
		}, http.StatusBadRequest},
		{"corrupt-payload", func(t *testing.T, l Lease) []byte {
			raw, _ := json.Marshal(ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 0, Value: json.RawMessage(`"banana"`)}})
			return append(raw, '\n')
		}, http.StatusBadRequest},
		{"empty-value", func(t *testing.T, l Lease) []byte {
			raw, _ := json.Marshal(ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 0}})
			return append(raw, '\n')
		}, http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			coord, url := startCoordinator(t, testSpec(t), p, 3, Config{Chunk: 3})
			l := grantLease(t, url, "naughty")
			if status := postBytes(t, url+"/results", tc.body(t, l), nil); status != tc.status {
				t.Errorf("status %d, want %d", status, tc.status)
			}
			if _, err := coord.Values(); err == nil {
				t.Error("rejected result completed the run")
			}
			select {
			case <-coord.Finished():
				t.Error("rejected result finished the run")
			default:
			}
		})
	}
}

// TestDuplicateResults: equal duplicate bytes are acknowledged
// idempotently (re-issued leases make them inevitable); unequal bytes
// for a done shard are a determinism violation that fails the run.
func TestDuplicateResults(t *testing.T) {
	p := results.Params{Trials: 2, Seed: 3}
	coord, url := startCoordinator(t, testSpec(t), p, 2, Config{Chunk: 2})
	l := grantLease(t, url, "dup")

	line := ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 0, Value: encodeValue(t, p, 0)}}
	var ack ResultAck
	if status := postDoc(t, url+"/results", line, &ack); status != http.StatusOK {
		t.Fatalf("first post: status %d", status)
	}
	if status := postDoc(t, url+"/results", line, &ack); status != http.StatusOK || ack.Accepted != 1 {
		t.Fatalf("equal duplicate: status %d ack %+v, want 200/accepted", status, ack)
	}

	bad := ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 0, Value: json.RawMessage("12345")}}
	if status := postDoc(t, url+"/results", bad, nil); status != http.StatusConflict {
		t.Fatalf("mismatched duplicate: status %d, want %d", status, http.StatusConflict)
	}
	select {
	case <-coord.Finished():
	default:
		t.Fatal("determinism violation did not finish (fail) the run")
	}
	if _, err := coord.Values(); err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Errorf("Values() error = %v, want determinism violation", err)
	}
}

// TestStragglerAfterCompletion: faults arriving after the last shard
// landed — a mismatched duplicate or an error line from a re-issued
// lease's straggler — are rejected per line but must not panic the
// handler, fail a completed run, or close the finished channel twice.
func TestStragglerAfterCompletion(t *testing.T) {
	p := results.Params{Trials: 2, Seed: 5}
	coord, url := startCoordinator(t, testSpec(t), p, 2, Config{Chunk: 2})
	l := grantLease(t, url, "fast")
	for shard := 0; shard < 2; shard++ {
		var ack ResultAck
		if status := postDoc(t, url+"/results", ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: shard, Value: encodeValue(t, p, shard)}}, &ack); status != http.StatusOK {
			t.Fatalf("shard %d: status %d", shard, status)
		}
	}
	select {
	case <-coord.Finished():
	default:
		t.Fatal("run not finished")
	}

	// A forged duplicate after completion: rejected with 409, run stays
	// successful.
	forged := ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 0, Value: json.RawMessage("999")}}
	if status := postDoc(t, url+"/results", forged, nil); status != http.StatusConflict {
		t.Errorf("post-completion forged duplicate: status %d, want %d", status, http.StatusConflict)
	}
	// A late error line after completion: acknowledged, run stays
	// successful.
	late := ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 1, Err: "late boom"}}
	if status := postDoc(t, url+"/results", late, nil); status != http.StatusOK {
		t.Errorf("post-completion error line: status %d, want 200", status)
	}
	if _, err := coord.Values(); err != nil {
		t.Errorf("completed run tainted by post-completion faults: %v", err)
	}
}

// TestShardErrorFailsRun: a streamed shard failure fails the run and
// subsequent lease polls say done, sending workers home.
func TestShardErrorFailsRun(t *testing.T) {
	p := results.Params{Trials: 2}
	coord, url := startCoordinator(t, testSpec(t), p, 2, Config{Chunk: 1})
	l := grantLease(t, url, "broken")
	line := ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 0, Err: "shard exploded"}}
	if status := postDoc(t, url+"/results", line, nil); status != http.StatusOK {
		t.Fatalf("error line: status %d", status)
	}
	if _, err := coord.Values(); err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Errorf("Values() error = %v, want shard failure", err)
	}
	if got := grantLease(t, url, "next"); !got.Done {
		t.Errorf("post-failure lease = %+v, want done", got)
	}
}

// TestRemoteBackendViaFactory: the factory registration resolves
// "remote" and a full engine run over the backend matches an in-process
// run of the same spec.
func TestRemoteBackendViaFactory(t *testing.T) {
	b, err := experiment.NewBackendOptions("remote", experiment.BackendOptions{Procs: 2, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "remote" {
		t.Fatalf("backend name = %q", b.Name())
	}
	if _, err := experiment.NewBackendOptions("carrier-pigeon", experiment.BackendOptions{}); err == nil {
		t.Error("unknown backend accepted")
	}
	names := experiment.BackendNames()
	want := []string{"inprocess", "remote", "subprocess"}
	if len(names) != len(want) {
		t.Fatalf("BackendNames() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("BackendNames() = %v, want %v", names, want)
		}
	}
}
