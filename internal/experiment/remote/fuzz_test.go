package remote

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"unicode/utf8"

	"specinterference/internal/experiment"
	"specinterference/internal/results"
)

// FuzzLeaseRequest round-trips the lease-side wire documents: whatever
// field values a worker or coordinator produces must survive
// encode → decode losslessly, because the scheduler's bookkeeping (and
// therefore crash tolerance) rides on these fields.
func FuzzLeaseRequest(f *testing.F) {
	f.Add("host-1234-1", "L7", int64(0), int64(5), int64(10000), false, false)
	f.Add("", "", int64(-3), int64(1<<40), int64(0), true, true)
	f.Add("wörker\x00", "L\n999", int64(7), int64(7), int64(-1), false, true)
	f.Fuzz(func(t *testing.T, worker, id string, start, end, expires int64, wait, done bool) {
		// Strict value equality holds for valid UTF-8 (everything the
		// protocol actually produces); arbitrary bytes may be normalized
		// to U+FFFD by encoding/json, so the universal property is
		// marshal→unmarshal→marshal idempotence.
		req := LeaseRequest{Worker: worker, Run: id}
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal LeaseRequest: %v", err)
		}
		var req2 LeaseRequest
		if err := json.Unmarshal(raw, &req2); err != nil {
			t.Fatalf("unmarshal LeaseRequest: %v", err)
		}
		if utf8.ValidString(worker) && utf8.ValidString(id) && req2 != req {
			t.Errorf("LeaseRequest round-trip: %+v -> %+v", req, req2)
		}
		raw2, err := json.Marshal(req2)
		if err != nil {
			t.Fatalf("re-marshal LeaseRequest: %v", err)
		}
		var req3 LeaseRequest
		if err := json.Unmarshal(raw2, &req3); err != nil {
			t.Fatalf("re-unmarshal LeaseRequest: %v", err)
		}
		if req3 != req2 {
			t.Errorf("LeaseRequest not a fixed point after normalization: %+v -> %+v", req2, req3)
		}

		lease := Lease{
			ID: id, Run: worker, Start: int(start), End: int(end),
			ExpiresMillis: expires, Wait: wait, Done: done,
			PollMillis: expires / 2,
		}
		raw, err = json.Marshal(lease)
		if err != nil {
			t.Fatalf("marshal Lease: %v", err)
		}
		var lease2 Lease
		if err := json.Unmarshal(raw, &lease2); err != nil {
			t.Fatalf("unmarshal Lease: %v", err)
		}
		if utf8.ValidString(id) && utf8.ValidString(worker) && lease2 != lease {
			t.Errorf("Lease round-trip: %+v -> %+v", lease, lease2)
		}
		raw2, err = json.Marshal(lease2)
		if err != nil {
			t.Fatalf("re-marshal Lease: %v", err)
		}
		var lease3 Lease
		if err := json.Unmarshal(raw2, &lease3); err != nil {
			t.Fatalf("re-unmarshal Lease: %v", err)
		}
		if lease3 != lease2 {
			t.Errorf("Lease not a fixed point after normalization: %+v -> %+v", lease2, lease3)
		}
	})
}

// FuzzResultLine feeds arbitrary bytes to a live coordinator's /results
// endpoint: the coordinator must never panic, must answer with a
// protocol status (2xx accept, 400/409/410 reject), and must keep its
// shard bookkeeping consistent — fuzz bytes may complete shards (the
// seeds include valid lines) but must never complete more shards than
// exist or corrupt a completed value.
func FuzzResultLine(f *testing.F) {
	// The fuzz coordinator's run token is pinned to "RT" (the test owns
	// the unexported field) so static seeds can exercise the accept path;
	// seeds with other tokens cover the 410 cross-run rejection.
	valid, _ := json.Marshal(ResultLine{Run: "RT", Lease: "L1", ShardLine: experiment.ShardLine{Shard: 0, Value: json.RawMessage("42")}})
	errLine, _ := json.Marshal(ResultLine{Run: "RT", Lease: "L1", ShardLine: experiment.ShardLine{Shard: 1, Err: "boom"}})
	f.Add(append(valid, '\n'))
	f.Add(errLine)
	f.Add([]byte("{\"run\":\"RT\",\"lease\":\"L1\",\"shard\":99,\"value\":3}\n"))
	f.Add([]byte("{\"run\":\"RT\",\"lease\":\"L999\",\"shard\":0,\"value\":3}\n"))
	f.Add([]byte("{\"run\":\"other-run\",\"lease\":\"L1\",\"shard\":0,\"value\":3}\n"))
	f.Add([]byte("{\"lease\":\"L1\",\"shard\":0,\"value\":3}\n"))
	f.Add([]byte("not json at all"))
	f.Add([]byte("{\"run\":\"RT\",\"lease\":\"L1\",\"shard\":0,\"value\":\"banana\"}\n"))
	f.Add(bytes.Repeat([]byte("{}\n"), 50))
	f.Add([]byte("\x00\xff\xfe{\n\n"))

	f.Fuzz(func(t *testing.T, body []byte) {
		coord, err := NewCoordinator(fuzzSpec(), results.Params{Trials: 3}, 3, Config{Chunk: 3})
		if err != nil {
			t.Fatal(err)
		}
		coord.run = "RT"
		srv := httptest.NewServer(coord.Handler())
		defer srv.Close()
		// Issue L1 so seeds that reference it exercise the accept path.
		resp, err := http.Post(srv.URL+"/lease", "application/json", bytes.NewReader([]byte(`{"worker":"fuzz","run":"RT"}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()

		resp, err = http.Post(srv.URL+"/results", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusBadRequest, http.StatusConflict, http.StatusGone:
		default:
			t.Errorf("unexpected status %d for body %q", resp.StatusCode, body)
		}

		// Bookkeeping invariants survive arbitrary input.
		coord.mu.Lock()
		doneCount := 0
		for i, d := range coord.done {
			if d {
				doneCount++
				if coord.values[i] == nil || len(coord.raw[i]) == 0 {
					t.Errorf("shard %d done without value/raw", i)
				}
				var decoded float64
				if err := json.Unmarshal(coord.raw[i], &decoded); err != nil {
					t.Errorf("shard %d accepted undecodable bytes %q", i, coord.raw[i])
				}
			}
		}
		if coord.remaining != coord.n-doneCount {
			t.Errorf("remaining = %d, want %d", coord.remaining, coord.n-doneCount)
		}
		coord.mu.Unlock()
	})
}

// fuzzSpec builds a fresh spec per fuzz iteration (Register would panic
// on duplicates; the fuzz coordinator only needs NewShard).
func fuzzSpec() *experiment.Spec {
	return &experiment.Spec{
		Name:     "fuzz-results",
		Plan:     func(p results.Params) (int, error) { return p.Trials, nil },
		NewShard: func() any { return new(float64) },
	}
}

// TestResultLineRoundTrip pins the ResultLine wire shape: the embedded
// ShardLine fields flatten into the same object as the run and lease
// tags, and values survive untouched.
func TestResultLineRoundTrip(t *testing.T) {
	in := ResultLine{Run: "R1", Lease: "L3", ShardLine: experiment.ShardLine{Shard: 7, Value: json.RawMessage(`{"x":1.5}`)}}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"run":"R1","lease":"L3","shard":7,"value":{"x":1.5}}`
	if string(raw) != want {
		t.Errorf("wire form %s, want %s", raw, want)
	}
	var out ResultLine
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round-trip %+v -> %+v", in, out)
	}
}
