package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"specinterference/internal/experiment"
)

// jobFetchTimeout bounds how long a starting worker waits for the
// coordinator to come up — the two-terminal quickstart should survive
// starting the worker a few seconds before the coordinator.
const jobFetchTimeout = 10 * time.Second

// workerSeq disambiguates multiple in-process workers (tests run several
// RunWorker goroutines against one httptest coordinator).
var workerSeq atomic.Int64

// shardDelayEnv is a fault-injection shim: a time.Duration string that
// makes this worker sleep that long before streaming each shard result,
// turning it into an artificial straggler. The CI backup-execution gate
// sets it on one of two local workers (see slowWorkerEnv in remote.go)
// so speculative backup leases are exercised on every push; never set in
// normal operation. Scheduling only — a slowed worker's results are
// byte-identical, just late.
const shardDelayEnv = "SPECINTERFERENCE_REMOTE_SHARD_DELAY"

// RunWorker serves one coordinator until its job completes: fetch the
// job, prepare per-process state once, then loop — lease a chunk, run
// its shards through the shared experiment.RunShardLines path (workers
// goroutines, 0 = serial), stream each result to /results as it
// completes, renew the lease at a third of its TTL while the chunk is in
// flight. A lost lease (the coordinator re-issued it after a stall)
// cancels the chunk and moves on; the coordinator's byte-equality dedupe
// makes any straggler results it already posted harmless. A 410 on the
// lease poll means a different run token answers at this address — a
// restarted coordinator (with -journal, the same run resumed under a
// fresh token): the worker re-fetches the job and keeps serving when it
// is the same experiment at the same params. Returns nil when the
// coordinator reports the job done.
func RunWorker(ctx context.Context, connect string, workers int, logw io.Writer) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if logw == nil {
		logw = io.Discard
	}
	base := strings.TrimRight(connect, "/")
	if base == "" {
		return fmt.Errorf("remote: worker needs a coordinator URL (-connect)")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{}

	job, err := fetchJob(ctx, client, base)
	if err != nil {
		return err
	}
	spec, err := experiment.Lookup(job.Experiment)
	if err != nil {
		return fmt.Errorf("remote: coordinator serves %w", err)
	}
	state, err := spec.PrepareState(job.Params)
	if err != nil {
		return err
	}
	lease := leaseTTL(job)
	hostname, _ := os.Hostname()
	worker := fmt.Sprintf("%s-%d-%d", hostname, os.Getpid(), workerSeq.Add(1))
	fmt.Fprintf(logw, "remote-worker %s: serving %s (%d shards) from %s\n", worker, job.Experiment, job.Shards, base)
	delay, _ := time.ParseDuration(os.Getenv(shardDelayEnv))
	if delay > 0 {
		fmt.Fprintf(logw, "remote-worker %s: fault shim active: %v delay per shard\n", worker, delay)
	}

	resyncs := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, err := pollLease(ctx, client, base, worker, job.Run)
		if err != nil {
			switch {
			case isGone(err) && ctx.Err() == nil:
				// A different run token answers here now: the coordinator
				// restarted. Re-sync and keep serving when it is the same
				// run shape; prepared state stays valid because params are
				// identical.
				if resyncs++; resyncs > 5 {
					return fmt.Errorf("remote: %s keeps rejecting this worker's run token: %w", base, err)
				}
				nj, jerr := fetchJob(ctx, client, base)
				if jerr != nil {
					return jerr
				}
				if nj.Experiment != job.Experiment || paramsSignature(nj.Params) != paramsSignature(job.Params) || nj.Shards != job.Shards {
					return fmt.Errorf("remote: coordinator at %s now serves a different run (%s, %d shards); this worker was serving %s (%d shards)",
						base, nj.Experiment, nj.Shards, job.Experiment, job.Shards)
				}
				fmt.Fprintf(logw, "remote-worker %s: coordinator restarted; rejoining as run %s\n", worker, nj.Run)
				job = nj
				lease = leaseTTL(job)
				continue
			case isTransportErr(err) && ctx.Err() == nil:
				// The coordinator is ephemeral — it serves one run and
				// exits. Gone mid-poll means the run completed (or was
				// aborted) and there is nothing left to serve.
				fmt.Fprintf(logw, "remote-worker %s: coordinator gone (%v); exiting\n", worker, err)
				return nil
			}
			return err
		}
		resyncs = 0
		switch {
		case grant.Done:
			return nil
		case grant.Wait:
			poll := time.Duration(grant.PollMillis) * time.Millisecond
			if poll <= 0 {
				poll = 100 * time.Millisecond
			}
			select {
			case <-time.After(poll):
			case <-ctx.Done():
				return ctx.Err()
			}
		default:
			if err := serveChunk(ctx, client, base, spec, state, job, grant, workers, lease, delay); err != nil {
				return err
			}
		}
	}
}

// serveChunk runs one leased chunk, streaming results and renewing the
// lease until the chunk completes or the lease is lost. delay > 0 is the
// shardDelayEnv fault shim: sleep before streaming each result (the
// renew loop keeps the lease alive regardless, so a slowed worker is a
// straggler, not a crash).
func serveChunk(ctx context.Context, client *http.Client, base string, spec *experiment.Spec, state any, job Job, grant Lease, workers int, lease, delay time.Duration) error {
	chunkCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Renew at a third of the TTL. A renewal the coordinator refuses
	// (410: expired, possibly re-issued) loses the lease immediately —
	// someone else owns the chunk now. Transport blips are retried on the
	// next tick: a single dropped packet must not throw away a chunk the
	// coordinator still considers ours; two consecutive failures mean
	// two-thirds of the TTL passed unrenewed, so the lease is as good as
	// gone and the chunk is abandoned conservatively.
	renewDone := make(chan struct{})
	defer close(renewDone)
	var leaseLost atomic.Bool
	go func() {
		t := time.NewTicker(lease / 3)
		defer t.Stop()
		transportFails := 0
		for {
			select {
			case <-t.C:
				var renewed Renewal
				err := postJSON(chunkCtx, client, base+"/renew", RenewRequest{ID: grant.ID, Run: job.Run}, &renewed)
				switch {
				case err == nil:
					transportFails = 0
					continue
				case isTransportErr(err) && chunkCtx.Err() == nil:
					if transportFails++; transportFails < 2 {
						continue
					}
				}
				leaseLost.Store(true)
				cancel()
				return
			case <-renewDone:
				return
			case <-chunkCtx.Done():
				return
			}
		}
	}()

	var transportErr error
	runErr := experiment.RunShardLines(chunkCtx, spec, state, job.Params, grant.Start, grant.End, workers,
		func(sl experiment.ShardLine) error {
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-chunkCtx.Done():
					return chunkCtx.Err()
				}
			}
			var ack ResultAck
			if err := postLine(chunkCtx, client, base+"/results", ResultLine{Run: job.Run, Lease: grant.ID, ShardLine: sl}, &ack); err != nil {
				transportErr = err
				return err
			}
			return nil
		})
	switch {
	case leaseLost.Load():
		// The chunk belongs to another worker now. Both the run-shard
		// error (a cancelled context) and any post that failed on the
		// cancelled context are expected, not fatal — including a shard
		// that outlived the stall and failed to stream. Go lease
		// something else; the re-issued chunk covers whatever was lost.
		return nil
	case transportErr != nil:
		if isGone(transportErr) {
			// The lease — or the whole run token — went stale mid-stream
			// (a re-issue or a coordinator restart). Abandon the chunk;
			// the lease loop re-syncs, and results already accepted stay
			// accepted.
			return nil
		}
		if isTransportErr(transportErr) && ctx.Err() == nil {
			// The coordinator became unreachable mid-stream — killed, or
			// finished and gone. Abandon the chunk and let the lease loop
			// classify: a coordinator that stays gone is a clean exit, a
			// restarted one answers the next poll with 410 and the worker
			// rejoins its resumed run.
			return nil
		}
		return fmt.Errorf("remote: stream results for lease %s: %w", grant.ID, transportErr)
	case runErr != nil && ctx.Err() != nil:
		return ctx.Err()
	}
	// A genuine shard failure was already streamed to the coordinator; it
	// fails the run and the next lease poll returns Done. Keep serving —
	// the worker's job is transport, the coordinator owns the verdict.
	return nil
}

// pollLease asks for the next chunk, absorbing brief transport blips
// (a few retries) so one dropped packet doesn't kill a worker; a
// persistently unreachable coordinator surfaces as the final transport
// error for the caller to classify. Retrying is safe even when the
// first request's response was lost after the grant was made: lease
// acquisition is idempotent per worker name — re-polling while holding
// an unexpired, unstarted grant returns the same grant instead of
// orphaning the first chunk under a dead lease for a full TTL.
func pollLease(ctx context.Context, client *http.Client, base, worker, run string) (Lease, error) {
	var grant Lease
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(300 * time.Millisecond):
			case <-ctx.Done():
				return Lease{}, ctx.Err()
			}
		}
		err = postJSON(ctx, client, base+"/lease", LeaseRequest{Worker: worker, Run: run}, &grant)
		if err == nil || !isTransportErr(err) {
			return grant, err
		}
	}
	return Lease{}, err
}

// leaseTTL is the renewal deadline a job advertises (falling back to
// the default when a coordinator omits it).
func leaseTTL(job Job) time.Duration {
	lease := time.Duration(job.LeaseMillis) * time.Millisecond
	if lease <= 0 {
		lease = DefaultLease
	}
	return lease
}

// isTransportErr reports whether err is a network-level failure (the
// coordinator unreachable) rather than a protocol rejection it answered
// with; client.Do wraps every transport failure in *url.Error.
func isTransportErr(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue)
}

// statusError is a protocol rejection: the coordinator was reachable
// and answered with a non-2xx status.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return e.msg }

// isGone reports whether err is a 410 rejection — an expired lease, or
// a run-token mismatch from a restarted coordinator.
func isGone(err error) bool {
	var se *statusError
	return errors.As(err, &se) && se.status == http.StatusGone
}

// fetchJob GETs /job, retrying while the coordinator is still starting.
func fetchJob(ctx context.Context, client *http.Client, base string) (Job, error) {
	deadline := time.Now().Add(jobFetchTimeout)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/job", nil)
		if err != nil {
			return Job{}, err
		}
		resp, err := client.Do(req)
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return Job{}, fmt.Errorf("remote: %s/job: %s", base, resp.Status)
			}
			var job Job
			if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
				return Job{}, fmt.Errorf("remote: decode job: %w", err)
			}
			return job, nil
		}
		if ctx.Err() != nil {
			return Job{}, ctx.Err()
		}
		if time.Now().After(deadline) {
			return Job{}, fmt.Errorf("remote: coordinator unreachable: %w", err)
		}
		select {
		case <-time.After(200 * time.Millisecond):
		case <-ctx.Done():
			return Job{}, ctx.Err()
		}
	}
}

// postJSON POSTs a JSON document and decodes the JSON response,
// converting non-2xx statuses into errors.
func postJSON(ctx context.Context, client *http.Client, url string, body, out any) error {
	return post(ctx, client, url, mustJSON(body), out)
}

// postLine POSTs one newline-terminated result line.
func postLine(ctx context.Context, client *http.Client, url string, line ResultLine, out *ResultAck) error {
	return post(ctx, client, url, append(mustJSON(line), '\n'), out)
}

func post(ctx context.Context, client *http.Client, url string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return &statusError{
			status: resp.StatusCode,
			msg:    fmt.Sprintf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(raw)),
		}
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("%s: decode response: %w", url, err)
		}
	}
	return nil
}

// RunWorkerIfRequested turns the process into a remote HTTP worker when
// it was started in -remote-worker mode (argv marker or the mirror env
// var set by locally spawned workers) and never returns in that case; it
// returns without side effects otherwise. Registered with
// experiment.RegisterWorkerMode, so every binary calling
// experiment.RunWorkerIfRequested (all experiment CLIs, resultstore,
// test binaries) serves this mode too.
func RunWorkerIfRequested() {
	if os.Getenv(workerEnvVar) == "" && !(len(os.Args) > 1 && os.Args[1] == WorkerArg) {
		return
	}
	args := os.Args[1:]
	if len(args) > 0 && args[0] == WorkerArg {
		args = args[1:]
	}
	fs := flag.NewFlagSet("remote-worker", flag.ExitOnError)
	connect := fs.String("connect", "", "coordinator base URL, e.g. http://host:8080 (required)")
	parallel := fs.Int("parallel", 0, "shard goroutines inside this worker (0 = serial)")
	fs.Parse(args)
	if *connect == "" {
		fmt.Fprintln(os.Stderr, "remote-worker: -connect URL is required")
		os.Exit(2)
	}
	if err := RunWorker(context.Background(), *connect, *parallel, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "remote-worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}
