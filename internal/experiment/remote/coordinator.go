package remote

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"specinterference/internal/experiment"
	"specinterference/internal/results"
)

// DefaultLease is the lease TTL when none is configured: long enough
// that a healthy worker renewing at TTL/3 never loses a lease to
// scheduling noise, short enough that a crashed worker's chunk is back
// in the queue quickly.
const DefaultLease = 10 * time.Second

// Config tunes a Coordinator.
type Config struct {
	// Chunk pins the shards-per-lease granularity. 0 means adaptive:
	// grants start at n/32 (clamped to at least 1) and then track the
	// observed per-shard completion cost, aiming for one chunk per
	// quarter lease TTL within [1, n/8] — so cheap shards coalesce into
	// bigger grants and expensive ones (AD-ordering cells calibrate
	// twice) stop mispricing a fixed split. Chunking only ever moves
	// scheduling, never values.
	Chunk int
	// Lease is the lease TTL (0 = DefaultLease).
	Lease time.Duration
	// Journal is the path of the shard-result journal file ("" = no
	// journal): a run header plus every accepted result, appended as
	// JSONL. An existing compatible journal is replayed on startup so a
	// restarted coordinator serves only the remainder; an incompatible
	// one (different experiment, params signature or shard count) is a
	// hard startup error, never a silent partial reuse.
	Journal string
	// OnShardDone, when non-nil, fires once per newly completed shard
	// (the engine's progress hook), replayed journal shards included.
	// Duplicate results never re-fire it.
	OnShardDone func()
	// Now overrides the clock, for tests (nil = time.Now).
	Now func() time.Time
}

// leaseState is one outstanding grant.
type leaseState struct {
	id      string
	seq     int // numeric id, for deterministic oldest-grant tie-breaks
	worker  string
	span    experiment.Span
	granted time.Time // grant time; backup issue picks the oldest grant
	expires time.Time // hard re-issue cliff: last renewal + TTL
	// lastBeat is the last sign of life under this lease (grant, renew
	// or accepted result); the adaptive re-issue deadline hangs off it.
	lastBeat time.Time
	// lastRenew anchors the renew-cadence estimate (initially the grant
	// time). Kept separate from lastBeat: result arrivals are beats but
	// not renewals, and folding them in would collapse the cadence to
	// the inter-result interval and sweep healthy workers mid-chunk.
	lastRenew time.Time
	// lastProgress is the previous accepted result's arrival, for the
	// per-shard cost estimate. Anchored at the lease's first accepted
	// result — not the grant — so a worker that fetched a grant and then
	// idled (wait/poll loop, job fetch) doesn't fold the wait into the
	// cost EWMA and collapse the adaptive chunk size.
	lastProgress time.Time
	// started is set once a result arrived under this lease; an
	// unstarted grant is returned verbatim to a re-polling worker, so a
	// lease response lost in transit never orphans a chunk for a TTL.
	started bool
	// backup marks a speculative backup lease (a second copy of another
	// grant's undone remainder, issued to an idle worker when the
	// pending queue drained). The flag persists through promotion, for
	// the backups-won/wasted counters.
	backup bool
	// backupID, on a primary lease, names its live backup lease ("" =
	// none); at most one backup exists per span at a time. primaryID, on
	// a backup lease, names the primary it shadows. When either side of
	// the pair is dropped, the survivor covers the span alone: its
	// linkage is cleared and the dropped lease's remainder is NOT
	// requeued, so the pending queue never holds a third copy.
	backupID  string
	primaryID string
}

// Coordinator owns one experiment run's shard state machine: a queue of
// unleased spans, the outstanding leases, and the accepted results. It
// is an http.Handler serving the wire protocol; every mutation happens
// under one mutex, so concurrent workers see a consistent queue.
type Coordinator struct {
	spec   *experiment.Spec
	params results.Params
	n      int
	run    string // per-run random token every request must echo
	chunk  int    // pinned grant size, or the adaptive starting size
	fixed  bool   // Config.Chunk pinned the grant size
	maxCh  int    // adaptive grant-size ceiling
	lease  time.Duration
	onDone func()
	now    func() time.Time

	// Everything below mu is mutable run state; the "guarded by mu"
	// comments are load-bearing — speclint's lockdiscipline analyzer
	// enforces that annotated fields are only touched under the mutex or
	// in functions marked //speclint:holds mu.
	mu       sync.Mutex
	pending  []experiment.Span          // unleased spans, FIFO; guarded by mu
	leases   map[string]*leaseState     // outstanding grants; guarded by mu
	issued   map[string]experiment.Span // guarded by mu
	byWorker map[string]string          // worker name -> its latest lease id; guarded by mu
	cadence  map[string]time.Duration   // worker name -> EWMA renew interval; guarded by mu
	// throughput is each worker's accepted-shards-per-second EWMA; grant
	// sizes scale with it, so fast machines get proportionally larger
	// adaptive chunks. byWorker, cadence and throughput entries are
	// pruned when the worker's last lease is swept, keeping a long-lived
	// coordinator's maps bounded by the live worker set.
	throughput map[string]float64 // guarded by mu
	costEWMA   time.Duration      // observed per-shard completion cost; guarded by mu
	nextID     int                // guarded by mu
	// Backup-execution counters, for the end-of-run summary and /stats:
	// leases issued speculatively, shards whose first accepted result
	// arrived under a backup lease, and byte-equal duplicates a backup
	// streamed after the shard was already done.
	backupsIssued int      // guarded by mu
	backupsWon    int      // guarded by mu
	backupsWasted int      // guarded by mu
	done          []bool   // per-shard completion; guarded by mu
	values        []any    // decoded shard values, by index; guarded by mu
	raw           [][]byte // accepted result bytes, for the byte-equality assertion; guarded by mu
	remaining     int      // guarded by mu
	replayed      int      // shards restored from the journal at startup; guarded by mu
	journal       *journal // guarded by mu
	fatal         error    // guarded by mu
	// finished is closed exactly once (under mu) and waited on without
	// it; channel close/receive has its own happens-before edge, so the
	// field is deliberately not annotated.
	finished chan struct{}
}

// newRunToken mints the per-run random token that scopes every lease,
// renewal and result line to this coordinator instance: predictable
// lease ids (L1, L2, ...) collide across runs, so a worker left talking
// to a restarted coordinator on the same port must be told "different
// run" (410) instead of having its stale payloads accepted.
func newRunToken() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("remote: run token entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// NewCoordinator builds the coordinator for shards [0, n) of spec at
// params, replaying cfg.Journal first when one is configured. The
// caller serves Handler() somewhere workers can reach, waits on
// Finished, and Closes the coordinator when done with it.
//
// Construction-time exclusivity: the coordinator is not published to any
// other goroutine until this returns, so guarded fields are written
// without the mutex here (hence the holds annotation).
//
//speclint:holds mu
func NewCoordinator(spec *experiment.Spec, p results.Params, n int, cfg Config) (*Coordinator, error) {
	chunk := cfg.Chunk
	fixed := chunk > 0
	if !fixed {
		chunk = n / 32
		if chunk < 1 {
			chunk = 1
		}
	}
	maxCh := n / 8
	if maxCh < chunk {
		maxCh = chunk
	}
	lease := cfg.Lease
	if lease <= 0 {
		lease = DefaultLease
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	c := &Coordinator{
		spec: spec, params: p, n: n,
		run:   newRunToken(),
		chunk: chunk, fixed: fixed, maxCh: maxCh, lease: lease,
		onDone: cfg.OnShardDone, now: now,
		leases:     map[string]*leaseState{},
		issued:     map[string]experiment.Span{},
		byWorker:   map[string]string{},
		cadence:    map[string]time.Duration{},
		throughput: map[string]float64{},
		done:       make([]bool, n),
		values:     make([]any, n),
		raw:        make([][]byte, n),
		remaining:  n,
		finished:   make(chan struct{}),
	}
	if cfg.Journal != "" {
		j, replayed, err := openJournal(cfg.Journal, spec, p, n, c.run, c.replayEntry)
		if err != nil {
			return nil, err
		}
		c.journal = j
		c.replayed = replayed
	}
	// The queue holds only what is left to serve: the contiguous
	// not-done sub-spans of [0, n) — all of it on a fresh run, the
	// remainder after a journal replay.
	c.requeueUndone(experiment.Span{Start: 0, End: n})
	if c.remaining == 0 {
		close(c.finished)
	}
	return c, nil
}

// replayEntry restores one journaled shard result during startup — the
// same acceptance a live result gets, minus re-journaling. Any defect
// (a failure line, an out-of-range index, undecodable bytes, two
// entries for one shard that disagree) makes the whole journal corrupt.
// Runs only inside NewCoordinator, before the coordinator is published
// to any other goroutine.
//
//speclint:holds mu
func (c *Coordinator) replayEntry(sl experiment.ShardLine) error {
	if sl.Err != "" {
		return fmt.Errorf("entry for shard %d records a failure; failures are never journaled", sl.Shard)
	}
	if sl.Shard < 0 || sl.Shard >= c.n {
		return fmt.Errorf("entry shard %d out of range [0,%d)", sl.Shard, c.n)
	}
	if c.done[sl.Shard] {
		if bytes.Equal(c.raw[sl.Shard], sl.Value) {
			return nil
		}
		return fmt.Errorf("shard %d journaled twice with different bytes", sl.Shard)
	}
	v, err := experiment.DecodeShard(c.spec, sl.Value)
	if err != nil {
		return fmt.Errorf("shard %d: undecodable journaled value: %w", sl.Shard, err)
	}
	c.values[sl.Shard] = v
	c.raw[sl.Shard] = append([]byte(nil), sl.Value...)
	c.done[sl.Shard] = true
	c.remaining--
	if c.onDone != nil {
		c.onDone()
	}
	return nil
}

// Replayed reports how many shards the startup journal replay restored.
func (c *Coordinator) Replayed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replayed
}

// Close releases the coordinator's journal handle (a no-op without one).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.journal
	c.journal = nil
	return j.close()
}

// Finished is closed when every shard has a result or the run failed.
func (c *Coordinator) Finished() <-chan struct{} { return c.finished }

// Values returns the decoded shard values in index order once the run
// finished, or the fatal error that stopped it.
func (c *Coordinator) Values() ([]any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fatal != nil {
		return nil, c.fatal
	}
	if c.remaining != 0 {
		return nil, fmt.Errorf("remote: run incomplete: %d of %d shards outstanding", c.remaining, c.n)
	}
	return c.values, nil
}

// fail records the first fatal error and releases waiters. Once the run
// is over — failed or already complete — further faults are no-ops: a
// straggler posting garbage after the last shard landed must not close
// finished twice or retroactively taint a completed run (its line is
// still rejected by the caller). Callers hold mu.
//
//speclint:holds mu
func (c *Coordinator) fail(err error) {
	if c.fatal != nil || c.remaining == 0 {
		return
	}
	c.fatal = err
	close(c.finished)
}

// sweepExpired reclaims every lease past its re-issue deadline: the
// contiguous runs of not-yet-done shards inside its span go back in the
// queue for other workers — this is the crash tolerance and the work
// stealing in one move. An expired worker's byWorker, cadence and
// throughput entries go with it, so a long-lived coordinator's maps stay
// bounded by the live worker set. Expired leases are dropped in grant
// order, not map-iteration order: the drop order decides where each
// lease's undone remainder lands in the pending queue, and serving
// requeued spans oldest-grant-first keeps the schedule reproducible
// run to run (speclint's nondeterminism analyzer flags the unsorted
// map-range form). Callers hold mu.
//
//speclint:holds mu
func (c *Coordinator) sweepExpired() {
	now := c.now()
	var expired []*leaseState
	for _, l := range c.leases {
		if !now.Before(c.reissueDeadline(l)) {
			expired = append(expired, l)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].seq < expired[j].seq })
	for _, l := range expired {
		c.dropLease(l, true)
	}
}

// dropLease removes one lease and requeues its undone remainder — unless
// the lease's live backup (or, for a backup, its live primary) still
// covers the span, in which case the survivor is unlinked and owns the
// span alone: a backup's span bounds every shard of its primary that was
// undone at issue time, so whichever copy survives covers everything
// still outstanding, and requeueing would put a third copy of the work
// in play. When both sides of a pair expire in one sweep, the first one
// dropped sees its counterpart still live and skips the requeue; the
// second has been unlinked and requeues — exactly once either way.
// pruneWorker additionally clears the worker's cadence and throughput
// estimates (the sweep path: the worker is presumed gone); the
// abandoned-grant release path keeps them, since that worker is alive
// and about to be granted more work. Callers hold mu.
//
//speclint:holds mu
func (c *Coordinator) dropLease(l *leaseState, pruneWorker bool) {
	delete(c.leases, l.id)
	covered := false
	if l.backupID != "" {
		if b := c.leases[l.backupID]; b != nil {
			b.primaryID = ""
			covered = true
		}
		l.backupID = ""
	}
	if l.primaryID != "" {
		if p := c.leases[l.primaryID]; p != nil {
			p.backupID = ""
			covered = true
		}
		l.primaryID = ""
	}
	if !covered {
		c.requeueUndone(l.span)
	}
	if l.worker != "" && c.byWorker[l.worker] == l.id {
		delete(c.byWorker, l.worker)
		if pruneWorker {
			delete(c.cadence, l.worker)
			delete(c.throughput, l.worker)
		}
	}
}

// reissueDeadline is when an unrenewed lease's work goes back in the
// queue: the hard TTL cliff, tightened for a worker whose observed
// renew cadence says it should have checked in well before it — a fast
// heartbeat that stops is a crash signal worth acting on early. The
// adaptive deadline is three missed beats past the last sign of life,
// bounded to [TTL/2, TTL] (the floor keeps a worker renewing at the
// standard TTL/3 tick safe through several slow beats), and only ever
// moves re-issue timing, never result acceptance. Callers hold mu.
//
//speclint:holds mu
func (c *Coordinator) reissueDeadline(l *leaseState) time.Time {
	deadline := l.expires
	if cad, ok := c.cadence[l.worker]; ok && l.worker != "" {
		grace := 3 * cad
		if min := c.lease / 2; grace < min {
			grace = min
		}
		if grace > c.lease {
			grace = c.lease
		}
		if d := l.lastBeat.Add(grace); d.Before(deadline) {
			deadline = d
		}
	}
	return deadline
}

// requeueUndone pushes the contiguous not-done sub-spans of sp back onto
// the pending queue. Callers hold mu.
//
//speclint:holds mu
func (c *Coordinator) requeueUndone(sp experiment.Span) {
	start := -1
	for i := sp.Start; i <= sp.End; i++ {
		if i < sp.End && !c.done[i] {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			c.pending = append(c.pending, experiment.Span{Start: start, End: i})
			start = -1
		}
	}
}

// targetChunk is the shards-per-grant size: the configured size when
// pinned, otherwise adapted so one chunk costs about a quarter of the
// lease TTL at the observed per-shard completion cost. Callers hold mu.
//
//speclint:holds mu
func (c *Coordinator) targetChunk() int {
	if c.fixed || c.costEWMA <= 0 {
		return c.chunk
	}
	k := int((c.lease / 4) / c.costEWMA)
	if k < 1 {
		k = 1
	}
	if k > c.maxCh {
		k = c.maxCh
	}
	return k
}

// targetChunkFor is the grant size for one worker: the global adaptive
// target scaled by the worker's observed throughput relative to the
// fleet mean, within [1/4, 4]x and the usual [1, n/8] clamp — a machine
// completing shards four times faster than average gets grants up to
// four times larger, and a slow one stops being handed TTL-sized chunks
// it can't finish. Pinned -chunk, unknown workers and single-worker
// fleets (no peer to compare against) all fall back to the global
// target. Scheduling only, never values. Callers hold mu.
//
//speclint:holds mu
func (c *Coordinator) targetChunkFor(worker string) int {
	k := c.targetChunk()
	if c.fixed || worker == "" || len(c.throughput) < 2 {
		return k
	}
	tp, ok := c.throughput[worker]
	if !ok || tp <= 0 {
		return k
	}
	var sum float64
	for _, t := range c.throughput {
		sum += t
	}
	mean := sum / float64(len(c.throughput))
	if mean <= 0 {
		return k
	}
	f := tp / mean
	if f < 0.25 {
		f = 0.25
	}
	if f > 4 {
		f = 4
	}
	k = int(float64(k) * f)
	if k < 1 {
		k = 1
	}
	if k > c.maxCh {
		k = c.maxCh
	}
	return k
}

// observeProgress folds one accepted shard completion into the adaptive
// scheduling estimates: the global per-shard cost EWMA and the worker's
// throughput EWMA. Callers pass only result-to-result intervals — the
// lease's first accepted result merely anchors lastProgress (see
// leaseState) — and a result from an already-expired lease carries no
// usable timing. Callers hold mu.
//
//speclint:holds mu
func (c *Coordinator) observeProgress(l *leaseState, now time.Time) {
	if l == nil {
		return
	}
	dt := now.Sub(l.lastProgress)
	l.lastProgress = now
	if dt < time.Microsecond {
		dt = time.Microsecond // instantaneous arrivals still mean "cheap"
	}
	if c.costEWMA <= 0 {
		c.costEWMA = dt
	} else {
		c.costEWMA = (3*c.costEWMA + dt) / 4
	}
	if l.worker != "" {
		rate := float64(time.Second) / float64(dt)
		if old, ok := c.throughput[l.worker]; ok {
			c.throughput[l.worker] = (3*old + rate) / 4
		} else {
			c.throughput[l.worker] = rate
		}
	}
}

// undoneBounds is the tightest span covering sp's not-done shards;
// ok is false when every shard of sp is complete. Callers hold mu.
//
//speclint:holds mu
func (c *Coordinator) undoneBounds(sp experiment.Span) (experiment.Span, bool) {
	lo, hi := -1, -1
	for i := sp.Start; i < sp.End; i++ {
		if !c.done[i] {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	if lo < 0 {
		return experiment.Span{}, false
	}
	return experiment.Span{Start: lo, End: hi + 1}, true
}

// newLease mints and registers one grant. Callers hold mu.
//
//speclint:holds mu
func (c *Coordinator) newLease(worker string, sp experiment.Span, now time.Time) *leaseState {
	c.nextID++
	l := &leaseState{
		id:  fmt.Sprintf("L%d", c.nextID),
		seq: c.nextID, worker: worker, span: sp,
		granted: now, expires: now.Add(c.lease),
		lastBeat: now, lastRenew: now, lastProgress: now,
	}
	c.leases[l.id] = l
	c.issued[l.id] = sp
	if worker != "" {
		c.byWorker[worker] = l.id
	}
	return l
}

// grantBackup is speculative backup execution, the tail-latency half of
// the MapReduce playbook the byte-equality dedup already paid for: when
// the pending queue is empty but grants are still in flight, an idle
// worker is handed a second copy of the oldest in-flight grant's undone
// remainder instead of a Wait. Whichever copy lands first wins through
// the normal dedup (a mismatch is still the 409 determinism tripwire);
// the loser's duplicates are acknowledged and counted as wasted. Fences:
// never the span's current holder, at most one live backup per span
// (neither a backed-up primary nor a live backup is a candidate), and an
// anonymous requester gets nothing (the holder fence needs an identity).
// Returns nil when no grant qualifies. Callers hold mu.
//
//speclint:holds mu
func (c *Coordinator) grantBackup(worker string, now time.Time) *leaseState {
	if worker == "" {
		return nil
	}
	var oldest *leaseState
	var span experiment.Span
	for _, l := range c.leases {
		if l.worker == worker || l.backupID != "" || l.primaryID != "" {
			continue
		}
		sp, ok := c.undoneBounds(l.span)
		if !ok {
			continue // fully done, just not yet expired
		}
		if oldest == nil || l.granted.Before(oldest.granted) ||
			(l.granted.Equal(oldest.granted) && l.seq < oldest.seq) {
			oldest, span = l, sp
		}
	}
	if oldest == nil {
		return nil
	}
	b := c.newLease(worker, span, now)
	b.backup = true
	b.primaryID = oldest.id
	oldest.backupID = b.id
	c.backupsIssued++
	return b
}

// Stats snapshots the coordinator's scheduling state: run progress, the
// live lease and queue shape, the speculative-backup counters, and
// per-worker throughput/cadence estimates (sorted by worker name).
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Run: c.run, Shards: c.n,
		Done: c.n - c.remaining, Remaining: c.remaining,
		PendingSpans: len(c.pending), Leases: len(c.leases),
		BackupsIssued: c.backupsIssued, BackupsWon: c.backupsWon,
		BackupsWasted:  c.backupsWasted,
		CostEWMAMicros: c.costEWMA.Microseconds(),
	}
	for _, l := range c.leases {
		if l.backup {
			st.BackupLeases++
		}
	}
	seen := map[string]bool{}
	for w := range c.throughput {
		seen[w] = true
	}
	for w := range c.cadence {
		seen[w] = true
	}
	for w := range seen {
		ws := WorkerStats{Worker: w, ThroughputPerSec: c.throughput[w]}
		if cad, ok := c.cadence[w]; ok {
			ws.CadenceMillis = cad.Milliseconds()
		}
		st.Workers = append(st.Workers, ws)
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].Worker < st.Workers[j].Worker })
	return st
}

// Handler returns the coordinator's HTTP interface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/job", c.handleJob)
	mux.HandleFunc("/lease", c.handleLease)
	mux.HandleFunc("/renew", c.handleRenew)
	mux.HandleFunc("/results", c.handleResults)
	mux.HandleFunc("/stats", c.handleStats)
	return mux
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(mustJSON(v))
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Job{
		Experiment: c.spec.Name, Params: c.params, Run: c.run,
		Shards: c.n, LeaseMillis: c.lease.Milliseconds(),
	})
}

// pollInterval suggests how often a waiting worker should re-poll:
// fast enough to pick up an expired lease promptly, slow enough not to
// hammer the coordinator.
func (c *Coordinator) pollInterval() time.Duration {
	p := c.lease / 10
	if p < 25*time.Millisecond {
		p = 25 * time.Millisecond
	}
	if p > time.Second {
		p = time.Second
	}
	return p
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Run != c.run {
		http.Error(w, fmt.Sprintf("lease request names run %q; this coordinator serves run %q", req.Run, c.run), http.StatusGone)
		return
	}
	now := c.now()
	c.sweepExpired()
	if c.fatal != nil || c.remaining == 0 {
		writeJSON(w, http.StatusOK, Lease{Done: true, Run: c.run})
		return
	}
	if req.Worker != "" {
		if id, ok := c.byWorker[req.Worker]; ok {
			if l := c.leases[id]; l != nil {
				if !l.started {
					// Idempotent re-poll: a worker holding an unexpired
					// grant it never started (no results arrived) gets the
					// same grant back — the retry after a lease response
					// lost in transit, not a request for more.
					l.expires = now.Add(c.lease)
					l.lastBeat = now
					writeJSON(w, http.StatusOK, Lease{
						ID: l.id, Run: c.run, Start: l.span.Start, End: l.span.End,
						ExpiresMillis: c.lease.Milliseconds(), Backup: l.backup,
					})
					return
				}
				// Abandoned-grant release: a worker never polls for a new
				// lease while still serving a chunk, so a re-poll from the
				// holder of a started, unexpired grant means it abandoned
				// that chunk (the transport-error fallback) and moved on.
				// The coordinator knows — releasing the undone remainder
				// now, before granting fresh work, beats leaving those
				// shards unserveable until the TTL cliff. The worker's
				// cadence and throughput estimates survive: it is alive.
				c.dropLease(l, false)
			}
		}
	}
	if len(c.pending) == 0 {
		if b := c.grantBackup(req.Worker, now); b != nil {
			writeJSON(w, http.StatusOK, Lease{
				ID: b.id, Run: c.run, Start: b.span.Start, End: b.span.End,
				ExpiresMillis: c.lease.Milliseconds(), Backup: true,
			})
			return
		}
		writeJSON(w, http.StatusOK, Lease{Wait: true, Run: c.run, PollMillis: c.pollInterval().Milliseconds()})
		return
	}
	// Carve the grant off the head span at the worker's target size; the
	// remainder goes back to the front so the queue stays FIFO.
	sp := c.pending[0]
	c.pending = c.pending[1:]
	if k := c.targetChunkFor(req.Worker); sp.End-sp.Start > k {
		c.pending = append([]experiment.Span{{Start: sp.Start + k, End: sp.End}}, c.pending...)
		sp.End = sp.Start + k
	}
	l := c.newLease(req.Worker, sp, now)
	writeJSON(w, http.StatusOK, Lease{
		ID: l.id, Run: c.run, Start: sp.Start, End: sp.End,
		ExpiresMillis: c.lease.Milliseconds(),
	})
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req RenewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad renew request: "+err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Run != c.run {
		http.Error(w, fmt.Sprintf("renewal names run %q; this coordinator serves run %q", req.Run, c.run), http.StatusGone)
		return
	}
	c.sweepExpired()
	l, ok := c.leases[req.ID]
	now := c.now()
	if !ok || !now.Before(l.expires) {
		// Expired (possibly re-issued already): the worker must abandon
		// the chunk. Results it already streamed remain accepted.
		if ok {
			c.dropLease(l, true)
		}
		http.Error(w, "lease expired or unknown", http.StatusGone)
		return
	}
	// Fold the renew-to-renew interval into the worker's cadence
	// estimate; the adaptive re-issue deadline rides on it.
	if l.worker != "" {
		if dt := now.Sub(l.lastRenew); dt > 0 {
			if old, seen := c.cadence[l.worker]; seen {
				c.cadence[l.worker] = (3*old + dt) / 4
			} else {
				c.cadence[l.worker] = dt
			}
		}
	}
	l.lastRenew = now
	l.lastBeat = now
	l.expires = now.Add(c.lease)
	writeJSON(w, http.StatusOK, Renewal{ExpiresMillis: c.lease.Milliseconds()})
}

// handleResults ingests a stream of ResultLine documents, one per line.
// Lines are validated hard — the coordinator trusts no worker: malformed
// JSON, wrong run tokens, never-issued lease ids, out-of-range or
// out-of-span shard indexes and payloads that don't decode as the spec's
// shard type are rejected with a 4xx without corrupting shard state (the
// shard stays pending or leased and will be served again). A duplicate
// of an already-done shard must be byte-identical to the accepted
// result: equal bytes are acknowledged idempotently, unequal bytes are a
// determinism-contract violation that fails the whole run (409).
func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	accepted := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if status, err := c.acceptResult(line); err != nil {
			writeJSON(w, status, ResultAck{Accepted: accepted, Error: err.Error()})
			return
		}
		accepted++
	}
	if err := sc.Err(); err != nil {
		writeJSON(w, http.StatusBadRequest, ResultAck{Accepted: accepted, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ResultAck{Accepted: accepted})
}

// acceptResult validates and applies one result line, returning the HTTP
// status to reject it with when invalid.
func (c *Coordinator) acceptResult(line []byte) (int, error) {
	var rl ResultLine
	if err := json.Unmarshal(line, &rl); err != nil {
		return http.StatusBadRequest, fmt.Errorf("malformed result line: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if rl.Run != c.run {
		return http.StatusGone, fmt.Errorf("result names run %q; this coordinator serves run %q", rl.Run, c.run)
	}
	span, issued := c.issued[rl.Lease]
	if !issued {
		return http.StatusGone, fmt.Errorf("result names lease %q this coordinator never issued", rl.Lease)
	}
	if rl.Shard < 0 || rl.Shard >= c.n {
		return http.StatusBadRequest, fmt.Errorf("shard %d out of range [0,%d)", rl.Shard, c.n)
	}
	if rl.Shard < span.Start || rl.Shard >= span.End {
		return http.StatusBadRequest, fmt.Errorf("shard %d outside lease %s's span [%d,%d)", rl.Shard, rl.Lease, span.Start, span.End)
	}
	now := c.now()
	// Only lines the coordinator actually accepts count as signs of life
	// (and as "the grant was started"): rejected garbage must not keep a
	// babbling-but-stuck worker's lease alive or defeat the unstarted
	// re-poll idempotency. The started transition also anchors the
	// per-shard cost clock: the gap between the grant and the first
	// accepted result is fetch and idle time, not shard cost.
	l := c.leases[rl.Lease]
	beat := func(started bool) {
		if l != nil {
			l.lastBeat = now
			if started && !l.started {
				l.started = true
				l.lastProgress = now
			}
		}
	}
	if c.done[rl.Shard] {
		switch {
		case rl.Err != "":
			// A straggler from a re-issued lease reporting a failure for
			// a shard someone else already completed: moot by then — the
			// accepted bytes satisfied the determinism contract, so the
			// stale error must not poison the run.
			beat(false)
			return http.StatusOK, nil
		case bytes.Equal(c.raw[rl.Shard], rl.Value):
			// Idempotent duplicate from a re-issued or backup lease; a
			// backup's duplicate means its primary got there first —
			// wasted speculation, worth counting.
			if l != nil && l.backup {
				c.backupsWasted++
			}
			beat(true)
			return http.StatusOK, nil
		default:
			err := fmt.Errorf("remote: shard %d: duplicate result differs from accepted bytes — determinism contract violated", rl.Shard)
			c.fail(err)
			return http.StatusConflict, err
		}
	}
	if rl.Err != "" {
		// A shard that genuinely fails would fail identically anywhere —
		// re-running it elsewhere cannot help, so the run fails.
		c.fail(fmt.Errorf("remote: shard %d: %s", rl.Shard, rl.Err))
		return http.StatusOK, nil
	}
	if len(rl.Value) == 0 {
		return http.StatusBadRequest, fmt.Errorf("shard %d: empty result value", rl.Shard)
	}
	v, err := experiment.DecodeShard(c.spec, rl.Value)
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("shard %d: corrupt payload: %w", rl.Shard, err)
	}
	if c.journal != nil {
		if err := c.journal.append(rl.ShardLine); err != nil {
			// A journal that cannot record what it accepted is a broken
			// restart contract; failing loudly beats resuming wrong.
			c.fail(err)
			return http.StatusInternalServerError, err
		}
	}
	first := l != nil && !l.started
	beat(true)
	c.values[rl.Shard] = v
	c.raw[rl.Shard] = append([]byte(nil), rl.Value...)
	c.done[rl.Shard] = true
	c.remaining--
	if l != nil && l.backup {
		c.backupsWon++ // the speculative copy landed first
	}
	if !first {
		c.observeProgress(l, now)
	}
	if c.onDone != nil {
		c.onDone()
	}
	if c.remaining == 0 && c.fatal == nil {
		close(c.finished)
	}
	return http.StatusOK, nil
}
