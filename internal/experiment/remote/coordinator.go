package remote

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"specinterference/internal/experiment"
	"specinterference/internal/results"
)

// DefaultLease is the lease TTL when none is configured: long enough
// that a healthy worker renewing at TTL/3 never loses a lease to
// scheduling noise, short enough that a crashed worker's chunk is back
// in the queue quickly.
const DefaultLease = 10 * time.Second

// Config tunes a Coordinator.
type Config struct {
	// Chunk pins the shards-per-lease granularity. 0 means adaptive:
	// grants start at n/32 (clamped to at least 1) and then track the
	// observed per-shard completion cost, aiming for one chunk per
	// quarter lease TTL within [1, n/8] — so cheap shards coalesce into
	// bigger grants and expensive ones (AD-ordering cells calibrate
	// twice) stop mispricing a fixed split. Chunking only ever moves
	// scheduling, never values.
	Chunk int
	// Lease is the lease TTL (0 = DefaultLease).
	Lease time.Duration
	// Journal is the path of the shard-result journal file ("" = no
	// journal): a run header plus every accepted result, appended as
	// JSONL. An existing compatible journal is replayed on startup so a
	// restarted coordinator serves only the remainder; an incompatible
	// one (different experiment, params signature or shard count) is a
	// hard startup error, never a silent partial reuse.
	Journal string
	// OnShardDone, when non-nil, fires once per newly completed shard
	// (the engine's progress hook), replayed journal shards included.
	// Duplicate results never re-fire it.
	OnShardDone func()
	// Now overrides the clock, for tests (nil = time.Now).
	Now func() time.Time
}

// leaseState is one outstanding grant.
type leaseState struct {
	id      string
	worker  string
	span    experiment.Span
	expires time.Time // hard re-issue cliff: last renewal + TTL
	// lastBeat is the last sign of life under this lease (grant, renew
	// or accepted result); the adaptive re-issue deadline hangs off it.
	lastBeat time.Time
	// lastRenew anchors the renew-cadence estimate (initially the grant
	// time). Kept separate from lastBeat: result arrivals are beats but
	// not renewals, and folding them in would collapse the cadence to
	// the inter-result interval and sweep healthy workers mid-chunk.
	lastRenew time.Time
	// lastProgress is the previous result arrival (or the grant), for
	// the per-shard cost estimate.
	lastProgress time.Time
	// started is set once a result arrived under this lease; an
	// unstarted grant is returned verbatim to a re-polling worker, so a
	// lease response lost in transit never orphans a chunk for a TTL.
	started bool
}

// Coordinator owns one experiment run's shard state machine: a queue of
// unleased spans, the outstanding leases, and the accepted results. It
// is an http.Handler serving the wire protocol; every mutation happens
// under one mutex, so concurrent workers see a consistent queue.
type Coordinator struct {
	spec   *experiment.Spec
	params results.Params
	n      int
	run    string // per-run random token every request must echo
	chunk  int    // pinned grant size, or the adaptive starting size
	fixed  bool   // Config.Chunk pinned the grant size
	maxCh  int    // adaptive grant-size ceiling
	lease  time.Duration
	onDone func()
	now    func() time.Time

	mu        sync.Mutex
	pending   []experiment.Span      // unleased spans, FIFO
	leases    map[string]*leaseState // outstanding grants
	issued    map[string]experiment.Span
	byWorker  map[string]string        // worker name -> its latest lease id
	cadence   map[string]time.Duration // worker name -> EWMA renew interval
	costEWMA  time.Duration            // observed per-shard completion cost
	nextID    int
	done      []bool   // per-shard completion
	values    []any    // decoded shard values, by index
	raw       [][]byte // accepted result bytes, for the byte-equality assertion
	remaining int
	replayed  int // shards restored from the journal at startup
	journal   *journal
	fatal     error
	finished  chan struct{}
}

// newRunToken mints the per-run random token that scopes every lease,
// renewal and result line to this coordinator instance: predictable
// lease ids (L1, L2, ...) collide across runs, so a worker left talking
// to a restarted coordinator on the same port must be told "different
// run" (410) instead of having its stale payloads accepted.
func newRunToken() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("remote: run token entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// NewCoordinator builds the coordinator for shards [0, n) of spec at
// params, replaying cfg.Journal first when one is configured. The
// caller serves Handler() somewhere workers can reach, waits on
// Finished, and Closes the coordinator when done with it.
func NewCoordinator(spec *experiment.Spec, p results.Params, n int, cfg Config) (*Coordinator, error) {
	chunk := cfg.Chunk
	fixed := chunk > 0
	if !fixed {
		chunk = n / 32
		if chunk < 1 {
			chunk = 1
		}
	}
	maxCh := n / 8
	if maxCh < chunk {
		maxCh = chunk
	}
	lease := cfg.Lease
	if lease <= 0 {
		lease = DefaultLease
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	c := &Coordinator{
		spec: spec, params: p, n: n,
		run:   newRunToken(),
		chunk: chunk, fixed: fixed, maxCh: maxCh, lease: lease,
		onDone: cfg.OnShardDone, now: now,
		leases:    map[string]*leaseState{},
		issued:    map[string]experiment.Span{},
		byWorker:  map[string]string{},
		cadence:   map[string]time.Duration{},
		done:      make([]bool, n),
		values:    make([]any, n),
		raw:       make([][]byte, n),
		remaining: n,
		finished:  make(chan struct{}),
	}
	if cfg.Journal != "" {
		j, replayed, err := openJournal(cfg.Journal, spec, p, n, c.run, c.replayEntry)
		if err != nil {
			return nil, err
		}
		c.journal = j
		c.replayed = replayed
	}
	// The queue holds only what is left to serve: the contiguous
	// not-done sub-spans of [0, n) — all of it on a fresh run, the
	// remainder after a journal replay.
	c.requeueUndone(experiment.Span{Start: 0, End: n})
	if c.remaining == 0 {
		close(c.finished)
	}
	return c, nil
}

// replayEntry restores one journaled shard result during startup — the
// same acceptance a live result gets, minus re-journaling. Any defect
// (a failure line, an out-of-range index, undecodable bytes, two
// entries for one shard that disagree) makes the whole journal corrupt.
func (c *Coordinator) replayEntry(sl experiment.ShardLine) error {
	if sl.Err != "" {
		return fmt.Errorf("entry for shard %d records a failure; failures are never journaled", sl.Shard)
	}
	if sl.Shard < 0 || sl.Shard >= c.n {
		return fmt.Errorf("entry shard %d out of range [0,%d)", sl.Shard, c.n)
	}
	if c.done[sl.Shard] {
		if bytes.Equal(c.raw[sl.Shard], sl.Value) {
			return nil
		}
		return fmt.Errorf("shard %d journaled twice with different bytes", sl.Shard)
	}
	v, err := experiment.DecodeShard(c.spec, sl.Value)
	if err != nil {
		return fmt.Errorf("shard %d: undecodable journaled value: %w", sl.Shard, err)
	}
	c.values[sl.Shard] = v
	c.raw[sl.Shard] = append([]byte(nil), sl.Value...)
	c.done[sl.Shard] = true
	c.remaining--
	if c.onDone != nil {
		c.onDone()
	}
	return nil
}

// Replayed reports how many shards the startup journal replay restored.
func (c *Coordinator) Replayed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replayed
}

// Close releases the coordinator's journal handle (a no-op without one).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.journal
	c.journal = nil
	return j.close()
}

// Finished is closed when every shard has a result or the run failed.
func (c *Coordinator) Finished() <-chan struct{} { return c.finished }

// Values returns the decoded shard values in index order once the run
// finished, or the fatal error that stopped it.
func (c *Coordinator) Values() ([]any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fatal != nil {
		return nil, c.fatal
	}
	if c.remaining != 0 {
		return nil, fmt.Errorf("remote: run incomplete: %d of %d shards outstanding", c.remaining, c.n)
	}
	return c.values, nil
}

// fail records the first fatal error and releases waiters. Once the run
// is over — failed or already complete — further faults are no-ops: a
// straggler posting garbage after the last shard landed must not close
// finished twice or retroactively taint a completed run (its line is
// still rejected by the caller). Callers hold mu.
func (c *Coordinator) fail(err error) {
	if c.fatal != nil || c.remaining == 0 {
		return
	}
	c.fatal = err
	close(c.finished)
}

// sweepExpired reclaims every lease past its re-issue deadline: the
// contiguous runs of not-yet-done shards inside its span go back in the
// queue for other workers — this is the crash tolerance and the work
// stealing in one move. Callers hold mu.
func (c *Coordinator) sweepExpired() {
	now := c.now()
	for id, l := range c.leases {
		if now.Before(c.reissueDeadline(l)) {
			continue
		}
		c.requeueUndone(l.span)
		delete(c.leases, id)
	}
}

// reissueDeadline is when an unrenewed lease's work goes back in the
// queue: the hard TTL cliff, tightened for a worker whose observed
// renew cadence says it should have checked in well before it — a fast
// heartbeat that stops is a crash signal worth acting on early. The
// adaptive deadline is three missed beats past the last sign of life,
// bounded to [TTL/2, TTL] (the floor keeps a worker renewing at the
// standard TTL/3 tick safe through several slow beats), and only ever
// moves re-issue timing, never result acceptance. Callers hold mu.
func (c *Coordinator) reissueDeadline(l *leaseState) time.Time {
	deadline := l.expires
	if cad, ok := c.cadence[l.worker]; ok && l.worker != "" {
		grace := 3 * cad
		if min := c.lease / 2; grace < min {
			grace = min
		}
		if grace > c.lease {
			grace = c.lease
		}
		if d := l.lastBeat.Add(grace); d.Before(deadline) {
			deadline = d
		}
	}
	return deadline
}

// requeueUndone pushes the contiguous not-done sub-spans of sp back onto
// the pending queue. Callers hold mu.
func (c *Coordinator) requeueUndone(sp experiment.Span) {
	start := -1
	for i := sp.Start; i <= sp.End; i++ {
		if i < sp.End && !c.done[i] {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			c.pending = append(c.pending, experiment.Span{Start: start, End: i})
			start = -1
		}
	}
}

// targetChunk is the shards-per-grant size: the configured size when
// pinned, otherwise adapted so one chunk costs about a quarter of the
// lease TTL at the observed per-shard completion cost. Callers hold mu.
func (c *Coordinator) targetChunk() int {
	if c.fixed || c.costEWMA <= 0 {
		return c.chunk
	}
	k := int((c.lease / 4) / c.costEWMA)
	if k < 1 {
		k = 1
	}
	if k > c.maxCh {
		k = c.maxCh
	}
	return k
}

// observeCost folds one shard completion into the per-shard cost EWMA
// driving adaptive chunk sizing; a result from an already-expired lease
// carries no usable timing. Callers hold mu.
func (c *Coordinator) observeCost(l *leaseState, now time.Time) {
	if l == nil {
		return
	}
	dt := now.Sub(l.lastProgress)
	l.lastProgress = now
	if dt < time.Microsecond {
		dt = time.Microsecond // instantaneous arrivals still mean "cheap"
	}
	if c.costEWMA <= 0 {
		c.costEWMA = dt
	} else {
		c.costEWMA = (3*c.costEWMA + dt) / 4
	}
}

// Handler returns the coordinator's HTTP interface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/job", c.handleJob)
	mux.HandleFunc("/lease", c.handleLease)
	mux.HandleFunc("/renew", c.handleRenew)
	mux.HandleFunc("/results", c.handleResults)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(mustJSON(v))
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Job{
		Experiment: c.spec.Name, Params: c.params, Run: c.run,
		Shards: c.n, LeaseMillis: c.lease.Milliseconds(),
	})
}

// pollInterval suggests how often a waiting worker should re-poll:
// fast enough to pick up an expired lease promptly, slow enough not to
// hammer the coordinator.
func (c *Coordinator) pollInterval() time.Duration {
	p := c.lease / 10
	if p < 25*time.Millisecond {
		p = 25 * time.Millisecond
	}
	if p > time.Second {
		p = time.Second
	}
	return p
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Run != c.run {
		http.Error(w, fmt.Sprintf("lease request names run %q; this coordinator serves run %q", req.Run, c.run), http.StatusGone)
		return
	}
	now := c.now()
	c.sweepExpired()
	if c.fatal != nil || c.remaining == 0 {
		writeJSON(w, http.StatusOK, Lease{Done: true, Run: c.run})
		return
	}
	// Idempotent re-poll: a worker holding an unexpired grant it never
	// started (no results arrived) gets the same grant back — the retry
	// after a lease response lost in transit, not a request for more.
	if req.Worker != "" {
		if id, ok := c.byWorker[req.Worker]; ok {
			if l := c.leases[id]; l != nil && !l.started {
				l.expires = now.Add(c.lease)
				l.lastBeat = now
				writeJSON(w, http.StatusOK, Lease{
					ID: l.id, Run: c.run, Start: l.span.Start, End: l.span.End,
					ExpiresMillis: c.lease.Milliseconds(),
				})
				return
			}
		}
	}
	if len(c.pending) == 0 {
		writeJSON(w, http.StatusOK, Lease{Wait: true, Run: c.run, PollMillis: c.pollInterval().Milliseconds()})
		return
	}
	// Carve the grant off the head span at the current target size; the
	// remainder goes back to the front so the queue stays FIFO.
	sp := c.pending[0]
	c.pending = c.pending[1:]
	if k := c.targetChunk(); sp.End-sp.Start > k {
		c.pending = append([]experiment.Span{{Start: sp.Start + k, End: sp.End}}, c.pending...)
		sp.End = sp.Start + k
	}
	c.nextID++
	l := &leaseState{
		id:           fmt.Sprintf("L%d", c.nextID),
		worker:       req.Worker,
		span:         sp,
		expires:      now.Add(c.lease),
		lastBeat:     now,
		lastRenew:    now,
		lastProgress: now,
	}
	c.leases[l.id] = l
	c.issued[l.id] = sp
	if req.Worker != "" {
		c.byWorker[req.Worker] = l.id
	}
	writeJSON(w, http.StatusOK, Lease{
		ID: l.id, Run: c.run, Start: sp.Start, End: sp.End,
		ExpiresMillis: c.lease.Milliseconds(),
	})
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req RenewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad renew request: "+err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Run != c.run {
		http.Error(w, fmt.Sprintf("renewal names run %q; this coordinator serves run %q", req.Run, c.run), http.StatusGone)
		return
	}
	c.sweepExpired()
	l, ok := c.leases[req.ID]
	now := c.now()
	if !ok || !now.Before(l.expires) {
		// Expired (possibly re-issued already): the worker must abandon
		// the chunk. Results it already streamed remain accepted.
		if ok {
			c.requeueUndone(l.span)
			delete(c.leases, req.ID)
		}
		http.Error(w, "lease expired or unknown", http.StatusGone)
		return
	}
	// Fold the renew-to-renew interval into the worker's cadence
	// estimate; the adaptive re-issue deadline rides on it.
	if l.worker != "" {
		if dt := now.Sub(l.lastRenew); dt > 0 {
			if old, seen := c.cadence[l.worker]; seen {
				c.cadence[l.worker] = (3*old + dt) / 4
			} else {
				c.cadence[l.worker] = dt
			}
		}
	}
	l.lastRenew = now
	l.lastBeat = now
	l.expires = now.Add(c.lease)
	writeJSON(w, http.StatusOK, Renewal{ExpiresMillis: c.lease.Milliseconds()})
}

// handleResults ingests a stream of ResultLine documents, one per line.
// Lines are validated hard — the coordinator trusts no worker: malformed
// JSON, wrong run tokens, never-issued lease ids, out-of-range or
// out-of-span shard indexes and payloads that don't decode as the spec's
// shard type are rejected with a 4xx without corrupting shard state (the
// shard stays pending or leased and will be served again). A duplicate
// of an already-done shard must be byte-identical to the accepted
// result: equal bytes are acknowledged idempotently, unequal bytes are a
// determinism-contract violation that fails the whole run (409).
func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	accepted := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if status, err := c.acceptResult(line); err != nil {
			writeJSON(w, status, ResultAck{Accepted: accepted, Error: err.Error()})
			return
		}
		accepted++
	}
	if err := sc.Err(); err != nil {
		writeJSON(w, http.StatusBadRequest, ResultAck{Accepted: accepted, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ResultAck{Accepted: accepted})
}

// acceptResult validates and applies one result line, returning the HTTP
// status to reject it with when invalid.
func (c *Coordinator) acceptResult(line []byte) (int, error) {
	var rl ResultLine
	if err := json.Unmarshal(line, &rl); err != nil {
		return http.StatusBadRequest, fmt.Errorf("malformed result line: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if rl.Run != c.run {
		return http.StatusGone, fmt.Errorf("result names run %q; this coordinator serves run %q", rl.Run, c.run)
	}
	span, issued := c.issued[rl.Lease]
	if !issued {
		return http.StatusGone, fmt.Errorf("result names lease %q this coordinator never issued", rl.Lease)
	}
	if rl.Shard < 0 || rl.Shard >= c.n {
		return http.StatusBadRequest, fmt.Errorf("shard %d out of range [0,%d)", rl.Shard, c.n)
	}
	if rl.Shard < span.Start || rl.Shard >= span.End {
		return http.StatusBadRequest, fmt.Errorf("shard %d outside lease %s's span [%d,%d)", rl.Shard, rl.Lease, span.Start, span.End)
	}
	now := c.now()
	// Only lines the coordinator actually accepts count as signs of life
	// (and as "the grant was started"): rejected garbage must not keep a
	// babbling-but-stuck worker's lease alive or defeat the unstarted
	// re-poll idempotency.
	l := c.leases[rl.Lease]
	beat := func(started bool) {
		if l != nil {
			l.lastBeat = now
			if started {
				l.started = true
			}
		}
	}
	if c.done[rl.Shard] {
		switch {
		case rl.Err != "":
			// A straggler from a re-issued lease reporting a failure for
			// a shard someone else already completed: moot by then — the
			// accepted bytes satisfied the determinism contract, so the
			// stale error must not poison the run.
			beat(false)
			return http.StatusOK, nil
		case bytes.Equal(c.raw[rl.Shard], rl.Value):
			beat(true)
			return http.StatusOK, nil // idempotent duplicate from a re-issued lease
		default:
			err := fmt.Errorf("remote: shard %d: duplicate result differs from accepted bytes — determinism contract violated", rl.Shard)
			c.fail(err)
			return http.StatusConflict, err
		}
	}
	if rl.Err != "" {
		// A shard that genuinely fails would fail identically anywhere —
		// re-running it elsewhere cannot help, so the run fails.
		c.fail(fmt.Errorf("remote: shard %d: %s", rl.Shard, rl.Err))
		return http.StatusOK, nil
	}
	if len(rl.Value) == 0 {
		return http.StatusBadRequest, fmt.Errorf("shard %d: empty result value", rl.Shard)
	}
	v, err := experiment.DecodeShard(c.spec, rl.Value)
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("shard %d: corrupt payload: %w", rl.Shard, err)
	}
	if c.journal != nil {
		if err := c.journal.append(rl.ShardLine); err != nil {
			// A journal that cannot record what it accepted is a broken
			// restart contract; failing loudly beats resuming wrong.
			c.fail(err)
			return http.StatusInternalServerError, err
		}
	}
	beat(true)
	c.values[rl.Shard] = v
	c.raw[rl.Shard] = append([]byte(nil), rl.Value...)
	c.done[rl.Shard] = true
	c.remaining--
	c.observeCost(l, now)
	if c.onDone != nil {
		c.onDone()
	}
	if c.remaining == 0 && c.fatal == nil {
		close(c.finished)
	}
	return http.StatusOK, nil
}
