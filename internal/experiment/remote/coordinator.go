package remote

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"specinterference/internal/experiment"
	"specinterference/internal/results"
)

// DefaultLease is the lease TTL when none is configured: long enough
// that a healthy worker renewing at TTL/3 never loses a lease to
// scheduling noise, short enough that a crashed worker's chunk is back
// in the queue quickly.
const DefaultLease = 10 * time.Second

// Config tunes a Coordinator.
type Config struct {
	// Chunk is the shards-per-lease granularity (0 = automatic:
	// n/32 clamped to at least 1 — small enough that uneven shard costs
	// level out, large enough that HTTP round-trips stay negligible).
	Chunk int
	// Lease is the lease TTL (0 = DefaultLease).
	Lease time.Duration
	// OnShardDone, when non-nil, fires once per newly completed shard
	// (the engine's progress hook). Duplicate results never re-fire it.
	OnShardDone func()
	// Now overrides the clock, for tests (nil = time.Now).
	Now func() time.Time
}

// leaseState is one outstanding grant.
type leaseState struct {
	id      string
	worker  string
	span    experiment.Span
	expires time.Time
}

// Coordinator owns one experiment run's shard state machine: a queue of
// unleased chunks, the outstanding leases, and the accepted results. It
// is an http.Handler serving the wire protocol; every mutation happens
// under one mutex, so concurrent workers see a consistent queue.
type Coordinator struct {
	spec   *experiment.Spec
	params results.Params
	n      int
	chunk  int
	lease  time.Duration
	onDone func()
	now    func() time.Time

	mu        sync.Mutex
	pending   []experiment.Span      // unleased chunks, FIFO
	leases    map[string]*leaseState // outstanding grants
	issued    map[string]bool        // every grant ever made (expired included)
	nextID    int
	done      []bool   // per-shard completion
	values    []any    // decoded shard values, by index
	raw       [][]byte // accepted result bytes, for the byte-equality assertion
	remaining int
	fatal     error
	finished  chan struct{}
}

// NewCoordinator builds the coordinator for shards [0, n) of spec at
// params. The caller serves Handler() somewhere workers can reach and
// waits on Finished.
func NewCoordinator(spec *experiment.Spec, p results.Params, n int, cfg Config) *Coordinator {
	chunk := cfg.Chunk
	if chunk <= 0 {
		chunk = n / 32
		if chunk < 1 {
			chunk = 1
		}
	}
	lease := cfg.Lease
	if lease <= 0 {
		lease = DefaultLease
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	c := &Coordinator{
		spec: spec, params: p, n: n,
		chunk: chunk, lease: lease,
		onDone: cfg.OnShardDone, now: now,
		leases:    map[string]*leaseState{},
		issued:    map[string]bool{},
		done:      make([]bool, n),
		values:    make([]any, n),
		raw:       make([][]byte, n),
		remaining: n,
		finished:  make(chan struct{}),
	}
	c.pending = experiment.Spans(n, chunk)
	if n == 0 {
		close(c.finished)
	}
	return c
}

// Finished is closed when every shard has a result or the run failed.
func (c *Coordinator) Finished() <-chan struct{} { return c.finished }

// Values returns the decoded shard values in index order once the run
// finished, or the fatal error that stopped it.
func (c *Coordinator) Values() ([]any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fatal != nil {
		return nil, c.fatal
	}
	if c.remaining != 0 {
		return nil, fmt.Errorf("remote: run incomplete: %d of %d shards outstanding", c.remaining, c.n)
	}
	return c.values, nil
}

// fail records the first fatal error and releases waiters. Once the run
// is over — failed or already complete — further faults are no-ops: a
// straggler posting garbage after the last shard landed must not close
// finished twice or retroactively taint a completed run (its line is
// still rejected by the caller). Callers hold mu.
func (c *Coordinator) fail(err error) {
	if c.fatal != nil || c.remaining == 0 {
		return
	}
	c.fatal = err
	close(c.finished)
}

// sweepExpired reclaims every lease past its TTL: the contiguous runs of
// not-yet-done shards inside its chunk go back in the queue for other
// workers — this is the crash tolerance and the work stealing in one
// move. Callers hold mu.
func (c *Coordinator) sweepExpired() {
	now := c.now()
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		c.requeueUndone(l.span)
		delete(c.leases, id)
	}
}

// requeueUndone pushes the contiguous not-done sub-spans of sp back onto
// the pending queue. Callers hold mu.
func (c *Coordinator) requeueUndone(sp experiment.Span) {
	start := -1
	for i := sp.Start; i <= sp.End; i++ {
		if i < sp.End && !c.done[i] {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			c.pending = append(c.pending, experiment.Span{Start: start, End: i})
			start = -1
		}
	}
}

// Handler returns the coordinator's HTTP interface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/job", c.handleJob)
	mux.HandleFunc("/lease", c.handleLease)
	mux.HandleFunc("/renew", c.handleRenew)
	mux.HandleFunc("/results", c.handleResults)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(mustJSON(v))
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Job{
		Experiment: c.spec.Name, Params: c.params,
		Shards: c.n, LeaseMillis: c.lease.Milliseconds(),
	})
}

// pollInterval suggests how often a waiting worker should re-poll:
// fast enough to pick up an expired lease promptly, slow enough not to
// hammer the coordinator.
func (c *Coordinator) pollInterval() time.Duration {
	p := c.lease / 10
	if p < 25*time.Millisecond {
		p = 25 * time.Millisecond
	}
	if p > time.Second {
		p = time.Second
	}
	return p
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepExpired()
	if c.fatal != nil || c.remaining == 0 {
		writeJSON(w, http.StatusOK, Lease{Done: true})
		return
	}
	if len(c.pending) == 0 {
		writeJSON(w, http.StatusOK, Lease{Wait: true, PollMillis: c.pollInterval().Milliseconds()})
		return
	}
	sp := c.pending[0]
	c.pending = c.pending[1:]
	c.nextID++
	l := &leaseState{
		id:      fmt.Sprintf("L%d", c.nextID),
		worker:  req.Worker,
		span:    sp,
		expires: c.now().Add(c.lease),
	}
	c.leases[l.id] = l
	c.issued[l.id] = true
	writeJSON(w, http.StatusOK, Lease{
		ID: l.id, Start: sp.Start, End: sp.End,
		ExpiresMillis: c.lease.Milliseconds(),
	})
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req RenewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad renew request: "+err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[req.ID]
	if !ok || !c.now().Before(l.expires) {
		// Expired (possibly re-issued already): the worker must abandon
		// the chunk. Results it already streamed remain accepted.
		if ok {
			c.requeueUndone(l.span)
			delete(c.leases, req.ID)
		}
		http.Error(w, "lease expired or unknown", http.StatusGone)
		return
	}
	l.expires = c.now().Add(c.lease)
	writeJSON(w, http.StatusOK, Renewal{ExpiresMillis: c.lease.Milliseconds()})
}

// handleResults ingests a stream of ResultLine documents, one per line.
// Lines are validated hard — the coordinator trusts no worker: malformed
// JSON, never-issued lease ids, out-of-range shard indexes and payloads
// that don't decode as the spec's shard type are rejected with a 4xx
// without corrupting shard state (the shard stays pending or leased and
// will be served again). A duplicate of an already-done shard must be
// byte-identical to the accepted result: equal bytes are acknowledged
// idempotently, unequal bytes are a determinism-contract violation that
// fails the whole run (409).
func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	accepted := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if status, err := c.acceptResult(line); err != nil {
			writeJSON(w, status, ResultAck{Accepted: accepted, Error: err.Error()})
			return
		}
		accepted++
	}
	if err := sc.Err(); err != nil {
		writeJSON(w, http.StatusBadRequest, ResultAck{Accepted: accepted, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ResultAck{Accepted: accepted})
}

// acceptResult validates and applies one result line, returning the HTTP
// status to reject it with when invalid.
func (c *Coordinator) acceptResult(line []byte) (int, error) {
	var rl ResultLine
	if err := json.Unmarshal(line, &rl); err != nil {
		return http.StatusBadRequest, fmt.Errorf("malformed result line: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.issued[rl.Lease] {
		return http.StatusGone, fmt.Errorf("result names lease %q this coordinator never issued", rl.Lease)
	}
	if rl.Shard < 0 || rl.Shard >= c.n {
		return http.StatusBadRequest, fmt.Errorf("shard %d out of range [0,%d)", rl.Shard, c.n)
	}
	if rl.Err != "" {
		// A shard that genuinely fails would fail identically anywhere —
		// re-running it elsewhere cannot help, so the run fails.
		c.fail(fmt.Errorf("remote: shard %d: %s", rl.Shard, rl.Err))
		return http.StatusOK, nil
	}
	if len(rl.Value) == 0 {
		return http.StatusBadRequest, fmt.Errorf("shard %d: empty result value", rl.Shard)
	}
	if c.done[rl.Shard] {
		if bytes.Equal(c.raw[rl.Shard], rl.Value) {
			return http.StatusOK, nil // idempotent duplicate from a re-issued lease
		}
		err := fmt.Errorf("remote: shard %d: duplicate result differs from accepted bytes — determinism contract violated", rl.Shard)
		c.fail(err)
		return http.StatusConflict, err
	}
	v, err := experiment.DecodeShard(c.spec, rl.Value)
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("shard %d: corrupt payload: %w", rl.Shard, err)
	}
	c.values[rl.Shard] = v
	c.raw[rl.Shard] = append([]byte(nil), rl.Value...)
	c.done[rl.Shard] = true
	c.remaining--
	if c.onDone != nil {
		c.onDone()
	}
	if c.remaining == 0 && c.fatal == nil {
		close(c.finished)
	}
	return http.StatusOK, nil
}
