package remote

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"specinterference/internal/experiment"
	"specinterference/internal/results"
)

// Remote is the distributed backend: Run starts an HTTP coordinator for
// the experiment's shards and returns when every shard has streamed in.
// Workers are either spawned locally (Procs > 0: the current binary
// re-exec'd in -remote-worker mode against the coordinator's loopback
// address — the one-machine work-stealing configuration) or started by
// hand on any machine that can reach Listen (Procs = 0: the two-terminal
// quickstart; the coordinator prints the -connect line to use).
//
// Crash tolerance comes from the leases, correctness from the spec
// purity contract: a worker that dies or stalls simply stops renewing,
// its chunk is re-issued, and since every shard's value is a pure
// function of (params, shard index), whoever re-runs it must produce the
// identical bytes — which the coordinator asserts on every duplicate.
type Remote struct {
	// Listen is the coordinator's listen address ("" = 127.0.0.1:0).
	// Use ":8080"-style addresses to accept workers from other machines.
	Listen string
	// Procs is the local worker count (0 = spawn none, wait for external
	// workers).
	Procs int
	// Workers bounds shard goroutines inside each worker (0 = serial).
	Workers int
	// Lease is the lease TTL (0 = DefaultLease).
	Lease time.Duration
	// Chunk is the shards-per-lease granularity (0 = adaptive: grants
	// start at n/32 and track observed per-shard cost; see Config.Chunk).
	Chunk int
	// Journal, when non-empty, is a directory holding one append-only
	// shard-result journal per experiment (<dir>/<experiment>.jsonl, the
	// results-store idiom). Accepted results are appended as they
	// arrive; a restarted coordinator pointed at the same directory
	// replays the journal and serves only the remainder. A journal from
	// a different run shape (experiment, params, shard count) is a hard
	// startup error.
	Journal string
	// Stderr receives coordinator notices and prefixed local-worker
	// diagnostics (nil = os.Stderr).
	Stderr io.Writer
}

// Name implements experiment.Backend.
func (Remote) Name() string { return "remote" }

func init() {
	experiment.RegisterBackendFactory("remote", func(o experiment.BackendOptions) (experiment.Backend, error) {
		return Remote{
			Listen: o.Listen, Procs: o.Procs, Workers: o.Workers,
			Lease: o.Lease, Chunk: o.Chunk, Journal: o.Journal,
		}, nil
	})
	experiment.RegisterWorkerMode(RunWorkerIfRequested)
}

// Run implements experiment.Backend.
func (b Remote) Run(ctx context.Context, spec *experiment.Spec, p results.Params, n int, done func()) ([]any, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n == 0 {
		return nil, ctx.Err()
	}
	stderr := b.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}
	cfg := Config{Chunk: b.Chunk, Lease: b.Lease, OnShardDone: done}
	if b.Journal != "" {
		if err := os.MkdirAll(b.Journal, 0o755); err != nil {
			return nil, fmt.Errorf("remote: journal directory %s: %w", b.Journal, err)
		}
		cfg.Journal = filepath.Join(b.Journal, spec.Name+".jsonl")
	}
	coord, err := NewCoordinator(spec, p, n, cfg)
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	if r := coord.Replayed(); r > 0 {
		fmt.Fprintf(stderr, "remote: journal %s: resumed: %d of %d shards already complete\n", cfg.Journal, r, n)
	}

	addr := b.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	url := "http://" + ln.Addr().String()
	if b.Procs > 0 {
		fmt.Fprintf(stderr, "remote: coordinator on %s serving %s (%d shards), spawning %d local workers\n",
			url, spec.Name, n, b.Procs)
	} else {
		fmt.Fprintf(stderr, "remote: coordinator on %s serving %s (%d shards)\n", url, spec.Name, n)
		fmt.Fprintf(stderr, "remote: waiting for workers — start each with: <binary> %s -connect %s\n", WorkerArg, url)
	}

	workers, err := b.spawnLocalWorkers(ctx, url, stderr)
	if err != nil {
		return nil, err
	}

	select {
	case <-coord.Finished():
	case <-ctx.Done():
		workers.kill()
		return nil, ctx.Err()
	case <-workers.exited:
		// Every local worker is gone. If that's because the job just
		// finished, fall through; otherwise the run can never complete.
		select {
		case <-coord.Finished():
		default:
			return nil, fmt.Errorf("remote: all %d local workers exited before the run completed: %w", b.Procs, workers.firstErr())
		}
	}
	// Give local workers one poll cycle to observe Done and exit cleanly;
	// stragglers are killed rather than orphaned.
	workers.reap(coord.pollInterval() + time.Second)
	fmt.Fprintln(stderr, runSummary(coord.Stats()))
	return coord.Values()
}

// runSummary renders the end-of-run scheduling summary: shard count, the
// speculative-backup counters, and each worker's observed throughput —
// the tail-latency machinery's speedup made visible instead of vibes.
func runSummary(st Stats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "remote: run complete: %d shards; backups: %d issued, %d won, %d wasted",
		st.Shards, st.BackupsIssued, st.BackupsWon, st.BackupsWasted)
	for i, ws := range st.Workers {
		if i == 0 {
			sb.WriteString("; throughput:")
		} else {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, " %s %.1f/s", ws.Worker, ws.ThroughputPerSec)
	}
	return sb.String()
}

// localWorkers tracks the worker processes a coordinator spawned beside
// itself.
type localWorkers struct {
	cmds   []*exec.Cmd
	exited chan struct{} // closed when every worker exited (never, when none spawned)
	mu     sync.Mutex
	errs   []error // worker exit failures; guarded by mu
	wg     sync.WaitGroup
}

// slowWorkerEnv is the spawn-side half of the shardDelayEnv fault shim:
// when set to a time.Duration string, the FIRST local worker is started
// with that per-shard delay while the rest run at full speed — a
// reproducible straggler, so the CI backup-execution gate can drive
// speculative backup leases through a stock `resultstore check -backend
// remote` run. Never set in normal operation.
const slowWorkerEnv = "SPECINTERFERENCE_REMOTE_SLOW_WORKER"

// spawnLocalWorkers starts Procs re-exec'd -remote-worker processes
// against the coordinator URL, each with "[remote-worker N]"-framed
// stderr passthrough.
func (b Remote) spawnLocalWorkers(ctx context.Context, url string, stderr io.Writer) (*localWorkers, error) {
	lw := &localWorkers{exited: make(chan struct{})}
	if b.Procs <= 0 {
		return lw, nil // exited stays open: external workers come and go
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("remote: locate executable for local workers: %w", err)
	}
	var stderrMu sync.Mutex
	slow := os.Getenv(slowWorkerEnv)
	for i := 0; i < b.Procs; i++ {
		cmd := exec.CommandContext(ctx, exe, WorkerArg,
			"-connect", url, "-parallel", strconv.Itoa(b.Workers))
		cmd.Env = append(os.Environ(), workerEnvVar+"=1")
		if i == 0 && slow != "" {
			cmd.Env = append(cmd.Env, shardDelayEnv+"="+slow)
		}
		pipe, err := cmd.StderrPipe()
		if err != nil {
			lw.kill()
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			lw.kill()
			return nil, fmt.Errorf("remote: spawn local worker: %w", err)
		}
		lw.cmds = append(lw.cmds, cmd)
		lw.wg.Add(1)
		go func(id int, cmd *exec.Cmd, pipe io.Reader) {
			defer lw.wg.Done()
			experiment.CopyPrefixedLines(stderr, &stderrMu, fmt.Sprintf("[remote-worker %d] ", id), pipe)
			if err := cmd.Wait(); err != nil {
				lw.mu.Lock()
				lw.errs = append(lw.errs, fmt.Errorf("worker %d: %w", id, err))
				lw.mu.Unlock()
				stderrMu.Lock()
				fmt.Fprintf(stderr, "[remote-worker %d] exited: %v\n", id, err)
				stderrMu.Unlock()
			}
		}(i, cmd, pipe)
	}
	go func() {
		lw.wg.Wait()
		close(lw.exited)
	}()
	return lw, nil
}

// firstErr reports the first worker failure, or a placeholder when the
// workers all exited zero without finishing the job.
func (lw *localWorkers) firstErr() error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if len(lw.errs) > 0 {
		return lw.errs[0]
	}
	return fmt.Errorf("workers exited cleanly with shards outstanding")
}

// kill terminates every worker process immediately.
func (lw *localWorkers) kill() {
	for _, cmd := range lw.cmds {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
}

// reap waits up to grace for the workers to exit on their own, then
// kills the rest.
func (lw *localWorkers) reap(grace time.Duration) {
	if len(lw.cmds) == 0 {
		return
	}
	select {
	case <-lw.exited:
	case <-time.After(grace):
		lw.kill()
		<-lw.exited
	}
}
