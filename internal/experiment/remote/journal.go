package remote

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"specinterference/internal/experiment"
	"specinterference/internal/results"
)

// journalFormat is bumped whenever the journal's line encoding changes
// incompatibly; a journal with a different format is not replayable.
const journalFormat = 1

// journalHeader is the journal's first line: the run shape the entries
// belong to. Replay is gated on it — experiment, canonical params
// signature and shard count must all match the resuming run, so a
// journal can never be half-reused for a different run.
type journalHeader struct {
	Journal    int            `json:"journal"`
	Experiment string         `json:"experiment"`
	ParamsSig  string         `json:"params_sig"`
	Params     results.Params `json:"params"`
	Shards     int            `json:"shards"`
	// Run is the token of the run that created the journal — provenance
	// only; a resuming coordinator mints its own token.
	Run string `json:"run"`
}

// paramsSignature is the canonical SHA-256 of a params document; two
// runs are journal-compatible only when their signatures match.
// encoding/json renders Params deterministically (struct fields in
// declaration order), the same property the record signature relies on.
func paramsSignature(p results.Params) string {
	b, err := json.Marshal(p)
	if err != nil {
		panic("remote: params marshal: " + err.Error()) // Params marshals by construction
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// journal is the coordinator's append handle on its shard-result file:
// an append-only JSONL file (the results-store idiom) holding one
// header line followed by one experiment.ShardLine per accepted shard.
// Every line is written through to the OS as it is accepted, so a
// SIGKILLed coordinator loses at most the line it was mid-write on —
// which replay detects as a torn tail and drops.
type journal struct {
	path string
	f    *os.File
}

// openJournal opens (or creates) the journal at path for a run of spec
// at params over n shards, taking an exclusive advisory lock so two
// live coordinators can never interleave appends or truncate each
// other. A non-empty existing journal is replayed: the header must
// match the run shape exactly, and every intact entry is fed through
// replay; a torn final line (a coordinator killed mid-append) is
// truncated away, while corruption anywhere else — including a file
// that never was a journal — is a hard error, never a silent wipe.
// Returns the append handle positioned after the last intact line, and
// how many entries were replayed.
func openJournal(path string, spec *experiment.Spec, p results.Params, n int, run string, replay func(experiment.ShardLine) error) (*journal, int, error) {
	sig := paramsSignature(p)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("remote: journal %s: %w", path, err)
	}
	fail := func(err error) (*journal, int, error) {
		f.Close()
		return nil, 0, err
	}
	if err := lockJournal(f); err != nil {
		return fail(fmt.Errorf("remote: journal %s is held by another live coordinator: %w", path, err))
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		return fail(fmt.Errorf("remote: journal %s: %w", path, err))
	}

	keep := 0 // byte offset just past the last intact line
	replayed := 0
	sawHeader := false
	for rest, offset := raw, 0; len(rest) > 0; {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// An unterminated final line is a torn write from a killed
			// coordinator: drop it. At worst a complete-but-unterminated
			// entry re-runs its shard, which is always safe.
			break
		}
		line := bytes.TrimSpace(rest[:nl])
		switch {
		case len(line) == 0:
		case !sawHeader:
			var h journalHeader
			if err := json.Unmarshal(line, &h); err != nil || h.Journal != journalFormat {
				return fail(fmt.Errorf("remote: %s is not a shard-result journal", path))
			}
			if h.Experiment != spec.Name || h.ParamsSig != sig || h.Shards != n {
				return fail(fmt.Errorf(
					"remote: journal %s records a different run (%s, params %.12s, %d shards) than this one (%s, params %.12s, %d shards) — delete it or point -journal elsewhere",
					path, h.Experiment, h.ParamsSig, h.Shards, spec.Name, sig, n))
			}
			sawHeader = true
		default:
			var sl experiment.ShardLine
			if err := json.Unmarshal(line, &sl); err != nil {
				return fail(fmt.Errorf("remote: journal %s: corrupt entry after %d intact: %w", path, replayed, err))
			}
			if err := replay(sl); err != nil {
				return fail(fmt.Errorf("remote: journal %s: %w", path, err))
			}
			replayed++
		}
		offset += nl + 1
		keep = offset
		rest = raw[offset:]
	}
	if !sawHeader {
		// Only a file holding nothing but whitespace may be (re)written
		// from scratch. A non-empty file without one intact header line
		// is some other file — refusing beats truncating a stranger's
		// data to zero.
		if len(bytes.TrimSpace(raw)) > 0 {
			return fail(fmt.Errorf("remote: %s is not a shard-result journal", path))
		}
		keep = 0
	}

	if err := f.Truncate(int64(keep)); err != nil {
		return fail(fmt.Errorf("remote: journal %s: truncate torn tail: %w", path, err))
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return fail(fmt.Errorf("remote: journal %s: %w", path, err))
	}
	j := &journal{path: path, f: f}
	if !sawHeader {
		if err := j.writeLine(journalHeader{
			Journal: journalFormat, Experiment: spec.Name,
			ParamsSig: sig, Params: p, Shards: n, Run: run,
		}); err != nil {
			return fail(err)
		}
	}
	return j, replayed, nil
}

// append records one accepted shard result.
func (j *journal) append(sl experiment.ShardLine) error { return j.writeLine(sl) }

func (j *journal) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("remote: journal %s: encode: %w", j.path, err)
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("remote: journal %s: %w", j.path, err)
	}
	return nil
}

// close releases the file handle; nil-safe so Coordinator.Close works
// without a journal.
func (j *journal) close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}
