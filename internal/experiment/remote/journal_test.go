package remote

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"specinterference/internal/experiment"
	"specinterference/internal/results"
)

// journalPath returns a per-test journal file location.
func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.jsonl")
}

// completeShards posts correct results for the given shards under one
// all-covering lease.
func completeShards(t *testing.T, url string, p results.Params, shards ...int) Lease {
	t.Helper()
	l := grantLease(t, url, "filler")
	for _, shard := range shards {
		var ack ResultAck
		line := ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: shard, Value: encodeValue(t, p, shard)}}
		if status := postDoc(t, url+"/results", line, &ack); status != http.StatusOK {
			t.Fatalf("shard %d: status %d", shard, status)
		}
	}
	return l
}

// TestJournalResume: kill-and-restart in miniature. A first coordinator
// journals a few shards and is dropped mid-run; a second one on the same
// journal replays them, serves only the remainder, and completes with
// the correct values.
func TestJournalResume(t *testing.T) {
	p := results.Params{Trials: 6, Seed: 3}
	spec := testSpec(t)
	path := journalPath(t)

	first, url := startCoordinator(t, spec, p, 6, Config{Chunk: 6, Journal: path})
	if first.Replayed() != 0 {
		t.Fatalf("fresh journal replayed %d shards", first.Replayed())
	}
	completeShards(t, url, p, 0, 1, 4)
	// ...and the first coordinator dies here. (Close stands in for the
	// process dying: journal writes land per line, and death releases
	// the journal lock just like Close does.)
	first.Close()

	second, url2 := startCoordinator(t, spec, p, 6, Config{Chunk: 6, Journal: path})
	if got := second.Replayed(); got != 3 {
		t.Fatalf("restart replayed %d shards, want 3", got)
	}
	// Only the remainder is served: the re-issued spans skip the
	// journaled shards 0, 1 and 4.
	a := grantLease(t, url2, "resumer-a")
	b := grantLease(t, url2, "resumer-b")
	if a.Start != 2 || a.End != 4 || b.Start != 5 || b.End != 6 {
		t.Fatalf("resumed grants [%d,%d) [%d,%d), want [2,4) [5,6)", a.Start, a.End, b.Start, b.End)
	}
	for _, shard := range []int{2, 3} {
		var ack ResultAck
		if status := postDoc(t, url2+"/results", ResultLine{Run: a.Run, Lease: a.ID, ShardLine: experiment.ShardLine{Shard: shard, Value: encodeValue(t, p, shard)}}, &ack); status != http.StatusOK {
			t.Fatalf("shard %d: status %d", shard, status)
		}
	}
	var ack ResultAck
	if status := postDoc(t, url2+"/results", ResultLine{Run: b.Run, Lease: b.ID, ShardLine: experiment.ShardLine{Shard: 5, Value: encodeValue(t, p, 5)}}, &ack); status != http.StatusOK {
		t.Fatalf("shard 5: status %d", status)
	}
	select {
	case <-second.Finished():
	default:
		t.Fatal("resumed run not finished after the remainder completed")
	}
	vals, err := second.Values()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if want := float64(i*i) + float64(p.Seed); v != want {
			t.Errorf("shard %d = %v, want %v (journaled values must survive the restart)", i, v, want)
		}
	}
}

// TestJournalCompletedRun: a journal holding every shard makes the
// restarted coordinator start out finished — workers are sent home on
// their first poll and the values come straight from the journal.
func TestJournalCompletedRun(t *testing.T) {
	p := results.Params{Trials: 3, Seed: 9}
	spec := testSpec(t)
	path := journalPath(t)
	first, url := startCoordinator(t, spec, p, 3, Config{Chunk: 3, Journal: path})
	completeShards(t, url, p, 0, 1, 2)
	first.Close()

	second, url2 := startCoordinator(t, spec, p, 3, Config{Chunk: 3, Journal: path})
	select {
	case <-second.Finished():
	default:
		t.Fatal("fully journaled run did not start finished")
	}
	if l := grantLease(t, url2, "latecomer"); !l.Done {
		t.Errorf("lease on a fully journaled run = %+v, want done", l)
	}
	if _, err := second.Values(); err != nil {
		t.Errorf("Values() on a fully journaled run: %v", err)
	}
}

// TestJournalTornTail: a coordinator SIGKILLed mid-append leaves a
// partial final line; the restart drops the torn tail, keeps every
// intact entry, and new appends continue cleanly from there.
func TestJournalTornTail(t *testing.T) {
	p := results.Params{Trials: 4, Seed: 2}
	spec := testSpec(t)
	path := journalPath(t)
	first, url := startCoordinator(t, spec, p, 4, Config{Chunk: 4, Journal: path})
	completeShards(t, url, p, 0, 1)
	first.Close()

	// Simulate the kill mid-write: a trailing partial JSON line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"shard":2,"val`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	second, url2 := startCoordinator(t, spec, p, 4, Config{Chunk: 4, Journal: path})
	if got := second.Replayed(); got != 2 {
		t.Fatalf("replayed %d shards, want 2 (torn tail dropped)", got)
	}
	completeShards(t, url2, p, 2, 3)
	if _, err := second.Values(); err != nil {
		t.Fatal(err)
	}
	second.Close()

	// The journal is whole again: a third replay sees all four entries.
	third, _ := startCoordinator(t, spec, p, 4, Config{Chunk: 4, Journal: path})
	if got := third.Replayed(); got != 4 {
		t.Errorf("post-repair replay restored %d shards, want 4", got)
	}
}

// TestJournalIncompatible: a journal from a different run shape is a
// hard startup error, never a silent partial reuse.
func TestJournalIncompatible(t *testing.T) {
	spec := testSpec(t)
	p := results.Params{Trials: 4, Seed: 2}
	path := journalPath(t)
	first, url := startCoordinator(t, spec, p, 4, Config{Chunk: 4, Journal: path})
	completeShards(t, url, p, 0)
	first.Close()

	// Different params (the signature differs).
	if _, err := NewCoordinator(spec, results.Params{Trials: 4, Seed: 3}, 4, Config{Journal: path}); err == nil || !strings.Contains(err.Error(), "different run") {
		t.Errorf("different-params journal: err = %v, want hard rejection", err)
	}
	// Different shard count.
	if _, err := NewCoordinator(spec, p, 5, Config{Journal: path}); err == nil || !strings.Contains(err.Error(), "different run") {
		t.Errorf("different-shard-count journal: err = %v, want hard rejection", err)
	}
	// Not a journal at all.
	garbage := filepath.Join(t.TempDir(), "not-a-journal.jsonl")
	if err := os.WriteFile(garbage, []byte("hello world\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(spec, p, 4, Config{Journal: garbage}); err == nil || !strings.Contains(err.Error(), "not a shard-result journal") {
		t.Errorf("garbage journal: err = %v, want rejection", err)
	}
	// Corruption in the middle (not a torn tail) is also fatal.
	corrupt := filepath.Join(t.TempDir(), "corrupt.jsonl")
	seed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(corrupt, append(seed, []byte("{broken\n{\"shard\":1,\"value\":4}\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(spec, p, 4, Config{Journal: corrupt}); err == nil || !strings.Contains(err.Error(), "corrupt entry") {
		t.Errorf("mid-file corruption: err = %v, want rejection", err)
	}
	// A non-empty file whose first line never terminates is rejected,
	// not truncated to zero — it may be somebody's data, not a journal.
	unterminated := filepath.Join(t.TempDir(), "unterminated.jsonl")
	content := []byte("precious bytes with no trailing newline")
	if err := os.WriteFile(unterminated, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(spec, p, 4, Config{Journal: unterminated}); err == nil || !strings.Contains(err.Error(), "not a shard-result journal") {
		t.Errorf("unterminated non-journal: err = %v, want rejection", err)
	}
	if got, err := os.ReadFile(unterminated); err != nil || string(got) != string(content) {
		t.Errorf("rejected file was modified: %q (err %v)", got, err)
	}
}

// TestJournalLocked: a journal held by a live coordinator cannot be
// opened by a second one — interleaved appends and mutual truncation
// would corrupt the very file the restart contract depends on.
func TestJournalLocked(t *testing.T) {
	spec := testSpec(t)
	p := results.Params{Trials: 4}
	path := journalPath(t)
	first, _ := startCoordinator(t, spec, p, 4, Config{Chunk: 4, Journal: path})
	if _, err := NewCoordinator(spec, p, 4, Config{Journal: path}); err == nil || !strings.Contains(err.Error(), "another live coordinator") {
		t.Errorf("concurrent journal open: err = %v, want lock rejection", err)
	}
	// Closing the holder (as process death would) releases the lock.
	first.Close()
	second, err := NewCoordinator(spec, p, 4, Config{Journal: path})
	if err != nil {
		t.Fatalf("journal open after holder closed: %v", err)
	}
	second.Close()
}

// TestRenewCadenceFromRenewalsOnly pins the cadence estimator's input:
// result arrivals are beats but not renewals. If they fed the cadence,
// a fast-streaming worker's estimate would collapse to the inter-result
// interval and the adaptive deadline would sweep it mid-chunk the
// moment it hit one expensive shard.
func TestRenewCadenceFromRenewalsOnly(t *testing.T) {
	clock := &fakeClock{t: time.Unix(11000, 0)}
	p := results.Params{Trials: 9}
	coord, url := startCoordinator(t, testSpec(t), p, 9, Config{Chunk: 9, Lease: 9 * time.Second, Now: clock.Now})

	l := grantLease(t, url, "streamer")
	// Results land every second; the renew only comes 3s after grant.
	for shard := 0; shard < 2; shard++ {
		clock.Advance(time.Second)
		var ack ResultAck
		if status := postDoc(t, url+"/results", ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: shard, Value: encodeValue(t, p, shard)}}, &ack); status != http.StatusOK {
			t.Fatalf("shard %d: status %d", shard, status)
		}
	}
	clock.Advance(time.Second)
	if status := postDoc(t, url+"/renew", RenewRequest{ID: l.ID, Run: l.Run}, nil); status != http.StatusOK {
		t.Fatalf("renew: status %d", status)
	}
	coord.mu.Lock()
	got := coord.cadence["streamer"]
	coord.mu.Unlock()
	if got != 3*time.Second {
		t.Errorf("cadence = %v, want 3s (the grant-to-renew interval, not the 1s inter-result interval)", got)
	}
}

// TestLeaseRepollIdempotent pins the satellite-4 fix: a worker whose
// lease response was lost in transit retries POST /lease; while its
// grant is unexpired and unstarted it gets the same grant back, so the
// first chunk is never orphaned under a dead lease for a full TTL.
func TestLeaseRepollIdempotent(t *testing.T) {
	p := results.Params{Trials: 8}
	_, url := startCoordinator(t, testSpec(t), p, 8, Config{Chunk: 2})

	first := grantLease(t, url, "retrier")
	again := grantLease(t, url, "retrier")
	if again.ID != first.ID || again.Start != first.Start || again.End != first.End {
		t.Fatalf("re-poll granted %+v, want the original grant %+v back", again, first)
	}
	// A rejected line is not a sign of work: the grant stays unstarted
	// and a re-poll still returns it.
	if status := postDoc(t, url+"/results", ResultLine{Run: first.Run, Lease: first.ID, ShardLine: experiment.ShardLine{Shard: first.Start, Value: json.RawMessage(`"banana"`)}}, nil); status != http.StatusBadRequest {
		t.Fatalf("corrupt payload: status %d, want 400", status)
	}
	if l := grantLease(t, url, "retrier"); l.ID != first.ID {
		t.Fatalf("re-poll after rejected line granted %+v, want the original grant back", l)
	}
	// Another worker is unaffected and gets the next chunk.
	other := grantLease(t, url, "other")
	if other.ID == first.ID || other.Start != first.End {
		t.Fatalf("second worker granted %+v, want a fresh lease from shard %d", other, first.End)
	}
	// Once a result lands the grant is started: a re-poll now means
	// "give me more work", not a retry.
	var ack ResultAck
	if status := postDoc(t, url+"/results", ResultLine{Run: first.Run, Lease: first.ID, ShardLine: experiment.ShardLine{Shard: first.Start, Value: encodeValue(t, p, first.Start)}}, &ack); status != http.StatusOK {
		t.Fatalf("result: status %d", status)
	}
	next := grantLease(t, url, "retrier")
	if next.ID == first.ID {
		t.Fatalf("post-result re-poll returned the started grant %+v again", next)
	}
}

// TestRunTokenMismatch: every endpoint rejects requests carrying another
// run's token (or none) with 410.
func TestRunTokenMismatch(t *testing.T) {
	p := results.Params{Trials: 2}
	coord, url := startCoordinator(t, testSpec(t), p, 2, Config{Chunk: 2})
	l := grantLease(t, url, "honest")

	for _, run := range []string{"", "some-other-run"} {
		if status := postDoc(t, url+"/lease", LeaseRequest{Worker: "w", Run: run}, nil); status != http.StatusGone {
			t.Errorf("lease with run %q: status %d, want 410", run, status)
		}
		if status := postDoc(t, url+"/renew", RenewRequest{ID: l.ID, Run: run}, nil); status != http.StatusGone {
			t.Errorf("renew with run %q: status %d, want 410", run, status)
		}
		line := ResultLine{Run: run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 0, Value: encodeValue(t, p, 0)}}
		if status := postDoc(t, url+"/results", line, nil); status != http.StatusGone {
			t.Errorf("result with run %q: status %d, want 410", run, status)
		}
	}
	// None of it moved shard state.
	select {
	case <-coord.Finished():
		t.Fatal("cross-run traffic advanced the run")
	default:
	}
}

// TestOutOfSpanResult: a valid lease id does not authorize results for
// shards outside the span that lease granted — including shards from a
// neighbouring lease's span.
func TestOutOfSpanResult(t *testing.T) {
	p := results.Params{Trials: 6, Seed: 1}
	coord, url := startCoordinator(t, testSpec(t), p, 6, Config{Chunk: 3})
	l := grantLease(t, url, "scoped") // [0,3)
	if l.Start != 0 || l.End != 3 {
		t.Fatalf("lease = [%d,%d), want [0,3)", l.Start, l.End)
	}
	for _, shard := range []int{3, 5} {
		line := ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: shard, Value: encodeValue(t, p, shard)}}
		if status := postDoc(t, url+"/results", line, nil); status != http.StatusBadRequest {
			t.Errorf("out-of-span shard %d: status %d, want 400", shard, status)
		}
	}
	// In-span still lands fine afterwards.
	var ack ResultAck
	if status := postDoc(t, url+"/results", ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: 1, Value: encodeValue(t, p, 1)}}, &ack); status != http.StatusOK {
		t.Errorf("in-span shard 1: status %d, want 200", status)
	}
	if _, err := coord.Values(); err == nil {
		t.Error("out-of-span posts completed the run")
	}
}

// TestAdaptiveChunk: with no pinned -chunk, grant sizes track observed
// shard cost — instantaneous completions grow the next grants toward
// n/8, slow completions shrink them back to single shards. Values are
// untouched either way.
func TestAdaptiveChunk(t *testing.T) {
	clock := &fakeClock{t: time.Unix(5000, 0)}
	p := results.Params{Trials: 64}
	spec := testSpec(t)
	coord, url := startCoordinator(t, spec, p, 64, Config{Lease: 8 * time.Second, Now: clock.Now})

	// Adaptive start: n/32 = 2 shards.
	l := grantLease(t, url, "fast")
	if got := l.End - l.Start; got != 2 {
		t.Fatalf("first adaptive grant %d shards, want 2 (n/32)", got)
	}
	// The worker finishes both instantly (no clock movement): per-shard
	// cost collapses, so the next grant grows to the n/8 ceiling.
	for shard := l.Start; shard < l.End; shard++ {
		var ack ResultAck
		if status := postDoc(t, url+"/results", ResultLine{Run: l.Run, Lease: l.ID, ShardLine: experiment.ShardLine{Shard: shard, Value: encodeValue(t, p, shard)}}, &ack); status != http.StatusOK {
			t.Fatalf("shard %d: status %d", shard, status)
		}
	}
	grown := grantLease(t, url, "fast")
	if got := grown.End - grown.Start; got != 8 {
		t.Fatalf("post-fast-completion grant %d shards, want 8 (n/8 ceiling)", got)
	}
	// Now every shard takes 5s — more than the lease/4 budget — so
	// grants shrink back to one shard at a time.
	for shard := grown.Start; shard < grown.End; shard++ {
		clock.Advance(5 * time.Second)
		var ack ResultAck
		if status := postDoc(t, url+"/results", ResultLine{Run: grown.Run, Lease: grown.ID, ShardLine: experiment.ShardLine{Shard: shard, Value: encodeValue(t, p, shard)}}, &ack); status != http.StatusOK {
			t.Fatalf("shard %d: status %d", shard, status)
		}
		// Keep the lease alive while the slow work drags on.
		if status := postDoc(t, url+"/renew", RenewRequest{ID: grown.ID, Run: grown.Run}, nil); status != http.StatusOK {
			t.Fatalf("renew: status %d", status)
		}
	}
	shrunk := grantLease(t, url, "slow")
	if got := shrunk.End - shrunk.Start; got != 1 {
		t.Fatalf("post-slow-completion grant %d shards, want 1", got)
	}
	// Scheduling only: the values accepted so far are still exact.
	coord.mu.Lock()
	for i, d := range coord.done {
		if d && coord.values[i] != float64(i*i) {
			t.Errorf("shard %d = %v, want %v", i, coord.values[i], float64(i*i))
		}
	}
	coord.mu.Unlock()
}

// TestAdaptiveReclaim: a worker that renewed on a fast, steady cadence
// and then went silent loses its lease well before the hard TTL cliff —
// the re-issue deadline adapts to the observed heartbeat.
func TestAdaptiveReclaim(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9000, 0)}
	p := results.Params{Trials: 4}
	_, url := startCoordinator(t, testSpec(t), p, 4, Config{Chunk: 4, Lease: 10 * time.Second, Now: clock.Now})

	l := grantLease(t, url, "heartbeat")
	// Three renewals at a 1s cadence.
	for i := 0; i < 3; i++ {
		clock.Advance(time.Second)
		if status := postDoc(t, url+"/renew", RenewRequest{ID: l.ID, Run: l.Run}, nil); status != http.StatusOK {
			t.Fatalf("renew %d: status %d", i, status)
		}
	}
	// Then silence. 5s later — half the hard TTL, but 3×cadence (and
	// the lease/2 floor) passed with five missed beats — the chunk is
	// re-issued to the next asker.
	clock.Advance(5 * time.Second)
	got := grantLease(t, url, "vulture")
	if got.Wait || got.Done {
		t.Fatalf("5s after a 1s-cadence worker went silent: lease = %+v, want a re-issued grant", got)
	}
	if got.Start != 0 || got.End != 4 {
		t.Errorf("re-issued grant [%d,%d), want [0,4)", got.Start, got.End)
	}
}

// TestAdaptiveReclaimLowerBound: the adaptive deadline never undercuts
// TTL/2 — a worker renewing extremely often is not punished with a
// hair-trigger reclaim.
func TestAdaptiveReclaimLowerBound(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9500, 0)}
	p := results.Params{Trials: 4}
	_, url := startCoordinator(t, testSpec(t), p, 4, Config{Chunk: 4, Lease: 10 * time.Second, Now: clock.Now})

	l := grantLease(t, url, "eager")
	for i := 0; i < 4; i++ {
		clock.Advance(100 * time.Millisecond)
		if status := postDoc(t, url+"/renew", RenewRequest{ID: l.ID, Run: l.Run}, nil); status != http.StatusOK {
			t.Fatalf("renew %d: status %d", i, status)
		}
	}
	// 3×cadence would be 300ms, but the floor is lease/2 = 5s: at 4s of
	// silence the lease must still be held — a poacher gets at most a
	// speculative backup copy, never the reclaimed span itself.
	clock.Advance(4 * time.Second)
	if got := grantLease(t, url, "vulture"); !got.Backup {
		t.Errorf("4s after last beat (floor 5s): lease = %+v, want a backup copy (primary still held)", got)
	}
	if status := postDoc(t, url+"/renew", RenewRequest{ID: l.ID, Run: l.Run}, nil); status != http.StatusOK {
		t.Errorf("renew before the floor: status %d, want %d (lease was reclaimed)", status, http.StatusOK)
	}
}
