package experiment

import (
	"context"
	"fmt"
	"sort"
	"time"

	"specinterference/internal/results"
	"specinterference/internal/runner"
)

// Backend executes an experiment's shards. Implementations must return
// the concrete shard values in index order; under the spec purity
// contract every backend then produces bit-identical aggregates.
type Backend interface {
	// Name is the backend's CLI name (-backend flag value).
	Name() string
	// Run executes shards [0, n) of spec at params and returns their
	// values in index order. done, when non-nil, is invoked once per
	// completed shard (possibly concurrently).
	Run(ctx context.Context, spec *Spec, p results.Params, n int, done func()) ([]any, error)
}

// InProcess runs shards on the existing bounded worker pool
// (internal/runner) inside the current process — the default backend.
type InProcess struct {
	// Workers bounds shard concurrency (0 = one worker per CPU).
	Workers int
}

// Name implements Backend.
func (InProcess) Name() string { return "inprocess" }

// Run implements Backend.
func (b InProcess) Run(ctx context.Context, spec *Spec, p results.Params, n int, done func()) ([]any, error) {
	state, err := spec.prepare(p)
	if err != nil {
		return nil, err
	}
	return runner.Map(ctx, n, b.Workers, func(ctx context.Context, i int) (any, error) {
		v, err := spec.Run(ctx, state, p, i)
		if err == nil && done != nil {
			done()
		}
		return v, err
	})
}

// BackendOptions carries every backend-construction knob the CLIs expose;
// each backend reads the fields it understands and ignores the rest.
type BackendOptions struct {
	// Procs is the worker-process count: subprocess workers, or local
	// remote workers spawned next to the coordinator (remote: 0 = none,
	// wait for external workers; subprocess: 0 = one per CPU).
	Procs int
	// Workers bounds shard-goroutine concurrency inside each worker.
	Workers int
	// Chunk is the scheduler granularity: shards per lease (remote) or
	// per dispatched range (subprocess). 0 picks an automatic size.
	Chunk int
	// Listen is the remote coordinator's listen address
	// ("" = 127.0.0.1:0, a loopback ephemeral port).
	Listen string
	// Lease is the remote backend's lease time-to-live (0 = default).
	Lease time.Duration
	// Journal is the remote coordinator's shard-result journal
	// directory ("" = journaling disabled): accepted results append to
	// <dir>/<experiment>.jsonl, and a restarted coordinator replays a
	// compatible journal and serves only the remainder.
	Journal string
}

// BackendFactory constructs a backend from CLI options.
type BackendFactory func(o BackendOptions) (Backend, error)

var backendFactories = map[string]BackendFactory{
	"inprocess": func(o BackendOptions) (Backend, error) {
		return InProcess{Workers: o.Workers}, nil
	},
	"subprocess": func(o BackendOptions) (Backend, error) {
		return Subprocess{Procs: o.Procs, Workers: o.Workers, Chunk: o.Chunk}, nil
	},
}

// RegisterBackendFactory adds a named backend constructor; packages that
// cannot be imported from here (internal/experiment/remote imports this
// package) register themselves from init, and linking them in makes the
// name resolvable. Duplicate names panic, like Register.
func RegisterBackendFactory(name string, f BackendFactory) {
	if name == "" || f == nil {
		panic("experiment: backend factory with empty name or nil constructor")
	}
	if _, dup := backendFactories[name]; dup {
		panic("experiment: duplicate backend factory " + name)
	}
	backendFactories[name] = f
}

// BackendNames lists the resolvable backend names in sorted order.
func BackendNames() []string {
	names := make([]string, 0, len(backendFactories))
	for n := range backendFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewBackendOptions constructs a backend from its CLI name and the full
// option set: "inprocess" (worker goroutines), "subprocess" (worker
// processes) or — when internal/experiment/remote is linked in — "remote"
// (an HTTP coordinator leasing shard chunks to network workers).
func NewBackendOptions(name string, o BackendOptions) (Backend, error) {
	if name == "" {
		name = "inprocess"
	}
	f, ok := backendFactories[name]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown backend %q (want one of %v)", name, BackendNames())
	}
	return f(o)
}

// NewBackend constructs a backend from its CLI name with only the procs
// and workers knobs — the pre-remote signature, kept for callers that
// don't care about scheduler or network options.
func NewBackend(name string, procs, workers int) (Backend, error) {
	return NewBackendOptions(name, BackendOptions{Procs: procs, Workers: workers})
}
