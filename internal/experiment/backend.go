package experiment

import (
	"context"
	"fmt"

	"specinterference/internal/results"
	"specinterference/internal/runner"
)

// Backend executes an experiment's shards. Implementations must return
// the concrete shard values in index order; under the spec purity
// contract every backend then produces bit-identical aggregates.
type Backend interface {
	// Name is the backend's CLI name (-backend flag value).
	Name() string
	// Run executes shards [0, n) of spec at params and returns their
	// values in index order. done, when non-nil, is invoked once per
	// completed shard (possibly concurrently).
	Run(ctx context.Context, spec *Spec, p results.Params, n int, done func()) ([]any, error)
}

// InProcess runs shards on the existing bounded worker pool
// (internal/runner) inside the current process — the default backend.
type InProcess struct {
	// Workers bounds shard concurrency (0 = one worker per CPU).
	Workers int
}

// Name implements Backend.
func (InProcess) Name() string { return "inprocess" }

// Run implements Backend.
func (b InProcess) Run(ctx context.Context, spec *Spec, p results.Params, n int, done func()) ([]any, error) {
	state, err := spec.prepare(p)
	if err != nil {
		return nil, err
	}
	return runner.Map(ctx, n, b.Workers, func(ctx context.Context, i int) (any, error) {
		v, err := spec.Run(ctx, state, p, i)
		if err == nil && done != nil {
			done()
		}
		return v, err
	})
}

// NewBackend constructs a backend from its CLI name: "inprocess" (worker
// goroutines, the workers knob) or "subprocess" (worker processes, the
// procs knob, workers goroutines inside each).
func NewBackend(name string, procs, workers int) (Backend, error) {
	switch name {
	case "", "inprocess":
		return InProcess{Workers: workers}, nil
	case "subprocess":
		return Subprocess{Procs: procs, Workers: workers}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown backend %q (want inprocess or subprocess)", name)
	}
}
