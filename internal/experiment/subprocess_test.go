package experiment

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"

	"specinterference/internal/results"
)

// test-stderr is a spec whose shards write diagnostics to stderr — from
// inside the worker process when run under the subprocess backend — so
// the framing of concurrent workers' stderr can be pinned.
func init() {
	Register(&Spec{
		Name: "test-stderr",
		Plan: func(p results.Params) (int, error) { return p.Trials, nil },
		Run: func(_ context.Context, _ any, p results.Params, i int) (any, error) {
			fmt.Fprintf(os.Stderr, "shard %d reporting\n", i)
			return float64(i), nil
		},
		NewShard: func() any { return new(float64) },
		Aggregate: func(p results.Params, shards []any) (*results.Record, error) {
			return nil, fmt.Errorf("framing tests never aggregate")
		},
	})
}

// TestChunkSpans pins the scheduler granularity: explicit chunk sizes
// tile [0, n) exactly; automatic sizing aims at about four chunks per
// worker and never goes below one shard.
func TestChunkSpans(t *testing.T) {
	for _, tc := range []struct {
		n, chunk, procs int
		want            []Span
	}{
		{7, 3, 1, []Span{{0, 3}, {3, 6}, {6, 7}}},
		{4, 10, 1, []Span{{0, 4}}},
		{6, 1, 2, []Span{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}}},
		// auto: 32 shards / (4 chunks × 2 procs) = 4 per chunk.
		{32, 0, 2, []Span{{0, 4}, {4, 8}, {8, 12}, {12, 16}, {16, 20}, {20, 24}, {24, 28}, {28, 32}}},
		// auto never drops below one shard per chunk.
		{3, 0, 8, []Span{{0, 1}, {1, 2}, {2, 3}}},
	} {
		got := chunkSpans(tc.n, tc.chunk, tc.procs)
		if len(got) != len(tc.want) {
			t.Errorf("chunkSpans(%d,%d,%d) = %v, want %v", tc.n, tc.chunk, tc.procs, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("chunkSpans(%d,%d,%d)[%d] = %v, want %v", tc.n, tc.chunk, tc.procs, i, got[i], tc.want[i])
			}
		}
	}
}

// TestCopyPrefixedLines pins the framing primitive: every line gets the
// prefix, and a final unterminated line (a crashing worker's last words)
// is still emitted.
func TestCopyPrefixedLines(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	CopyPrefixedLines(&buf, &mu, "[worker 3] ", strings.NewReader("alpha\nbeta\n\ngamma"))
	want := "[worker 3] alpha\n[worker 3] beta\n[worker 3] \n[worker 3] gamma\n"
	if buf.String() != want {
		t.Errorf("framed output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// TestCopyPrefixedLinesConcurrent: two sources sharing one mutex and
// destination never interleave mid-line — the bug this framing fixes.
func TestCopyPrefixedLinesConcurrent(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	const lines = 200
	src := func(id int) string {
		var sb strings.Builder
		for i := 0; i < lines; i++ {
			fmt.Fprintf(&sb, "worker %d line %d\n", id, i)
		}
		return sb.String()
	}
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			CopyPrefixedLines(&buf, &mu, fmt.Sprintf("[worker %d] ", id), strings.NewReader(src(id)))
		}(id)
	}
	wg.Wait()

	framed := regexp.MustCompile(`^\[worker ([01])\] worker ([01]) line \d+$`)
	got := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(got) != 2*lines {
		t.Fatalf("%d framed lines, want %d", len(got), 2*lines)
	}
	for _, line := range got {
		m := framed.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed framed line %q", line)
		}
		if m[1] != m[2] {
			t.Errorf("line %q framed under the wrong worker", line)
		}
	}
}

// TestSubprocessStderrFraming is the end-to-end pin: stderr from
// concurrent worker processes arrives line-framed and attributed, and
// every shard's diagnostic line survives exactly once.
func TestSubprocessStderrFraming(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	spec, err := Lookup("test-stderr")
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var buf bytes.Buffer
	b := Subprocess{Procs: 2, Chunk: 2, Stderr: &buf}
	out, err := b.Run(context.Background(), spec, results.Params{Trials: n}, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != float64(i) {
			t.Errorf("shard %d = %v, want %v", i, v, float64(i))
		}
	}

	framed := regexp.MustCompile(`^\[worker \d+\] shard (\d+) reporting$`)
	seen := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		m := framed.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("stderr line %q is not worker-framed", line)
		}
		seen[m[1]]++
	}
	if len(seen) != n {
		t.Errorf("saw %d distinct shard diagnostics, want %d (%v)", len(seen), n, seen)
	}
	for shard, count := range seen {
		if count != 1 {
			t.Errorf("shard %s diagnostic appeared %d times", shard, count)
		}
	}
}
