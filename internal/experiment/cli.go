package experiment

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"specinterference/internal/results"
)

// CLIConfig wires one experiment binary onto the shared driver: the
// driver owns the common machinery — the -parallel/-backend/-procs/
// -json/-store/-progress/-scale flags, hidden shard-worker mode, backend
// selection, store recording — while the config supplies what actually
// differs per experiment: its flags, and how a finished record renders.
type CLIConfig struct {
	// Name is the binary name, used for diagnostics and flag errors.
	Name string
	// Experiment is the registry name of the spec to run.
	Experiment string
	// Flags registers the experiment-specific flags on fs and returns a
	// builder invoked after parsing to validate them and produce the run
	// parameters.
	Flags func(fs *flag.FlagSet) func() (results.Params, error)
	// Text writes the human-readable rendering of a finished record to w.
	Text func(w io.Writer, rec *results.Record) error
	// JSON returns the -json document for a finished record. The driver
	// encodes it as a single line on stdout, preserving each binary's
	// established machine-readable shape.
	JSON func(rec *results.Record) (any, error)
	// After, when non-nil, runs post-output checks (vulnmatrix -verify);
	// a non-nil error exits 1 after printing it to stderr, and the hook
	// may exit directly for custom diagnostics.
	After func(rec *results.Record, jsonMode bool) error
}

// progressInterval is how often -progress reports to stderr.
const progressInterval = 2 * time.Second

// Main is the shared experiment-CLI entry point.
func Main(cfg CLIConfig) {
	// A process spawned by the subprocess backend never comes back from
	// this call: it serves its shard range and exits.
	RunWorkerIfRequested()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", cfg.Name, err)
		os.Exit(1)
	}

	fs := flag.NewFlagSet(cfg.Name, flag.ExitOnError)
	build := cfg.Flags(fs)
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = one per CPU in-process, serial inside each subprocess/remote worker); results identical at any value")
	backendName := fs.String("backend", "inprocess", "execution backend: inprocess (worker goroutines), subprocess (re-exec'd worker processes) or remote (HTTP coordinator leasing shard chunks to workers)")
	procs := fs.Int("procs", 0, "worker processes: subprocess workers (0 = one per CPU) or local remote workers spawned next to the coordinator (0 = none, wait for external -remote-worker processes)")
	listen := fs.String("listen", "", "remote backend: coordinator listen address (default 127.0.0.1:0, a loopback ephemeral port)")
	lease := fs.Duration("lease", 0, "remote backend: shard-lease time-to-live before unfinished work is re-issued (0 = 10s)")
	chunk := fs.Int("chunk", 0, "shards per lease/dispatch chunk for the remote and subprocess schedulers (0 = automatic: subprocess uses about four chunks per worker; remote adapts to observed shard cost)")
	journal := fs.String("journal", "", "remote backend: shard-result journal directory for resumable coordinator restarts (accepted results append to <dir>/<experiment>.jsonl; a restarted run replays it and serves only the remainder)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of the text rendering")
	storeDir := fs.String("store", "", "append a run record to this results-store directory")
	progress := fs.Bool("progress", false, "report shard completion to stderr (for long sweeps; off by default)")
	scale := fs.Int("scale", 1, "multiply the experiment's trial-style counts by N (larger sweeps now that shards span processes)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (analyze with `go tool pprof`)")
	memProfile := fs.String("memprofile", "", "write an allocation profile taken after the run to this file")
	fs.Parse(os.Args[1:])
	if fs.NArg() > 0 {
		die(fmt.Errorf("unexpected arguments: %v", fs.Args()))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			die(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			die(err)
		}
		// Main exits through die() on every error path, so profile teardown
		// cannot rely on defers alone; die stops the profile before exiting.
		stop := func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stop()
		prevDie := die
		die = func(err error) {
			stop()
			prevDie(err)
		}
	}
	if *memProfile != "" {
		prevDie, prof := die, *memProfile
		writeHeap := func() error {
			f, err := os.Create(prof)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize the live-heap picture before snapshotting
			return pprof.WriteHeapProfile(f)
		}
		defer func() {
			if err := writeHeap(); err != nil {
				prevDie(err)
			}
		}()
	}

	spec, err := Lookup(cfg.Experiment)
	if err != nil {
		die(err)
	}
	p, err := build()
	if err != nil {
		die(err)
	}
	if *scale != 1 {
		if *scale < 1 {
			die(fmt.Errorf("-scale must be >= 1, got %d", *scale))
		}
		if spec.Scale == nil {
			die(fmt.Errorf("-scale is not supported: this experiment has no trial-count axis"))
		}
		p = spec.Scale(p, *scale)
	}
	backend, err := NewBackendOptions(*backendName, BackendOptions{
		Procs: *procs, Workers: *parallel,
		Chunk: *chunk, Listen: *listen, Lease: *lease, Journal: *journal,
	})
	if err != nil {
		die(err)
	}
	n, err := spec.Plan(p)
	if err != nil {
		die(err)
	}

	var (
		reporter *progressReporter
		done     func()
	)
	if *progress {
		reporter = startProgress(os.Stderr, cfg.Name, n, progressInterval)
		done = reporter.tick
	}
	start := time.Now()
	rec, err := Run(context.Background(), spec, p, backend, done)
	reporter.finish()
	if err != nil {
		die(err)
	}

	if *storeDir != "" {
		rec.Meta.Backend = backend.Name()
		if backend.Name() != "inprocess" {
			rec.Meta.Procs = *procs
		}
		if err := results.RecordRun(*storeDir, rec, *parallel, time.Since(start)); err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "recorded %s run %.12s to %s\n", rec.Experiment, rec.Hash, *storeDir)
	}

	if *jsonOut {
		doc, err := cfg.JSON(rec)
		if err != nil {
			die(err)
		}
		if err := json.NewEncoder(os.Stdout).Encode(doc); err != nil {
			die(err)
		}
	} else if err := cfg.Text(os.Stdout, rec); err != nil {
		die(err)
	}

	if cfg.After != nil {
		if err := cfg.After(rec, *jsonOut); err != nil {
			die(err)
		}
	}
}
