package experiment

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// progressReporter periodically reports shard completion to a writer
// (stderr on the CLIs' -progress flag). It prints one line at start, one
// every interval, and one at finish, so even sweeps shorter than the
// interval produce a visible begin/end pair. Reporting never touches
// stdout: golden output stays byte-identical whether or not it is on.
type progressReporter struct {
	w        io.Writer
	label    string
	total    int
	started  time.Time
	done     atomic.Int64
	lastSeen int64
	stop     chan struct{}
	wg       sync.WaitGroup
}

// startProgress begins reporting `total` shards under `label` every
// interval. Call tick once per completed shard and finish when done.
func startProgress(w io.Writer, label string, total int, interval time.Duration) *progressReporter {
	p := &progressReporter{
		w: w, label: label, total: total,
		started: time.Now(), stop: make(chan struct{}),
	}
	p.print()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// Quiet while nothing completed: long shards should not
				// produce a wall of identical lines.
				if n := p.done.Load(); n != p.lastSeen {
					p.lastSeen = n
					p.print()
				}
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

// tick records one completed shard; safe for concurrent use.
func (p *progressReporter) tick() { p.done.Add(1) }

// finish stops the reporter and prints the final completion line.
func (p *progressReporter) finish() {
	if p == nil {
		return
	}
	close(p.stop)
	p.wg.Wait()
	p.print()
}

// print emits one status line.
func (p *progressReporter) print() {
	n := p.done.Load()
	pct := 100.0
	if p.total > 0 {
		pct = 100 * float64(n) / float64(p.total)
	}
	fmt.Fprintf(p.w, "%s: %d/%d shards (%.0f%%, %s)\n",
		p.label, n, p.total, pct, time.Since(p.started).Round(time.Millisecond))
}
