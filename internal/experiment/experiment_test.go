package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"specinterference/internal/results"
)

// TestMain lets this test binary serve as a subprocess-backend shard
// worker when the Subprocess tests re-exec it.
func TestMain(m *testing.M) {
	RunWorkerIfRequested()
	os.Exit(m.Run())
}

// failSpec is a test-only spec whose shard `failAt` errors; it must be
// registered from init so re-exec'd worker processes know it too.
const failAt = 3

func init() {
	Register(&Spec{
		Name: "test-fail",
		Plan: func(p results.Params) (int, error) { return p.Trials, nil },
		Run: func(_ context.Context, _ any, p results.Params, i int) (any, error) {
			if i == failAt {
				return nil, fmt.Errorf("shard %d exploded", i)
			}
			return float64(i), nil
		},
		NewShard: func() any { return new(float64) },
		Aggregate: func(p results.Params, shards []any) (*results.Record, error) {
			return nil, fmt.Errorf("aggregate must not run after a shard failure")
		},
	})
}

func TestRegistryNames(t *testing.T) {
	want := []string{"concordance", "figure11", "figure12", "figure7", "table1", "test-fail", "test-stderr"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
	if _, err := Lookup("figure7"); err != nil {
		t.Errorf("Lookup(figure7): %v", err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup(nope) succeeded")
	}
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(&Spec{Name: "figure7"})
}

// TestPlanCounts pins the shard grids to the serial loops' trial counts.
func TestPlanCounts(t *testing.T) {
	for _, tc := range []struct {
		exp  string
		p    results.Params
		want int
	}{
		{"figure7", results.Params{Trials: 5, Jitter: 1, Seed: 1}, 10},
		{"table1", results.Params{Schemes: []string{"unsafe", "dom"}}, 14},
		// 2 pocs × 3 bits × (1+3) reps.
		{"figure11", results.Params{PoCs: []string{"dcache", "icache"}, Bits: 3, Reps: []int{1, 3}, Seed: 1}, 24},
		// 6 workloads × (1 baseline + 2 schemes).
		{"figure12", results.Params{Iters: 10, Schemes: []string{"fence-spectre", "fence-futuristic"}}, 18},
	} {
		spec, err := Lookup(tc.exp)
		if err != nil {
			t.Fatal(err)
		}
		n, err := spec.Plan(tc.p)
		if err != nil {
			t.Errorf("%s: Plan: %v", tc.exp, err)
			continue
		}
		if n != tc.want {
			t.Errorf("%s: Plan = %d shards, want %d", tc.exp, n, tc.want)
		}
	}
}

// TestPlanValidation: bad parameters must fail planning, not execution.
func TestPlanValidation(t *testing.T) {
	for _, tc := range []struct {
		exp string
		p   results.Params
	}{
		{"figure7", results.Params{Trials: 0}},
		{"table1", results.Params{}},
		{"figure11", results.Params{PoCs: []string{"dcache"}, Bits: 0, Reps: []int{1}}},
		{"figure11", results.Params{PoCs: []string{"dcache"}, Bits: 2, Reps: []int{0}}},
		{"figure11", results.Params{PoCs: []string{"l4cache"}, Bits: 2, Reps: []int{1}}},
		{"figure12", results.Params{Iters: 0, Schemes: []string{"fence-spectre"}}},
		{"figure12", results.Params{Iters: 5}},
	} {
		spec, err := Lookup(tc.exp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := spec.Plan(tc.p); err == nil {
			t.Errorf("%s: Plan(%+v) succeeded, want error", tc.exp, tc.p)
		}
	}
}

// TestScaleHooks: -scale multiplies the trial-style axis and leaves the
// rest of the params alone.
func TestScaleHooks(t *testing.T) {
	f7, _ := Lookup("figure7")
	if p := f7.Scale(results.Params{Trials: 4, Jitter: 9, Seed: 2}, 3); p.Trials != 12 || p.Jitter != 9 || p.Seed != 2 {
		t.Errorf("figure7 scale: %+v", p)
	}
	f11, _ := Lookup("figure11")
	if p := f11.Scale(results.Params{Bits: 2, Reps: []int{1, 3}}, 4); p.Bits != 8 || len(p.Reps) != 2 {
		t.Errorf("figure11 scale: %+v", p)
	}
	f12, _ := Lookup("figure12")
	if p := f12.Scale(results.Params{Iters: 10}, 2); p.Iters != 20 {
		t.Errorf("figure12 scale: %+v", p)
	}
	t1, _ := Lookup("table1")
	if t1.Scale != nil {
		t.Error("table1 must not declare a scale axis")
	}
}

// TestRunProgressCallback: the done hook fires once per shard.
func TestRunProgressCallback(t *testing.T) {
	spec, _ := Lookup("figure7")
	p := results.Params{Trials: 3, Jitter: 2, Seed: 1}
	var done atomic.Int64
	if _, err := Run(context.Background(), spec, p, InProcess{Workers: 2}, func() { done.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if done.Load() != 6 {
		t.Errorf("done fired %d times, want 6", done.Load())
	}
}

// TestShardErrorInProcess: a failing shard aborts the run with its error
// and aggregation never runs.
func TestShardErrorInProcess(t *testing.T) {
	spec, _ := Lookup("test-fail")
	_, err := Run(context.Background(), spec, results.Params{Trials: 8}, InProcess{Workers: 2}, nil)
	if err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Errorf("err = %v, want the shard failure", err)
	}
}

// TestShardErrorSubprocess: the worker streams the failure back and the
// parent surfaces it.
func TestShardErrorSubprocess(t *testing.T) {
	spec, _ := Lookup("test-fail")
	_, err := Run(context.Background(), spec, results.Params{Trials: 8}, Subprocess{Procs: 2}, nil)
	if err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Errorf("err = %v, want the shard failure", err)
	}
}

// TestNewBackend covers name resolution.
func TestNewBackend(t *testing.T) {
	for name, want := range map[string]string{"": "inprocess", "inprocess": "inprocess", "subprocess": "subprocess"} {
		b, err := NewBackend(name, 0, 0)
		if err != nil || b.Name() != want {
			t.Errorf("NewBackend(%q) = %v, %v", name, b, err)
		}
	}
	if _, err := NewBackend("carrier-pigeon", 0, 0); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestShardJSONRoundTrip pins the subprocess wire contract: every spec's
// shard value must survive Marshal → Unmarshal-into-NewShard losslessly,
// which is what makes the two backends bit-identical.
func TestShardJSONRoundTrip(t *testing.T) {
	for _, exp := range []string{"figure7", "table1", "figure11", "figure12"} {
		spec, err := Lookup(exp)
		if err != nil {
			t.Fatal(err)
		}
		p := smallParams(t, exp)
		state, err := spec.prepare(p)
		if err != nil {
			t.Fatal(err)
		}
		v, err := spec.Run(context.Background(), state, p, 0)
		if err != nil {
			t.Fatalf("%s: Run: %v", exp, err)
		}
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: marshal: %v", exp, err)
		}
		back, err := DecodeShard(spec, raw)
		if err != nil {
			t.Fatalf("%s: decode: %v", exp, err)
		}
		if !reflect.DeepEqual(v, back) {
			t.Errorf("%s: shard value changed across the wire:\n  sent %#v\n  got  %#v", exp, v, back)
		}
	}
}

// smallParams returns tiny but valid params for an experiment.
func smallParams(t *testing.T, exp string) results.Params {
	t.Helper()
	switch exp {
	case "figure7":
		return results.Params{Trials: 2, Jitter: 3, Seed: 1}
	case "table1":
		return results.Params{Schemes: []string{"unsafe"}}
	case "figure11":
		return results.Params{PoCs: []string{"dcache"}, Bits: 2, Reps: []int{1}, Seed: 1}
	case "figure12":
		return results.Params{Iters: 30, Schemes: []string{"fence-spectre"}}
	default:
		t.Fatalf("unknown experiment %q", exp)
		return results.Params{}
	}
}
