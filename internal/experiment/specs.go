package experiment

import (
	"context"
	"fmt"

	"specinterference/internal/channel"
	"specinterference/internal/core"
	"specinterference/internal/detect"
	"specinterference/internal/results"
	"specinterference/internal/workload"
)

// The paper-artifact specs. Each one decomposes its experiment into
// the exact shard grid the pre-engine harnesses used and reuses their
// per-shard primitives and serial-order aggregators, so records produced
// here carry the same canonical signatures as the committed baselines.
func init() {
	Register(figure7Spec())
	Register(table1Spec())
	Register(figure11Spec())
	Register(figure12Spec())
	Register(concordanceSpec())
}

// figure7Spec shards the §4.2.1 contention histogram one trial per shard:
// baseline arm in [0, trials), interference arm in [trials, 2*trials),
// seed = seedBase + 2*trial + secret.
func figure7Spec() *Spec {
	return &Spec{
		Name: results.ExpFigure7,
		Plan: func(p results.Params) (int, error) {
			return core.Figure7Shards(p.Trials)
		},
		Run: func(_ context.Context, _ any, p results.Params, i int) (any, error) {
			return core.Figure7Shard(p.Trials, p.Jitter, p.Seed, i)
		},
		NewShard: func() any { return new(float64) },
		Aggregate: func(p results.Params, shards []any) (*results.Record, error) {
			lats := make([]float64, len(shards))
			for i, s := range shards {
				lats[i] = s.(float64)
			}
			res := core.BuildFigure7Result(lats[:p.Trials:p.Trials], lats[p.Trials:])
			return results.NewFigure7Record(res, p.Trials, p.Jitter, p.Seed)
		},
		Scale: func(p results.Params, k int) results.Params {
			p.Trials *= k
			return p
		},
	}
}

// table1Spec shards the vulnerability matrix one cell per
// scheme×gadget×ordering combination, in the serial loop's cell order.
func table1Spec() *Spec {
	return &Spec{
		Name: results.ExpTable1,
		Plan: func(p results.Params) (int, error) {
			if len(p.Schemes) == 0 {
				return 0, fmt.Errorf("experiment: table1 needs at least one scheme")
			}
			return core.MatrixShards(p.Schemes), nil
		},
		Run: func(_ context.Context, _ any, p results.Params, i int) (any, error) {
			return core.MatrixShard(p.Schemes, i)
		},
		NewShard: func() any { return new(core.MatrixCell) },
		Aggregate: func(p results.Params, shards []any) (*results.Record, error) {
			cells := make([]core.MatrixCell, len(shards))
			for i, s := range shards {
				cells[i] = s.(core.MatrixCell)
			}
			return results.NewTable1Record(cells, p.Schemes)
		},
	}
}

// concordanceSpec shards the detector agreement grid one cell per
// scheme×gadget×ordering combination, matching table1's cell order: each
// shard runs both the empirical classification and the static analysis.
func concordanceSpec() *Spec {
	return &Spec{
		Name: results.ExpConcordance,
		Plan: func(p results.Params) (int, error) {
			if len(p.Schemes) == 0 {
				return 0, fmt.Errorf("experiment: concordance needs at least one scheme")
			}
			return detect.Shards(p.Schemes), nil
		},
		Run: func(_ context.Context, _ any, p results.Params, i int) (any, error) {
			return detect.Shard(p.Schemes, i)
		},
		NewShard: func() any { return new(detect.Cell) },
		Aggregate: func(p results.Params, shards []any) (*results.Record, error) {
			cells := make([]detect.Cell, len(shards))
			for i, s := range shards {
				cells[i] = s.(detect.Cell)
			}
			return results.NewConcordanceRecord(cells, p.Schemes)
		},
	}
}

// figure11State is the per-process state of a channel sweep: constructed
// PoCs and the per-point derived values every shard needs. All of it is a
// deterministic function of the params.
type figure11State struct {
	pocs []*core.PoC
	// perPoc is the shard count of one PoC's full curve.
	perPoc int
	// offset[pt] is the first flattened trial index of curve point pt
	// within a PoC's shard range; point pt spans bits*reps[pt] trials.
	offset []int
	// sent[pt] holds point pt's transmitted bits, drawn exactly as the
	// serial measurement drew them.
	sent [][]int
}

func newFigure11State(p results.Params) (*figure11State, error) {
	st := &figure11State{}
	for _, name := range p.PoCs {
		poc, err := channel.PoCByName(name)
		if err != nil {
			return nil, err
		}
		st.pocs = append(st.pocs, poc)
	}
	for pt, reps := range p.Reps {
		if reps < 1 {
			return nil, fmt.Errorf("experiment: figure11 reps must be >= 1, got %d", reps)
		}
		st.offset = append(st.offset, st.perPoc)
		st.sent = append(st.sent, channel.DrawBits(channel.PointSeedBase(p.Seed, pt), p.Bits))
		st.perPoc += p.Bits * reps
	}
	return st, nil
}

// locate resolves flattened shard j into (poc, point, trial-within-point).
func (st *figure11State) locate(p results.Params, j int) (poc *core.PoC, pt, trial int) {
	poc = st.pocs[j/st.perPoc]
	r := j % st.perPoc
	pt = len(st.offset) - 1
	for pt > 0 && r < st.offset[pt] {
		pt--
	}
	return poc, pt, r - st.offset[pt]
}

// figure11Spec shards the Figure 11 error-versus-rate sweep one PoC trial
// per shard: PoCs outermost, then curve points, then the bits×reps trial
// grid of each point, seeded exactly as the serial measurement loops.
func figure11Spec() *Spec {
	return &Spec{
		Name: results.ExpFigure11,
		Plan: func(p results.Params) (int, error) {
			if p.Bits < 1 {
				return 0, fmt.Errorf("experiment: figure11 bits must be >= 1, got %d", p.Bits)
			}
			if len(p.Reps) == 0 || len(p.PoCs) == 0 {
				return 0, fmt.Errorf("experiment: figure11 needs at least one poc and one reps value")
			}
			// Validate without building the per-process state: the count
			// is just pocs × bits × Σreps.
			for _, name := range p.PoCs {
				if _, err := channel.PoCByName(name); err != nil {
					return 0, err
				}
			}
			perPoc := 0
			for _, reps := range p.Reps {
				if reps < 1 {
					return 0, fmt.Errorf("experiment: figure11 reps must be >= 1, got %d", reps)
				}
				perPoc += p.Bits * reps
			}
			return len(p.PoCs) * perPoc, nil
		},
		Prepare: func(p results.Params) (any, error) { return newFigure11State(p) },
		Run: func(_ context.Context, state any, p results.Params, j int) (any, error) {
			st := state.(*figure11State)
			poc, pt, trial := st.locate(p, j)
			seedBase := channel.PointSeedBase(p.Seed, pt)
			bit := st.sent[pt][trial/p.Reps[pt]]
			return poc.RunBit(bit, channel.TrialSeed(seedBase, trial))
		},
		NewShard: func() any { return new(core.BitOutcome) },
		Aggregate: func(p results.Params, shards []any) (*results.Record, error) {
			st, err := newFigure11State(p)
			if err != nil {
				return nil, err
			}
			var curves []results.CurveInput
			for pi, name := range p.PoCs {
				in := results.CurveInput{PoC: name, Scheme: st.pocs[pi].SchemeName}
				for pt, reps := range p.Reps {
					lo := pi*st.perPoc + st.offset[pt]
					outs := make([]core.BitOutcome, p.Bits*reps)
					for t := range outs {
						outs[t] = shards[lo+t].(core.BitOutcome)
					}
					in.Points = append(in.Points, channel.DecodePoint(reps, st.sent[pt], outs))
				}
				curves = append(curves, in)
			}
			return results.NewFigure11Record(curves, p.Bits, p.Reps, p.Seed)
		},
		Scale: func(p results.Params, k int) results.Params {
			p.Bits *= k
			return p
		},
	}
}

// figure12Spec shards the defense-overhead sweep one workload×policy cell
// per shard, unsafe baseline included, in the serial loop's cell order.
func figure12Spec() *Spec {
	evalConfig := func(p results.Params) workload.EvalConfig {
		return workload.EvalConfig{
			Iters:   p.Iters,
			Schemes: p.Schemes,
			Cores:   1,
		}.Normalize()
	}
	return &Spec{
		Name: results.ExpFigure12,
		Plan: func(p results.Params) (int, error) {
			if p.Iters < 1 {
				return 0, fmt.Errorf("experiment: figure12 iters must be >= 1, got %d", p.Iters)
			}
			if len(p.Schemes) == 0 {
				return 0, fmt.Errorf("experiment: figure12 needs at least one scheme")
			}
			return workload.EvalShards(evalConfig(p)), nil
		},
		Run: func(_ context.Context, _ any, p results.Params, i int) (any, error) {
			return workload.EvalShard(evalConfig(p), i)
		},
		NewShard: func() any { return new(workload.Cell) },
		Aggregate: func(p results.Params, shards []any) (*results.Record, error) {
			cells := make([]workload.Cell, len(shards))
			for i, s := range shards {
				cells[i] = s.(workload.Cell)
			}
			res := workload.AggregateCells(evalConfig(p), cells)
			return results.NewFigure12Record(res, p.Iters, p.Schemes)
		},
		Scale: func(p results.Params, k int) results.Params {
			p.Iters *= k
			return p
		},
	}
}
