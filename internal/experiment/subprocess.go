package experiment

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"reflect"
	"sync"

	"specinterference/internal/results"
	"specinterference/internal/runner"
)

// workerEnvVar marks a process as a shard worker; the Subprocess backend
// sets it (alongside the workerArg argv marker) on every child it spawns.
const workerEnvVar = "SPECINTERFERENCE_SHARD_WORKER"

// workerArg is the hidden CLI argument naming worker mode, for humans
// reading `ps` output and for invoking the mode by hand.
const workerArg = "-shard-worker"

// Subprocess fans shard ranges out across re-exec'd copies of the current
// binary: each worker process receives one contiguous shard range (as a
// JSON request on stdin), runs it through the in-process pool, and
// streams shard results back as JSON lines on stdout. The parent places
// results by shard index, so collection is ordered no matter how workers
// interleave — the same determinism contract as InProcess, across
// process boundaries. Stderr passes through, keeping worker diagnostics
// visible.
type Subprocess struct {
	// Procs is the worker-process count (0 = one per CPU); clamped to the
	// shard count.
	Procs int
	// Workers bounds shard concurrency inside each worker process
	// (0 = one goroutine per shard range, i.e. serial within the worker —
	// the process count is the parallelism knob).
	Workers int
}

// Name implements Backend.
func (Subprocess) Name() string { return "subprocess" }

// workerRequest is the parent-to-worker job description.
type workerRequest struct {
	Experiment string         `json:"experiment"`
	Params     results.Params `json:"params"`
	// Start and End bound the worker's shard range: [Start, End).
	Start int `json:"start"`
	End   int `json:"end"`
	// Workers bounds shard concurrency inside the worker.
	Workers int `json:"workers"`
}

// workerLine is one worker-to-parent stdout line: a shard's JSON-encoded
// result value, or a shard failure.
type workerLine struct {
	Shard int             `json:"shard"`
	Value json.RawMessage `json:"value,omitempty"`
	Err   string          `json:"err,omitempty"`
}

// Run implements Backend.
func (b Subprocess) Run(ctx context.Context, spec *Spec, p results.Params, n int, done func()) ([]any, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n == 0 {
		return nil, ctx.Err()
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("experiment: locate executable for subprocess backend: %w", err)
	}
	procs := runner.Workers(b.Procs, n)
	out := make([]any, n)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	// Balanced contiguous ranges: the first n%procs workers take one
	// extra shard.
	size, rem := n/procs, n%procs
	start := 0
	for w := 0; w < procs; w++ {
		end := start + size
		if w < rem {
			end++
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			if err := b.runWorker(ctx, exe, spec, p, start, end, out, done); err != nil {
				fail(err)
			}
		}(start, end)
		start = end
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// runWorker spawns one worker process over shards [start, end), decoding
// its streamed results into out by shard index.
func (b Subprocess) runWorker(ctx context.Context, exe string, spec *Spec, p results.Params, start, end int, out []any, done func()) error {
	req, err := json.Marshal(workerRequest{
		Experiment: spec.Name, Params: p,
		Start: start, End: end, Workers: b.Workers,
	})
	if err != nil {
		return err
	}
	cmd := exec.CommandContext(ctx, exe, workerArg)
	cmd.Env = append(os.Environ(), workerEnvVar+"=1")
	cmd.Stdin = bytes.NewReader(req)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("experiment: spawn shard worker: %w", err)
	}

	// seen tracks per-shard coverage rather than a bare count, so a
	// misbehaving worker that duplicates one shard and drops another is a
	// clean protocol error, not a nil value reaching the aggregator.
	seen := make([]bool, end-start)
	got, scanErr := 0, error(nil)
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	for scanErr == nil && sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var wl workerLine
		if err := json.Unmarshal(line, &wl); err != nil {
			scanErr = fmt.Errorf("experiment: worker [%d,%d): bad result line: %w", start, end, err)
			break
		}
		switch {
		case wl.Err != "":
			scanErr = fmt.Errorf("experiment: shard %d: %s", wl.Shard, wl.Err)
		case wl.Shard < start || wl.Shard >= end:
			scanErr = fmt.Errorf("experiment: worker [%d,%d) returned out-of-range shard %d", start, end, wl.Shard)
		case seen[wl.Shard-start]:
			scanErr = fmt.Errorf("experiment: worker [%d,%d) returned shard %d twice", start, end, wl.Shard)
		default:
			v, err := decodeShard(spec, wl.Value)
			if err != nil {
				scanErr = fmt.Errorf("experiment: shard %d: %w", wl.Shard, err)
				break
			}
			out[wl.Shard] = v
			seen[wl.Shard-start] = true
			got++
			if done != nil {
				done()
			}
		}
	}
	if scanErr == nil {
		scanErr = sc.Err()
	}
	if scanErr != nil {
		// Stop the worker before reaping it; the parent's context cancel
		// does this too, but don't rely on the caller.
		cmd.Process.Kill()
	}
	waitErr := cmd.Wait()
	if scanErr != nil {
		return scanErr
	}
	if waitErr != nil {
		return fmt.Errorf("experiment: worker [%d,%d): %w", start, end, waitErr)
	}
	if got != end-start {
		return fmt.Errorf("experiment: worker [%d,%d) returned %d of %d shard results", start, end, got, end-start)
	}
	return nil
}

// decodeShard unmarshals a shard value into the spec's concrete shard
// type, returning the value (not the pointer) so aggregation sees the
// same concrete types the in-process backend produces.
func decodeShard(spec *Spec, raw json.RawMessage) (any, error) {
	ptr := spec.NewShard()
	if err := json.Unmarshal(raw, ptr); err != nil {
		return nil, err
	}
	return reflect.ValueOf(ptr).Elem().Interface(), nil
}

// RunWorkerIfRequested turns the process into a shard worker — reading
// one workerRequest from stdin, streaming shard results to stdout, then
// exiting — when the Subprocess backend spawned it (workerEnvVar set, or
// workerArg as the first argument). It returns without side effects
// otherwise. Every binary that serves as a subprocess-backend worker
// calls it before any flag parsing: the experiment CLIs (via Main),
// resultstore, and the test binaries that exercise the backend (via
// TestMain).
func RunWorkerIfRequested() {
	if os.Getenv(workerEnvVar) == "" && !(len(os.Args) > 1 && os.Args[1] == workerArg) {
		return
	}
	os.Exit(workerMain(os.Stdin, os.Stdout, os.Stderr))
}

// workerMain is the worker-process body: decode the request, run the
// shard range on the in-process pool, stream each shard's result as it
// completes. Returns the process exit code.
func workerMain(stdin io.Reader, stdout, stderr io.Writer) int {
	var req workerRequest
	if err := json.NewDecoder(stdin).Decode(&req); err != nil {
		fmt.Fprintln(stderr, "shard-worker: bad request:", err)
		return 2
	}
	spec, err := Lookup(req.Experiment)
	if err != nil {
		fmt.Fprintln(stderr, "shard-worker:", err)
		return 2
	}
	if req.Start < 0 || req.End < req.Start {
		fmt.Fprintf(stderr, "shard-worker: bad shard range [%d,%d)\n", req.Start, req.End)
		return 2
	}
	state, err := spec.prepare(req.Params)
	if err != nil {
		fmt.Fprintln(stderr, "shard-worker:", err)
		return 1
	}

	bw := bufio.NewWriter(stdout)
	defer bw.Flush()
	var mu sync.Mutex
	emit := func(wl workerLine) error {
		mu.Lock()
		defer mu.Unlock()
		if err := json.NewEncoder(bw).Encode(wl); err != nil {
			return err
		}
		// Flush per line so the parent sees progress as shards complete.
		return bw.Flush()
	}

	// Workers<=0 means serial inside the worker: with one range per
	// process, the process count is the parallelism knob.
	workers := req.Workers
	if workers <= 0 {
		workers = 1
	}
	_, err = runner.Map(context.Background(), req.End-req.Start, workers,
		func(ctx context.Context, i int) (struct{}, error) {
			shard := req.Start + i
			v, err := spec.Run(ctx, state, req.Params, shard)
			if err != nil {
				emit(workerLine{Shard: shard, Err: err.Error()})
				return struct{}{}, err
			}
			raw, err := json.Marshal(v)
			if err != nil {
				emit(workerLine{Shard: shard, Err: err.Error()})
				return struct{}{}, err
			}
			return struct{}{}, emit(workerLine{Shard: shard, Value: raw})
		})
	if err != nil {
		fmt.Fprintln(stderr, "shard-worker:", err)
		return 1
	}
	return 0
}
